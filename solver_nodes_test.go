package marchgen

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"marchgen/internal/experiments"
)

// solverEffort is the deterministic solver-effort profile of one
// single-worker, cold-cache generation run, extracted from the metrics
// snapshot. Every field is schedule-independent at one worker, so the
// profile is stable across runs and machines.
type solverEffort struct {
	hkStates   int64 // Held–Karp dynamic-program states
	bbExpanded int64 // branch-and-bound nodes bounded
	bbPruned   int64 // branch-and-bound subtrees cut by the AP bound
	bbShort    int64 // solves finished by the warm root shortcut
	enumNodes  int64 // optimal-path enumeration nodes
	bbEsc      int64 // branch-and-bound nodes escalated to the Lagrangian bound
	bbEscPrune int64 // of those, nodes only the escalated bound pruned
	enumEsc    int64 // enumeration steps escalated to the assignment bound
	enumEscPr  int64 // of those, steps only the escalated bound pruned
	subtrees   int64 // joint mode: duplicate selection subtrees pruned
	leavesSkip int64 // joint mode: selection leaves those subtrees covered
	certNodes  int64 // joint mode: certificate search tree nodes
	certLeaves int64 // joint mode: fresh exact solves the certificate ran
	certMin    int64 // joint mode: certified minimum selection cost
	certCapped int64 // joint mode: 1 if the certificate hit its caps
}

func (e solverEffort) total() int64 { return e.hkStates + e.bbExpanded + e.enumNodes }

func measureSolverEffort(t *testing.T, faults, mode string) solverEffort {
	t.Helper()
	res, err := GenerateCtx(context.Background(), faults,
		WithSolverMode(mode), WithWorkers(1), WithoutCache(), WithMetrics())
	if err != nil {
		t.Fatalf("%s [%s]: %v", faults, mode, err)
	}
	m := res.Stats.Metrics
	return solverEffort{
		hkStates:   m["atsp.heldkarp.states"],
		bbExpanded: m["atsp.bb.expanded"],
		bbPruned:   m["atsp.bb.pruned"],
		bbShort:    m["atsp.bb.warmshort"],
		enumNodes:  m["atsp.enum.nodes"],
		bbEsc:      m["atsp.bb.escalated"],
		bbEscPrune: m["atsp.bb.escpruned"],
		enumEsc:    m["atsp.enum.escalated"],
		enumEscPr:  m["atsp.enum.escpruned"],
		subtrees:   m["core.joint.subtrees_pruned"],
		leavesSkip: m["core.joint.leaves_skipped"],
		certNodes:  m["core.joint.cert_nodes"],
		certLeaves: m["core.joint.cert_leaves"],
		certMin:    m["core.joint.cert_min"],
		certCapped: m["core.joint.cert_capped"],
	}
}

// TestSolverNodesGolden locks the per-row, per-mode solver effort for the
// paper's Table 3 fault lists against a committed golden file: Held–Karp
// state counts, branch-and-bound node and prune counts, warm-shortcut hits,
// enumeration nodes, and the joint mode's subtree-pruning and certificate
// figures. Any solver change that moves node counts — a weaker bound, a
// lost warm start, a broken prune — shows up as a diff here even when the
// generated test stays identical:
//
//	go test -run TestSolverNodesGolden -update .
func TestSolverNodesGolden(t *testing.T) {
	var b strings.Builder
	b.WriteString("# Solver effort per Table 3 fault list and solver mode (workers=1, cold cache).\n")
	b.WriteString("# total = heldkarp states + branch-and-bound nodes + enumeration nodes.\n")
	b.WriteString("# esc counts bound-ladder escalations as escalated/escalation-pruned, for the\n")
	b.WriteString("# branch and bound (Lagrangian 1-arborescence) and the enumeration (assignment).\n")
	b.WriteString("# Format: <faults> | <mode> | total=<n> hk=<states> bb=<expanded>/<pruned> short=<n> bbesc=<esc>/<pruned> enum=<n> esc=<esc>/<pruned> | joint: subtrees=<n> skipped=<n> cert=<nodes>/<fresh> min=<cost>\n")
	for _, spec := range experiments.Table3Spec() {
		for _, mode := range []string{SolverEnumerate, SolverWarm, SolverJoint} {
			e := measureSolverEffort(t, spec.Faults, mode)
			fmt.Fprintf(&b, "%s | %s | total=%d hk=%d bb=%d/%d short=%d bbesc=%d/%d enum=%d esc=%d/%d",
				spec.Faults, mode, e.total(), e.hkStates, e.bbExpanded, e.bbPruned, e.bbShort,
				e.bbEsc, e.bbEscPrune, e.enumNodes, e.enumEsc, e.enumEscPr)
			if mode == SolverJoint {
				cert := fmt.Sprintf("%d", e.certMin)
				if e.certCapped > 0 {
					cert = "capped"
				}
				fmt.Fprintf(&b, " | joint: subtrees=%d skipped=%d cert=%d/%d min=%s",
					e.subtrees, e.leavesSkip, e.certNodes, e.certLeaves, cert)
			}
			b.WriteByte('\n')
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "solver_nodes.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if got != string(want) {
		t.Errorf("solver effort diverges from %s (re-run with -update if intended):\ngot:\n%swant:\n%s",
			path, got, want)
	}
}

// TestJointNodeReduction pins the headline scale claim: on the paper's
// complexity-6 row the warm and joint solvers must expand at most a third
// of the enumerate baseline's total solver nodes. This is the in-tree twin
// of the CI bench smoke.
func TestJointNodeReduction(t *testing.T) {
	const faults = "SAF,TF,ADF,CFin"
	base := measureSolverEffort(t, faults, SolverEnumerate)
	for _, mode := range []string{SolverWarm, SolverJoint} {
		e := measureSolverEffort(t, faults, mode)
		if 3*e.total() > base.total() {
			t.Errorf("%s: %s total nodes %d, enumerate %d — less than 3x reduction",
				faults, mode, e.total(), base.total())
		}
	}
}
