package marchgen

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"marchgen/internal/obs"
	"marchgen/internal/obs/obstest"
)

// traceFor generates the fault list at one worker with a cold cache and
// returns the parsed span trace (the deterministic configuration: span
// names, attributes, parentage and sequence numbers are fixed; only
// timestamps vary run to run).
func traceFor(t *testing.T, faults string) []obs.Event {
	t.Helper()
	var buf bytes.Buffer
	_, err := GenerateCtx(context.Background(), faults,
		WithWorkers(1), WithoutCache(), WithTrace(&buf))
	if err != nil {
		t.Fatalf("%s: %v", faults, err)
	}
	events, err := obstest.ParseTrace(&buf)
	if err != nil {
		t.Fatalf("%s: parse trace: %v", faults, err)
	}
	return events
}

// TestTraceGolden locks the normalised span trace of a small Table 3
// generation against a committed golden file: every span name, nesting
// edge, sequence number and deterministic attribute is fixed, with
// timestamps and durations zeroed. Any pipeline change that alters the
// trace shape is a conscious, reviewed decision:
//
//	go test -run TestTraceGolden -update .
func TestTraceGolden(t *testing.T) {
	events := traceFor(t, "SAF,TF")
	if err := obstest.Validate(events); err != nil {
		t.Fatalf("trace is schema-invalid: %v", err)
	}
	if err := obstest.RequireSpans(events, []string{
		"generate",
		"generate/expand",
		"generate/select",
		"generate/atsp",
		"generate/assemble",
		"generate/validate",
		"generate/shrink",
		"generate/finalize",
		"sim/evaluate",
	}); err != nil {
		t.Fatalf("trace is missing pipeline spans: %v", err)
	}

	var b bytes.Buffer
	if err := obs.WriteJSONL(&b, obstest.Normalize(events)); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "trace_saf_tf.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if got != string(want) {
		t.Errorf("normalised trace diverges from %s (re-run with -update if intended):\ngot:\n%swant:\n%s",
			path, got, want)
	}
}

// TestTraceDeterministic re-runs the golden configuration and checks the
// two normalised traces are byte-identical — the documented determinism
// guarantee: enabled traces are deterministic modulo timestamps.
func TestTraceDeterministic(t *testing.T) {
	render := func(events []obs.Event) string {
		var b bytes.Buffer
		if err := obs.WriteJSONL(&b, obstest.Normalize(events)); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := render(traceFor(t, "SAF,TF"))
	b := render(traceFor(t, "SAF,TF"))
	if a != b {
		t.Errorf("two identical runs produced different normalised traces:\nfirst:\n%ssecond:\n%s", a, b)
	}
}

// TestMetricsSurface checks the Stats.Metrics snapshot of an observed run
// carries the headline metric families, and that an unobserved run pays
// nothing (nil map, no trace).
func TestMetricsSurface(t *testing.T) {
	res, err := Generate("SAF,TF", WithWorkers(1), WithoutCache(), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Stats.Metrics
	if m == nil {
		t.Fatal("WithMetrics run returned no metrics snapshot")
	}
	for _, name := range []string{
		"generate.elapsed_ns",
		"stage.expand.ns",
		"stage.validate.ns",
		"sim.evaluations",
		"obs.spans",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("metric %q missing from snapshot (have %v)", name, obs.MetricNames(m))
		}
	}

	plain, err := Generate("SAF,TF", WithWorkers(1), WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Metrics != nil {
		t.Errorf("unobserved run returned a metrics snapshot: %v", obs.MetricNames(plain.Stats.Metrics))
	}
	if len(plain.Stats.StageElapsed) == 0 {
		t.Error("unobserved run lost StageElapsed")
	}
}

// BenchmarkGenerateObsOff and BenchmarkGenerateObsOn measure the
// disabled-observability overhead contract (<2%): compare with
//
//	go test -run '^$' -bench 'BenchmarkGenerateObs' -count 10 .
func BenchmarkGenerateObsOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate("SAF,TF", WithWorkers(1), WithoutCache()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateObsOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate("SAF,TF", WithWorkers(1), WithoutCache(),
			WithMetrics(), WithTrace(io.Discard)); err != nil {
			b.Fatal(err)
		}
	}
}
