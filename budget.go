package marchgen

import (
	"time"

	"marchgen/internal/budget"
	"marchgen/internal/core"
)

// Budget bounds the resources a GenerateCtx run may spend. The zero value
// is unlimited. All limits are soft: when one runs out mid-run the
// pipeline degrades — the exact ATSP falls back to the layered heuristics,
// enumeration and shrinking stop early — and the returned test, still
// simulator-validated complete, is reported via Stats.Degraded instead of
// failing. Only when a budget runs out before any valid candidate exists
// does GenerateCtx fail, with ErrBudgetExhausted.
//
// Contrast with a context deadline, which is a hard stop: the run aborts
// with ErrDeadlineExceeded and no result.
type Budget struct {
	// Deadline is the soft deadline; past it the pipeline stops opening
	// new work and finishes from what it already has.
	Deadline time.Time
	// ATSPNodes caps the total search states the exact ATSP solvers may
	// expand across the run; exhaustion degrades the ordering to the
	// layered heuristics.
	ATSPNodes int
	// Selections caps the BFE equivalence-class selections enumerated.
	Selections int
	// Candidates caps the rewrite candidates validated.
	Candidates int
}

// WithBudget bounds the run's resources; see Budget for the degradation
// semantics and Stats.Degraded for how a downgrade is reported.
func WithBudget(b Budget) Option {
	return func(o *core.Options) {
		o.Budget = budget.Budget{
			Deadline:   b.Deadline,
			ATSPNodes:  b.ATSPNodes,
			Selections: b.Selections,
			Candidates: b.Candidates,
		}
	}
}

// ParseBudget parses the textual budget form used by the CLI -budget
// flags: a comma-separated list of key=value pairs with integer keys
// "nodes" (exact-ATSP search states), "selections" and "candidates", and
// "soft" (a duration such as "500ms", converted to a soft deadline
// relative to now). The empty string is the unlimited budget.
func ParseBudget(spec string) (Budget, error) {
	b, err := budget.ParseSpec(spec)
	if err != nil {
		return Budget{}, err
	}
	return Budget{
		Deadline:   b.Deadline,
		ATSPNodes:  b.ATSPNodes,
		Selections: b.Selections,
		Candidates: b.Candidates,
	}, nil
}

// The typed error taxonomy of the pipeline. Every error returned by
// GenerateCtx wraps one of these sentinels (or is a fault-list parse
// error); match with errors.Is.
var (
	// ErrCanceled reports that the caller's context was canceled.
	ErrCanceled = budget.ErrCanceled
	// ErrDeadlineExceeded reports that the caller's context deadline
	// passed before generation finished.
	ErrDeadlineExceeded = budget.ErrDeadlineExceeded
	// ErrBudgetExhausted reports that a soft budget ran out before any
	// valid candidate existed (afterwards, exhaustion degrades instead).
	ErrBudgetExhausted = budget.ErrBudgetExhausted
	// ErrUnsupportedFault reports a fault list outside what the pipeline
	// can realise (unknown model, or patterns beyond the rewrite grammar
	// and the bounded fallback).
	ErrUnsupportedFault = budget.ErrUnsupportedFault
	// ErrInternal reports a recovered internal invariant failure; the
	// concrete error is an *InternalError carrying stage and stack.
	ErrInternal = budget.ErrInternal
	// ErrUsage reports invalid caller input: a negative budget limit, a
	// zero key=value pair in a -budget spec (omit the key for unlimited),
	// or a negative worker count. The CLIs map it to exit code 2.
	ErrUsage = budget.ErrUsage
)

// InternalError is the boundary form of a recovered internal panic,
// carrying the pipeline stage and the goroutine stack. Library callers
// never see a raw panic from GenerateCtx; they see one of these, matching
// errors.Is(err, ErrInternal).
type InternalError = budget.InternalError
