package marchgen

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// largeFaults is a fault list heavy enough that an uncancelled run takes
// well over the acceptance bound, so the cancellation tests below prove
// the abort is prompt rather than the run being trivially short.
const largeFaults = "SAF,TF,WDF,RDF,DRDF,IRF,SOF,DRF,CFin,CFid,CFst,ADF,LCF"

func TestGenerateCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := GenerateCtx(ctx, largeFaults)
	elapsed := time.Since(start)
	if res != nil {
		t.Fatalf("canceled run returned a result: %v", res.Test)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("canceled run took %v, want <100ms", elapsed)
	}
}

func TestGenerateCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := GenerateCtx(ctx, largeFaults)
	elapsed := time.Since(start)
	if res != nil {
		t.Fatalf("expired run returned a result: %v", res.Test)
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	// The deadline fires 1ms in; the abort must land well inside the
	// acceptance bound even counting pipeline check strides.
	if elapsed > 100*time.Millisecond {
		t.Fatalf("expired run took %v, want <100ms", elapsed)
	}
}

func TestVerifyCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Generate("SAF")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyCtx(ctx, res.Test, largeFaults); !errors.Is(err, ErrCanceled) {
		t.Fatalf("VerifyCtx err = %v, want ErrCanceled", err)
	}
}

func TestGenerateBudgetExhaustedDegrades(t *testing.T) {
	// One ATSP node is never enough for an exact solve, so every exact
	// ordering must fall back to the layered heuristics — yet the run
	// must still deliver a simulator-validated complete test.
	res, err := GenerateCtx(context.Background(), "SAF,TF,CFin",
		WithBudget(Budget{ATSPNodes: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded {
		t.Fatal("Stats.Degraded = false, want true after node-budget exhaustion")
	}
	found := false
	for _, st := range res.Stats.DegradedStages {
		if st == "atsp" {
			found = true
		}
	}
	if !found {
		t.Fatalf("DegradedStages = %v, want to contain %q", res.Stats.DegradedStages, "atsp")
	}
	rep, err := Verify(res.Test, "SAF,TF,CFin")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("degraded test %v misses %v", res.Test, rep.Missed)
	}
}

func TestGenerateSoftDeadlineDegrades(t *testing.T) {
	// An already-expired soft deadline degrades wherever the pipeline
	// checks it but must not abort: a validated test still comes back.
	res, err := GenerateCtx(context.Background(), "SAF,TF",
		WithBudget(Budget{Deadline: time.Now().Add(-time.Second)}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Degraded {
		t.Fatal("Stats.Degraded = false, want true with an expired soft deadline")
	}
	rep, err := Verify(res.Test, "SAF,TF")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("degraded test %v misses %v", res.Test, rep.Missed)
	}
}

func TestUnsupportedFaultTyped(t *testing.T) {
	_, err := Generate("NOPE")
	if !errors.Is(err, ErrUnsupportedFault) {
		t.Fatalf("err = %v, want ErrUnsupportedFault", err)
	}
	if !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("err %q does not name the offending model", err)
	}
}

func TestParseBudget(t *testing.T) {
	b, err := ParseBudget("nodes=100,selections=4,candidates=7,soft=1h")
	if err != nil {
		t.Fatal(err)
	}
	if b.ATSPNodes != 100 || b.Selections != 4 || b.Candidates != 7 {
		t.Fatalf("ParseBudget = %+v", b)
	}
	if b.Deadline.Before(time.Now().Add(50 * time.Minute)) {
		t.Fatalf("soft deadline %v not ~1h out", b.Deadline)
	}
	if _, err := ParseBudget("nodes=banana"); err == nil {
		t.Fatal("bad spec accepted")
	}
}
