package marchgen

import (
	"context"
	"strings"
	"testing"

	"marchgen/bist"
	"marchgen/diag"
	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/atsp"
	"marchgen/internal/baseline"
	"marchgen/internal/core"
	"marchgen/internal/cover"
	"marchgen/internal/experiments"
	"marchgen/internal/sim"
	"marchgen/march"
	"marchgen/mp"
	"marchgen/wom"
)

// ---------------------------------------------------------------------------
// Table 3: one benchmark per row — the full generation pipeline, fault list
// to validated optimal March test.
// ---------------------------------------------------------------------------

func benchGenerate(b *testing.B, faults string, wantK int) {
	b.Helper()
	models, err := fault.ParseList(faults)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Generate(models, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if res.Complexity != wantK {
			b.Fatalf("%s: %dn, want %dn", faults, res.Complexity, wantK)
		}
	}
}

func BenchmarkTable3Row1SAF(b *testing.B)      { benchGenerate(b, "SAF", 4) }
func BenchmarkTable3Row2SAFTF(b *testing.B)    { benchGenerate(b, "SAF,TF", 5) }
func BenchmarkTable3Row3ADF(b *testing.B)      { benchGenerate(b, "SAF,TF,ADF", 6) }
func BenchmarkTable3Row4CFin(b *testing.B)     { benchGenerate(b, "SAF,TF,ADF,CFin", 6) }
func BenchmarkTable3Row5CFid(b *testing.B)     { benchGenerate(b, "SAF,TF,ADF,CFin,CFid", 10) }
func BenchmarkTable3Row6CFinOnly(b *testing.B) { benchGenerate(b, "CFin", 5) }

// BenchmarkGenerate measures the public entry point over every Table 3
// fault list in the three engine configurations the PR compares:
// sequential (one worker, no cache), parallel (GOMAXPROCS workers, no
// cache) and cached (warm memo cache). cmd/marchbench produces the
// committed BENCH_generate.json from the same three configurations.
func BenchmarkGenerate(b *testing.B) {
	ctx := context.Background()
	for _, spec := range experiments.Table3Spec() {
		name := strings.ReplaceAll(spec.Faults, ",", "+")
		run := func(cfg string, opts ...Option) {
			b.Run(name+"/"+cfg, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := GenerateCtx(ctx, spec.Faults, opts...)
					if err != nil {
						b.Fatal(err)
					}
					if res.Complexity != spec.PaperComplexity {
						b.Fatalf("%s: %dn, want %dn", spec.Faults, res.Complexity, spec.PaperComplexity)
					}
				}
			})
		}
		run("sequential", WithWorkers(1), WithoutCache())
		run("parallel", WithWorkers(0), WithoutCache())
		ResetCache()
		if _, err := GenerateCtx(ctx, spec.Faults, WithWorkers(1)); err != nil {
			b.Fatal(err)
		}
		run("cached", WithWorkers(1))
	}
	ResetCache()
}

// ---------------------------------------------------------------------------
// Figures 1–3: the behavioural FSM machinery.
// ---------------------------------------------------------------------------

// BenchmarkFigure1GoodMachineDot regenerates the Figure 1 FSM rendering.
func BenchmarkFigure1GoodMachineDot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(fsm.Dot(fsm.Good())) == 0 {
			b.Fatal("empty dot")
		}
	}
}

// BenchmarkFigure2FaultyMachine builds the ⟨↑;0⟩ machine of Figure 2 and
// exercises its deviating transitions.
func BenchmarkFigure2FaultyMachine(b *testing.B) {
	m, err := fault.Parse("CFid<u,0>")
	if err != nil {
		b.Fatal(err)
	}
	var devs []fsm.Deviation
	for _, inst := range m.Instances {
		devs = append(devs, *inst.BFEs[0].Deviation)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine := fsm.WithDeviations("M1", devs...)
		s := fsm.S(march.Zero, march.One)
		if machine.Next(s, fsm.Wr(fsm.CellI, march.One)) != fsm.S(march.One, march.Zero) {
			b.Fatal("Figure 2 deviation lost")
		}
	}
}

// BenchmarkFigure3PatternDerivation derives the BFE test patterns of the
// Figure 3 decomposition from scratch.
func BenchmarkFigure3PatternDerivation(b *testing.B) {
	m, err := fault.Parse("CFid<u,0>")
	if err != nil {
		b.Fatal(err)
	}
	dev := *m.Instances[0].BFEs[0].Deviation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fault.PatternForDeviation(dev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4TPG rebuilds the Figure 4 Test Pattern Graph.
func BenchmarkFigure4TPG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiments.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		if len(g.Nodes) != 4 {
			b.Fatal("wrong TPG")
		}
	}
}

// ---------------------------------------------------------------------------
// Section 4 worked example and its ATSP core.
// ---------------------------------------------------------------------------

func BenchmarkSection4WorkedExample(b *testing.B) {
	benchGenerate(b, "CFid<u,1>,CFid<u,0>", 8)
}

// BenchmarkSection4ATSP solves the constrained open-path ATSP of the
// worked example (the paper's step (iii) in isolation).
func BenchmarkSection4ATSP(b *testing.B) {
	g, err := experiments.Figure4()
	if err != nil {
		b.Fatal(err)
	}
	starts := make([]int, len(g.Nodes))
	for k := range g.Nodes {
		starts[k] = g.StartCost(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := atsp.Path(atsp.Matrix(g.Weight), starts, true); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Section 6: the validation instruments — fault simulation and the
// Coverage-Matrix / Set-Covering non-redundancy check on March C-.
// ---------------------------------------------------------------------------

func BenchmarkSimulatorMarchCMinus(b *testing.B) {
	kt, _ := march.Known("MarchC-")
	models, err := fault.ParseList("SAF,TF,ADF,CFin,CFid")
	if err != nil {
		b.Fatal(err)
	}
	instances := fault.Instances(models)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov, err := sim.Evaluate(kt.Test, instances)
		if err != nil || !cov.Complete() {
			b.Fatal("March C- must cover the row-5 list")
		}
	}
}

func BenchmarkSimulatorNCell(b *testing.B) {
	kt, _ := march.Known("MarchC-")
	models, err := fault.ParseList("CFid")
	if err != nil {
		b.Fatal(err)
	}
	instances := fault.Instances(models)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov, err := sim.EvaluateN(kt.Test, instances, 16)
		if err != nil || !cov.Complete() {
			b.Fatal("March C- must cover CFid on the 16-cell engine")
		}
	}
}

func BenchmarkSetCoveringMarchCMinus(b *testing.B) {
	kt, _ := march.Known("MarchC-")
	models, err := fault.ParseList("SAF,TF,ADF,CFin,CFid")
	if err != nil {
		b.Fatal(err)
	}
	instances := fault.Instances(models)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := cover.Build(kt.Test, instances)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.MinCover(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Section 2/6: pipeline vs. the prior-art searches (the efficiency claim).
// ---------------------------------------------------------------------------

func BenchmarkBaselineExhaustiveSAF(b *testing.B) {
	models, _ := fault.ParseList("SAF")
	instances := fault.Instances(models)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.Exhaustive(instances, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineBranchBoundSAFTF(b *testing.B) {
	models, _ := fault.ParseList("SAF,TF")
	instances := fault.Instances(models)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.BranchBound(instances, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineBranchBoundWorkedExample(b *testing.B) {
	models, _ := fault.ParseList("CFid<u,1>,CFid<u,0>")
	instances := fault.Instances(models)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.BranchBound(instances, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Section 5: equivalence-class ablation.
// ---------------------------------------------------------------------------

func BenchmarkEquivalenceAblationCFin(b *testing.B) {
	models, _ := fault.ParseList("CFin")
	opts := core.DefaultOptions()
	opts.DisableEquivalence = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Generate(models, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Extensions beyond the paper (EXPERIMENTS.md "Beyond the paper" section).
// ---------------------------------------------------------------------------

// BenchmarkExtensionLinkedFaults generates the linked-coupling-fault test.
func BenchmarkExtensionLinkedFaults(b *testing.B) {
	models, _ := fault.ParseList("LCF")
	for i := 0; i < b.N; i++ {
		if _, err := core.Generate(models, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionTwoPortGenerate synthesises the two-port weak-fault
// test (the paper's §7 future work).
func BenchmarkExtensionTwoPortGenerate(b *testing.B) {
	insts := mp.Models()
	for i := 0; i < b.N; i++ {
		if _, _, err := mp.Generate(insts, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionDiagDictionary builds the March C- fault dictionary.
func BenchmarkExtensionDiagDictionary(b *testing.B) {
	models, _ := fault.ParseList("SAF,TF,CFid")
	kt, _ := march.Known("MarchC-")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diag.Build(kt.Test, models); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionBISTRun executes March C- on a 256-cell BIST target.
func BenchmarkExtensionBISTRun(b *testing.B) {
	kt, _ := march.Known("MarchC-")
	c := bist.Controller{Addresses: bist.LFSR{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Golden(kt.Test, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionWordBackgrounds checks the 8-bit intra-word fault
// space under the standard background set.
func BenchmarkExtensionWordBackgrounds(b *testing.B) {
	kt, _ := march.Known("MarchC-")
	bgs, _ := wom.StandardBackgrounds(8)
	wt, err := wom.Convert(kt.Test, 8, bgs)
	if err != nil {
		b.Fatal(err)
	}
	faults := wom.AllIntraWordCFids(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range faults {
			if _, err := wom.Detects(wt, 4, 8, f); err != nil {
				b.Fatal(err)
			}
		}
	}
}
