package marchgen

import (
	"strings"
	"testing"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/march"
)

func TestGenerateQuick(t *testing.T) {
	res, err := Generate("SAF,TF")
	if err != nil {
		t.Fatal(err)
	}
	if res.Complexity != 5 {
		t.Errorf("SAF,TF: %dn, want 5n", res.Complexity)
	}
	if res.Stats.Classes != 4 || res.Stats.Elapsed <= 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	if len(res.Models) != 2 || len(res.Instances) != 4 {
		t.Errorf("models/instances: %d/%d", len(res.Models), len(res.Instances))
	}
}

func TestGenerateBadList(t *testing.T) {
	if _, err := Generate("NOPE"); err == nil {
		t.Error("unknown fault model must fail")
	}
	if _, err := Generate(""); err == nil {
		t.Error("empty list must fail")
	}
}

func TestGenerateOptions(t *testing.T) {
	res, err := Generate("SAF,TF,ADF",
		WithHeuristicATSP(), WithSelectionLimit(8), WithBeamWidth(24))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(res.Test, "SAF,TF,ADF")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("heuristic options produced incomplete test: %v", rep.Missed)
	}
}

func TestGenerateWithoutShrinkStillComplete(t *testing.T) {
	res, err := Generate("SAF", WithoutShrink())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(res.Test, "SAF")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Error("WithoutShrink must stay complete")
	}
}

func TestGenerateWithoutEquivalence(t *testing.T) {
	res, err := Generate("CFin", WithoutEquivalence())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(res.Test, "CFin")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Error("WithoutEquivalence must stay complete")
	}
}

func TestVerifyKnownGrid(t *testing.T) {
	rep, err := VerifyKnown("MarchC-", "SAF,TF,ADF,CFin,CFid,CFst")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || !rep.NonRedundant {
		t.Errorf("March C- verdict: complete=%v nonredundant=%v", rep.Complete, rep.NonRedundant)
	}
	if rep.Complexity != 10 {
		t.Errorf("complexity %d", rep.Complexity)
	}
	if len(rep.Instances) != 44 { // 2+2+8+4+8+... SAF2 TF2 ADF8 CFin4 CFid8 CFst8 = 32? counted below
		// Count precisely instead of hard-coding.
		models, _ := fault.ParseList("SAF,TF,ADF,CFin,CFid,CFst")
		want := len(fault.Instances(models))
		if len(rep.Instances) != want {
			t.Errorf("instances %d, want %d", len(rep.Instances), want)
		}
	}
}

func TestVerifyIncomplete(t *testing.T) {
	rep, err := VerifyKnown("MATS", "TF")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Error("MATS does not cover TF")
	}
	if len(rep.Missed) == 0 {
		t.Error("missed list must name the escaping instances")
	}
	for _, m := range rep.Missed {
		if !strings.HasPrefix(m, "TF") {
			t.Errorf("unexpected missed instance %q", m)
		}
	}
}

func TestVerifyErrors(t *testing.T) {
	if _, err := Verify(nil, "SAF"); err == nil {
		t.Error("nil test must fail")
	}
	if _, err := VerifyKnown("NoSuchTest", "SAF"); err == nil {
		t.Error("unknown test name must fail")
	}
	bad := march.New(march.Elem(march.Up, march.R1))
	if _, err := Verify(bad, "SAF"); err == nil {
		t.Error("invalid test must fail")
	}
}

func TestVerifyNAgrees(t *testing.T) {
	res, err := Generate("SAF,TF,ADF")
	if err != nil {
		t.Fatal(err)
	}
	twoCell, err := Verify(res.Test, "SAF,TF,ADF")
	if err != nil {
		t.Fatal(err)
	}
	nCell, err := VerifyN(res.Test, "SAF,TF,ADF", 8)
	if err != nil {
		t.Fatal(err)
	}
	if twoCell.Complete != nCell.Complete {
		t.Errorf("engines disagree: %v vs %v", twoCell.Complete, nCell.Complete)
	}
}

func TestGenerateModelsCustom(t *testing.T) {
	inst, err := fault.FromDeviations("GLITCH", "GLITCH", false,
		fsm.TransitionDev(fsm.S(march.One, march.X), fsm.Wr(fsm.CellI, march.One), fsm.S(march.Zero, march.X)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := fault.Custom("GLITCH", "non-transition w1 flips the cell low", inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GenerateModels([]fault.Model{m})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyModels(res.Test, []fault.Model{m})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("custom model not covered by %s", res.Test)
	}
}

// TestConditionedSingleCellFault: a user fault whose excitation only fires
// when the *other* cell holds a specific value — outside the paper's
// worked examples but inside its "unconstrained fault list" claim. The
// rewrite grammar handles it via the pair-style order discipline.
func TestConditionedSingleCellFault(t *testing.T) {
	inst, err := fault.FromDeviations("COND", "COND",
		false,
		// In state (1,1), w0 on cell i fails — but only while j holds 1.
		fsm.TransitionDev(fsm.S(march.One, march.One), fsm.Wr(fsm.CellI, march.Zero), fsm.S(march.One, march.X)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := fault.Custom("COND", "conditioned transition fault", inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GenerateModels([]fault.Model{m})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyModels(res.Test, []fault.Model{m})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("conditioned fault not covered by %s", res.Test)
	}
	if res.Complexity > 5 {
		t.Errorf("conditioned fault test suspiciously long: %s", res.Test)
	}
}

// TestReadCouplingFault: a read on the aggressor disturbs the victim (a
// CFrd-style user fault); the excitation is a read, which the rewrite
// grammar realises through the within-element case.
func TestReadCouplingFault(t *testing.T) {
	inst, err := fault.FromDeviations("CFRD", "CFRD<0> agg=i",
		false,
		fsm.TransitionDev(fsm.S(march.Zero, march.One), fsm.Rd(fsm.CellI), fsm.S(march.X, march.Zero)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := fault.Custom("CFRD", "read-disturb coupling", inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GenerateModels([]fault.Model{m})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyModels(res.Test, []fault.Model{m})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("read-coupling fault not covered by %s", res.Test)
	}
}
