package marchgen

import (
	"time"

	"marchgen/fault"
	"marchgen/internal/core"
	"marchgen/internal/gts"
	"marchgen/march"
)

// Option tunes Generate.
type Option func(*core.Options)

// WithHeuristicATSP replaces the exact ATSP solver with the layered
// nearest-neighbour / greedy-edge / or-opt heuristics. Generation gets
// faster on very large fault lists; the result stays a validated March
// test but its length is no longer guaranteed minimal.
func WithHeuristicATSP() Option {
	return func(o *core.Options) { o.Exact = false }
}

// WithSelectionLimit caps the enumeration of BFE equivalence-class
// selections (the paper's E = ∏|Cᵢ| product of Section 5). The default is
// 64.
func WithSelectionLimit(n int) Option {
	return func(o *core.Options) { o.SelectionLimit = n }
}

// WithoutShrink disables the final redundancy-elimination pass (an
// ablation knob; generated tests may then contain removable operations).
func WithoutShrink() Option {
	return func(o *core.Options) { o.DisableShrink = true }
}

// WithoutEquivalence disables the Section 5 BFE equivalence classes: every
// BFE gets its own Test Pattern Graph node (an ablation knob).
func WithoutEquivalence() Option {
	return func(o *core.Options) { o.DisableEquivalence = true }
}

// WithBeamWidth widens or narrows the rewrite engine's beam (default 48).
func WithBeamWidth(n int) Option {
	return func(o *core.Options) { o.Beam = gts.Options{BeamWidth: n, MaxCandidates: o.Beam.MaxCandidates} }
}

// Stats reports the pipeline effort behind a generated test.
type Stats struct {
	// Classes is the number of BFE equivalence classes of the fault list.
	Classes int
	// Selections is the number of class selections enumerated.
	Selections int
	// TPGNodes is the Test Pattern Graph size of the winning selection.
	TPGNodes int
	// PathCost is the optimal ATSP visit cost of the winning selection.
	PathCost int
	// Candidates is the number of rewrite candidates examined.
	Candidates int
	// Elapsed is the wall-clock generation time.
	Elapsed time.Duration
}

// Result is a generated March test.
type Result struct {
	// Test is the generated March test: validated complete for the fault
	// list and non-redundant.
	Test *march.Test
	// Complexity is the number of operations per cell (the "kn" figure).
	Complexity int
	// Models is the parsed fault list.
	Models []fault.Model
	// Instances is the expanded set of fault instances the test detects.
	Instances []fault.Instance
	// Stats reports pipeline effort.
	Stats Stats
}

// Generate synthesises a minimal March test covering the comma-separated
// fault list, e.g. "SAF,TF,ADF" or "CFid<u,0>,CFin" (see package fault for
// the model names).
func Generate(faults string, opts ...Option) (*Result, error) {
	models, err := fault.ParseList(faults)
	if err != nil {
		return nil, err
	}
	return GenerateModels(models, opts...)
}

// GenerateModels is Generate for an already-built fault model list — in
// particular one containing user-defined models from fault.Custom.
func GenerateModels(models []fault.Model, opts ...Option) (*Result, error) {
	options := core.DefaultOptions()
	for _, opt := range opts {
		opt(&options)
	}
	res, err := core.Generate(models, options)
	if err != nil {
		return nil, err
	}
	return &Result{
		Test:       res.Test,
		Complexity: res.Complexity,
		Models:     models,
		Instances:  res.Instances,
		Stats: Stats{
			Classes:    res.Classes,
			Selections: res.Selections,
			TPGNodes:   res.Nodes,
			PathCost:   res.PathCost,
			Candidates: res.Candidates,
			Elapsed:    res.Elapsed,
		},
	}, nil
}
