package marchgen

import (
	"context"
	"io"
	"runtime/debug"
	"time"

	"marchgen/fault"
	"marchgen/internal/budget"
	"marchgen/internal/core"
	"marchgen/internal/gts"
	"marchgen/internal/memo"
	"marchgen/internal/obs"
	"marchgen/march"
)

// Option tunes Generate.
type Option func(*core.Options)

// WithHeuristicATSP replaces the exact ATSP solver with the layered
// nearest-neighbour / greedy-edge / or-opt heuristics. Generation gets
// faster on very large fault lists; the result stays a validated March
// test but its length is no longer guaranteed minimal.
func WithHeuristicATSP() Option {
	return func(o *core.Options) { o.Exact = false }
}

// WithSelectionLimit caps the enumeration of BFE equivalence-class
// selections (the paper's E = ∏|Cᵢ| product of Section 5). The default is
// 64.
func WithSelectionLimit(n int) Option {
	return func(o *core.Options) { o.SelectionLimit = n }
}

// WithoutShrink disables the final redundancy-elimination pass (an
// ablation knob; generated tests may then contain removable operations).
func WithoutShrink() Option {
	return func(o *core.Options) { o.DisableShrink = true }
}

// WithoutEquivalence disables the Section 5 BFE equivalence classes: every
// BFE gets its own Test Pattern Graph node (an ablation knob).
func WithoutEquivalence() Option {
	return func(o *core.Options) { o.DisableEquivalence = true }
}

// WithBeamWidth widens or narrows the rewrite engine's beam (default 48).
func WithBeamWidth(n int) Option {
	return func(o *core.Options) { o.Beam = gts.Options{BeamWidth: n, MaxCandidates: o.Beam.MaxCandidates} }
}

// Solver modes for WithSolverMode. The generated test and every statistic
// except timing and solver-effort metrics are byte-identical in all modes.
const (
	// SolverEnumerate solves every §5 class selection cold (the historic
	// behaviour, kept for differential testing and baselines).
	SolverEnumerate = core.SolverEnumerate
	// SolverWarm (the default) threads each selection's solution into the
	// next exact solve as a branch-and-bound warm start, and primes warm
	// incumbents from cost fragments persisted by earlier runs when a
	// durable cache tier is attached.
	SolverWarm = core.SolverWarm
	// SolverJoint is SolverWarm plus a joint search over the selection
	// tree itself: duplicate selection subtrees are pruned up front and a
	// bounded certificate pass confirms the cheapest selection over the
	// full, untrimmed choice product (reported in Stats.Metrics under
	// core.joint.*).
	SolverJoint = core.SolverJoint
)

// WithSolverMode selects how the selection sweep drives the exact ATSP
// solver: SolverEnumerate, SolverWarm or SolverJoint. Modes only change
// solver effort — node counts, timings and mode-specific metrics — never
// the generated test. An unknown mode is rejected with ErrUsage.
func WithSolverMode(mode string) Option {
	return func(o *core.Options) { o.SolverMode = mode }
}

// WithWorkers bounds the generation worker pool: per-fault simulation,
// coverage-matrix rows and exact-ATSP subtree exploration fan out over at
// most n goroutines. n == 0 (the default) uses GOMAXPROCS; a negative n is
// rejected with ErrUsage. The generated test and every statistic except
// timing are byte-identical at any worker count.
func WithWorkers(n int) Option {
	return func(o *core.Options) { o.Workers = n }
}

// WithoutCache disables the process-wide memo cache for this call: the
// run recomputes every coverage matrix, tour fragment and verdict from
// scratch and leaves no entries behind (cold-cache measurements, tests).
// Budgeted runs (WithBudget) bypass the cache regardless, so their
// degradation behaviour never depends on earlier runs.
func WithoutCache() Option {
	return func(o *core.Options) { o.Cache = nil }
}

// ensureObs attaches an observability run to the call's options, creating
// one on first use so WithMetrics and WithTrace compose.
func ensureObs(o *core.Options) *obs.Run {
	if o.Obs == nil {
		o.Obs = obs.NewRun()
	}
	return o.Obs
}

// WithMetrics enables the observability layer for this call: the pipeline
// records counters, gauges and histograms (per-stage time, ATSP node
// counts, memo hits, pool utilisation, coverage-matrix fill) and the final
// snapshot is returned in Stats.Metrics. Observation is off by default and
// costs nothing when off.
func WithMetrics() Option {
	return func(o *core.Options) { ensureObs(o) }
}

// WithTrace additionally streams the call's hierarchical span trace to w
// as JSON Lines, one event per line in span-sequence order, flushed when
// generation returns (see internal/obs for the schema). Span names and
// attributes are deterministic for a given fault list and options at one
// worker; timestamps and durations vary run to run. Implies WithMetrics.
func WithTrace(w io.Writer) Option {
	return func(o *core.Options) { ensureObs(o).DeferTrace(w) }
}

// ResetCache drops every entry of the process-wide memo cache that backs
// unbudgeted Generate calls. Cached and fresh results are byte-identical,
// so this only affects timing — it exists for cold-cache benchmarks.
func ResetCache() { memo.Shared().Reset() }

// CacheStats reports the cumulative hit/miss counters of the process-wide
// memo cache since the last ResetCache.
func CacheStats() (hits, misses uint64) { return memo.Shared().Stats() }

// CacheInfo is a point-in-time snapshot of the process-wide memo cache.
type CacheInfo struct {
	// Hits and Misses count lookups since the last ResetCache.
	Hits, Misses uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// DiskHits counts memory misses served by an attached durable tier
	// (the job subsystem's persisted memo entries); every disk hit is also
	// counted in Misses.
	DiskHits uint64
	// Entries is the current number of cached entries.
	Entries int
}

// CacheSnapshot reports the process-wide memo cache counters atomically
// (one lock acquisition), including evictions and the live entry count.
func CacheSnapshot() CacheInfo {
	s := memo.Shared().Snapshot()
	return CacheInfo{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, DiskHits: s.DiskHits, Entries: s.Entries}
}

// Stats reports the pipeline effort behind a generated test.
type Stats struct {
	// Classes is the number of BFE equivalence classes of the fault list.
	Classes int
	// Selections is the number of class selections enumerated.
	Selections int
	// TPGNodes is the Test Pattern Graph size of the winning selection.
	TPGNodes int
	// PathCost is the optimal ATSP visit cost of the winning selection.
	PathCost int
	// MinSelectionCost is the cheapest exact visit cost over every
	// deduplicated selection the sweep solved (0 when none was solved
	// exactly). The winner is picked by validated test quality, so
	// PathCost can exceed this; the value is identical across solver
	// modes and worker counts.
	MinSelectionCost int
	// Candidates is the number of rewrite candidates examined.
	Candidates int
	// Degraded reports that a soft budget (see WithBudget) ran out
	// mid-run and the pipeline downgraded somewhere: the test is still
	// simulator-validated complete for the fault list, but no longer
	// proven minimal.
	Degraded bool
	// FromCache reports that the whole result was served from the memo
	// cache (see WithoutCache): an earlier unbudgeted run already solved
	// this exact fault list under the same options. Cached results are
	// byte-identical to the run that produced them.
	FromCache bool
	// DegradedStages names the stages that downgraded, in order:
	// "select" (selection enumeration cut short), "atsp" (exact ordering
	// fell back to heuristics), "assemble" (candidate validation cut
	// short), "shrink" (redundancy elimination stopped early),
	// "fallback" (the bounded fallback search ran out of budget).
	DegradedStages []string
	// StageElapsed is the wall-clock time per pipeline stage — "expand",
	// "select", "atsp", "assemble", "validate", "shrink", "fallback",
	// "finalize" — measured at stage boundaries on the monotonic clock, so
	// the entries are non-overlapping windows that partition the run (a
	// stage absent from the map never ran). Values sum to at most Elapsed.
	StageElapsed map[string]time.Duration
	// Elapsed is the wall-clock generation time.
	Elapsed time.Duration
	// Metrics is the observability snapshot of the run — counters, gauges
	// and flattened histograms keyed by metric name (see the package
	// documentation of internal/obs for the naming scheme). Nil unless the
	// call enabled observation with WithMetrics or WithTrace.
	Metrics map[string]int64
}

// Result is a generated March test.
type Result struct {
	// Test is the generated March test: validated complete for the fault
	// list and non-redundant.
	Test *march.Test
	// Complexity is the number of operations per cell (the "kn" figure).
	Complexity int
	// Models is the parsed fault list.
	Models []fault.Model
	// Instances is the expanded set of fault instances the test detects.
	Instances []fault.Instance
	// Stats reports pipeline effort.
	Stats Stats
}

// Generate synthesises a minimal March test covering the comma-separated
// fault list, e.g. "SAF,TF,ADF" or "CFid<u,0>,CFin" (see package fault for
// the model names).
func Generate(faults string, opts ...Option) (*Result, error) {
	return GenerateCtx(context.Background(), faults, opts...)
}

// GenerateCtx is Generate under a cancellation context. Cancelling ctx (or
// passing its deadline) aborts generation promptly with ErrCanceled or
// ErrDeadlineExceeded. Combine with WithBudget for soft resource limits
// that degrade the result instead of aborting; a downgrade is reported in
// Stats.Degraded / Stats.DegradedStages.
func GenerateCtx(ctx context.Context, faults string, opts ...Option) (*Result, error) {
	models, err := fault.ParseList(faults)
	if err != nil {
		return nil, err
	}
	return GenerateModelsCtx(ctx, models, opts...)
}

// GenerateModels is Generate for an already-built fault model list — in
// particular one containing user-defined models from fault.Custom.
func GenerateModels(models []fault.Model, opts ...Option) (*Result, error) {
	return GenerateModelsCtx(context.Background(), models, opts...)
}

// GenerateModelsCtx is GenerateModels under a cancellation context; see
// GenerateCtx. It is also the library's panic boundary: an internal
// invariant failure anywhere in the pipeline surfaces as an
// *InternalError (matching errors.Is(err, ErrInternal)) carrying the
// stage name and stack, never as a raw panic.
func GenerateModelsCtx(ctx context.Context, models []fault.Model, opts ...Option) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &budget.InternalError{Stage: "generate", Value: r, Stack: debug.Stack()}
		}
	}()
	options := core.DefaultOptions()
	options.Cache = memo.Shared()
	for _, opt := range opts {
		opt(&options)
	}
	if options.Obs != nil {
		// Flush any trace sink bound by WithTrace; a write failure loses
		// the trace, never the result.
		defer func() { _ = options.Obs.Flush() }()
	}
	cres, err := core.GenerateCtx(ctx, models, options)
	if err != nil {
		return nil, err
	}
	return &Result{
		Test:       cres.Test,
		Complexity: cres.Complexity,
		Models:     models,
		Instances:  cres.Instances,
		Stats: Stats{
			Classes:          cres.Classes,
			Selections:       cres.Selections,
			TPGNodes:         cres.Nodes,
			PathCost:         cres.PathCost,
			MinSelectionCost: cres.MinSelectionCost,
			Candidates:       cres.Candidates,
			FromCache:        cres.FromCache,
			Degraded:         cres.Degraded,
			DegradedStages:   cres.DegradedStages,
			StageElapsed:     cres.StageElapsed,
			Elapsed:          cres.Elapsed,
			Metrics:          cres.Metrics,
		},
	}, nil
}
