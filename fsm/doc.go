// Package fsm implements the behavioural memory model of Benso, Di Carlo,
// Di Natale and Prinetto, "An Optimal Algorithm for the Automatic
// Generation of March Tests" (DATE 2002), Sections 2–3.
//
// A memory of two one-bit cells i and j (with address(i) < address(j)) is a
// deterministic Mealy automaton M = (Q, X, Y, δ, λ): states are the cell
// contents (with "–"/X for uninitialised cells), inputs are per-cell reads
// and writes plus the wait symbol T, and outputs are read values. The good
// memory is the machine M0 of the paper's Figure 1; a faulty memory departs
// from M0 in one or more Basic Fault Effects (BFEs) — single-point δ or λ
// deviations — or, for address-decoder faults, in a remapping of logical
// addresses to physical cells (AccessMap).
//
// The two-cell model is sufficient to express every classical single-cell
// and two-cell memory fault, because a March test applies the same
// operations to every cell and only the relative address order of an
// aggressor/victim pair matters.
//
// The package also provides the guaranteed-detection semantics used
// throughout this module: a sequence detects a faulty machine if, for every
// possible initial memory content, some read returns a value different from
// the fault-free response. ShortestDetecting searches the product of the
// good and faulty machines for a minimal detecting sequence; Pattern is the
// paper's Test Pattern triplet TP = (I, E, O).
package fsm
