package fsm

import "marchgen/march"

// Machine is a deterministic Mealy automaton over the two-cell memory:
// M = (Q, X, Y, δ, λ) in the paper's formulation (f.2.1 / f.2.2).
// Next is δ, Output is λ. Output returns X for inputs that produce no
// output (writes, waits) and for reads whose value cannot be relied upon.
type Machine struct {
	// Name identifies the modelled behaviour (fault-free or a BFE).
	Name   string
	next   func(State, Input) State
	output func(State, Input) march.Bit
}

// Next applies δ.
func (m Machine) Next(s State, in Input) State { return m.next(s, in) }

// Output applies λ.
func (m Machine) Output(s State, in Input) march.Bit { return m.output(s, in) }

// New builds a machine from explicit δ and λ functions.
func New(name string, next func(State, Input) State, output func(State, Input) march.Bit) Machine {
	return Machine{Name: name, next: next, output: output}
}

func goodNext(s State, in Input) State {
	if in.Kind == OpWrite {
		return s.With(in.Cell, in.Data)
	}
	return s
}

func goodOutput(s State, in Input) march.Bit {
	if in.Kind == OpRead {
		return s.Get(in.Cell)
	}
	return march.X
}

// Good returns M0, the fault-free memory machine of the paper's Figure 1:
// writes store their data, reads return the stored value, waits do nothing.
func Good() Machine {
	return Machine{Name: "M0", next: goodNext, output: goodOutput}
}

// Deviation is one Basic Fault Effect (BFE): a single (state, input) point
// at which the faulty machine departs from the good machine, either in its
// next state (δ deviation), in its read output (λ deviation), or — for the
// read-disturb fault class of the literature — in both.
type Deviation struct {
	// When is the state pattern in which the deviation triggers; X bits
	// match any value.
	When State
	// On is the triggering input. A write trigger with X data matches
	// both write values.
	On Input
	// Next, when non-nil, is the faulty next state. X bits inherit the
	// good machine's next-state value, so Next only needs to name the
	// cells the fault corrupts.
	Next *State
	// Out, when non-nil, is the faulty output of a read trigger.
	Out *march.Bit
}

// TransitionDev builds a δ deviation: in states matching when, input on
// drives the machine to next (X bits of next inherit the good next state).
func TransitionDev(when State, on Input, next State) Deviation {
	n := next
	return Deviation{When: when, On: on, Next: &n}
}

// OutputDev builds a λ deviation: in states matching when, the read on
// returns out instead of the stored value.
func OutputDev(when State, on Input, out march.Bit) Deviation {
	o := out
	return Deviation{When: when, On: on, Out: &o}
}

// TransitionOutputDev builds a combined deviation (e.g. a read-destructive
// fault: the read corrupts the cell and returns the corrupted value).
func TransitionOutputDev(when State, on Input, next State, out march.Bit) Deviation {
	n, o := next, out
	return Deviation{When: when, On: on, Next: &n, Out: &o}
}

// Triggers reports whether the deviation fires for input in at state s.
func (d Deviation) Triggers(s State, in Input) bool {
	return in.Matches(d.On) && s.Matches(d.When)
}

// String renders the deviation for diagnostics, e.g.
// "(01) --w1i--> (10)" or "(0-) --ri--> out 1".
func (d Deviation) String() string {
	out := "(" + d.When.String() + ") --" + d.On.String() + "--> "
	switch {
	case d.Next != nil && d.Out != nil:
		return out + "(" + d.Next.String() + ") out " + d.Out.String()
	case d.Next != nil:
		return out + "(" + d.Next.String() + ")"
	case d.Out != nil:
		return out + "out " + d.Out.String()
	default:
		return out + "(no effect)"
	}
}

// WithDeviations returns the faulty machine Mi whose behaviour equals the
// good machine M0 except at the given deviation points. When several
// deviations trigger for the same (state, input), the first one listed
// wins.
func WithDeviations(name string, devs ...Deviation) Machine {
	devCopy := append([]Deviation(nil), devs...)
	next := func(s State, in Input) State {
		good := goodNext(s, in)
		for _, d := range devCopy {
			if d.Triggers(s, in) {
				if d.Next != nil {
					return good.Merge(*d.Next)
				}
				return good
			}
		}
		return good
	}
	output := func(s State, in Input) march.Bit {
		for _, d := range devCopy {
			if d.Triggers(s, in) {
				if d.Out != nil {
					return *d.Out
				}
				break
			}
		}
		return goodOutput(s, in)
	}
	return Machine{Name: name, next: next, output: output}
}
