package fsm

import (
	"fmt"

	"marchgen/march"
)

// InputKind is the kind of a memory operation in the model's input
// alphabet X = {r_i, w0_i, w1_i | cell i} ∪ {T}.
type InputKind uint8

const (
	// OpRead reads a cell. Unlike a March read-and-verify, the model-level
	// read carries no expected value: the fault-free machine defines the
	// expected output.
	OpRead InputKind = iota
	// OpWrite stores Data into Cell.
	OpWrite
	// OpWait is the wait operation T, used to excite data-retention
	// faults. It addresses no cell.
	OpWait
)

// Input is one symbol of the model's input alphabet.
type Input struct {
	// Kind is the operation class: read, write or wait.
	Kind InputKind
	// Cell is the addressed cell; unused for waits.
	Cell Cell
	// Data is the write data; X for reads and waits.
	Data march.Bit
}

// Rd returns the read input for cell c.
func Rd(c Cell) Input { return Input{Kind: OpRead, Cell: c, Data: march.X} }

// Wr returns the write input storing d into cell c.
func Wr(c Cell, d march.Bit) Input { return Input{Kind: OpWrite, Cell: c, Data: d} }

// Wait is the wait symbol T.
var Wait = Input{Kind: OpWait, Data: march.X}

// IsRead reports whether the input is a read.
func (in Input) IsRead() bool { return in.Kind == OpRead }

// IsWrite reports whether the input is a write.
func (in Input) IsWrite() bool { return in.Kind == OpWrite }

// IsWait reports whether the input is the wait symbol.
func (in Input) IsWait() bool { return in.Kind == OpWait }

// String renders the input in the paper's notation: "ri", "w0j", "T".
func (in Input) String() string {
	switch in.Kind {
	case OpRead:
		return "r" + in.Cell.String()
	case OpWrite:
		return "w" + in.Data.String() + in.Cell.String()
	case OpWait:
		return "T"
	default:
		return fmt.Sprintf("Input(%d)", uint8(in.Kind))
	}
}

// Matches reports whether a concrete input in satisfies the trigger
// description trig: kinds must agree; reads and writes must address the
// same cell; a write trigger with concrete data requires equal data.
func (in Input) Matches(trig Input) bool {
	if in.Kind != trig.Kind {
		return false
	}
	if in.Kind == OpWait {
		return true
	}
	if in.Cell != trig.Cell {
		return false
	}
	if in.Kind == OpWrite && trig.Data != march.X && in.Data != trig.Data {
		return false
	}
	return true
}

// Alphabet returns the full input alphabet of the two-cell model:
// w0i, w1i, w0j, w1j, ri, rj, T.
func Alphabet() []Input {
	return []Input{
		Wr(CellI, march.Zero), Wr(CellI, march.One),
		Wr(CellJ, march.Zero), Wr(CellJ, march.One),
		Rd(CellI), Rd(CellJ),
		Wait,
	}
}

// Sequence is a convenience formatter for input sequences, rendering
// "w0i, w1j, ri".
func Sequence(seq []Input) string {
	out := ""
	for k, in := range seq {
		if k > 0 {
			out += ", "
		}
		out += in.String()
	}
	return out
}
