package fsm

import (
	"fmt"

	"marchgen/march"
)

// Run applies the input sequence to the machine from the given initial
// state and returns the state after every input and the output of every
// input (X for non-reads).
func Run(m Machine, init State, seq []Input) (states []State, outputs []march.Bit) {
	states = make([]State, len(seq))
	outputs = make([]march.Bit, len(seq))
	s := init
	for k, in := range seq {
		outputs[k] = m.Output(s, in)
		s = m.Next(s, in)
		states[k] = s
	}
	return states, outputs
}

// expectedOutputs returns the fault-free outputs of the sequence, computed
// from the fully uninitialised state: a position is X when the good value
// cannot be known (read before write), and such reads never count as
// observations.
func expectedOutputs(seq []Input) []march.Bit {
	outs := make([]march.Bit, len(seq))
	s := Unknown
	for k, in := range seq {
		outs[k] = goodOutput(s, in)
		s = goodNext(s, in)
	}
	return outs
}

// Detects reports whether the input sequence is guaranteed to expose the
// faulty machine m: for every possible initial memory content, at least one
// read returns a value different from the fault-free memory's response.
// Reads whose fault-free value is unknown are ignored.
func Detects(m Machine, seq []Input) bool {
	expect := expectedOutputs(seq)
	for _, init := range ConcreteStates() {
		s := init
		found := false
		for k, in := range seq {
			if in.Kind == OpRead && mismatch(expect[k], m.Output(s, in)) {
				found = true
				break
			}
			s = m.Next(s, in)
		}
		if !found {
			return false
		}
	}
	return true
}

// DetectingReads returns the indices of the reads in seq that individually
// guarantee detection of m: the faulty output at that position differs from
// the fault-free output for every possible initial memory content. These
// positions are the "elementary blocks" usable in the paper's Coverage
// Matrix.
func DetectingReads(m Machine, seq []Input) []int {
	expect := expectedOutputs(seq)
	inits := ConcreteStates()
	faulty := make([][]march.Bit, len(inits))
	for v, init := range inits {
		_, faulty[v] = Run(m, init, seq)
	}
	var idx []int
	for k, in := range seq {
		if !in.IsRead() {
			continue
		}
		all := true
		for v := range inits {
			if !mismatch(expect[k], faulty[v][k]) {
				all = false
				break
			}
		}
		if all {
			idx = append(idx, k)
		}
	}
	return idx
}

// MismatchingReads returns the positions in seq whose reads expose the
// faulty machine m for one specific initial memory content: the faulty
// output differs from the (initialisation-independent) fault-free output.
func MismatchingReads(m Machine, seq []Input, init State) []int {
	expect := expectedOutputs(seq)
	_, outs := Run(m, init, seq)
	var idx []int
	for k := range seq {
		if mismatch(expect[k], outs[k]) {
			idx = append(idx, k)
		}
	}
	return idx
}

// mismatch reports whether a faulty output g is a guaranteed-observable
// discrepancy from the expected output e: both values must be concrete.
func mismatch(e, f march.Bit) bool {
	return e.Known() && f.Known() && e != f
}

// searchState is the product-automaton state used by ShortestDetecting:
// the fault-free state plus the faulty state reached from each of the four
// possible initial contents, plus a bit set of the initial contents already
// exposed by an earlier read.
type searchState struct {
	good     State
	faulty   [4]State
	detected uint8
}

// ShortestDetecting returns a shortest input sequence guaranteed to detect
// the faulty machine m (in the sense of Detects), or an error if no such
// sequence of length ≤ maxLen exists — which, in the paper's terms, means
// the fault is undetectable (or requires a longer excitation than the
// bound). The search is a breadth-first traversal of the product of the
// good machine and the four initial-content runs of the faulty machine.
func ShortestDetecting(m Machine, maxLen int) ([]Input, error) {
	inits := ConcreteStates()
	start := searchState{good: Unknown}
	start.faulty = inits

	type node struct {
		state searchState
		depth int
	}
	parent := map[searchState]struct {
		prev searchState
		in   Input
	}{}
	seen := map[searchState]bool{start: true}
	queue := []node{{state: start}}
	alphabet := Alphabet()

	reconstruct := func(end searchState) []Input {
		var rev []Input
		cur := end
		for cur != start {
			p := parent[cur]
			rev = append(rev, p.in)
			cur = p.prev
		}
		seq := make([]Input, len(rev))
		for k := range rev {
			seq[k] = rev[len(rev)-1-k]
		}
		return seq
	}

	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.depth >= maxLen {
			continue
		}
		for _, in := range alphabet {
			// Never read a cell whose fault-free value is unknown: the
			// expected value of such a read is undefined.
			if in.IsRead() && !goodOutput(n.state.good, in).Known() {
				continue
			}
			next := searchState{
				good:     goodNext(n.state.good, in),
				detected: n.state.detected,
			}
			for v := range inits {
				if in.IsRead() && n.state.detected&(1<<v) == 0 {
					e := goodOutput(n.state.good, in)
					f := m.Output(n.state.faulty[v], in)
					if mismatch(e, f) {
						next.detected |= 1 << v
					}
				}
				next.faulty[v] = m.Next(n.state.faulty[v], in)
			}
			if seen[next] {
				continue
			}
			seen[next] = true
			parent[next] = struct {
				prev searchState
				in   Input
			}{n.state, in}
			if next.detected == 0b1111 {
				return reconstruct(next), nil
			}
			queue = append(queue, node{state: next, depth: n.depth + 1})
		}
	}
	return nil, fmt.Errorf("fsm: no detecting sequence of length ≤ %d for %s", maxLen, m.Name)
}
