package fsm

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the machine as a Graphviz digraph over the four concrete
// states, regenerating the paper's FSM figures (Figure 1 for the good
// machine, Figure 2 for a faulty machine). Edges are grouped: all inputs
// producing the same (source, destination, output) triple share one edge,
// matching the figures' "(w0i, w0j, T) / -" labels. Deviating edges — those
// whose destination or output differs from the good machine's — are drawn
// bold, as in Figure 2.
func Dot(m Machine) string {
	good := Good()
	type key struct {
		from, to State
		out      string
	}
	groups := map[key][]string{}
	deviant := map[key]bool{}
	for _, s := range ConcreteStates() {
		for _, in := range Alphabet() {
			to := m.Next(s, in)
			out := m.Output(s, in).String()
			k := key{from: s, to: to, out: out}
			groups[k] = append(groups[k], in.String())
			if to != good.Next(s, in) || out != good.Output(s, in).String() {
				deviant[k] = true
			}
		}
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.from != kb.from {
			return ka.from.String() < kb.from.String()
		}
		if ka.to != kb.to {
			return ka.to.String() < kb.to.String()
		}
		return ka.out < kb.out
	})

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.Name)
	b.WriteString("\trankdir=LR;\n\tnode [shape=circle];\n")
	for _, s := range ConcreteStates() {
		fmt.Fprintf(&b, "\t%q;\n", s.String())
	}
	for _, k := range keys {
		label := strings.Join(groups[k], ", ")
		if len(groups[k]) > 1 {
			label = "(" + label + ")"
		}
		attrs := fmt.Sprintf("label=%q", label+" / "+k.out)
		if deviant[k] {
			attrs += ", style=bold, color=red"
		}
		fmt.Fprintf(&b, "\t%q -> %q [%s];\n", k.from.String(), k.to.String(), attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
