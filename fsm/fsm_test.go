package fsm

import (
	"strings"
	"testing"
	"testing/quick"

	"marchgen/march"
)

// cfid0AggI is the BFE of the idempotent coupling fault ⟨↑;0⟩ with
// aggressor i: a rising write on i forces j to 0 (the bold edge of the
// paper's Figure 2 / left machine of Figure 3).
func cfid0AggI() Deviation {
	return TransitionDev(S(march.Zero, march.One), Wr(CellI, march.One), S(march.X, march.Zero))
}

// cfid0AggJ is the symmetric BFE with aggressor j.
func cfid0AggJ() Deviation {
	return TransitionDev(S(march.One, march.Zero), Wr(CellJ, march.One), S(march.Zero, march.X))
}

func TestGoodMachineSemantics(t *testing.T) {
	m := Good()
	for _, s := range ConcreteStates() {
		for _, c := range Cells() {
			for _, d := range []march.Bit{march.Zero, march.One} {
				next := m.Next(s, Wr(c, d))
				if next.Get(c) != d {
					t.Errorf("write %v to %v in %v: got %v", d, c, s, next)
				}
				if next.Get(c.Other()) != s.Get(c.Other()) {
					t.Errorf("write to %v disturbed other cell: %v -> %v", c, s, next)
				}
			}
			if out := m.Output(s, Rd(c)); out != s.Get(c) {
				t.Errorf("read %v in %v: got %v", c, s, out)
			}
			if next := m.Next(s, Rd(c)); next != s {
				t.Errorf("read %v changed state %v -> %v", c, s, next)
			}
		}
		if next := m.Next(s, Wait); next != s {
			t.Errorf("wait changed state %v -> %v", s, next)
		}
		if out := m.Output(s, Wait); out != march.X {
			t.Errorf("wait produced output %v", out)
		}
	}
}

// TestM0MatchesFigure1 checks the fault-free machine against the structure
// of the paper's Figure 1: 4 states, and from each state exactly the edges
// the figure draws (self-loops for reads, waits and idempotent writes;
// cross edges for value-changing writes).
func TestM0MatchesFigure1(t *testing.T) {
	m := Good()
	selfLoops := 0
	crossEdges := 0
	for _, s := range ConcreteStates() {
		for _, in := range Alphabet() {
			next := m.Next(s, in)
			if next == s {
				selfLoops++
			} else {
				crossEdges++
			}
		}
	}
	// Per state: reads (2) + wait (1) + idempotent writes (2) loop;
	// the two value-changing writes leave. 4 states × {5 loops, 2 moves}.
	if selfLoops != 20 || crossEdges != 8 {
		t.Errorf("M0 structure: %d self-loops, %d cross edges; want 20, 8", selfLoops, crossEdges)
	}
	// Figure 1 spot checks: 00 --w1i--> 10 / -, 10 --ri--> 10 / 1.
	if next := m.Next(S(march.Zero, march.Zero), Wr(CellI, march.One)); next != S(march.One, march.Zero) {
		t.Errorf("00 --w1i--> %v", next)
	}
	if out := m.Output(S(march.One, march.Zero), Rd(CellI)); out != march.One {
		t.Errorf("10 --ri--> out %v", out)
	}
}

// TestFigure2Deviations checks that the machine M1 modelling the ⟨↑;0⟩
// idempotent coupling fault differs from M0 in exactly the two bold edges
// of Figure 2: 01 --w1i--> 10 and 10 --w1j--> 01.
func TestFigure2Deviations(t *testing.T) {
	m1 := WithDeviations("M1", cfid0AggI(), cfid0AggJ())
	good := Good()
	var devs []string
	for _, s := range ConcreteStates() {
		for _, in := range Alphabet() {
			if m1.Next(s, in) != good.Next(s, in) {
				devs = append(devs, s.String()+"/"+in.String())
			}
			if m1.Output(s, in) != good.Output(s, in) {
				t.Errorf("unexpected λ deviation at %v/%v", s, in)
			}
		}
	}
	want := []string{"01/w1i", "10/w1j"}
	if len(devs) != 2 || devs[0] != want[0] || devs[1] != want[1] {
		t.Fatalf("δ deviations %v, want %v", devs, want)
	}
	if m1.Next(S(march.Zero, march.One), Wr(CellI, march.One)) != S(march.One, march.Zero) {
		t.Error("01 --w1i--> must reach 10 in M1")
	}
	if m1.Next(S(march.One, march.Zero), Wr(CellJ, march.One)) != S(march.Zero, march.One) {
		t.Error("10 --w1j--> must reach 01 in M1")
	}
}

func TestDetects(t *testing.T) {
	aggI := WithDeviations("cfid<u,0> agg=i", cfid0AggI())
	detecting := []Input{Wr(CellI, march.Zero), Wr(CellJ, march.One), Wr(CellI, march.One), Rd(CellJ)}
	if !Detects(aggI, detecting) {
		t.Error("canonical sequence must detect the aggressor-i BFE")
	}
	// Without forcing i to 0 first, the initial content 10 escapes.
	weak := []Input{Wr(CellJ, march.One), Wr(CellI, march.One), Rd(CellJ)}
	if Detects(aggI, weak) {
		t.Error("sequence without i initialisation must not guarantee detection")
	}
	// The good machine is never detected as faulty.
	if Detects(Good(), detecting) {
		t.Error("good machine flagged as faulty")
	}
}

func TestDetectingReads(t *testing.T) {
	aggI := WithDeviations("cfid<u,0> agg=i", cfid0AggI())
	seq := []Input{
		Wr(CellI, march.Zero), Wr(CellJ, march.One),
		Rd(CellJ), // fault not yet excited: no detection here
		Wr(CellI, march.One),
		Rd(CellJ), // j has been forced to 0, expected 1: detects
		Rd(CellI), // i is fine
	}
	idx := DetectingReads(aggI, seq)
	if len(idx) != 1 || idx[0] != 4 {
		t.Errorf("DetectingReads = %v, want [4]", idx)
	}
}

func TestShortestDetecting(t *testing.T) {
	aggI := WithDeviations("cfid<u,0> agg=i", cfid0AggI())
	seq, err := ShortestDetecting(aggI, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 4 {
		t.Errorf("shortest detecting sequence %v has length %d, want 4", Sequence(seq), len(seq))
	}
	if !Detects(aggI, seq) {
		t.Errorf("sequence %v claimed shortest but does not detect", Sequence(seq))
	}
	if _, err := ShortestDetecting(Good(), 6); err == nil {
		t.Error("the good machine must be undetectable")
	}
}

func TestShortestDetectingStuckAt(t *testing.T) {
	// SA0 on cell i, modelled as a forcing deviation: any w1i yields 0.
	sa0 := WithDeviations("SA0@i",
		TransitionDev(Unknown, Wr(CellI, march.One), S(march.Zero, march.X)))
	seq, err := ShortestDetecting(sa0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 { // w1i, ri
		t.Errorf("SA0 shortest sequence %v, want length 2", Sequence(seq))
	}
}

func TestPatternTP1(t *testing.T) {
	// TP1 = (01, w1i, r1j) from Section 3 of the paper.
	tp1 := NewPattern(S(march.Zero, march.One), []Input{Wr(CellI, march.One)}, Rd(CellJ))
	if err := tp1.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tp1.GoodObservation(); got != march.One {
		t.Errorf("TP1 expected read value %v, want 1", got)
	}
	if got := tp1.ObserveState(); got != S(march.One, march.One) {
		t.Errorf("TP1 observation state %v, want 11", got)
	}
	if tp1.String() != "(01, w1i, r1j)" {
		t.Errorf("TP1 notation %q", tp1.String())
	}
	aggI := WithDeviations("cfid<u,0> agg=i", cfid0AggI())
	aggJ := WithDeviations("cfid<u,0> agg=j", cfid0AggJ())
	if !DetectsPattern(aggI, tp1) {
		t.Error("TP1 must detect the aggressor-i BFE")
	}
	if DetectsPattern(aggJ, tp1) {
		t.Error("TP1 must not detect the aggressor-j BFE")
	}
}

func TestPatternSequence(t *testing.T) {
	tp := NewPattern(S(march.Zero, march.One), []Input{Wr(CellI, march.One)}, Rd(CellJ))
	want := []Input{Wr(CellI, march.Zero), Wr(CellJ, march.One), Wr(CellI, march.One), Rd(CellJ)}
	got := tp.Sequence()
	if len(got) != len(want) {
		t.Fatalf("sequence %v", Sequence(got))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("sequence %v, want %v", Sequence(got), Sequence(want))
		}
	}
}

func TestPatternValidateRejects(t *testing.T) {
	bad := NewPattern(Unknown, nil, Wr(CellI, march.One))
	if err := bad.Validate(); err == nil {
		t.Error("non-read observation must not validate")
	}
	unknownRead := NewPattern(Unknown, nil, Rd(CellJ))
	if err := unknownRead.Validate(); err == nil {
		t.Error("observation of uninitialised cell must not validate")
	}
}

func TestAccessMapGoodIsGood(t *testing.T) {
	m := GoodAccess().Machine()
	good := Good()
	for _, s := range ConcreteStates() {
		for _, in := range Alphabet() {
			if m.Next(s, in) != good.Next(s, in) {
				t.Errorf("good access map δ differs at %v/%v", s, in)
			}
			if m.Output(s, in) != good.Output(s, in) {
				t.Errorf("good access map λ differs at %v/%v", s, in)
			}
		}
	}
}

func TestAccessMapWrongCell(t *testing.T) {
	// AF: address i maps entirely to cell j.
	af := AccessMap{
		Name:   "AF i->j",
		Writes: [2][]Cell{{CellJ}, {CellJ}},
		Reads:  [2][]Cell{{CellJ}, {CellJ}},
	}
	m := af.Machine()
	s := S(march.Zero, march.Zero)
	s = m.Next(s, Wr(CellI, march.One))
	if s != S(march.Zero, march.One) {
		t.Fatalf("write to i must land in j: %v", s)
	}
	if out := m.Output(s, Rd(CellI)); out != march.One {
		t.Errorf("read of i must sense j: %v", out)
	}
	// The canonical ascending (r0,w1) element exposes this fault.
	seq := []Input{
		Wr(CellI, march.Zero), Wr(CellJ, march.Zero), // ⇕(w0)
		Rd(CellI), Wr(CellI, march.One), // ⇑(r0,w1) at i
		Rd(CellJ), Wr(CellJ, march.One), // ⇑(r0,w1) at j
	}
	if !Detects(m, seq) {
		t.Error("⇕(w0);⇑(r0,w1) must detect the i->j address fault")
	}
}

func TestAccessMapMultiCellRead(t *testing.T) {
	af := AccessMap{
		Name:   "AF i->{i,j}",
		Writes: [2][]Cell{{CellI, CellJ}, {CellJ}},
		Reads:  [2][]Cell{{CellI, CellJ}, {CellJ}},
		Comb:   CombOr,
	}
	m := af.Machine()
	s := S(march.Zero, march.One)
	if out := m.Output(s, Rd(CellI)); out != march.One {
		t.Errorf("wired-OR read: %v, want 1", out)
	}
	af.Comb = CombAnd
	m = af.Machine()
	if out := m.Output(s, Rd(CellI)); out != march.Zero {
		t.Errorf("wired-AND read: %v, want 0", out)
	}
}

func TestAccessMapFloating(t *testing.T) {
	af := AccessMap{
		Name:   "AF i->nothing",
		Writes: [2][]Cell{nil, {CellJ}},
		Reads:  [2][]Cell{nil, {CellJ}},
		Float:  march.One,
	}
	m := af.Machine()
	s := S(march.Zero, march.Zero)
	if next := m.Next(s, Wr(CellI, march.One)); next != s {
		t.Errorf("write to unmapped address must be lost: %v", next)
	}
	if out := m.Output(s, Rd(CellI)); out != march.One {
		t.Errorf("floating read must return Float: %v", out)
	}
}

func TestCombineTernary(t *testing.T) {
	cases := []struct {
		c    Comb
		a, b march.Bit
		want march.Bit
	}{
		{CombOr, march.Zero, march.Zero, march.Zero},
		{CombOr, march.Zero, march.One, march.One},
		{CombOr, march.X, march.One, march.One},
		{CombOr, march.X, march.Zero, march.X},
		{CombAnd, march.One, march.One, march.One},
		{CombAnd, march.X, march.Zero, march.Zero},
		{CombAnd, march.X, march.One, march.X},
	}
	for _, c := range cases {
		if got := combine(c.c, c.a, c.b); got != c.want {
			t.Errorf("combine(%v,%v,%v) = %v, want %v", c.c, c.a, c.b, got, c.want)
		}
	}
}

func TestStateHelpers(t *testing.T) {
	s := S(march.Zero, march.X)
	if s.HammingTo(S(march.One, march.One)) != 2 {
		t.Error("HammingTo must count unknown-to-concrete as one write")
	}
	if s.HammingTo(S(march.Zero, march.X)) != 0 {
		t.Error("HammingTo of satisfied pattern must be 0")
	}
	if !S(march.One, march.One).Uniform() || S(march.Zero, march.One).Uniform() || !S(march.Zero, march.Zero).Uniform() {
		t.Error("Uniform misclassifies")
	}
	if Unknown.Uniform() {
		t.Error("unknown state is not uniform")
	}
	if !S(march.Zero, march.One).Matches(S(march.X, march.One)) {
		t.Error("pattern with X must match")
	}
	if S(march.X, march.One).Matches(S(march.Zero, march.X)) {
		t.Error("unknown bit must not satisfy concrete requirement")
	}
	if got := Unknown.Merge(S(march.One, march.X)); got != S(march.One, march.X) {
		t.Errorf("Merge: %v", got)
	}
}

func TestDotOutput(t *testing.T) {
	d := Dot(Good())
	if !strings.Contains(d, "digraph") || !strings.Contains(d, `"00" -> "10"`) {
		t.Errorf("good machine dot missing structure:\n%s", d)
	}
	if strings.Contains(d, "style=bold") {
		t.Error("good machine must have no bold edges")
	}
	m1 := WithDeviations("M1", cfid0AggI(), cfid0AggJ())
	d1 := Dot(m1)
	if got := strings.Count(d1, "style=bold"); got != 2 {
		t.Errorf("M1 dot must bold exactly the 2 deviating edges, got %d", got)
	}
}

func TestInputString(t *testing.T) {
	if Wr(CellI, march.Zero).String() != "w0i" || Rd(CellJ).String() != "rj" || Wait.String() != "T" {
		t.Error("input notation wrong")
	}
}

func TestInputMatches(t *testing.T) {
	if !Wr(CellI, march.One).Matches(Wr(CellI, march.X)) {
		t.Error("X-data write trigger must match any write to the cell")
	}
	if Wr(CellI, march.One).Matches(Wr(CellJ, march.X)) {
		t.Error("write trigger must be cell-specific")
	}
	if !Wait.Matches(Wait) {
		t.Error("wait must match wait")
	}
	if Rd(CellI).Matches(Wr(CellI, march.X)) {
		t.Error("read must not match write trigger")
	}
}

// Property: on the good machine, writing d to c and reading c returns d,
// from any state.
func TestQuickGoodWriteRead(t *testing.T) {
	f := func(i, j, d uint8, cell bool) bool {
		s := S(march.Bit(i%3), march.Bit(j%3))
		c := CellI
		if cell {
			c = CellJ
		}
		val := march.Bit(d % 2)
		m := Good()
		next := m.Next(s, Wr(c, val))
		return m.Output(next, Rd(c)) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Detects is monotone under sequence extension — appending
// operations never un-detects a fault... this is false in general for
// reads (they cannot "undo" a past mismatch), so we check the true
// invariant: a detected prefix stays detected.
func TestQuickDetectPrefixMonotone(t *testing.T) {
	aggI := WithDeviations("cfid<u,0> agg=i", cfid0AggI())
	base := []Input{Wr(CellI, march.Zero), Wr(CellJ, march.One), Wr(CellI, march.One), Rd(CellJ)}
	f := func(extra uint8) bool {
		alphabet := Alphabet()
		seq := append(append([]Input(nil), base...), alphabet[int(extra)%len(alphabet)])
		return Detects(aggI, seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
