package fsm

import (
	"fmt"

	"marchgen/march"
)

// Pattern is a Test Pattern in the paper's sense (f.2.3): a triplet
// TP = (I, E, O) of an initialisation state, an exciting operation sequence
// and an observing read. Applying the pattern means: drive the memory to
// state I, apply E, then perform the read O and verify that it returns the
// fault-free value.
type Pattern struct {
	// Init is the initialisation state; X bits are don't-cares.
	Init State
	// Excite is the exciting operation sequence. It is empty for state
	// faults that are excited by the initialisation itself, a single
	// write or read for most faults, and {Wait} for retention faults.
	Excite []Input
	// Observe is the observing read.
	Observe Input
}

// NewPattern builds a pattern, copying the excitation sequence.
func NewPattern(init State, excite []Input, observe Input) Pattern {
	return Pattern{Init: init, Excite: append([]Input(nil), excite...), Observe: observe}
}

// Validate reports structural problems: a non-read observation, a non-read
// non-write non-wait excitation, or an observation whose fault-free value
// is not defined by the pattern (read of a cell that is neither initialised
// nor written).
func (p Pattern) Validate() error {
	if !p.Observe.IsRead() {
		return fmt.Errorf("fsm: pattern observation %s is not a read", p.Observe)
	}
	if !p.GoodObservation().Known() {
		return fmt.Errorf("fsm: pattern %s observes a cell with unknown fault-free value", p)
	}
	return nil
}

// ObserveState returns the fault-free memory state at the moment the
// observing read is applied (the "observation state" S_S used as the source
// state of TPG edge weights). Don't-care bits of Init stay X.
func (p Pattern) ObserveState() State {
	s := p.Init
	for _, in := range p.Excite {
		s = goodNext(s, in)
	}
	return s
}

// GoodObservation returns the value the observing read returns on the
// fault-free memory, i.e. the d of the paper's read-and-verify operation
// r_d. It is X when the pattern under-constrains the observed cell.
func (p Pattern) GoodObservation() march.Bit {
	return goodOutput(p.ObserveState(), p.Observe)
}

// InitWrites returns the writes establishing the concrete bits of Init,
// cell i first.
func (p Pattern) InitWrites() []Input {
	var seq []Input
	if p.Init.I.Known() {
		seq = append(seq, Wr(CellI, p.Init.I))
	}
	if p.Init.J.Known() {
		seq = append(seq, Wr(CellJ, p.Init.J))
	}
	return seq
}

// Sequence flattens the pattern into a standalone input sequence:
// initialisation writes, excitation, observation.
func (p Pattern) Sequence() []Input {
	seq := p.InitWrites()
	seq = append(seq, p.Excite...)
	return append(seq, p.Observe)
}

// EstablishedSequence is like Sequence but drives each concrete bit of the
// initialisation state through an explicit transition (write the
// complement, then the value). This guards the initialisation against
// faults that are excited by a non-transition write — e.g. a write
// destructive fault, where a naive "w0 to make the cell 0" is itself the
// excitation and the subsequent exciting write repairs the corruption.
func (p Pattern) EstablishedSequence() []Input {
	var seq []Input
	for _, c := range Cells() {
		if v := p.Init.Get(c); v.Known() {
			seq = append(seq, Wr(c, v.Not()), Wr(c, v))
		}
	}
	seq = append(seq, p.Excite...)
	return append(seq, p.Observe)
}

// DetectsPattern reports whether the pattern, applied as a standalone
// sequence, is guaranteed to detect the faulty machine m at its observing
// read, for every possible initial memory content.
func DetectsPattern(m Machine, p Pattern) bool {
	return detectsAtLastRead(m, p.Sequence())
}

// DetectsPatternEstablished is DetectsPattern with the transition-
// established initialisation of EstablishedSequence.
func DetectsPatternEstablished(m Machine, p Pattern) bool {
	return detectsAtLastRead(m, p.EstablishedSequence())
}

func detectsAtLastRead(m Machine, seq []Input) bool {
	for _, k := range DetectingReads(m, seq) {
		if k == len(seq)-1 {
			return true
		}
	}
	return false
}

// String renders the pattern in the paper's triplet notation, e.g.
// "(01, w1i, r1j)".
func (p Pattern) String() string {
	e := "ε"
	if len(p.Excite) > 0 {
		e = Sequence(p.Excite)
	}
	obs := p.Observe.String()
	if d := p.GoodObservation(); d.Known() {
		// Annotate the read with the expected value: r1j.
		obs = "r" + d.String() + p.Observe.Cell.String()
	}
	return "(" + p.Init.String() + ", " + e + ", " + obs + ")"
}
