package fsm

import "marchgen/march"

// Comb selects how a read combines the values of several physical cells
// when an address decoder fault makes one address sense more than one cell.
// Which combination applies is a property of the memory technology; the
// fault library instantiates both.
type Comb uint8

const (
	// CombOr models wired-OR bit lines: the read returns 1 if any sensed
	// cell holds 1.
	CombOr Comb = iota
	// CombAnd models wired-AND bit lines.
	CombAnd
)

// String returns "or" or "and".
func (c Comb) String() string {
	if c == CombAnd {
		return "and"
	}
	return "or"
}

// AccessMap describes an address-decoder fault (AF) as a remapping of
// logical addresses to physical cells, following van de Goor's four AF
// types: an address may access no cell, the wrong cell, several cells, or
// share a cell with another address.
type AccessMap struct {
	// Name identifies the decoder-fault variant.
	Name string
	// Writes[c] lists the physical cells actually written by a write to
	// address c. An empty list loses the write.
	Writes [2][]Cell
	// Reads[c] lists the physical cells sensed by a read of address c.
	// An empty list models a floating line returning Float.
	Reads [2][]Cell
	// Float is the value returned by a read whose line is floating.
	Float march.Bit
	// Comb combines multi-cell reads.
	Comb Comb
}

// GoodAccess is the identity access map (no address fault).
func GoodAccess() AccessMap {
	return AccessMap{
		Name:   "good-access",
		Writes: [2][]Cell{{CellI}, {CellJ}},
		Reads:  [2][]Cell{{CellI}, {CellJ}},
	}
}

// Machine returns the Mealy machine implementing the access map.
func (a AccessMap) Machine() Machine {
	writes := a.Writes
	reads := a.Reads
	flt := a.Float
	comb := a.Comb
	next := func(s State, in Input) State {
		if in.Kind != OpWrite {
			return s
		}
		for _, c := range writes[in.Cell] {
			s = s.With(c, in.Data)
		}
		return s
	}
	output := func(s State, in Input) march.Bit {
		if in.Kind != OpRead {
			return march.X
		}
		sensed := reads[in.Cell]
		if len(sensed) == 0 {
			return flt
		}
		v := s.Get(sensed[0])
		for _, c := range sensed[1:] {
			v = combine(comb, v, s.Get(c))
		}
		return v
	}
	return Machine{Name: a.Name, next: next, output: output}
}

// combine applies the ternary wired-OR / wired-AND of two cell values.
func combine(c Comb, a, b march.Bit) march.Bit {
	if c == CombOr {
		if a == march.One || b == march.One {
			return march.One
		}
		if a == march.Zero && b == march.Zero {
			return march.Zero
		}
		return march.X
	}
	if a == march.Zero || b == march.Zero {
		return march.Zero
	}
	if a == march.One && b == march.One {
		return march.One
	}
	return march.X
}
