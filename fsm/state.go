package fsm

import (
	"fmt"

	"marchgen/march"
)

// Cell identifies one of the two cells of the behavioural memory model.
// By the paper's convention the address of cell i is lower than the address
// of cell j; this is what lets the model express address-order-dependent
// faults with only two cells.
type Cell uint8

// CellI and CellJ are the two cells of the paper's reduced memory model;
// CellI has the lower address.
const (
	CellI Cell = iota
	CellJ
)

// String returns "i" or "j".
func (c Cell) String() string {
	switch c {
	case CellI:
		return "i"
	case CellJ:
		return "j"
	default:
		return fmt.Sprintf("Cell(%d)", uint8(c))
	}
}

// Other returns the other cell.
func (c Cell) Other() Cell {
	if c == CellI {
		return CellJ
	}
	return CellI
}

// Cells lists the two cells in address order.
func Cells() [2]Cell { return [2]Cell{CellI, CellJ} }

// State is the content of the two-cell memory. Each bit may be X: in a
// machine state X means "not initialised" (the paper's "–" symbol); in a
// pattern it means "don't care".
type State struct {
	// I and J are the contents of cells i and j.
	I, J march.Bit
}

// S is shorthand for State{i, j}.
func S(i, j march.Bit) State { return State{I: i, J: j} }

// Get returns the value of cell c.
func (s State) Get(c Cell) march.Bit {
	if c == CellI {
		return s.I
	}
	return s.J
}

// With returns a copy of s with cell c set to v.
func (s State) With(c Cell, v march.Bit) State {
	if c == CellI {
		s.I = v
	} else {
		s.J = v
	}
	return s
}

// Concrete reports whether both cells hold a known logic value.
func (s State) Concrete() bool { return s.I.Known() && s.J.Known() }

// Matches reports whether the concrete knowledge in s satisfies the pattern
// pat: every non-X bit of pat must be matched by an equal, known bit of s.
// An X bit of s never satisfies a concrete requirement (the cell's value
// cannot be relied upon).
func (s State) Matches(pat State) bool {
	if pat.I != march.X && s.I != pat.I {
		return false
	}
	if pat.J != march.X && s.J != pat.J {
		return false
	}
	return true
}

// Merge overlays the non-X bits of o onto s.
func (s State) Merge(o State) State {
	if o.I != march.X {
		s.I = o.I
	}
	if o.J != march.X {
		s.J = o.J
	}
	return s
}

// HammingTo returns the number of cells that must be written to turn s into
// a state satisfying pattern target. An X bit in target costs nothing; an X
// bit in s under a concrete target bit costs one write (the value cannot be
// assumed). This is the weight function f.4.1 of the paper.
func (s State) HammingTo(target State) int {
	w := 0
	if target.I != march.X && s.I != target.I {
		w++
	}
	if target.J != march.X && s.J != target.J {
		w++
	}
	return w
}

// Uniform reports whether the state is "00" or "11" — the paper's f.4.4
// observation is that Global Test Sequences starting from a uniform
// initialisation state yield March tests of minimal complexity, because the
// initialisation collapses to a single ⇕(w0) or ⇕(w1) operation.
func (s State) Uniform() bool {
	return s.I.Known() && s.I == s.J
}

// String renders the state as two bits, e.g. "01" or "-1".
func (s State) String() string { return s.I.String() + s.J.String() }

// Unknown is the fully uninitialised state "--".
var Unknown = State{I: march.X, J: march.X}

// ConcreteStates lists the four fully initialised states in the order
// 00, 01, 10, 11.
func ConcreteStates() [4]State {
	return [4]State{
		S(march.Zero, march.Zero),
		S(march.Zero, march.One),
		S(march.One, march.Zero),
		S(march.One, march.One),
	}
}
