package wom

import (
	"testing"

	"marchgen/march"
)

func base(t *testing.T, name string) *march.Test {
	t.Helper()
	kt, ok := march.Known(name)
	if !ok {
		t.Fatalf("unknown %s", name)
	}
	return kt.Test
}

func TestStandardBackgrounds(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16, 32} {
		bgs, err := StandardBackgrounds(w)
		if err != nil {
			t.Fatal(err)
		}
		// ⌈log₂w⌉ + 1 backgrounds.
		wantLen := 1
		for s := 1; s < w; s *= 2 {
			wantLen++
		}
		if len(bgs) != wantLen {
			t.Errorf("w=%d: %d backgrounds, want %d", w, len(bgs), wantLen)
		}
		// Every distinct bit pair is separated by some background.
		for a := 0; a < w; a++ {
			for b := a + 1; b < w; b++ {
				if !Separates(bgs, a, b) {
					t.Errorf("w=%d: bits %d,%d never separated", w, a, b)
				}
			}
		}
	}
	if _, err := StandardBackgrounds(0); err == nil {
		t.Error("zero width must fail")
	}
}

func TestBackgroundNotAndString(t *testing.T) {
	bg := Background{march.Zero, march.One, march.Zero}
	if bg.String() != "010" || bg.Not().String() != "101" {
		t.Errorf("bg %s, not %s", bg, bg.Not())
	}
}

func TestConvert(t *testing.T) {
	bgs, _ := StandardBackgrounds(8)
	wt, err := Convert(base(t, "MarchC-"), 8, bgs)
	if err != nil {
		t.Fatal(err)
	}
	if wt.Complexity() != 10*len(bgs) {
		t.Errorf("complexity %d", wt.Complexity())
	}
	if _, err := Convert(base(t, "MarchC-"), 8, nil); err == nil {
		t.Error("empty background set must fail")
	}
	if _, err := Convert(base(t, "MarchC-"), 4, bgs); err == nil {
		t.Error("width mismatch must fail")
	}
}

func TestWordMemoryBasics(t *testing.T) {
	mem, err := NewMemory(4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	bgs, _ := StandardBackgrounds(8)
	mem.WriteWord(2, bgs[1])
	got := mem.ReadWord(2)
	for k := range got {
		if got[k] != bgs[1][k] {
			t.Fatalf("read back %s, want %s", Background(got), bgs[1])
		}
	}
	if _, err := NewMemory(1, 8, nil); err == nil {
		t.Error("too-small memory must fail")
	}
	if _, err := NewMemory(4, 8, &IntraWordFault{Agg: 3, Vic: 3}); err == nil {
		t.Error("self-coupled fault must fail")
	}
}

func TestIntraWordFaultSemantics(t *testing.T) {
	f := &IntraWordFault{Agg: 1, Vic: 5, Up: true, To: march.One}
	mem, _ := NewMemory(2, 8, f)
	mem.WriteWord(0, Solid(8)) // agg = 0
	all1 := Solid(8).Not()
	pattern := Solid(8)
	pattern[1] = march.One // raise only the aggressor
	mem.WriteWord(0, pattern)
	if got := mem.ReadWord(0); got[5] != march.One {
		t.Errorf("victim bit not forced: %s", Background(got))
	}
	// No transition, no effect.
	mem.WriteWord(1, all1)
	mem.WriteWord(1, all1)
	if got := mem.ReadWord(1); got[5] != march.One {
		t.Errorf("steady aggressor must not corrupt: %s", Background(got))
	}
}

// TestSolidBackgroundMissesIntraWordFaults: with only the solid background
// the aggressor and victim are always written the same value, so coupling
// faults forcing the written value escape.
func TestSolidBackgroundMissesIntraWordFaults(t *testing.T) {
	const w = 8
	wt, err := Convert(base(t, "MarchC-"), w, []Background{Solid(w)})
	if err != nil {
		t.Fatal(err)
	}
	escapes := 0
	for _, f := range AllIntraWordCFids(w) {
		ok, err := Detects(wt, 4, w, f)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			escapes++
		}
	}
	if escapes == 0 {
		t.Error("solid-background word test should miss intra-word coupling faults")
	}
}

// TestStandardBackgroundsCoverIntraWordFaults: the ⌈log₂w⌉+1 set restores
// full intra-word CFid coverage.
func TestStandardBackgroundsCoverIntraWordFaults(t *testing.T) {
	const w = 8
	bgs, _ := StandardBackgrounds(w)
	wt, err := Convert(base(t, "MarchC-"), w, bgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range AllIntraWordCFids(w) {
		ok, err := Detects(wt, 4, w, f)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s escapes the standard-background March C-", f.Name())
		}
	}
}

// TestCoverageNeedsSeparation: a fault between two bits never separated by
// the background set must escape; adding a separating background fixes it.
func TestCoverageNeedsSeparation(t *testing.T) {
	const w = 4
	// Backgrounds 0000 and 0011 never separate bits 0,1 (nor 2,3).
	bgs := []Background{Solid(w), {march.Zero, march.Zero, march.One, march.One}}
	wt, err := Convert(base(t, "MarchC-"), w, bgs)
	if err != nil {
		t.Fatal(err)
	}
	f := IntraWordFault{Agg: 0, Vic: 1, Up: true, To: march.One}
	ok, err := Detects(wt, 4, w, f)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unseparated bit pair should escape")
	}
	bgs = append(bgs, Background{march.Zero, march.One, march.Zero, march.One})
	wt, err = Convert(base(t, "MarchC-"), w, bgs)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = Detects(wt, 4, w, f)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("separating background must restore detection")
	}
}

// TestInterWordFaultsInheritBitLevelCoverage: coupling faults between
// words (same bit column) behave exactly like bit-level coupling faults —
// March C- covers them with any single background, while MATS (which
// misses bit-level CFid) misses them at word level too.
func TestInterWordFaultsInheritBitLevelCoverage(t *testing.T) {
	const n, w = 4, 8
	solid := []Background{Solid(w)}
	cminus, err := Convert(base(t, "MarchC-"), w, solid)
	if err != nil {
		t.Fatal(err)
	}
	mats, err := Convert(base(t, "MATS"), w, solid)
	if err != nil {
		t.Fatal(err)
	}
	missesByMATS := 0
	for _, up := range []bool{true, false} {
		for _, to := range []march.Bit{march.Zero, march.One} {
			for _, pair := range [][2]int{{0, 2}, {2, 0}} {
				f := InterWordFault{AggWord: pair[0], VicWord: pair[1], Bit: 3, Up: up, To: to}
				ok, err := DetectsInterWord(cminus, n, w, f)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Errorf("March C- misses %s", f.Name())
				}
				ok, err = DetectsInterWord(mats, n, w, f)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					missesByMATS++
				}
			}
		}
	}
	if missesByMATS == 0 {
		t.Error("MATS should miss inter-word coupling faults, like its bit-level self")
	}
}

func TestInterWordErrors(t *testing.T) {
	if _, err := newInterMemory(4, 8, InterWordFault{AggWord: 1, VicWord: 1, Bit: 0}); err == nil {
		t.Error("agg == vic must fail")
	}
	if _, err := newInterMemory(4, 8, InterWordFault{AggWord: 0, VicWord: 1, Bit: 9}); err == nil {
		t.Error("bit out of range must fail")
	}
}
