package wom

import (
	"fmt"

	"marchgen/march"
)

// IntraWordFault is a coupling fault between two bit positions of the same
// word — the fault class that makes data backgrounds necessary, because a
// word-wide write updates aggressor and victim simultaneously and only a
// background separating the two positions can excite and observe it.
type IntraWordFault struct {
	// Agg and Vic are bit positions within the word.
	Agg, Vic int
	// Up selects the aggressor transition (0→1 when true).
	Up bool
	// To is the value forced onto the victim bit.
	To march.Bit
}

// Name renders the fault conventionally, e.g. "iwCFid<u,0> 3->5".
func (f IntraWordFault) Name() string {
	dir := "d"
	if f.Up {
		dir = "u"
	}
	return fmt.Sprintf("iwCFid<%s,%s> %d->%d", dir, f.To, f.Agg, f.Vic)
}

// Memory is a word-oriented RAM of n words × w bits with at most one
// injected intra-word fault (placed in every word, as a manufacturing
// defect in the cell array column pair would be).
type Memory struct {
	n, w  int
	words [][]march.Bit
	fault *IntraWordFault
}

// NewMemory builds an uninitialised word memory.
func NewMemory(n, w int, fault *IntraWordFault) (*Memory, error) {
	if n < 2 || w < 2 {
		return nil, fmt.Errorf("wom: memory needs n ≥ 2 words of w ≥ 2 bits, got %d×%d", n, w)
	}
	if fault != nil {
		if fault.Agg == fault.Vic || fault.Agg < 0 || fault.Vic < 0 || fault.Agg >= w || fault.Vic >= w {
			return nil, fmt.Errorf("wom: fault bits (%d,%d) out of range for width %d", fault.Agg, fault.Vic, w)
		}
	}
	m := &Memory{n: n, w: w, fault: fault}
	m.words = make([][]march.Bit, n)
	for k := range m.words {
		m.words[k] = make([]march.Bit, w)
		for b := range m.words[k] {
			m.words[k][b] = march.X
		}
	}
	return m, nil
}

// WriteWord stores the data word, applying the intra-word fault: if the
// aggressor bit performs the sensitising transition, the victim bit is
// forced afterwards.
func (m *Memory) WriteWord(addr int, data Background) {
	old := m.words[addr][0:len(data)]
	aggTransition := false
	if m.fault != nil {
		from, to := march.One, march.Zero
		if m.fault.Up {
			from, to = march.Zero, march.One
		}
		aggTransition = old[m.fault.Agg] == from && data[m.fault.Agg] == to
	}
	copy(m.words[addr], data)
	if aggTransition {
		m.words[addr][m.fault.Vic] = m.fault.To
	}
}

// ReadWord returns the stored word.
func (m *Memory) ReadWord(addr int) Background {
	return append(Background(nil), m.words[addr]...)
}

// Run applies the word test in the canonical resolution (⇕ ascending) and
// returns the flattened (background, op) indices whose read-and-verify
// failed on some word.
func (m *Memory) Run(t *Test) ([]int, error) {
	if t.Width != m.w {
		return nil, fmt.Errorf("wom: test width %d vs memory width %d", t.Width, m.w)
	}
	var fails []int
	opIndex := 0
	for _, bg := range t.Backgrounds {
		for _, e := range t.Base.Elements {
			if e.Delay {
				continue // no retention modelling at word level
			}
			addrs := make([]int, m.n)
			for k := range addrs {
				if e.Order == march.Down {
					addrs[k] = m.n - 1 - k
				} else {
					addrs[k] = k
				}
			}
			for _, addr := range addrs {
				for o, op := range e.Ops {
					pattern := bg
					if op.Data == march.One {
						pattern = bg.Not()
					}
					if op.IsWrite() {
						m.WriteWord(addr, pattern)
						continue
					}
					got := m.ReadWord(addr)
					for b := range pattern {
						if got[b].Known() && got[b] != pattern[b] {
							fails = append(fails, opIndex+o)
							break
						}
					}
				}
			}
			opIndex += len(e.Ops)
		}
	}
	return fails, nil
}

// Detects reports whether the word test is guaranteed to expose the fault
// for every initial memory content. Since the fault involves a single word
// and the test writes whole words before reading them, the four initial
// combinations of the two involved bits (in every word simultaneously)
// are exhaustive.
func Detects(t *Test, n, w int, f IntraWordFault) (bool, error) {
	for initMask := 0; initMask < 4; initMask++ {
		mem, err := NewMemory(n, w, &f)
		if err != nil {
			return false, err
		}
		for addr := 0; addr < n; addr++ {
			mem.words[addr][f.Agg] = march.BitOf(initMask&1 != 0)
			mem.words[addr][f.Vic] = march.BitOf(initMask&2 != 0)
		}
		fails, err := mem.Run(t)
		if err != nil {
			return false, err
		}
		if len(fails) == 0 {
			return false, nil
		}
	}
	return true, nil
}

// AllIntraWordCFids enumerates every intra-word idempotent coupling fault
// of a w-bit word: ordered bit pairs × transition directions × forced
// values.
func AllIntraWordCFids(w int) []IntraWordFault {
	var out []IntraWordFault
	for a := 0; a < w; a++ {
		for v := 0; v < w; v++ {
			if a == v {
				continue
			}
			for _, up := range []bool{true, false} {
				for _, to := range []march.Bit{march.Zero, march.One} {
					out = append(out, IntraWordFault{Agg: a, Vic: v, Up: up, To: to})
				}
			}
		}
	}
	return out
}
