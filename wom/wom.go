// Package wom extends the bit-oriented March machinery to word-oriented
// memories (RAMs accessed W bits at a time). A bit-oriented March test is
// converted by replacing w0/r0 with the data background B and w1/r1 with
// its complement, and repeating the test over a set of backgrounds: the
// classic ⌈log₂W⌉+1 standard backgrounds guarantee that every pair of bits
// inside a word is driven through opposite values, which is what
// intra-word coupling faults need. The package simulator demonstrates both
// directions: a single background misses intra-word coupling faults, the
// standard set restores coverage.
package wom

import (
	"fmt"
	"strings"

	"marchgen/march"
)

// Background is one data background: the W-bit word written for a "0"
// operation (a "1" operation writes the complement).
type Background []march.Bit

// String renders the background as a bit string, MSB first.
func (b Background) String() string {
	var sb strings.Builder
	for _, v := range b {
		sb.WriteString(v.String())
	}
	return sb.String()
}

// Not returns the complemented background.
func (b Background) Not() Background {
	out := make(Background, len(b))
	for k, v := range b {
		out[k] = v.Not()
	}
	return out
}

// Solid returns the all-zero background of width w.
func Solid(w int) Background {
	b := make(Background, w)
	for k := range b {
		b[k] = march.Zero
	}
	return b
}

// StandardBackgrounds returns the classic ⌈log₂W⌉+1 background set: the
// solid background plus, for each address bit of the intra-word bit index,
// the background whose bit k equals bit l of k (alternating runs of 1, 2,
// 4, … positions). For every pair of distinct bit positions some
// background separates them.
func StandardBackgrounds(w int) ([]Background, error) {
	if w < 1 {
		return nil, fmt.Errorf("wom: invalid word width %d", w)
	}
	bgs := []Background{Solid(w)}
	for stride := 1; stride < w; stride *= 2 {
		bg := make(Background, w)
		for k := 0; k < w; k++ {
			bg[k] = march.BitOf(k&stride != 0)
		}
		bgs = append(bgs, bg)
	}
	return bgs, nil
}

// Separates reports whether some background drives bit positions a and b
// to different values.
func Separates(bgs []Background, a, b int) bool {
	for _, bg := range bgs {
		if bg[a] != bg[b] {
			return true
		}
	}
	return false
}

// Test is a word-oriented March test: the base bit-oriented test applied
// once per background.
type Test struct {
	Base        *march.Test
	Width       int
	Backgrounds []Background
}

// Convert lifts a bit-oriented March test to a word-oriented one.
func Convert(t *march.Test, width int, bgs []Background) (*Test, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(bgs) == 0 {
		return nil, fmt.Errorf("wom: empty background set")
	}
	for _, bg := range bgs {
		if len(bg) != width {
			return nil, fmt.Errorf("wom: background %s does not match width %d", bg, width)
		}
	}
	return &Test{Base: t, Width: width, Backgrounds: bgs}, nil
}

// Complexity returns the total operations per word: base complexity times
// the number of background passes.
func (t *Test) Complexity() int {
	return t.Base.Complexity() * len(t.Backgrounds)
}

// String summarises the word test.
func (t *Test) String() string {
	bgs := make([]string, len(t.Backgrounds))
	for k, bg := range t.Backgrounds {
		bgs[k] = bg.String()
	}
	return fmt.Sprintf("%s × backgrounds {%s}", t.Base, strings.Join(bgs, ", "))
}
