package wom

import (
	"fmt"

	"marchgen/march"
)

// InterWordFault is a coupling fault between the same bit position of two
// different words — the word-oriented appearance of an ordinary bit-level
// coupling fault (the two cells sit in the same column of the array).
// Word-oriented March tests inherit bit-level coverage for these faults
// with any background, in contrast to the intra-word faults that need
// separating backgrounds.
type InterWordFault struct {
	// AggWord and VicWord are word addresses.
	AggWord, VicWord int
	// Bit is the shared bit position.
	Bit int
	// Up selects the aggressor transition (0→1 when true).
	Up bool
	// To is the value forced onto the victim bit.
	To march.Bit
}

// Name renders the fault, e.g. "xwCFid<u,0> w1.b3->w5.b3".
func (f InterWordFault) Name() string {
	dir := "d"
	if f.Up {
		dir = "u"
	}
	return fmt.Sprintf("xwCFid<%s,%s> w%d.b%d->w%d.b%d", dir, f.To, f.AggWord, f.Bit, f.VicWord, f.Bit)
}

// interMemory is a word memory with an injected inter-word fault.
type interMemory struct {
	*Memory
	f InterWordFault
}

// newInterMemory builds the faulty memory.
func newInterMemory(n, w int, f InterWordFault) (*interMemory, error) {
	if f.AggWord == f.VicWord || f.AggWord < 0 || f.VicWord < 0 || f.AggWord >= n || f.VicWord >= n {
		return nil, fmt.Errorf("wom: inter-word placement (%d,%d) invalid for %d words", f.AggWord, f.VicWord, n)
	}
	if f.Bit < 0 || f.Bit >= w {
		return nil, fmt.Errorf("wom: bit %d out of range for width %d", f.Bit, w)
	}
	mem, err := NewMemory(n, w, nil)
	if err != nil {
		return nil, err
	}
	return &interMemory{Memory: mem, f: f}, nil
}

// writeWord applies the write and the cross-word coupling effect.
func (m *interMemory) writeWord(addr int, data Background) {
	from, to := march.One, march.Zero
	if m.f.Up {
		from, to = march.Zero, march.One
	}
	trigger := addr == m.f.AggWord &&
		m.words[addr][m.f.Bit] == from && data[m.f.Bit] == to
	m.WriteWord(addr, data)
	if trigger {
		m.words[m.f.VicWord][m.f.Bit] = m.f.To
	}
}

// run executes the word test against the inter-word fault.
func (m *interMemory) run(t *Test) ([]int, error) {
	if t.Width != m.w {
		return nil, fmt.Errorf("wom: test width %d vs memory width %d", t.Width, m.w)
	}
	var fails []int
	opIndex := 0
	for _, bg := range t.Backgrounds {
		for _, e := range t.Base.Elements {
			if e.Delay {
				continue
			}
			addrs := make([]int, m.n)
			for k := range addrs {
				if e.Order == march.Down {
					addrs[k] = m.n - 1 - k
				} else {
					addrs[k] = k
				}
			}
			for _, addr := range addrs {
				for o, op := range e.Ops {
					pattern := bg
					if op.Data == march.One {
						pattern = bg.Not()
					}
					if op.IsWrite() {
						m.writeWord(addr, pattern)
						continue
					}
					got := m.ReadWord(addr)
					for b := range pattern {
						if got[b].Known() && got[b] != pattern[b] {
							fails = append(fails, opIndex+o)
							break
						}
					}
				}
			}
			opIndex += len(e.Ops)
		}
	}
	return fails, nil
}

// DetectsInterWord reports guaranteed detection of an inter-word fault by
// the word test: a mismatch for every initial content of the two involved
// bits.
func DetectsInterWord(t *Test, n, w int, f InterWordFault) (bool, error) {
	for initMask := 0; initMask < 4; initMask++ {
		mem, err := newInterMemory(n, w, f)
		if err != nil {
			return false, err
		}
		mem.words[f.AggWord][f.Bit] = march.BitOf(initMask&1 != 0)
		mem.words[f.VicWord][f.Bit] = march.BitOf(initMask&2 != 0)
		fails, err := mem.run(t)
		if err != nil {
			return false, err
		}
		if len(fails) == 0 {
			return false, nil
		}
	}
	return true, nil
}
