// Package memo is the content-addressed memo cache of the generation
// engine. Entries are keyed by canonical fingerprints of the inputs that
// determine them — the fault-instance list (names, BFE patterns and the
// conjunctive flag), the Test Pattern Graph (weight matrix plus start
// costs), and the candidate March test text — so two runs that pose the
// same sub-problem share the answer regardless of which fault list or CLI
// posed it. Cached values are pure functions of their key: a hit returns
// exactly the bytes a fresh computation would, which is what lets the
// engine guarantee byte-identical results warm or cold.
//
// Budgeted runs bypass the cache entirely (see internal/core): a budget is
// a statement about the resources this run may spend, and its degradation
// semantics must stay reproducible rather than depend on what some earlier
// run happened to leave behind.
package memo

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// DefaultCapacity bounds the shared cache. Entries are small (tour
// fragments, verdict booleans, coverage matrices for two-cell instances),
// so a few thousand of them stay well under typical server memory budgets.
const DefaultCapacity = 4096

// DiskTier is a durable second level underneath the in-memory LRU: a
// miss falls through to it and a hit is promoted back into memory, so
// entries survive both LRU eviction and process restarts. Implementations
// must be safe for concurrent use; internal/store's namespaces are the
// canonical one. Errors are absorbed as misses — durability is an
// optimisation here, never a correctness dependency.
type DiskTier interface {
	// Get returns the bytes committed under key, or false.
	Get(key string) ([]byte, bool)
	// Put durably commits data under key (best-effort).
	Put(key string, data []byte)
}

// Codec translates cache values to and from persistent bytes for a
// DiskTier. Encode reports false for value kinds that are not
// persistable (those simply stay memory-only); Decode reports false for
// bytes it does not recognise (treated as a miss). internal/core
// provides the codec covering the engine's tour fragments and verdicts.
type Codec interface {
	Encode(val any) ([]byte, bool)
	Decode(data []byte) (any, bool)
}

// Cache is a bounded, concurrency-safe, least-recently-used map from
// fingerprint keys to immutable values, with an optional durable second
// tier (AttachDisk). The zero value is not usable; use New or the
// process-wide Shared cache.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *entry
	entries map[string]*list.Element

	disk  DiskTier
	codec Codec

	hits, misses, evictions, diskHits uint64
}

type entry struct {
	key string
	val any
}

// New builds a cache holding at most capacity entries (capacity <= 0
// selects DefaultCapacity).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{cap: capacity, order: list.New(), entries: map[string]*list.Element{}}
}

var shared = New(DefaultCapacity)

// Shared returns the process-wide cache used by default for unbudgeted
// generation runs.
func Shared() *Cache { return shared }

// AttachDisk installs a durable second tier and its codec: from now on
// misses fall through to disk (decoded hits are promoted into memory)
// and persistable Puts are written through. Attaching replaces any
// previous tier; DetachDisk removes it. The in-memory contents are
// untouched either way.
func (c *Cache) AttachDisk(d DiskTier, codec Codec) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.disk, c.codec = d, codec
	c.mu.Unlock()
}

// DetachDisk removes the durable tier (tests, shutdown).
func (c *Cache) DetachDisk() { c.AttachDisk(nil, nil) }

// Get returns the value stored under key, marking it most recently used.
// With a disk tier attached, a memory miss consults the tier and
// promotes a decoded hit.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.hits++
		c.order.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true
	}
	c.misses++
	disk, codec := c.disk, c.codec
	c.mu.Unlock()
	if disk == nil || codec == nil {
		return nil, false
	}
	// The tier read happens outside the lock — it may fsync-era-slow —
	// and the promote below re-takes it. Two goroutines racing the same
	// key promote the same immutable value twice, harmlessly.
	data, ok := disk.Get(key)
	if !ok {
		return nil, false
	}
	val, ok := codec.Decode(data)
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	c.diskHits++
	c.mu.Unlock()
	c.put(key, val, false)
	return val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full. Values must be treated as immutable by both sides:
// callers deep-copy anything they intend to mutate. With a disk tier
// attached, persistable values are written through.
func (c *Cache) Put(key string, val any) { c.put(key, val, true) }

func (c *Cache) put(key string, val any, writeThrough bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	disk, codec := c.disk, c.codec
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&entry{key: key, val: val})
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*entry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	if writeThrough && disk != nil && codec != nil {
		// Outside the lock: a durable tier fsyncs, and the engine's hot
		// paths must not serialise on that.
		if data, ok := codec.Encode(val); ok {
			disk.Put(key, data)
		}
	}
}

// Peek returns the value cached in memory under key without updating
// the LRU order and — crucially — without consulting the disk tier.
// It exists for the replica set's internal memo endpoint: a peer
// answering "do you hold this key?" must look only at what it already
// holds, or two cold replicas would fetch from each other forever.
func (c *Cache) Peek(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*entry).val, true
}

// Adopt stores val under key without writing through to the disk tier —
// the insertion path for values that arrived from elsewhere (a peer
// replica's replication offer) and are already durable somewhere, so
// re-persisting them here would echo them straight back out.
func (c *Cache) Adopt(key string, val any) { c.put(key, val, false) }

// Len reports the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports cumulative hit/miss counts since the last Reset.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// CacheStats is a consistent counter snapshot of a cache: cumulative
// hits, misses and LRU evictions since the last Reset, plus the live
// entry count. DiskHits counts memory misses served by the durable tier
// (every disk hit is also counted as a memory miss).
type CacheStats struct {
	Hits, Misses, Evictions uint64
	DiskHits                uint64
	Entries                 int
}

// Snapshot returns the cache's counters and size under one lock
// acquisition, so the fields are mutually consistent even while other
// goroutines keep using the cache.
func (c *Cache) Snapshot() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, DiskHits: c.diskHits, Entries: c.order.Len()}
}

// Reset drops every in-memory entry and zeroes the hit/miss counters
// (cold-cache measurements, tests). An attached disk tier is left both
// attached and populated: Reset empties memory, not the durable layer.
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = map[string]*list.Element{}
	c.hits, c.misses, c.evictions, c.diskHits = 0, 0, 0, 0
}

// Fingerprinter accumulates canonical content into a collision-resistant
// fingerprint. Writes are framed (length-prefixed), so concatenation
// ambiguity ("ab"+"c" vs "a"+"bc") cannot alias two different inputs.
type Fingerprinter struct {
	h [32]byte
	b []byte
}

// NewFingerprinter starts a fingerprint under a namespace tag (e.g.
// "tour", "verdict") so values of different kinds can never collide.
func NewFingerprinter(namespace string) *Fingerprinter {
	f := &Fingerprinter{}
	f.Str(namespace)
	return f
}

// Str frames and appends one string.
func (f *Fingerprinter) Str(s string) *Fingerprinter {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	f.b = append(f.b, n[:]...)
	f.b = append(f.b, s...)
	return f
}

// Int appends one integer.
func (f *Fingerprinter) Int(v int) *Fingerprinter {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(int64(v)))
	f.b = append(f.b, n[:]...)
	return f
}

// Ints appends a framed integer slice.
func (f *Fingerprinter) Ints(vs []int) *Fingerprinter {
	f.Int(len(vs))
	for _, v := range vs {
		f.Int(v)
	}
	return f
}

// Bool appends one boolean.
func (f *Fingerprinter) Bool(v bool) *Fingerprinter {
	if v {
		return f.Int(1)
	}
	return f.Int(0)
}

// Key finalises the fingerprint as a hex SHA-256 digest.
func (f *Fingerprinter) Key() string {
	f.h = sha256.Sum256(f.b)
	return hex.EncodeToString(f.h[:])
}
