// Package memo is the content-addressed memo cache of the generation
// engine. Entries are keyed by canonical fingerprints of the inputs that
// determine them — the fault-instance list (names, BFE patterns and the
// conjunctive flag), the Test Pattern Graph (weight matrix plus start
// costs), and the candidate March test text — so two runs that pose the
// same sub-problem share the answer regardless of which fault list or CLI
// posed it. Cached values are pure functions of their key: a hit returns
// exactly the bytes a fresh computation would, which is what lets the
// engine guarantee byte-identical results warm or cold.
//
// Budgeted runs bypass the cache entirely (see internal/core): a budget is
// a statement about the resources this run may spend, and its degradation
// semantics must stay reproducible rather than depend on what some earlier
// run happened to leave behind.
package memo

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// DefaultCapacity bounds the shared cache. Entries are small (tour
// fragments, verdict booleans, coverage matrices for two-cell instances),
// so a few thousand of them stay well under typical server memory budgets.
const DefaultCapacity = 4096

// Cache is a bounded, concurrency-safe, least-recently-used map from
// fingerprint keys to immutable values. The zero value is not usable; use
// New or the process-wide Shared cache.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *entry
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

type entry struct {
	key string
	val any
}

// New builds a cache holding at most capacity entries (capacity <= 0
// selects DefaultCapacity).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{cap: capacity, order: list.New(), entries: map[string]*list.Element{}}
}

var shared = New(DefaultCapacity)

// Shared returns the process-wide cache used by default for unbudgeted
// generation runs.
func Shared() *Cache { return shared }

// Get returns the value stored under key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full. Values must be treated as immutable by both sides:
// callers deep-copy anything they intend to mutate.
func (c *Cache) Put(key string, val any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.evictions++
	}
}

// Len reports the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports cumulative hit/miss counts since the last Reset.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// CacheStats is a consistent counter snapshot of a cache: cumulative
// hits, misses and LRU evictions since the last Reset, plus the live
// entry count.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// Snapshot returns the cache's counters and size under one lock
// acquisition, so the fields are mutually consistent even while other
// goroutines keep using the cache.
func (c *Cache) Snapshot() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.order.Len()}
}

// Reset drops every entry and zeroes the hit/miss counters (cold-cache
// measurements, tests).
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = map[string]*list.Element{}
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// Fingerprinter accumulates canonical content into a collision-resistant
// fingerprint. Writes are framed (length-prefixed), so concatenation
// ambiguity ("ab"+"c" vs "a"+"bc") cannot alias two different inputs.
type Fingerprinter struct {
	h [32]byte
	b []byte
}

// NewFingerprinter starts a fingerprint under a namespace tag (e.g.
// "tour", "verdict") so values of different kinds can never collide.
func NewFingerprinter(namespace string) *Fingerprinter {
	f := &Fingerprinter{}
	f.Str(namespace)
	return f
}

// Str frames and appends one string.
func (f *Fingerprinter) Str(s string) *Fingerprinter {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	f.b = append(f.b, n[:]...)
	f.b = append(f.b, s...)
	return f
}

// Int appends one integer.
func (f *Fingerprinter) Int(v int) *Fingerprinter {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(int64(v)))
	f.b = append(f.b, n[:]...)
	return f
}

// Ints appends a framed integer slice.
func (f *Fingerprinter) Ints(vs []int) *Fingerprinter {
	f.Int(len(vs))
	for _, v := range vs {
		f.Int(v)
	}
	return f
}

// Bool appends one boolean.
func (f *Fingerprinter) Bool(v bool) *Fingerprinter {
	if v {
		return f.Int(1)
	}
	return f.Int(0)
}

// Key finalises the fingerprint as a hex SHA-256 digest.
func (f *Fingerprinter) Key() string {
	f.h = sha256.Sum256(f.b)
	return hex.EncodeToString(f.h[:])
}
