package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(8)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2) // overwrite
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("overwrite lost: %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 2/1", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // refresh a: b is now the oldest
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
}

func TestReset(t *testing.T) {
	c := New(4)
	c.Put("a", 1)
	c.Get("a")
	c.Get("x")
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("stats after Reset = %d/%d", h, m)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
	c.Reset()
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

// TestConcurrentEvictionAndReset races Put/Get-driven LRU eviction
// against ResetCache-style Reset and Snapshot calls on a tiny cache, the
// exact interleaving a server sees when a benchmark resets the shared
// cache mid-traffic. Run under -race -cpu 1,4 in CI; the assertions are
// only sanity bounds — the race detector is the real check.
func TestConcurrentEvictionAndReset(t *testing.T) {
	c := New(4) // tiny: every Put beyond 4 live keys evicts
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("k%d", (g*31+i)%16)
				c.Put(k, i)
				c.Get(k)
				c.Get(fmt.Sprintf("k%d", i%16))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.Reset()
			s := c.Snapshot()
			if s.Entries > 4 {
				t.Errorf("capacity exceeded after Reset: %d", s.Entries)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			c.Snapshot()
			c.Len()
			c.Stats()
		}
	}()
	// Let the mutators run against the resets, then stop them.
	for i := 0; i < 2000; i++ {
		c.Get("k0")
	}
	close(stop)
	wg.Wait()
	if c.Len() > 4 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

// fakeTier is an in-memory memo.DiskTier for tier-behaviour tests.
type fakeTier struct {
	mu   sync.Mutex
	m    map[string][]byte
	puts int
}

func (f *fakeTier) Get(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.m[key]
	return v, ok
}

func (f *fakeTier) Put(key string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.m == nil {
		f.m = map[string][]byte{}
	}
	f.m[key] = append([]byte(nil), data...)
	f.puts++
}

// intCodec persists int values only (everything else stays memory-only).
type intCodec struct{}

func (intCodec) Encode(val any) ([]byte, bool) {
	if v, ok := val.(int); ok {
		return []byte(fmt.Sprintf("%d", v)), true
	}
	return nil, false
}

func (intCodec) Decode(data []byte) (any, bool) {
	var v int
	if _, err := fmt.Sscanf(string(data), "%d", &v); err != nil {
		return nil, false
	}
	return v, true
}

func TestDiskTierWriteThroughAndPromote(t *testing.T) {
	tier := &fakeTier{}
	c := New(2)
	c.AttachDisk(tier, intCodec{})

	c.Put("a", 1)     // persistable: written through
	c.Put("b", "str") // not persistable: memory only
	if tier.puts != 1 {
		t.Fatalf("tier puts = %d, want 1", tier.puts)
	}
	// Evict "a" from memory; the tier must serve and re-promote it.
	c.Put("c", 3)
	c.Put("d", 4)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("evicted entry not served from tier: %v, %v", v, ok)
	}
	if s := c.Snapshot(); s.DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1", s.DiskHits)
	}
	// Promotion back into memory must not have re-written the tier.
	if tier.puts != 3 {
		t.Fatalf("tier puts after promote = %d, want 3 (a, c, d)", tier.puts)
	}
	// Reset clears memory only; the tier still restores the entry.
	c.Reset()
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("tier lost entry across Reset: %v, %v", v, ok)
	}
	// A second cache over the same tier sees the entries: the restart story.
	c2 := New(8)
	c2.AttachDisk(tier, intCodec{})
	if v, ok := c2.Get("d"); !ok || v.(int) != 4 {
		t.Fatalf("fresh cache over same tier missed: %v, %v", v, ok)
	}
	if _, ok := c2.Get("b"); ok {
		t.Fatal("non-persistable value crossed the tier")
	}
	c.DetachDisk()
	c.Reset()
	if _, ok := c.Get("a"); ok {
		t.Fatal("detached tier still serving")
	}
}

// TestDiskTierConcurrentAttach races attach/detach against traffic (the
// server attaches the store tier at startup while requests may already
// be running in tests).
func TestDiskTierConcurrentAttach(t *testing.T) {
	tier := &fakeTier{}
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("k%d", i%12)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			c.AttachDisk(tier, intCodec{})
			c.DetachDisk()
		}
	}()
	wg.Wait()
}

// TestFingerprinterFraming checks that the length-prefixed framing
// prevents concatenation aliasing and that namespaces separate key spaces.
func TestFingerprinterFraming(t *testing.T) {
	a := NewFingerprinter("x").Str("ab").Str("c").Key()
	b := NewFingerprinter("x").Str("a").Str("bc").Key()
	if a == b {
		t.Fatal("framing failed: ab+c aliases a+bc")
	}
	if NewFingerprinter("x").Str("v").Key() == NewFingerprinter("y").Str("v").Key() {
		t.Fatal("namespaces do not separate")
	}
	if NewFingerprinter("x").Int(1).Key() == NewFingerprinter("x").Bool(true).Key() {
		// Bool(true) is Int(1) by construction — document that they do
		// alias within one namespace, so mixed-type keys must order fields
		// consistently.
		t.Log("Int(1) and Bool(true) share an encoding (by design)")
	}
	if NewFingerprinter("x").Ints([]int{1, 2}).Key() == NewFingerprinter("x").Ints([]int{1}).Ints([]int{2}).Key() {
		t.Fatal("Ints framing failed: [1,2] aliases [1]+[2]")
	}
}

func TestFingerprinterDeterministic(t *testing.T) {
	mk := func() string {
		return NewFingerprinter("t").Str("s").Int(-7).Ints([]int{3, 1, 4}).Bool(true).Key()
	}
	if mk() != mk() {
		t.Fatal("fingerprint not deterministic")
	}
	if len(mk()) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(mk()))
	}
}
