package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(8)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2) // overwrite
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("overwrite lost: %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 2/1", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // refresh a: b is now the oldest
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
}

func TestReset(t *testing.T) {
	c := New(4)
	c.Put("a", 1)
	c.Get("a")
	c.Get("x")
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("stats after Reset = %d/%d", h, m)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
	c.Reset()
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

// TestFingerprinterFraming checks that the length-prefixed framing
// prevents concatenation aliasing and that namespaces separate key spaces.
func TestFingerprinterFraming(t *testing.T) {
	a := NewFingerprinter("x").Str("ab").Str("c").Key()
	b := NewFingerprinter("x").Str("a").Str("bc").Key()
	if a == b {
		t.Fatal("framing failed: ab+c aliases a+bc")
	}
	if NewFingerprinter("x").Str("v").Key() == NewFingerprinter("y").Str("v").Key() {
		t.Fatal("namespaces do not separate")
	}
	if NewFingerprinter("x").Int(1).Key() == NewFingerprinter("x").Bool(true).Key() {
		// Bool(true) is Int(1) by construction — document that they do
		// alias within one namespace, so mixed-type keys must order fields
		// consistently.
		t.Log("Int(1) and Bool(true) share an encoding (by design)")
	}
	if NewFingerprinter("x").Ints([]int{1, 2}).Key() == NewFingerprinter("x").Ints([]int{1}).Ints([]int{2}).Key() {
		t.Fatal("Ints framing failed: [1,2] aliases [1]+[2]")
	}
}

func TestFingerprinterDeterministic(t *testing.T) {
	mk := func() string {
		return NewFingerprinter("t").Str("s").Int(-7).Ints([]int{3, 1, 4}).Bool(true).Key()
	}
	if mk() != mk() {
		t.Fatal("fingerprint not deterministic")
	}
	if len(mk()) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(mk()))
	}
}
