package baseline

import (
	"testing"

	"marchgen/fault"
	"marchgen/internal/sim"
	"marchgen/march"
)

func instances(t *testing.T, list string) []fault.Instance {
	t.Helper()
	models, err := fault.ParseList(list)
	if err != nil {
		t.Fatal(err)
	}
	return fault.Instances(models)
}

func TestElementOptions(t *testing.T) {
	// From an unknown entry, length-1 options are w0 and w1 only.
	opts := elementOptions(march.X, 1)
	if len(opts) != 2 {
		t.Fatalf("options %v", opts)
	}
	// From a known entry, the read joins in.
	opts = elementOptions(march.Zero, 1)
	if len(opts) != 3 {
		t.Fatalf("options %v", opts)
	}
	// Reads always expect the chain value.
	for _, ops := range elementOptions(march.Zero, 3) {
		chain := march.Zero
		for _, op := range ops {
			if op.IsRead() && op.Data != chain {
				t.Fatalf("inconsistent read in %v", ops)
			}
			if op.IsWrite() {
				chain = op.Data
			}
		}
	}
}

func TestBranchBoundSAF(t *testing.T) {
	insts := instances(t, "SAF")
	test, stats, err := BranchBound(insts, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := test.Complexity(); got != 4 {
		t.Errorf("SAF optimum %dn (%s), want 4n", got, test)
	}
	if stats.Nodes == 0 {
		t.Error("stats must count nodes")
	}
	cov, err := sim.Evaluate(test, insts)
	if err != nil || !cov.Complete() {
		t.Errorf("baseline result incomplete: %v %v", err, cov.Missed())
	}
}

func TestBranchBoundMatchesKnownOptima(t *testing.T) {
	cases := []struct {
		list string
		want int
		cap  int
	}{
		{"SAF", 4, 5},
		{"SAF,TF", 5, 6},
		{"CFin", 5, 6},
		{"SAF,TF,ADF", 6, 7},
	}
	for _, c := range cases {
		test, _, err := BranchBound(instances(t, c.list), c.cap)
		if err != nil {
			t.Errorf("%s: %v", c.list, err)
			continue
		}
		if got := test.Complexity(); got != c.want {
			t.Errorf("%s: optimum %dn (%s), want %dn", c.list, got, test, c.want)
		}
	}
}

func TestBranchBoundInfeasibleCap(t *testing.T) {
	if _, _, err := BranchBound(instances(t, "SAF"), 2); err == nil {
		t.Error("complexity cap 2 cannot cover SAF")
	}
}

func TestExhaustiveSAF(t *testing.T) {
	insts := instances(t, "SAF")
	test, stats, err := Exhaustive(insts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := test.Complexity(); got != 4 {
		t.Errorf("SAF optimum %dn, want 4n", got)
	}
	if stats.Tests == 0 {
		t.Error("exhaustive search must count simulated candidates")
	}
}

// TestSection4ExampleOptimum certifies the paper's worked example: 8n is
// optimal for the fault list {⟨↑;1⟩, ⟨↑;0⟩}.
func TestSection4ExampleOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("deep search")
	}
	test, _, err := BranchBound(instances(t, "CFid<u,1>,CFid<u,0>"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := test.Complexity(); got != 8 {
		t.Errorf("worked-example optimum %dn (%s), want 8n", got, test)
	}
}
