// Package baseline implements the prior-art March test generators the
// paper compares against (its Section 2 "state of the art"):
//
//   - Exhaustive reproduces the transition-tree approach of van de Goor &
//     Smit [2–4]: March tests are enumerated in order of growing
//     complexity and each candidate is handed to the fault simulator, so
//     the first complete test found is optimal. The tree is unbounded, so
//     a complexity cap must be supplied; cost grows exponentially with it.
//
//   - BranchBound reproduces the pruned search of Zarrineh et al. [5]: the
//     same space is explored depth-first with fault-detection state
//     propagated incrementally and memoised, restricting the search to
//     subtrees where a solution can still exist.
//
// Both searches double as an independent optimality oracle for the
// pipeline of package core: they provably return a minimum-complexity
// March test for the fault list (within the cap), at a cost the paper's
// algorithm does not pay.
package baseline

import (
	"time"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/march"
)

// Stats reports search effort.
type Stats struct {
	// Nodes is the number of search-tree nodes visited.
	Nodes int64
	// Tests is the number of complete candidate tests simulated
	// (Exhaustive) or completeness checks performed (BranchBound).
	Tests int64
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
}

// runState is the incremental detection state of one fault instance: the
// faulty machine's state for each of the four initial memory contents,
// plus the bit set of contents already exposed.
type runState struct {
	faulty [4]fsm.State
	det    uint8
}

// searchState is the full between-element search state.
type searchState struct {
	entry march.Bit // uniform memory value between elements (X initially)
	insts []runState
}

func (s *searchState) allDetected() bool {
	for _, r := range s.insts {
		if r.det != 0b1111 {
			return false
		}
	}
	return true
}

// key serialises the state for memoisation.
func (s *searchState) key() string {
	buf := make([]byte, 0, 1+len(s.insts)*5)
	buf = append(buf, byte(s.entry))
	for _, r := range s.insts {
		for _, f := range r.faulty {
			buf = append(buf, byte(f.I)*3+byte(f.J))
		}
		buf = append(buf, r.det)
	}
	return string(buf)
}

// initialState builds the search root: uninitialised memory, faulty
// machines at each concrete initial content, nothing detected.
func initialState(instances []fault.Instance) *searchState {
	s := &searchState{entry: march.X, insts: make([]runState, len(instances))}
	for k := range instances {
		s.insts[k].faulty = fsm.ConcreteStates()
	}
	return s
}

// applyOps applies a completed element's operation list to one model cell
// for every instance run, updating faulty states and detection flags. The
// good-machine expectations are the deterministic chain values starting at
// entry.
func applyOps(s *searchState, machines []fsm.Machine, cell fsm.Cell, entry march.Bit, ops []march.Op) {
	for k := range s.insts {
		r := &s.insts[k]
		for v := 0; v < 4; v++ {
			st := r.faulty[v]
			expect := entry
			for _, op := range ops {
				if op.IsWrite() {
					st = machines[k].Next(st, fsm.Wr(cell, op.Data))
					expect = op.Data
					continue
				}
				out := machines[k].Output(st, fsm.Rd(cell))
				st = machines[k].Next(st, fsm.Rd(cell))
				if expect.Known() && out.Known() && out != expect {
					r.det |= 1 << v
				}
			}
			r.faulty[v] = st
		}
	}
}

// chainEnd returns the memory value after applying ops from entry.
func chainEnd(entry march.Bit, ops []march.Op) march.Bit {
	v := entry
	for _, op := range ops {
		if op.IsWrite() {
			v = op.Data
		}
	}
	return v
}

// elementOptions enumerates the consistent operation lists of one element
// with the given entry value and maximum length: reads must expect the
// current chain value (an inconsistent read would flag a good memory), and
// the first operation of the whole test must be a write.
func elementOptions(entry march.Bit, maxLen int) [][]march.Op {
	var out [][]march.Op
	var rec func(chain march.Bit, ops []march.Op)
	rec = func(chain march.Bit, ops []march.Op) {
		if len(ops) > 0 {
			out = append(out, append([]march.Op(nil), ops...))
		}
		if len(ops) == maxLen {
			return
		}
		if chain.Known() {
			rec(chain, append(ops, march.Op{Kind: march.Read, Data: chain}))
		}
		rec(march.Zero, append(ops, march.W0))
		rec(march.One, append(ops, march.W1))
	}
	rec(entry, nil)
	return out
}

// result carries the reconstructed test out of the recursion.
type elemChoice struct {
	order march.Order
	ops   []march.Op
}

func buildTest(path []elemChoice) *march.Test {
	t := &march.Test{}
	for _, e := range path {
		t.Elements = append(t.Elements, march.Elem(e.order, e.ops...))
	}
	return t
}
