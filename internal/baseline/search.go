package baseline

import (
	"fmt"
	"sync"
	"time"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/budget"
	"marchgen/internal/obs"
	"marchgen/internal/sim"
	"marchgen/march"
)

// optionCache memoises elementOptions per (entry value, max length): the
// lists are shared read-only across the whole search.
type optionCache struct {
	mu    sync.Mutex
	cache map[[2]int][][]march.Op
}

func newOptionCache() *optionCache {
	return &optionCache{cache: map[[2]int][][]march.Op{}}
}

func (oc *optionCache) get(entry march.Bit, maxLen int) [][]march.Op {
	key := [2]int{int(entry), maxLen}
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if opts, ok := oc.cache[key]; ok {
		return opts
	}
	opts := elementOptions(entry, maxLen)
	oc.cache[key] = opts
	return opts
}

// BranchBound finds a minimum-complexity March test covering all instances
// by iterative-deepening depth-first search with incremental detection
// state and memoisation — the pruned-search baseline of Zarrineh et al.
// It fails if no test of complexity ≤ maxOps exists.
func BranchBound(instances []fault.Instance, maxOps int) (*march.Test, Stats, error) {
	return BranchBoundMeter(nil, instances, maxOps)
}

// BranchBoundMeter is BranchBound under a budget meter: the search aborts
// with a typed error on context cancellation or once the soft deadline has
// passed (this search is itself a fallback, so there is nothing cheaper
// left to degrade to). A nil meter searches unbounded.
func BranchBoundMeter(mt *budget.Meter, instances []fault.Instance, maxOps int) (*march.Test, Stats, error) {
	start := time.Now()
	stats := Stats{}
	run := obs.From(mt.Context())
	sp := run.StartUnder("baseline/branchbound").
		SetInt("instances", int64(len(instances))).
		SetInt("max_ops", int64(maxOps))
	defer func() {
		sp.SetInt("nodes", int64(stats.Nodes)).End()
		run.Counter("baseline.nodes").Add(int64(stats.Nodes))
	}()
	machines := make([]fsm.Machine, len(instances))
	for k, inst := range instances {
		machines[k] = inst.Machine
	}
	oc := newOptionCache()

	var searchErr error
	for k := 1; k <= maxOps && searchErr == nil; k++ {
		memo := map[string]int{}
		var path []elemChoice
		var dfs func(s *searchState, remaining int) bool
		dfs = func(s *searchState, remaining int) bool {
			if searchErr != nil {
				return false
			}
			if err := mt.Check(); err != nil {
				searchErr = err
				return false
			}
			stats.Nodes++
			if stats.Nodes%1024 == 0 && mt.SoftExpired() {
				searchErr = budget.ErrBudgetExhausted
				return false
			}
			if s.allDetected() {
				return true
			}
			if remaining <= 0 {
				return false
			}
			key := s.key()
			if r, ok := memo[key]; ok && r >= remaining {
				return false
			}
			skey := key
			for _, ops := range oc.get(s.entry, remaining) {
				for _, order := range [2]march.Order{march.Up, march.Down} {
					first, second := fsm.CellI, fsm.CellJ
					if order == march.Down {
						first, second = fsm.CellJ, fsm.CellI
					}
					ns := &searchState{
						entry: chainEnd(s.entry, ops),
						insts: append([]runState(nil), s.insts...),
					}
					applyOps(ns, machines, first, s.entry, ops)
					applyOps(ns, machines, second, s.entry, ops)
					if ns.entry == s.entry && ns.key() == skey {
						continue // no effect: pruned
					}
					path = append(path, elemChoice{order: order, ops: ops})
					if dfs(ns, remaining-len(ops)) {
						return true
					}
					path = path[:len(path)-1]
				}
			}
			memo[skey] = remaining
			return false
		}
		if dfs(initialState(instances), k) && searchErr == nil {
			t := buildTest(path)
			stats.Elapsed = time.Since(start)
			stats.Tests++
			// Sanity: the reconstructed test must be complete.
			cov, err := sim.Evaluate(t, instances)
			if err != nil || !cov.Complete() {
				return nil, stats, fmt.Errorf("baseline: internal error: reconstructed test %s incomplete", t)
			}
			return t, stats, nil
		}
	}
	stats.Elapsed = time.Since(start)
	if searchErr != nil {
		return nil, stats, searchErr
	}
	return nil, stats, fmt.Errorf("baseline: no March test of complexity ≤ %d covers the fault list", maxOps)
}

// Exhaustive finds a minimum-complexity March test by enumerating every
// consistent March test in order of growing complexity and running each
// through the fault simulator — the transition-tree baseline of van de
// Goor & Smit. The cost is a full simulation per candidate; use only with
// small complexity caps.
func Exhaustive(instances []fault.Instance, maxOps int) (*march.Test, Stats, error) {
	start := time.Now()
	stats := Stats{}
	oc := newOptionCache()
	for k := 1; k <= maxOps; k++ {
		var path []elemChoice
		var found *march.Test
		var rec func(entry march.Bit, remaining int) bool
		rec = func(entry march.Bit, remaining int) bool {
			stats.Nodes++
			if remaining == 0 {
				t := buildTest(path)
				stats.Tests++
				cov, err := sim.Evaluate(t, instances)
				if err == nil && cov.Complete() {
					found = t
					return true
				}
				return false
			}
			for _, ops := range oc.get(entry, remaining) {
				if len(ops) > remaining {
					continue
				}
				for _, order := range [2]march.Order{march.Up, march.Down} {
					path = append(path, elemChoice{order: order, ops: ops})
					if rec(chainEnd(entry, ops), remaining-len(ops)) {
						return true
					}
					path = path[:len(path)-1]
				}
			}
			return false
		}
		if rec(march.X, k) {
			stats.Elapsed = time.Since(start)
			return found, stats, nil
		}
	}
	stats.Elapsed = time.Since(start)
	return nil, stats, fmt.Errorf("baseline: no March test of complexity ≤ %d covers the fault list", maxOps)
}
