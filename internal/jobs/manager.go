package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"marchgen/internal/budget"
	"marchgen/internal/chaos"
	"marchgen/internal/obs"
	"marchgen/internal/store"
)

// ErrClosed reports a submission after the manager began shutting down.
var ErrClosed = errors.New("jobs: manager closed")

// Executor runs one job to completion and returns the canonical result
// bytes. It must be deterministic for a given (kind, request): resumed
// runs re-invoke it and the crash-safety contract is that they produce
// byte-identical output. ctx carries the per-job obs.Run (obs.From), and
// the same run is passed explicitly for registering observers. The
// returned error is classified with budget.IsTerminal: cancellation
// suspends the job for resume, anything else fails it.
type Executor func(ctx context.Context, kind string, request json.RawMessage, run *obs.Run) ([]byte, error)

// Config configures a Manager. Store and Exec are required.
type Config struct {
	// Store is the durable backing for records, results and memo entries.
	Store *store.Store
	// Exec runs each submitted job.
	Exec Executor
	// ErrCode maps a terminal executor error to a wire error code; nil
	// defaults every error to "internal".
	ErrCode func(error) string
	// Obs receives the manager's counters (submissions, checkpoints,
	// resumes, failures); nil disables them.
	Obs *obs.Run
	// MaxResumes caps how many times a job may be re-adopted before it is
	// failed with code "resume_limit" — the safety valve that turns a job
	// that kills its process every time into a typed terminal error
	// instead of a crash loop. Default 5.
	MaxResumes int
	// CheckpointEvery throttles durable checkpoint writes per job;
	// a new pipeline stage always checkpoints immediately. Default 200ms.
	CheckpointEvery time.Duration
}

// Manager owns the background execution of durable jobs: idempotent
// submission, per-job progress buses, checkpoint persistence, result
// commit, and orphan recovery after a restart.
type Manager struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool
	wg     sync.WaitGroup
}

// Job is one managed job: the live view over its durable Record plus the
// event bus streaming its progress.
type Job struct {
	m   *Manager
	bus *bus

	mu       sync.Mutex
	rec      Record
	lastCkpt time.Time

	// run is the engine's observability run while this process executes
	// the job (nil for adopted-terminal or not-yet-started jobs): the
	// source of the live progress snapshots streamed on the bus and
	// served on status reads.
	run *obs.Run

	// done closes when the job reaches a terminal state. An interrupted
	// (checkpointed, awaiting resume) job does not close it; its bus
	// closes instead, releasing streaming subscribers.
	done chan struct{}
}

// NewManager builds a Manager over a store. Call Recover to re-adopt
// jobs left non-terminal by a previous process, then Submit at will.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Store == nil || cfg.Exec == nil {
		return nil, fmt.Errorf("jobs: Store and Exec are required")
	}
	if cfg.MaxResumes <= 0 {
		cfg.MaxResumes = 5
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 200 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{cfg: cfg, ctx: ctx, cancel: cancel, jobs: map[string]*Job{}}, nil
}

// counter is the nil-safe manager metrics hook.
func (m *Manager) counter(name string) *obs.Counter { return m.cfg.Obs.Counter(name) }

func (m *Manager) code(err error) string {
	if m.cfg.ErrCode != nil {
		return m.cfg.ErrCode(err)
	}
	return "internal"
}

// persist durably writes the record. Failures surface to the caller;
// most call sites treat them as best-effort (a stale record only costs a
// redundant resume) except submission, where durability is the point.
// UpdatedAt is stamped at the mutation sites, not here, so the live
// in-memory record and the durable copy carry the same timestamp.
func (m *Manager) persist(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encode record: %w", err)
	}
	return m.cfg.Store.Put(NSJobs, rec.ID, data)
}

// persistRetry persists with one retry — enough to ride out a single
// injected fault without hiding a persistently broken disk.
func (m *Manager) persistRetry(rec Record) error {
	err := m.persist(rec)
	if err == nil {
		return nil
	}
	m.counter("jobs.persist_retries").Inc()
	return m.persist(rec)
}

// Submit registers (or finds) the job for a canonical request. key must
// be the request's content hash: submission is idempotent, so a repeat of
// a finished job returns its durable record immediately and a repeat of a
// live one joins it. created reports whether this call started a new run.
func (m *Manager) Submit(kind, key string, request json.RawMessage) (j *Job, created bool, err error) {
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	id := JobID(key)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrClosed
	}
	if j, ok := m.jobs[id]; ok {
		m.counter("jobs.joined").Inc()
		return j, false, nil
	}
	// A durable record from a previous process (or a pruned in-memory
	// map) — adopt it rather than re-run.
	if rec, ok := m.loadRecord(id); ok {
		j := m.adoptLocked(rec)
		return j, false, nil
	}
	// No record, but the result may already be durable (an identical
	// request finished under a record that was later deleted): commit a
	// done record straight away.
	if res, err := m.cfg.Store.Get(NSResults, key); err == nil {
		now := time.Now().UTC()
		rec := Record{
			ID: id, Kind: kind, Key: key, Request: request,
			State: StateDone, ResultHash: hashOf(res), CreatedAt: now, UpdatedAt: now,
		}
		_ = m.persistRetry(rec) // best-effort: the result itself is durable
		j := m.newJobLocked(rec)
		j.finishLocked()
		m.counter("jobs.result_hits").Inc()
		return j, false, nil
	}
	now := time.Now().UTC()
	rec := Record{ID: id, Kind: kind, Key: key, Request: request, State: StateSubmitted, CreatedAt: now, UpdatedAt: now}
	// Submission must be durable before we acknowledge it: a job that
	// cannot be recorded is refused, not silently volatile.
	if err := m.persistRetry(rec); err != nil {
		return nil, false, err
	}
	j = m.newJobLocked(rec)
	m.counter("jobs.submitted").Inc()
	j.bus.publish(Event{Type: "state", State: StateSubmitted})
	m.startLocked(j)
	return j, true, nil
}

// Get returns the job with the given id, consulting the durable store
// for jobs not live in this process. A non-terminal durable record found
// here is an orphan (the process that ran it died); it is re-adopted
// exactly as Recover would.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j, true
	}
	rec, ok := m.loadRecord(id)
	if !ok {
		return nil, false
	}
	return m.adoptLocked(rec), true
}

// Recover scans the store for jobs a previous process left non-terminal
// and re-adopts them: jobs whose result is already durable complete
// immediately, the rest re-execute from their persisted checkpoints (the
// memo tier supplies the finished sub-problems). Returns the number of
// jobs resumed. Call once, after NewManager and before serving traffic.
func (m *Manager) Recover() (int, error) {
	ids, err := m.cfg.Store.List(NSJobs)
	if err != nil {
		return 0, err
	}
	resumed := 0
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range ids {
		if _, ok := m.jobs[id]; ok {
			continue
		}
		rec, ok := m.loadRecord(id)
		if !ok || rec.State.Terminal() {
			continue
		}
		m.adoptLocked(rec)
		resumed++
	}
	return resumed, nil
}

// Close stops accepting submissions, cancels running jobs (they persist
// a checkpointed record for the next process to resume) and waits for
// them to quiesce, bounded by ctx.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: shutdown wait: %w", ctx.Err())
	}
}

// loadRecord reads and decodes a durable record; corrupt records read as
// absent (Put is atomic, so this only happens on external tampering).
func (m *Manager) loadRecord(id string) (Record, bool) {
	raw, err := m.cfg.Store.Get(NSJobs, id)
	if err != nil {
		return Record{}, false
	}
	var rec Record
	if json.Unmarshal(raw, &rec) != nil || rec.ID != id {
		return Record{}, false
	}
	return rec, true
}

// newJobLocked materialises a record as a live job. Caller holds m.mu.
func (m *Manager) newJobLocked(rec Record) *Job {
	j := &Job{m: m, bus: newBus(), rec: rec, done: make(chan struct{})}
	m.jobs[rec.ID] = j
	return j
}

// adoptLocked brings a durable record into this process: terminal
// records become closed jobs; non-terminal ones are orphans from a dead
// process and re-enter execution with Resumes incremented (or fail with
// "resume_limit" once the cap is hit). Caller holds m.mu.
func (m *Manager) adoptLocked(rec Record) *Job {
	if rec.State.Terminal() {
		j := m.newJobLocked(rec)
		j.finishLocked()
		return j
	}
	rec.UpdatedAt = time.Now().UTC()
	// The result may have been committed by the dead process even though
	// its record never advanced (killed between the two writes): honour
	// the result rather than re-running.
	if res, err := m.cfg.Store.Get(NSResults, rec.Key); err == nil {
		rec.State, rec.ResultHash, rec.Error = StateDone, hashOf(res), nil
		_ = m.persistRetry(rec)
		j := m.newJobLocked(rec)
		j.finishLocked()
		m.counter("jobs.result_hits").Inc()
		return j
	}
	rec.Resumes++
	if rec.Resumes > m.cfg.MaxResumes {
		rec.State = StateFailed
		rec.Error = &JobError{Code: "resume_limit", Message: fmt.Sprintf("jobs: aborted after %d resume attempts", rec.Resumes-1)}
		_ = m.persistRetry(rec)
		j := m.newJobLocked(rec)
		j.finishLocked()
		m.counter("jobs.resume_limited").Inc()
		return j
	}
	rec.State = StateSubmitted
	_ = m.persistRetry(rec)
	j := m.newJobLocked(rec)
	m.counter("jobs.resumed").Inc()
	j.bus.publish(Event{Type: "state", State: StateSubmitted, Stage: rec.Stage})
	m.startLocked(j)
	return j
}

// startLocked launches the job's runner goroutine. Caller holds m.mu;
// a closed manager leaves the job submitted for the next process.
func (m *Manager) startLocked(j *Job) {
	if m.closed {
		return
	}
	m.wg.Add(1)
	go m.run(j)
}

// stagePrefix is the engine's pipeline-stage span namespace: a finished
// span under it marks a stage boundary, the checkpoint trigger.
const stagePrefix = "generate/"

// progressEvery rate-limits streamed progress events per span name.
const progressEvery = 50 * time.Millisecond

// run executes one job to a terminal state or a resumable interruption.
func (m *Manager) run(j *Job) {
	defer m.wg.Done()
	run := obs.NewRun()
	j.mu.Lock()
	j.run = run
	j.mu.Unlock()
	run.Notify(j.observe)
	j.transition(StateRunning, "")
	rec := j.Snapshot()
	stopTicker := j.startProgressTicker(run)
	res, err := m.cfg.Exec(obs.Into(m.ctx, run), rec.Kind, rec.Request, run)
	stopTicker()
	// The run is live telemetry: detach it before the terminal
	// transition so status reads on a finished job report no progress
	// (and the long-lived Job handle does not pin the run's recorder).
	j.mu.Lock()
	j.run = nil
	j.mu.Unlock()
	switch {
	case err == nil:
		j.complete(res)
	case budget.IsTerminal(err):
		j.fail(m.code(err), err.Error())
	default:
		j.interrupt()
	}
}

// observe is the obs.Notify hook: every finished span becomes a
// (throttled) progress event carrying the engine's live progress
// snapshot, and stage-boundary spans trigger durable checkpoints.
func (j *Job) observe(ev obs.Event) {
	stage := ""
	if strings.HasPrefix(ev.Name, stagePrefix) {
		stage = strings.TrimPrefix(ev.Name, stagePrefix)
	}
	if j.bus.shouldEmit(ev.Name, progressEvery) {
		e := Event{Type: "progress", Span: ev.Name, DurUS: ev.DurUS, Stage: stage}
		if run := j.liveRun(); run != nil {
			snap := run.ProgressSnapshot()
			e.Progress = &snap
		}
		j.bus.publish(e)
	}
	if stage != "" {
		j.checkpoint(stage)
	}
}

// liveRun returns the job's engine run, nil when this process is not
// executing it.
func (j *Job) liveRun() *obs.Run {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.run
}

// Progress returns the engine's latest live-progress snapshot, false
// when this process never executed the job (adopted terminal records,
// jobs queued behind a closed manager).
func (j *Job) Progress() (obs.ProgressSnapshot, bool) {
	run := j.liveRun()
	if run == nil {
		return obs.ProgressSnapshot{}, false
	}
	return run.ProgressSnapshot(), true
}

// startProgressTicker streams periodic progress events while the
// executor runs, covering the long silent stretches (a deep
// branch-and-bound subtree expands millions of nodes without finishing
// a single stage span). A tick publishes only when an engine-written
// cell moved, so an idle wait costs nothing downstream; the returned
// stop func ends the stream.
func (j *Job) startProgressTicker(run *obs.Run) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(progressEvery)
		defer t.Stop()
		var prev obs.ProgressSnapshot
		for {
			select {
			case <-done:
				return
			case <-t.C:
				snap := run.ProgressSnapshot()
				if !snap.Changed(prev) {
					continue
				}
				prev = snap
				j.bus.publish(Event{
					Type:     "progress",
					Stage:    strings.TrimPrefix(snap.Stage, stagePrefix),
					Progress: &snap,
				})
			}
		}
	}()
	return func() { close(done) }
}

// checkpoint persists the record at a stage boundary (throttled; a new
// stage always persists) and then crosses the kill failpoint — the
// "killed between checkpoints" moment the chaos harness injects.
func (j *Job) checkpoint(stage string) {
	j.mu.Lock()
	if j.rec.State != StateRunning && j.rec.State != StateCheckpointed {
		j.mu.Unlock()
		return
	}
	now := time.Now()
	if stage == j.rec.Stage && now.Sub(j.lastCkpt) < j.m.cfg.CheckpointEvery {
		j.mu.Unlock()
		return
	}
	j.lastCkpt = now
	j.rec.State = StateCheckpointed
	j.rec.Stage = stage
	j.rec.Checkpoints++
	j.rec.UpdatedAt = now.UTC()
	rec := j.rec
	j.mu.Unlock()
	// Checkpoints are an optimisation, so persistence failures (chaos
	// fsync, full disk) are counted, not fatal: the job still completes,
	// it would just resume from an older stage after a crash.
	if err := j.m.persist(rec); err != nil {
		j.m.counter("jobs.checkpoint_errors").Inc()
	} else {
		j.m.counter("jobs.checkpoints").Inc()
		chaos.Active().Kill()
	}
	j.bus.publish(Event{Type: "state", State: StateCheckpointed, Stage: stage, Checkpoints: rec.Checkpoints})
}

// transition moves the job to a non-terminal state and persists
// best-effort.
func (j *Job) transition(s State, stage string) {
	j.mu.Lock()
	j.rec.State = s
	if stage != "" {
		j.rec.Stage = stage
	}
	j.rec.UpdatedAt = time.Now().UTC()
	rec := j.rec
	j.mu.Unlock()
	if err := j.m.persist(rec); err != nil {
		j.m.counter("jobs.persist_errors").Inc()
	}
	j.bus.publish(Event{Type: "state", State: s, Stage: rec.Stage})
}

// complete commits the result durably, then the done record. The order
// matters: once the result bytes are committed the job is semantically
// done — a crash before the record write is healed by adoptLocked's
// result check.
func (j *Job) complete(res []byte) {
	if err := j.m.putRetry(NSResults, j.rec.Key, res); err != nil {
		// No durable result means no done job; this is terminal I/O
		// failure, typed so the client knows retrying may help.
		j.fail("store_io", err.Error())
		return
	}
	j.mu.Lock()
	j.rec.State = StateDone
	j.rec.ResultHash = hashOf(res)
	j.rec.Error = nil
	j.rec.UpdatedAt = time.Now().UTC()
	rec := j.rec
	j.mu.Unlock()
	if err := j.m.persistRetry(rec); err != nil {
		// The result is durable; only the record lags. Report done —
		// recovery reconstructs the record from the result.
		j.m.counter("jobs.persist_errors").Inc()
	}
	j.m.counter("jobs.done").Inc()
	j.bus.publish(Event{Type: "state", State: StateDone, ResultHash: rec.ResultHash, Checkpoints: rec.Checkpoints})
	j.finish()
}

// fail records a typed terminal error.
func (j *Job) fail(code, msg string) {
	j.mu.Lock()
	j.rec.State = StateFailed
	j.rec.Error = &JobError{Code: code, Message: msg}
	j.rec.UpdatedAt = time.Now().UTC()
	rec := j.rec
	j.mu.Unlock()
	if err := j.m.persistRetry(rec); err != nil {
		j.m.counter("jobs.persist_errors").Inc()
	}
	j.m.counter("jobs.failed").Inc()
	j.bus.publish(Event{Type: "state", State: StateFailed, Error: rec.Error})
	j.finish()
}

// interrupt suspends a cancelled job for resume: the record persists as
// checkpointed (the orphan state Recover looks for) and the stream
// closes, but done stays open — the job is not over, this process is.
// The job stays in the live map so status reads keep working during
// drain without triggering a re-adoption this process cannot honour.
func (j *Job) interrupt() {
	j.mu.Lock()
	j.rec.State = StateCheckpointed
	j.rec.UpdatedAt = time.Now().UTC()
	rec := j.rec
	j.mu.Unlock()
	if err := j.m.persistRetry(rec); err != nil {
		j.m.counter("jobs.persist_errors").Inc()
	}
	j.m.counter("jobs.interrupted").Inc()
	j.bus.publish(Event{Type: "state", State: StateCheckpointed, Stage: rec.Stage, Checkpoints: rec.Checkpoints})
	j.bus.close()
}

// finish closes the done channel and the event stream. Terminal states
// only.
func (j *Job) finish() {
	j.mu.Lock()
	j.finishLocked()
	j.mu.Unlock()
}

func (j *Job) finishLocked() {
	select {
	case <-j.done:
	default:
		close(j.done)
	}
	j.bus.close()
}

// putRetry writes to the store with one retry (see persistRetry).
func (m *Manager) putRetry(ns, key string, data []byte) error {
	err := m.cfg.Store.Put(ns, key, data)
	if err == nil {
		return nil
	}
	m.counter("jobs.persist_retries").Inc()
	return m.cfg.Store.Put(ns, key, data)
}

// ID returns the job identifier.
func (j *Job) ID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.ID
}

// Snapshot returns a copy of the job's current record.
func (j *Job) Snapshot() Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec
}

// Done closes when the job reaches a terminal state. It stays open
// across a shutdown interruption — the job is still pending then, owned
// by the next process.
func (j *Job) Done() <-chan struct{} { return j.done }

// Subscribe returns the job's retained event history plus a live channel
// that closes when the job ends (or this process stops running it). Call
// cancel to detach early.
func (j *Job) Subscribe() (past []Event, ch <-chan Event, cancel func()) {
	return j.bus.subscribe()
}

// Result returns the committed result bytes of a done job.
func (j *Job) Result() ([]byte, error) {
	j.mu.Lock()
	key, state := j.rec.Key, j.rec.State
	j.mu.Unlock()
	if state != StateDone {
		return nil, fmt.Errorf("jobs: job %s not done (state %s)", j.ID(), state)
	}
	return j.m.cfg.Store.Get(NSResults, key)
}

// hashOf is the result-hash convention: hex SHA-256 of the bytes.
func hashOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// validKey insists on the canonical 64-hex-char content-hash form so job
// ids (a prefix of the key) are well-formed and store-safe.
func validKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("jobs: key %q is not a content hash", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("jobs: key %q is not a content hash", key)
		}
	}
	return nil
}
