package jobs

import (
	"marchgen/internal/memo"
	"marchgen/internal/store"
)

// memoTier adapts the store's NSMemo namespace as the memo cache's
// durable second level: attach it with memo.Shared().AttachDisk together
// with the internal/core codec and the engine's expensive intermediate
// artifacts (exact-ATSP tour fragments, completeness verdicts) survive
// process death — the substrate of checkpoint resume.
type memoTier struct{ s *store.Store }

// MemoTier returns the memo.DiskTier persisting into st's NSMemo
// namespace. Store errors are absorbed as misses / dropped writes,
// matching the DiskTier contract: durability here is an optimisation,
// never a correctness dependency.
func MemoTier(st *store.Store) memo.DiskTier { return memoTier{s: st} }

// Get reads a persisted memo entry; any store error is a miss.
func (t memoTier) Get(key string) ([]byte, bool) {
	data, err := t.s.Get(NSMemo, key)
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put persists a memo entry; write failures are dropped.
func (t memoTier) Put(key string, data []byte) {
	_ = t.s.Put(NSMemo, key, data)
}
