package jobs

import (
	"sync"
	"time"

	"marchgen/internal/obs"
)

// Event is one job progress notification, streamed to subscribers (the
// SSE endpoint) and retained in a bounded replay ring so a late
// subscriber still sees the recent history. Seq orders events within one
// job; Type selects which optional fields are meaningful.
type Event struct {
	// Seq orders events within one job, assigned by the bus.
	Seq int `json:"seq"`
	// Type is "state" (a lifecycle transition or checkpoint — State,
	// Stage, Checkpoints, and on terminal events ResultHash or Error are
	// set) or "progress" (a finished pipeline span — Span, DurUS, Stage).
	Type string `json:"type"`
	// State is the lifecycle state a "state" event announces.
	State State `json:"state,omitempty"`
	// Stage names the engine stage the event belongs to.
	Stage string `json:"stage,omitempty"`

	// Span is the finished span's name on "progress" events.
	Span string `json:"span,omitempty"`
	// DurUS is the finished span's duration in microseconds.
	DurUS int64 `json:"dur_us,omitempty"`

	// Checkpoints echoes the record's persisted-checkpoint count.
	Checkpoints int `json:"checkpoints,omitempty"`
	// ResultHash carries the committed result hash on terminal events.
	ResultHash string `json:"result_hash,omitempty"`
	// Error carries the typed error on terminal failure events.
	Error *JobError `json:"error,omitempty"`

	// Progress is the engine's live-progress snapshot at emission time
	// (stage, sweep fraction, incumbent cost vs lower bound,
	// coverage-so-far, node rate, ETA) on "progress" events of a job this
	// process is executing. Replayed history keeps the snapshot that was
	// current when the event was published.
	Progress *obs.ProgressSnapshot `json:"progress,omitempty"`
}

// ringCap bounds the replay ring; subChanCap buffers each subscriber.
// A subscriber that falls further behind than its buffer loses events
// (progress is advisory; the durable record is the source of truth), it
// is never blocked on.
const (
	ringCap    = 256
	subChanCap = 64
)

// bus is one job's event fan-out: a bounded replay ring plus live
// subscriber channels. Closed exactly once, when the job reaches a
// terminal state or is interrupted by shutdown.
type bus struct {
	mu       sync.Mutex
	seq      int
	ring     []Event
	subs     map[int]chan Event
	nextSub  int
	closed   bool
	lastEmit map[string]time.Time
}

func newBus() *bus {
	return &bus{subs: map[int]chan Event{}, lastEmit: map[string]time.Time{}}
}

// publish assigns the event its sequence number, retains it in the ring
// and offers it to every live subscriber without blocking.
func (b *bus) publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.seq++
	ev.Seq = b.seq
	b.ring = append(b.ring, ev)
	if len(b.ring) > ringCap {
		b.ring = b.ring[len(b.ring)-ringCap:]
	}
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, never block the engine
		}
	}
}

// shouldEmit rate-limits progress events per span name: the first
// completion of each name always passes (so short jobs still produce a
// visible trace), later ones pass at most once per interval.
func (b *bus) shouldEmit(name string, every time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	now := time.Now()
	last, seen := b.lastEmit[name]
	if seen && now.Sub(last) < every {
		return false
	}
	b.lastEmit[name] = now
	return true
}

// subscribe returns the replayable history and a live channel. The
// channel closes when the bus closes; cancel detaches early.
func (b *bus) subscribe() (past []Event, ch <-chan Event, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	past = append([]Event(nil), b.ring...)
	c := make(chan Event, subChanCap)
	if b.closed {
		close(c)
		return past, c, func() {}
	}
	id := b.nextSub
	b.nextSub++
	b.subs[id] = c
	return past, c, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if ch, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(ch)
		}
	}
}

// close ends the stream: every subscriber channel closes after draining
// its buffer. Idempotent.
func (b *bus) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	// The rate-limit map exists only to throttle live emission: drop it
	// with the stream so a long-lived Job handle (status reads keep
	// terminal jobs in the manager's map) does not pin one entry per
	// distinct span name for the rest of the process.
	b.lastEmit = nil
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
}
