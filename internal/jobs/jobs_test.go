package jobs_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"marchgen"
	"marchgen/internal/budget"
	"marchgen/internal/chaos"
	"marchgen/internal/core"
	"marchgen/internal/jobs"
	"marchgen/internal/memo"
	"marchgen/internal/obs"
	"marchgen/internal/store"
)

// testKey builds the canonical content key for a test request, the same
// way the service layer fingerprints submissions.
func testKey(faults string) string {
	return memo.NewFingerprinter("jobs-test").Str(faults).Key()
}

// genRequest is the test wire format: just a fault list.
type genRequest struct {
	Faults string `json:"faults"`
}

func mustJSON(t *testing.T, v any) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// genExecutor runs the real generation engine and returns canonical
// result bytes — deterministic for a given fault list, which is what the
// byte-identity assertions lean on. count tracks invocations.
func genExecutor(count *atomic.Int64) jobs.Executor {
	return func(ctx context.Context, kind string, request json.RawMessage, run *obs.Run) ([]byte, error) {
		count.Add(1)
		var req genRequest
		if err := json.Unmarshal(request, &req); err != nil {
			return nil, fmt.Errorf("%w: %v", budget.ErrUsage, err)
		}
		res, err := marchgen.GenerateCtx(ctx, req.Faults)
		if err != nil {
			return nil, err
		}
		return json.Marshal(map[string]any{
			"test":       res.Test.String(),
			"complexity": res.Complexity,
		})
	}
}

func newManager(t *testing.T, dir string, exec jobs.Executor) (*jobs.Manager, *store.Store) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := jobs.NewManager(jobs.Config{Store: st, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	return m, st
}

func waitDone(t *testing.T, j *jobs.Job) jobs.Record {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not reach a terminal state: %+v", j.ID(), j.Snapshot())
	}
	return j.Snapshot()
}

func TestSubmitLifecycle(t *testing.T) {
	var calls atomic.Int64
	m, st := newManager(t, t.TempDir(), genExecutor(&calls))
	key := testKey("SAF,TF")
	req := mustJSON(t, genRequest{Faults: "SAF,TF"})

	j, created, err := m.Submit("generate", key, req)
	if err != nil || !created {
		t.Fatalf("Submit = %v, created=%v", err, created)
	}
	if j.ID() != jobs.JobID(key) {
		t.Fatalf("job id %q, want %q", j.ID(), jobs.JobID(key))
	}
	rec := waitDone(t, j)
	if rec.State != jobs.StateDone || rec.Error != nil {
		t.Fatalf("terminal record: %+v", rec)
	}
	res, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(res)
	if rec.ResultHash != hex.EncodeToString(sum[:]) {
		t.Fatalf("ResultHash %s does not match result bytes", rec.ResultHash)
	}
	if !st.Has(jobs.NSResults, key) || !st.Has(jobs.NSJobs, rec.ID) {
		t.Fatal("result or record not durable")
	}
	// The engine ran and checkpointed at stage boundaries.
	if rec.Checkpoints == 0 || rec.Stage == "" {
		t.Fatalf("no checkpoints recorded: %+v", rec)
	}
	// Idempotent resubmission: same job, no second execution.
	j2, created, err := m.Submit("generate", key, req)
	if err != nil || created || j2.ID() != j.ID() {
		t.Fatalf("resubmit = %v, created=%v, id=%s", err, created, j2.ID())
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("executor ran %d times, want 1", n)
	}
}

func TestEventsStreamAndReplay(t *testing.T) {
	var calls atomic.Int64
	m, _ := newManager(t, t.TempDir(), genExecutor(&calls))
	j, _, err := m.Submit("generate", testKey("SAF"), mustJSON(t, genRequest{Faults: "SAF"}))
	if err != nil {
		t.Fatal(err)
	}
	past, ch, cancel := j.Subscribe()
	defer cancel()
	var evs []jobs.Event
	evs = append(evs, past...)
	for ev := range ch { // closes at the terminal state
		evs = append(evs, ev)
	}
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	var sawProgress bool
	for i, ev := range evs {
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %+v", evs)
		}
		if ev.Type == "progress" {
			sawProgress = true
		}
	}
	last := evs[len(evs)-1]
	if last.Type != "state" || last.State != jobs.StateDone || last.ResultHash == "" {
		t.Fatalf("final event %+v, want done with result hash", last)
	}
	if !sawProgress {
		t.Fatal("no progress events streamed")
	}
	// A late subscriber replays history and gets an already-closed channel.
	past2, ch2, cancel2 := j.Subscribe()
	defer cancel2()
	if len(past2) == 0 || past2[len(past2)-1].State != jobs.StateDone {
		t.Fatalf("replay missing terminal event: %+v", past2)
	}
	if _, open := <-ch2; open {
		t.Fatal("live channel of a finished job not closed")
	}
}

func TestResubmitAcrossRestartIsCacheHit(t *testing.T) {
	dir := t.TempDir()
	var callsA atomic.Int64
	mA, _ := newManager(t, dir, genExecutor(&callsA))
	jA, _, err := mA.Submit("generate", testKey("SAF"), mustJSON(t, genRequest{Faults: "SAF"}))
	if err != nil {
		t.Fatal(err)
	}
	recA := waitDone(t, jA)
	resA, err := jA.Result()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := mA.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// A fresh process over the same store: the resubmission is served
	// from the durable record without executing anything.
	var callsB atomic.Int64
	mB, _ := newManager(t, dir, genExecutor(&callsB))
	jB, created, err := mB.Submit("generate", testKey("SAF"), mustJSON(t, genRequest{Faults: "SAF"}))
	if err != nil || created {
		t.Fatalf("restart resubmit = %v, created=%v", err, created)
	}
	recB := waitDone(t, jB)
	if recB.State != jobs.StateDone || recB.ResultHash != recA.ResultHash {
		t.Fatalf("restart record %+v, want done with hash %s", recB, recA.ResultHash)
	}
	resB, err := jB.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resA, resB) {
		t.Fatal("restart result differs")
	}
	if callsB.Load() != 0 {
		t.Fatal("executor ran on restart resubmission")
	}
}

// TestCrashResumeByteIdentical is the tentpole assertion: a job whose
// process dies mid-run (after a durable checkpoint) is re-adopted by the
// next process and completes byte-identically to an uninterrupted run,
// with the persisted memo tier supplying the already-solved sub-problems.
func TestCrashResumeByteIdentical(t *testing.T) {
	const faults = "SAF,TF,CFin"
	key := testKey(faults)
	req := mustJSON(t, genRequest{Faults: faults})

	// Uninterrupted baseline in its own store.
	var base atomic.Int64
	mBase, _ := newManager(t, t.TempDir(), genExecutor(&base))
	jBase, _, err := mBase.Submit("generate", key, req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jBase)
	want, err := jBase.Result()
	if err != nil {
		t.Fatal(err)
	}
	marchgen.ResetCache()

	// Crash run: a second store with the durable memo tier attached. The
	// executor cancels its context as soon as the first pipeline stage
	// completes — after the manager's checkpoint observer persisted the
	// record (observers run in registration order), exactly the window a
	// kill -9 between checkpoints hits.
	dir := t.TempDir()
	var crashCalls atomic.Int64
	crashExec := func(ctx context.Context, kind string, request json.RawMessage, run *obs.Run) ([]byte, error) {
		crashCalls.Add(1)
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		var once atomic.Bool
		run.Notify(func(ev obs.Event) {
			if ev.Name == "generate/expand" && once.CompareAndSwap(false, true) {
				cancel()
			}
		})
		var r genRequest
		if err := json.Unmarshal(request, &r); err != nil {
			return nil, err
		}
		res, err := marchgen.GenerateCtx(cctx, r.Faults)
		if err != nil {
			return nil, err
		}
		return json.Marshal(map[string]any{"test": res.Test.String(), "complexity": res.Complexity})
	}
	mCrash, st := newManager(t, dir, crashExec)
	memo.Shared().AttachDisk(jobs.MemoTier(st), core.Codec())
	defer func() {
		memo.Shared().DetachDisk()
		marchgen.ResetCache()
	}()

	if _, _, err := mCrash.Submit("generate", key, req); err != nil {
		t.Fatal(err)
	}
	// The cancelled run must suspend, not fail: poll the durable record
	// until it reads checkpointed.
	id := jobs.JobID(key)
	deadline := time.Now().Add(30 * time.Second)
	for {
		raw, err := st.Get(jobs.NSJobs, id)
		if err == nil {
			var rec jobs.Record
			if json.Unmarshal(raw, &rec) == nil && rec.State == jobs.StateCheckpointed && rec.Checkpoints > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("interrupted job never persisted a checkpointed record")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancelClose := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelClose()
	if err := mCrash.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if crashCalls.Load() != 1 {
		t.Fatalf("crash executor ran %d times, want 1", crashCalls.Load())
	}
	// Drop the in-memory cache: the resume must rebuild from the durable
	// tier, as a genuinely new process would.
	marchgen.ResetCache()

	// Recovery process over the same store.
	var resumeCalls atomic.Int64
	mResume, _ := newManager(t, dir, genExecutor(&resumeCalls))
	n, err := mResume.Recover()
	if err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v, want 1 resumed", n, err)
	}
	j, ok := mResume.Get(id)
	if !ok {
		t.Fatal("recovered job vanished")
	}
	rec := waitDone(t, j)
	if rec.State != jobs.StateDone {
		t.Fatalf("resumed job ended %+v", rec)
	}
	if rec.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", rec.Resumes)
	}
	got, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\n got: %s\nwant: %s", got, want)
	}
	sum := sha256.Sum256(got)
	if rec.ResultHash != hex.EncodeToString(sum[:]) {
		t.Fatal("resumed result hash mismatch")
	}
}

// TestHardKillRecover simulates a true SIGKILL: the record is durable in
// state running (no graceful interrupt ever ran) and the next process
// must still re-adopt and finish the job.
func TestHardKillRecover(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("SAF")
	rec := jobs.Record{
		ID: jobs.JobID(key), Kind: "generate", Key: key,
		Request: mustJSON(t, genRequest{Faults: "SAF"}),
		State:   jobs.StateRunning, Stage: "atsp", Checkpoints: 3,
		CreatedAt: time.Now().UTC(),
	}
	raw, _ := json.Marshal(rec)
	if err := st.Put(jobs.NSJobs, rec.ID, raw); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	m, _ := newManager(t, dir, genExecutor(&calls))
	n, err := m.Recover()
	if err != nil || n != 1 {
		t.Fatalf("Recover = %d, %v", n, err)
	}
	j, ok := m.Get(rec.ID)
	if !ok {
		t.Fatal("job not adopted")
	}
	got := waitDone(t, j)
	if got.State != jobs.StateDone || got.Resumes != 1 || got.Error != nil {
		t.Fatalf("recovered record %+v", got)
	}
	if calls.Load() != 1 {
		t.Fatalf("executor ran %d times", calls.Load())
	}
}

func TestTerminalErrorTyped(t *testing.T) {
	var calls atomic.Int64
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exec := func(ctx context.Context, kind string, request json.RawMessage, run *obs.Run) ([]byte, error) {
		calls.Add(1)
		return nil, fmt.Errorf("bad model: %w", budget.ErrUnsupportedFault)
	}
	m, err := jobs.NewManager(jobs.Config{
		Store: st, Exec: exec,
		ErrCode: func(err error) string {
			if errors.Is(err, budget.ErrUnsupportedFault) {
				return "unsupported_fault"
			}
			return "internal"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("bogus")
	j, _, err := m.Submit("generate", key, mustJSON(t, genRequest{Faults: "bogus"}))
	if err != nil {
		t.Fatal(err)
	}
	rec := waitDone(t, j)
	if rec.State != jobs.StateFailed || rec.Error == nil || rec.Error.Code != "unsupported_fault" {
		t.Fatalf("record %+v, want typed unsupported_fault failure", rec)
	}
	// Terminal failures are sticky: resubmitting returns the record, it
	// does not re-execute.
	j2, created, err := m.Submit("generate", key, mustJSON(t, genRequest{Faults: "bogus"}))
	if err != nil || created {
		t.Fatalf("resubmit after failure = %v, created=%v", err, created)
	}
	if s := j2.Snapshot(); s.State != jobs.StateFailed {
		t.Fatalf("resubmitted state %s", s.State)
	}
	if calls.Load() != 1 {
		t.Fatalf("executor ran %d times", calls.Load())
	}
}

func TestResumeLimit(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("SAF")
	rec := jobs.Record{
		ID: jobs.JobID(key), Kind: "generate", Key: key,
		Request: mustJSON(t, genRequest{Faults: "SAF"}),
		State:   jobs.StateCheckpointed, Resumes: 5,
		CreatedAt: time.Now().UTC(),
	}
	raw, _ := json.Marshal(rec)
	if err := st.Put(jobs.NSJobs, rec.ID, raw); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	m, _ := newManager(t, dir, genExecutor(&calls))
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	j, ok := m.Get(rec.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	got := waitDone(t, j)
	if got.State != jobs.StateFailed || got.Error == nil || got.Error.Code != "resume_limit" {
		t.Fatalf("record %+v, want resume_limit failure", got)
	}
	if calls.Load() != 0 {
		t.Fatal("executor ran for a resume-limited job")
	}
}

// TestStoreFailureIsTypedNeverHangs drives the result commit into a
// fully broken disk (every fsync injected to fail) and asserts the job
// ends in a typed terminal error rather than hanging or vanishing.
func TestStoreFailureIsTypedNeverHangs(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exec := func(ctx context.Context, kind string, request json.RawMessage, run *obs.Run) ([]byte, error) {
		// Break the disk only once the submission record is durable.
		if err := chaos.Enable("fsync=1"); err != nil {
			t.Error(err)
		}
		return []byte("result"), nil
	}
	m, err := jobs.NewManager(jobs.Config{Store: st, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()
	j, _, err := m.Submit("generate", testKey("SAF"), mustJSON(t, genRequest{Faults: "SAF"}))
	if err != nil {
		t.Fatal(err)
	}
	rec := waitDone(t, j)
	if rec.State != jobs.StateFailed || rec.Error == nil || rec.Error.Code != "store_io" {
		t.Fatalf("record %+v, want typed store_io failure", rec)
	}
}

func TestSubmitValidation(t *testing.T) {
	m, _ := newManager(t, t.TempDir(), genExecutor(new(atomic.Int64)))
	if _, _, err := m.Submit("generate", "not-a-hash", nil); err == nil {
		t.Fatal("malformed key accepted")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit("generate", testKey("SAF"), nil); !errors.Is(err, jobs.ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}
