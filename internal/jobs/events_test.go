package jobs

import (
	"testing"
	"time"
)

// TestBusRateLimitMapPruned pins the lifecycle of the per-span-name
// rate-limit map: it grows while the job streams, and drops with the
// bus when the job reaches a terminal state — a long-lived Job handle
// (terminal jobs stay in the manager's map for status reads) must not
// pin one entry per distinct span name forever.
func TestBusRateLimitMapPruned(t *testing.T) {
	b := newBus()
	if !b.shouldEmit("generate/expand", time.Hour) {
		t.Fatal("first completion of a span name must always emit")
	}
	if b.shouldEmit("generate/expand", time.Hour) {
		t.Fatal("second completion within the interval must be rate-limited")
	}
	if !b.shouldEmit("generate/select", time.Hour) {
		t.Fatal("a new span name must emit")
	}
	if len(b.lastEmit) != 2 {
		t.Fatalf("lastEmit holds %d entries, want 2", len(b.lastEmit))
	}

	b.close()
	if b.lastEmit != nil {
		t.Fatal("lastEmit must be dropped when the bus closes")
	}

	// The closed bus keeps rejecting without touching the nil map.
	if b.shouldEmit("generate/atsp", 0) {
		t.Fatal("closed bus must not emit")
	}
	b.publish(Event{Type: "progress"})
	if b.lastEmit != nil {
		t.Fatal("post-close traffic must not resurrect the map")
	}
	b.close() // idempotent
}

// TestBusSubscribeAfterClose pins the late-subscriber contract the SSE
// reconnect path relies on: the ring still replays, and the live
// channel arrives already closed.
func TestBusSubscribeAfterClose(t *testing.T) {
	b := newBus()
	b.publish(Event{Type: "state", State: StateRunning})
	b.publish(Event{Type: "progress", Span: "generate/expand"})
	b.close()

	past, ch, cancel := b.subscribe()
	defer cancel()
	if len(past) != 2 {
		t.Fatalf("replay has %d events, want 2", len(past))
	}
	if past[0].Seq != 1 || past[1].Seq != 2 {
		t.Fatalf("replay seqs %d,%d, want 1,2", past[0].Seq, past[1].Seq)
	}
	if _, open := <-ch; open {
		t.Fatal("live channel after close must be closed")
	}
}
