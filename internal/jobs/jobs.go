// Package jobs is the durable asynchronous job layer of the march-test
// service: submissions become content-addressed job records in
// internal/store, execute in the background with streaming progress, and
// commit their results durably so a finished job survives process death
// and a repeated submission is a cache hit.
//
// The lifecycle is submitted → running → checkpointed → done | failed.
// "Checkpointed" is the crash-safety state: while a job runs, every
// pipeline-stage completion persists the record (throttled), and the
// engine's expensive intermediate artifacts flow to disk through the memo
// cache's durable tier (memo.AttachDisk + the internal/core codec). A
// process killed at any point therefore leaves either a terminal record,
// or a non-terminal one plus the memo entries of the work already done;
// Recover re-adopts such orphans on the next start, and — because the
// engine is deterministic and memo values are pure functions of their
// content-hash keys — the resumed run skips the finished sub-problems and
// produces a byte-identical result.
//
// Error classification follows budget.IsTerminal: only cancellation
// (shutdown, client abort) is resumable; every other failure becomes a
// typed terminal record so a job can never hang or vanish — the contract
// the chaos harness (internal/chaos, marchload -chaos) enforces.
package jobs

import (
	"encoding/json"
	"time"
)

// Store namespaces used by the job layer. NSMemo holds the engine's
// persisted memo entries (tour fragments, verdicts) and is written by the
// memo disk tier rather than by this package directly.
const (
	NSJobs    = "jobs"
	NSResults = "results"
	NSMemo    = "memo"
)

// State is a job lifecycle state.
type State string

// The job lifecycle: submitted → running → checkpointed → done | failed.
// A checkpointed job is still executing (or was interrupted and awaits
// Recover); only done and failed are terminal.
const (
	StateSubmitted    State = "submitted"
	StateRunning      State = "running"
	StateCheckpointed State = "checkpointed"
	StateDone         State = "done"
	StateFailed       State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// JobError is the typed terminal error of a failed job. Code values are
// the service error codes ("unsupported_fault", "store_io", ...); Message
// is human-readable detail.
type JobError struct {
	// Code is the machine-readable error class.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Record is the durable state of one job, persisted to the store under
// NSJobs/ID on every transition (and on throttled checkpoints). It is the
// unit the resume machinery reasons about: everything needed to re-adopt
// the job after a crash is here or reachable from Key.
type Record struct {
	// ID is the job identifier, derived from Key (see JobID): the same
	// request always maps to the same job.
	ID string `json:"id"`
	// Kind is the operation ("generate", "verify", "simulate").
	Kind string `json:"kind"`
	// Key is the canonical content hash of the request; the result, once
	// committed, lives at NSResults/Key.
	Key string `json:"key"`
	// Request is the original request body, kept verbatim so a restarted
	// process can re-execute without the submitting client.
	Request json.RawMessage `json:"request"`

	// State is the lifecycle state last persisted.
	State State `json:"state"`
	// Stage names the engine stage of the latest checkpoint.
	Stage string `json:"stage,omitempty"`
	// Checkpoints counts persisted progress records; Resumes counts
	// orphan re-adoptions after a crash or restart.
	Checkpoints int `json:"checkpoints"`
	// Resumes counts orphan re-adoptions; MaxResumes caps it.
	Resumes int `json:"resumes,omitempty"`

	// ResultHash is the hex SHA-256 of the committed result bytes (done
	// jobs only) — the value the chaos harness compares across kills.
	ResultHash string `json:"result_hash,omitempty"`
	// Error is the typed terminal error of a failed job.
	Error *JobError `json:"error,omitempty"`

	// CreatedAt is when the job was first submitted; UpdatedAt advances
	// on every persisted transition or checkpoint.
	CreatedAt time.Time `json:"created_at"`
	// UpdatedAt is the time of the latest persisted record write.
	UpdatedAt time.Time `json:"updated_at"`
}

// jobIDHashLen is how much of the content hash the job id exposes: 96
// bits, comfortably collision-free for any realistic job population while
// keeping ids short enough to paste.
const jobIDHashLen = 24

// JobID derives the job identifier from a request content hash. The
// mapping is deterministic, which is what makes resubmission idempotent:
// the same canonical request always addresses the same job.
func JobID(key string) string {
	if len(key) > jobIDHashLen {
		key = key[:jobIDHashLen]
	}
	return "j-" + key
}
