package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// BenchRow is one fault list's engine measurement in BENCH_generate.json.
// The first block of fields times whole generations (sequential, parallel,
// warm-cache); the kernel block times the coverage-evaluation stage alone,
// bit-parallel kernel against the scalar reference oracle, on the
// generated test and its expanded instance list.
type BenchRow struct {
	Faults       string  `json:"faults"`
	Complexity   int     `json:"complexity"`
	Test         string  `json:"test"`
	SequentialNS int64   `json:"sequential_ns"`
	ParallelNS   int64   `json:"parallel_ns"`
	WarmCacheNS  int64   `json:"warm_cache_ns"`
	SpeedupPar   float64 `json:"speedup_parallel"`
	SpeedupWarm  float64 `json:"speedup_warm_cache"`
	// Warm-phase memo cache traffic: deltas of the process-wide cache
	// counters across the warm-cache repetitions.
	WarmCacheHits      uint64 `json:"warm_cache_hits"`
	WarmCacheMisses    uint64 `json:"warm_cache_misses"`
	WarmCacheEvictions uint64 `json:"warm_cache_evictions"`
	// Pool utilisation of the parallel configuration: the fraction of
	// workers × wall-time the pool's workers spent busy, from a separate
	// instrumented run (the timed runs are observation-free).
	PoolWorkers     int     `json:"pool_workers"`
	PoolUtilization float64 `json:"pool_utilization"`
	// KernelEvalNS / ScalarEvalNS time one coverage evaluation of the
	// generated test against the row's full instance list on each engine
	// (minimum over the file's reps, averaged over an inner loop).
	KernelEvalNS int64 `json:"kernel_eval_ns,omitempty"`
	ScalarEvalNS int64 `json:"scalar_eval_ns,omitempty"`
	// SpeedupKernel is ScalarEvalNS / KernelEvalNS.
	SpeedupKernel float64 `json:"speedup_kernel,omitempty"`
	// KernelAllocsPerOp counts heap allocations per kernel evaluation.
	KernelAllocsPerOp uint64 `json:"kernel_allocs_per_op,omitempty"`
	// ScalarAllocsPerOp counts heap allocations per scalar evaluation.
	ScalarAllocsPerOp uint64 `json:"scalar_allocs_per_op,omitempty"`
	// SolverNodesEnumerate / SolverNodesWarm / SolverNodesJoint count the
	// total exact-solver nodes — Held–Karp states plus branch-and-bound
	// expansions plus optimal-path enumeration nodes — of one single-worker
	// cold-cache generation per solver mode. The three modes emit the
	// byte-identical test (the generator aborts otherwise); only this
	// effort differs.
	SolverNodesEnumerate int64 `json:"solver_nodes_enumerate,omitempty"`
	SolverNodesWarm      int64 `json:"solver_nodes_warm,omitempty"`
	SolverNodesJoint     int64 `json:"solver_nodes_joint,omitempty"`
	// SolverNodeReduction is SolverNodesEnumerate / SolverNodesWarm.
	SolverNodeReduction float64 `json:"solver_node_reduction,omitempty"`
	// SolverWarmNS / SolverJointNS time one single-worker cold-cache
	// generation under the warm and joint solver modes (minimum over reps;
	// the sequential_ns column is the enumerate-mode equivalent).
	SolverWarmNS  int64 `json:"solver_warm_ns,omitempty"`
	SolverJointNS int64 `json:"solver_joint_ns,omitempty"`
	// SolverEscalations / SolverEscalationPrunes count the bound-ladder
	// escalations of the warm run (branch-and-bound Lagrangian plus
	// enumeration assignment-bound climbs) and how many of them pruned a
	// node the first rung had let through.
	SolverEscalations      int64 `json:"solver_escalations,omitempty"`
	SolverEscalationPrunes int64 `json:"solver_escalation_prunes,omitempty"`
	// SolverAllocsEnumerate / SolverAllocsWarm count heap allocations of
	// one whole single-worker cold-cache generation per solver mode,
	// tracking the solver's allocation discipline (pooled assignment
	// states and matrices) release over release.
	SolverAllocsEnumerate uint64 `json:"solver_allocs_enumerate,omitempty"`
	SolverAllocsWarm      uint64 `json:"solver_allocs_warm,omitempty"`
}

// BenchEntry is one labelled measurement campaign: a full Table 3 sweep
// taken at one point in the repository's history.
type BenchEntry struct {
	// Label names the engine state the entry measured (e.g. "pre-kernel",
	// "kernel").
	Label string `json:"label"`
	// GoMaxProcs is the GOMAXPROCS of the measuring process.
	GoMaxProcs int `json:"gomaxprocs"`
	// Reps is the repetition count; the minimum time is kept.
	Reps int `json:"reps"`
	// Rows holds one measurement per Table 3 fault list.
	Rows []BenchRow `json:"rows"`
}

// BenchFile is the BENCH_generate.json schema: an append-only list of
// labelled entries, so before/after comparisons live in one committed
// file.
type BenchFile struct {
	Entries []BenchEntry `json:"entries"`
}

// legacyBenchFile is the pre-entry schema: one unlabelled sweep.
type legacyBenchFile struct {
	GoMaxProcs int        `json:"gomaxprocs"`
	Reps       int        `json:"reps"`
	Rows       []BenchRow `json:"rows"`
}

// DecodeBenchFile parses BENCH_generate.json content. The legacy
// single-sweep schema (a bare {gomaxprocs, reps, rows} object) is
// accepted and surfaced as one entry labelled "pre-kernel", so history
// written before the schema migration keeps loading.
func DecodeBenchFile(data []byte) (*BenchFile, error) {
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("experiments: parsing bench file: %w", err)
	}
	if f.Entries != nil {
		return &f, nil
	}
	var legacy legacyBenchFile
	if err := json.Unmarshal(data, &legacy); err != nil {
		return nil, fmt.Errorf("experiments: parsing legacy bench file: %w", err)
	}
	if legacy.Rows == nil {
		return nil, fmt.Errorf("experiments: bench file has neither entries nor rows")
	}
	return &BenchFile{Entries: []BenchEntry{{
		Label:      "pre-kernel",
		GoMaxProcs: legacy.GoMaxProcs,
		Reps:       legacy.Reps,
		Rows:       legacy.Rows,
	}}}, nil
}

// LoadBenchFile reads and decodes a BENCH_generate.json file.
func LoadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeBenchFile(data)
}

// Upsert replaces the entry with e's label, or appends e when no entry
// carries it — re-running a measurement campaign refreshes its entry
// instead of stacking duplicates.
func (f *BenchFile) Upsert(e BenchEntry) {
	for k := range f.Entries {
		if f.Entries[k].Label == e.Label {
			f.Entries[k] = e
			return
		}
	}
	f.Entries = append(f.Entries, e)
}

// Entry returns the entry with the given label, or nil.
func (f *BenchFile) Entry(label string) *BenchEntry {
	for k := range f.Entries {
		if f.Entries[k].Label == label {
			return &f.Entries[k]
		}
	}
	return nil
}

// FormatBenchKernel renders the kernel-vs-scalar columns of a bench entry
// as a markdown table (empty string when the entry is nil or carries no
// kernel measurements).
func FormatBenchKernel(e *BenchEntry) string {
	if e == nil {
		return ""
	}
	any := false
	for _, r := range e.Rows {
		if r.KernelEvalNS > 0 {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	b.WriteString("| fault list | kn | scalar eval | kernel eval | speedup | allocs/op (scalar → kernel) |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range e.Rows {
		if r.KernelEvalNS <= 0 {
			continue
		}
		fmt.Fprintf(&b, "| %s | %dn | %s | %s | %.1f× | %d → %d |\n",
			r.Faults, r.Complexity,
			formatNS(r.ScalarEvalNS), formatNS(r.KernelEvalNS),
			r.SpeedupKernel, r.ScalarAllocsPerOp, r.KernelAllocsPerOp)
	}
	return b.String()
}

// FormatBenchSolver renders the solver-mode node-count columns of a bench
// entry as a markdown table (empty string when the entry is nil or carries
// no solver measurements).
func FormatBenchSolver(e *BenchEntry) string {
	if e == nil {
		return ""
	}
	any := false
	for _, r := range e.Rows {
		if r.SolverNodesEnumerate > 0 {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	b.WriteString("| fault list | kn | enumerate nodes | warm nodes | joint nodes | reduction | escalations | allocs enum→warm | enumerate time | warm time |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range e.Rows {
		if r.SolverNodesEnumerate <= 0 {
			continue
		}
		esc, allocs := "—", "—"
		if r.SolverEscalations > 0 {
			esc = fmt.Sprintf("%d (%d pruned)", r.SolverEscalations, r.SolverEscalationPrunes)
		}
		if r.SolverAllocsEnumerate > 0 {
			allocs = fmt.Sprintf("%d→%d", r.SolverAllocsEnumerate, r.SolverAllocsWarm)
		}
		fmt.Fprintf(&b, "| %s | %dn | %d | %d | %d | %.1f× | %s | %s | %s | %s |\n",
			r.Faults, r.Complexity,
			r.SolverNodesEnumerate, r.SolverNodesWarm, r.SolverNodesJoint,
			r.SolverNodeReduction, esc, allocs, formatNS(r.SequentialNS), formatNS(r.SolverWarmNS))
	}
	return b.String()
}

// formatNS renders a nanosecond count with a readable unit.
func formatNS(ns int64) string {
	switch {
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2f ms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1f µs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%d ns", ns)
	}
}
