package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// loadCommittedBench loads the repository's committed BENCH_generate.json.
// The file is measurement history, so a checkout without it (or without
// the entry under test) skips rather than fails.
func loadCommittedBench(t *testing.T) *BenchFile {
	t.Helper()
	path := filepath.Join("..", "..", "BENCH_generate.json")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("no committed bench file: %v", err)
	}
	f, err := LoadBenchFile(path)
	if err != nil {
		t.Fatalf("committed bench file does not parse: %v", err)
	}
	return f
}

// TestCommittedBenchAdaptiveEntries guards the committed measurement
// history: every solver entry taken after "solver-warmstart" (the
// campaign preceding the bound-escalation ladder) must hold or extend
// that baseline's warm-mode node reduction on the paper's complexity-6
// rows, and the later entries must carry the escalation and allocation
// columns. A regenerated BENCH_generate.json that silently regressed
// the adaptive win fails here before CI's bench smoke ever runs.
func TestCommittedBenchAdaptiveEntries(t *testing.T) {
	f := loadCommittedBench(t)
	base := f.Entry("solver-warmstart")
	if base == nil {
		t.Skip("no solver-warmstart entry committed")
	}
	baseWarm := map[string]int64{}
	for _, r := range base.Rows {
		if r.SolverNodesWarm > 0 {
			baseWarm[r.Faults] = r.SolverNodesWarm
		}
	}
	complexity6 := map[string]bool{}
	for _, spec := range Table3Spec() {
		if spec.PaperComplexity == 6 {
			complexity6[spec.Faults] = true
		}
	}

	past := false
	later := 0
	for _, e := range f.Entries {
		if e.Label == base.Label {
			past = true
			continue
		}
		if !past {
			continue
		}
		later++
		for _, r := range e.Rows {
			if !complexity6[r.Faults] || r.SolverNodesWarm <= 0 {
				continue
			}
			bw, ok := baseWarm[r.Faults]
			if !ok {
				continue
			}
			if r.SolverNodesWarm > bw {
				t.Errorf("entry %q row %s: warm nodes %d regressed past the solver-warmstart baseline %d",
					e.Label, r.Faults, r.SolverNodesWarm, bw)
			}
			if r.SolverEscalations <= 0 {
				t.Errorf("entry %q row %s: no escalation count recorded — entry predates or lost the bound ladder",
					e.Label, r.Faults)
			}
			if r.SolverAllocsEnumerate == 0 || r.SolverAllocsWarm == 0 {
				t.Errorf("entry %q row %s: allocation columns missing (enum=%d warm=%d)",
					e.Label, r.Faults, r.SolverAllocsEnumerate, r.SolverAllocsWarm)
			}
		}
	}
	if later == 0 {
		t.Skip("no entries committed after solver-warmstart yet")
	}
}

// TestCommittedBenchSolverAdaptiveGain pins the PR's acceptance number
// in-tree: the committed "solver-adaptive" entry must beat the
// "solver-warmstart" entry's warm node count by at least 1.5x on at
// least one complexity-6 row, and be no worse on any.
func TestCommittedBenchSolverAdaptiveGain(t *testing.T) {
	f := loadCommittedBench(t)
	base, cur := f.Entry("solver-warmstart"), f.Entry("solver-adaptive")
	if base == nil || cur == nil {
		t.Skip("solver-warmstart/solver-adaptive entries not both committed")
	}
	baseWarm := map[string]int64{}
	for _, r := range base.Rows {
		baseWarm[r.Faults] = r.SolverNodesWarm
	}
	achieved := false
	for _, spec := range Table3Spec() {
		if spec.PaperComplexity != 6 {
			continue
		}
		bw := baseWarm[spec.Faults]
		if bw <= 0 {
			continue
		}
		var cw int64
		for _, r := range cur.Rows {
			if r.Faults == spec.Faults {
				cw = r.SolverNodesWarm
			}
		}
		if cw <= 0 {
			t.Errorf("solver-adaptive entry has no warm node count for %s", spec.Faults)
			continue
		}
		if cw > bw {
			t.Errorf("%s: solver-adaptive warm nodes %d worse than solver-warmstart %d", spec.Faults, cw, bw)
		}
		if float64(bw) >= 1.5*float64(cw) {
			achieved = true
		}
	}
	if !achieved {
		t.Error("no complexity-6 row shows the required 1.5x warm-node gain of solver-adaptive over solver-warmstart")
	}
}
