// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 3 (generated March tests per fault list, with
// complexity, CPU time, and the equivalent known test), Figure 4 (the Test
// Pattern Graph of the Section 3/4 example), the Section 4 worked example
// (the 8n test for {⟨↑;1⟩, ⟨↑;0⟩}), the Section 5 equivalence ablation,
// and the efficiency comparison against the prior-art exhaustive searches.
// The same harness drives cmd/marchtable, the repository benchmarks, and
// the generation of EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"marchgen/fault"
	"marchgen/internal/baseline"
	"marchgen/internal/budget"
	"marchgen/internal/core"
	"marchgen/internal/cover"
	"marchgen/internal/sim"
	"marchgen/internal/tpg"
	"marchgen/march"
)

// Table3Row is one row of the paper's Table 3 with the paper's published
// numbers and this reproduction's measurements.
type Table3Row struct {
	// Faults is the fault list (columns SAF/TF/ADF/CFin/CFid of Table 3).
	Faults string
	// PaperComplexity is the complexity the paper reports (the k of kn).
	PaperComplexity int
	// PaperKnown is the "equivalent known March test" column.
	PaperKnown string
	// PaperCPU is the paper's generation time on a PIII-650 laptop.
	PaperCPU time.Duration
	// Test, Complexity, Elapsed are this reproduction's results.
	Test       *march.Test
	Complexity int
	Elapsed    time.Duration
	// Complete and NonRedundant are the validation verdicts.
	Complete     bool
	NonRedundant bool
}

// Spec is one fault list of the paper's Table 3 with its published
// complexity, equivalent known test and CPU time.
type Spec struct {
	Faults          string
	PaperComplexity int
	PaperKnown      string
	PaperCPU        time.Duration
}

// table3Spec mirrors the paper's Table 3.
var table3Spec = []Spec{
	{"SAF", 4, "MATS", 490 * time.Millisecond},
	{"SAF,TF", 5, "MATS+", 530 * time.Millisecond},
	{"SAF,TF,ADF", 6, "MATS++", 610 * time.Millisecond},
	{"SAF,TF,ADF,CFin", 6, "MarchX", 690 * time.Millisecond},
	{"SAF,TF,ADF,CFin,CFid", 10, "MarchC-", 850 * time.Millisecond},
	{"CFin", 5, "(none known)", 570 * time.Millisecond},
}

// Table3Spec returns the paper's Table 3 fault lists, exported so the
// benchmark runner (cmd/marchbench), the repository benchmarks and the
// golden-file tests iterate exactly the published rows.
func Table3Spec() []Spec {
	return append([]Spec(nil), table3Spec...)
}

// Table3 regenerates the paper's Table 3.
func Table3() ([]Table3Row, error) {
	return Table3Ctx(context.Background())
}

// Table3Ctx is Table3 under a cancellation context; the context also
// carries the observability run when one is attached (see internal/obs),
// so every row's generation is traced.
func Table3Ctx(ctx context.Context) ([]Table3Row, error) {
	var rows []Table3Row
	for _, spec := range table3Spec {
		models, err := fault.ParseList(spec.Faults)
		if err != nil {
			return nil, err
		}
		res, err := core.GenerateCtx(ctx, models, core.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.Faults, err)
		}
		rep, err := cover.AnalyzeWorkers(ctx, res.Test, res.Instances, 1, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.Faults, err)
		}
		rows = append(rows, Table3Row{
			Faults:          spec.Faults,
			PaperComplexity: spec.PaperComplexity,
			PaperKnown:      spec.PaperKnown,
			PaperCPU:        spec.PaperCPU,
			Test:            res.Test,
			Complexity:      res.Complexity,
			Elapsed:         res.Elapsed,
			Complete:        res.Coverage.Complete(),
			NonRedundant:    rep.NonRedundant,
		})
	}
	return rows, nil
}

// Figure4 rebuilds the Test Pattern Graph of the paper's Figure 4 (fault
// list {⟨↑;1⟩, ⟨↑;0⟩}) and returns it with its node patterns in TP1..TP4
// order.
func Figure4() (*tpg.Graph, error) {
	var nodes []tpg.Node
	for _, name := range []string{"CFid<u,0>", "CFid<u,1>"} {
		m, err := fault.Parse(name)
		if err != nil {
			return nil, err
		}
		for _, inst := range m.Instances {
			nodes = append(nodes, tpg.Node{Pattern: inst.BFEs[0].Pattern, Covers: []string{inst.Name}})
		}
	}
	return tpg.New(nodes), nil
}

// WorkedExample regenerates the Section 4 example: the optimal March test
// for {⟨↑;1⟩, ⟨↑;0⟩} (the paper derives an 8n test).
func WorkedExample() (*core.Result, error) {
	return WorkedExampleCtx(context.Background())
}

// WorkedExampleCtx is WorkedExample under a cancellation context.
func WorkedExampleCtx(ctx context.Context) (*core.Result, error) {
	models, err := fault.ParseList("CFid<u,1>,CFid<u,0>")
	if err != nil {
		return nil, err
	}
	return core.GenerateCtx(ctx, models, core.DefaultOptions())
}

// ComparisonRow is one row of the efficiency comparison between the
// paper's pipeline and the prior-art searches of Section 2.
type ComparisonRow struct {
	Faults string
	// Pipeline (this paper).
	CoreComplexity int
	CoreTime       time.Duration
	// Branch-and-bound baseline (Zarrineh et al. [5]).
	BBComplexity int
	BBTime       time.Duration
	BBNodes      int64
	// Exhaustive baseline (van de Goor & Smit [2-4]); zero when skipped.
	ExComplexity int
	ExTime       time.Duration
	ExTests      int64
	ExSkipped    bool
}

// Comparison measures generation cost of the pipeline against the two
// prior-art baselines. With deep=false the heaviest searches are skipped
// (marked ExSkipped) so the comparison stays laptop-fast.
func Comparison(deep bool) ([]ComparisonRow, error) {
	return ComparisonCtx(context.Background(), deep)
}

// ComparisonCtx is Comparison under a cancellation context.
func ComparisonCtx(ctx context.Context, deep bool) ([]ComparisonRow, error) {
	specs := []struct {
		faults     string
		cap        int
		exhaustive bool // exhaustive baseline is feasible
		heavy      bool // only run with deep=true
	}{
		{"SAF", 4, true, false},
		{"SAF,TF", 5, true, false},
		{"SAF,TF,ADF", 6, false, false},
		{"CFin", 5, false, false},
		{"CFid<u,1>,CFid<u,0>", 8, false, false},
		{"SAF,TF,ADF,CFin,CFid", 10, false, true},
	}
	var rows []ComparisonRow
	for _, spec := range specs {
		if spec.heavy && !deep {
			continue
		}
		models, err := fault.ParseList(spec.faults)
		if err != nil {
			return nil, err
		}
		instances := fault.Instances(models)
		res, err := core.GenerateCtx(ctx, models, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		row := ComparisonRow{
			Faults:         spec.faults,
			CoreComplexity: res.Complexity,
			CoreTime:       res.Elapsed,
		}
		// An unbounded meter carrying ctx, so the baseline search is
		// cancellable and lands in the observability run when one is
		// attached.
		bbTest, bbStats, err := baseline.BranchBoundMeter(budget.NewMeter(ctx, budget.Budget{}), instances, spec.cap)
		if err != nil {
			return nil, fmt.Errorf("experiments: baseline %s: %w", spec.faults, err)
		}
		row.BBComplexity = bbTest.Complexity()
		row.BBTime = bbStats.Elapsed
		row.BBNodes = bbStats.Nodes
		if spec.exhaustive {
			exTest, exStats, err := baseline.Exhaustive(instances, spec.cap)
			if err != nil {
				return nil, fmt.Errorf("experiments: exhaustive %s: %w", spec.faults, err)
			}
			row.ExComplexity = exTest.Complexity()
			row.ExTime = exStats.Elapsed
			row.ExTests = exStats.Tests
		} else {
			row.ExSkipped = true
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationRow compares the pipeline with and without the Section 5
// equivalence classes.
type AblationRow struct {
	Faults                   string
	WithClasses, WithoutOnes int // TPG classes
	WithNodes, WithoutNodes  int
	WithK, WithoutK          int // complexities
	WithTime, WithoutTime    time.Duration
}

// EquivalenceAblation runs the Section 5 ablation on fault lists whose
// instances have multi-BFE equivalence classes.
func EquivalenceAblation() ([]AblationRow, error) {
	return EquivalenceAblationCtx(context.Background())
}

// EquivalenceAblationCtx is EquivalenceAblation under a cancellation
// context.
func EquivalenceAblationCtx(ctx context.Context) ([]AblationRow, error) {
	var rows []AblationRow
	// Address faults are excluded: their read-side alternative patterns
	// exist only as equivalence-class options and cannot each be forced
	// individually.
	for _, faults := range []string{"CFin", "CFin,CFst", "CFin,CFid"} {
		models, err := fault.ParseList(faults)
		if err != nil {
			return nil, err
		}
		with, err := core.GenerateCtx(ctx, models, core.DefaultOptions())
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.DisableEquivalence = true
		without, err := core.GenerateCtx(ctx, models, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Faults:      faults,
			WithClasses: with.Classes, WithoutOnes: without.Classes,
			WithNodes: with.Nodes, WithoutNodes: without.Nodes,
			WithK: with.Complexity, WithoutK: without.Complexity,
			WithTime: with.Elapsed, WithoutTime: without.Elapsed,
		})
	}
	return rows, nil
}

// FormatTable3 renders Table 3 as a markdown table.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("| Fault list | Generated March test | Complexity | Paper | Equivalent known | Complete | Non-redundant | Time (this repo) | Time (paper, PIII-650) |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | `%s` | %dn | %dn | %s | %v | %v | %s | %s |\n",
			r.Faults, r.Test, r.Complexity, r.PaperComplexity, r.PaperKnown,
			r.Complete, r.NonRedundant, round(r.Elapsed), r.PaperCPU)
	}
	return b.String()
}

// FormatComparison renders the efficiency comparison as markdown.
func FormatComparison(rows []ComparisonRow) string {
	var b strings.Builder
	b.WriteString("| Fault list | Pipeline | Pipeline time | B&B [5] | B&B time | B&B nodes | Exhaustive [2-4] | Exhaustive time | Candidates simulated |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		ex, ext, exc := "—", "—", "—"
		if !r.ExSkipped {
			ex = fmt.Sprintf("%dn", r.ExComplexity)
			ext = round(r.ExTime).String()
			exc = fmt.Sprintf("%d", r.ExTests)
		}
		fmt.Fprintf(&b, "| %s | %dn | %s | %dn | %s | %d | %s | %s | %s |\n",
			r.Faults, r.CoreComplexity, round(r.CoreTime),
			r.BBComplexity, round(r.BBTime), r.BBNodes, ex, ext, exc)
	}
	return b.String()
}

// FormatAblation renders the Section 5 ablation as markdown.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("| Fault list | Classes (with / without) | TPG nodes (with / without) | Complexity (with / without) | Time (with / without) |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d / %d | %d / %d | %dn / %dn | %s / %s |\n",
			r.Faults, r.WithClasses, r.WithoutOnes, r.WithNodes, r.WithoutNodes,
			r.WithK, r.WithoutK, round(r.WithTime), round(r.WithoutTime))
	}
	return b.String()
}

// round trims a duration for display.
func round(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return d.Round(10 * time.Millisecond)
	case d > time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}

// EquivalentKnown searches the classic March library for the cheapest test
// that fully covers the instance list — the automated version of Table 3's
// "equivalent known March test" column. It returns "" when no library test
// covers the list (the paper's "Not Found" row).
func EquivalentKnown(instances []fault.Instance) (string, int, error) {
	bestName, bestK := "", 0
	for _, name := range march.KnownNames() {
		kt, _ := march.Known(name)
		cov, err := sim.Evaluate(kt.Test, instances)
		if err != nil {
			return "", 0, err
		}
		if !cov.Complete() {
			continue
		}
		if bestName == "" || kt.Complexity < bestK {
			bestName, bestK = name, kt.Complexity
		}
	}
	return bestName, bestK, nil
}
