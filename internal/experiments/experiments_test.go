package experiments

import (
	"strings"
	"testing"

	"marchgen/fault"
)

func TestTable3MatchesPaper(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Complexity != r.PaperComplexity {
			t.Errorf("%s: %dn vs paper %dn", r.Faults, r.Complexity, r.PaperComplexity)
		}
		if !r.Complete || !r.NonRedundant {
			t.Errorf("%s: complete=%v nonredundant=%v", r.Faults, r.Complete, r.NonRedundant)
		}
	}
	md := FormatTable3(rows)
	if !strings.Contains(md, "MATS++") || !strings.Contains(md, "10n") {
		t.Errorf("table rendering incomplete:\n%s", md)
	}
}

func TestFigure4Weights(t *testing.T) {
	g, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	histo := map[int]int{}
	for a := range g.Nodes {
		for b := range g.Nodes {
			if a != b {
				histo[g.Weight[a][b]]++
			}
		}
	}
	if histo[0] != 2 || histo[1] != 4 || histo[2] != 6 {
		t.Errorf("weight histogram %v, want {0:2 1:4 2:6}", histo)
	}
	md, err := FormatFigure4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "TP1 `(01, w1i, r1j)`") {
		t.Errorf("figure rendering:\n%s", md)
	}
}

func TestWorkedExampleIs8n(t *testing.T) {
	res, err := WorkedExample()
	if err != nil {
		t.Fatal(err)
	}
	if res.Complexity != 8 {
		t.Errorf("worked example %dn, want 8n", res.Complexity)
	}
}

func TestComparisonShallow(t *testing.T) {
	rows, err := Comparison(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("%d comparison rows", len(rows))
	}
	for _, r := range rows {
		if r.CoreComplexity != r.BBComplexity {
			t.Errorf("%s: pipeline %dn vs b&b optimum %dn", r.Faults, r.CoreComplexity, r.BBComplexity)
		}
		if !r.ExSkipped && r.ExComplexity != r.BBComplexity {
			t.Errorf("%s: exhaustive %dn vs b&b %dn", r.Faults, r.ExComplexity, r.BBComplexity)
		}
	}
	if md := FormatComparison(rows); !strings.Contains(md, "Pipeline") {
		t.Error("comparison rendering broken")
	}
}

func TestEquivalenceAblationRuns(t *testing.T) {
	rows, err := EquivalenceAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.WithoutOnes <= r.WithClasses {
			t.Errorf("%s: ablation must increase class count (%d vs %d)", r.Faults, r.WithoutOnes, r.WithClasses)
		}
		if r.WithK > r.WithoutK {
			t.Errorf("%s: equivalence-aware run must not be worse (%dn vs %dn)", r.Faults, r.WithK, r.WithoutK)
		}
	}
	if md := FormatAblation(rows); !strings.Contains(md, "CFin") {
		t.Error("ablation rendering broken")
	}
}

func TestReportShallow(t *testing.T) {
	if testing.Short() {
		t.Skip("full report regeneration")
	}
	body, err := Report(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 3", "Figure 4", "worked example", "equivalence ablation"} {
		if !strings.Contains(strings.ToLower(body), strings.ToLower(want)) {
			t.Errorf("report missing section %q", want)
		}
	}
}

// TestEquivalentKnownColumn re-derives Table 3's "equivalent known March
// test" column with *coverage* semantics: the cheapest classic test that
// fully covers each fault list. The paper's column is complexity-
// equivalence; the simulator sharpens it on two rows. MATS+ — the paper's
// 5n citation for SAF+TF — famously misses the falling transition fault
// (that is exactly why MATS++ exists), so the cheapest *covering* classic
// is MATS++ at 6n and the generated 5n test strictly beats the library.
// Likewise no classic matches the generated 5n CFin test (the paper's
// "Not Found").
func TestEquivalentKnownColumn(t *testing.T) {
	want := map[string]struct {
		name string
		k    int
	}{
		"SAF":                  {"MATS", 4},
		"SAF,TF":               {"MATS++", 6}, // generated: 5n — strictly better
		"SAF,TF,ADF":           {"MATS++", 6},
		"SAF,TF,ADF,CFin":      {"MarchX", 6},
		"SAF,TF,ADF,CFin,CFid": {"MarchC-", 10},
	}
	for list, w := range want {
		models, err := fault.ParseList(list)
		if err != nil {
			t.Fatal(err)
		}
		name, k, err := EquivalentKnown(fault.Instances(models))
		if err != nil {
			t.Fatal(err)
		}
		if name != w.name || k != w.k {
			t.Errorf("%s: cheapest covering classic is %s (%dn), want %s (%dn)", list, name, k, w.name, w.k)
		}
	}
	// CFin alone: the cheapest covering classic costs more than the
	// generated 5n test — the paper's "Not Found" entry.
	models, _ := fault.ParseList("CFin")
	name, k, err := EquivalentKnown(fault.Instances(models))
	if err != nil {
		t.Fatal(err)
	}
	if k <= 5 {
		t.Errorf("a classic test (%s, %dn) matches the generated 5n CFin test; the paper's Not Found would be wrong", name, k)
	}
}
