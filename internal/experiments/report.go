package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// FormatFigure4 renders the Figure 4 TPG as a markdown weight matrix with
// the paper's TP1..TP4 node names.
func FormatFigure4() (string, error) {
	g, err := Figure4()
	if err != nil {
		return "", err
	}
	names := []string{"TP1", "TP2", "TP3", "TP4"}
	var b strings.Builder
	b.WriteString("| from \\ to |")
	for k, n := range g.Nodes {
		fmt.Fprintf(&b, " %s `%s` |", names[k], n.Pattern)
	}
	b.WriteString("\n|---|")
	for range g.Nodes {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for a := range g.Nodes {
		fmt.Fprintf(&b, "| **%s** `%s` |", names[a], g.Nodes[a].Pattern)
		for bb := range g.Nodes {
			if a == bb {
				b.WriteString(" – |")
			} else {
				fmt.Fprintf(&b, " %d |", g.Weight[a][bb])
			}
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Report generates the full EXPERIMENTS.md body from live runs. With
// deep=true the heavyweight optimality certifications are included.
func Report(deep bool) (string, error) {
	return ReportCtx(context.Background(), deep)
}

// ReportCtx is Report under a cancellation context; the context also
// carries the observability run when one is attached (see internal/obs),
// so cmd/marchtable can trace and profile a full report regeneration.
func ReportCtx(ctx context.Context, deep bool) (string, error) {
	start := time.Now()
	var b strings.Builder
	b.WriteString(`# EXPERIMENTS — paper vs. this reproduction

Regenerate this file with ` + "`go run ./cmd/marchtable -write`" + `
(add ` + "`-deep`" + ` for the branch-and-bound optimality certifications).

Paper: Benso, Di Carlo, Di Natale, Prinetto, *An Optimal Algorithm for the
Automatic Generation of March Tests*, DATE 2002. The paper's timings were
measured on a Compaq Presario PIII-650 laptop (128 MB RAM), its algorithm
implemented in ~5000 lines of C plus the Fortran ACM 750 exact ATSP code;
this repository reruns everything in pure Go on the current machine, so
absolute times are not comparable — the shape (milliseconds-scale
generation, optimal complexities, non-redundancy) is what reproduces.

## Table 3 — generated March tests per fault list

Every row is re-generated, simulator-validated for completeness, and
certified non-redundant via the Coverage-Matrix / Set-Covering analysis
(Section 6). The reproduced complexity matches the paper on every row.

`)
	t3, err := Table3Ctx(ctx)
	if err != nil {
		return "", err
	}
	b.WriteString(FormatTable3(t3))
	match := true
	for _, r := range t3 {
		if r.Complexity != r.PaperComplexity || !r.Complete || !r.NonRedundant {
			match = false
		}
	}
	fmt.Fprintf(&b, "\nAll complexities match the paper: **%v**.\n", match)
	b.WriteString(`
One sharpening the simulator adds to the paper's "equivalent known" column:
MATS+ — the classic 5n citation for SAF+TF — does not actually *cover* the
falling transition fault (the very reason MATS++ exists), so the cheapest
covering classic for row 2 is MATS++ at 6n and the generated 5n test
strictly beats the library, as does the 5n CFin test of row 6
(` + "`TestEquivalentKnownColumn`" + `).
`)

	b.WriteString(`
## Figure 4 — Test Pattern Graph for {⟨↑;1⟩, ⟨↑;0⟩}

Edge weights are Hamming distances between the source pattern's
observation state and the target pattern's initialisation state (f.4.1).
The multiset {0×2, 1×4, 2×6} and the exact matrix match the paper's
figure.

`)
	fig4, err := FormatFigure4()
	if err != nil {
		return "", err
	}
	b.WriteString(fig4)

	b.WriteString(`
## Section 4 worked example — {⟨↑;1⟩, ⟨↑;0⟩}

The paper derives a 12-operation Global Test Sequence, minimises it to 8
operations and emits an 8n five-element March test (⇑⇑⇑⇓⇓). The pipeline
reproduces the 8n optimum (element shapes may differ; optimality is what
the paper claims, and the branch-and-bound oracle certifies that no March
test below 8n covers the list):

`)
	we, err := WorkedExampleCtx(ctx)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "    %s   — %dn, %d elements, generated in %s\n",
		we.Test, we.Complexity, len(we.Test.Elements), round(we.Elapsed))

	b.WriteString(`
## Section 2/6 — efficiency against exhaustive prior work

The paper's central claim: the TPG+ATSP pipeline generates optimal tests
"in very low computation time without exhaustive searches", unlike the
transition-tree enumeration of van de Goor & Smit [2-4] and the pruned
branch-and-bound of Zarrineh et al. [5]. Both baselines are implemented
here and return provably minimal tests — at an exponentially growing cost
the pipeline does not pay:

`)
	cmp, err := ComparisonCtx(ctx, deep)
	if err != nil {
		return "", err
	}
	b.WriteString(FormatComparison(cmp))
	if !deep {
		b.WriteString("\n(The 10n row-5 certification takes ~20 s of branch and bound; run with `-deep`.)\n")
	}

	b.WriteString(`
## Section 5 — BFE equivalence ablation

Grouping the BFEs of one fault into an equivalence class (pick any one
test pattern) instead of forcing every BFE keeps the TPG small:

`)
	abl, err := EquivalenceAblationCtx(ctx)
	if err != nil {
		return "", err
	}
	b.WriteString(FormatAblation(abl))
	b.WriteString("\n")

	b.WriteString(`
## Engine performance — sequential, parallel, memo-cached, kernel

The committed ` + "`BENCH_generate.json`" + ` tracks the generation engine per
Table 3 fault list in three configurations: *sequential* (one worker, cold
cache — the baseline engine), *parallel* (` + "`-workers 0`" + `, i.e. GOMAXPROCS,
cold cache) and *cached* (warm content-addressed memo cache). All three
emit byte-identical tests — the file's generator aborts otherwise, and the
property suite re-checks it under ` + "`-race -cpu 1,4`" + `. Regenerate with:

    go run ./cmd/marchbench -o BENCH_generate.json

or time the same configurations in-process via:

    go test -run '^$' -bench BenchmarkGenerate/ .

Warm-cache hits skip the whole pipeline (fault parsing aside) and run
three to four orders of magnitude faster than a cold generation; parallel
speedup tracks the machine's core count and is ~1× on a single-CPU host.

### Before/after methodology — bit-parallel kernel vs scalar oracle

The bench file is an append-only list of labelled entries, one per
measurement campaign: the ` + "`pre-kernel`" + ` entry preserves the sweep taken
before the bit-parallel simulation kernel landed (scalar closure-dispatch
engine only), and the ` + "`kernel`" + ` entry re-measures the same Table 3 sweep
with the kernel engine live. Both entries use the same reps discipline
(minimum of -reps repetitions) on the same machine, so the sequential
columns are directly comparable across entries. The kernel columns time
the coverage-evaluation stage in isolation — one ` + "`sim.EvaluateEngine`" + ` call
on the generated test against the row's full expanded instance list, each
engine warmed once so compiled-LUT block caching is excluded — averaged
over an inner loop of 32 evaluations, minimum over reps, with heap
allocations per evaluation from ` + "`runtime.MemStats`" + ` deltas. Equivalence of
the two engines is not assumed: the differential suite
(` + "`TestKernelMatchesScalarFullLibrary`" + `, ` + "`FuzzKernelEquivalence`" + `) pins the
kernel to the scalar oracle result-for-result over the entire fault
library, and CI's bench smoke runs with ` + "`-require-kernel`" + `, failing if the
kernel silently falls back to the scalar path.
`)
	if bf, err := LoadBenchFile("BENCH_generate.json"); err == nil {
		if tbl := FormatBenchKernel(bf.Entry("kernel")); tbl != "" {
			b.WriteString("\nCommitted kernel-entry measurements:\n\n")
			b.WriteString(tbl)
		}
	}
	b.WriteString(`
### Bound-quality methodology — AP lower bounds and warm-started exact solves

The exact ordering step is an assignment-bound branch and bound
(Carpaneto–Dell'Amico–Toth scheme, the family of the paper's ACM 750
code): every search node is bounded by the optimal assignment of its
constrained cost matrix, maintained *incrementally* — a child node clones
the parent's Hungarian dual state and re-augments only the rows its new
arc constraints invalidated. Bound quality is measured, not assumed:

- **Admissibility** — ` + "`TestAPBoundAdmissible`" + ` instruments every node of
  randomized instances (n ≤ 9, sequential and 4-way parallel, under the
  race detector) and asserts the AP bound never exceeds the brute-force
  optimum of that node's own subproblem.
- **Tightness** — on TPG matrices the root AP bound almost always equals
  the warm-started incumbent (the previous selection's patched tour), so
  cost-only solves finish at the root with zero branching. The
  per-row node counts before and after live in
  ` + "`testdata/solver_nodes.golden`" + `: total exact-solver nodes
  (Held–Karp states + branch-and-bound expansions + enumeration nodes)
  per Table 3 row and solver mode, at one worker on a cold cache, so any
  bound regression shows up as a reviewed golden diff.
- **Output invariance** — the warm and joint modes must emit the
  byte-identical test of the enumerate baseline; strict pruning plus
  lex-min tie-breaking makes the returned tour schedule-independent.
  ` + "`TestSolverModesDifferential`" + `, ` + "`FuzzWarmStartEquivalence`" + ` and
  ` + "`FuzzJointSelectionEquivalence`" + ` pin this across the fault library,
  worker counts and fuzz-derived instances; CI runs them in the
  ` + "`solver-differential`" + ` job.

The ` + "`solver-warmstart`" + ` bench entry records the node counts and
single-worker times per mode; CI's bench smoke fails if the warm solver
stops cutting total nodes by ≥ 3× on the complexity-6 rows
(` + "`marchbench -require-solver-gain 3`" + `).
`)
	if bf, err := LoadBenchFile("BENCH_generate.json"); err == nil {
		if tbl := FormatBenchSolver(bf.Entry("solver-warmstart")); tbl != "" {
			b.WriteString("\nCommitted solver-entry measurements:\n\n")
			b.WriteString(tbl)
		}
	}
	b.WriteString(`
## Service throughput — closed-loop load on marchserve

The committed ` + "`BENCH_serve.json`" + ` tracks the HTTP service
(` + "`cmd/marchserve`" + `) under ` + "`cmd/marchload`" + `, a *closed-loop* load
generator: ` + "`-c`" + ` workers each keep exactly one request in flight until
` + "`-n`" + ` total complete, so a saturated server slows the loop down instead
of building an unbounded client-side backlog — the measured latencies
stay honest under overload. Workers rotate through the Table 3 fault
lists, exercising the coalescer (identical in-flight requests), the
micro-batcher (overlapping model sets) and the memo cache (repeated
lists) together. Each run appends one trajectory entry — timestamp,
configuration, ok/shed/error partition, coalesced and cache-hit counts,
throughput, and p50/p90/p99/max latency — to the JSON array. Reproduce
with:

    go run ./cmd/marchserve -addr localhost:8080 &
    go run ./cmd/marchload -addr localhost:8080 -n 200 -c 8 -o BENCH_serve.json

The trajectory's shape, not its absolute numbers, is the reproducible
claim: the first cold request per fault list pays the full generation
cost, concurrent duplicates coalesce onto it, and everything after is a
sub-millisecond cache hit — so p50 sits at cache-hit latency while p99
tracks the cold generations, and throughput is cache-bound rather than
engine-bound. API schemas and the error table are in docs/api.md.
`)

	ext, err := ExtensionsReportCtx(ctx)
	if err != nil {
		return "", err
	}
	b.WriteString(ext)

	fmt.Fprintf(&b, "\n---\nGenerated in %s total.\n", time.Since(start).Round(10*time.Millisecond))
	return b.String(), nil
}
