package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"marchgen/bist"
	"marchgen/diag"
	"marchgen/fault"
	"marchgen/internal/core"
	"marchgen/internal/sim"
	"marchgen/march"
	"marchgen/mp"
	"marchgen/wom"
)

// ExtensionsReport measures the systems built beyond the paper's
// evaluation: the linked-fault generation, the two-port (multi-port)
// future-work prototype, the diagnosis dictionary, the BIST addressing
// pitfall and the word-oriented background requirement. Everything is
// computed live from the simulators.
func ExtensionsReport() (string, error) {
	return ExtensionsReportCtx(context.Background())
}

// ExtensionsReportCtx is ExtensionsReport under a cancellation context;
// the context also carries the observability run when one is attached.
func ExtensionsReportCtx(ctx context.Context) (string, error) {
	var b strings.Builder
	b.WriteString(`## Beyond the paper — extension experiments

The paper's §7 names two ongoing directions: multi-port memory faults and
richer user-defined fault models; its reference [6] motivates diagnosis.
The repository builds all three, plus the deployment substrates (BIST,
word-oriented memories). Each row below is regenerated from the
simulators.

`)

	// Linked faults.
	lcf, err := fault.Parse("LCF")
	if err != nil {
		return "", err
	}
	res, err := core.GenerateCtx(ctx, []fault.Model{lcf}, core.DefaultOptions())
	if err != nil {
		return "", err
	}
	marchA, _ := march.Known("MarchA")
	covA, err := sim.Evaluate(marchA.Test, lcf.Instances)
	if err != nil {
		return "", err
	}
	marchX, _ := march.Known("MarchX")
	covX, err := sim.Evaluate(marchX.Test, lcf.Instances)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, `### Linked coupling faults (masking)

Generated for the 8-instance LCF list: %s — **%dn** in %s.
March A (15n, the hand-made linked-fault test) also covers the list: %v;
March X (6n, unlinked coverage only) misses %d instances — masking is
real and the generator beats the hand-made test by %d operations.

`, res.Test, res.Complexity, round(res.Elapsed), covA.Complete(),
		len(covX.Missed()), marchA.Complexity-res.Complexity)

	// Two-port weak faults.
	weak := mp.Models()
	kt, _ := march.Known("MarchSS")
	lifted, err := mp.Single(kt.Test)
	if err != nil {
		return "", err
	}
	missed := 0
	for _, inst := range weak {
		ok, err := mp.Detects(lifted, inst, 6)
		if err != nil {
			return "", err
		}
		if !ok {
			missed++
		}
	}
	tpTest, tpStats, err := mp.Generate(weak, 10)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, `### Two-port memories (the paper's §7 future work)

Even March SS (22n, all static single-port faults) misses **%d/%d**
two-port weak faults when port B idles. The two-port generator finds
%s — %d cycles, proven minimal by iterative deepening (%d nodes, %s).

`, missed, len(weak), tpTest, tpTest.Complexity(), tpStats.Nodes, round(tpStats.Elapsed))

	// Diagnosis.
	models, err := fault.ParseList("SAF,TF,CFid")
	if err != nil {
		return "", err
	}
	cminus, _ := march.Known("MarchC-")
	dict, _, err := diag.BuildCtx(ctx, cminus.Test, models, time.Time{})
	if err != nil {
		return "", err
	}
	classes := dict.AmbiguityClasses()
	singles := 0
	for _, c := range classes {
		if len(c) == 1 {
			singles++
		}
	}
	fmt.Fprintf(&b, `### Fault diagnosis (direction of the paper's reference [6])

The March C- syndrome dictionary for SAF+TF+CFid partitions %d dictionary
entries into %d ambiguity classes (%d fully diagnosed); e.g. SA0 and TF⟨↑⟩
share every syndrome and need a second test to separate.

`, len(dict.Instances()), len(classes), singles)

	// BIST pitfall.
	escapesReversed, escapesReseeded, err := bistEscapes()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, `### BIST deployment

March semantics survive *any* address permutation as long as ⇓ walks the
exact reverse of ⇑: an LFSR address generator with reversed descent keeps
full CFid coverage (%d escapes). Re-seeding the LFSR for ⇓ instead — a
tempting hardware shortcut — lets **%d** fault/placement/content runs
escape. The MISR signature agreed with the comparator verdict on every
Table-3 instance (no aliasing at 16 bits).

`, escapesReversed, escapesReseeded)

	// Word-oriented backgrounds.
	missSolid, missStd, err := womEscapes()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, `### Word-oriented memories

Lifting March C- to an 8-bit-word memory with only the solid background
misses **%d/%d** intra-word coupling faults; the ⌈log₂8⌉+1 = 4 standard
backgrounds cover all of them (%d escapes).
`, missSolid, len(wom.AllIntraWordCFids(8)), missStd)

	return b.String(), nil
}

// bistEscapes counts CFid escapes under reversed-down and reseeded-down
// LFSR addressing.
func bistEscapes() (reversed, reseeded int, err error) {
	count := func(c bist.Controller) (int, error) {
		test, _ := march.Known("MarchC-")
		models, err := fault.ParseList("CFid")
		if err != nil {
			return 0, err
		}
		escapes := 0
		for _, inst := range fault.Instances(models) {
			for _, pair := range [][2]int{{0, 1}, {2, 11}, {7, 8}, {5, 13}} {
				for initMask := 0; initMask < 4; initMask++ {
					mem, err := sim.NewMemory(16, &sim.PlacedFault{Instance: inst, A: pair[0], B: pair[1]})
					if err != nil {
						return 0, err
					}
					mem.SetCell(pair[0], march.BitOf(initMask&1 != 0))
					mem.SetCell(pair[1], march.BitOf(initMask&2 != 0))
					res, err := c.Run(test.Test, mem)
					if err != nil {
						return 0, err
					}
					if res.Pass {
						escapes++
					}
				}
			}
		}
		return escapes, nil
	}
	reversed, err = count(bist.Controller{Addresses: bist.LFSR{}})
	if err != nil {
		return 0, 0, err
	}
	reseeded, err = count(bist.Controller{Addresses: bist.LFSR{}, DownGenerator: bist.LFSR{Seed: 5}})
	return reversed, reseeded, err
}

// womEscapes counts intra-word CFid escapes with the solid background only
// and with the standard set.
func womEscapes() (solid, standard int, err error) {
	base, _ := march.Known("MarchC-")
	const w = 8
	count := func(bgs []wom.Background) (int, error) {
		wt, err := wom.Convert(base.Test, w, bgs)
		if err != nil {
			return 0, err
		}
		escapes := 0
		for _, f := range wom.AllIntraWordCFids(w) {
			ok, err := wom.Detects(wt, 4, w, f)
			if err != nil {
				return 0, err
			}
			if !ok {
				escapes++
			}
		}
		return escapes, nil
	}
	solid, err = count([]wom.Background{wom.Solid(w)})
	if err != nil {
		return 0, 0, err
	}
	bgs, err := wom.StandardBackgrounds(w)
	if err != nil {
		return 0, 0, err
	}
	standard, err = count(bgs)
	return solid, standard, err
}
