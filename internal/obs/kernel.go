package obs

// Canonical metric names of the bit-parallel simulation kernel
// (internal/simd and the kernel path of internal/sim). They live here so
// the emitting sites, the benchmark runner's kernel-usage guard and the
// trace tooling agree on one spelling.
const (
	// CounterKernelTraces counts trace evaluations executed on the
	// bit-parallel kernel (one per block × ⇕ resolution).
	CounterKernelTraces = "sim.kernel_traces"
	// CounterKernelLanes counts simulation lanes evaluated by the kernel
	// (instances × initial contents, summed over traces).
	CounterKernelLanes = "sim.kernel_lanes"
	// CounterKernelBlockHits counts compiled-LUT blocks served from the
	// process-wide block cache.
	CounterKernelBlockHits = "simd.block_cache_hits"
	// CounterKernelBlockCompiles counts compiled-LUT blocks built fresh.
	CounterKernelBlockCompiles = "simd.block_compiles"
	// CounterScalarFallbacks counts evaluations that requested the
	// kernel but fell back to the scalar reference engine. The CI bench
	// smoke fails when this is non-zero: a silent fallback would regress
	// the hot path to the slow engine without failing any test.
	CounterScalarFallbacks = "sim.scalar_fallbacks"
)
