package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// chromeEvent is one complete event ("ph":"X") in the Chrome
// trace_event format, loadable by chrome://tracing and Perfetto.
// Spans map onto it directly: pid is fixed, tid is the worker index
// (so each worker gets its own flame row), ts/dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace converts finished spans to a Chrome trace_event JSON
// array for flame-graph views. Events are emitted in sequence order.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		ce := chromeEvent{
			Name: ev.Name,
			Ph:   "X",
			PID:  1,
			TID:  ev.Worker,
			TS:   ev.StartUS,
			Dur:  ev.DurUS,
			Args: ev.Attrs,
		}
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
