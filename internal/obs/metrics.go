package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic count. All methods are
// nil-safe no-ops, so handles resolved from a nil Run cost one branch.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by d (negative to decrement) — the in-flight
// counter idiom.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Max raises the gauge to v when v exceeds the stored value.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed power-of-two bucket count of a Histogram:
// bucket k counts observations v with bits.Len64(v) == k, i.e.
// 2^(k-1) <= v < 2^k (bucket 0 holds v <= 0).
const histBuckets = 64

// Histogram is a lock-free power-of-two histogram with count/sum and
// min/max watermarks — enough resolution for latency and size
// distributions without any allocation on the observe path.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // initialised to MaxInt64 by the registry
	max     atomic.Int64 // initialised to MinInt64 by the registry
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.buckets[b].Add(1)
}

// registry is the run's metric namespace: get-or-create by name, with a
// read-locked fast path for the steady state.
type registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	slos     map[string]*SLOHistogram
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil run yields a nil (no-op) handle.
func (r *Run) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.reg.mu.RLock()
	c := r.reg.counters[name]
	r.reg.mu.RUnlock()
	if c != nil {
		return c
	}
	r.reg.mu.Lock()
	defer r.reg.mu.Unlock()
	if r.reg.counters == nil {
		r.reg.counters = map[string]*Counter{}
	}
	if c = r.reg.counters[name]; c == nil {
		c = &Counter{}
		r.reg.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Run) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.reg.mu.RLock()
	g := r.reg.gauges[name]
	r.reg.mu.RUnlock()
	if g != nil {
		return g
	}
	r.reg.mu.Lock()
	defer r.reg.mu.Unlock()
	if r.reg.gauges == nil {
		r.reg.gauges = map[string]*Gauge{}
	}
	if g = r.reg.gauges[name]; g == nil {
		g = &Gauge{}
		r.reg.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Run) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.reg.mu.RLock()
	h := r.reg.hists[name]
	r.reg.mu.RUnlock()
	if h != nil {
		return h
	}
	r.reg.mu.Lock()
	defer r.reg.mu.Unlock()
	if r.reg.hists == nil {
		r.reg.hists = map[string]*Histogram{}
	}
	if h = r.reg.hists[name]; h == nil {
		h = &Histogram{}
		h.min.Store(math.MaxInt64)
		h.max.Store(math.MinInt64)
		r.reg.hists[name] = h
	}
	return h
}

// Snapshot flattens every metric into a name → value map: counters and
// gauges under their own names, histograms as <name>.count / .sum /
// .min / .max, plus the recorder's own span accounting ("obs.spans",
// "obs.spans_dropped"). The flat int64 form is what Stats.Metrics and
// the CLI -metrics dump expose — trivially JSON-encodable and diffable.
func (r *Run) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	out := map[string]int64{
		"obs.spans":         r.rec.count.Load(),
		"obs.spans_dropped": r.rec.dropped.Load(),
	}
	r.reg.mu.RLock()
	defer r.reg.mu.RUnlock()
	for name, c := range r.reg.counters {
		out[name] = c.Value()
	}
	for name, g := range r.reg.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.reg.hists {
		n := h.count.Load()
		out[name+".count"] = n
		out[name+".sum"] = h.sum.Load()
		if n > 0 {
			out[name+".min"] = h.min.Load()
			out[name+".max"] = h.max.Load()
		}
	}
	for name, h := range r.reg.slos {
		out[name+".count"] = h.count.Load()
		out[name+".sum"] = h.sum.Load()
	}
	return out
}

// MetricNames returns the snapshot's keys, sorted — convenience for
// deterministic dumps and tests.
func MetricNames(snapshot map[string]int64) []string {
	names := make([]string, 0, len(snapshot))
	for n := range snapshot {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
