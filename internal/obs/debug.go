package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeDebug starts the opt-in debug endpoint on addr: net/http/pprof
// under /debug/pprof/, expvar under /debug/vars, and the run's live
// metric snapshot as JSON under /metrics. A dedicated mux is used so
// importing this package never touches http.DefaultServeMux. Returns
// the bound address (useful with ":0") and a shutdown func.
func (r *Run) ServeDebug(addr string) (string, func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot()) // nil Run → null, still valid JSON
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	stop := func() { _ = srv.Close() }
	return ln.Addr().String(), stop, nil
}
