package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// spanShards is the recorder shard count: finished spans land in the
// shard selected by their sequence number, so concurrent workers ending
// spans contend on different locks.
const spanShards = 16

// maxSpans bounds the recorder's memory: past it, finished spans are
// counted as dropped instead of stored (the drop count surfaces in the
// metrics snapshot as "obs.spans_dropped"). Generation runs over the
// paper's fault lists stay around a few hundred spans; the cap exists
// for pathological user fault lists on long-running servers.
const maxSpans = 1 << 16

// Event is one finished span as exported to the JSONL trace. Seq orders
// events in creation order (exact program order for a single-worker
// run); Parent is the Seq of the enclosing span, 0 for a root span.
type Event struct {
	Name    string         `json:"name"`             // slash-separated span name ("generate/atsp")
	Seq     uint64         `json:"seq"`              // creation order, unique within the run
	Parent  uint64         `json:"parent,omitempty"` // Seq of the enclosing span, 0 for roots
	Worker  int            `json:"worker,omitempty"` // worker index for fanned-out spans
	StartUS int64          `json:"start_us"`         // start offset from the run epoch, µs
	DurUS   int64          `json:"dur_us"`           // span duration, µs
	Attrs   map[string]any `json:"attrs,omitempty"`  // int64/string attributes set via SetInt/SetStr
}

type recorder struct {
	shards  [spanShards]spanShard
	count   atomic.Int64
	dropped atomic.Int64
}

type spanShard struct {
	mu     sync.Mutex
	events []Event
}

// attr is one span attribute; integers and strings cover everything the
// pipeline records (counts, costs, causes).
type attr struct {
	key string
	str string
	num int64
	is  bool // true: string
}

// Span is one in-flight unit of observed work. Attributes are set by
// the goroutine that owns the span; End is idempotent and publishes the
// span to the recorder (and the streaming sink, when attached).
type Span struct {
	run    *Run
	name   string
	seq    uint64
	parent uint64
	worker int
	start  time.Time
	attrs  []attr
	ended  bool
}

// Start opens a root span. Returns nil (a universal no-op) on a nil run.
func (r *Run) Start(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{run: r, name: name, seq: r.seq.Add(1), start: time.Now()}
}

// Child opens a sub-span of s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.run.Start(name)
	c.parent = s.seq
	return c
}

// SetInt records an integer attribute (node counts, costs, sizes).
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil || s.ended {
		return s
	}
	s.attrs = append(s.attrs, attr{key: key, num: v})
	return s
}

// SetStr records a string attribute (degradation causes, modes).
func (s *Span) SetStr(key, v string) *Span {
	if s == nil || s.ended {
		return s
	}
	s.attrs = append(s.attrs, attr{key: key, str: v, is: true})
	return s
}

// SetWorker tags the span with the worker index that ran it, so
// per-worker subsequences stay identifiable (and stable) in traces of
// parallel runs.
func (s *Span) SetWorker(w int) *Span {
	if s == nil || s.ended {
		return s
	}
	s.worker = w
	return s
}

// End finishes the span and hands it to the recorder. Idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	ev := Event{
		Name:    s.name,
		Seq:     s.seq,
		Parent:  s.parent,
		Worker:  s.worker,
		StartUS: s.start.Sub(s.run.t0).Microseconds(),
		DurUS:   time.Since(s.start).Microseconds(),
	}
	if len(s.attrs) > 0 {
		ev.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			if a.is {
				ev.Attrs[a.key] = a.str
			} else {
				ev.Attrs[a.key] = a.num
			}
		}
	}
	s.run.record(ev)
}

func (r *Run) record(ev Event) {
	if r.rec.count.Load() >= maxSpans {
		r.rec.dropped.Add(1)
		return
	}
	r.rec.count.Add(1)
	sh := &r.rec.shards[ev.Seq%spanShards]
	sh.mu.Lock()
	sh.events = append(sh.events, ev)
	sh.mu.Unlock()
	r.sink.write(ev)
	r.notify(ev)
}

// Events returns every finished span in sequence order. The sequence is
// creation order: exact program order for a single-worker run, a stable
// per-worker interleaving otherwise.
func (r *Run) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.rec.shards {
		sh := &r.rec.shards[i]
		sh.mu.Lock()
		out = append(out, sh.events...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}
