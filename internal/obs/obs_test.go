package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every handle must accept every method on nil without panicking.
	var r *Run
	sp := r.Start("x")
	sp.SetInt("n", 1).SetStr("s", "v").SetWorker(2)
	sp.Child("y").End()
	sp.End()
	r.Counter("c").Add(1)
	r.Counter("c").Inc()
	r.Gauge("g").Set(3)
	r.Gauge("g").Max(4)
	r.Histogram("h").Observe(5)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil run snapshot = %v, want nil", got)
	}
	if got := r.Events(); got != nil {
		t.Fatalf("nil run events = %v, want nil", got)
	}
	r.StreamTo(&bytes.Buffer{})
	r.DeferTrace(&bytes.Buffer{})
	if err := r.Flush(); err != nil {
		t.Fatalf("nil run flush: %v", err)
	}
	var st *Stages
	st.Enter("a")
	st.Close()
	if got := st.Elapsed(); got != nil {
		t.Fatalf("nil stages elapsed = %v, want nil", got)
	}
	if From(context.Background()) != nil {
		t.Fatal("From(background) != nil")
	}
	if From(nil) != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatal("From(nil) != nil")
	}
	if ctx := context.Background(); Into(ctx, nil) != ctx {
		t.Fatal("Into(ctx, nil) should return ctx unchanged")
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRun()
	root := r.Start("generate")
	sel := root.Child("generate/select")
	bb := sel.Child("generate/select/atsp/branchbound")
	bb.SetInt("expanded", 42).SetStr("mode", "parallel")
	bb.End()
	bb.End() // idempotent
	sel.End()
	root.SetInt("tests", 2)
	root.End()

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Sequence order is creation order: root, sel, bb.
	if evs[0].Name != "generate" || evs[1].Name != "generate/select" || evs[2].Name != "generate/select/atsp/branchbound" {
		t.Fatalf("unexpected order: %v %v %v", evs[0].Name, evs[1].Name, evs[2].Name)
	}
	if evs[1].Parent != evs[0].Seq {
		t.Fatalf("select parent = %d, want %d", evs[1].Parent, evs[0].Seq)
	}
	if evs[2].Parent != evs[1].Seq {
		t.Fatalf("branchbound parent = %d, want %d", evs[2].Parent, evs[1].Seq)
	}
	if evs[2].Attrs["expanded"] != int64(42) || evs[2].Attrs["mode"] != "parallel" {
		t.Fatalf("branchbound attrs = %v", evs[2].Attrs)
	}
	if evs[0].Attrs["tests"] != int64(2) {
		t.Fatalf("root attrs = %v", evs[0].Attrs)
	}
	if got := r.Snapshot()["obs.spans"]; got != 3 {
		t.Fatalf("obs.spans = %d, want 3", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Hammer spans and metrics from many goroutines; -race is the real
	// assertion, the counts confirm nothing was lost.
	r := NewRun()
	root := r.Start("root")
	const workers, per = 8, 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := root.Child("work").SetWorker(w).SetInt("i", int64(i))
				r.Counter("n").Inc()
				r.Gauge("max").Max(int64(i))
				r.Histogram("lat").Observe(int64(i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()

	evs := r.Events()
	if len(evs) != workers*per+1 {
		t.Fatalf("got %d events, want %d", len(evs), workers*per+1)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not in strictly increasing seq order at %d", i)
		}
	}
	snap := r.Snapshot()
	if snap["n"] != workers*per {
		t.Fatalf("counter n = %d, want %d", snap["n"], workers*per)
	}
	if snap["max"] != per-1 {
		t.Fatalf("gauge max = %d, want %d", snap["max"], per-1)
	}
	if snap["lat.count"] != workers*per || snap["lat.min"] != 0 || snap["lat.max"] != per-1 {
		t.Fatalf("histogram lat snapshot = %v", snap)
	}
}

func TestRecorderCap(t *testing.T) {
	r := NewRun()
	for i := 0; i < maxSpans+100; i++ {
		r.Start("s").End()
	}
	snap := r.Snapshot()
	if snap["obs.spans"] != maxSpans {
		t.Fatalf("obs.spans = %d, want %d", snap["obs.spans"], maxSpans)
	}
	if snap["obs.spans_dropped"] != 100 {
		t.Fatalf("obs.spans_dropped = %d, want 100", snap["obs.spans_dropped"])
	}
}

func TestStagesPartition(t *testing.T) {
	r := NewRun()
	root := r.Start("generate")
	st := NewStages(r, root, "generate/")
	st.Enter("expand")
	time.Sleep(2 * time.Millisecond)
	st.Enter("expand") // same stage: no-op, time keeps accruing
	st.Enter("atsp")
	time.Sleep(2 * time.Millisecond)
	st.Enter("expand") // revisiting accumulates
	time.Sleep(2 * time.Millisecond)
	live := st.Elapsed()
	if live["expand"] <= 0 || live["atsp"] <= 0 {
		t.Fatalf("live elapsed missing stages: %v", live)
	}
	st.Close()
	st.Close() // idempotent
	root.End()

	got := st.Elapsed()
	if len(got) != 2 {
		t.Fatalf("stages = %v, want expand+atsp", got)
	}
	for name, d := range got {
		if d <= 0 {
			t.Fatalf("stage %s elapsed = %v, want > 0", name, d)
		}
	}
	// Windows partition the wall time between first Enter and Close: the
	// sum can never exceed the root window.
	snap := r.Snapshot()
	if snap["stage.expand.ns"] <= 0 || snap["stage.atsp.ns"] <= 0 {
		t.Fatalf("stage counters missing: %v", snap)
	}
	evs := r.Events()
	names := map[string]int{}
	for _, ev := range evs {
		names[ev.Name]++
	}
	if names["generate/expand"] != 2 || names["generate/atsp"] != 1 {
		t.Fatalf("stage spans = %v", names)
	}
	// Enter after Close is ignored.
	if sp := st.Enter("late"); sp != nil {
		t.Fatal("Enter after Close returned a live span")
	}
	if _, ok := st.Elapsed()["late"]; ok {
		t.Fatal("Enter after Close recorded time")
	}
}

func TestStagesWithoutRun(t *testing.T) {
	st := NewStages(nil, nil, "")
	st.Enter("a")
	time.Sleep(time.Millisecond)
	st.Enter("b")
	st.Close()
	got := st.Elapsed()
	if got["a"] <= 0 {
		t.Fatalf("unobserved stages still must track time: %v", got)
	}
	if _, ok := got["b"]; !ok {
		t.Fatalf("stage b missing: %v", got)
	}
}

func TestStreamAndDeferredTrace(t *testing.T) {
	r := NewRun()
	var stream, deferred bytes.Buffer
	r.StreamTo(&stream)
	r.DeferTrace(&deferred)
	root := r.Start("a")
	root.Child("a/b").End()
	root.End()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	// Streamed lines arrive in end order (child first); the deferred
	// dump is in seq order (parent first).
	streamLines := strings.Split(strings.TrimSpace(stream.String()), "\n")
	defLines := strings.Split(strings.TrimSpace(deferred.String()), "\n")
	if len(streamLines) != 2 || len(defLines) != 2 {
		t.Fatalf("stream=%d deferred=%d lines, want 2 each", len(streamLines), len(defLines))
	}
	var first Event
	if err := json.Unmarshal([]byte(defLines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Name != "a" {
		t.Fatalf("deferred first span = %q, want %q", first.Name, "a")
	}
	if err := json.Unmarshal([]byte(streamLines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Name != "a/b" {
		t.Fatalf("streamed first span = %q, want %q", first.Name, "a/b")
	}
}

func TestChromeTrace(t *testing.T) {
	r := NewRun()
	sp := r.Start("x").SetWorker(3).SetInt("n", 7)
	sp.End()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Events()); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 1 || evs[0]["name"] != "x" || evs[0]["ph"] != "X" || evs[0]["tid"] != float64(3) {
		t.Fatalf("chrome events = %v", evs)
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := NewRun()
	ctx := Into(context.Background(), r)
	if From(ctx) != r {
		t.Fatal("From(Into(ctx, r)) != r")
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRun()
	r.Counter("x").Add(9)
	addr, stop, err := r.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind: %v", err)
	}
	defer stop()
	if addr == "" {
		t.Fatal("empty bound address")
	}
}

func TestSnapshotHistogramFields(t *testing.T) {
	r := NewRun()
	h := r.Histogram("d")
	h.Observe(5)
	h.Observe(100)
	snap := r.Snapshot()
	if snap["d.count"] != 2 || snap["d.sum"] != 105 || snap["d.min"] != 5 || snap["d.max"] != 100 {
		t.Fatalf("histogram snapshot = %v", snap)
	}
	names := MetricNames(snap)
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("MetricNames not sorted: %v", names)
		}
	}
}
