// Package obs is the zero-dependency observability substrate of the
// generation engine: hierarchical spans recorded by a lock-sharded
// in-process recorder, a registry of atomic counters/gauges/histograms,
// and export sinks (JSONL span traces, Chrome trace_event conversion for
// flame views, and an opt-in net/http/pprof + expvar endpoint).
//
// The cardinal rule is that instrumentation is off by default and
// nil-safe everywhere: a nil *Run, *Span, *Counter, *Gauge, *Histogram
// or *Stages accepts every method as a no-op, so the pipeline threads
// observation handles unconditionally and pays only a nil check when
// observation is disabled (the disabled-path overhead is guarded by
// BenchmarkGenerateObsOff/On at the repository root).
//
// A Run travels with a generation run two ways: explicitly via
// core.Options.Obs (the library surface behind marchgen.WithMetrics /
// marchgen.WithTrace) and implicitly via the context (Into/From), which
// is how the deeper layers — the worker pool, the ATSP solvers, the
// simulator, the coverage analyser, diagnosis — find it without
// signature churn: they already carry a context.Context or a
// *budget.Meter (whose Context method exposes one).
//
// Enabled traces are deterministic modulo timestamps: span names,
// attributes and per-worker ordering depend only on the input (the
// sequence numbers of a single-worker run reproduce exactly), so two
// traces of the same run are diffable after normalising the time fields
// (see obstest.Normalize).
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Run is one observed pipeline run: a span recorder plus a metrics
// registry plus the attached sinks. The zero value is not used; a nil
// *Run disables all instrumentation.
type Run struct {
	t0  time.Time
	seq atomic.Uint64

	// phase is the current pipeline-stage span: deep layers (the ATSP
	// solvers, the simulator, the coverage analyser) parent their spans
	// to it via StartUnder without any span threading through their
	// signatures. Maintained by Stages.Enter/Close and WithPhase.
	phase atomic.Pointer[Span]

	rec recorder
	reg registry

	// progress is the run's live-progress cells (see progress.go):
	// last-write-wins atomics the engine's long loops update in place
	// and the serving layers snapshot on demand.
	progress Progress

	sink     sink
	deferred deferredTrace

	// observers are live span-completion callbacks (Notify): the async
	// job layer turns finished spans into streaming progress events and
	// checkpoint triggers without a sink round-trip through bytes.
	obsMu     sync.RWMutex
	observers []func(Event)
}

// NewRun starts an observed run.
func NewRun() *Run {
	return &Run{t0: time.Now()}
}

type ctxKey struct{}

// Into attaches the run to a context, making it visible to every
// pipeline layer below (From). A nil run returns ctx unchanged.
func Into(ctx context.Context, r *Run) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// From recovers the run attached to ctx, or nil when the run is
// unobserved (including a nil ctx). All downstream instrumentation is
// nil-safe, so callers use the result unconditionally.
func From(ctx context.Context) *Run {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Run)
	return r
}

// WithPhase marks s as the current pipeline phase — the span that
// StartUnder parents to — and returns a restore func reinstating the
// previous phase. Nil-safe on both the run and the span.
func (r *Run) WithPhase(s *Span) func() {
	if r == nil {
		return func() {}
	}
	prev := r.phase.Swap(s)
	return func() { r.phase.Store(prev) }
}

// Notify registers fn to be invoked synchronously with every span the
// run finishes from now on, in End order, possibly from many goroutines
// at once. fn must be fast and must not call back into the run's span
// machinery; the job event layer uses it to stream stage/progress events
// and trigger durable checkpoints. Nil-safe.
func (r *Run) Notify(fn func(Event)) {
	if r == nil || fn == nil {
		return
	}
	r.obsMu.Lock()
	r.observers = append(r.observers, fn)
	r.obsMu.Unlock()
}

// notify fans a finished span out to the registered observers.
func (r *Run) notify(ev Event) {
	r.obsMu.RLock()
	fns := r.observers
	r.obsMu.RUnlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// StartUnder opens a span parented to the current pipeline phase (the
// stage span entered last), or a root span when no phase is active.
// This is how the deep layers appear under generate/atsp,
// generate/validate etc. without threading spans through the
// pipeline's signatures.
func (r *Run) StartUnder(name string) *Span {
	if r == nil {
		return nil
	}
	if p := r.phase.Load(); p != nil {
		return p.Child(name)
	}
	return r.Start(name)
}
