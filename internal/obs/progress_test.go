package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestProgressNilSafe(t *testing.T) {
	var nilRun *Run
	p := nilRun.Progress()
	if p != nil {
		t.Fatal("nil run must yield a nil progress handle")
	}
	// Every method is a no-op on nil.
	p.Stage("generate/select")
	p.Selection(1, 2)
	p.Search(10, 8)
	p.Coverage(3, 24)
	p.AddNodes(5)
	p.Candidates(1)
	p.Best(10)
	if snap := nilRun.ProgressSnapshot(); snap != (ProgressSnapshot{}) {
		t.Fatalf("nil run snapshot = %+v, want zero", snap)
	}
}

func TestProgressSelectionMonotone(t *testing.T) {
	run := NewRun()
	p := run.Progress()
	p.Selection(5, 10)
	p.Selection(3, 10) // stale writer: must not regress
	snap := run.ProgressSnapshot()
	if snap.SelectionIndex != 5 || snap.SelectionTotal != 10 {
		t.Fatalf("selection = %d/%d, want 5/10", snap.SelectionIndex, snap.SelectionTotal)
	}
	if snap.Fraction != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", snap.Fraction)
	}
	// Concurrent writers: the max index must win.
	var wg sync.WaitGroup
	for i := int64(0); i <= 10; i++ {
		wg.Add(1)
		go func(i int64) { defer wg.Done(); p.Selection(i, 10) }(i)
	}
	wg.Wait()
	if snap = run.ProgressSnapshot(); snap.SelectionIndex != 10 {
		t.Fatalf("after concurrent writes index = %d, want 10", snap.SelectionIndex)
	}
	if snap.Fraction != 1 {
		t.Fatalf("fraction = %v, want 1", snap.Fraction)
	}
}

func TestProgressSearchPair(t *testing.T) {
	run := NewRun()
	p := run.Progress()

	snap := run.ProgressSnapshot()
	if snap.Incumbent != 0 || snap.Bound != 0 {
		t.Fatalf("pristine search = %d/%d, want absent", snap.Incumbent, snap.Bound)
	}

	p.Search(-1, 8) // root relaxation before any tour
	snap = run.ProgressSnapshot()
	if snap.Incumbent != 0 || snap.Bound != 8 {
		t.Fatalf("bound-only search = %d/%d, want 0/8", snap.Incumbent, snap.Bound)
	}

	p.Search(10, 8)
	snap = run.ProgressSnapshot()
	if snap.Incumbent != 10 || snap.Bound != 8 {
		t.Fatalf("search = %d/%d, want 10/8", snap.Incumbent, snap.Bound)
	}

	// Zero is a legal cost and distinct from absent.
	p.Search(0, 0)
	snap = run.ProgressSnapshot()
	if snap.Incumbent != 0 || snap.Bound != 0 {
		t.Fatalf("zero-cost search = %d/%d, want 0/0", snap.Incumbent, snap.Bound)
	}
}

func TestProgressCoverageAndCounters(t *testing.T) {
	run := NewRun()
	p := run.Progress()
	p.Coverage(3, 24)
	p.AddNodes(100)
	p.AddNodes(24)
	p.Candidates(2)
	snap := run.ProgressSnapshot()
	if snap.CoverageDetected != 3 || snap.CoverageTotal != 24 {
		t.Fatalf("coverage = %d/%d, want 3/24", snap.CoverageDetected, snap.CoverageTotal)
	}
	if snap.CoverageFraction != 0.125 {
		t.Fatalf("coverage fraction = %v, want 0.125", snap.CoverageFraction)
	}
	if snap.Nodes != 124 {
		t.Fatalf("nodes = %d, want 124", snap.Nodes)
	}
	if snap.Candidates != 2 {
		t.Fatalf("candidates = %d, want 2", snap.Candidates)
	}
	// Coverage is last-write-wins: a fresh candidate resets it.
	p.Coverage(1, 24)
	if snap = run.ProgressSnapshot(); snap.CoverageDetected != 1 {
		t.Fatalf("coverage detected = %d, want 1", snap.CoverageDetected)
	}
}

func TestProgressBestWatermark(t *testing.T) {
	run := NewRun()
	p := run.Progress()
	p.Best(10)
	p.Best(12) // worse: ignored
	p.Best(0)  // sentinel: ignored
	if snap := run.ProgressSnapshot(); snap.BestComplexity != 10 {
		t.Fatalf("best = %d, want 10", snap.BestComplexity)
	}
	p.Best(8)
	if snap := run.ProgressSnapshot(); snap.BestComplexity != 8 {
		t.Fatalf("best = %d, want 8", snap.BestComplexity)
	}
}

func TestProgressStage(t *testing.T) {
	run := NewRun()
	stages := NewStages(run, run.Start("generate"), "generate/")
	sp := stages.Enter("select")
	if snap := run.ProgressSnapshot(); snap.Stage != "generate/select" {
		t.Fatalf("stage = %q, want generate/select", snap.Stage)
	}
	sp.End()
}

func TestProgressSnapshotChanged(t *testing.T) {
	var a, b ProgressSnapshot
	if a.Changed(b) {
		t.Fatal("two zero snapshots must compare unchanged")
	}
	// Time-derived fields alone do not count as change.
	b.ElapsedMS, b.ETAMS, b.NodesPerSec = 100, 50, 1000
	if a.Changed(b) || b.Changed(a) {
		t.Fatal("time-derived drift must not count as change")
	}
	b.Incumbent = 10
	if !a.Changed(b) || !b.Changed(a) {
		t.Fatal("incumbent movement must count as change")
	}
}

func TestProgressSnapshotJSONOmitsAbsent(t *testing.T) {
	raw, err := json.Marshal(ProgressSnapshot{Fraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"fraction":0}` {
		t.Fatalf("zero snapshot JSON = %s, want only the fraction", raw)
	}
}

func TestSLOHistogram(t *testing.T) {
	run := NewRun()
	h := run.SLOHistogram("latency_us", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var found bool
	for _, he := range run.Export().Histograms {
		if he.Name != "latency_us" {
			continue
		}
		found = true
		wantBounds := []int64{10, 100, 1000}
		wantBuckets := []int64{2, 2, 0, 1} // <=10: 5,10; <=100: 11,100; <=1000: none; +Inf: 5000
		for i, b := range wantBounds {
			if he.Bounds[i] != b {
				t.Fatalf("bounds = %v, want %v", he.Bounds, wantBounds)
			}
		}
		for i, c := range wantBuckets {
			if he.Buckets[i] != c {
				t.Fatalf("buckets = %v, want %v", he.Buckets, wantBuckets)
			}
		}
		if he.Sum != 5+10+11+100+5000 {
			t.Fatalf("sum = %d", he.Sum)
		}
	}
	if !found {
		t.Fatal("SLO histogram missing from export")
	}
	// Nil-safety and snapshot flattening.
	var nilH *SLOHistogram
	nilH.Observe(1)
	if nilH.Count() != 0 {
		t.Fatal("nil histogram count must be 0")
	}
	snap := run.Snapshot()
	if snap["latency_us.count"] != 5 {
		t.Fatalf("snapshot count = %d, want 5", snap["latency_us.count"])
	}
}

func TestExportPow2Bounds(t *testing.T) {
	run := NewRun()
	h := run.Histogram("sizes")
	h.Observe(0) // bucket 0, bound 0
	h.Observe(1) // bits.Len64(1)=1, bound 1
	h.Observe(5) // bits.Len64(5)=3, bound 7
	ex := run.Export()
	for _, he := range ex.Histograms {
		if he.Name != "sizes" {
			continue
		}
		wantBounds := []int64{0, 1, 3, 7}
		wantBuckets := []int64{1, 1, 0, 1, 0} // final 0 is the implicit +Inf
		if len(he.Bounds) != len(wantBounds) || len(he.Buckets) != len(wantBuckets) {
			t.Fatalf("bounds %v buckets %v, want %v / %v", he.Bounds, he.Buckets, wantBounds, wantBuckets)
		}
		for i := range wantBounds {
			if he.Bounds[i] != wantBounds[i] {
				t.Fatalf("bounds = %v, want %v", he.Bounds, wantBounds)
			}
		}
		for i := range wantBuckets {
			if he.Buckets[i] != wantBuckets[i] {
				t.Fatalf("buckets = %v, want %v", he.Buckets, wantBuckets)
			}
		}
		return
	}
	t.Fatal("pow2 histogram missing from export")
}

func TestExportSortedAndTyped(t *testing.T) {
	run := NewRun()
	run.Counter("b.count").Inc()
	run.Counter("a.count").Inc()
	run.Gauge("z.gauge").Set(3)
	ex := run.Export()
	for i := 1; i < len(ex.Counters); i++ {
		if ex.Counters[i-1].Name > ex.Counters[i].Name {
			t.Fatalf("counters not sorted: %v", ex.Counters)
		}
	}
	if len(ex.Gauges) != 1 || ex.Gauges[0].Value != 3 {
		t.Fatalf("gauges = %v", ex.Gauges)
	}
	// obs.spans bookkeeping rides along as counters.
	var sawSpans bool
	for _, c := range ex.Counters {
		if c.Name == "obs.spans" {
			sawSpans = true
		}
	}
	if !sawSpans {
		t.Fatal("export missing obs.spans")
	}
}

func TestGaugeAdd(t *testing.T) {
	run := NewRun()
	g := run.Gauge("inflight")
	g.Add(1)
	g.Add(1)
	g.Add(-1)
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}
	var nilG *Gauge
	nilG.Add(1) // no panic
}
