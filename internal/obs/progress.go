package obs

import (
	"sync/atomic"
	"time"
)

// Progress is the live-progress surface of a Run: a fixed set of
// last-write-wins atomic cells that the engine's long loops (the §5
// selection sweep, the ATSP branch and bound, the fault-simulation
// kernel) update in place, and that the serving layers snapshot on
// demand (SSE progress events, GET /v1/jobs/{id}, the marchgen
// -progress ticker).
//
// The contract matches the rest of the package: a nil *Progress accepts
// every method as a no-op, updates never allocate and never take a
// lock, and pairs of values whose relation matters (incumbent/bound,
// coverage detected/total, selection index/total) are packed into a
// single 64-bit word so a reader can never observe them torn — the
// bound ≤ incumbent invariant holds in every snapshot, not just
// between writes.
//
// Cells that are logically monotone (selection index, nodes expanded)
// are advanced with CAS-max / Add so concurrent writers cannot move
// them backwards; "current best" cells (incumbent/bound, coverage of
// the candidate being evaluated) are plain last-write-wins stores.
type Progress struct {
	// stage is the pipeline stage the run is in, maintained for free by
	// Stages.Enter (the same boundary that parents deep-layer spans).
	stage atomic.Pointer[string]

	// selection packs the sweep position: index in the high 32 bits,
	// total (E = ∏|Cᵢ|) in the low 32. Index-high makes the packed word
	// itself monotone, so CAS-max keeps the pair coherent and ascending.
	selection atomic.Uint64

	// search packs the current exact solve: incumbent tour cost in the
	// high 32 bits, AP lower bound in the low 32, both offset by one so
	// the zero word means "no solve yet" and an absent half decodes to
	// zero. Written as one store on every incumbent or bound movement.
	search atomic.Uint64

	// coverage packs the latest kernel evaluation: detected fault
	// instances in the high 32 bits, total instances in the low 32.
	coverage atomic.Uint64

	nodes      atomic.Int64 // B&B nodes expanded, cumulative across solves
	candidates atomic.Int64 // distinct candidate tests scored so far
	best       atomic.Int64 // best (lowest) complexity found; 0 = none yet
}

// searchHalf encodes one half of the search word: v+1 clamped to 32
// bits, with v < 0 encoding "absent" as 0.
func searchHalf(v int64) uint64 {
	if v < 0 {
		return 0
	}
	if v > 0xFFFFFFFE {
		v = 0xFFFFFFFE
	}
	return uint64(v) + 1
}

// Stage records the pipeline stage the run is currently in. The string
// should be a stable stage name (Stages.Enter passes the span name).
func (p *Progress) Stage(name string) {
	if p == nil {
		return
	}
	p.stage.Store(&name)
}

// Selection records the sweep position: selection index i of total E.
// Monotone — a stale or concurrent smaller index never moves the pair
// backwards.
func (p *Progress) Selection(index, total int64) {
	if p == nil {
		return
	}
	if index < 0 {
		index = 0
	}
	if index > 0xFFFFFFFF {
		index = 0xFFFFFFFF
	}
	if total < 0 {
		total = 0
	}
	if total > 0xFFFFFFFF {
		total = 0xFFFFFFFF
	}
	packed := uint64(index)<<32 | uint64(total)
	for {
		cur := p.selection.Load()
		if packed <= cur || p.selection.CompareAndSwap(cur, packed) {
			return
		}
	}
}

// Search records the state of the current exact solve: the incumbent
// tour cost and the active lower bound, stored as one word so no reader
// sees a bound from one solve against an incumbent from another. Pass a
// negative value for a half that is not known yet (no incumbent before
// the first tour is found; no bound before the root relaxation).
func (p *Progress) Search(incumbent, bound int64) {
	if p == nil {
		return
	}
	p.search.Store(searchHalf(incumbent)<<32 | searchHalf(bound))
}

// Coverage records the latest fault-coverage evaluation: detected
// instances of total. Last-write-wins — each candidate test is a fresh
// evaluation, so the cell tracks the candidate under test.
func (p *Progress) Coverage(detected, total int64) {
	if p == nil {
		return
	}
	if detected < 0 {
		detected = 0
	}
	if detected > 0xFFFFFFFF {
		detected = 0xFFFFFFFF
	}
	if total < 0 {
		total = 0
	}
	if total > 0xFFFFFFFF {
		total = 0xFFFFFFFF
	}
	p.coverage.Store(uint64(detected)<<32 | uint64(total))
}

// AddNodes adds a batch of expanded branch-and-bound nodes. Workers
// batch locally and flush periodically, so this is off the per-node
// hot path.
func (p *Progress) AddNodes(n int64) {
	if p == nil || n == 0 {
		return
	}
	p.nodes.Add(n)
}

// Candidates records the cumulative number of candidate tests scored.
func (p *Progress) Candidates(n int64) {
	if p == nil {
		return
	}
	p.candidates.Store(n)
}

// Best lowers the best-complexity watermark to c (the pipeline
// minimises complexity; a worse or equal value is ignored).
func (p *Progress) Best(c int64) {
	if p == nil || c <= 0 {
		return
	}
	for {
		cur := p.best.Load()
		if (cur != 0 && c >= cur) || p.best.CompareAndSwap(cur, c) {
			return
		}
	}
}

// ProgressSnapshot is one coherent, JSON-ready reading of a run's
// Progress cells plus the derived rates: the payload of job progress
// events, the GET /v1/jobs/{id} progress field and the marchgen
// -progress line.
type ProgressSnapshot struct {
	// Stage is the pipeline stage span name (e.g. "generate/atsp").
	Stage string `json:"stage,omitempty"`

	// SelectionIndex / SelectionTotal are the §5 sweep position: the
	// run is solving selection index+1 of total (E = ∏|Cᵢ|).
	SelectionIndex int64 `json:"selection_index,omitempty"`
	SelectionTotal int64 `json:"selection_total,omitempty"` // see SelectionIndex

	// Fraction is SelectionIndex/SelectionTotal in [0,1] — the overall
	// sweep fraction, 0 until the sweep starts.
	Fraction float64 `json:"fraction"`

	// Incumbent and Bound describe the current exact solve: the best
	// tour cost found so far and the active lower bound
	// (Bound ≤ Incumbent whenever both are set). Omitted when unset.
	Incumbent int64 `json:"incumbent,omitempty"`
	Bound     int64 `json:"bound,omitempty"` // see Incumbent

	// Nodes is the cumulative branch-and-bound nodes expanded across
	// all solves of the run; NodesPerSec is the run-average rate.
	Nodes       int64 `json:"nodes,omitempty"`
	NodesPerSec int64 `json:"nodes_per_sec,omitempty"` // see Nodes

	// CoverageDetected / CoverageTotal are the latest kernel
	// evaluation's detected and total fault instances;
	// CoverageFraction is their ratio.
	CoverageDetected int64   `json:"coverage_detected,omitempty"`
	CoverageTotal    int64   `json:"coverage_total,omitempty"`    // see CoverageDetected
	CoverageFraction float64 `json:"coverage_fraction,omitempty"` // see CoverageDetected

	// Candidates is the number of candidate tests scored so far;
	// BestComplexity the lowest complexity among them.
	Candidates     int64 `json:"candidates,omitempty"`
	BestComplexity int64 `json:"best_complexity,omitempty"` // see Candidates

	// ElapsedMS is wall time since the run started; ETAMS the linear
	// extrapolation of the remaining sweep time from Fraction (0 when
	// the fraction is still 0).
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	ETAMS     int64 `json:"eta_ms,omitempty"` // see ElapsedMS
}

// Changed reports whether the snapshot differs from prev in any
// engine-written cell — the time-derived fields (ElapsedMS, ETAMS,
// NodesPerSec) are ignored, so a publisher that suppresses unchanged
// snapshots does not re-emit on the mere passage of time.
func (s ProgressSnapshot) Changed(prev ProgressSnapshot) bool {
	s.ElapsedMS, s.ETAMS, s.NodesPerSec = 0, 0, 0
	prev.ElapsedMS, prev.ETAMS, prev.NodesPerSec = 0, 0, 0
	return s != prev
}

// Progress returns the run's progress cells, or nil (a universal no-op
// handle) on a nil run.
func (r *Run) Progress() *Progress {
	if r == nil {
		return nil
	}
	return &r.progress
}

// ProgressSnapshot reads every progress cell into one coherent snapshot
// and derives the rates from the run's elapsed wall time. Safe to call
// concurrently with updates; returns the zero snapshot on a nil run.
func (r *Run) ProgressSnapshot() ProgressSnapshot {
	if r == nil {
		return ProgressSnapshot{}
	}
	p := &r.progress
	var s ProgressSnapshot
	if name := p.stage.Load(); name != nil {
		s.Stage = *name
	}
	sel := p.selection.Load()
	s.SelectionIndex = int64(sel >> 32)
	s.SelectionTotal = int64(sel & 0xFFFFFFFF)
	if s.SelectionTotal > 0 {
		s.Fraction = float64(s.SelectionIndex) / float64(s.SelectionTotal)
	}
	search := p.search.Load()
	s.Incumbent = int64(search>>32) - 1
	s.Bound = int64(search&0xFFFFFFFF) - 1
	if s.Incumbent < 0 {
		s.Incumbent = 0
	}
	if s.Bound < 0 {
		s.Bound = 0
	}
	cov := p.coverage.Load()
	s.CoverageDetected = int64(cov >> 32)
	s.CoverageTotal = int64(cov & 0xFFFFFFFF)
	if s.CoverageTotal > 0 {
		s.CoverageFraction = float64(s.CoverageDetected) / float64(s.CoverageTotal)
	}
	s.Nodes = p.nodes.Load()
	s.Candidates = p.candidates.Load()
	s.BestComplexity = p.best.Load()
	elapsed := time.Since(r.t0)
	s.ElapsedMS = elapsed.Milliseconds()
	if sec := elapsed.Seconds(); sec > 0 && s.Nodes > 0 {
		s.NodesPerSec = int64(float64(s.Nodes) / sec)
	}
	if s.Fraction > 0 && s.Fraction < 1 {
		s.ETAMS = int64(float64(s.ElapsedMS) * (1 - s.Fraction) / s.Fraction)
	}
	return s
}
