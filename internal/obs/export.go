package obs

import "sort"

// MetricPoint is one named scalar in an Export.
type MetricPoint struct {
	Name  string // dotted metric name ("serve.generate.ok")
	Value int64  // current counter or gauge reading
}

// HistogramExport is the bucket-level state of one histogram in an
// Export, in the shape exposition formats want: Bounds[i] is the
// inclusive upper bound of Buckets[i] and a final implicit +Inf bucket
// (Buckets[len(Bounds)]) holds everything past the last bound. Buckets
// are raw per-bucket counts, not cumulative.
type HistogramExport struct {
	Name    string  // dotted metric name
	Count   int64   // total observations
	Sum     int64   // sum of observed values
	Bounds  []int64 // ascending inclusive upper bounds, one per bucket
	Buckets []int64 // per-bucket counts; Buckets[len(Bounds)] is +Inf
}

// Export is the typed counterpart of Snapshot: every metric with its
// kind and, for histograms, full bucket detail — what the Prometheus
// text exposition needs and the flat int64 map cannot carry. Slices
// are sorted by name.
type Export struct {
	Counters   []MetricPoint     // monotone counts
	Gauges     []MetricPoint     // instantaneous values
	Histograms []HistogramExport // pow2 and SLO histograms, full buckets
}

// Export returns the run's typed metrics snapshot. The power-of-two
// histograms export with bounds 2^k-1 (trimmed to the highest used
// bucket); SLO histograms export their explicit bounds. Nil runs
// export the zero Export.
func (r *Run) Export() Export {
	if r == nil {
		return Export{}
	}
	var ex Export
	r.reg.mu.RLock()
	defer r.reg.mu.RUnlock()
	for name, c := range r.reg.counters {
		ex.Counters = append(ex.Counters, MetricPoint{name, c.Value()})
	}
	ex.Counters = append(ex.Counters,
		MetricPoint{"obs.spans", r.rec.count.Load()},
		MetricPoint{"obs.spans_dropped", r.rec.dropped.Load()},
	)
	for name, g := range r.reg.gauges {
		ex.Gauges = append(ex.Gauges, MetricPoint{name, g.Value()})
	}
	for name, h := range r.reg.hists {
		ex.Histograms = append(ex.Histograms, exportPow2(name, h))
	}
	for name, h := range r.reg.slos {
		he := HistogramExport{
			Name:    name,
			Count:   h.count.Load(),
			Sum:     h.sum.Load(),
			Bounds:  append([]int64(nil), h.bounds...),
			Buckets: make([]int64, len(h.buckets)),
		}
		for i := range h.buckets {
			he.Buckets[i] = h.buckets[i].Load()
		}
		ex.Histograms = append(ex.Histograms, he)
	}
	sort.Slice(ex.Counters, func(a, b int) bool { return ex.Counters[a].Name < ex.Counters[b].Name })
	sort.Slice(ex.Gauges, func(a, b int) bool { return ex.Gauges[a].Name < ex.Gauges[b].Name })
	sort.Slice(ex.Histograms, func(a, b int) bool { return ex.Histograms[a].Name < ex.Histograms[b].Name })
	return ex
}

// exportPow2 flattens a power-of-two histogram: bucket k holds values
// with bits.Len64(v) == k, so its inclusive upper bound is 2^k - 1.
func exportPow2(name string, h *Histogram) HistogramExport {
	he := HistogramExport{Name: name, Count: h.count.Load(), Sum: h.sum.Load()}
	last := -1
	counts := [histBuckets]int64{}
	for k := 0; k < histBuckets; k++ {
		counts[k] = h.buckets[k].Load()
		if counts[k] > 0 {
			last = k
		}
	}
	for k := 0; k <= last; k++ {
		var bound int64 = 0
		if k > 0 {
			bound = (int64(1) << k) - 1
		}
		he.Bounds = append(he.Bounds, bound)
		he.Buckets = append(he.Buckets, counts[k])
	}
	// The implicit +Inf bucket: empty, every observation landed at or
	// below the last used bound.
	he.Buckets = append(he.Buckets, 0)
	return he
}
