package obstest

import (
	"bytes"
	"strings"
	"testing"

	"marchgen/internal/obs"
)

func trace(t *testing.T) []obs.Event {
	t.Helper()
	r := obs.NewRun()
	root := r.Start("generate")
	root.Child("generate/select").End()
	sp := root.Child("generate/atsp")
	sp.SetInt("nodes", 12)
	sp.End()
	root.End()
	return r.Events()
}

func TestRoundTripAndValidate(t *testing.T) {
	events := trace(t)
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(events))
	}
	if err := Validate(parsed); err != nil {
		t.Fatal(err)
	}
	if err := RequireSpans(parsed, []string{"generate", "generate/atsp"}); err != nil {
		t.Fatal(err)
	}
	if err := RequireSpans(parsed, []string{"generate/missing"}); err == nil {
		t.Fatal("RequireSpans should fail on a missing span")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		events []obs.Event
		want   string
	}{
		{"empty", nil, "empty"},
		{"bad name", []obs.Event{{Name: "Bad Name", Seq: 1}}, "invalid character"},
		{"empty segment", []obs.Event{{Name: "a//b", Seq: 1}}, "empty path segment"},
		{"zero seq", []obs.Event{{Name: "a", Seq: 0}}, "seq must be positive"},
		{"dup seq", []obs.Event{{Name: "a", Seq: 1}, {Name: "b", Seq: 1}}, "duplicate seq"},
		{"dangling parent", []obs.Event{{Name: "a", Seq: 2, Parent: 9}}, "not in trace"},
		{"cycle", []obs.Event{{Name: "a", Seq: 1, Parent: 2}, {Name: "b", Seq: 2, Parent: 1}}, "cycle"},
		{"negative time", []obs.Event{{Name: "a", Seq: 1, DurUS: -1}}, "negative time"},
	}
	for _, tc := range cases {
		err := Validate(tc.events)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestParseTraceRejectsUnknownFields(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader(`{"name":"a","seq":1,"start_us":0,"dur_us":0,"bogus":1}` + "\n")); err == nil {
		t.Fatal("unknown field should be rejected")
	}
}

func TestNormalizeStripsTime(t *testing.T) {
	events := trace(t)
	n1 := Normalize(events)
	for _, ev := range n1 {
		if ev.StartUS != 0 || ev.DurUS != 0 {
			t.Fatalf("normalize left time fields: %+v", ev)
		}
	}
	// Input untouched; a second run of the same shape normalises equal.
	if events[0].Seq != n1[0].Seq {
		t.Fatal("normalize reordered without reason")
	}
	n2 := Normalize(trace(t))
	if len(n1) != len(n2) {
		t.Fatalf("traces differ in length: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i].Name != n2[i].Name || n1[i].Parent != n2[i].Parent {
			t.Fatalf("normalized traces differ at %d: %+v vs %+v", i, n1[i], n2[i])
		}
	}
}
