package obstest

import (
	"strings"
	"testing"

	"marchgen/internal/obs"
)

func progEvents() []obs.Event {
	return []obs.Event{
		{Name: "generate", Seq: 1},
		{Name: "generate/select", Seq: 2, Parent: 1, Attrs: map[string]any{"progress_ppm": float64(0)}},
		{Name: "atsp/branchbound", Seq: 3, Parent: 2, Attrs: map[string]any{"bound": float64(8), "incumbent": float64(10)}},
		{Name: "generate/select", Seq: 4, Parent: 1, Attrs: map[string]any{"progress_ppm": float64(500_000)}},
		{Name: "sim/evaluate", Seq: 5, Parent: 1, Attrs: map[string]any{"detected": float64(24)}},
		{Name: "generate/select", Seq: 6, Parent: 1, Attrs: map[string]any{"progress_ppm": float64(1_000_000)}},
	}
}

func TestValidateProgressAccepts(t *testing.T) {
	if err := ValidateProgress(progEvents()); err != nil {
		t.Fatalf("valid progress trace rejected: %v", err)
	}
	// Probe-free traces pass vacuously.
	if err := ValidateProgress([]obs.Event{{Name: "generate", Seq: 1}}); err != nil {
		t.Fatalf("probe-free trace rejected: %v", err)
	}
}

func TestValidateProgressRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]obs.Event)
		want   string
	}{
		{
			name:   "inadmissible bound",
			mutate: func(evs []obs.Event) { evs[2].Attrs["bound"] = float64(11) },
			want:   "exceeds incumbent",
		},
		{
			name:   "regressed fraction",
			mutate: func(evs []obs.Event) { evs[5].Attrs["progress_ppm"] = float64(400_000) },
			want:   "regressed",
		},
		{
			name:   "fraction out of range",
			mutate: func(evs []obs.Event) { evs[5].Attrs["progress_ppm"] = float64(1_000_001) },
			want:   "outside",
		},
		{
			name:   "negative detected",
			mutate: func(evs []obs.Event) { evs[4].Attrs["detected"] = float64(-1) },
			want:   "negative detected",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evs := progEvents()
			tc.mutate(evs)
			err := ValidateProgress(evs)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestValidateProgressSiblingScope(t *testing.T) {
	// progress_ppm monotonicity is scoped per parent: two sweeps under
	// different parents may each restart from zero.
	evs := []obs.Event{
		{Name: "generate", Seq: 1},
		{Name: "generate/select", Seq: 2, Parent: 1, Attrs: map[string]any{"progress_ppm": float64(900_000)}},
		{Name: "generate", Seq: 3},
		{Name: "generate/select", Seq: 4, Parent: 3, Attrs: map[string]any{"progress_ppm": float64(0)}},
	}
	if err := ValidateProgress(evs); err != nil {
		t.Fatalf("per-parent restart rejected: %v", err)
	}
}
