// Command tracecheck validates a JSONL span trace produced with
// -trace against the obstest schema, and optionally requires specific
// span names to be present. CI's trace smoke job runs it over a
// marchgen trace of the Table 3 fault list:
//
//	tracecheck [-require name,name,...] trace.jsonl
//
// Exit status 0 on a valid trace, 1 on schema or coverage violations,
// 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"marchgen/internal/obs/obstest"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	require := fs.String("require", "", "comma-separated span names that must appear in the trace")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require name,...] trace.jsonl")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		return 2
	}
	defer f.Close()

	events, err := obstest.ParseTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: parse:", err)
		return 1
	}
	if err := obstest.Validate(events); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: invalid:", err)
		return 1
	}
	if err := obstest.ValidateProgress(events); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: progress:", err)
		return 1
	}
	if *require != "" {
		var want []string
		for _, name := range strings.Split(*require, ",") {
			if name = strings.TrimSpace(name); name != "" {
				want = append(want, name)
			}
		}
		if err := obstest.RequireSpans(events, want); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			return 1
		}
	}
	fmt.Printf("tracecheck: ok: %d spans\n", len(events))
	return 0
}
