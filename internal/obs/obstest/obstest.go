// Package obstest validates and normalises JSONL span traces produced
// by internal/obs. It is the schema checker behind the CI trace smoke
// job (cmd tracecheck) and the golden-trace tests at the repository
// root: Validate enforces the structural schema, ValidateProgress the
// progress-probe invariants (admissible bounds, monotone fractions),
// RequireSpans checks stage coverage, and Normalize strips the only
// nondeterministic fields (timestamps) so two traces of the same run
// compare equal.
package obstest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"marchgen/internal/obs"
)

// ParseTrace decodes a JSONL trace. Every line must be a single JSON
// object; blank lines are rejected (the writer never emits them).
func ParseTrace(r io.Reader) ([]obs.Event, error) {
	var events []obs.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		dec := json.NewDecoder(bytes.NewReader(sc.Bytes()))
		dec.DisallowUnknownFields()
		var ev obs.Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Validate enforces the span schema over a parsed trace:
//
//   - names are non-empty slash-separated lowercase segments
//   - seq values are unique and positive
//   - every non-zero parent references a span present in the trace
//   - no span is its own ancestor (the parent graph is acyclic)
//   - start_us and dur_us are non-negative
//
// Returns nil for a valid trace, else an error naming the first
// offending span.
func Validate(events []obs.Event) error {
	if len(events) == 0 {
		return fmt.Errorf("trace is empty")
	}
	seen := make(map[uint64]uint64, len(events)) // seq -> parent
	for _, ev := range events {
		if err := validName(ev.Name); err != nil {
			return fmt.Errorf("span seq %d: %w", ev.Seq, err)
		}
		if ev.Seq == 0 {
			return fmt.Errorf("span %q: seq must be positive", ev.Name)
		}
		if _, dup := seen[ev.Seq]; dup {
			return fmt.Errorf("span %q: duplicate seq %d", ev.Name, ev.Seq)
		}
		if ev.StartUS < 0 || ev.DurUS < 0 {
			return fmt.Errorf("span %q (seq %d): negative time", ev.Name, ev.Seq)
		}
		if ev.Worker < 0 {
			return fmt.Errorf("span %q (seq %d): negative worker", ev.Name, ev.Seq)
		}
		seen[ev.Seq] = ev.Parent
	}
	for _, ev := range events {
		if ev.Parent == 0 {
			continue
		}
		if _, ok := seen[ev.Parent]; !ok {
			return fmt.Errorf("span %q (seq %d): parent %d not in trace", ev.Name, ev.Seq, ev.Parent)
		}
		// Walk up; a cycle would loop forever without the step bound.
		cur, steps := ev.Parent, 0
		for cur != 0 {
			if steps++; steps > len(events) {
				return fmt.Errorf("span %q (seq %d): parent cycle", ev.Name, ev.Seq)
			}
			cur = seen[cur]
		}
	}
	return nil
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("empty span name")
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == "" {
			return fmt.Errorf("name %q: empty path segment", name)
		}
		for _, c := range seg {
			if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.') {
				return fmt.Errorf("name %q: invalid character %q", name, c)
			}
		}
	}
	return nil
}

// ValidateProgress enforces the progress-probe invariants over a
// parsed trace:
//
//   - any span carrying both a "bound" and an "incumbent" attribute
//     has bound <= incumbent (the solver's lower bound is admissible);
//   - "progress_ppm" attributes are in [0, 1_000_000] and monotone
//     non-decreasing in Seq order among siblings (spans sharing a
//     parent), which is how the selection sweep reports its fraction;
//   - "detected" coverage counts are non-negative.
//
// Traces recorded without progress probes carry none of these
// attributes and pass vacuously.
func ValidateProgress(events []obs.Event) error {
	sorted := make([]obs.Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Seq < sorted[b].Seq })
	lastPPM := map[uint64]int64{}
	for _, ev := range sorted {
		bound, okB := intAttr(ev, "bound")
		inc, okI := intAttr(ev, "incumbent")
		if okB && okI && bound > inc {
			return fmt.Errorf("span %q (seq %d): bound %d exceeds incumbent %d", ev.Name, ev.Seq, bound, inc)
		}
		if ppm, ok := intAttr(ev, "progress_ppm"); ok {
			if ppm < 0 || ppm > 1_000_000 {
				return fmt.Errorf("span %q (seq %d): progress_ppm %d outside [0, 1000000]", ev.Name, ev.Seq, ppm)
			}
			if prev, seen := lastPPM[ev.Parent]; seen && ppm < prev {
				return fmt.Errorf("span %q (seq %d): progress_ppm %d regressed below %d", ev.Name, ev.Seq, ppm, prev)
			}
			lastPPM[ev.Parent] = ppm
		}
		if det, ok := intAttr(ev, "detected"); ok && det < 0 {
			return fmt.Errorf("span %q (seq %d): negative detected count %d", ev.Name, ev.Seq, det)
		}
	}
	return nil
}

// intAttr reads an integer span attribute, tolerating the float64 that
// encoding/json produces for numbers on the decode path.
func intAttr(ev obs.Event, key string) (int64, bool) {
	v, ok := ev.Attrs[key]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case int64:
		return n, true
	case float64:
		return int64(n), true
	default:
		return 0, false
	}
}

// RequireSpans checks that every name in want occurs at least once in
// the trace, reporting all the missing ones at once.
func RequireSpans(events []obs.Event, want []string) error {
	have := make(map[string]bool, len(events))
	for _, ev := range events {
		have[ev.Name] = true
	}
	var missing []string
	for _, name := range want {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("trace missing spans: %s", strings.Join(missing, ", "))
	}
	return nil
}

// Normalize strips the nondeterministic fields (start_us, dur_us) and
// sorts by sequence number, leaving exactly the deterministic skeleton:
// names, hierarchy, worker tags and attributes. Two runs of the same
// input normalise to equal traces. The input is not modified.
func Normalize(events []obs.Event) []obs.Event {
	out := make([]obs.Event, len(events))
	copy(out, events)
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	for i := range out {
		out[i].StartUS = 0
		out[i].DurUS = 0
	}
	return out
}
