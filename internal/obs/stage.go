package obs

import (
	"sync"
	"time"
)

// Stages partitions wall time into named, non-overlapping stage windows
// measured at stage boundaries: Enter("atsp") closes the previous
// stage's window and opens atsp's. This is the backing store for
// Stats.StageElapsed — unlike the old pattern of ad-hoc time.Since
// calls sprinkled over the pipeline, a degraded or cancelled stage
// still gets the exact window it occupied, and windows can never
// overlap or double-count.
//
// Stages works with a nil *Run (no spans or metrics are emitted), so
// the duration bookkeeping itself never depends on observation being
// enabled. It is safe for use by one goroutine at a time per instance
// (the pipeline's stage boundaries are sequential); Elapsed may be
// called concurrently with Enter.
type Stages struct {
	run    *Run
	parent *Span
	prefix string

	mu      sync.Mutex
	cur     string
	curSpan *Span
	t0      time.Time
	elapsed map[string]time.Duration
	closed  bool
}

// NewStages starts a stage tracker. Spans for each stage are opened as
// children of parent under prefix+name (e.g. prefix "generate/" yields
// "generate/atsp"); with a nil run only durations are tracked.
func NewStages(run *Run, parent *Span, prefix string) *Stages {
	return &Stages{
		run:     run,
		parent:  parent,
		prefix:  prefix,
		elapsed: map[string]time.Duration{},
	}
}

// Enter marks the boundary into stage name: the previous stage's window
// closes here and name's window opens. Re-entering the current stage is
// a no-op; re-entering an earlier stage accumulates into it. Returns
// the stage's span (nil when unobserved) so callers can attach
// attributes to the phase they are in.
func (s *Stages) Enter(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	now := time.Now()
	if s.cur == name {
		return s.curSpan
	}
	s.closeCurrentLocked(now)
	s.cur = name
	s.t0 = now
	full := s.prefix + name
	if s.parent != nil {
		s.curSpan = s.parent.Child(full)
	} else {
		s.curSpan = s.run.Start(full)
	}
	if s.run != nil {
		s.run.phase.Store(s.curSpan)
		s.run.Progress().Stage(full)
	}
	return s.curSpan
}

// closeCurrentLocked folds the live window into elapsed and ends its
// span. Caller holds s.mu.
func (s *Stages) closeCurrentLocked(now time.Time) {
	if s.cur == "" {
		return
	}
	s.elapsed[s.cur] += now.Sub(s.t0)
	s.curSpan.End()
	s.cur, s.curSpan = "", nil
	if s.run != nil {
		s.run.phase.Store(s.parent)
	}
}

// Close ends the live stage window. Idempotent. The per-stage totals
// are flushed to the run's metrics as stage.<name>.ns.
func (s *Stages) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closeCurrentLocked(time.Now())
	s.closed = true
	for name, d := range s.elapsed {
		s.run.Counter("stage." + name + ".ns").Add(int64(d))
	}
}

// Elapsed returns a copy of the per-stage totals, including the live
// stage's window so far.
func (s *Stages) Elapsed() map[string]time.Duration {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]time.Duration, len(s.elapsed)+1)
	for k, v := range s.elapsed {
		out[k] = v
	}
	if s.cur != "" {
		out[s.cur] += time.Since(s.t0)
	}
	return out
}
