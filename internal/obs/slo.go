package obs

import (
	"sort"
	"sync/atomic"
)

// SLOLatencyBounds are the default request-latency bucket upper bounds
// in microseconds, 1 ms to 10 s — the boundaries the serving tier's
// latency objectives are stated against (a p99 < 25 ms objective is
// readable straight off the 25 000 µs bucket). Callers may pass their
// own ascending bounds to Run.SLOHistogram instead.
var SLOLatencyBounds = []int64{
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
}

// SLOHistogram is a fixed-bound latency histogram: explicit, inclusive
// bucket upper bounds (unlike Histogram's power-of-two buckets) so the
// exposition matches stated SLO boundaries exactly. Observations are a
// binary search plus two atomic adds — no locks, no allocation. All
// methods are nil-safe no-ops.
type SLOHistogram struct {
	bounds  []int64
	count   atomic.Int64
	sum     atomic.Int64
	buckets []atomic.Int64 // len(bounds)+1; the last bucket is +Inf
}

// Observe records one value.
func (h *SLOHistogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := sort.Search(len(h.bounds), func(k int) bool { return v <= h.bounds[k] })
	h.buckets[i].Add(1)
}

// Count returns the number of observations (0 for nil).
func (h *SLOHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SLOHistogram returns the named fixed-bound histogram, creating it on
// first use with the given ascending inclusive upper bounds (later
// calls reuse the first creation's bounds). Nil-safe: a nil run yields
// a nil (no-op) handle.
func (r *Run) SLOHistogram(name string, bounds []int64) *SLOHistogram {
	if r == nil {
		return nil
	}
	r.reg.mu.RLock()
	h := r.reg.slos[name]
	r.reg.mu.RUnlock()
	if h != nil {
		return h
	}
	r.reg.mu.Lock()
	defer r.reg.mu.Unlock()
	if r.reg.slos == nil {
		r.reg.slos = map[string]*SLOHistogram{}
	}
	if h = r.reg.slos[name]; h == nil {
		h = &SLOHistogram{
			bounds:  append([]int64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		r.reg.slos[name] = h
	}
	return h
}
