package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// Flags is the shared CLI observability surface: every command binds
// the same -trace/-chrome/-metrics/-pprof/-progress flags and drives
// them with Start/finish, so observability behaves identically across
// tools.
type Flags struct {
	Trace    string // write a JSONL span trace to this file
	Chrome   string // write a Chrome trace_event file to this file
	Metrics  bool   // dump the metric snapshot as JSON on exit
	Pprof    string // serve net/http/pprof + expvar + /metrics on this address
	Progress bool   // log live engine progress lines to stderr
}

// BindFlags registers the observability flags on fs.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "", "write a JSONL span trace to `file`")
	fs.StringVar(&f.Chrome, "chrome-trace", "", "write a Chrome trace_event file to `file` (load in chrome://tracing or Perfetto)")
	fs.BoolVar(&f.Metrics, "metrics", false, "dump the metrics snapshot as JSON to stderr on exit")
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof, expvar and /metrics on `addr` (e.g. localhost:6060)")
	fs.BoolVar(&f.Progress, "progress", false, "log live engine progress (stage, fraction, incumbent/bound, ETA) to stderr")
	return f
}

// Enabled reports whether any observability output was requested.
func (f *Flags) Enabled() bool {
	return f != nil && (f.Trace != "" || f.Chrome != "" || f.Metrics || f.Pprof != "" || f.Progress)
}

// Start materialises the requested observability: returns the run to
// thread into the pipeline (nil when nothing was requested — the whole
// instrumentation layer then short-circuits) and a finish func that
// flushes traces, dumps metrics to errw and stops the debug server.
// finish is safe to call exactly once, typically via defer after
// restructuring main as func main() { os.Exit(run()) }.
func (f *Flags) Start(errw io.Writer) (*Run, func(), error) {
	if !f.Enabled() {
		return nil, func() {}, nil
	}
	run := NewRun()
	var closers []func()
	fail := func(err error) (*Run, func(), error) {
		for _, c := range closers {
			c()
		}
		return nil, nil, err
	}

	var traceFile *os.File
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return fail(fmt.Errorf("obs: create trace file: %w", err))
		}
		traceFile = file
		closers = append(closers, func() { _ = file.Close() })
		run.DeferTrace(file)
	}
	var stopProgress func()
	if f.Progress {
		stopProgress = startProgressLog(run, errw)
	}
	var stopDebug func()
	if f.Pprof != "" {
		addr, stop, err := run.ServeDebug(f.Pprof)
		if err != nil {
			return fail(fmt.Errorf("obs: pprof endpoint: %w", err))
		}
		stopDebug = stop
		fmt.Fprintf(errw, "obs: debug endpoint on http://%s/debug/pprof/\n", addr)
	}

	finish := func() {
		if stopProgress != nil {
			stopProgress()
		}
		if err := run.Flush(); err != nil {
			fmt.Fprintf(errw, "obs: flush trace: %v\n", err)
		}
		if traceFile != nil {
			_ = traceFile.Close()
		}
		if f.Chrome != "" {
			file, err := os.Create(f.Chrome)
			if err == nil {
				err = WriteChromeTrace(file, run.Events())
				if cerr := file.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(errw, "obs: chrome trace: %v\n", err)
			}
		}
		if f.Metrics {
			enc := json.NewEncoder(errw)
			enc.SetIndent("", "  ")
			if err := enc.Encode(run.Snapshot()); err != nil {
				fmt.Fprintf(errw, "obs: metrics dump: %v\n", err)
			}
		}
		if stopDebug != nil {
			stopDebug()
		}
	}
	return run, finish, nil
}

// progressLogEvery is the sampling interval of the -progress logger —
// human-paced, an order of magnitude slower than the probes' own
// update granularity.
const progressLogEvery = 200 * time.Millisecond

// startProgressLog samples the run's progress probes and writes one
// line to errw whenever something material changed (time-derived
// fields alone do not trigger a line, so an idle engine stays quiet).
// The returned stop func flushes a final snapshot and joins the
// goroutine.
func startProgressLog(run *Run, errw io.Writer) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(progressLogEvery)
		defer tick.Stop()
		var prev ProgressSnapshot
		emit := func(final bool) {
			snap := run.ProgressSnapshot()
			if !snap.Changed(prev) && !final {
				return
			}
			prev = snap
			fmt.Fprintf(errw, "obs: progress %s\n", formatProgress(snap))
		}
		for {
			select {
			case <-tick.C:
				emit(false)
			case <-done:
				emit(true)
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// formatProgress renders a snapshot as a compact single-line summary,
// omitting fields the engine has not populated yet.
func formatProgress(s ProgressSnapshot) string {
	out := fmt.Sprintf("stage=%s", s.Stage)
	if s.Stage == "" {
		out = "stage=-"
	}
	if s.SelectionTotal > 0 {
		out += fmt.Sprintf(" selection=%d/%d (%.1f%%)", s.SelectionIndex, s.SelectionTotal, s.Fraction*100)
	}
	if s.Incumbent > 0 || s.Bound > 0 {
		out += fmt.Sprintf(" incumbent=%d bound=%d", s.Incumbent, s.Bound)
	}
	if s.Nodes > 0 {
		out += fmt.Sprintf(" nodes=%d (%d/s)", s.Nodes, s.NodesPerSec)
	}
	if s.CoverageTotal > 0 {
		out += fmt.Sprintf(" coverage=%d/%d", s.CoverageDetected, s.CoverageTotal)
	}
	if s.BestComplexity > 0 {
		out += fmt.Sprintf(" best=%dn", s.BestComplexity)
	}
	if s.ETAMS > 0 {
		out += fmt.Sprintf(" eta=%s", time.Duration(s.ETAMS)*time.Millisecond)
	}
	return out
}
