package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// sink optionally streams finished spans to a writer as they end, one
// JSON object per line. The zero value is detached (every write is a
// cheap nil check); StreamTo attaches a writer.
type sink struct {
	mu  sync.Mutex
	enc *json.Encoder
	buf *bufio.Writer
}

func (s *sink) write(ev Event) {
	s.mu.Lock()
	if s.enc != nil {
		_ = s.enc.Encode(ev) // best-effort: a broken sink must not fail the run
	}
	s.mu.Unlock()
}

// deferredTrace remembers a writer to dump the full trace to when the
// run finishes (Flush), for callers that want a complete, seq-ordered
// file rather than end-order streaming.
type deferredTrace struct {
	mu sync.Mutex
	w  io.Writer
}

// StreamTo attaches w as a streaming sink: every span is encoded as one
// JSONL line the moment it ends, in end order. Encoding errors are
// swallowed — tracing must never fail the run.
func (r *Run) StreamTo(w io.Writer) {
	if r == nil || w == nil {
		return
	}
	bw := bufio.NewWriter(w)
	r.sink.mu.Lock()
	r.sink.buf = bw
	r.sink.enc = json.NewEncoder(bw)
	r.sink.mu.Unlock()
}

// DeferTrace arranges for the full trace to be written to w, in
// sequence order, when Flush is called. Unlike StreamTo the output is
// deterministic in line order (sequence numbers, not span end times,
// decide it).
func (r *Run) DeferTrace(w io.Writer) {
	if r == nil || w == nil {
		return
	}
	r.deferred.mu.Lock()
	r.deferred.w = w
	r.deferred.mu.Unlock()
}

// Flush drains the sinks: the streaming sink's buffer is flushed, and a
// deferred trace writer (if any) receives the complete seq-ordered
// JSONL dump. Returns the first write error, for callers that care
// (the CLIs report it; the library path ignores it).
func (r *Run) Flush() error {
	if r == nil {
		return nil
	}
	var first error
	r.sink.mu.Lock()
	if r.sink.buf != nil {
		first = r.sink.buf.Flush()
	}
	r.sink.mu.Unlock()
	r.deferred.mu.Lock()
	w := r.deferred.w
	r.deferred.w = nil
	r.deferred.mu.Unlock()
	if w != nil {
		if err := WriteJSONL(w, r.Events()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriteJSONL encodes events one JSON object per line. Map keys inside
// attrs marshal in sorted order (encoding/json), so output bytes depend
// only on the events.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}
