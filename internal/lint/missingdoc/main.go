// Command missingdoc is the repository's godoc-completeness check: it
// parses the packages rooted at the given directories and reports every
// exported identifier — functions, methods, types, grouped and ungrouped
// consts/vars, struct fields and interface methods of exported types —
// that carries no doc comment. The CI lint job runs it over the public
// surface (the root package, march, fault, fsm), so an undocumented
// export fails the build the same way gofmt drift does.
//
//	missingdoc ./ ./march ./fault ./fsm
//
// A const/var group is satisfied by a single doc comment on the group;
// struct fields and interface methods accept either a doc comment above
// or a trailing line comment. Test files and generated files are
// skipped.
//
// Exit codes: 0 everything documented, 1 gaps found, 2 usage error.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: missingdoc <package-dir>...")
		os.Exit(2)
	}
	gaps := 0
	for _, dir := range os.Args[1:] {
		n, err := checkDir(strings.TrimSuffix(dir, "/"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "missingdoc:", err)
			os.Exit(2)
		}
		gaps += n
	}
	if gaps > 0 {
		fmt.Fprintf(os.Stderr, "missingdoc: %d undocumented exported identifier(s)\n", gaps)
		os.Exit(1)
	}
}

// checkDir parses one package directory (non-recursive) and reports its
// undocumented exports.
func checkDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	gaps := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: undocumented exported %s %s\n", filepath.ToSlash(p.Filename), p.Line, kind, name)
		gaps++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						name := d.Name.Name
						if d.Recv != nil {
							kind = "method"
							name = recvName(d.Recv) + "." + name
						}
						report(d.Pos(), kind, name)
					}
				case *ast.GenDecl:
					gaps += checkGenDecl(d, report)
				}
			}
		}
	}
	return gaps, nil
}

// checkGenDecl audits one const/var/type declaration. The count of gaps
// is returned via the report closure's side effect; the return value is
// always 0 and exists to keep the caller's accumulation in one place.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) int {
	switch d.Tok {
	case token.CONST, token.VAR:
		if d.Doc != nil {
			return 0 // one comment documents the whole group
		}
		kind := "const"
		if d.Tok == token.VAR {
			kind = "var"
		}
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			if vs.Doc != nil || vs.Comment != nil {
				continue
			}
			for _, name := range vs.Names {
				if name.IsExported() {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if !ts.Name.IsExported() {
				continue
			}
			if d.Doc == nil && ts.Doc == nil {
				report(ts.Pos(), "type", ts.Name.Name)
			}
			checkTypeMembers(ts, report)
		}
	}
	return 0
}

// checkTypeMembers audits the exported fields of an exported struct type
// and the exported methods of an exported interface type.
func checkTypeMembers(ts *ast.TypeSpec, report func(token.Pos, string, string)) {
	switch t := ts.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc != nil || f.Comment != nil {
				continue
			}
			for _, name := range f.Names {
				if name.IsExported() {
					report(name.Pos(), "field", ts.Name.Name+"."+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					report(name.Pos(), "interface method", ts.Name.Name+"."+name.Name)
				}
			}
		}
	}
}

// recvName renders a method receiver's type for the report line.
func recvName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return "?"
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return "?"
		}
	}
}
