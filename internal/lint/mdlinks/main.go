// Command mdlinks is the repository's intra-repo markdown link check:
// it walks the tree rooted at its argument (default ".") for .md files,
// extracts inline links and image references, and verifies that every
// relative target resolves to an existing file or directory. External
// schemes (http, https, mailto) and pure in-page anchors are skipped;
// a #fragment on a file target is stripped before the existence check.
//
//	mdlinks .            # check the whole repository
//	mdlinks docs         # check one subtree
//
// The CI docs job runs it so a renamed file breaks the build instead of
// silently 404ing README cross-references.
//
// Exit codes: 0 all links resolve, 1 broken links found, 2 usage error.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links and images: [text](target) or
// ![alt](target). Reference-style definitions are rare in this repo and
// out of scope.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	switch len(os.Args) {
	case 1:
	case 2:
		root = os.Args[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: mdlinks [root]")
		os.Exit(2)
	}
	broken := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		n, err := checkFile(path)
		broken += n
		return err
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdlinks:", err)
		os.Exit(2)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlinks: %d broken intra-repo link(s)\n", broken)
		os.Exit(1)
	}
}

// checkFile verifies every relative link in one markdown file, resolving
// targets against the file's own directory.
func checkFile(path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	broken := 0
	inFence := false
	for lineNo, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue // code blocks legitimately contain [x](y)-shaped text
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skip(target) {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
				if target == "" {
					continue // in-page anchor
				}
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s:%d: broken link %s\n", filepath.ToSlash(path), lineNo+1, m[1])
				broken++
			}
		}
	}
	return broken, nil
}

// skip reports whether a link target is outside mdlinks' scope.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}
