package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"marchgen/internal/obs"
)

// MemoPathPrefix is the URL path prefix of the internal peer memo
// endpoint: GET fetches the raw encoded bytes of a locally-held memo
// entry, POST offers bytes for local adoption. The serving side never
// consults its own peer tier while answering, so peer fetches cannot
// recurse.
const MemoPathPrefix = "/v1/internal/memo/"

// SweepPath is the URL path of the internal shard-execution endpoint:
// POST a shard request, receive the shard's sweep outcome.
const SweepPath = "/v1/internal/sweep"

// ForwardHeader marks a request that has already been routed once by a
// replica. A receiving replica never forwards a marked request again,
// so routing loops are impossible even with disagreeing peer lists.
const ForwardHeader = "X-March-Forward"

// ServedByHeader names the replica whose engine actually answered a
// generate request — set by every replica, propagated unchanged through
// forwards, and tallied by marchload's per-replica distribution report.
const ServedByHeader = "X-March-Served-By"

// maxMemoEntryBytes bounds a single fetched or offered memo entry.
// Whole-result documents for the largest Table 3 workloads are a few
// tens of kilobytes; 4 MiB is comfortable headroom and still small
// enough that a misbehaving peer cannot balloon memory.
const maxMemoEntryBytes = 4 << 20

// replQueueDepth bounds the asynchronous owner-replication queue.
// Replication is best-effort: when the queue is full the entry is
// dropped (and counted), never blocked on.
const replQueueDepth = 256

// Config configures a Cluster.
type Config struct {
	// Self is this replica's advertised address (host:port), as it
	// appears in every replica's Peers list.
	Self string

	// Peers is the full replica-set address list (Self included or
	// not — it is always a member).
	Peers []string

	// FetchTimeout bounds one peer memo fetch. Zero means 500ms: long
	// enough for a loopback or rack-local round trip, short enough
	// that a dead peer costs a cache miss, not a stall.
	FetchTimeout time.Duration

	// Obs receives the cluster's counters (fetch hits/misses/errors,
	// replication drops). Nil disables them.
	Obs *obs.Run
}

// replItem is one queued owner-replication write.
type replItem struct {
	key  string
	data []byte
}

// fetchCall is one in-flight singleflight peer fetch.
type fetchCall struct {
	done chan struct{}
	data []byte
	ok   bool
}

// Cluster is the peer client of a replica set: deterministic ownership
// lookups over the consistent-hash ring, singleflighted peer memo
// fetches, and best-effort asynchronous replication of locally-produced
// entries to their ring owner. Safe for concurrent use.
type Cluster struct {
	ring   *Ring
	client *http.Client
	run    *obs.Run

	mu       sync.Mutex
	inflight map[string]*fetchCall

	repl     chan replItem
	replOnce sync.Once
	done     chan struct{}
}

// New builds the peer client for a replica set. The returned Cluster
// owns a background replication goroutine; call Close to stop it.
func New(cfg Config) *Cluster {
	timeout := cfg.FetchTimeout
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	c := &Cluster{
		ring:     NewRing(cfg.Self, cfg.Peers),
		client:   &http.Client{Timeout: timeout},
		run:      cfg.Obs,
		inflight: map[string]*fetchCall{},
		repl:     make(chan replItem, replQueueDepth),
		done:     make(chan struct{}),
	}
	go c.replicate()
	return c
}

// Close stops the background replication goroutine. Queued replication
// writes are dropped; in-flight fetches complete normally.
func (c *Cluster) Close() {
	c.replOnce.Do(func() { close(c.done) })
}

// Self returns this replica's advertised address.
func (c *Cluster) Self() string { return c.ring.Self() }

// Members returns the sorted replica-set address list (self included).
func (c *Cluster) Members() []string { return c.ring.Members() }

// Owner returns the replica that owns key on the consistent-hash ring.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// FetchMemo fetches the encoded bytes of a memo entry from the replica
// set: the ring owner first, then every other peer, stopping at the
// first hit. Concurrent fetches of the same key share one round of
// requests (singleflight). Every failure — timeout, refused connection,
// 404 — is simply a miss.
func (c *Cluster) FetchMemo(key string) ([]byte, bool) {
	c.mu.Lock()
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		return call.data, call.ok
	}
	call := &fetchCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	call.data, call.ok = c.fetch(key)
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(call.done)
	return call.data, call.ok
}

// fetch performs one round of peer requests for key, owner first.
func (c *Cluster) fetch(key string) ([]byte, bool) {
	owner := c.ring.Owner(key)
	tried := map[string]bool{c.ring.Self(): true}
	order := append([]string{owner}, c.ring.Others()...)
	for _, addr := range order {
		if tried[addr] {
			continue
		}
		tried[addr] = true
		data, err := c.get(addr, key)
		if err != nil {
			continue
		}
		if data != nil {
			c.run.Counter("cluster.fetch.hits").Inc()
			return data, true
		}
	}
	c.run.Counter("cluster.fetch.misses").Inc()
	return nil, false
}

// get performs one GET against one peer. A 404 returns (nil, nil) — a
// clean miss; transport errors and unexpected statuses return an error
// (counted, then treated as a miss by the caller).
func (c *Cluster) get(addr, key string) ([]byte, error) {
	resp, err := c.client.Get("http://" + addr + MemoPathPrefix + key)
	if err != nil {
		c.run.Counter("cluster.fetch.errors").Inc()
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxMemoEntryBytes+1))
		if err != nil || len(data) == 0 || len(data) > maxMemoEntryBytes {
			c.run.Counter("cluster.fetch.errors").Inc()
			return nil, fmt.Errorf("cluster: bad memo body from %s", addr)
		}
		return data, nil
	case http.StatusNotFound:
		return nil, nil
	default:
		c.run.Counter("cluster.fetch.errors").Inc()
		return nil, fmt.Errorf("cluster: peer %s returned %d", addr, resp.StatusCode)
	}
}

// OfferMemo queues the encoded bytes of a locally-produced memo entry
// for asynchronous replication to the key's ring owner. A no-op when
// this replica is the owner; dropped (and counted) when the queue is
// full or the entry is oversized. Never blocks.
func (c *Cluster) OfferMemo(key string, data []byte) {
	if c.ring.Owner(key) == c.ring.Self() || len(data) == 0 || len(data) > maxMemoEntryBytes {
		return
	}
	select {
	case c.repl <- replItem{key: key, data: data}:
	default:
		c.run.Counter("cluster.replicate.dropped").Inc()
	}
}

// replicate drains the replication queue, POSTing each entry to its
// ring owner. Failures are counted and forgotten — the owner can always
// refetch or recompute.
func (c *Cluster) replicate() {
	for {
		select {
		case <-c.done:
			return
		case item := <-c.repl:
			owner := c.ring.Owner(item.key)
			if owner == c.ring.Self() {
				continue
			}
			resp, err := c.client.Post("http://"+owner+MemoPathPrefix+item.key,
				"application/octet-stream", bytes.NewReader(item.data))
			if err != nil {
				c.run.Counter("cluster.replicate.errors").Inc()
				continue
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode >= 300 {
				c.run.Counter("cluster.replicate.errors").Inc()
				continue
			}
			c.run.Counter("cluster.replicate.sent").Inc()
		}
	}
}
