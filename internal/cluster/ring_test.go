package cluster

import (
	"fmt"
	"testing"
)

// TestRingAgreesAcrossMembers locks the property routing correctness
// rests on: every member, given the same peer list in any order, builds
// the same ring and routes every key to the same owner.
func TestRingAgreesAcrossMembers(t *testing.T) {
	peers := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}
	perms := [][]string{
		{peers[0], peers[1], peers[2]},
		{peers[2], peers[0], peers[1]},
		{peers[1], peers[2], peers[0], peers[0]}, // dup collapses
	}
	rings := make([]*Ring, 0, len(peers)*len(perms))
	for _, self := range peers {
		for _, p := range perms {
			rings = append(rings, NewRing(self, p))
		}
	}
	for _, r := range rings {
		if got := r.Members(); len(got) != 3 {
			t.Fatalf("Members() = %v, want 3 sorted peers", got)
		}
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		want := rings[0].Owner(key)
		for _, r := range rings[1:] {
			if got := r.Owner(key); got != want {
				t.Fatalf("Owner(%q) = %q on one ring, %q on another", key, got, want)
			}
		}
	}
}

// TestRingSelfAddedAndOthers locks that self always joins the member
// set and Others excludes it.
func TestRingSelfAddedAndOthers(t *testing.T) {
	r := NewRing("c:1", []string{"a:1", "b:1"})
	if got := r.Members(); len(got) != 3 {
		t.Fatalf("Members() = %v, want self added", got)
	}
	for _, o := range r.Others() {
		if o == "c:1" {
			t.Fatalf("Others() includes self: %v", r.Others())
		}
	}
	if len(r.Others()) != 2 {
		t.Fatalf("Others() = %v, want 2", r.Others())
	}
}

// TestRingSingleMember locks the degenerate ring: every key is owned by
// the sole member.
func TestRingSingleMember(t *testing.T) {
	r := NewRing("only:1", nil)
	for i := 0; i < 50; i++ {
		if got := r.Owner(fmt.Sprintf("k%d", i)); got != "only:1" {
			t.Fatalf("Owner = %q, want only:1", got)
		}
	}
}

// TestRingBalance is the ring-imbalance regression guard: with 64
// vnodes per peer, no member of a 3-replica set should own less than a
// tenth of the keyspace.
func TestRingBalance(t *testing.T) {
	peers := []string{"h1:1", "h2:1", "h3:1"}
	r := NewRing(peers[0], peers)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("content-hash-%d", i))]++
	}
	for _, p := range peers {
		if counts[p] < n/10 {
			t.Fatalf("peer %s owns only %d/%d keys — ring imbalance (%v)", p, counts[p], n, counts)
		}
	}
}
