package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"marchgen/internal/obs"
)

// memTier is an in-memory memo.DiskTier for tests.
type memTier struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemTier() *memTier { return &memTier{m: map[string][]byte{}} }

func (t *memTier) Get(key string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	data, ok := t.m[key]
	return data, ok
}

func (t *memTier) Put(key string, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[key] = append([]byte(nil), data...)
}

// fakePeer is an httptest server speaking the internal memo protocol:
// GET serves its entries, POST records offered entries.
type fakePeer struct {
	srv *httptest.Server

	mu      sync.Mutex
	entries map[string][]byte
	posted  map[string][]byte
	gets    int
	postCh  chan string
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	p := &fakePeer{
		entries: map[string][]byte{},
		posted:  map[string][]byte{},
		postCh:  make(chan string, 16),
	}
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, MemoPathPrefix)
		switch r.Method {
		case http.MethodGet:
			p.mu.Lock()
			p.gets++
			data, ok := p.entries[key]
			p.mu.Unlock()
			if !ok {
				http.NotFound(w, r)
				return
			}
			_, _ = w.Write(data)
		case http.MethodPost:
			data, _ := io.ReadAll(r.Body)
			p.mu.Lock()
			p.posted[key] = data
			p.mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
			select {
			case p.postCh <- key:
			default:
			}
		default:
			http.Error(w, "bad method", http.StatusMethodNotAllowed)
		}
	}))
	t.Cleanup(p.srv.Close)
	return p
}

// addr returns the peer's host:port as it would appear in a peer list.
func (p *fakePeer) addr() string { return strings.TrimPrefix(p.srv.URL, "http://") }

// keyOwnedBy finds a key the ring routes to the wanted member.
func keyOwnedBy(t *testing.T, r *Ring, want string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("owned-key-%d", i)
		if r.Owner(key) == want {
			return key
		}
	}
	t.Fatalf("no key owned by %s in 10000 tries", want)
	return ""
}

// TestFetchMemoPeerHitAndMiss locks the fetch contract: a key held by
// any peer is returned with its exact bytes; a key held nowhere is a
// clean miss, with the hit/miss counters telling them apart.
func TestFetchMemoPeerHitAndMiss(t *testing.T) {
	peer := newFakePeer(t)
	run := obs.NewRun()
	c := New(Config{Self: "127.0.0.1:1", Peers: []string{peer.addr()}, Obs: run})
	defer c.Close()

	peer.entries["warmkey"] = []byte("encoded-entry")
	data, ok := c.FetchMemo("warmkey")
	if !ok || string(data) != "encoded-entry" {
		t.Fatalf("FetchMemo = %q, %v; want peer bytes", data, ok)
	}
	if _, ok := c.FetchMemo("coldkey"); ok {
		t.Fatal("FetchMemo hit for a key no peer holds")
	}
	snap := run.Snapshot()
	if snap["cluster.fetch.hits"] != 1 || snap["cluster.fetch.misses"] != 1 {
		t.Fatalf("counters = hits %d misses %d, want 1/1", snap["cluster.fetch.hits"], snap["cluster.fetch.misses"])
	}
}

// TestFetchMemoDeadPeer locks that an unreachable peer degrades to a
// miss (with the error counted), never an error or a stall.
func TestFetchMemoDeadPeer(t *testing.T) {
	run := obs.NewRun()
	c := New(Config{
		Self:         "127.0.0.1:1",
		Peers:        []string{"127.0.0.1:2"}, // nothing listens here
		FetchTimeout: 200 * time.Millisecond,
		Obs:          run,
	})
	defer c.Close()
	if _, ok := c.FetchMemo("anything"); ok {
		t.Fatal("FetchMemo hit against a dead peer")
	}
	snap := run.Snapshot()
	if snap["cluster.fetch.errors"] == 0 || snap["cluster.fetch.misses"] != 1 {
		t.Fatalf("counters = %v, want an error and a miss", snap)
	}
}

// TestPeerTierAdoptsIntoLocal locks the adoption path the cold-replica
// satellite rides on: a peer hit lands in the local tier, so the next
// Get is served locally without touching the network.
func TestPeerTierAdoptsIntoLocal(t *testing.T) {
	peer := newFakePeer(t)
	run := obs.NewRun()
	c := New(Config{Self: "127.0.0.1:1", Peers: []string{peer.addr()}, Obs: run})
	defer c.Close()
	local := newMemTier()
	tier := NewPeerTier(local, c)

	peer.entries["adoptkey"] = []byte("peer-bytes")
	data, ok := tier.Get("adoptkey")
	if !ok || string(data) != "peer-bytes" {
		t.Fatalf("Get = %q, %v; want peer bytes", data, ok)
	}
	if got, ok := local.Get("adoptkey"); !ok || string(got) != "peer-bytes" {
		t.Fatal("peer hit was not adopted into the local tier")
	}
	if run.Snapshot()["cluster.adopted"] != 1 {
		t.Fatalf("cluster.adopted = %d, want 1", run.Snapshot()["cluster.adopted"])
	}

	peer.mu.Lock()
	getsBefore := peer.gets
	peer.mu.Unlock()
	if _, ok := tier.Get("adoptkey"); !ok {
		t.Fatal("second Get missed after adoption")
	}
	peer.mu.Lock()
	getsAfter := peer.gets
	peer.mu.Unlock()
	if getsAfter != getsBefore {
		t.Fatalf("second Get hit the network (%d -> %d peer GETs), want local serve", getsBefore, getsAfter)
	}
}

// TestOfferMemoReplicatesToOwner locks the placement rule: a Put of a
// peer-owned key reaches that peer asynchronously, while a self-owned
// key is never shipped anywhere.
func TestOfferMemoReplicatesToOwner(t *testing.T) {
	peer := newFakePeer(t)
	run := obs.NewRun()
	self := "127.0.0.1:1"
	c := New(Config{Self: self, Peers: []string{peer.addr()}, Obs: run})
	defer c.Close()
	tier := NewPeerTier(newMemTier(), c)

	ring := NewRing(self, []string{peer.addr()})
	peerKey := keyOwnedBy(t, ring, peer.addr())
	selfKey := keyOwnedBy(t, ring, self)

	tier.Put(selfKey, []byte("stays-home"))
	tier.Put(peerKey, []byte("ships-out"))

	select {
	case got := <-peer.postCh:
		if got != peerKey {
			t.Fatalf("peer received %q, want %q", got, peerKey)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replication POST never arrived at the owner")
	}
	peer.mu.Lock()
	defer peer.mu.Unlock()
	if string(peer.posted[peerKey]) != "ships-out" {
		t.Fatalf("owner received %q, want original bytes", peer.posted[peerKey])
	}
	if _, ok := peer.posted[selfKey]; ok {
		t.Fatal("self-owned key was replicated to a peer")
	}
}

// TestFetchMemoSingleflight locks that concurrent fetches of one key
// share a single round of peer requests.
func TestFetchMemoSingleflight(t *testing.T) {
	gate := make(chan struct{})
	var gets int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		gets++
		mu.Unlock()
		<-gate
		_, _ = w.Write([]byte("shared"))
	}))
	defer srv.Close()

	c := New(Config{
		Self:         "127.0.0.1:1",
		Peers:        []string{strings.TrimPrefix(srv.URL, "http://")},
		FetchTimeout: 5 * time.Second,
	})
	defer c.Close()

	const callers = 8
	var wg sync.WaitGroup
	results := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, ok := c.FetchMemo("hotkey")
			if ok {
				results[i] = string(data)
			}
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // let every caller join the in-flight call
	close(gate)
	wg.Wait()
	for i, r := range results {
		if r != "shared" {
			t.Fatalf("caller %d got %q, want shared bytes", i, r)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if gets != 1 {
		t.Fatalf("%d peer GETs for one key, want 1 (singleflight)", gets)
	}
}
