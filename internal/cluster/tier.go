package cluster

import "marchgen/internal/memo"

// PeerTier is a memo.DiskTier that layers the replica set's peer fetch
// under an optional local durable tier. Gets try the local tier first,
// then the peers; a peer hit is adopted into the local tier so the
// entry is durable here from then on. Puts write through locally and
// offer the bytes to the key's ring owner asynchronously — the
// placement rule that makes any replica's warm entry reachable from
// every replica in at most one hop once replication catches up (and via
// the fan-out fallback even before it does).
type PeerTier struct {
	local memo.DiskTier // may be nil (memory-only replica)
	c     *Cluster
}

// NewPeerTier layers the cluster's peer fetch under local, which may be
// nil for a replica without a durable store.
func NewPeerTier(local memo.DiskTier, c *Cluster) *PeerTier {
	return &PeerTier{local: local, c: c}
}

// Get returns the encoded bytes under key from the local tier if
// present, otherwise from the first peer that holds them (adopting the
// bytes into the local tier on a peer hit).
func (t *PeerTier) Get(key string) ([]byte, bool) {
	if t.local != nil {
		if data, ok := t.local.Get(key); ok {
			return data, true
		}
	}
	data, ok := t.c.FetchMemo(key)
	if !ok {
		return nil, false
	}
	t.c.run.Counter("cluster.adopted").Inc()
	if t.local != nil {
		t.local.Put(key, data)
	}
	return data, true
}

// Put writes the encoded bytes through to the local tier and offers
// them to the key's ring owner for asynchronous replication.
func (t *PeerTier) Put(key string, data []byte) {
	if t.local != nil {
		t.local.Put(key, data)
	}
	t.c.OfferMemo(key, data)
}
