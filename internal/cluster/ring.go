// Package cluster is the replica-set tier of the HTTP service: a small,
// stdlib-only toolkit that lets N marchserve processes behave as one
// warm engine. It provides three pieces, layered bottom-up:
//
//   - Ring: a consistent-hash ring over the replica addresses. Every
//     replica builds the identical ring from the identical -peers list,
//     so any replica can answer "who owns this content-hash key?"
//     without coordination — the routing substrate for forward-or-serve
//     request handling and for memo-entry placement.
//   - Cluster: the peer client. It fetches memo bytes from the ring
//     owner (then the remaining peers) with per-key singleflight, and
//     replicates locally-produced entries to their ring owner
//     asynchronously and best-effort.
//   - PeerTier: a memo.DiskTier that layers the peer fetch under an
//     optional local durable tier, adopting peer-warm entries locally —
//     the mechanism that makes "warm anywhere" mean "warm everywhere".
//
// Like the durable store underneath it, the peer tier is an
// optimisation, never a correctness dependency: every fetch failure is
// a cache miss, every replication failure is a dropped write, and a
// replica that loses all its peers simply recomputes. Determinism is
// preserved the same way as everywhere else in the module — cached
// values are pure functions of their content-hash keys, so a peer hit
// returns exactly the bytes a fresh computation would.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// vnodesPerPeer is the number of virtual nodes each replica contributes
// to the ring. 64 keeps the ownership split of a 2–8 replica set within
// a few percent of even while the ring stays tiny (a few hundred
// entries, binary-searched per lookup).
const vnodesPerPeer = 64

// vnode is one virtual point on the ring.
type vnode struct {
	hash uint64
	addr string
}

// Ring is a consistent-hash ring over a replica set's addresses. It is
// immutable after construction and safe for concurrent use. Two rings
// built from the same address set — in any order, with any duplicates —
// are identical, which is what lets every replica route independently
// yet agree on ownership.
type Ring struct {
	self   string
	peers  []string // sorted, deduplicated, includes self
	vnodes []vnode  // sorted by hash
}

// hash64 maps a string onto the ring's key space. SHA-256 keeps the
// placement independent of Go's randomized map/string hashing, so the
// ring is stable across processes, restarts and architectures.
func hash64(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// NewRing builds the ring for a replica set. self is this replica's own
// advertised address; peers is the full set (self included or not —
// it is added when missing). Addresses are deduplicated and sorted, so
// every replica of the set builds the identical ring whatever order its
// -peers flag listed them in.
func NewRing(self string, peers []string) *Ring {
	seen := map[string]bool{}
	var all []string
	for _, p := range append(append([]string(nil), peers...), self) {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		all = append(all, p)
	}
	sort.Strings(all)
	r := &Ring{self: self, peers: all}
	for _, addr := range all {
		for i := 0; i < vnodesPerPeer; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(addr + "#" + strconv.Itoa(i)), addr: addr})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		return r.vnodes[a].addr < r.vnodes[b].addr
	})
	return r
}

// Self returns this replica's own address as passed to NewRing.
func (r *Ring) Self() string { return r.self }

// Members returns the full sorted replica address list (self included).
// The returned slice is shared and must not be mutated.
func (r *Ring) Members() []string { return r.peers }

// Others returns every member except self, in sorted order.
func (r *Ring) Others() []string {
	var out []string
	for _, p := range r.peers {
		if p != r.self {
			out = append(out, p)
		}
	}
	return out
}

// Owner returns the replica that owns key: the member whose first
// virtual node at or after hash64(key) is reached walking clockwise
// (wrapping past the top). Deterministic across replicas by ring
// construction.
func (r *Ring) Owner(key string) string {
	if len(r.vnodes) == 0 {
		return r.self
	}
	h := hash64(key)
	i := sort.Search(len(r.vnodes), func(k int) bool { return r.vnodes[k].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.vnodes[i].addr
}
