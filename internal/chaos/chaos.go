// Package chaos is the fault-injection layer behind the crash-safety
// guarantees of the durable job subsystem. It exposes named failpoints —
// points in the storage and checkpoint paths where an injected failure
// can be made to fire with a configured probability — so tests and the
// chaos-smoke CI job can prove that a job interrupted at any of them
// either completes byte-identically to an uninterrupted run or reports a
// typed terminal error, never hangs or vanishes.
//
// Failpoints are inert unless explicitly enabled (Enable or the
// MARCHCHAOS environment variable read by cmd/marchserve): a disabled
// check is one atomic load. Injection is deterministic for a given spec:
// the firing sequence depends only on the seed and the order of checks,
// so a failing chaos run reproduces under the same spec.
//
// The spec grammar is a comma-separated list of key=value pairs:
//
//	fsync=0.5        store fsync calls fail with probability 0.5
//	partial=0.2      store writes are torn mid-buffer with probability 0.2
//	rename=0.1       store commit renames fail with probability 0.1
//	slow=2ms         every store write stalls for 2ms
//	kill=0.05        the process dies (SIGKILL-style, exit 137) at a
//	                 checkpoint boundary with probability 0.05
//	seed=7           PRNG seed (default 1)
//
// The known probability points are named by the Point* constants; an
// unknown key is a usage error.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The failpoints wired into the storage and job layers. Each names the
// operation it sabotages; the spec keys above map onto them.
const (
	// PointFsync fails the data-file fsync in store.Put.
	PointFsync = "store.fsync"
	// PointPartial tears a store.Put data write mid-buffer: half the
	// bytes land in the temp file, then the write errors out, leaving the
	// torn temp file behind exactly as a mid-write crash would.
	PointPartial = "store.partial"
	// PointRename fails the atomic commit rename in store.Put.
	PointRename = "store.rename"
	// PointSlow stalls every store write (a duration point, not a
	// probability point).
	PointSlow = "store.slow"
	// PointKill terminates the process with exit code 137 (the kill -9
	// convention) immediately after a job checkpoint is persisted — the
	// "kill between checkpoints" failure the resume machinery must absorb.
	PointKill = "job.kill"
)

// ErrInjected is the sentinel all injected failures wrap; match with
// errors.Is to tell sabotage from real I/O errors in tests.
var ErrInjected = errors.New("chaos: injected fault")

// InjectedError is one fired failpoint.
type InjectedError struct {
	// Point names the failpoint that fired.
	Point string
}

// Error names the failpoint that fired.
func (e *InjectedError) Error() string { return "chaos: injected fault at " + e.Point }

// Is makes errors.Is(err, ErrInjected) succeed.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Points is one failpoint configuration: per-point firing probabilities,
// the slow-write stall, and fired-count accounting. Safe for concurrent
// use. The zero value has every point disabled.
type Points struct {
	mu    sync.Mutex
	rng   *rand.Rand
	probs map[string]float64
	slow  time.Duration

	counts sync.Map // point name -> *atomic.Int64
}

// Parse builds a Points from the spec grammar in the package comment.
// The empty string parses to a fully disabled configuration.
func Parse(spec string) (*Points, error) {
	p := &Points{probs: map[string]float64{}}
	seed := int64(1)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		p.rng = rand.New(rand.NewSource(seed))
		return p, nil
	}
	alias := map[string]string{
		"fsync":   PointFsync,
		"partial": PointPartial,
		"rename":  PointRename,
		"kill":    PointKill,
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("chaos: malformed entry %q (want key=value)", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q", val)
			}
			seed = n
		case "slow":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("chaos: bad slow duration %q", val)
			}
			p.slow = d
		default:
			point, ok := alias[key]
			if !ok {
				return nil, fmt.Errorf("chaos: unknown failpoint %q (known: fsync, partial, rename, slow, kill, seed)", key)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("chaos: bad probability %q for %s (want [0,1])", val, key)
			}
			p.probs[point] = f
		}
	}
	p.rng = rand.New(rand.NewSource(seed))
	return p, nil
}

// Fail reports whether the named failpoint fires, returning an
// *InjectedError when it does (and counting the hit). Nil-safe: a nil
// Points never fires.
func (p *Points) Fail(point string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	prob := p.probs[point]
	fired := prob > 0 && p.rng.Float64() < prob
	p.mu.Unlock()
	if !fired {
		return nil
	}
	p.count(point)
	return &InjectedError{Point: point}
}

// Sleep stalls for the configured slow-write duration (a no-op when none
// is configured), counting the stall.
func (p *Points) Sleep() {
	if p == nil {
		return
	}
	p.mu.Lock()
	d := p.slow
	p.mu.Unlock()
	if d <= 0 {
		return
	}
	p.count(PointSlow)
	time.Sleep(d)
}

// Kill terminates the process with exit code 137 when the kill
// failpoint fires — the injectable "kill -9 between checkpoints". The
// caller never observes the firing; the process is simply gone, exactly
// like an external SIGKILL.
func (p *Points) Kill() {
	if p.Fail(PointKill) != nil {
		os.Exit(137)
	}
}

// Count reports how many times the named point has fired.
func (p *Points) Count(point string) int64 {
	if p == nil {
		return 0
	}
	if c, ok := p.counts.Load(point); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

func (p *Points) count(point string) {
	c, ok := p.counts.Load(point)
	if !ok {
		c, _ = p.counts.LoadOrStore(point, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// active is the process-wide failpoint configuration consulted by the
// storage and job layers; nil (the default) disables everything.
var active atomic.Pointer[Points]

// Enable installs the process-wide failpoint configuration from spec.
func Enable(spec string) error {
	p, err := Parse(spec)
	if err != nil {
		return err
	}
	active.Store(p)
	return nil
}

// Install makes p the process-wide configuration (tests use this to
// share counters with the code under sabotage). A nil p disables
// injection.
func Install(p *Points) { active.Store(p) }

// Disable removes the process-wide configuration.
func Disable() { active.Store(nil) }

// Active returns the process-wide configuration, nil when chaos is off.
// All Points methods are nil-safe, so call sites chain unconditionally:
// chaos.Active().Fail(chaos.PointFsync).
func Active() *Points { return active.Load() }
