package chaos

import (
	"errors"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	p, err := Parse("fsync=0.5,partial=0.25,rename=1,slow=3ms,kill=0,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if p.probs[PointFsync] != 0.5 || p.probs[PointPartial] != 0.25 || p.probs[PointRename] != 1 {
		t.Fatalf("probs = %v", p.probs)
	}
	if p.slow != 3*time.Millisecond {
		t.Fatalf("slow = %v", p.slow)
	}
	for _, bad := range []string{"fsync", "fsync=2", "fsync=-1", "nope=0.1", "slow=-1ms", "seed=x"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
	if p, err := Parse(""); err != nil || p.Fail(PointFsync) != nil {
		t.Fatal("empty spec must be fully disabled")
	}
}

func TestFailDeterministicAndCounted(t *testing.T) {
	fire := func() []bool {
		p, err := Parse("rename=0.5,seed=7")
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 100)
		for i := range out {
			out[i] = p.Fail(PointRename) != nil
		}
		return out
	}
	a, b := fire(), fire()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("firing sequence not deterministic for equal specs")
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times", fired, len(a))
	}

	p, _ := Parse("fsync=1,seed=1")
	err := p.Fail(PointFsync)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error does not match ErrInjected: %v", err)
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Point != PointFsync {
		t.Fatalf("injected error lost its point: %v", err)
	}
	p.Fail(PointFsync)
	if p.Count(PointFsync) != 2 {
		t.Fatalf("Count = %d, want 2", p.Count(PointFsync))
	}
	if p.Count(PointRename) != 0 {
		t.Fatal("unfired point counted")
	}
}

func TestNilPointsInert(t *testing.T) {
	var p *Points
	if p.Fail(PointFsync) != nil {
		t.Fatal("nil Points fired")
	}
	p.Sleep()
	if p.Count(PointSlow) != 0 {
		t.Fatal("nil Points counted")
	}
}

func TestProcessWideInstall(t *testing.T) {
	defer Disable()
	if Active() != nil {
		t.Fatal("chaos active before Enable")
	}
	if err := Enable("fsync=1"); err != nil {
		t.Fatal(err)
	}
	if Active().Fail(PointFsync) == nil {
		t.Fatal("enabled failpoint did not fire")
	}
	Disable()
	if Active().Fail(PointFsync) != nil {
		t.Fatal("disabled failpoint fired")
	}
	if err := Enable("bogus=1"); err == nil {
		t.Fatal("Enable accepted a bad spec")
	}
}
