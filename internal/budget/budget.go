// Package budget centralises the resource accounting and cancellation
// machinery threaded through the generation pipeline. Every stage of the
// synthesis pipeline (class-selection enumeration, the exact ATSP solvers,
// the rewrite beam, validation and shrinking) consults a single *Meter,
// which merges two distinct mechanisms:
//
//   - hard cancellation via context.Context: the caller gave up. The
//     pipeline aborts as fast as possible and returns ErrCanceled or
//     ErrDeadlineExceeded; no result is produced.
//   - soft resource budgets via Budget: the caller still wants an answer,
//     just not at any price. When a budget runs out the pipeline degrades —
//     the exact ATSP falls back to the layered heuristics, enumeration and
//     shrinking stop early — and the (still simulator-validated) result is
//     marked degraded instead of optimal.
//
// The sentinel errors below are re-exported by the root marchgen package so
// library callers can errors.Is/As against them without importing an
// internal path.
package budget

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The typed error taxonomy of the pipeline. All pipeline errors wrap one of
// these sentinels; match with errors.Is.
var (
	// ErrCanceled reports that the caller's context was canceled.
	ErrCanceled = errors.New("marchgen: generation canceled")
	// ErrDeadlineExceeded reports that the caller's context deadline
	// passed before generation finished.
	ErrDeadlineExceeded = errors.New("marchgen: generation deadline exceeded")
	// ErrBudgetExhausted reports that a soft resource budget ran out
	// before any usable result existed. (When a budget runs out after a
	// valid candidate has been found, generation succeeds with the result
	// marked degraded instead of returning this error.)
	ErrBudgetExhausted = errors.New("marchgen: resource budget exhausted")
	// ErrUnsupportedFault reports a fault list the pipeline cannot
	// realise: an unknown model name, or patterns outside the rewrite
	// grammar that the bounded fallback search cannot cover either.
	ErrUnsupportedFault = errors.New("marchgen: unsupported fault")
	// ErrInternal reports an internal invariant failure (a recovered
	// panic); see InternalError for the stage and stack.
	ErrInternal = errors.New("marchgen: internal error")
	// ErrUsage reports an invalid caller-supplied configuration value — a
	// malformed or zero budget entry, a negative worker count. The CLIs
	// map it to ExitUsage (2) uniformly via ExitCode.
	ErrUsage = errors.New("marchgen: invalid usage")
)

// InternalError is the boundary form of a recovered internal panic: no
// library caller ever sees a raw panic, they see one of these (matching
// errors.Is(err, ErrInternal)) carrying the pipeline stage and the stack.
type InternalError struct {
	// Stage names the pipeline stage that panicked (e.g. "generate").
	Stage string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("marchgen: internal error in stage %q: %v", e.Stage, e.Value)
}

// Is makes errors.Is(err, ErrInternal) succeed for InternalError values.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// Unwrap exposes a wrapped error when the panic value itself was an error.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Budget bounds the resources one generation run may spend. The zero value
// means unlimited. All limits are soft: running out degrades the result
// (heuristic ordering, truncated enumeration) instead of failing, except
// when no valid candidate exists yet at exhaustion time — then the run
// fails with ErrBudgetExhausted.
type Budget struct {
	// Deadline is the soft deadline: past it, the pipeline stops opening
	// new work and finishes from what it has. Contrast with a context
	// deadline, which aborts with ErrDeadlineExceeded instead.
	Deadline time.Time
	// ATSPNodes caps the total number of search states the exact ATSP
	// solvers (Held–Karp, branch-and-bound, optimal-path enumeration) may
	// expand across the whole run; on exhaustion the ordering falls back
	// to the layered heuristics.
	ATSPNodes int
	// Selections caps the number of BFE equivalence-class selections
	// enumerated (the paper's E = ∏|Cᵢ| product of Section 5).
	Selections int
	// Candidates caps the number of rewrite candidates validated.
	Candidates int
}

// Unlimited reports whether the budget imposes no limit at all.
func (b Budget) Unlimited() bool {
	return b.Deadline.IsZero() && b.ATSPNodes <= 0 && b.Selections <= 0 && b.Candidates <= 0
}

// Validate rejects semantically invalid budgets (negative counts). The
// zero value of each field means "unlimited" and is valid; explicit zeros
// are only rejected at the textual layer (ParseSpec), where "nodes=0"
// would otherwise silently mean the opposite of what it reads as.
func (b Budget) Validate() error {
	if b.ATSPNodes < 0 {
		return fmt.Errorf("budget: negative node count %d: %w", b.ATSPNodes, ErrUsage)
	}
	if b.Selections < 0 {
		return fmt.Errorf("budget: negative selection count %d: %w", b.Selections, ErrUsage)
	}
	if b.Candidates < 0 {
		return fmt.Errorf("budget: negative candidate count %d: %w", b.Candidates, ErrUsage)
	}
	return nil
}

// ParseSpec parses the CLI form of a Budget: a comma-separated list of
// key=value pairs with keys "nodes" (ATSP search states), "selections",
// "candidates" (positive integers) and "soft" (a positive time.Duration,
// converted to an absolute soft deadline from time.Now). The empty string
// is the unlimited budget; an explicit zero or negative value is a usage
// error (wrapping ErrUsage) — omit the key to leave a dimension unlimited.
func ParseSpec(spec string) (Budget, error) {
	var b Budget
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return b, nil
	}
	count := func(key, val string) (int, error) {
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("budget: bad %s count %q: %w", key, val, ErrUsage)
		}
		if n == 0 {
			return 0, fmt.Errorf("budget: %s=0 is not a valid limit (omit the key for unlimited): %w", key, ErrUsage)
		}
		return n, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Budget{}, fmt.Errorf("budget: malformed entry %q (want key=value): %w", part, ErrUsage)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch strings.ToLower(key) {
		case "soft":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Budget{}, fmt.Errorf("budget: bad soft deadline %q: %v: %w", val, err, ErrUsage)
			}
			if d <= 0 {
				return Budget{}, fmt.Errorf("budget: soft deadline %q is not positive: %w", val, ErrUsage)
			}
			b.Deadline = time.Now().Add(d)
		case "nodes":
			n, err := count("node", val)
			if err != nil {
				return Budget{}, err
			}
			b.ATSPNodes = n
		case "selections":
			n, err := count("selection", val)
			if err != nil {
				return Budget{}, err
			}
			b.Selections = n
		case "candidates":
			n, err := count("candidate", val)
			if err != nil {
				return Budget{}, err
			}
			b.Candidates = n
		default:
			return Budget{}, fmt.Errorf("budget: unknown key %q (known: soft, nodes, selections, candidates): %w", key, ErrUsage)
		}
	}
	return b, nil
}

// ParseWorkers validates a CLI -workers flag value: 0 selects the
// GOMAXPROCS-aware default, positive values are taken literally, and a
// negative value is a usage error wrapping ErrUsage. This is the single
// validation point shared by every CLI, so a bad worker count exits with
// ExitUsage (2) everywhere.
func ParseWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("budget: negative worker count %d: %w", n, ErrUsage)
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return n, nil
}

// CtxErr maps a context's error to the typed taxonomy (nil when the
// context is still live).
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrDeadlineExceeded
	default:
		return ErrCanceled
	}
}

// checkStride is how many cheap Check calls pass between two real context
// consultations: hot search loops can call Check per node without paying a
// ctx.Err() (an atomic load plus a mutex in the stdlib) every time.
const checkStride = 64

// Meter carries one generation run's cancellation context and soft budget
// through the pipeline. It is safe for concurrent use: the parallel engine
// shares one Meter between the worker pool, the parallel branch-and-bound
// workers and the sequential driver, so hard cancellation latches exactly
// once and node accounting stays a single global count. A nil *Meter is
// valid everywhere and disables all checks, which is what the legacy
// non-context entry points pass.
type Meter struct {
	ctx  context.Context
	b    Budget
	tick atomic.Uint64
	// nodes counts exact-ATSP search states expended so far (all workers).
	nodes atomic.Int64
	// nodesOut latches ATSP node-budget exhaustion: once the exact
	// solvers run dry, every later exact solve fails fast and the caller
	// keeps using the heuristic fallback.
	nodesOut atomic.Bool
	// errOnce/err latch the first hard-cancellation error so every later
	// check is one atomic load.
	errSet atomic.Bool
	errMu  sync.Mutex
	err    error
}

// NewMeter builds the Meter for one run. ctx may be nil (treated as
// context.Background()).
func NewMeter(ctx context.Context, b Budget) *Meter {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Meter{ctx: ctx, b: b}
}

// latched returns the latched hard error, if any.
func (m *Meter) latched() error {
	if !m.errSet.Load() {
		return nil
	}
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.err
}

// latch stores the first hard error and returns the winning one.
func (m *Meter) latch(err error) error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	if m.err == nil {
		m.err = err
		m.errSet.Store(true)
	}
	return m.err
}

// Check is the cheap periodic cancellation probe for hot loops: most calls
// are a couple of atomic loads, every checkStride-th call consults the
// context. It returns ErrCanceled or ErrDeadlineExceeded once the run is
// hard-canceled, permanently.
func (m *Meter) Check() error {
	if m == nil {
		return nil
	}
	if err := m.latched(); err != nil {
		return err
	}
	if m.tick.Add(1)%checkStride != 0 {
		return nil
	}
	return m.CheckNow()
}

// CheckNow always consults the context; stage entry points use it so a
// canceled run stops within one stage transition.
func (m *Meter) CheckNow() error {
	if m == nil {
		return nil
	}
	if err := m.latched(); err != nil {
		return err
	}
	if err := CtxErr(m.ctx); err != nil {
		return m.latch(err)
	}
	return nil
}

// Node charges one exact-solver search state against the ATSPNodes budget
// (and performs the periodic cancellation probe). It returns
// ErrBudgetExhausted once the budget is spent; hard cancellation errors
// take precedence. Concurrent callers share the one global count.
func (m *Meter) Node() error {
	if m == nil {
		return nil
	}
	if err := m.Check(); err != nil {
		return err
	}
	if m.b.ATSPNodes <= 0 {
		return nil
	}
	if m.nodesOut.Load() {
		return ErrBudgetExhausted
	}
	if m.nodes.Add(1) > int64(m.b.ATSPNodes) {
		m.nodesOut.Store(true)
		return ErrBudgetExhausted
	}
	return nil
}

// Nodes reports the exact-solver search states expended so far.
func (m *Meter) Nodes() int {
	if m == nil {
		return 0
	}
	return int(m.nodes.Load())
}

// SoftExpired reports whether the soft deadline has passed: the pipeline
// should stop opening new work and finish from what it already has.
func (m *Meter) SoftExpired() bool {
	if m == nil || m.b.Deadline.IsZero() {
		return false
	}
	return time.Now().After(m.b.Deadline)
}

// Budget returns the run's soft budget.
func (m *Meter) Budget() Budget {
	if m == nil {
		return Budget{}
	}
	return m.b
}

// Context returns the run's cancellation context (context.Background for a
// nil meter), letting pipeline stages hand it to context-based helpers.
func (m *Meter) Context() context.Context {
	if m == nil || m.ctx == nil {
		return context.Background()
	}
	return m.ctx
}

// IsHard reports whether err is a hard-cancellation error that must abort
// the run (as opposed to a soft exhaustion the caller can degrade around).
func IsHard(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded)
}

// IsTerminal classifies a pipeline error for the durable job layer:
// terminal errors describe the request itself (bad usage, an unsupported
// fault list, an exhausted budget, an engine bug, the job's own expired
// deadline) and re-running cannot change them, so the job fails with a
// typed record. Non-terminal errors — ErrCanceled above all, which is
// what a run observes when its process is draining or dying — describe
// the attempt, and the job resumes from its last checkpoint on the next
// start instead of failing.
// Unknown errors (parse failures, store I/O) are conservatively terminal
// as well: only a cancellation is evidence that re-running could succeed.
func IsTerminal(err error) bool {
	return err != nil && !errors.Is(err, ErrCanceled)
}

// Process exit codes shared by the cmd/ CLIs so scripts can tell an
// optimal run from a degraded, canceled or failed one.
const (
	// ExitOK: success, optimal (non-degraded) result.
	ExitOK = 0
	// ExitFail: generation or verification failed (no result).
	ExitFail = 1
	// ExitUsage: bad command-line usage.
	ExitUsage = 2
	// ExitCanceled: the run was canceled or timed out (-timeout).
	ExitCanceled = 3
	// ExitDegraded: a result was produced and printed, but a soft budget
	// ran out along the way: the result is validated best-effort, not
	// proven optimal.
	ExitDegraded = 4
)

// ExitCode maps a pipeline error to the CLI exit code convention above.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, ErrUsage):
		return ExitUsage
	case IsHard(err):
		return ExitCanceled
	default:
		return ExitFail
	}
}
