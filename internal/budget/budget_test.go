package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilMeterIsNoOp(t *testing.T) {
	var m *Meter
	if err := m.Check(); err != nil {
		t.Fatalf("nil meter Check: %v", err)
	}
	if err := m.CheckNow(); err != nil {
		t.Fatalf("nil meter CheckNow: %v", err)
	}
	if err := m.Node(); err != nil {
		t.Fatalf("nil meter Node: %v", err)
	}
	if m.SoftExpired() {
		t.Fatal("nil meter reports soft expiry")
	}
}

func TestCheckMapsContextErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMeter(ctx, Budget{})
	if err := m.CheckNow(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: got %v, want ErrCanceled", err)
	}

	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	m2 := NewMeter(ctx2, Budget{})
	if err := m2.CheckNow(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired ctx: got %v, want ErrDeadlineExceeded", err)
	}
}

func TestCheckStrideEventuallyObservesCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMeter(ctx, Budget{})
	cancel()
	var err error
	for i := 0; i < 2*checkStride && err == nil; i++ {
		err = m.Check()
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("stride checks never observed cancellation: %v", err)
	}
	// The error latches.
	if err := m.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("latched error lost: %v", err)
	}
}

func TestNodeBudgetExhausts(t *testing.T) {
	m := NewMeter(context.Background(), Budget{ATSPNodes: 3})
	for i := 0; i < 3; i++ {
		if err := m.Node(); err != nil {
			t.Fatalf("node %d within budget: %v", i, err)
		}
	}
	if err := m.Node(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over budget: got %v, want ErrBudgetExhausted", err)
	}
	// Exhaustion latches without growing the count.
	if err := m.Node(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("latched exhaustion lost: %v", err)
	}
	if m.Nodes() != 4 {
		t.Fatalf("Nodes() = %d, want 4", m.Nodes())
	}
}

func TestSoftExpired(t *testing.T) {
	past := NewMeter(context.Background(), Budget{Deadline: time.Now().Add(-time.Millisecond)})
	if !past.SoftExpired() {
		t.Fatal("past soft deadline not reported expired")
	}
	future := NewMeter(context.Background(), Budget{Deadline: time.Now().Add(time.Hour)})
	if future.SoftExpired() {
		t.Fatal("future soft deadline reported expired")
	}
	if err := past.CheckNow(); err != nil {
		t.Fatalf("soft deadline must not hard-cancel: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	b, err := ParseSpec("nodes=100, selections=4,candidates=7")
	if err != nil {
		t.Fatal(err)
	}
	if b.ATSPNodes != 100 || b.Selections != 4 || b.Candidates != 7 || !b.Deadline.IsZero() {
		t.Fatalf("unexpected budget %+v", b)
	}
	b, err = ParseSpec("soft=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Until(b.Deadline); d <= 0 || d > time.Second {
		t.Fatalf("soft deadline %v not ~250ms ahead", d)
	}
	if b, err := ParseSpec(""); err != nil || !b.Unlimited() {
		t.Fatalf("empty spec: %+v, %v", b, err)
	}
	for _, bad := range []string{"nodes", "nodes=x", "soft=abc", "frobs=3", "nodes=-1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestInternalError(t *testing.T) {
	base := errors.New("boom")
	e := &InternalError{Stage: "generate", Value: base, Stack: []byte("stack")}
	if !errors.Is(e, ErrInternal) {
		t.Fatal("InternalError does not match ErrInternal")
	}
	if !errors.Is(e, base) {
		t.Fatal("InternalError does not unwrap its error value")
	}
	var ie *InternalError
	if !errors.As(error(e), &ie) || ie.Stage != "generate" {
		t.Fatal("errors.As failed to recover *InternalError")
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{ErrCanceled, ExitCanceled},
		{ErrDeadlineExceeded, ExitCanceled},
		{ErrBudgetExhausted, ExitFail},
		{errors.New("other"), ExitFail},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
