package budget

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestNilMeterIsNoOp(t *testing.T) {
	var m *Meter
	if err := m.Check(); err != nil {
		t.Fatalf("nil meter Check: %v", err)
	}
	if err := m.CheckNow(); err != nil {
		t.Fatalf("nil meter CheckNow: %v", err)
	}
	if err := m.Node(); err != nil {
		t.Fatalf("nil meter Node: %v", err)
	}
	if m.SoftExpired() {
		t.Fatal("nil meter reports soft expiry")
	}
}

func TestCheckMapsContextErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMeter(ctx, Budget{})
	if err := m.CheckNow(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: got %v, want ErrCanceled", err)
	}

	ctx2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	m2 := NewMeter(ctx2, Budget{})
	if err := m2.CheckNow(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired ctx: got %v, want ErrDeadlineExceeded", err)
	}
}

func TestCheckStrideEventuallyObservesCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMeter(ctx, Budget{})
	cancel()
	var err error
	for i := 0; i < 2*checkStride && err == nil; i++ {
		err = m.Check()
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("stride checks never observed cancellation: %v", err)
	}
	// The error latches.
	if err := m.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("latched error lost: %v", err)
	}
}

func TestNodeBudgetExhausts(t *testing.T) {
	m := NewMeter(context.Background(), Budget{ATSPNodes: 3})
	for i := 0; i < 3; i++ {
		if err := m.Node(); err != nil {
			t.Fatalf("node %d within budget: %v", i, err)
		}
	}
	if err := m.Node(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over budget: got %v, want ErrBudgetExhausted", err)
	}
	// Exhaustion latches without growing the count.
	if err := m.Node(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("latched exhaustion lost: %v", err)
	}
	if m.Nodes() != 4 {
		t.Fatalf("Nodes() = %d, want 4", m.Nodes())
	}
}

func TestSoftExpired(t *testing.T) {
	past := NewMeter(context.Background(), Budget{Deadline: time.Now().Add(-time.Millisecond)})
	if !past.SoftExpired() {
		t.Fatal("past soft deadline not reported expired")
	}
	future := NewMeter(context.Background(), Budget{Deadline: time.Now().Add(time.Hour)})
	if future.SoftExpired() {
		t.Fatal("future soft deadline reported expired")
	}
	if err := past.CheckNow(); err != nil {
		t.Fatalf("soft deadline must not hard-cancel: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	b, err := ParseSpec("nodes=100, selections=4,candidates=7")
	if err != nil {
		t.Fatal(err)
	}
	if b.ATSPNodes != 100 || b.Selections != 4 || b.Candidates != 7 || !b.Deadline.IsZero() {
		t.Fatalf("unexpected budget %+v", b)
	}
	b, err = ParseSpec("soft=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Until(b.Deadline); d <= 0 || d > time.Second {
		t.Fatalf("soft deadline %v not ~250ms ahead", d)
	}
	if b, err := ParseSpec(""); err != nil || !b.Unlimited() {
		t.Fatalf("empty spec: %+v, %v", b, err)
	}
	for _, bad := range []string{"nodes", "nodes=x", "soft=abc", "frobs=3", "nodes=-1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestParseSpecZeroIsUsageError locks the fix for the zero-limit hole:
// "nodes=0" used to parse as the unlimited budget — the opposite of what
// it reads as. Every malformed or zero entry must wrap ErrUsage so the
// CLIs exit with code 2.
func TestParseSpecZeroIsUsageError(t *testing.T) {
	for _, bad := range []string{
		"nodes=0", "selections=0", "candidates=0", "soft=0s", "soft=-1s",
		"nodes=-5", "nodes=", "=3", "nodes=1,selections=0",
	} {
		_, err := ParseSpec(bad)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
			continue
		}
		if !errors.Is(err, ErrUsage) {
			t.Errorf("ParseSpec(%q): %v does not wrap ErrUsage", bad, err)
		}
	}
}

func TestBudgetValidate(t *testing.T) {
	if err := (Budget{}).Validate(); err != nil {
		t.Fatalf("zero budget rejected: %v", err)
	}
	if err := (Budget{ATSPNodes: 10, Selections: 2, Candidates: 3}).Validate(); err != nil {
		t.Fatalf("valid budget rejected: %v", err)
	}
	for _, b := range []Budget{{ATSPNodes: -1}, {Selections: -2}, {Candidates: -3}} {
		err := b.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) accepted", b)
			continue
		}
		if !errors.Is(err, ErrUsage) {
			t.Errorf("Validate(%+v): %v does not wrap ErrUsage", b, err)
		}
	}
}

func TestParseWorkers(t *testing.T) {
	if n, err := ParseWorkers(0); err != nil || n != runtime.GOMAXPROCS(0) {
		t.Fatalf("ParseWorkers(0) = %d, %v", n, err)
	}
	if n, err := ParseWorkers(5); err != nil || n != 5 {
		t.Fatalf("ParseWorkers(5) = %d, %v", n, err)
	}
	_, err := ParseWorkers(-1)
	if !errors.Is(err, ErrUsage) {
		t.Fatalf("ParseWorkers(-1): %v does not wrap ErrUsage", err)
	}
	if ExitCode(err) != ExitUsage {
		t.Fatalf("ExitCode(%v) = %d, want %d", err, ExitCode(err), ExitUsage)
	}
}

// TestMeterConcurrentNodeAccounting exercises the meter the way the
// parallel branch-and-bound does: many goroutines charging one shared
// node budget. The total number of successful charges must equal the
// budget exactly, and exhaustion must latch for every worker.
func TestMeterConcurrentNodeAccounting(t *testing.T) {
	const budget = 1000
	m := NewMeter(context.Background(), Budget{ATSPNodes: budget})
	var ok, exhausted int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			myOK, myEx := int64(0), int64(0)
			for i := 0; i < 500; i++ {
				switch err := m.Node(); {
				case err == nil:
					myOK++
				case errors.Is(err, ErrBudgetExhausted):
					myEx++
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
			mu.Lock()
			ok += myOK
			exhausted += myEx
			mu.Unlock()
		}()
	}
	wg.Wait()
	if ok != budget {
		t.Fatalf("%d charges succeeded, want exactly %d", ok, budget)
	}
	if exhausted != 8*500-budget {
		t.Fatalf("%d charges exhausted, want %d", exhausted, 8*500-budget)
	}
	if err := m.Node(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("exhaustion did not latch: %v", err)
	}
}

// TestMeterConcurrentCancelLatch checks that hard cancellation observed by
// one goroutine is visible to all others, exactly once, with a consistent
// error.
func TestMeterConcurrentCancelLatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMeter(ctx, Budget{})
	cancel()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var err error
			for i := 0; i < 4*checkStride && err == nil; i++ {
				err = m.Check()
			}
			if !errors.Is(err, ErrCanceled) {
				t.Errorf("worker never observed cancellation: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestInternalError(t *testing.T) {
	base := errors.New("boom")
	e := &InternalError{Stage: "generate", Value: base, Stack: []byte("stack")}
	if !errors.Is(e, ErrInternal) {
		t.Fatal("InternalError does not match ErrInternal")
	}
	if !errors.Is(e, base) {
		t.Fatal("InternalError does not unwrap its error value")
	}
	var ie *InternalError
	if !errors.As(error(e), &ie) || ie.Stage != "generate" {
		t.Fatal("errors.As failed to recover *InternalError")
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{ErrUsage, ExitUsage},
		{fmt.Errorf("wrap: %w", ErrUsage), ExitUsage},
		{ErrCanceled, ExitCanceled},
		{ErrDeadlineExceeded, ExitCanceled},
		{ErrBudgetExhausted, ExitFail},
		{errors.New("other"), ExitFail},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
