package atsp

import (
	"math/rand"
	"reflect"
	"testing"
)

// bruteArborescence enumerates every in-arc selection of red (one in-arc
// per non-root node) and returns the cheapest acyclic one, i.e. the true
// minimum spanning arborescence cost. ok is false when no selection is
// acyclic (or some node has no in-arc at all).
func bruteArborescence(red Matrix, root int) (int, bool) {
	n := len(red)
	inFrom := make([]int, n)
	best, found := 0, false
	var rec func(v int, cost int)
	rec = func(v int, cost int) {
		if v == n {
			// Acyclic iff every node walks up to the root.
			for s := 0; s < n; s++ {
				x, steps := s, 0
				for x != root {
					x = inFrom[x]
					if steps++; steps > n {
						return
					}
				}
			}
			if !found || cost < best {
				best, found = cost, true
			}
			return
		}
		if v == root {
			rec(v+1, cost)
			return
		}
		for i := 0; i < n; i++ {
			if i != v && red[i][v] < apInf {
				inFrom[v] = i
				rec(v+1, cost+red[i][v])
			}
		}
	}
	rec(0, 0)
	return best, found
}

// TestMinArborescence pits the Chu–Liu/Edmonds implementation against the
// brute-force in-arc enumeration on small dense and wall-riddled graphs.
func TestMinArborescence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	outdeg := make([]int, 8)
	for iter := 0; iter < 200; iter++ {
		// 2..7: brute force is (n-1)^(n-1) selections, and the classic
		// accounting bug (double-counting re-selected non-cycle in-arcs)
		// only shows from n=6 nested contractions up.
		n := 2 + rng.Intn(6)
		red := make(Matrix, n)
		for i := range red {
			red[i] = make([]int, n)
			for j := range red[i] {
				if i == j || rng.Intn(5) == 0 {
					red[i][j] = apInf
				} else {
					red[i][j] = rng.Intn(20) - 5 // negative reduced costs occur
				}
			}
		}
		want, wantOK := bruteArborescence(red, 0)
		got, gotOK := minArborescence(red, 0, outdeg[:n])
		if gotOK != wantOK {
			t.Fatalf("n=%d: feasible=%v, brute force says %v for\n%v", n, gotOK, wantOK, red)
		}
		if gotOK && got != want {
			t.Fatalf("n=%d: arborescence cost %d, brute force %d for\n%v", n, got, want, red)
		}
	}
}

// TestLagrangeBoundAdmissible checks the core property of the second rung
// directly: for any multiplier warm start — nil, garbage, or a prior
// node's output — lagrangeBound never exceeds the optimal cyclic tour.
func TestLagrangeBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 60; iter++ {
		n := 4 + rng.Intn(5) // 4..8
		m := randomMatrix(rng, n, 10)
		w := m.Clone()
		for i := 0; i < n; i++ {
			w[i][i] = Inf
		}
		opt := bruteForce(m)
		garbage := make([]int, n)
		for i := range garbage {
			garbage[i] = rng.Intn(9) - 4
		}
		for _, warm := range [][]int{nil, garbage} {
			lb, mult := lagrangeBound(w, warm, opt)
			if lb > opt {
				t.Fatalf("n=%d warm=%v: bound %d exceeds optimum %d for\n%v", n, warm, lb, opt, m)
			}
			// The returned multipliers must keep the bound admissible when
			// fed back in — the warm-start path every child node takes.
			if lb2, _ := lagrangeBound(w, mult, opt); lb2 > opt {
				t.Fatalf("n=%d: rewarmed bound %d exceeds optimum %d", n, lb2, opt)
			}
		}
	}
}

// TestLagrangeBoundInfeasible: a node with every in-arc walled has no
// spanning arborescence and no tour; the bound must say Inf.
func TestLagrangeBoundInfeasible(t *testing.T) {
	w := Matrix{
		{Inf, 1, Inf},
		{1, Inf, Inf},
		{1, 1, Inf}, // node 2 unreachable
	}
	if lb, _ := lagrangeBound(w, nil, 100); lb < Inf {
		t.Fatalf("infeasible instance bounded at %d, want Inf", lb)
	}
}

// TestEscalatedBoundAdmissible is TestAPBoundAdmissible with the ladder
// forced: every eligible node climbs to the Lagrangian rung, and the
// bound the hook observes — now the max of both rungs — must still
// lower-bound the optimal tour of the node's constrained matrix.
func TestEscalatedBoundAdmissible(t *testing.T) {
	bbForceEscalate = true
	defer func() { bbForceEscalate = false }()
	rng := rand.New(rand.NewSource(20260809))
	for iter := 0; iter < 12; iter++ {
		n := 5 + rng.Intn(5) // 5..9: at or above bbEscalateMinN
		m := randomMatrix(rng, n, 8)
		opt := bruteForce(m)
		warm, _ := Patch(m)
		for _, workers := range []int{1, 4} {
			_, cost, nodes := collectBounds(t, m, SolveOptions{Workers: workers, WarmTour: warm})
			if cost != opt {
				t.Fatalf("n=%d workers=%d: cost %d, brute force %d", n, workers, cost, opt)
			}
			for _, nd := range nodes {
				if nd.lb >= Inf {
					continue
				}
				if bf := bruteForce(nd.w); nd.lb > bf {
					t.Errorf("n=%d workers=%d: inadmissible escalated bound %d > optimum %d for\n%v",
						n, workers, nd.lb, bf, nd.w)
				}
			}
		}
	}
}

// TestEscalationEquivalence asserts the ladder's byte-identity contract:
// a solve with every node force-escalated returns exactly the tour and
// cost of the plain AP-bounded solve, at any worker count, warm or cold.
func TestEscalationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 20; iter++ {
		n := 5 + rng.Intn(5)
		m := randomMatrix(rng, n, 4) // tight cost range: tie pressure
		want, wantCost, err := BranchBoundOpt(nil, m, SolveOptions{Workers: 1})
		if err != nil {
			t.Fatalf("baseline solve: %v", err)
		}
		warm, _ := Patch(m)
		bbForceEscalate = true
		for _, workers := range []int{1, 4} {
			for _, wt := range [][]int{nil, warm} {
				got, gotCost, err := BranchBoundOpt(nil, m, SolveOptions{Workers: workers, WarmTour: wt})
				if err != nil {
					bbForceEscalate = false
					t.Fatalf("escalated solve: %v", err)
				}
				if gotCost != wantCost || !reflect.DeepEqual(got, want) {
					bbForceEscalate = false
					t.Fatalf("n=%d workers=%d warm=%v: escalated tour %v cost %d, baseline %v cost %d",
						n, workers, wt != nil, got, gotCost, want, wantCost)
				}
			}
		}
		bbForceEscalate = false
	}
}

// TestEnumAPBoundAdmissible checks the enumeration's second rung against
// brute force: for random partial-path states, the assignment bound never
// exceeds the cheapest completion of the path through v.
func TestEnumAPBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rem := make([]int, 8)
	for iter := 0; iter < 120; iter++ {
		n := 4 + rng.Intn(4) // 4..7
		m := randomMatrix(rng, n, 10)
		visited := make([]bool, n)
		k := rng.Intn(n - 2) // leave at least two unvisited: v plus one more
		for c := 0; c < k; c++ {
			visited[rng.Intn(n)] = true
		}
		v := -1
		for w := 0; w < n; w++ {
			if !visited[w] {
				v = w
				break
			}
		}
		// Brute-force cheapest suffix: v first, then every order of the rest.
		var unv []int
		for w := 0; w < n; w++ {
			if !visited[w] && w != v {
				unv = append(unv, w)
			}
		}
		if len(unv) == 0 {
			continue
		}
		best := Inf
		perm := append([]int(nil), unv...)
		var rec func(last, k, cost int)
		rec = func(last, k, cost int) {
			if k == len(perm) {
				if cost < best {
					best = cost
				}
				return
			}
			for i := k; i < len(perm); i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(perm[k], k+1, cost+m[last][perm[k]])
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(v, 0, 0)
		if lb := enumAPBound(m, visited, v, rem); lb > best {
			t.Fatalf("n=%d visited=%v v=%d: bound %d exceeds cheapest suffix %d for\n%v",
				n, visited, v, lb, best, m)
		}
	}
}

// TestOptimalPathsMatchBruteForce is the enumeration's byte-identity
// regression: the emitted optimal-path list — contents AND order — must
// equal the lexicographic brute-force enumeration of cost-optimal paths,
// whatever bounds pruned the search tree.
func TestOptimalPathsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20260810))
	for iter := 0; iter < 24; iter++ {
		n := 4 + rng.Intn(4) // 4..7
		m := randomMatrix(rng, n, 4)
		starts := make([]int, n)
		for i := range starts {
			starts[i] = rng.Intn(3)
		}
		// Brute force in lexicographic DFS order, the order rec emits in.
		var want [][]int
		best := Inf
		cur := make([]int, 0, n)
		used := make([]bool, n)
		var rec func(cost int)
		rec = func(cost int) {
			if len(cur) == n {
				if cost < best {
					best = cost
					want = want[:0]
				}
				if cost == best {
					want = append(want, append([]int(nil), cur...))
				}
				return
			}
			for v := 0; v < n; v++ {
				if used[v] {
					continue
				}
				step := starts[v]
				if len(cur) > 0 {
					step = m[cur[len(cur)-1]][v]
				}
				used[v] = true
				cur = append(cur, v)
				rec(cost + step)
				cur = cur[:len(cur)-1]
				used[v] = false
			}
		}
		rec(0)
		got, cost, err := OptimalPaths(m, starts, len(want)+8)
		if err != nil {
			t.Fatalf("OptimalPaths: %v", err)
		}
		if cost != best {
			t.Fatalf("n=%d: optimal cost %d, brute force %d", n, cost, best)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: emitted paths diverge from brute force\ngot:  %v\nwant: %v", n, got, want)
		}
	}
}

// FuzzEscalationEquivalence fuzzes the full ladder contract: forced
// escalation returns the byte-identical tour of the unescalated solve,
// sequential and parallel, and the cost matches Held–Karp.
func FuzzEscalationEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(6))
	f.Add(int64(20260808), uint8(9))
	f.Add(int64(-3), uint8(250))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8) {
		n := 5 + int(nRaw%5) // 5..9
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, n, 2+int(nRaw%12))
		cold, coldCost, err := BranchBoundOpt(nil, m, SolveOptions{Workers: 1})
		if err != nil {
			t.Fatalf("cold solve: %v", err)
		}
		if _, hk, err := HeldKarp(m); err != nil || hk != coldCost {
			t.Fatalf("Held-Karp cost %d (err %v), branch and bound %d", hk, err, coldCost)
		}
		bbForceEscalate = true
		defer func() { bbForceEscalate = false }()
		for _, workers := range []int{1, 4} {
			got, gotCost, err := BranchBoundOpt(nil, m, SolveOptions{Workers: workers})
			if err != nil {
				t.Fatalf("escalated solve (workers=%d): %v", workers, err)
			}
			if gotCost != coldCost || !reflect.DeepEqual(got, cold) {
				t.Fatalf("workers=%d: escalated tour %v cost %d, cold %v cost %d",
					workers, got, gotCost, cold, coldCost)
			}
		}
	})
}
