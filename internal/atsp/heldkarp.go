package atsp

import (
	"fmt"

	"marchgen/internal/budget"
	"marchgen/internal/obs"
)

// heldKarpLimit bounds the O(n²·2ⁿ) dynamic program.
const heldKarpLimit = 20

// HeldKarp solves the cyclic ATSP exactly with the Held–Karp dynamic
// program. It is practical up to heldKarpLimit nodes and serves as the
// independent reference for the branch-and-bound solver.
func HeldKarp(m Matrix) ([]int, int, error) {
	return HeldKarpMeter(nil, m)
}

// HeldKarpMeter is HeldKarp under a budget meter: every expanded DP state
// (mask, v) charges the meter, so the solve aborts with a typed error on
// context cancellation or node-budget exhaustion (nil meter: unbounded).
func HeldKarpMeter(mt *budget.Meter, m Matrix) ([]int, int, error) {
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(m)
	if n == 1 {
		return []int{0}, 0, nil
	}
	if n > heldKarpLimit {
		return nil, 0, fmt.Errorf("atsp: Held–Karp limited to %d nodes, got %d", heldKarpLimit, n)
	}
	run := obs.From(mt.Context())
	states := 0
	sp := run.StartUnder("atsp/heldkarp").SetInt("n", int64(n))
	defer func() {
		sp.SetInt("states", int64(states)).End()
		run.Counter("atsp.heldkarp.states").Add(int64(states))
		// DP states are this regime's search nodes for the progress probes.
		run.Progress().AddNodes(int64(states))
	}()
	// dp[mask][v]: cheapest cost of starting at 0, visiting exactly the
	// nodes of mask (which always contains 0 and v), ending at v.
	size := 1 << n
	dp := make([][]int32, size)
	parent := make([][]int8, size)
	for mask := range dp {
		dp[mask] = make([]int32, n)
		parent[mask] = make([]int8, n)
		for v := range dp[mask] {
			dp[mask][v] = int32(Inf) * 4
			parent[mask][v] = -1
		}
	}
	dp[1][0] = 0
	for mask := 1; mask < size; mask++ {
		if mask&1 == 0 {
			continue
		}
		for v := 0; v < n; v++ {
			if mask&(1<<v) == 0 || dp[mask][v] >= int32(Inf)*4 {
				continue
			}
			if err := mt.Node(); err != nil {
				return nil, 0, err
			}
			states++
			for w := 1; w < n; w++ {
				if mask&(1<<w) != 0 {
					continue
				}
				nm := mask | 1<<w
				cost := dp[mask][v] + int32(m[v][w])
				if cost < dp[nm][w] {
					dp[nm][w] = cost
					parent[nm][w] = int8(v)
				}
			}
		}
	}
	full := size - 1
	best, bestEnd := int32(Inf)*4, -1
	for v := 1; v < n; v++ {
		if c := dp[full][v] + int32(m[v][0]); c < best {
			best, bestEnd = c, v
		}
	}
	if bestEnd < 0 {
		return nil, 0, fmt.Errorf("atsp: no tour found")
	}
	// The DP is exact in one pass: the optimum doubles as incumbent and
	// bound, so progress readers see the solve land already converged.
	sp.SetInt("incumbent", int64(best)).SetInt("bound", int64(best))
	run.Progress().Search(int64(best), int64(best))
	tour := make([]int, 0, n)
	mask, v := full, bestEnd
	for v != -1 {
		tour = append(tour, v)
		pv := parent[mask][v]
		mask &^= 1 << v
		v = int(pv)
	}
	// The walk above ends at node 0 (parent -1); reverse into tour order.
	for i, j := 0, len(tour)-1; i < j; i, j = i+1, j-1 {
		tour[i], tour[j] = tour[j], tour[i]
	}
	return canonical(tour), int(best), nil
}
