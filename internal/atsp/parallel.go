package atsp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"marchgen/internal/budget"
	"marchgen/internal/obs"
)

// progressFlush is how many locally counted node expansions a worker
// accumulates before flushing them into the shared live-progress cell —
// large enough to keep the shared atomic off the per-node path, small
// enough that the streamed node rate tracks a long solve closely.
const progressFlush = 1024

// unset is the incumbent sentinel before any feasible tour is known. It is
// far above any reachable tour cost yet small enough that comparisons
// against lower bounds (themselves capped near Inf) cannot overflow.
const unset = int64(Inf) * 4

// BranchBoundWorkers is BranchBoundMeter explored by `workers` goroutines.
// Each worker owns a double-ended queue of open subproblems: it pushes and
// pops at the tail (depth-first, keeping the memory footprint small) while
// idle workers steal from the head (the shallowest, largest subtrees —
// the classic work-stealing discipline). The incumbent bound is a shared
// atomic, so an improvement found by any worker immediately prunes every
// other worker's subtree; the incumbent tour itself is updated under a
// mutex with a deterministic tie-break (lexicographically smallest
// canonical tour among equal-cost optima). Because subtrees are pruned
// only on a *strictly* worse bound, the set of optimal tours the search
// reaches is schedule-independent and the returned tour — not just its
// cost — is identical at any worker count.
//
// Budget semantics match the sequential solver: every expanded subproblem
// charges mt.Node(), so hard cancellation and ATSP node-budget exhaustion
// abort the whole solve with the same typed errors. workers <= 1 runs the
// same engine on the calling goroutine.
func BranchBoundWorkers(mt *budget.Meter, m Matrix, workers int) ([]int, int, error) {
	return BranchBoundOpt(mt, m, SolveOptions{Workers: workers})
}

// bbShared is the state the branch-and-bound workers share.
type bbShared struct {
	orig   Matrix
	mt     *budget.Meter
	queues []bbQueue

	// bound is the incumbent tour cost, read lock-free in the hot pruning
	// path; best is the incumbent tour, guarded by mu.
	bound atomic.Int64
	mu    sync.Mutex
	best  []int

	// prog is the run's live-progress surface (nil-safe) and rootLB the
	// root relaxation bound: offer publishes every incumbent improvement
	// against it, and workers flush expanded-node batches into it.
	prog   *obs.Progress
	rootLB int64

	// outstanding counts open subproblems not yet fully expanded; the
	// search is done when it reaches zero.
	outstanding atomic.Int64
	// stop latches an abort (cancellation, budget exhaustion).
	stop  atomic.Bool
	errMu sync.Mutex
	err   error

	// expanded/pruned/steals/escalated/escPruned aggregate the workers'
	// search effort for the observability metrics; each worker
	// accumulates locally and flushes once on exit, so the hot loop
	// stays free of shared writes.
	expanded  atomic.Int64
	pruned    atomic.Int64
	steals    atomic.Int64
	escalated atomic.Int64
	escPruned atomic.Int64

	// windows holds one slackness window per worker (each written only
	// by its owner): the escalation trigger of the bound ladder.
	windows []slackWindow
}

// bbQueue is one worker's deque of open subproblems: the owner pushes and
// pops at the tail, thieves steal at the head.
type bbQueue struct {
	mu    sync.Mutex
	nodes []bbNode
}

func (q *bbQueue) push(nd bbNode) {
	q.mu.Lock()
	q.nodes = append(q.nodes, nd)
	q.mu.Unlock()
}

func (q *bbQueue) pop() (bbNode, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.nodes) == 0 {
		return bbNode{}, false
	}
	nd := q.nodes[len(q.nodes)-1]
	q.nodes = q.nodes[:len(q.nodes)-1]
	return nd, true
}

func (q *bbQueue) steal() (bbNode, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.nodes) == 0 {
		return bbNode{}, false
	}
	nd := q.nodes[0]
	q.nodes = q.nodes[1:]
	return nd, true
}

func (s *bbShared) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.stop.Store(true)
}

func (s *bbShared) failure() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// offer records a feasible tour, keeping the cheapest — and among
// equal-cost optima the lexicographically smallest canonical tour, so the
// final incumbent does not depend on which worker found it first.
func (s *bbShared) offer(cycle []int) {
	cost := int64(s.orig.TourCost(cycle))
	if cost > s.bound.Load() {
		return
	}
	tour := canonical(cycle)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.bound.Load()
	if cost < cur || (cost == cur && (s.best == nil || lexLess(tour, s.best))) {
		s.best = tour
		s.bound.Store(cost)
		s.prog.Search(cost, s.rootLB)
	}
}

// worker drains its own deque depth-first and steals from its peers when
// empty, exiting when every open subproblem has been expanded. Search
// effort is counted in locals and flushed to the shared totals once.
func (s *bbShared) worker(id int) {
	var expanded, pruned, steals, escalated, escPruned, flushed int64
	defer func() {
		s.expanded.Add(expanded)
		s.pruned.Add(pruned)
		s.steals.Add(steals)
		s.escalated.Add(escalated)
		s.escPruned.Add(escPruned)
		s.prog.AddNodes(expanded - flushed)
	}()
	for {
		if s.stop.Load() {
			return
		}
		// Batch the live node count out of the hot loop: one shared
		// atomic add per progressFlush expansions, not one per node.
		if expanded-flushed >= progressFlush {
			s.prog.AddNodes(expanded - flushed)
			flushed = expanded
		}
		nd, ok := s.queues[id].pop()
		if !ok {
			for k := 1; k < len(s.queues) && !ok; k++ {
				nd, ok = s.queues[(id+k)%len(s.queues)].steal()
			}
			if ok {
				steals++
			}
		}
		if !ok {
			if s.outstanding.Load() == 0 {
				return
			}
			runtime.Gosched()
			continue
		}
		s.expand(id, nd, &expanded, &pruned, &escalated, &escPruned)
		s.outstanding.Add(-1)
	}
}

// expand processes one subproblem: bound it by re-augmenting the inherited
// assignment state (only the rows the branching constraints dirtied),
// record it when the assignment is a feasible tour, otherwise branch on
// the shortest subtour exactly as the CDT scheme prescribes. Pruning is
// strict (bound must *exceed* the incumbent cost): a subproblem whose
// bound ties the incumbent may still hold an equal-cost tour that wins the
// lexicographic tie-break, and exploring all of them is what makes the
// returned tour schedule-independent.
//
// When the assignment bound fails to prune and the worker's slackness
// window shows it has been failing lately, the node climbs the bound
// ladder: the Lagrangian 1-arborescence bound (see escalate.go),
// warm-started from the nearest escalated ancestor's multipliers,
// replaces the AP bound when stronger. Any admissible bound preserves
// the strict-prune contract, so escalation moves node counts, never the
// returned tour.
func (s *bbShared) expand(id int, nd bbNode, expanded, pruned, escalated, escPruned *int64) {
	if err := s.mt.Node(); err != nil {
		s.fail(err)
		nd.release()
		return
	}
	*expanded++
	rowToCol, lb := nd.ap.solve(nd.w)
	inc := s.bound.Load()
	apPruned := int64(lb) > inc || lb >= Inf
	didEscalate := false
	if !apPruned && inc != unset && len(nd.w) >= bbEscalateMinN &&
		(bbForceEscalate || s.windows[id].slack()) {
		didEscalate = true
		*escalated++
		lag, mult := lagrangeBound(nd.w, nd.lag, int(inc))
		nd.lag = mult
		if lag > lb {
			lb = lag
		}
	}
	if hook := bbBoundHook; hook != nil {
		hook(nd.w, lb)
	}
	s.windows[id].record(apPruned)
	if int64(lb) > s.bound.Load() || lb >= Inf {
		*pruned++
		if didEscalate && !apPruned {
			*escPruned++
		}
		nd.release()
		return
	}
	cycle := shortestSubtour(rowToCol)
	if len(cycle) == len(rowToCol) {
		s.offer(cycle)
		nd.release()
		return
	}
	for _, child := range bbBranch(nd, rowToCol, cycle) {
		s.outstanding.Add(1)
		s.queues[id].push(child)
	}
	nd.release()
}

// lexLess orders tours lexicographically.
func lexLess(a, b []int) bool {
	for k := range a {
		if k >= len(b) {
			return false
		}
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

// SolveExactWorkers dispatches like SolveExact with a worker count for the
// branch-and-bound regime (Held–Karp is a sequential dynamic program and
// already fast for every instance it handles).
func SolveExactWorkers(mt *budget.Meter, m Matrix, workers int) ([]int, int, error) {
	return SolveExactOpt(mt, m, SolveOptions{Workers: workers})
}
