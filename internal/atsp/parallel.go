package atsp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"marchgen/internal/budget"
	"marchgen/internal/obs"
)

// unset is the incumbent sentinel before any feasible tour is known. It is
// far above any reachable tour cost yet small enough that comparisons
// against lower bounds (themselves capped near Inf) cannot overflow.
const unset = int64(Inf) * 4

// BranchBoundWorkers is BranchBoundMeter explored by `workers` goroutines.
// Each worker owns a double-ended queue of open subproblems: it pushes and
// pops at the tail (depth-first, keeping the memory footprint small) while
// idle workers steal from the head (the shallowest, largest subtrees —
// the classic work-stealing discipline). The incumbent bound is a shared
// atomic, so an improvement found by any worker immediately prunes every
// other worker's subtree; the incumbent tour itself is updated under a
// mutex with a deterministic tie-break (lexicographically smallest
// canonical tour among equal-cost optima), so the optimal *cost* — the
// only thing the generation pipeline consumes — is schedule-independent
// and exact at any worker count.
//
// Budget semantics match the sequential solver: every expanded subproblem
// charges mt.Node(), so hard cancellation and ATSP node-budget exhaustion
// abort the whole solve with the same typed errors. workers <= 1 runs the
// sequential solver unchanged.
func BranchBoundWorkers(mt *budget.Meter, m Matrix, workers int) ([]int, int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return BranchBoundMeter(mt, m)
	}
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(m)
	if n == 1 {
		return []int{0}, 0, nil
	}
	work := m.Clone()
	for i := 0; i < n; i++ {
		work[i][i] = Inf
	}
	run := obs.From(mt.Context())
	sp := run.StartUnder("atsp/branchbound").
		SetInt("n", int64(n)).
		SetInt("workers", int64(workers))
	s := &bbShared{orig: m, mt: mt, queues: make([]bbQueue, workers)}
	s.bound.Store(unset)
	if tour, cost := bestHeuristic(m); validTour(n, tour) && cost < Inf {
		s.best = canonical(tour)
		s.bound.Store(int64(cost))
	}
	s.outstanding.Add(1)
	s.queues[0].push(work)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			s.worker(id)
		}(w)
	}
	wg.Wait()
	// Aggregated work-stealing totals are schedule-dependent, so they go
	// to the metrics registry only — span attributes stay deterministic.
	run.Counter("atsp.bb.expanded").Add(s.expanded.Load())
	run.Counter("atsp.bb.pruned").Add(s.pruned.Load())
	run.Counter("atsp.bb.steals").Add(s.steals.Load())
	sp.End()
	if err := s.failure(); err != nil {
		return nil, 0, err
	}
	if s.best == nil {
		return nil, 0, fmt.Errorf("atsp: no feasible tour")
	}
	return s.best, int(s.bound.Load()), nil
}

// bbShared is the state the branch-and-bound workers share.
type bbShared struct {
	orig   Matrix
	mt     *budget.Meter
	queues []bbQueue

	// bound is the incumbent tour cost, read lock-free in the hot pruning
	// path; best is the incumbent tour, guarded by mu.
	bound atomic.Int64
	mu    sync.Mutex
	best  []int

	// outstanding counts open subproblems not yet fully expanded; the
	// search is done when it reaches zero.
	outstanding atomic.Int64
	// stop latches an abort (cancellation, budget exhaustion).
	stop  atomic.Bool
	errMu sync.Mutex
	err   error

	// expanded/pruned/steals aggregate the workers' search effort for
	// the observability metrics; each worker accumulates locally and
	// flushes once on exit, so the hot loop stays free of shared writes.
	expanded atomic.Int64
	pruned   atomic.Int64
	steals   atomic.Int64
}

// bbQueue is one worker's deque of open subproblems: the owner pushes and
// pops at the tail, thieves steal at the head.
type bbQueue struct {
	mu    sync.Mutex
	nodes []Matrix
}

func (q *bbQueue) push(w Matrix) {
	q.mu.Lock()
	q.nodes = append(q.nodes, w)
	q.mu.Unlock()
}

func (q *bbQueue) pop() (Matrix, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.nodes) == 0 {
		return nil, false
	}
	w := q.nodes[len(q.nodes)-1]
	q.nodes = q.nodes[:len(q.nodes)-1]
	return w, true
}

func (q *bbQueue) steal() (Matrix, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.nodes) == 0 {
		return nil, false
	}
	w := q.nodes[0]
	q.nodes = q.nodes[1:]
	return w, true
}

func (s *bbShared) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.stop.Store(true)
}

func (s *bbShared) failure() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// offer records a feasible tour, keeping the cheapest — and among
// equal-cost optima the lexicographically smallest canonical tour, so the
// final incumbent does not depend on which worker found it first.
func (s *bbShared) offer(cycle []int) {
	cost := int64(s.orig.TourCost(cycle))
	if cost > s.bound.Load() {
		return
	}
	tour := canonical(cycle)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.bound.Load()
	if cost < cur || (cost == cur && (s.best == nil || lexLess(tour, s.best))) {
		s.best = tour
		s.bound.Store(cost)
	}
}

// worker drains its own deque depth-first and steals from its peers when
// empty, exiting when every open subproblem has been expanded. Search
// effort is counted in locals and flushed to the shared totals once.
func (s *bbShared) worker(id int) {
	var expanded, pruned, steals int64
	defer func() {
		s.expanded.Add(expanded)
		s.pruned.Add(pruned)
		s.steals.Add(steals)
	}()
	for {
		if s.stop.Load() {
			return
		}
		w, ok := s.queues[id].pop()
		if !ok {
			for k := 1; k < len(s.queues) && !ok; k++ {
				w, ok = s.queues[(id+k)%len(s.queues)].steal()
			}
			if ok {
				steals++
			}
		}
		if !ok {
			if s.outstanding.Load() == 0 {
				return
			}
			runtime.Gosched()
			continue
		}
		s.expand(id, w, &expanded, &pruned)
		s.outstanding.Add(-1)
	}
}

// expand processes one subproblem: bound it by the assignment relaxation,
// record it when it is a feasible tour, otherwise branch on the shortest
// subtour exactly as the sequential solver does (CDT scheme).
func (s *bbShared) expand(id int, w Matrix, expanded, pruned *int64) {
	if err := s.mt.Node(); err != nil {
		s.fail(err)
		return
	}
	*expanded++
	rowToCol, lb := assignment(w)
	if int64(lb) >= s.bound.Load() || lb >= Inf {
		*pruned++
		return
	}
	cycle := shortestSubtour(rowToCol)
	if len(cycle) == len(rowToCol) {
		s.offer(cycle)
		return
	}
	for k := 0; k < len(cycle); k++ {
		child := w.Clone()
		from, to := cycle[k], cycle[(k+1)%len(cycle)]
		child[from][to] = Inf
		for f := 0; f < k; f++ {
			ff, ft := cycle[f], cycle[(f+1)%len(cycle)]
			for j := range child[ff] {
				if j != ft {
					child[ff][j] = Inf
				}
			}
			for i := range child {
				if i != ff {
					child[i][ft] = Inf
				}
			}
		}
		s.outstanding.Add(1)
		s.queues[id].push(child)
	}
}

// lexLess orders tours lexicographically.
func lexLess(a, b []int) bool {
	for k := range a {
		if k >= len(b) {
			return false
		}
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

// SolveExactWorkers dispatches like SolveExact with a worker count for the
// branch-and-bound regime (Held–Karp is a sequential dynamic program and
// already fast for every instance it handles).
func SolveExactWorkers(mt *budget.Meter, m Matrix, workers int) ([]int, int, error) {
	if len(m) <= 13 {
		return HeldKarpMeter(mt, m)
	}
	return BranchBoundWorkers(mt, m, workers)
}
