package atsp

// Patch implements Karp's patching heuristic, the classic companion of the
// assignment-relaxation branch and bound used by Carpaneto, Dell'Amico and
// Toth: solve the assignment problem, then repeatedly merge the two
// largest subtours by the cheapest 2-exchange until a single Hamiltonian
// cycle remains. It is near-optimal on random asymmetric instances and
// much faster than the exact search; the package tests bound its gap
// against the optimum.
func Patch(m Matrix) ([]int, int) {
	n := len(m)
	if n == 1 {
		return []int{0}, 0
	}
	work := m.Clone()
	for i := 0; i < n; i++ {
		work[i][i] = Inf
	}
	rowToCol, _ := assignment(work)
	next := append([]int(nil), rowToCol...)

	// Identify subtours.
	tourOf := make([]int, n)
	var tours [][]int
	seen := make([]bool, n)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var cyc []int
		for v := s; !seen[v]; v = next[v] {
			seen[v] = true
			tourOf[v] = len(tours)
			cyc = append(cyc, v)
		}
		tours = append(tours, cyc)
	}

	for len(tours) > 1 {
		// Pick the two largest subtours.
		a, b := 0, 1
		for k := range tours {
			if len(tours[k]) > len(tours[a]) {
				b = a
				a = k
			} else if k != a && len(tours[k]) > len(tours[b]) {
				b = k
			}
		}
		if a == b {
			b = (a + 1) % len(tours)
		}
		// Cheapest patch: pick i in tour a, j in tour b, replace arcs
		// (i, next[i]) and (j, next[j]) with (i, next[j]) and (j, next[i]).
		bestDelta, bi, bj := Inf*4, -1, -1
		for _, i := range tours[a] {
			for _, j := range tours[b] {
				delta := m[i][next[j]] + m[j][next[i]] - m[i][next[i]] - m[j][next[j]]
				if delta < bestDelta {
					bestDelta, bi, bj = delta, i, j
				}
			}
		}
		next[bi], next[bj] = next[bj], next[bi]
		// Merge tour b into tour a.
		merged := append(append([]int(nil), tours[a]...), tours[b]...)
		for _, v := range merged {
			tourOf[v] = a
		}
		tours[a] = merged
		tours = append(tours[:b], tours[b+1:]...)
		// Re-index tourOf after the slice shrink.
		for k := range tours {
			for _, v := range tours[k] {
				tourOf[v] = k
			}
		}
	}

	tour := make([]int, 0, n)
	for v := 0; len(tour) < n; v = next[v] {
		tour = append(tour, v)
	}
	return canonical(tour), m.TourCost(tour)
}
