// Allocation reuse for the branch-and-bound hot path. Every expanded
// subproblem used to allocate a fresh constrained matrix, a fresh
// assignment-state clone and fresh augmenting-search scratch; the deeper
// trees the escalated bounds explore made that a measurable GC tax. The
// pools below recycle all three: a node returns its matrix and assignment
// state the moment it has been expanded (pruned, recorded or branched),
// and the next expansion reuses them without touching the allocator.
//
// Safety argument: a bbNode is expanded exactly once, by exactly one
// worker, and nothing outlives the expansion that references its matrix
// or assignment state — children clone both before the parent releases,
// the incumbent is recorded against the original matrix, and the bound
// hook contract requires test hooks to clone what they keep.
package atsp

import "sync"

// apPool recycles assignment states across branch-and-bound nodes.
var apPool = sync.Pool{New: func() any { return &apState{} }}

// apStateFor returns a zeroed assignment state for an n×n instance,
// reusing a pooled one when available.
func apStateFor(n int) *apState {
	s := apPool.Get().(*apState)
	s.reset(n)
	return s
}

// release returns the state to the pool. The caller must not touch it
// afterwards.
func (s *apState) release() {
	if s != nil {
		apPool.Put(s)
	}
}

// reset sizes the state for an n×n instance and clears the matching and
// potentials (the augmenting-search scratch is sized lazily by augment).
func (s *apState) reset(n int) {
	s.n = n
	s.u = resizeInts(s.u, n+1)
	s.v = resizeInts(s.v, n+1)
	s.p = resizeInts(s.p, n+1)
	s.row = resizeInts(s.row, n+1)
	for i := 0; i <= n; i++ {
		s.u[i], s.v[i], s.p[i], s.row[i] = 0, 0, 0, 0
	}
}

// copyFrom makes s a deep copy of src (scratch excluded — it holds no
// state between augmentations).
func (s *apState) copyFrom(src *apState) {
	s.n = src.n
	s.u = append(s.u[:0], src.u...)
	s.v = append(s.v[:0], src.v...)
	s.p = append(s.p[:0], src.p...)
	s.row = append(s.row[:0], src.row...)
}

// clonePooled is clone backed by the pool: the copy must be released
// when its node has been expanded.
func (s *apState) clonePooled() *apState {
	c := apPool.Get().(*apState)
	c.copyFrom(s)
	return c
}

// resizeInts returns a slice of length n, reusing b's backing array when
// it is large enough.
func resizeInts(b []int, n int) []int {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int, n)
}

// matrixPool recycles square cost matrices (rows sliced out of one
// contiguous backing array, so a pooled matrix is a single allocation).
var matrixPool sync.Pool

// matrixFor returns an n×n matrix with undefined contents, reusing a
// pooled one of the right order when available.
func matrixFor(n int) Matrix {
	if v := matrixPool.Get(); v != nil {
		if m := v.(Matrix); len(m) == n && len(m[0]) == n {
			return m
		}
		// Wrong order: drop it and allocate fresh below.
	}
	back := make([]int, n*n)
	m := make(Matrix, n)
	for i := range m {
		m[i] = back[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}

// releaseMatrix returns a matrix to the pool; callers must drop every
// reference first. Nil and ragged matrices are ignored.
func releaseMatrix(m Matrix) {
	if len(m) > 0 && len(m[0]) == len(m) {
		matrixPool.Put(m)
	}
}

// cloneInto copies src into a pooled matrix of the same order.
func cloneInto(src Matrix) Matrix {
	dst := matrixFor(len(src))
	for i := range src {
		copy(dst[i], src[i])
	}
	return dst
}
