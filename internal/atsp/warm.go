package atsp

// CompletePath extends a partial open path into a full one by cheapest
// insertion, the warm-start analogue of Patch for the path shape: the §5
// selection sweep keeps the previous selection's optimal visiting order,
// maps the patterns both selections share onto the new instance, and calls
// CompletePath to splice in the handful of nodes the new selection added.
// The result is a feasible (rarely optimal) path whose cost primes the
// next solve's incumbent bound via PathOptions.WarmPath.
//
// partial must list distinct node indices of m in visiting order; indices
// out of range are ignored, duplicates keep their first occurrence. The
// remaining nodes are inserted in index order, each at the position of
// minimal cost increase (startCost charged when displacing the head,
// ending free), which keeps the construction deterministic. The returned
// path visits every node exactly once; cost it with Matrix.PathCost plus
// the start charge.
func CompletePath(m Matrix, startCost []int, partial []int) []int {
	n := len(m)
	if n == 0 {
		return nil
	}
	used := make([]bool, n)
	path := make([]int, 0, n)
	for _, v := range partial {
		if v < 0 || v >= n || used[v] {
			continue
		}
		used[v] = true
		path = append(path, v)
	}
	start := func(v int) int {
		if startCost == nil {
			return 0
		}
		return startCost[v]
	}
	for v := 0; v < n; v++ {
		if used[v] {
			continue
		}
		if len(path) == 0 {
			path = append(path, v)
			continue
		}
		// Position 0: v becomes the new head.
		bestAt := 0
		bestDelta := start(v) + m[v][path[0]] - start(path[0])
		for at := 1; at < len(path); at++ {
			d := m[path[at-1]][v] + m[v][path[at]] - m[path[at-1]][path[at]]
			if d < bestDelta {
				bestAt, bestDelta = at, d
			}
		}
		// Appending at the tail: the path's end is free.
		if d := m[path[len(path)-1]][v]; d < bestDelta {
			bestAt = len(path)
		}
		path = append(path, 0)
		copy(path[bestAt+1:], path[bestAt:])
		path[bestAt] = v
	}
	return path
}
