package atsp

import (
	"fmt"

	"marchgen/internal/budget"
	"marchgen/internal/obs"
)

// OptimalPaths enumerates open paths of exactly the optimal cost (the same
// objective as Path with exact=true): different optimal visits can fold
// into March tests of different quality downstream, so the caller wants
// them all. At most limit paths are returned; the search is additionally
// capped at a fixed node budget as a safety valve (the instances produced
// by Test Pattern Graphs are small).
func OptimalPaths(m Matrix, startCost []int, limit int) ([][]int, int, error) {
	return OptimalPathsMeter(nil, m, startCost, limit)
}

// OptimalPathsMeter is OptimalPaths under a budget meter: both the exact
// solve establishing the optimum and the enumeration charge the meter per
// search node, so the call aborts with a typed error on cancellation or
// node-budget exhaustion (nil meter: only the built-in safety valve).
func OptimalPathsMeter(mt *budget.Meter, m Matrix, startCost []int, limit int) ([][]int, int, error) {
	return OptimalPathsWorkers(mt, m, startCost, limit, 1)
}

// OptimalPathsWorkers is OptimalPathsMeter with a worker count: the exact
// solve establishing the optimal cost runs on `workers` goroutines, while
// the enumeration of cost-optimal paths stays sequential — its emission
// order feeds the rewrite engine and must be identical at any worker
// count. The optimal cost is schedule-independent, so the enumerated set
// is too.
func OptimalPathsWorkers(mt *budget.Meter, m Matrix, startCost []int, limit, workers int) ([][]int, int, error) {
	return OptimalPathsOpt(mt, m, startCost, limit, PathOptions{Workers: workers})
}

// OptimalPathsOpt is OptimalPathsWorkers under PathOptions: the exact
// solve establishing the optimal cost can be warm-started and routed to
// the branch and bound, while the enumeration itself is untouched — its
// emission order feeds the rewrite engine, so the returned paths are
// byte-identical whatever the options. CostOnly is forced: only the
// optimal cost survives into the enumeration, so the establishing solve
// never needs the canonical tour.
func OptimalPathsOpt(mt *budget.Meter, m Matrix, startCost []int, limit int, opt PathOptions) ([][]int, int, error) {
	if limit <= 0 {
		limit = 16
	}
	opt.CostOnly = true
	_, best, err := PathOpt(mt, m, startCost, true, opt)
	if err != nil {
		return nil, 0, err
	}
	n := len(m)
	// minOut[v] is a simple admissible remainder bound: every unvisited
	// node except the last must be left through its cheapest arc.
	minOut := make([]int, n)
	for i := 0; i < n; i++ {
		minOut[i] = Inf
		for j := 0; j < n; j++ {
			if i != j && m[i][j] < minOut[i] {
				minOut[i] = m[i][j]
			}
		}
		if n == 1 {
			minOut[i] = 0
		}
	}
	var paths [][]int
	visited := make([]bool, n)
	cur := make([]int, 0, n)
	rem := make([]int, n)
	const nodeBudget = 500000
	nodes, escalated, escPruned := 0, 0, 0
	var recErr error
	var rec func(cost int)
	rec = func(cost int) {
		if recErr != nil || len(paths) >= limit || nodes > nodeBudget {
			return
		}
		if err := mt.Node(); err != nil {
			recErr = err
			return
		}
		nodes++
		if len(cur) == n {
			if cost == best {
				paths = append(paths, append([]int(nil), cur...))
			}
			return
		}
		last := -1
		if len(cur) > 0 {
			last = cur[len(cur)-1]
		}
		for v := 0; v < n; v++ {
			if visited[v] {
				continue
			}
			step := 0
			if last < 0 {
				if startCost != nil {
					step = startCost[v]
				}
			} else {
				step = m[last][v]
			}
			// Admissible bound: the remaining unvisited nodes (minus the
			// final one) must each be exited once.
			lb := 0
			remaining := 0
			for w := 0; w < n; w++ {
				if !visited[w] && w != v {
					remaining++
					lb += minOut[w]
				}
			}
			if remaining > 0 {
				// The path's final node is not exited: refund the largest
				// of the counted minimal exits... a simpler sound bound is
				// to drop one arbitrary exit; dropping the maximum keeps
				// admissibility.
				maxDrop := 0
				for w := 0; w < n; w++ {
					if !visited[w] && w != v && minOut[w] > maxDrop {
						maxDrop = minOut[w]
					}
				}
				lb -= maxDrop
			}
			if cost+step+lb <= best && remaining >= enumEscalateMinRemaining {
				// Rung one failed to prune: escalate to the assignment
				// bound over the remaining subproblem. Any admissible
				// bound leaves the emitted optimal-path set and its DFS
				// order untouched — a prefix of an optimal path always
				// satisfies cost+step+lb <= best — so only the node count
				// moves.
				escalated++
				if alb := enumAPBound(m, visited, v, rem); alb > lb {
					lb = alb
					if cost+step+lb > best {
						escPruned++
					}
				}
			}
			if cost+step+lb > best {
				continue
			}
			visited[v] = true
			cur = append(cur, v)
			rec(cost + step)
			cur = cur[:len(cur)-1]
			visited[v] = false
		}
	}
	rec(0)
	if run := obs.From(mt.Context()); run != nil {
		run.Counter("atsp.enum.nodes").Add(int64(nodes))
		run.Counter("atsp.enum.escalated").Add(int64(escalated))
		run.Counter("atsp.enum.escpruned").Add(int64(escPruned))
		run.Progress().AddNodes(int64(nodes))
		run.StartUnder("atsp/enumerate").
			SetInt("n", int64(n)).
			SetInt("nodes", int64(nodes)).
			SetInt("paths", int64(len(paths))).
			End()
	}
	if recErr != nil {
		return nil, 0, recErr
	}
	if len(paths) == 0 {
		return nil, 0, fmt.Errorf("atsp: internal error: no path re-achieves the optimal cost %d", best)
	}
	return paths, best, nil
}
