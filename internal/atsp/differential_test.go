package atsp

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"marchgen/internal/budget"
)

// exhaustiveOpenPath enumerates every permutation and returns the optimal
// open-path cost under the start-cost convention of Path: the first node
// pays startCost, every hop pays the arc, the last node is not exited.
func exhaustiveOpenPath(m Matrix, startCost []int) int {
	n := len(m)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := Inf * 4
	var rec func(k, cost int)
	rec = func(k, cost int) {
		if cost >= best {
			return
		}
		if k == n {
			best = cost
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			step := 0
			if k == 0 {
				if startCost != nil {
					step = startCost[perm[0]]
				}
			} else {
				step = m[perm[k-1]][perm[k]]
			}
			rec(k+1, cost+step)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0, 0)
	return best
}

// TestDifferentialTourSolvers cross-checks four independent solvers on
// random asymmetric instances up to n = 10: exhaustive enumeration,
// Held–Karp, the sequential branch-and-bound and the work-stealing
// parallel branch-and-bound at several worker counts must all report the
// same optimal tour cost, and every returned tour must be a valid
// permutation achieving its reported cost.
func TestDifferentialTourSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 2; n <= 10; n++ {
		trials := 6
		if n >= 9 {
			trials = 2 // exhaustive enumeration is (n-1)! per trial
		}
		for trial := 0; trial < trials; trial++ {
			m := randomMatrix(rng, n, 50)
			want := bruteForce(m)
			check := func(name string, tour []int, cost int, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("n=%d trial=%d %s: %v", n, trial, name, err)
				}
				if cost != want {
					t.Fatalf("n=%d trial=%d %s: cost %d, exhaustive says %d", n, trial, name, cost, want)
				}
				if !validTour(n, tour) {
					t.Fatalf("n=%d trial=%d %s: invalid tour %v", n, trial, name, tour)
				}
				if got := m.TourCost(tour); got != cost {
					t.Fatalf("n=%d trial=%d %s: tour %v costs %d, reported %d", n, trial, name, tour, got, cost)
				}
			}
			hkTour, hkCost, hkErr := HeldKarp(m)
			check("held-karp", hkTour, hkCost, hkErr)
			bbTour, bbCost, bbErr := BranchBound(m)
			check("sequential-bb", bbTour, bbCost, bbErr)
			for _, workers := range []int{2, 4} {
				pTour, pCost, pErr := BranchBoundWorkers(nil, m, workers)
				check("parallel-bb", pTour, pCost, pErr)
			}
		}
	}
}

// TestDifferentialOpenPath cross-checks PathWorkers (the open-path
// reduction the generation pipeline actually runs) against exhaustive
// open-path enumeration, with and without start costs, at several worker
// counts.
func TestDifferentialOpenPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 2; n <= 8; n++ {
		for trial := 0; trial < 5; trial++ {
			m := randomMatrix(rng, n, 40)
			var starts []int
			if trial%2 == 0 {
				starts = make([]int, n)
				for i := range starts {
					starts[i] = rng.Intn(10)
				}
			}
			want := exhaustiveOpenPath(m, starts)
			for _, workers := range []int{1, 2, 4} {
				path, cost, err := PathWorkers(nil, m, starts, true, workers)
				if err != nil {
					t.Fatalf("n=%d trial=%d workers=%d: %v", n, trial, workers, err)
				}
				if cost != want {
					t.Fatalf("n=%d trial=%d workers=%d: cost %d, exhaustive says %d", n, trial, workers, cost, want)
				}
				if !validTour(n, path) {
					t.Fatalf("n=%d trial=%d workers=%d: invalid path %v", n, trial, workers, path)
				}
			}
		}
	}
}

// TestParallelCostDeterministic re-solves one instance many times at
// several worker counts: the reported optimal cost must never vary with
// scheduling.
func TestParallelCostDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 9, 30)
	_, want, err := BranchBound(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		for rep := 0; rep < 10; rep++ {
			_, cost, err := BranchBoundWorkers(nil, m, workers)
			if err != nil {
				t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
			}
			if cost != want {
				t.Fatalf("workers=%d rep=%d: cost %d, want %d", workers, rep, cost, want)
			}
		}
	}
}

// twoCycleMatrix builds an instance the assignment relaxation cannot solve
// at the root: each half has one cheap Hamiltonian cycle, so the optimal
// assignment is two disjoint subtours and the branch-and-bound is forced
// to branch. This makes budget/cancellation tests deterministic — a random
// instance can terminate at the root with a single node charge.
func twoCycleMatrix(half int) Matrix {
	n := 2 * half
	m := make(Matrix, n)
	for i := range m {
		m[i] = make([]int, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = 60
			}
		}
	}
	for i := 0; i < half; i++ {
		m[i][(i+1)%half] = 1
		m[half+i][half+(i+1)%half] = 1
	}
	return m
}

// TestParallelBudgetExhaustion checks that the shared meter's node budget
// aborts the parallel solve with the same typed error as the sequential
// one. The two-cycle instance guarantees the root branches, so a budget of
// one node must be exhausted by whichever worker expands a child.
func TestParallelBudgetExhaustion(t *testing.T) {
	m := twoCycleMatrix(6)
	mt := budget.NewMeter(context.Background(), budget.Budget{ATSPNodes: 1})
	_, _, err := BranchBoundWorkers(mt, m, 4)
	if !errors.Is(err, budget.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

// TestParallelCancellation checks that a hard cancellation latched on the
// shared meter (as a pipeline stage boundary would via CheckNow) aborts
// the whole worker pool with the typed error.
func TestParallelCancellation(t *testing.T) {
	m := twoCycleMatrix(6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mt := budget.NewMeter(ctx, budget.Budget{})
	if err := mt.CheckNow(); !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("CheckNow = %v, want ErrCanceled", err)
	}
	_, _, err := BranchBoundWorkers(mt, m, 4)
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestSolveExactWorkersDispatch checks the Held–Karp/branch-and-bound
// dispatch agrees with the sequential SolveExact on both sides of the
// size threshold.
func TestSolveExactWorkersDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{6, 14} {
		m := randomMatrix(rng, n, 25)
		_, want, err := SolveExact(m)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := SolveExactWorkers(nil, m, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d: parallel dispatch cost %d, sequential %d", n, got, want)
		}
	}
}
