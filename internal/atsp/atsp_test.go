package atsp

import (
	"math/rand"
	"testing"
)

// bruteForce computes the optimal cyclic tour by enumerating permutations.
func bruteForce(m Matrix) int {
	n := len(m)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := Inf * 4
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if c := m.TourCost(perm); c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(1) // fix node 0 first: tours are rotation-invariant
	return best
}

func randomMatrix(rng *rand.Rand, n, maxCost int) Matrix {
	m := make(Matrix, n)
	for i := range m {
		m[i] = make([]int, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = rng.Intn(maxCost)
			}
		}
	}
	return m
}

func TestValidate(t *testing.T) {
	if err := (Matrix{}).Validate(); err == nil {
		t.Error("empty matrix must fail")
	}
	if err := (Matrix{{0, 1}}).Validate(); err == nil {
		t.Error("non-square matrix must fail")
	}
	if err := (Matrix{{0, -1}, {1, 0}}).Validate(); err == nil {
		t.Error("negative cost must fail")
	}
	if err := (Matrix{{0, 1}, {1, 0}}).Validate(); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
}

func TestHeldKarpTiny(t *testing.T) {
	m := Matrix{
		{0, 1, 9},
		{9, 0, 1},
		{1, 9, 0},
	}
	tour, cost, err := HeldKarp(m)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 3 {
		t.Errorf("cost %d, want 3", cost)
	}
	if m.TourCost(tour) != cost {
		t.Errorf("tour %v does not match reported cost", tour)
	}
}

func TestHeldKarpSingleNode(t *testing.T) {
	tour, cost, err := HeldKarp(Matrix{{0}})
	if err != nil || cost != 0 || len(tour) != 1 {
		t.Errorf("single node: %v %d %v", tour, cost, err)
	}
}

func TestHeldKarpLimit(t *testing.T) {
	m := randomMatrix(rand.New(rand.NewSource(1)), heldKarpLimit+1, 10)
	if _, _, err := HeldKarp(m); err == nil {
		t.Error("oversize instance must be rejected")
	}
}

func TestAssignmentAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		m := randomMatrix(rng, n, 50)
		// Brute-force assignment (permutations, no cycle structure).
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		best := Inf
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				c := 0
				for i, j := range perm {
					c += m[i][j]
				}
				if c < best {
					best = c
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		_, cost := assignment(m)
		if cost != best {
			t.Fatalf("trial %d: assignment cost %d, brute force %d\n%v", trial, cost, best, m)
		}
	}
}

func TestExactSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		m := randomMatrix(rng, n, 30)
		want := bruteForce(m)
		hkTour, hkCost, err := HeldKarp(m)
		if err != nil {
			t.Fatal(err)
		}
		bbTour, bbCost, err := BranchBound(m)
		if err != nil {
			t.Fatal(err)
		}
		if hkCost != want || bbCost != want {
			t.Fatalf("trial %d (n=%d): brute %d, held-karp %d, b&b %d", trial, n, want, hkCost, bbCost)
		}
		if !validTour(n, hkTour) || m.TourCost(hkTour) != hkCost {
			t.Fatalf("held-karp tour invalid: %v", hkTour)
		}
		if !validTour(n, bbTour) || m.TourCost(bbTour) != bbCost {
			t.Fatalf("b&b tour invalid: %v", bbTour)
		}
	}
}

func TestBranchBoundLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		n := 14 + rng.Intn(5)
		m := randomMatrix(rng, n, 40)
		hkTour, hkCost, err := HeldKarp(m)
		if err != nil {
			t.Fatal(err)
		}
		bbTour, bbCost, err := BranchBound(m)
		if err != nil {
			t.Fatal(err)
		}
		if bbCost != hkCost {
			t.Fatalf("n=%d: b&b %d vs held-karp %d", n, bbCost, hkCost)
		}
		_ = hkTour
		if !validTour(n, bbTour) {
			t.Fatalf("invalid tour %v", bbTour)
		}
	}
}

func TestHeuristicsValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(7)
		m := randomMatrix(rng, n, 25)
		opt := bruteForce(m)
		for s := 0; s < n; s++ {
			tour, cost := NearestNeighbor(m, s)
			if !validTour(n, tour) || m.TourCost(tour) != cost || cost < opt {
				t.Fatalf("nearest neighbour from %d invalid: %v cost %d opt %d", s, tour, cost, opt)
			}
		}
		tour, cost := GreedyEdge(m)
		if !validTour(n, tour) || m.TourCost(tour) != cost || cost < opt {
			t.Fatalf("greedy edge invalid: %v cost %d opt %d", tour, cost, opt)
		}
		improved, ic := OrOpt(m, tour)
		if !validTour(n, improved) || ic > cost || ic < opt {
			t.Fatalf("or-opt broke tour: %v cost %d (was %d, opt %d)", improved, ic, cost, opt)
		}
	}
}

func TestPathTiny(t *testing.T) {
	// Path 2 -> 0 -> 1 costs 1+1 = 2; any cycle would pay the way back.
	m := Matrix{
		{0, 1, 9},
		{9, 0, 9},
		{1, 9, 0},
	}
	path, cost, err := Path(m, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Errorf("path cost %d, want 2: %v", cost, path)
	}
	if m.PathCost(path) != cost {
		t.Errorf("path %v cost mismatch", path)
	}
}

func TestPathStartCosts(t *testing.T) {
	m := Matrix{
		{0, 1},
		{1, 0},
	}
	// Starting at node 0 is expensive, so the path must start at 1.
	path, cost, err := Path(m, []int{10, 0}, true)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 1 || cost != 1 {
		t.Errorf("path %v cost %d, want start=1 cost 1", path, cost)
	}
}

func TestPathHeuristicUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		m := randomMatrix(rng, n, 30)
		sc := make([]int, n)
		for i := range sc {
			sc[i] = rng.Intn(4)
		}
		exactPath, exactCost, err := Path(m, sc, true)
		if err != nil {
			t.Fatal(err)
		}
		heurPath, heurCost, err := Path(m, sc, false)
		if err != nil {
			t.Fatal(err)
		}
		if !validTour(n, exactPath) || !validTour(n, heurPath) {
			t.Fatalf("invalid paths %v / %v", exactPath, heurPath)
		}
		if got := sc[exactPath[0]] + m.PathCost(exactPath); got != exactCost {
			t.Fatalf("exact path cost accounting: %d vs %d", got, exactCost)
		}
		if heurCost < exactCost {
			t.Fatalf("heuristic %d beat exact %d", heurCost, exactCost)
		}
	}
}

func TestPathErrors(t *testing.T) {
	if _, _, err := Path(Matrix{{0, 1}, {1, 0}}, []int{1}, true); err == nil {
		t.Error("mismatched startCost length must fail")
	}
	if _, _, err := Path(Matrix{}, nil, true); err == nil {
		t.Error("empty matrix must fail")
	}
}

func TestPathSingleNode(t *testing.T) {
	path, cost, err := Path(Matrix{{0}}, []int{5}, true)
	if err != nil || cost != 5 || len(path) != 1 {
		t.Errorf("single node path: %v %d %v", path, cost, err)
	}
}

func TestCloneIsolation(t *testing.T) {
	m := Matrix{{0, 1}, {2, 0}}
	c := m.Clone()
	c[0][1] = 99
	if m[0][1] != 1 {
		t.Error("Clone must not alias")
	}
}

func TestPatchProducesValidTours(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(10)
		m := randomMatrix(rng, n, 30)
		tour, cost := Patch(m)
		if !validTour(n, tour) {
			t.Fatalf("trial %d: invalid tour %v", trial, tour)
		}
		if m.TourCost(tour) != cost {
			t.Fatalf("trial %d: cost accounting %d vs %d", trial, m.TourCost(tour), cost)
		}
		opt := bruteForce(m)
		if cost < opt {
			t.Fatalf("trial %d: patching beat the optimum (%d < %d)", trial, cost, opt)
		}
	}
}

// TestPatchNearOptimal: on random instances Karp patching stays within a
// modest factor of the exact optimum (here: within 1.6x aggregate).
func TestPatchNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	totalPatch, totalOpt := 0, 0
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(6)
		m := randomMatrix(rng, n, 50)
		_, cost := Patch(m)
		totalPatch += cost
		totalOpt += bruteForce(m)
	}
	if float64(totalPatch) > 1.6*float64(totalOpt) {
		t.Errorf("patching aggregate %d vs optimum %d: gap too large", totalPatch, totalOpt)
	}
}

func TestOptimalPathsEnumerate(t *testing.T) {
	// The Figure-4-style instance has multiple optimal paths thanks to its
	// two zero-weight arcs; OptimalPaths must find more than one.
	m := Matrix{
		{0, 1, 2, 2},
		{1, 0, 2, 2},
		{2, 0, 0, 1},
		{0, 2, 1, 0},
	}
	starts := []int{2, 2, 1, 1}
	paths, cost, err := OptimalPaths(m, starts, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Errorf("expected several optimal paths, got %d", len(paths))
	}
	for _, p := range paths {
		if got := starts[p[0]] + m.PathCost(p); got != cost {
			t.Errorf("path %v costs %d, reported optimum %d", p, got, cost)
		}
	}
}
