// The bound-escalation ladder. The assignment relaxation is the branch
// and bound's cheap first rung: incremental, near-tight on most TPG
// matrices, and free to inherit down the tree. On instances with
// near-uniform arc costs it goes slack — the assignment splits into many
// short subtours whose cost sits well below every Hamiltonian cycle, so
// subtrees survive the prune and the search degenerates toward
// enumeration. The second rung is a Held–Karp-style Lagrangian bound on
// the 1-arborescence relaxation: a Hamiltonian cycle through root r is a
// spanning arborescence rooted at r plus one arc into r, so for any node
// potentials u,
//
//	lb(u) = MSA(w′) + min_{i≠r} w′(i, r) + Σᵢ u(i),   w′(i,j) = w(i,j) − u(i),
//
// lower-bounds every cycle (each node leaves exactly once, so the −u(i)
// discounts cancel against Σu). The potentials are improved by a short
// subgradient loop — u(i) moves with 1 − outdeg(i) of the current
// arborescence — and warm-started from the parent node's final
// multipliers, the same inheritance discipline apState uses for its
// reduced costs. Any u keeps the bound admissible, so escalation changes
// node counts only, never the returned tour: the strict-prune + lexLess
// contract of the search is indifferent to which admissible bound did
// the pruning.
//
// Escalation is triggered per worker by a slackness window: a bitmask of
// the last 32 expansions records which of them the assignment bound
// pruned, and a node whose AP bound fails to prune while the window's
// prune rate is low is escalated. The optimal-path enumeration applies
// the same ladder shape with an assignment bound over its remaining
// nodes (see enumerate.go).
package atsp

import "math/bits"

// Escalation tuning. The window threshold is deliberately generous: an
// AP bound that still prunes most of the window is doing its job, and
// paying O(n³) Lagrangian iterations on top of it would be waste.
const (
	// bbEscalateMinN is the smallest constrained matrix worth escalating
	// (below it the whole subtree is cheaper than one subgradient loop).
	bbEscalateMinN = 5
	// bbEscalateWindow is the sliding-window width in expansions.
	bbEscalateWindow = 32
	// bbEscalatePrunes is the prune count in the window at or above
	// which the AP bound is considered tight enough to stay on rung one.
	bbEscalatePrunes = 8
	// lagrangeIters bounds the subgradient loop per escalated node.
	lagrangeIters = 8
)

// bbForceEscalate, when true, escalates every eligible node regardless
// of the slackness window. Tests set it to drive the Lagrangian bound
// through the admissibility property harness.
var bbForceEscalate bool

// slackWindow is one worker's sliding record of recent expansion
// outcomes: bit k set means the k-th most recent expansion was pruned by
// the assignment bound alone.
type slackWindow uint32

// record shifts the window by one expansion.
func (w *slackWindow) record(pruned bool) {
	*w <<= 1
	if pruned {
		*w |= 1
	}
}

// slack reports whether the window justifies escalating: too few of the
// last bbEscalateWindow expansions were pruned on the first rung.
func (w slackWindow) slack() bool {
	return bits.OnesCount32(uint32(w)) < bbEscalatePrunes
}

// enumEscalateMinRemaining is the smallest unvisited remainder for which
// the optimal-path enumeration escalates to the assignment bound (below
// it the cheap min-out bound is already near exact and the O(k³) solve
// pure overhead).
const enumEscalateMinRemaining = 3

// enumAPBound is the enumeration's second rung: an admissible assignment
// bound on the cheapest completion of a partial path about to step onto
// v. Rows are {v} ∪ R (R = unvisited minus v), columns R plus an end
// column: v must exit into R, every node of R is entered exactly once,
// and exactly one row — the path's final node — takes the free end
// column. Every feasible suffix induces such an assignment, so the
// optimal assignment lower-bounds the suffix cost. rem is caller-owned
// scratch of length ≥ len(m).
func enumAPBound(m Matrix, visited []bool, v int, rem []int) int {
	k := 0
	for w := 0; w < len(m); w++ {
		if !visited[w] && w != v {
			rem[k] = w
			k++
		}
	}
	sub := matrixFor(k + 1)
	for j := 0; j < k; j++ {
		sub[0][j] = m[v][rem[j]]
	}
	sub[0][k] = Inf // v is not the final node: it must exit into R
	for i := 0; i < k; i++ {
		ri := rem[i]
		for j := 0; j < k; j++ {
			if i == j {
				sub[i+1][j] = Inf
			} else {
				sub[i+1][j] = m[ri][rem[j]]
			}
		}
		sub[i+1][k] = 0 // the path may end at any remaining node, free
	}
	lb := assignmentCost(sub)
	releaseMatrix(sub)
	return lb
}

// assignmentCost solves the linear assignment problem on m with a pooled
// state and returns only the optimal cost.
func assignmentCost(m Matrix) int {
	s := apStateFor(len(m))
	for i := 1; i <= s.n; i++ {
		if s.row[i] == 0 {
			s.augment(m, i)
		}
	}
	cost := 0
	for i := 1; i <= s.n; i++ {
		cost += m[i-1][s.row[i]-1]
	}
	s.release()
	return cost
}

// lagrangeBound computes the 1-arborescence Lagrangian lower bound on
// the cyclic ATSP over w, warm-started from the multipliers of a parent
// subproblem (nil: cold start) and steered toward the incumbent cost
// target. It returns the best bound over the subgradient iterations and
// the final multipliers for this node's children; warm is never mutated.
// The bound is admissible for every multiplier vector, and Inf when the
// instance has no spanning 1-arborescence (hence no tour).
func lagrangeBound(w Matrix, warm []int, target int) (int, []int) {
	n := len(w)
	u := make([]int, n)
	if len(warm) == n {
		copy(u, warm)
	}
	red := matrixFor(n)
	defer releaseMatrix(red)
	outdeg := make([]int, n)
	best := 0
	lam := 2 // subgradient step numerator, halved on stagnation
	for it := 0; it < lagrangeIters; it++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || w[i][j] >= Inf {
					red[i][j] = apInf
				} else {
					red[i][j] = w[i][j] - u[i]
				}
			}
		}
		sumU := 0
		for _, ui := range u {
			sumU += ui
		}
		arbo, ok := minArborescence(red, 0, outdeg)
		if !ok {
			return Inf, u
		}
		inRoot, inRootFrom := apInf, -1
		for i := 1; i < n; i++ {
			if red[i][0] < inRoot {
				inRoot, inRootFrom = red[i][0], i
			}
		}
		if inRootFrom < 0 {
			return Inf, u
		}
		outdeg[inRootFrom]++ // the arc closing the cycle
		lb := arbo + inRoot + sumU
		if lb > best {
			best = lb
		} else {
			lam /= 2
			if lam == 0 {
				break
			}
		}
		if best > target {
			break // already strong enough to prune: no point polishing
		}
		// Subgradient step toward out-degree 1 everywhere. The direction
		// comes from the greedy in-arc selection (exact for an acyclic
		// selection, heuristic otherwise) — admissibility never depends
		// on it.
		norm := 0
		for i := 0; i < n; i++ {
			g := 1 - outdeg[i]
			norm += g * g
		}
		if norm == 0 {
			break // the arborescence is degree-feasible: lb is as good as this relaxation gets
		}
		step := lam * (target - lb + 1) / norm
		if step < 1 {
			step = 1
		}
		for i := 0; i < n; i++ {
			u[i] += step * (1 - outdeg[i])
		}
	}
	if best >= Inf {
		best = Inf - 1 // a finite relaxation never proves infeasibility
	}
	return best, u
}

// minArborescence returns the cost of the minimum spanning arborescence
// of the dense digraph red rooted at root (arcs at apInf and self-loops
// are absent), plus — through outdeg — the out-degrees of the greedy
// in-arc selection of the uncontracted graph, the direction the
// subgradient step steers by. ok is false when some node is unreachable.
//
// Chu–Liu/Edmonds with cycle contraction; deterministic (first minimum
// wins, nodes scanned in index order), which keeps sequential node
// counts reproducible.
func minArborescence(red Matrix, root int, outdeg []int) (cost int, ok bool) {
	n := len(red)
	for i := range outdeg {
		outdeg[i] = 0
	}
	if n <= 1 {
		return 0, true
	}
	// Edge list over the live contraction: from, to, cost.
	type edge struct{ from, to, cost int }
	edges := make([]edge, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && red[i][j] < apInf {
				edges = append(edges, edge{i, j, red[i][j]})
			}
		}
	}
	firstRound := true
	total := 0
	nodes := n
	for {
		inCost := make([]int, nodes)
		inFrom := make([]int, nodes)
		for v := range inCost {
			inCost[v] = apInf
			inFrom[v] = -1
		}
		for _, e := range edges {
			if e.to != root && e.cost < inCost[e.to] {
				inCost[e.to] = e.cost
				inFrom[e.to] = e.from
			}
		}
		for v := 0; v < nodes; v++ {
			if v != root && inFrom[v] < 0 {
				return 0, false
			}
		}
		if firstRound {
			for v := 0; v < nodes; v++ {
				if v != root {
					outdeg[inFrom[v]]++
				}
			}
			firstRound = false
		}
		// Detect cycles among the chosen in-arcs.
		id := make([]int, nodes)
		vis := make([]int, nodes)
		for v := range id {
			id[v], vis[v] = -1, -1
		}
		groups := 0
		for v := 0; v < nodes; v++ {
			if v != root {
				total += inCost[v]
			}
			x := v
			for x != root && vis[x] < 0 && id[x] < 0 {
				vis[x] = v
				x = inFrom[x]
			}
			if x != root && id[x] < 0 && vis[x] == v {
				// x closes a new cycle: contract it into group `groups`.
				for y := inFrom[x]; y != x; y = inFrom[y] {
					id[y] = groups
				}
				id[x] = groups
				groups++
			}
		}
		if groups == 0 {
			return total, true
		}
		// Label every uncontracted node with its own fresh group id.
		for v := 0; v < nodes; v++ {
			if id[v] < 0 {
				id[v] = groups
				groups++
			}
		}
		// Rebuild the edge list over the contracted graph. Every round
		// already paid each node's chosen in-arc into total, so every
		// surviving arc is discounted by the in-cost of its head: a later
		// round re-selecting the head's in-arc then pays only the
		// increment over the greedy choice — the classic Chu–Liu
		// accounting.
		next := edges[:0]
		for _, e := range edges {
			f, t := id[e.from], id[e.to]
			if f == t {
				continue
			}
			c := e.cost
			if e.to != root {
				c -= inCost[e.to]
			}
			next = append(next, edge{f, t, c})
		}
		edges = next
		root = id[root]
		nodes = groups
	}
}
