package atsp

// apInf is the internal sentinel of the shortest-augmenting-path search,
// far above any real reduced cost (Inf-walled arcs included).
const apInf = int(1) << 60

// apState is a warm-startable assignment-problem solver: the row/column
// potentials and the partial matching of a Jonker–Volgenant style
// shortest-augmenting-path Hungarian algorithm. A branch-and-bound node
// clones its parent's state, unassigns only the rows whose matched arc the
// branching constraint destroyed, and re-augments those rows against the
// child matrix — O(dirty·n²) instead of a fresh O(n³) solve. Correctness
// rests on two invariants that survive both operations: branching only
// *increases* arc costs (to Inf), which preserves dual feasibility of the
// potentials, and unassigning a row keeps every remaining matched arc
// tight.
//
// All arrays are 1-based like the classic formulation; index 0 is the
// virtual source column of the augmenting search.
type apState struct {
	n   int
	u   []int // row potentials
	v   []int // column potentials
	p   []int // p[col] = row matched to col (0 = none)
	row []int // row[r] = col matched to row r (0 = none)

	// Augmenting-search scratch, reused across augment calls (and across
	// pooled reuses of the whole state): holds no state between calls.
	way  []int
	minv []int
	used []bool
}

// newAPState returns an empty state for an n×n instance.
func newAPState(n int) *apState {
	return &apState{
		n:   n,
		u:   make([]int, n+1),
		v:   make([]int, n+1),
		p:   make([]int, n+1),
		row: make([]int, n+1),
	}
}

// unassignRow removes row r (1-based) from the matching; a no-op when the
// row is unmatched. Potentials are kept: they stay dual-feasible, and the
// next solve re-augments the row from them.
func (s *apState) unassignRow(r int) {
	if c := s.row[r]; c != 0 {
		s.p[c] = 0
		s.row[r] = 0
	}
}

// augment matches one unmatched row i (1-based) by the shortest augmenting
// path under the current potentials.
func (s *apState) augment(m Matrix, i int) {
	n := s.n
	if cap(s.way) <= n {
		s.way = make([]int, n+1)
		s.minv = make([]int, n+1)
		s.used = make([]bool, n+1)
	}
	way, minv, used := s.way[:n+1], s.minv[:n+1], s.used[:n+1]
	for j := 0; j <= n; j++ {
		minv[j] = apInf
		used[j] = false
	}
	s.p[0] = i
	j0 := 0
	for {
		used[j0] = true
		i0 := s.p[j0]
		delta := apInf
		j1 := 0
		for j := 1; j <= n; j++ {
			if used[j] {
				continue
			}
			cur := m[i0-1][j-1] - s.u[i0] - s.v[j]
			if cur < minv[j] {
				minv[j] = cur
				way[j] = j0
			}
			if minv[j] < delta {
				delta = minv[j]
				j1 = j
			}
		}
		for j := 0; j <= n; j++ {
			if used[j] {
				s.u[s.p[j]] += delta
				s.v[j] -= delta
			} else {
				minv[j] -= delta
			}
		}
		j0 = j1
		if s.p[j0] == 0 {
			break
		}
	}
	for j0 != 0 {
		j1 := way[j0]
		s.p[j0] = s.p[j1]
		s.row[s.p[j0]] = j0
		j0 = j1
	}
	s.p[0] = 0
}

// solve completes the matching (augmenting every currently unmatched row in
// index order, which makes warm re-solves deterministic) and returns the
// optimal assignment and its cost on m. On a fresh state this is exactly
// the classic full Hungarian solve.
func (s *apState) solve(m Matrix) (rowToCol []int, cost int) {
	for i := 1; i <= s.n; i++ {
		if s.row[i] == 0 {
			s.augment(m, i)
		}
	}
	rowToCol = make([]int, s.n)
	for i := 1; i <= s.n; i++ {
		rowToCol[i-1] = s.row[i] - 1
		cost += m[i-1][rowToCol[i-1]]
	}
	return rowToCol, cost
}

// assignment solves the linear assignment problem on the cost matrix
// (ignoring nothing — diagonal entries must already be set to Inf by the
// caller when self-assignment is forbidden). It returns the column chosen
// for each row and the optimal total cost. It is a fresh full solve of the
// incremental apState machinery and produces the same matching (including
// tie-breaks) as the pre-incremental implementation: rows are inserted in
// index order with zero initial potentials.
func assignment(m Matrix) (rowToCol []int, cost int) {
	return newAPState(len(m)).solve(m)
}
