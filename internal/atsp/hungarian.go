package atsp

// assignment solves the linear assignment problem on the cost matrix
// (ignoring nothing — diagonal entries must already be set to Inf by the
// caller when self-assignment is forbidden). It returns the column chosen
// for each row and the optimal total cost. The implementation is the
// O(n³) shortest-augmenting-path ("Jonker–Volgenant style") variant of the
// Hungarian algorithm with row/column potentials.
func assignment(m Matrix) (rowToCol []int, cost int) {
	n := len(m)
	const inf = int(1) << 60
	u := make([]int, n+1) // row potentials
	v := make([]int, n+1) // column potentials
	p := make([]int, n+1) // p[col] = row assigned to col (1-based; 0 = none)
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := m[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowToCol = make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		cost += m[i][rowToCol[i]]
	}
	return rowToCol, cost
}
