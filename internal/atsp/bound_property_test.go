package atsp

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// collectBounds runs a branch-and-bound solve with bbBoundHook installed and
// returns every (constrained matrix, assignment bound) pair the search
// computed, including the root. The hook clones the matrix: the solver
// mutates node matrices after bounding them.
func collectBounds(t *testing.T, m Matrix, opt SolveOptions) (tour []int, cost int, nodes []struct {
	w  Matrix
	lb int
}) {
	t.Helper()
	var mu sync.Mutex
	bbBoundHook = func(w Matrix, lb int) {
		mu.Lock()
		defer mu.Unlock()
		nodes = append(nodes, struct {
			w  Matrix
			lb int
		}{w.Clone(), lb})
	}
	defer func() { bbBoundHook = nil }()
	tour, cost, err := BranchBoundOpt(nil, m, opt)
	if err != nil {
		t.Fatalf("BranchBoundOpt: %v", err)
	}
	return tour, cost, nodes
}

// TestAPBoundAdmissible is the property test behind the whole branch and
// bound: at every search node — sequential and parallel — the assignment
// relaxation must lower-bound the optimal cyclic tour of that node's
// constrained matrix. An inadmissible bound would prune optimal leaves and
// break both exactness and the cross-mode determinism contract.
func TestAPBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for iter := 0; iter < 16; iter++ {
		n := 4 + rng.Intn(6) // 4..9: bruteForce stays tractable per node
		m := randomMatrix(rng, n, 8)
		opt := bruteForce(m)
		for _, workers := range []int{1, 4} {
			_, cost, nodes := collectBounds(t, m, SolveOptions{Workers: workers})
			if cost != opt {
				t.Fatalf("n=%d workers=%d: cost %d, brute force %d", n, workers, cost, opt)
			}
			if len(nodes) == 0 {
				t.Fatalf("n=%d workers=%d: hook observed no nodes", n, workers)
			}
			for _, nd := range nodes {
				if nd.lb >= Inf {
					continue // infeasible subproblem: pruned, bound vacuous
				}
				if bf := bruteForce(nd.w); nd.lb > bf {
					t.Errorf("n=%d workers=%d: inadmissible bound %d > optimum %d for\n%v",
						n, workers, nd.lb, bf, nd.w)
				}
			}
		}
	}
}

// TestMultiOptimaTieBreakDeterministic seeds tie-heavy instances (tiny cost
// range, so many co-optimal tours) and demands the exact same canonical
// tour from every worker count, across repeated runs, and from warm versus
// cold solves. This is the regression for the concurrency tie-break bug:
// without the strict-prune + lex-min offer rule, two workers racing on
// co-optimal leaves could return different (equally optimal) tours.
func TestMultiOptimaTieBreakDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 24; iter++ {
		n := 5 + rng.Intn(5)         // 5..9
		m := randomMatrix(rng, n, 3) // costs in {0,1,2}: heavy tie pressure
		want, wantCost, err := BranchBoundOpt(nil, m, SolveOptions{Workers: 1})
		if err != nil {
			t.Fatalf("sequential solve: %v", err)
		}
		if bf := bruteForce(m); wantCost != bf {
			t.Fatalf("n=%d: sequential cost %d, brute force %d", n, wantCost, bf)
		}
		warm, _ := Patch(m)
		for _, workers := range []int{2, 4, 8} {
			for rep := 0; rep < 3; rep++ {
				got, gotCost, err := BranchBoundOpt(nil, m, SolveOptions{Workers: workers, WarmTour: warm})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if gotCost != wantCost || !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d workers=%d rep=%d: tour %v cost %d, sequential returned %v cost %d",
						n, workers, rep, got, gotCost, want, wantCost)
				}
			}
		}
	}
}

// FuzzWarmStartEquivalence feeds the solver randomized instances plus a
// single-arc mutation of each, and asserts the determinism contract end to
// end: a warm-started solve (primed with anything from a garbage permutation
// to the previous instance's exact tour) returns the byte-identical tour and
// cost of a cold solve, sequentially and in parallel, and the cost matches
// the independent Held–Karp dynamic program.
func FuzzWarmStartEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(3))
	f.Add(int64(42), uint8(0), uint8(250))
	f.Add(int64(-9), uint8(9), uint8(17))
	f.Add(int64(20260808), uint8(4), uint8(128))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mutRaw uint8) {
		n := 3 + int(nRaw%7) // 3..9
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, n, 2+int(mutRaw%14))
		cold, coldCost, err := BranchBoundOpt(nil, m, SolveOptions{Workers: 1})
		if err != nil {
			t.Fatalf("cold solve: %v", err)
		}
		if _, hk, err := HeldKarp(m); err != nil || hk != coldCost {
			t.Fatalf("Held-Karp cost %d (err %v), branch and bound %d", hk, err, coldCost)
		}
		rot := make([]int, n) // a feasible but usually far-from-optimal tour
		for i := range rot {
			rot[i] = (i + int(mutRaw)) % n
		}
		patched, _ := Patch(m)
		for _, wt := range [][]int{rot, patched, cold} {
			for _, workers := range []int{1, 4} {
				got, gotCost, err := BranchBoundOpt(nil, m, SolveOptions{Workers: workers, WarmTour: wt})
				if err != nil {
					t.Fatalf("warm solve (workers=%d): %v", workers, err)
				}
				if gotCost != coldCost || !reflect.DeepEqual(got, cold) {
					t.Fatalf("warm %v workers=%d: tour %v cost %d, cold %v cost %d",
						wt, workers, got, gotCost, cold, coldCost)
				}
			}
		}
		// The incremental scenario the warm sweep actually runs: mutate one
		// arc, warm-start the new instance with the old optimal tour.
		m2 := m.Clone()
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			m2[i][j] = int(mutRaw)
		}
		cold2, cold2Cost, err := BranchBoundOpt(nil, m2, SolveOptions{Workers: 1})
		if err != nil {
			t.Fatalf("mutated cold solve: %v", err)
		}
		warm2, warm2Cost, err := BranchBoundOpt(nil, m2, SolveOptions{Workers: 1, WarmTour: cold})
		if err != nil {
			t.Fatalf("mutated warm solve: %v", err)
		}
		if warm2Cost != cold2Cost || !reflect.DeepEqual(warm2, cold2) {
			t.Fatalf("mutated: warm tour %v cost %d, cold %v cost %d",
				warm2, warm2Cost, cold2, cold2Cost)
		}
	})
}

// TestCompletePath checks the warm-path completion helper: the result is
// always a valid open path, keeps a sane partial prefix, and tolerates
// garbage (out-of-range, duplicate) partials.
func TestCompletePath(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.Intn(8)
		m := randomMatrix(rng, n, 10)
		starts := make([]int, n)
		for i := range starts {
			starts[i] = rng.Intn(3)
		}
		partials := [][]int{
			nil,
			{0},
			{n - 1, 0},
			{rng.Intn(n), rng.Intn(n), n + 3, -1}, // garbage tolerated
		}
		for _, partial := range partials {
			path := CompletePath(m, starts, partial)
			if len(path) != n {
				t.Fatalf("n=%d partial=%v: path %v misses nodes", n, partial, path)
			}
			seen := make([]bool, n)
			for _, v := range path {
				if v < 0 || v >= n || seen[v] {
					t.Fatalf("n=%d partial=%v: invalid path %v", n, partial, path)
				}
				seen[v] = true
			}
		}
	}
}
