package atsp

import (
	"fmt"

	"marchgen/internal/budget"
	"marchgen/internal/obs"
)

// BranchBound solves the cyclic ATSP exactly by depth-first branch and
// bound over the assignment-problem relaxation, in the style of Carpaneto,
// Dell'Amico and Toth's exact code used by the paper: the Hungarian
// algorithm provides the lower bound; when the optimal assignment contains
// subtours, the search branches on the arcs of the shortest subtour,
// excluding one arc per child (with the preceding arcs of the subtour
// forced excluded-complement via inclusion, the classic CDT scheme).
func BranchBound(m Matrix) ([]int, int, error) {
	return BranchBoundMeter(nil, m)
}

// BranchBoundMeter is BranchBound under a budget meter: every search node
// charges the meter, so the solve aborts with a typed error on context
// cancellation or ATSP node-budget exhaustion (nil meter: unbounded).
func BranchBoundMeter(mt *budget.Meter, m Matrix) ([]int, int, error) {
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(m)
	if n == 1 {
		return []int{0}, 0, nil
	}
	work := m.Clone()
	for i := 0; i < n; i++ {
		work[i][i] = Inf
	}
	// Local plain-int counters keep the search loop free of atomics; they
	// flush to the run's metrics (and the span) once at the end.
	run := obs.From(mt.Context())
	expanded, pruned := 0, 0
	sp := run.StartUnder("atsp/branchbound").SetInt("n", int64(n))
	defer func() {
		sp.SetInt("expanded", int64(expanded)).SetInt("pruned", int64(pruned)).End()
		run.Counter("atsp.bb.expanded").Add(int64(expanded))
		run.Counter("atsp.bb.pruned").Add(int64(pruned))
	}()
	// Heuristic upper bound primes the pruning.
	best := []int(nil)
	bestCost := Inf
	if tour, cost := bestHeuristic(m); validTour(n, tour) && cost < bestCost {
		best, bestCost = tour, cost
	}

	var searchErr error
	var search func(w Matrix)
	search = func(w Matrix) {
		if searchErr != nil {
			return
		}
		if err := mt.Node(); err != nil {
			searchErr = err
			return
		}
		expanded++
		rowToCol, lb := assignment(w)
		if lb >= bestCost || lb >= Inf {
			pruned++
			return
		}
		cycle := shortestSubtour(rowToCol)
		if len(cycle) == len(rowToCol) {
			// Single Hamiltonian cycle: a feasible tour. Cost must be
			// measured on the original matrix (w only adds Inf walls).
			if c := m.TourCost(cycle); c < bestCost {
				best, bestCost = canonical(cycle), c
			}
			return
		}
		// Branch on the subtour's arcs: child k forbids arc k and forces
		// arcs 0..k-1 (by forbidding every alternative leaving their tail
		// or entering their head).
		for k := 0; k < len(cycle); k++ {
			child := w.Clone()
			from, to := cycle[k], cycle[(k+1)%len(cycle)]
			child[from][to] = Inf
			for f := 0; f < k; f++ {
				ff, ft := cycle[f], cycle[(f+1)%len(cycle)]
				for j := range child[ff] {
					if j != ft {
						child[ff][j] = Inf
					}
				}
				for i := range child {
					if i != ff {
						child[i][ft] = Inf
					}
				}
			}
			search(child)
		}
	}
	search(work)
	if searchErr != nil {
		return nil, 0, searchErr
	}
	if best == nil {
		return nil, 0, fmt.Errorf("atsp: no feasible tour")
	}
	return best, bestCost, nil
}

// shortestSubtour extracts the shortest cycle of the assignment
// permutation, returned in traversal order.
func shortestSubtour(rowToCol []int) []int {
	n := len(rowToCol)
	seen := make([]bool, n)
	var best []int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var cyc []int
		for v := s; !seen[v]; v = rowToCol[v] {
			seen[v] = true
			cyc = append(cyc, v)
		}
		if best == nil || len(cyc) < len(best) {
			best = cyc
		}
	}
	return best
}

// SolveExact dispatches to Held–Karp for small instances and branch and
// bound beyond, cross-checking nothing at runtime (the test suite asserts
// both agree).
func SolveExact(m Matrix) ([]int, int, error) {
	return SolveExactMeter(nil, m)
}

// SolveExactMeter is SolveExact under a budget meter.
func SolveExactMeter(mt *budget.Meter, m Matrix) ([]int, int, error) {
	if len(m) <= 13 {
		return HeldKarpMeter(mt, m)
	}
	return BranchBoundMeter(mt, m)
}
