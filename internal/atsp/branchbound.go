package atsp

import (
	"fmt"
	"runtime"
	"sync"

	"marchgen/internal/budget"
	"marchgen/internal/obs"
)

// SolveOptions tunes the exact solvers beyond the plain entry points.
type SolveOptions struct {
	// Workers fans the branch-and-bound subtree exploration over N
	// goroutines (<= 0: GOMAXPROCS, 1: sequential). The returned tour and
	// cost are identical at any worker count.
	Workers int
	// WarmTour, when non-nil and a feasible tour of the instance, primes
	// the incumbent upper bound with its cost. Warm starts change node
	// counts only, never the returned tour or cost: the incumbent tour
	// stays empty until the search itself reaches an optimal leaf, so the
	// result is the same deterministic lex-min optimal tour as a cold
	// solve.
	WarmTour []int
	// PreferBB routes even small instances to the assignment-bound branch
	// and bound instead of the Held–Karp dynamic program. On TPG-sized
	// matrices the AP bound is near-tight, so the search expands a handful
	// of nodes where Held–Karp charges O(2ⁿ·n²) states.
	PreferBB bool
	// CostOnly lets the solver return any optimal tour, not necessarily
	// the lex-min one: when the root assignment bound already equals the
	// warm (or heuristic) incumbent cost, the incumbent tour is returned
	// with zero branching. Callers that only consume the optimal cost —
	// the optimal-path enumeration does — get the full warm-start saving.
	CostOnly bool
}

// bbBoundHook, when non-nil, observes every branch-and-bound subproblem:
// the constrained matrix and the assignment lower bound computed for it.
// Tests install it to assert bound admissibility at every node; a hook used
// under Workers > 1 is called concurrently and must synchronise itself.
var bbBoundHook func(w Matrix, lb int)

// bbNode is one open branch-and-bound subproblem: the constrained cost
// matrix plus the parent's assignment state with the rows invalidated by
// the branching constraints already unassigned, ready for incremental
// re-augmentation (see apState).
type bbNode struct {
	w  Matrix
	ap *apState
	// lag carries the Lagrangian multipliers of the nearest escalated
	// ancestor (nil: none), warm-starting this node's own escalation the
	// same way ap reuses the parent's reduced costs. Shared read-only
	// down the subtree; lagrangeBound copies before updating.
	lag []int
}

// release returns the node's matrix and assignment state to their pools.
// Callers must be done with both — children have already cloned them,
// and any hook that keeps the matrix has cloned it too.
func (nd *bbNode) release() {
	releaseMatrix(nd.w)
	nd.ap.release()
}

// bbBranch branches a subproblem on the shortest subtour of its optimal
// assignment, the classic Carpaneto–Dell'Amico–Toth scheme: child k
// forbids arc k of the subtour and forces arcs 0..k-1 by walling every
// alternative leaving their tail or entering their head. Each child clones
// the parent's assignment state and unassigns exactly the rows whose
// matched arc a new wall destroyed, so bounding the child re-augments only
// those rows instead of re-solving from scratch.
func bbBranch(nd bbNode, rowToCol []int, cycle []int) []bbNode {
	children := make([]bbNode, 0, len(cycle))
	for k := 0; k < len(cycle); k++ {
		child := bbNode{w: cloneInto(nd.w), ap: nd.ap.clonePooled(), lag: nd.lag}
		forbid := func(i, j int) {
			if child.w[i][j] < Inf {
				child.w[i][j] = Inf
				if rowToCol[i] == j {
					child.ap.unassignRow(i + 1)
				}
			}
		}
		from, to := cycle[k], cycle[(k+1)%len(cycle)]
		forbid(from, to)
		for f := 0; f < k; f++ {
			ff, ft := cycle[f], cycle[(f+1)%len(cycle)]
			for j := range child.w[ff] {
				if j != ft {
					forbid(ff, j)
				}
			}
			for i := range child.w {
				if i != ff {
					forbid(i, ft)
				}
			}
		}
		children = append(children, child)
	}
	return children
}

// BranchBound solves the cyclic ATSP exactly by depth-first branch and
// bound over the assignment-problem relaxation, in the style of Carpaneto,
// Dell'Amico and Toth's exact code used by the paper: the incremental
// Hungarian state provides the lower bound, and the search branches on the
// arcs of the shortest subtour of each node's optimal assignment.
func BranchBound(m Matrix) ([]int, int, error) {
	return BranchBoundOpt(nil, m, SolveOptions{Workers: 1})
}

// BranchBoundMeter is BranchBound under a budget meter: every search node
// charges the meter, so the solve aborts with a typed error on context
// cancellation or ATSP node-budget exhaustion (nil meter: unbounded).
func BranchBoundMeter(mt *budget.Meter, m Matrix) ([]int, int, error) {
	return BranchBoundOpt(mt, m, SolveOptions{Workers: 1})
}

// BranchBoundOpt is the full-control branch and bound; see SolveOptions.
//
// Determinism contract: subtrees are pruned only when their assignment
// bound strictly exceeds the incumbent cost, so every node whose bound
// does not exceed the optimum is explored at any worker count and under
// any schedule. The set of optimal feasible tours the search reaches is
// therefore schedule-independent, and the lexicographically smallest of
// them (canonical rotation, lexLess order) is returned — identical for
// sequential, parallel, warm and cold solves (CostOnly excepted).
func BranchBoundOpt(mt *budget.Meter, m Matrix, opt SolveOptions) (_ []int, _ int, err error) {
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(m)
	if n == 1 {
		return []int{0}, 0, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	work := m.Clone()
	for i := 0; i < n; i++ {
		work[i][i] = Inf
	}
	run := obs.From(mt.Context())
	sp := run.StartUnder("atsp/branchbound").SetInt("n", int64(n))
	if workers > 1 {
		sp.SetInt("workers", int64(workers))
	}
	s := &bbShared{orig: m, mt: mt, queues: make([]bbQueue, workers), prog: run.Progress()}
	s.bound.Store(unset)
	// Slackness windows start saturated (every bit a prune), so the
	// Lagrangian rung engages only after the AP bound has demonstrably
	// gone slack over a window of real expansions.
	s.windows = make([]slackWindow, workers)
	for i := range s.windows {
		s.windows[i] = ^slackWindow(0)
	}
	rootExpanded, rootPruned := 0, 0
	defer func() {
		// Aggregated totals: deterministic for one worker (the explored
		// set and visit order are fixed), schedule-dependent beyond — so
		// the span carries them only in the sequential case, while the
		// metrics registry always does.
		expanded := s.expanded.Load() + int64(rootExpanded)
		pruned := s.pruned.Load() + int64(rootPruned)
		run.Counter("atsp.bb.expanded").Add(expanded)
		run.Counter("atsp.bb.pruned").Add(pruned)
		run.Counter("atsp.bb.steals").Add(s.steals.Load())
		run.Counter("atsp.bb.escalated").Add(s.escalated.Load())
		run.Counter("atsp.bb.escpruned").Add(s.escPruned.Load())
		s.prog.AddNodes(int64(rootExpanded))
		if workers == 1 {
			sp.SetInt("expanded", expanded).SetInt("pruned", pruned)
		}
		sp.End()
	}()
	// Upper bounds prime the pruning only. Keeping the incumbent tour
	// empty until the search reaches an optimal leaf itself makes the
	// returned tour independent of the priming (see the contract above).
	var incTour []int
	incCost := Inf
	if tour, cost := bestHeuristic(m); validTour(n, tour) && cost < Inf {
		incTour, incCost = canonical(tour), cost
	}
	if opt.WarmTour != nil && validTour(n, opt.WarmTour) {
		run.Counter("atsp.bb.warm").Inc()
		if wc := m.TourCost(opt.WarmTour); wc < Inf && wc <= incCost {
			incTour, incCost = canonical(opt.WarmTour), wc
		}
	}
	if incCost < Inf {
		s.bound.Store(int64(incCost))
	}
	// Bound the root here: the warm shortcut and the root-Hamiltonian case
	// then return without starting the worker engine at all.
	if err := mt.Node(); err != nil {
		return nil, 0, err
	}
	rootExpanded++
	root := bbNode{w: work, ap: apStateFor(n)}
	rowToCol, lb := root.ap.solve(work)
	if hook := bbBoundHook; hook != nil {
		hook(work, lb)
	}
	if lb >= Inf {
		rootPruned++
		return nil, 0, fmt.Errorf("atsp: no feasible tour")
	}
	// The root relaxation is the solve's global lower bound: publish it
	// against the primed incumbent, and stamp it on the span so recorded
	// traces carry the bound ≤ incumbent invariant tracecheck validates.
	s.rootLB = int64(lb)
	sp.SetInt("bound", int64(lb))
	if incCost < Inf {
		s.prog.Search(int64(incCost), int64(lb))
	} else {
		s.prog.Search(-1, int64(lb))
	}
	if opt.CostOnly && incTour != nil && lb == incCost {
		// The relaxation is tight against the incumbent: the incumbent is
		// optimal and the caller does not need the canonical tour.
		run.Counter("atsp.bb.warmshort").Inc()
		sp.SetInt("incumbent", int64(incCost))
		s.prog.Search(int64(incCost), int64(lb))
		return incTour, incCost, nil
	}
	cycle := shortestSubtour(rowToCol)
	if len(cycle) == n {
		// The root assignment is a single Hamiltonian cycle: it is the
		// only tour the offered-set contract reaches, and it is optimal.
		cost := m.TourCost(cycle)
		sp.SetInt("incumbent", int64(cost))
		s.prog.Search(int64(cost), int64(lb))
		return canonical(cycle), cost, nil
	}
	for _, child := range bbBranch(root, rowToCol, cycle) {
		s.outstanding.Add(1)
		s.queues[0].push(child)
	}
	root.release() // children cloned what they need
	if workers == 1 {
		s.worker(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(id int) {
				defer wg.Done()
				s.worker(id)
			}(w)
		}
		wg.Wait()
	}
	if err := s.failure(); err != nil {
		return nil, 0, err
	}
	if s.best == nil {
		return nil, 0, fmt.Errorf("atsp: no feasible tour")
	}
	sp.SetInt("incumbent", s.bound.Load())
	return s.best, int(s.bound.Load()), nil
}

// shortestSubtour extracts the shortest cycle of the assignment
// permutation, returned in traversal order.
func shortestSubtour(rowToCol []int) []int {
	n := len(rowToCol)
	seen := make([]bool, n)
	var best []int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var cyc []int
		for v := s; !seen[v]; v = rowToCol[v] {
			seen[v] = true
			cyc = append(cyc, v)
		}
		if best == nil || len(cyc) < len(best) {
			best = cyc
		}
	}
	return best
}

// SolveExact dispatches to Held–Karp for small instances and branch and
// bound beyond, cross-checking nothing at runtime (the test suite asserts
// both agree).
func SolveExact(m Matrix) ([]int, int, error) {
	return SolveExactMeter(nil, m)
}

// SolveExactMeter is SolveExact under a budget meter.
func SolveExactMeter(mt *budget.Meter, m Matrix) ([]int, int, error) {
	return SolveExactOpt(mt, m, SolveOptions{Workers: 1})
}

// SolveExactOpt is SolveExact under SolveOptions: PreferBB overrides the
// small-instance Held–Karp dispatch (warm starts only help the branch and
// bound — the dynamic program's state count is fixed by n).
func SolveExactOpt(mt *budget.Meter, m Matrix, opt SolveOptions) ([]int, int, error) {
	if !opt.PreferBB && len(m) <= 13 {
		return HeldKarpMeter(mt, m)
	}
	return BranchBoundOpt(mt, m, opt)
}
