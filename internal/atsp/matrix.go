// Package atsp solves the Asymmetric Travelling Salesman Problem instances
// produced by the Test Pattern Graph. The paper delegated this step to the
// exact Fortran branch-and-bound code of Carpaneto, Dell'Amico and Toth
// (ACM Algorithm 750, reference [12]); this package is a from-scratch Go
// replacement in the same algorithmic family: a depth-first branch-and-
// bound over the assignment-problem (Hungarian) relaxation with subtour
// branching, plus a Held–Karp dynamic program used both for small
// instances and as an independent cross-check, and nearest-neighbour /
// greedy-edge / or-opt heuristics for upper bounds.
//
// The open-path variant needed for Global Test Sequences (a GTS does not
// return to its first pattern) is reduced to the cyclic problem with a
// dummy node; per-node start costs express the paper's f.4.4 constraint
// that sequences should start from a uniform initialisation state.
package atsp

import (
	"fmt"
	"math"
)

// Inf is the forbidden-arc cost. It is large enough that no tour of
// practical size can overflow an int when summing a handful of Inf arcs.
const Inf = math.MaxInt32 / 64

// Matrix is a square cost matrix; Cost[i][j] is the cost of travelling
// from node i to node j. Diagonal entries are ignored by the solvers.
type Matrix [][]int

// Validate reports structural problems: non-square data, negative costs.
func (m Matrix) Validate() error {
	n := len(m)
	if n == 0 {
		return fmt.Errorf("atsp: empty matrix")
	}
	for i, row := range m {
		if len(row) != n {
			return fmt.Errorf("atsp: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, c := range row {
			if c < 0 {
				return fmt.Errorf("atsp: negative cost %d at (%d,%d)", c, i, j)
			}
		}
	}
	return nil
}

// Clone deep-copies the matrix.
func (m Matrix) Clone() Matrix {
	out := make(Matrix, len(m))
	for i, row := range m {
		out[i] = append([]int(nil), row...)
	}
	return out
}

// TourCost sums the cyclic tour's arc costs.
func (m Matrix) TourCost(tour []int) int {
	c := 0
	for k := range tour {
		c += m[tour[k]][tour[(k+1)%len(tour)]]
	}
	return c
}

// PathCost sums the open path's arc costs.
func (m Matrix) PathCost(path []int) int {
	c := 0
	for k := 0; k+1 < len(path); k++ {
		c += m[path[k]][path[k+1]]
	}
	return c
}

// validTour checks that tour is a permutation of 0..n-1.
func validTour(n int, tour []int) bool {
	if len(tour) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range tour {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// canonical rotates a cyclic tour so it starts at node 0, easing
// comparisons between solvers.
func canonical(tour []int) []int {
	for k, v := range tour {
		if v == 0 {
			return append(append([]int(nil), tour[k:]...), tour[:k]...)
		}
	}
	return tour
}
