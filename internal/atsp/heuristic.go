package atsp

import "sort"

// NearestNeighbor builds a tour greedily from the given start node.
func NearestNeighbor(m Matrix, start int) ([]int, int) {
	n := len(m)
	visited := make([]bool, n)
	tour := make([]int, 0, n)
	cur := start
	visited[cur] = true
	tour = append(tour, cur)
	for len(tour) < n {
		next, bestC := -1, 0
		for j := 0; j < n; j++ {
			if visited[j] || j == cur {
				continue
			}
			if next < 0 || m[cur][j] < bestC {
				next, bestC = j, m[cur][j]
			}
		}
		visited[next] = true
		tour = append(tour, next)
		cur = next
	}
	return tour, m.TourCost(tour)
}

// GreedyEdge builds a tour by repeatedly committing the globally cheapest
// arc that keeps out-degrees, in-degrees and acyclicity valid, closing the
// Hamiltonian cycle with the last arc.
func GreedyEdge(m Matrix) ([]int, int) {
	n := len(m)
	type arc struct{ from, to, cost int }
	arcs := make([]arc, 0, n*n-n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				arcs = append(arcs, arc{i, j, m[i][j]})
			}
		}
	}
	sort.Slice(arcs, func(a, b int) bool { return arcs[a].cost < arcs[b].cost })
	next := make([]int, n)
	prev := make([]int, n)
	for i := range next {
		next[i], prev[i] = -1, -1
	}
	// find chain end starting from a node
	chainEnd := func(v int) int {
		for next[v] >= 0 {
			v = next[v]
		}
		return v
	}
	committed := 0
	for _, a := range arcs {
		if committed == n-1 {
			break
		}
		if next[a.from] >= 0 || prev[a.to] >= 0 {
			continue
		}
		if chainEnd(a.to) == a.from {
			continue // would close a short cycle
		}
		next[a.from] = a.to
		prev[a.to] = a.from
		committed++
	}
	// Close the cycle: exactly one node without successor remains.
	tour := make([]int, 0, n)
	start := 0
	for v := 0; v < n; v++ {
		if prev[v] < 0 {
			start = v
			break
		}
	}
	for v := start; len(tour) < n; v = next[v] {
		tour = append(tour, v)
		if next[v] < 0 {
			break
		}
	}
	if len(tour) != n {
		// Fall back defensively; should not happen.
		return NearestNeighbor(m, 0)
	}
	return tour, m.TourCost(tour)
}

// OrOpt improves a tour by relocating segments of length 1..3 to every
// other position, a direction-preserving local search suited to asymmetric
// instances (unlike 2-opt, it never reverses a segment). It repeats until
// no move improves the cost.
func OrOpt(m Matrix, tour []int) ([]int, int) {
	n := len(tour)
	cur := append([]int(nil), tour...)
	cost := m.TourCost(cur)
	improved := true
	for improved {
		improved = false
		for segLen := 1; segLen <= 3 && segLen < n; segLen++ {
			for i := 0; i < n; i++ {
				// Segment occupies positions i..i+segLen-1 (cyclically
				// contiguous); try reinserting after position k.
				if i+segLen > n {
					continue
				}
				seg := append([]int(nil), cur[i:i+segLen]...)
				rest := append([]int(nil), cur[:i]...)
				rest = append(rest, cur[i+segLen:]...)
				for k := 0; k <= len(rest); k++ {
					cand := make([]int, 0, n)
					cand = append(cand, rest[:k]...)
					cand = append(cand, seg...)
					cand = append(cand, rest[k:]...)
					if c := m.TourCost(cand); c < cost {
						cur, cost = cand, c
						improved = true
					}
				}
			}
		}
	}
	return cur, cost
}

// bestHeuristic returns the best tour among nearest-neighbour from every
// start and greedy-edge, each polished with or-opt.
func bestHeuristic(m Matrix) ([]int, int) {
	n := len(m)
	var best []int
	bestCost := 0
	consider := func(t []int, c int) {
		t, c = OrOpt(m, t)
		if best == nil || c < bestCost {
			best, bestCost = t, c
		}
	}
	for s := 0; s < n; s++ {
		t, c := NearestNeighbor(m, s)
		consider(t, c)
	}
	t, c := GreedyEdge(m)
	consider(t, c)
	return canonical(best), bestCost
}
