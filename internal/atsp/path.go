package atsp

import (
	"fmt"

	"marchgen/internal/budget"
	"marchgen/internal/obs"
)

// Path finds a minimum-cost open path visiting every node exactly once —
// the shape of a Global Test Sequence, whose first and last patterns need
// not coincide. Starting at node v additionally costs startCost[v] (pass
// nil for free starts); ending is free. The problem is reduced to the
// cyclic ATSP by the paper's dummy-node construction: an extra node with
// zero cost from every node and startCost into every node, so cutting the
// optimal cycle at the dummy yields the optimal path.
//
// With exact=true the reduced instance is solved exactly (Held–Karp or
// branch and bound); otherwise the layered heuristics provide a fast
// near-optimal path.
func Path(m Matrix, startCost []int, exact bool) ([]int, int, error) {
	return PathMeter(nil, m, startCost, exact)
}

// PathMeter is Path under a budget meter: the exact reduction charges the
// meter per search node and aborts with a typed error on cancellation or
// node-budget exhaustion. The heuristic mode only probes for cancellation
// (it is the degradation target, so it must not consume the node budget).
func PathMeter(mt *budget.Meter, m Matrix, startCost []int, exact bool) ([]int, int, error) {
	return PathWorkers(mt, m, startCost, exact, 1)
}

// PathWorkers is PathMeter with a worker count for the exact solve: the
// branch-and-bound regime explores its subtrees on `workers` goroutines
// (see BranchBoundWorkers). The optimal cost is identical at any worker
// count; workers <= 1 is the sequential solver unchanged.
func PathWorkers(mt *budget.Meter, m Matrix, startCost []int, exact bool, workers int) ([]int, int, error) {
	return PathOpt(mt, m, startCost, exact, PathOptions{Workers: workers})
}

// PathOptions tunes PathOpt beyond the plain entry points; the zero value
// reproduces PathMeter exactly.
type PathOptions struct {
	// Workers is the exact solver's worker count (see SolveOptions).
	Workers int
	// WarmPath, when a valid open path over the instance's nodes, primes
	// the exact solve's incumbent bound (see SolveOptions.WarmTour; the
	// path is lifted to a tour of the dummy-extended matrix). Build one
	// from a related solve with CompletePath.
	WarmPath []int
	// PreferBB and CostOnly are forwarded to SolveOptions.
	PreferBB bool
	CostOnly bool
}

// PathOpt is PathWorkers under PathOptions: the same dummy-node reduction,
// with the exact solve optionally warm-started, forced onto the branch and
// bound, or relaxed to cost-only tie-breaking.
func PathOpt(mt *budget.Meter, m Matrix, startCost []int, exact bool, opt PathOptions) ([]int, int, error) {
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	if err := mt.CheckNow(); err != nil {
		return nil, 0, err
	}
	n := len(m)
	if startCost != nil && len(startCost) != n {
		return nil, 0, fmt.Errorf("atsp: startCost has %d entries, want %d", len(startCost), n)
	}
	if n == 1 {
		c := 0
		if startCost != nil {
			c = startCost[0]
		}
		return []int{0}, c, nil
	}
	ext := make(Matrix, n+1)
	for i := 0; i < n; i++ {
		ext[i] = append(append([]int(nil), m[i]...), 0) // v -> dummy: free
	}
	last := make([]int, n+1)
	for j := 0; j < n; j++ {
		if startCost != nil {
			last[j] = startCost[j]
		}
	}
	ext[n] = last

	var tour []int
	var cost int
	var err error
	if exact {
		so := SolveOptions{
			Workers:  opt.Workers,
			PreferBB: opt.PreferBB,
			CostOnly: opt.CostOnly,
		}
		if validTour(n, opt.WarmPath) {
			// An open path lifts to a tour of the extended instance by
			// leading with the dummy: dummy -> path[0] costs the start,
			// path[last] -> dummy is free.
			so.WarmTour = append([]int{n}, opt.WarmPath...)
		}
		tour, cost, err = SolveExactOpt(mt, ext, so)
		if err != nil {
			return nil, 0, err
		}
	} else {
		// The heuristic layer is the degradation target; a span here makes
		// an atsp downgrade visible in the trace.
		sp := obs.From(mt.Context()).StartUnder("atsp/heuristic").SetInt("n", int64(n))
		tour, cost = bestHeuristic(ext)
		sp.SetInt("cost", int64(cost)).End()
	}
	// Rotate so the dummy leads, then drop it.
	var at int
	for k, v := range tour {
		if v == n {
			at = k
			break
		}
	}
	path := append(append([]int(nil), tour[at+1:]...), tour[:at]...)
	if !validTour(n, path) {
		return nil, 0, fmt.Errorf("atsp: internal error: invalid path %v", path)
	}
	return path, cost, nil
}
