package cover

import (
	"testing"

	"marchgen/fault"
	"marchgen/march"
)

func instances(t *testing.T, list string) []fault.Instance {
	t.Helper()
	models, err := fault.ParseList(list)
	if err != nil {
		t.Fatal(err)
	}
	return fault.Instances(models)
}

func known(t *testing.T, name string) *march.Test {
	t.Helper()
	kt, ok := march.Known(name)
	if !ok {
		t.Fatalf("unknown %s", name)
	}
	return kt.Test
}

func TestBuildMATSvsSAF(t *testing.T) {
	m, err := Build(known(t, "MATS"), instances(t, "SAF"))
	if err != nil {
		t.Fatal(err)
	}
	// MATS = ⇕(w0); ⇕(r0,w1); ⇕(r1): reads at flattened ops 1 and 3.
	if len(m.Rows) != 2 || m.Rows[0] != 1 || m.Rows[1] != 3 {
		t.Errorf("rows %v, want [1 3]", m.Rows)
	}
	// SAF: 2 instances × 4 inits × 8 resolutions.
	if len(m.Cols) != 64 {
		t.Errorf("%d columns, want 64", len(m.Cols))
	}
}

func TestBuildRejectsIncomplete(t *testing.T) {
	if _, err := Build(known(t, "MATS"), instances(t, "TF")); err == nil {
		t.Error("MATS does not cover TF; Build must fail")
	}
}

func TestMATSIsNonRedundantForSAF(t *testing.T) {
	rep, err := Analyze(known(t, "MATS"), instances(t, "SAF"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.NonRedundant {
		t.Errorf("MATS vs SAF must be non-redundant: redundant reads %v, removable ops %v",
			rep.RedundantReads, rep.RemovableOps)
	}
	if len(rep.MinCover) != len(rep.Matrix.Rows) {
		t.Errorf("min cover %v vs rows %v", rep.MinCover, rep.Matrix.Rows)
	}
}

// TestMarchCIsRedundantForCoupling reproduces the classic fact motivating
// March C-: March C contains a redundant ⇕(r0) element.
func TestMarchCIsRedundantForCoupling(t *testing.T) {
	insts := instances(t, "SAF,TF,ADF,CFin,CFid")
	rep, err := Analyze(known(t, "MarchC"), insts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NonRedundant {
		t.Error("March C must be redundant for the March C- fault list")
	}
	found := false
	for _, op := range rep.RemovableOps {
		if op == 5 { // the middle ⇕(r0): ops w0,r0,w1,r1,w0,[r0],...
			found = true
		}
	}
	if !found {
		t.Errorf("removable ops %v must include the middle ⇕(r0) read (op 5)", rep.RemovableOps)
	}

	// March C- itself is non-redundant for the same list.
	rep, err = Analyze(known(t, "MarchC-"), insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RemovableOps) != 0 {
		t.Errorf("March C- must have no removable ops, got %v", rep.RemovableOps)
	}
}

func TestGreedyCoversEverything(t *testing.T) {
	m, err := Build(known(t, "MarchC-"), instances(t, "CFid"))
	if err != nil {
		t.Fatal(err)
	}
	chosen := m.Greedy()
	covered := make([]bool, len(m.Cols))
	for _, r := range chosen {
		for c := range m.Cols {
			if m.At(r, c) {
				covered[c] = true
			}
		}
	}
	for c, ok := range covered {
		if !ok {
			t.Fatalf("greedy cover misses column %s", m.Cols[c])
		}
	}
	mc, err := m.MinCover()
	if err != nil {
		t.Fatal(err)
	}
	if len(mc) > len(chosen) {
		t.Errorf("min cover %d larger than greedy %d", len(mc), len(chosen))
	}
}

// TestSOFConjunctiveColumns: a stuck-open fault needs two different reads —
// the per-initial-content columns make this expressible.
func TestSOFConjunctiveColumns(t *testing.T) {
	test, err := march.Parse("{ ⇕(w0); ⇕(r0); ⇕(w1); ⇕(r1) }")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(test, instances(t, "SOF"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MinCover) < 2 {
		t.Errorf("SOF needs at least two elementary blocks, min cover %v", rep.MinCover)
	}
}
