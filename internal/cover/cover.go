// Package cover implements the paper's Section 6 non-redundancy check: the
// March test is split into elementary blocks (its read-and-verify
// operations, each the observation of the excitations since the previous
// read), a Coverage Matrix of blocks × fault conditions is built from the
// fault simulator's per-run mismatch attribution, and a Set Covering
// instance over the matrix decides whether every block is necessary: the
// test is non-redundant exactly when the minimum cover uses all rows.
//
// The matrix columns are one per (fault instance, initial memory content,
// ⇕ resolution) triple — the finest grain at which guaranteed detection is
// defined — so a block set covering all columns is exactly a block set
// that still detects every fault.
package cover

import (
	"context"
	"fmt"
	"sort"

	"marchgen/fault"
	"marchgen/internal/memo"
	"marchgen/internal/obs"
	"marchgen/internal/pool"
	"marchgen/internal/sim"
	"marchgen/internal/simd"
	"marchgen/march"
)

// Matrix is the Coverage Matrix: Rows lists the flattened operation
// indices of the test's detecting reads (the elementary blocks), Cols
// labels the fault conditions, and At(r, c) is true when block r observes
// a mismatch for condition c. Rows are stored as dense bitsets, so the
// set-covering primitives (coverage gains, candidate counts) are masked
// popcounts over machine words instead of boolean scans.
type Matrix struct {
	Rows []int
	Cols []string
	// cells[r] is block r's column-membership bitset.
	cells []simd.Bitset
}

// Build assembles the Coverage Matrix for a test against a fault list.
// It fails when some fault condition has no mismatching read at all — the
// matrix is only meaningful for complete tests.
func Build(t *march.Test, instances []fault.Instance) (*Matrix, error) {
	return BuildWorkers(context.Background(), t, instances, 1, nil)
}

// At reports whether block r observes a mismatch for fault condition c.
func (m *Matrix) At(r, c int) bool { return m.cells[r].Get(c) }

// Clone deep-copies the matrix, so cached matrices can be handed out
// without aliasing the cache's copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		Rows:  append([]int(nil), m.Rows...),
		Cols:  append([]string(nil), m.Cols...),
		cells: make([]simd.Bitset, len(m.cells)),
	}
	for r := range m.cells {
		c.cells[r] = m.cells[r].Clone()
	}
	return c
}

// matrixKey fingerprints a (test, fault list) pair for the memo cache.
func matrixKey(t *march.Test, instances []fault.Instance) string {
	return memo.NewFingerprinter("cover").Str(t.String()).Str(fault.Key(instances)).Key()
}

// BuildWorkers is Build with the per-instance row construction fanned out
// over a bounded worker pool (workers <= 0: GOMAXPROCS) and, when cache is
// non-nil, memoised under the canonical (test, fault list) fingerprint.
// Columns are assembled in instance order, so the matrix is byte-identical
// to the sequential build at any worker count, warm or cold. The context
// carries the observability run (when one is attached): the build gets a
// verify/cover span and the matrix shape lands in the run's metrics.
func BuildWorkers(ctx context.Context, t *march.Test, instances []fault.Instance, workers int, cache *memo.Cache) (*Matrix, error) {
	run := obs.From(ctx)
	sp := run.StartUnder("verify/cover").SetInt("instances", int64(len(instances)))
	var key string
	if cache != nil {
		key = matrixKey(t, instances)
		if v, ok := cache.Get(key); ok {
			run.Counter("memo.matrix_hits").Inc()
			m := v.(*Matrix).Clone()
			sp.SetInt("cached", 1)
			observeMatrix(run, sp, m)
			return m, nil
		}
	}
	type column struct {
		label string
		ops   []int
	}
	perInstance, err := sim.RunsBatch(ctx, t, instances, workers, sim.Kernel)
	if err != nil {
		sp.End()
		return nil, err
	}
	var cols []column
	for i, runs := range perInstance {
		inst := instances[i]
		for k, run := range runs {
			if len(run.MismatchOps) == 0 {
				sp.End()
				return nil, fmt.Errorf("cover: test %s misses %s (init %s)", t, inst.Name, run.Init)
			}
			cols = append(cols, column{
				label: fmt.Sprintf("%s/init=%s/res=%d", inst.Name, run.Init, k),
				ops:   run.MismatchOps,
			})
		}
		// Every run of instance i mismatched: its coverage obligation is
		// satisfied — stream the verify path's progress through the list.
		run.Progress().Coverage(int64(i+1), int64(len(instances)))
	}
	// The row universe is the test's flattened op index space; a scratch
	// presence slice replaces the old map-backed row set.
	numOps := len(t.Ops())
	present := make([]bool, numOps)
	for _, col := range cols {
		for _, op := range col.ops {
			present[op] = true
		}
	}
	m := &Matrix{}
	rowIdx := make([]int, numOps)
	for op, ok := range present {
		if ok {
			rowIdx[op] = len(m.Rows)
			m.Rows = append(m.Rows, op)
		}
	}
	m.cells = make([]simd.Bitset, len(m.Rows))
	for r := range m.cells {
		m.cells[r] = simd.NewBitset(len(cols))
	}
	for c, col := range cols {
		m.Cols = append(m.Cols, col.label)
		for _, op := range col.ops {
			m.cells[rowIdx[op]].Set(c)
		}
	}
	if cache != nil {
		cache.Put(key, m.Clone())
	}
	observeMatrix(run, sp, m)
	return m, nil
}

// observeMatrix records the matrix shape and fill rate (set cells per
// thousand) on the span and in the metrics, then ends the span. The
// O(rows·cols) fill scan only runs when observation is on.
func observeMatrix(run *obs.Run, sp *obs.Span, m *Matrix) {
	if run == nil {
		return
	}
	set := 0
	for r := range m.cells {
		set += m.cells[r].Count()
	}
	permille := int64(0)
	if total := len(m.Rows) * len(m.Cols); total > 0 {
		permille = int64(set) * 1000 / int64(total)
	}
	run.Counter("cover.rows").Add(int64(len(m.Rows)))
	run.Counter("cover.cols").Add(int64(len(m.Cols)))
	run.Histogram("cover.fill_permille").Observe(permille)
	sp.SetInt("rows", int64(len(m.Rows))).
		SetInt("cols", int64(len(m.Cols))).
		SetInt("fill_permille", permille).
		End()
}

// Greedy returns a feasible cover by repeatedly picking the row covering
// the most uncovered columns — the classical approximation, used as the
// branch-and-bound upper bound. Each round's gain scan is one masked
// popcount per row.
func (m *Matrix) Greedy() []int {
	covered := simd.NewBitset(len(m.Cols))
	var chosen []int
	for {
		best, bestGain := -1, 0
		for r := range m.cells {
			if gain := m.cells[r].CountNotIn(covered); gain > bestGain {
				best, bestGain = r, gain
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		covered.OrWith(m.cells[best])
	}
	sort.Ints(chosen)
	return chosen
}

// MinCover returns an optimal set cover (indices into Rows) by branch and
// bound, always branching on the uncovered column with the fewest
// candidate rows.
func (m *Matrix) MinCover() ([]int, error) {
	// candidates[c] is the number of rows covering column c, fixed for
	// the whole search; the branch column is the uncovered column with
	// the fewest candidates.
	candidates := make([]int, len(m.Cols))
	for r := range m.cells {
		row := m.cells[r]
		for c := range m.Cols {
			if row.Get(c) {
				candidates[c]++
			}
		}
	}
	for c, n := range candidates {
		if n == 0 {
			return nil, fmt.Errorf("cover: column %s is uncoverable", m.Cols[c])
		}
	}
	best := m.Greedy()
	covered := make([]int, len(m.Cols)) // coverage multiplicity per column
	var cur []int
	var rec func()
	rec = func() {
		if len(cur) >= len(best) {
			return // cannot improve
		}
		pick, pickCount := -1, 0
		for c := range m.Cols {
			if covered[c] > 0 {
				continue
			}
			if pick < 0 || candidates[c] < pickCount {
				pick, pickCount = c, candidates[c]
			}
		}
		if pick < 0 {
			best = append([]int(nil), cur...)
			return
		}
		for r := range m.cells {
			row := m.cells[r]
			if !row.Get(pick) {
				continue
			}
			cur = append(cur, r)
			for c := range m.Cols {
				if row.Get(c) {
					covered[c]++
				}
			}
			rec()
			for c := range m.Cols {
				if row.Get(c) {
					covered[c]--
				}
			}
			cur = cur[:len(cur)-1]
		}
	}
	rec()
	sort.Ints(best)
	return best, nil
}

// Report is the outcome of the non-redundancy analysis.
type Report struct {
	Matrix *Matrix
	// MinCover is an optimal choice of elementary blocks (flattened op
	// indices).
	MinCover []int
	// RedundantReads lists detecting reads outside the minimum cover
	// (empty for a non-redundant test).
	RedundantReads []int
	// RemovableOps lists operations whose individual removal keeps the
	// test complete (the stronger, op-level redundancy audit).
	RemovableOps []int
	// NonRedundant is true when every elementary block is necessary and
	// no operation is individually removable.
	NonRedundant bool
}

// Analyze runs the full Section 6 check on a test against a fault list.
func Analyze(t *march.Test, instances []fault.Instance) (*Report, error) {
	return AnalyzeWorkers(context.Background(), t, instances, 1, nil)
}

// AnalyzeWorkers is Analyze on the parallel engine: matrix rows and the
// op-level removability audit fan out over a bounded worker pool, and a
// non-nil cache memoises the coverage matrix across runs. The report is
// byte-identical to the sequential analysis at any worker count.
func AnalyzeWorkers(ctx context.Context, t *march.Test, instances []fault.Instance, workers int, cache *memo.Cache) (*Report, error) {
	m, err := BuildWorkers(ctx, t, instances, workers, cache)
	if err != nil {
		return nil, err
	}
	mc, err := m.MinCover()
	if err != nil {
		return nil, err
	}
	rep := &Report{Matrix: m}
	for _, r := range mc {
		rep.MinCover = append(rep.MinCover, m.Rows[r])
	}
	inCover := map[int]bool{}
	for _, r := range mc {
		inCover[r] = true
	}
	for r := range m.Rows {
		if !inCover[r] {
			rep.RedundantReads = append(rep.RedundantReads, m.Rows[r])
		}
	}
	removable, err := RemovableOpsWorkers(ctx, t, instances, workers)
	if err != nil {
		return nil, err
	}
	rep.RemovableOps = removable
	rep.NonRedundant = len(rep.RedundantReads) == 0 && len(removable) == 0
	return rep, nil
}

// RemovableOps returns the flattened indices of operations whose
// individual removal keeps the test complete — the op-level redundancy
// audit (stronger than the read-block set covering, since it also judges
// writes).
func RemovableOps(t *march.Test, instances []fault.Instance) ([]int, error) {
	return RemovableOpsWorkers(context.Background(), t, instances, 1)
}

// RemovableOpsWorkers is RemovableOps with the per-op trial removals
// evaluated on a bounded worker pool (each trial re-simulates the whole
// fault list, making this the audit's hot loop). The removable set is
// collected in flat-index order, identical at any worker count.
func RemovableOpsWorkers(ctx context.Context, t *march.Test, instances []fault.Instance, workers int) ([]int, error) {
	cov, err := sim.Evaluate(t, instances)
	if err != nil {
		return nil, err
	}
	if !cov.Complete() {
		return nil, fmt.Errorf("cover: test %s misses %v", t, cov.Missed())
	}
	type trial struct{ e, o int }
	var trials []trial
	for e := range t.Elements {
		for o := range t.Elements[e].Ops {
			trials = append(trials, trial{e, o})
		}
	}
	verdicts, err := pool.MapCtx(ctx, workers, len(trials), func(i int) (bool, error) {
		e, o := trials[i].e, trials[i].o
		cand := t.Clone()
		elem := &cand.Elements[e]
		elem.Ops = append(append([]march.Op(nil), elem.Ops[:o]...), elem.Ops[o+1:]...)
		if len(elem.Ops) == 0 {
			cand.Elements = append(cand.Elements[:e], cand.Elements[e+1:]...)
		}
		if len(cand.Elements) > 0 && cand.Validate() == nil {
			if c2, err := sim.Evaluate(cand, instances); err == nil && c2.Complete() {
				return true, nil
			}
		}
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	var removable []int
	for flat, ok := range verdicts {
		if ok {
			removable = append(removable, flat)
		}
	}
	return removable, nil
}
