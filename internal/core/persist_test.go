package core

import (
	"reflect"
	"testing"
)

// TestCodecRoundTrip proves the persisted kinds survive encode/decode
// bit-exactly and that everything else is refused (stays memory-only).
func TestCodecRoundTrip(t *testing.T) {
	c := Codec()

	frag := &tourFragment{paths: [][]int{{0, 2, 1}, {1, 2, 0}}, cost: 17}
	data, ok := c.Encode(frag)
	if !ok {
		t.Fatal("tour fragment not persistable")
	}
	back, ok := c.Decode(data)
	if !ok {
		t.Fatal("tour fragment did not decode")
	}
	got := back.(*tourFragment)
	if !reflect.DeepEqual(got.paths, frag.paths) || got.cost != frag.cost {
		t.Fatalf("round trip lost data: %+v vs %+v", got, frag)
	}

	for _, v := range []bool{true, false} {
		data, ok := c.Encode(v)
		if !ok {
			t.Fatalf("verdict %v not persistable", v)
		}
		back, ok := c.Decode(data)
		if !ok || back.(bool) != v {
			t.Fatalf("verdict %v round trip: %v, %v", v, back, ok)
		}
	}

	// Non-persistable kinds: refused on encode, so they never reach disk.
	for _, v := range []any{"string", 42, &cachedResult{}, nil} {
		if _, ok := c.Encode(v); ok {
			t.Fatalf("%T must not be persistable", v)
		}
	}

	// Garbage and wrong versions decode to a miss, never a panic.
	for _, raw := range []string{"", "{", `{"v":99,"kind":"tour","data":{}}`, `{"v":1,"kind":"?","data":1}`, `{"v":1,"kind":"tour","data":{"paths":[],"cost":0}}`} {
		if _, ok := c.Decode([]byte(raw)); ok {
			t.Fatalf("decoded garbage %q", raw)
		}
	}
}
