package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"marchgen/fault"
	"marchgen/internal/budget"
	"marchgen/internal/obs"
)

// localDistributor runs every shard in-process through RunShardModels —
// the purest possible distributor, so any output difference against the
// sequential sweep is the protocol's fault, not transport's.
type localDistributor struct {
	n    int
	runs atomic.Int64
}

func (d *localDistributor) Shards(total int) []SweepShard {
	if total < d.n {
		return nil
	}
	shards := make([]SweepShard, 0, d.n)
	lo := 0
	for i := 0; i < d.n; i++ {
		hi := lo + (total-lo)/(d.n-i)
		shards = append(shards, SweepShard{Lo: lo, Hi: hi})
		lo = hi
	}
	return shards
}

func (d *localDistributor) RunShard(ctx context.Context, models []fault.Model, opts Options, sh SweepShard) (*ShardOutcome, error) {
	d.runs.Add(1)
	return RunShardModels(ctx, models, opts, sh)
}

// warmOptions returns the only configuration distribution is offered to.
func warmOptions() Options {
	opts := DefaultOptions()
	opts.SolverMode = SolverWarm
	return opts
}

// TestDistributedSweepByteIdentical is the tentpole's correctness lock:
// for every Table 3 fault list whose sweep has more than one selection
// and several shard counts, the distributed sweep must reproduce the
// sequential SolverWarm result byte-for-byte — same test string,
// candidate count, minimum selection cost and winning selection stats.
// (SAF, SAF,TF and the five-fault list reduce to a single selection, so
// distribution correctly never engages for them — see
// TestSingleSelectionSweepNotDistributed.)
func TestDistributedSweepByteIdentical(t *testing.T) {
	lists := []string{"SAF,TF,ADF", "SAF,TF,ADF,CFin", "CFin"}
	for _, list := range lists {
		seq := generate(t, list, warmOptions())
		for _, n := range []int{2, 3, 5} {
			t.Run(fmt.Sprintf("%s/shards=%d", list, n), func(t *testing.T) {
				d := &localDistributor{n: n}
				run := obs.NewRun()
				opts := warmOptions()
				opts.Distributor = d
				opts.Obs = run
				dist := generate(t, list, opts)

				if got, want := dist.Test.String(), seq.Test.String(); got != want {
					t.Fatalf("distributed test %q != sequential %q", got, want)
				}
				if dist.Complexity != seq.Complexity {
					t.Fatalf("complexity %d != %d", dist.Complexity, seq.Complexity)
				}
				if dist.Candidates != seq.Candidates {
					t.Fatalf("candidates %d != %d", dist.Candidates, seq.Candidates)
				}
				if dist.MinSelectionCost != seq.MinSelectionCost {
					t.Fatalf("min selection cost %d != %d", dist.MinSelectionCost, seq.MinSelectionCost)
				}
				if dist.Nodes != seq.Nodes || dist.PathCost != seq.PathCost {
					t.Fatalf("winning selection (%d nodes, cost %d) != (%d, %d)",
						dist.Nodes, dist.PathCost, seq.Nodes, seq.PathCost)
				}
				snap := run.Snapshot()
				if snap["core.sweep.distributed"] != 1 {
					t.Fatalf("core.sweep.distributed = %d, want 1 (metrics %v)", snap["core.sweep.distributed"], snap)
				}
				if got := d.runs.Load(); got != int64(n) {
					t.Fatalf("distributor ran %d shards, want %d", got, n)
				}
			})
		}
	}
}

// TestSingleSelectionSweepNotDistributed locks the eligibility gate's
// other side: a sweep of one selection has nothing to distribute, so
// the distributor is never consulted and the result is the ordinary
// sequential one.
func TestSingleSelectionSweepNotDistributed(t *testing.T) {
	for _, list := range []string{"SAF", "SAF,TF", "SAF,TF,ADF,CFin,CFid"} {
		seq := generate(t, list, warmOptions())
		d := &localDistributor{n: 2}
		run := obs.NewRun()
		opts := warmOptions()
		opts.Distributor = d
		opts.Obs = run
		res := generate(t, list, opts)
		if res.Test.String() != seq.Test.String() {
			t.Fatalf("%s: %q != sequential %q", list, res.Test, seq.Test)
		}
		if got := d.runs.Load(); got != 0 {
			t.Fatalf("%s: distributor ran %d shards on a single-selection sweep", list, got)
		}
		if run.Snapshot()["core.sweep.distributed"] != 0 {
			t.Fatalf("%s: core.sweep.distributed non-zero", list)
		}
	}
}

// TestDistributedMatchesEnumerate locks the cross-mode invariant the
// serve tier leans on: the distributed warm sweep equals not just
// sequential warm but the enumerate baseline too, so replicas can
// run warm without changing what clients observe.
func TestDistributedMatchesEnumerate(t *testing.T) {
	for _, list := range []string{"SAF,TF,ADF", "SAF,TF,ADF,CFin"} {
		eopts := DefaultOptions()
		eopts.SolverMode = SolverEnumerate
		enum := generate(t, list, eopts)
		opts := warmOptions()
		opts.Distributor = &localDistributor{n: 3}
		dist := generate(t, list, opts)
		if dist.Test.String() != enum.Test.String() {
			t.Fatalf("%s: distributed warm %q != enumerate %q", list, dist.Test, enum.Test)
		}
		if dist.MinSelectionCost != enum.MinSelectionCost {
			t.Fatalf("%s: min selection cost %d != %d", list, dist.MinSelectionCost, enum.MinSelectionCost)
		}
	}
}

// decliningDistributor declines every partition request.
type decliningDistributor struct{}

func (decliningDistributor) Shards(total int) []SweepShard { return nil }
func (decliningDistributor) RunShard(ctx context.Context, models []fault.Model, opts Options, sh SweepShard) (*ShardOutcome, error) {
	return nil, fmt.Errorf("unreachable")
}

// badPartitionDistributor returns a gapped partition.
type badPartitionDistributor struct{}

func (badPartitionDistributor) Shards(total int) []SweepShard {
	return []SweepShard{{Lo: 0, Hi: 1}, {Lo: 2, Hi: total}}
}
func (badPartitionDistributor) RunShard(ctx context.Context, models []fault.Model, opts Options, sh SweepShard) (*ShardOutcome, error) {
	return nil, fmt.Errorf("unreachable")
}

// failingDistributor partitions correctly but fails one shard.
type failingDistributor struct{ inner localDistributor }

func (d *failingDistributor) Shards(total int) []SweepShard {
	d.inner.n = 3
	return d.inner.Shards(total)
}
func (d *failingDistributor) RunShard(ctx context.Context, models []fault.Model, opts Options, sh SweepShard) (*ShardOutcome, error) {
	if sh.Lo == 0 {
		return nil, fmt.Errorf("shard host down")
	}
	return RunShardModels(ctx, models, opts, sh)
}

// TestDistributedFallsBackSequential locks that declines, malformed
// partitions and shard failures all degrade to the ordinary sequential
// sweep with an unchanged result — the distributor is never a
// correctness dependency.
func TestDistributedFallsBackSequential(t *testing.T) {
	const list = "SAF,TF,ADF"
	seq := generate(t, list, warmOptions())
	cases := []struct {
		name    string
		d       SweepDistributor
		counter string
	}{
		{"decline", decliningDistributor{}, "core.sweep.local_fallback"},
		{"bad-partition", badPartitionDistributor{}, "core.sweep.bad_partition"},
		{"shard-error", &failingDistributor{}, "core.sweep.shard_errors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := obs.NewRun()
			opts := warmOptions()
			opts.Distributor = tc.d
			opts.Obs = run
			res := generate(t, list, opts)
			if res.Test.String() != seq.Test.String() {
				t.Fatalf("fallback result %q != sequential %q", res.Test, seq.Test)
			}
			snap := run.Snapshot()
			if snap[tc.counter] == 0 {
				t.Fatalf("%s = 0, want non-zero (metrics %v)", tc.counter, snap)
			}
			if snap["core.sweep.distributed"] != 0 {
				t.Fatalf("core.sweep.distributed = %d after a failed distribution", snap["core.sweep.distributed"])
			}
		})
	}
}

// TestRunShardModelsRangeValidation locks the executor's usage errors:
// out-of-range and inverted shards are rejected with budget.ErrUsage so
// the serving layer maps them to HTTP 400.
func TestRunShardModelsRangeValidation(t *testing.T) {
	models, err := fault.ParseList("SAF,TF")
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range []SweepShard{{Lo: -1, Hi: 1}, {Lo: 0, Hi: 10000}, {Lo: 3, Hi: 3}, {Lo: 5, Hi: 2}} {
		_, err := RunShardModels(context.Background(), models, DefaultOptions(), sh)
		if !errors.Is(err, budget.ErrUsage) {
			t.Fatalf("shard %+v: err = %v, want a usage error", sh, err)
		}
	}
}
