package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"marchgen/fault"
	"marchgen/internal/sim"
	"marchgen/march"
)

// FuzzKernelEquivalence fuzzes the bit-parallel kernel against the scalar
// oracle on randomised user-defined fault models: any (random fault list,
// known March test) pair must produce identical detection verdicts,
// identical detecting-op attributions and identical per-run mismatch
// attributions on both engines. This extends the curated differential
// tests in internal/sim to machines outside the built-in library.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(998877), uint8(3))
	f.Add(int64(443322), uint8(7))
	f.Add(int64(-42), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, testPick uint8) {
		rng := rand.New(rand.NewSource(seed))
		var instances []fault.Instance
		for k := 0; k <= rng.Intn(3); k++ {
			dev := randomDeviation(rng)
			inst, err := fault.FromDeviations("FUZZ", devName(int(seed&0xFF), k, dev), false, dev)
			if err != nil {
				continue // unobservable or masked: correctly rejected
			}
			instances = append(instances, inst)
		}
		if len(instances) == 0 {
			t.Skip("no observable instances from this seed")
		}
		names := march.KnownNames()
		mt, ok := march.Known(names[int(testPick)%len(names)])
		if !ok {
			t.Fatalf("known test %q vanished", names[int(testPick)%len(names)])
		}
		ctx := context.Background()
		wantCov, err := sim.EvaluateEngine(ctx, mt.Test, instances, 1, sim.Scalar)
		if err != nil {
			t.Fatal(err)
		}
		gotCov, err := sim.EvaluateEngine(ctx, mt.Test, instances, 1, sim.Kernel)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotCov.Results) != len(wantCov.Results) {
			t.Fatalf("result count: kernel %d, scalar %d", len(gotCov.Results), len(wantCov.Results))
		}
		for k := range wantCov.Results {
			g, w := gotCov.Results[k], wantCov.Results[k]
			if g.Detected != w.Detected || !reflect.DeepEqual(g.DetectingOps, w.DetectingOps) {
				t.Errorf("%s vs %s: kernel detected=%v ops=%v, scalar detected=%v ops=%v",
					names[int(testPick)%len(names)], w.Instance.Name, g.Detected, g.DetectingOps, w.Detected, w.DetectingOps)
			}
		}
		wantRuns, err := sim.RunsBatch(ctx, mt.Test, instances, 1, sim.Scalar)
		if err != nil {
			t.Fatal(err)
		}
		gotRuns, err := sim.RunsBatch(ctx, mt.Test, instances, 1, sim.Kernel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRuns, wantRuns) {
			t.Errorf("%s: kernel runs differ from scalar:\nkernel: %+v\nscalar: %+v",
				names[int(testPick)%len(names)], gotRuns, wantRuns)
		}
	})
}
