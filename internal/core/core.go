// Package core implements the paper's March test generation pipeline — its
// primary contribution (Sections 4–5):
//
//  1. the target fault list is expanded into fault instances and Basic
//     Fault Effects, grouped into equivalence classes (package fault);
//  2. every economical class selection is enumerated (Section 5) and its
//     patterns are reduced to a Test Pattern Graph (package tpg);
//  3. a minimum-weight open visit of the TPG — an asymmetric TSP with the
//     f.4.4 uniform-start preference expressed as start costs — yields an
//     optimal Global Test Sequence ordering (package atsp);
//  4. the rewrite engine folds the ordered patterns into candidate March
//     tests (package gts);
//  5. candidates are validated against the real fault machines, shrunk to
//     non-redundancy, and the cheapest complete test wins (package sim).
//
// Unlike the exhaustive prior work the paper compares against (implemented
// in package baseline), no search over the space of March tests takes
// place: the only combinatorial step is the small ATSP instance.
package core

import (
	"fmt"
	"time"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/atsp"
	"marchgen/internal/baseline"
	"marchgen/internal/gts"
	"marchgen/internal/sim"
	"marchgen/internal/tpg"
	"marchgen/march"
)

// Options tunes the generator.
type Options struct {
	// Exact selects the exact ATSP solver; when false the layered
	// heuristics are used (faster, possibly suboptimal ordering).
	Exact bool
	// SelectionLimit caps the equivalence-class enumeration (Section 5's
	// E = ∏|Cᵢ| product).
	SelectionLimit int
	// Beam tunes the rewrite engine.
	Beam gts.Options
	// DisableShrink skips the final redundancy-elimination pass (useful
	// for ablation measurements).
	DisableShrink bool
	// DisableEquivalence forces one TPG node per BFE instead of one per
	// equivalence class (the Section 5 ablation).
	DisableEquivalence bool
	// DisableFallback turns off the bounded branch-and-bound fallback
	// used when an exotic user-defined fault falls outside the rewrite
	// grammar (the pipeline then fails instead of searching).
	DisableFallback bool
	// FallbackCap bounds the fallback search complexity (default 12).
	FallbackCap int
}

// DefaultOptions returns the options used by the published experiments.
func DefaultOptions() Options {
	return Options{Exact: true, SelectionLimit: 64, Beam: gts.DefaultOptions()}
}

// Result describes a generated March test and the pipeline statistics the
// paper reports.
type Result struct {
	// Test is the generated, validated, non-redundant March test.
	Test *march.Test
	// Complexity is Test.Complexity() (the paper's "kn" figure).
	Complexity int
	// Instances is the expanded fault list the test provably detects.
	Instances []fault.Instance
	// Classes is the number of BFE equivalence classes.
	Classes int
	// Selections is the number of class selections enumerated.
	Selections int
	// Nodes is the TPG size of the winning selection.
	Nodes int
	// PathCost is the winning ATSP visit cost (March-operation proxy).
	PathCost int
	// Candidates counts the rewrite candidates validated.
	Candidates int
	// UsedFallback reports that the rewrite pipeline produced no valid
	// candidate and the bounded branch-and-bound fallback supplied the
	// (still provably minimal) test.
	UsedFallback bool
	// Elapsed is the wall-clock generation time.
	Elapsed time.Duration
	// Coverage is the final validation report.
	Coverage sim.Coverage
}

// Generate synthesises a minimal March test covering every instance of the
// given fault models.
func Generate(models []fault.Model, opts Options) (*Result, error) {
	start := time.Now()
	if opts.SelectionLimit <= 0 {
		opts.SelectionLimit = 64
	}
	instances := fault.Instances(models)
	if len(instances) == 0 {
		return nil, fmt.Errorf("core: empty fault list")
	}
	classes := tpg.Classes(instances)
	if opts.DisableEquivalence {
		classes = splitClasses(classes)
	}
	selections := tpg.Selections(classes, opts.SelectionLimit)

	res := &Result{
		Instances: instances,
		Classes:   len(classes),
	}
	gen := &genContext{instances: instances, verdict: map[string]bool{}}
	var best *march.Test
	var lastErr error
	bestNodes, bestCost := 0, 0
	seenNodeSets := map[string]bool{}
	for _, sel := range selections {
		nodes := tpg.Reduce(classes, sel)
		nodeSig := ""
		for _, n := range nodes {
			nodeSig += n.Pattern.String() + ";"
		}
		if seenNodeSets[nodeSig] {
			continue // different selections can reduce to the same TPG
		}
		seenNodeSets[nodeSig] = true
		patterns, cost, err := orderPatterns(nodes, opts.Exact)
		if err != nil {
			lastErr = err
			continue
		}
		seenOrder := map[string]bool{}
		for _, ordered := range patterns {
			if sig := orderSignature(ordered); seenOrder[sig] {
				continue
			} else {
				seenOrder[sig] = true
			}
			cands, err := gts.Assemble(ordered, opts.Beam)
			if err != nil {
				lastErr = err
				continue
			}
			for _, cand := range cands {
				res.Candidates++
				if best != nil && cand.Complexity() >= best.Complexity()+2 {
					continue // too long to beat the incumbent even after shrinking
				}
				if !gen.complete(cand) {
					continue
				}
				if !opts.DisableShrink {
					cand = gen.shrink(cand)
				}
				if better(cand, best) {
					best = cand
					bestNodes, bestCost = len(nodes), cost
				}
			}
		}
	}
	res.Selections = len(selections)
	if best == nil && !opts.DisableFallback {
		best = fallbackSearch(instances, opts)
		res.UsedFallback = best != nil
	}
	if best == nil {
		if lastErr != nil {
			return nil, fmt.Errorf("core: no valid March test found for the fault list (%d classes; last pipeline error: %w)", len(classes), lastErr)
		}
		return nil, fmt.Errorf("core: no valid March test found for the fault list (%d classes)", len(classes))
	}
	best = gen.relaxOrders(best)
	cov, err := sim.Evaluate(best, instances)
	if err != nil {
		return nil, err
	}
	if !cov.Complete() {
		return nil, fmt.Errorf("core: internal error: final test lost coverage")
	}
	res.Test = best
	res.Complexity = best.Complexity()
	res.Nodes = bestNodes
	res.PathCost = bestCost
	res.Coverage = cov
	res.Elapsed = time.Since(start)
	return res, nil
}

// fallbackSearch runs the bounded branch-and-bound generator when the
// rewrite grammar cannot realise some pattern of an exotic user-defined
// fault. Retention faults are excluded (the search space has no delay
// elements).
func fallbackSearch(instances []fault.Instance, opts Options) *march.Test {
	cap := opts.FallbackCap
	if cap <= 0 {
		cap = 12
	}
	for _, inst := range instances {
		for _, b := range inst.BFEs {
			for _, in := range b.Pattern.Excite {
				if in.IsWait() {
					return nil
				}
			}
		}
	}
	t, _, err := baseline.BranchBound(instances, cap)
	if err != nil {
		return nil
	}
	return t
}

// better orders candidates by complexity, then element count.
func better(cand, best *march.Test) bool {
	if best == nil {
		return true
	}
	if cand.Complexity() != best.Complexity() {
		return cand.Complexity() < best.Complexity()
	}
	return len(cand.Elements) < len(best.Elements)
}

// splitClasses explodes every equivalence class into single-option classes
// (the Section 5 ablation: every BFE must be realised individually).
func splitClasses(classes []tpg.Class) []tpg.Class {
	var out []tpg.Class
	for _, c := range classes {
		for k, opt := range c.Options {
			out = append(out, tpg.Class{
				Label:   fmt.Sprintf("%s#%d", c.Label, k),
				Options: []fsm.Pattern{opt},
			})
		}
	}
	return out
}

// orderPatterns solves the constrained open-path ATSP over the TPG and
// returns the pattern orderings worth assembling: every optimal visit (the
// rewrite engine folds different optimal orders into March tests of
// different quality) plus each one reversed. In heuristic mode a single
// near-optimal path and its reverse are returned.
func orderPatterns(nodes []tpg.Node, exact bool) ([][]fsm.Pattern, int, error) {
	g := tpg.New(nodes)
	if len(nodes) == 1 {
		return [][]fsm.Pattern{{nodes[0].Pattern}}, g.StartCost(0) + g.NodeCost(0), nil
	}
	starts := make([]int, len(nodes))
	total := 0
	for b := range nodes {
		starts[b] = g.StartCost(b)
		total += g.NodeCost(b)
	}
	var paths [][]int
	var cost int
	if exact {
		var err error
		paths, cost, err = atsp.OptimalPaths(atsp.Matrix(g.Weight), starts, 8)
		if err != nil {
			return nil, 0, err
		}
	} else {
		path, c, err := atsp.Path(atsp.Matrix(g.Weight), starts, false)
		if err != nil {
			return nil, 0, err
		}
		paths, cost = [][]int{path}, c
	}
	var orders [][]fsm.Pattern
	for _, path := range paths {
		forward := make([]fsm.Pattern, len(path))
		backward := make([]fsm.Pattern, len(path))
		for k, v := range path {
			forward[k] = nodes[v].Pattern
			backward[len(path)-1-k] = nodes[v].Pattern
		}
		orders = append(orders, forward, backward)
	}
	return orders, cost + total, nil
}

// genContext memoises completeness verdicts by test signature: the same
// candidate recurs across orderings, selections and shrink steps.
type genContext struct {
	instances []fault.Instance
	verdict   map[string]bool
}

func (g *genContext) complete(t *march.Test) bool {
	if t == nil || t.Validate() != nil {
		return false
	}
	sig := t.String()
	if v, ok := g.verdict[sig]; ok {
		return v
	}
	cov, err := sim.Evaluate(t, g.instances)
	v := err == nil && cov.Complete()
	g.verdict[sig] = v
	return v
}

// orderSignature fingerprints a pattern ordering for deduplication.
func orderSignature(patterns []fsm.Pattern) string {
	sig := ""
	for _, p := range patterns {
		sig += p.String() + ";"
	}
	return sig
}

// shrink removes redundant operations: any operation (or delay element)
// whose removal keeps the test complete is dropped, repeatedly, so the
// returned test is non-redundant by construction — the property the
// paper's Set Covering check certifies.
func (g *genContext) shrink(t *march.Test) *march.Test {
	cur := t
	for {
		improved := false
	scan:
		for e := 0; e < len(cur.Elements); e++ {
			if cur.Elements[e].Delay {
				cand := dropDelay(cur, e)
				if g.complete(cand) {
					cur, improved = cand, true
					break scan
				}
				continue
			}
			for o := 0; o < len(cur.Elements[e].Ops); o++ {
				cand := dropOp(cur, e, o)
				if cand != nil && g.complete(cand) {
					cur, improved = cand, true
					break scan
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

// dropOp removes one operation (dropping the element entirely when it was
// the last one); returns nil when the result would be structurally empty.
func dropOp(t *march.Test, e, o int) *march.Test {
	c := t.Clone()
	elem := &c.Elements[e]
	elem.Ops = append(elem.Ops[:o], elem.Ops[o+1:]...)
	if len(elem.Ops) == 0 {
		c.Elements = append(c.Elements[:e], c.Elements[e+1:]...)
	}
	if len(c.Elements) == 0 {
		return nil
	}
	return c
}

func dropDelay(t *march.Test, e int) *march.Test {
	c := t.Clone()
	c.Elements = append(c.Elements[:e], c.Elements[e+1:]...)
	return c
}

// relaxOrders widens ⇑/⇓ constraints to ⇕ where coverage allows, matching
// the conventional presentation of known March tests (Rule 5: elements
// whose order is irrelevant carry the ⇕ symbol).
func (g *genContext) relaxOrders(t *march.Test) *march.Test {
	cur := t.Clone()
	for e := range cur.Elements {
		if cur.Elements[e].Delay || cur.Elements[e].Order == march.Any {
			continue
		}
		saved := cur.Elements[e].Order
		cur.Elements[e].Order = march.Any
		if !g.complete(cur) {
			cur.Elements[e].Order = saved
		}
	}
	return cur
}
