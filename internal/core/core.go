// Package core implements the paper's March test generation pipeline — its
// primary contribution (Sections 4–5):
//
//  1. the target fault list is expanded into fault instances and Basic
//     Fault Effects, grouped into equivalence classes (package fault);
//  2. every economical class selection is enumerated (Section 5) and its
//     patterns are reduced to a Test Pattern Graph (package tpg);
//  3. a minimum-weight open visit of the TPG — an asymmetric TSP with the
//     f.4.4 uniform-start preference expressed as start costs — yields an
//     optimal Global Test Sequence ordering (package atsp);
//  4. the rewrite engine folds the ordered patterns into candidate March
//     tests (package gts);
//  5. candidates are validated against the real fault machines, shrunk to
//     non-redundancy, and the cheapest complete test wins (package sim).
//
// Unlike the exhaustive prior work the paper compares against (implemented
// in package baseline), no search over the space of March tests takes
// place: the only combinatorial step is the small ATSP instance.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/atsp"
	"marchgen/internal/baseline"
	"marchgen/internal/budget"
	"marchgen/internal/gts"
	"marchgen/internal/memo"
	"marchgen/internal/obs"
	"marchgen/internal/sim"
	"marchgen/internal/tpg"
	"marchgen/march"
)

// Options tunes the generator.
type Options struct {
	// Exact selects the exact ATSP solver; when false the layered
	// heuristics are used (faster, possibly suboptimal ordering).
	Exact bool
	// SelectionLimit caps the equivalence-class enumeration (Section 5's
	// E = ∏|Cᵢ| product).
	SelectionLimit int
	// Beam tunes the rewrite engine.
	Beam gts.Options
	// DisableShrink skips the final redundancy-elimination pass (useful
	// for ablation measurements).
	DisableShrink bool
	// DisableEquivalence forces one TPG node per BFE instead of one per
	// equivalence class (the Section 5 ablation).
	DisableEquivalence bool
	// SolverMode selects how the selection sweep drives the exact solver:
	// SolverWarm (the default, also chosen by ""), SolverEnumerate or
	// SolverJoint — see the constants in joint.go. The generated test and
	// every Result field are byte-identical in all modes; only solver
	// effort (node counts, timings, mode-specific metrics) differs. An
	// unknown mode is rejected with budget.ErrUsage.
	SolverMode string
	// DisableFallback turns off the bounded branch-and-bound fallback
	// used when an exotic user-defined fault falls outside the rewrite
	// grammar (the pipeline then fails instead of searching).
	DisableFallback bool
	// FallbackCap bounds the fallback search complexity (default 12).
	FallbackCap int
	// Budget bounds the resources the run may spend; zero means
	// unlimited. Exhaustion degrades the result (see Result.Degraded)
	// instead of failing, unless no valid candidate exists yet.
	Budget budget.Budget
	// Workers bounds the worker pool fanning out per-fault simulation,
	// coverage-matrix rows and exact-ATSP subtree exploration (0: use
	// GOMAXPROCS; negative is rejected as a usage error). Results are
	// byte-identical at any worker count.
	Workers int
	// Distributor, when non-nil, is offered the §5 selection sweep for
	// cross-process execution (see SweepDistributor in shard.go). The
	// offer is made only where the distributed merge is provably
	// byte-identical to the sequential sweep — exact solves in
	// SolverWarm mode, unlimited budget, untruncated selection list —
	// and any distribution failure falls back to the sequential sweep,
	// so the field never changes what is computed, only where.
	Distributor SweepDistributor
	// Cache, when non-nil, memoises coverage matrices, solved tour
	// fragments, completeness verdicts and whole results under
	// content-addressed keys, so repeated runs over the same fault list
	// are served warm. Budgeted runs bypass it: a budget is a statement
	// about the resources this run may spend, and its degradation
	// semantics must stay reproducible rather than depend on what some
	// earlier run left behind.
	Cache *memo.Cache
	// Obs, when non-nil, observes the run: the pipeline records
	// hierarchical spans and metrics into it (see internal/obs), and the
	// Result carries the flattened metric snapshot. When nil, the run
	// picks up an observability run attached to the context (obs.From)
	// instead; with neither, instrumentation is entirely off and costs a
	// nil check per site.
	Obs *obs.Run
}

// DefaultOptions returns the options used by the published experiments.
func DefaultOptions() Options {
	return Options{Exact: true, SelectionLimit: 64, Beam: gts.DefaultOptions()}
}

// Result describes a generated March test and the pipeline statistics the
// paper reports.
type Result struct {
	// Test is the generated, validated, non-redundant March test.
	Test *march.Test
	// Complexity is Test.Complexity() (the paper's "kn" figure).
	Complexity int
	// Instances is the expanded fault list the test provably detects.
	Instances []fault.Instance
	// Classes is the number of BFE equivalence classes.
	Classes int
	// Selections is the number of class selections enumerated.
	Selections int
	// Nodes is the TPG size of the winning selection.
	Nodes int
	// PathCost is the winning ATSP visit cost (March-operation proxy).
	PathCost int
	// MinSelectionCost is the cheapest exact ATSP visit cost over every
	// deduplicated selection the sweep solved exactly (0 when none was).
	// The winning selection is chosen by validated test quality, not by
	// this figure, so it can exceed MinSelectionCost; the value is
	// identical across solver modes and worker counts.
	MinSelectionCost int
	// Candidates counts the rewrite candidates validated.
	Candidates int
	// UsedFallback reports that the rewrite pipeline produced no valid
	// candidate and the bounded branch-and-bound fallback supplied the
	// (still provably minimal) test.
	UsedFallback bool
	// Degraded reports that a soft budget ran out mid-run and the
	// pipeline downgraded to a cheaper strategy somewhere: the test is
	// still simulator-validated complete, but no longer proven minimal.
	Degraded bool
	// DegradedStages names the stages that downgraded ("select", "atsp",
	// "assemble", "shrink"), in the order the downgrades happened.
	DegradedStages []string
	// FromCache reports that the whole result was served from the memo
	// cache: the fault list and every relevant option matched an earlier
	// completed run, so the pipeline was skipped entirely. Cached results
	// are byte-identical to the run that produced them.
	FromCache bool
	// StageElapsed is the wall-clock time per pipeline stage ("expand",
	// "select", "atsp", "assemble", "validate", "shrink", "certify",
	// "fallback", "finalize"). The windows are measured at stage
	// boundaries and
	// partition the run's wall time: they never overlap, and a degraded
	// or cancelled stage still reports the window it actually occupied.
	StageElapsed map[string]time.Duration
	// Elapsed is the wall-clock generation time.
	Elapsed time.Duration
	// Metrics is the flattened observability snapshot of the run
	// (counters, gauges and histogram summaries by metric name). Nil
	// unless the run was observed (Options.Obs or an obs.Run on the
	// context).
	Metrics map[string]int64
	// Coverage is the final validation report.
	Coverage sim.Coverage
}

// Generate synthesises a minimal March test covering every instance of the
// given fault models.
func Generate(models []fault.Model, opts Options) (*Result, error) {
	return GenerateCtx(context.Background(), models, opts)
}

// GenerateCtx is Generate under a cancellation context and the soft
// resource budget of opts.Budget. Cancelling ctx (or passing its deadline)
// aborts the run with budget.ErrCanceled / budget.ErrDeadlineExceeded.
// Exhausting a soft budget instead degrades the run — exact ATSP ordering
// falls back to the layered heuristics, enumeration and shrinking stop
// early — and the result, still simulator-validated complete, is marked
// Degraded. Only when a budget runs out before any valid candidate exists
// does the run fail, with budget.ErrBudgetExhausted.
func GenerateCtx(ctx context.Context, models []fault.Model, opts Options) (_ *Result, err error) {
	start := time.Now()
	if opts.SelectionLimit <= 0 {
		opts.SelectionLimit = 64
	}
	if err := opts.Budget.Validate(); err != nil {
		return nil, err
	}
	mode := opts.SolverMode
	if mode == "" {
		mode = SolverWarm
	}
	switch mode {
	case SolverEnumerate, SolverWarm, SolverJoint:
	default:
		return nil, fmt.Errorf("core: unknown solver mode %q: %w", opts.SolverMode, budget.ErrUsage)
	}
	workers, err := budget.ParseWorkers(opts.Workers)
	if err != nil {
		return nil, err
	}
	cache := opts.Cache
	if !opts.Budget.Unlimited() {
		cache = nil // budgeted runs bypass the cache (see Options.Cache)
	}
	// The observability run travels both ways: an explicit Options.Obs is
	// injected into the context (before the meter captures it) so every
	// layer below sees it, and a run already on the context is adopted.
	run := opts.Obs
	if run != nil {
		ctx = obs.Into(ctx, run)
	} else {
		run = obs.From(ctx)
	}
	m := budget.NewMeter(ctx, opts.Budget)
	if err := m.CheckNow(); err != nil {
		return nil, err
	}
	res := &Result{}
	root := run.Start("generate")
	stages := obs.NewStages(run, root, "generate/")
	var memo0 memo.CacheStats
	if run != nil && cache != nil {
		memo0 = cache.Snapshot()
	}
	defer func() {
		stages.Close()
		res.StageElapsed = stages.Elapsed()
		res.Elapsed = time.Since(start)
		if run == nil {
			return
		}
		if cache != nil {
			// Per-run deltas: the cache may be process-wide, so absolute
			// counters would mix in other runs' traffic.
			s := cache.Snapshot()
			run.Counter("memo.hits").Add(int64(s.Hits - memo0.Hits))
			run.Counter("memo.misses").Add(int64(s.Misses - memo0.Misses))
			run.Counter("memo.evictions").Add(int64(s.Evictions - memo0.Evictions))
		}
		run.Counter("generate.elapsed_ns").Add(int64(res.Elapsed))
		run.Counter("budget.atsp_nodes").Add(int64(m.Nodes()))
		root.SetInt("classes", int64(res.Classes)).
			SetInt("selections", int64(res.Selections)).
			SetInt("candidates", int64(res.Candidates))
		if res.Degraded {
			root.SetStr("degraded", strings.Join(res.DegradedStages, ","))
		}
		if res.FromCache {
			root.SetInt("cached", 1)
		}
		switch {
		case err != nil:
			root.SetStr("outcome", "error")
		case res.UsedFallback:
			root.SetStr("outcome", "fallback")
		default:
			root.SetStr("outcome", "ok")
			root.SetInt("complexity", int64(res.Complexity))
		}
		root.End()
		res.Metrics = run.Snapshot()
	}()
	degrade := func(stage string) {
		res.Degraded = true
		for _, s := range res.DegradedStages {
			if s == stage {
				return
			}
		}
		res.DegradedStages = append(res.DegradedStages, stage)
		run.Counter("generate.degraded." + stage).Inc()
	}

	stages.Enter("expand")
	instances := fault.Instances(models)
	if len(instances) == 0 {
		return nil, fmt.Errorf("core: empty fault list")
	}
	faultKey := fault.Key(instances)
	var resKey string
	if cache != nil {
		resKey = resultKey(faultKey, opts)
		if v, ok := cache.Get(resKey); ok {
			run.Counter("memo.result_hits").Inc()
			cached := v.(*cachedResult).result(start, instances)
			res = cached
			return cached, nil
		}
	}
	classes := tpg.Classes(instances)
	if opts.DisableEquivalence {
		classes = splitClasses(classes)
	}
	selections := tpg.Selections(classes, opts.SelectionLimit)
	if err := m.CheckNow(); err != nil {
		return nil, err
	}
	truncated := false
	if lim := opts.Budget.Selections; lim > 0 && lim < len(selections) {
		selections = selections[:lim]
		degrade("select")
		truncated = true
	}

	res.Instances = instances
	res.Classes = len(classes)
	res.Selections = len(selections)
	// prog is the run's live-progress surface (nil-safe): the sweep
	// position, candidate count and best complexity stream out of here to
	// the job tier's SSE events and the marchgen -progress ticker.
	prog := run.Progress()
	prog.Selection(0, int64(len(selections)))
	gen := &genContext{
		ctx:         ctx,
		instances:   instances,
		faultKey:    faultKey,
		verdict:     map[string]bool{},
		meter:       m,
		workers:     workers,
		cache:       cache,
		verdictHits: run.Counter("memo.verdict_hits"),
	}
	var best *march.Test
	var lastErr error
	bestNodes, bestCost := 0, 0
	seenNodeSets := map[string]bool{}
	// The joint mode prunes duplicate selection subtrees up front; the
	// mask only exists when the list is the complete lexicographic product
	// (a budget truncation breaks the contiguity argument — see jointSkips).
	var jointSkip []bool
	if mode == SolverJoint && !truncated {
		var prunedSubtrees, skippedLeaves int
		jointSkip, prunedSubtrees, skippedLeaves = jointSkips(classes, selections)
		run.Counter("core.joint.subtrees_pruned").Add(int64(prunedSubtrees))
		run.Counter("core.joint.leaves_skipped").Add(int64(skippedLeaves))
	}
	// Warm-start threading (warm and joint modes): the previous
	// selection's first optimal ordering seeds the next solve's incumbent.
	preferBB := mode != SolverEnumerate
	var prevOrder []fsm.Pattern
	// selCost collects each deduplicated node set's exact visit cost for
	// MinSelectionCost and the joint certificate; minSel is its minimum
	// (-1: nothing solved exactly yet).
	selCost := map[string]int{}
	minSel := -1
	// A distributor may take the whole sweep off this process where the
	// shard merge is provably byte-identical (see shard.go); on success
	// the sequential loop below is skipped by emptying its range. Any
	// failure — a declined offer, an unreachable shard, no candidate —
	// leaves sweep untouched and the ordinary loop runs.
	sweep := selections
	if d := opts.Distributor; d != nil && mode == SolverWarm && opts.Exact &&
		opts.Budget.Unlimited() && !truncated && len(selections) > 1 {
		stages.Enter("select")
		merged, ok, derr := distributeSweep(ctx, d, models, opts, len(selections), gen, prog, run)
		if derr != nil {
			return nil, derr
		}
		if ok {
			best = merged.best
			bestNodes, bestCost = merged.bestNodes, merged.bestCost
			res.Candidates = merged.candidates
			prog.Candidates(int64(res.Candidates))
			prog.Best(int64(best.Complexity()))
			if merged.minSel >= 0 {
				minSel = merged.minSel
			}
			run.Counter("core.sweep.distributed").Inc()
			run.Counter("core.sweep.shards").Add(int64(merged.shards))
			sweep = nil
		} else {
			run.Counter("core.sweep.local_fallback").Inc()
		}
	}
search:
	for idx, sel := range sweep {
		// Each select span carries the sweep fraction in parts per
		// million: successive spans of one run are monotone, an invariant
		// tracecheck validates on recorded traces.
		stages.Enter("select").SetInt("progress_ppm", int64(idx)*1_000_000/int64(len(selections)))
		prog.Selection(int64(idx), int64(len(selections)))
		if err := m.CheckNow(); err != nil {
			return nil, err
		}
		if m.SoftExpired() {
			degrade("select")
			break
		}
		if jointSkip != nil && jointSkip[idx] {
			continue // whole subtree duplicates an earlier one
		}
		nodes := tpg.Reduce(classes, sel)
		nodeSig := nodeSignature(nodes)
		if seenNodeSets[nodeSig] {
			continue // different selections can reduce to the same TPG
		}
		seenNodeSets[nodeSig] = true
		stages.Enter("atsp")
		patterns, cost, exactCost, err := orderPatterns(m, nodes, orderConfig{
			exact:    opts.Exact,
			workers:  workers,
			preferBB: preferBB,
			warm:     prevOrder,
		}, cache, degrade)
		if err != nil {
			if budget.IsHard(err) {
				return nil, err
			}
			lastErr = err
			continue
		}
		if preferBB {
			prevOrder = patterns[0]
		}
		if exactCost {
			selCost[nodeSig] = cost
			if minSel < 0 || cost < minSel {
				minSel = cost
			}
		}
		seenOrder := map[string]bool{}
		for _, ordered := range patterns {
			if sig := orderSignature(ordered); seenOrder[sig] {
				continue
			} else {
				seenOrder[sig] = true
			}
			stages.Enter("assemble")
			cands, err := gts.AssembleMeter(m, ordered, opts.Beam)
			if err != nil {
				if budget.IsHard(err) {
					return nil, err
				}
				lastErr = err
				continue
			}
			for _, cand := range cands {
				if lim := opts.Budget.Candidates; lim > 0 && res.Candidates >= lim {
					degrade("assemble")
					break search
				}
				res.Candidates++
				prog.Candidates(int64(res.Candidates))
				if best != nil && cand.Complexity() >= best.Complexity()+2 {
					continue // too long to beat the incumbent even after shrinking
				}
				stages.Enter("validate")
				ok := gen.complete(cand)
				if gen.err != nil {
					return nil, gen.err
				}
				if !ok {
					continue
				}
				if !opts.DisableShrink {
					stages.Enter("shrink")
					cand = gen.shrink(cand)
					if gen.err != nil {
						return nil, gen.err
					}
				}
				if better(cand, best) {
					best = cand
					bestNodes, bestCost = len(nodes), cost
					prog.Best(int64(best.Complexity()))
				}
			}
		}
	}
	if gen.softStopped {
		degrade("shrink")
	}
	if minSel >= 0 {
		res.MinSelectionCost = minSel
	}
	if mode == SolverJoint && opts.Exact && opts.Budget.Unlimited() {
		// The optimality certificate explores the *full* choice product
		// (metrics only — the Result is already fixed by the sweep above).
		// Budgeted runs skip it: a budget is a statement about this run's
		// resources, and the certificate is strictly extra work.
		stages.Enter("certify")
		if err := runCertificate(m, classes, selCost, minSel, workers, cache, run); err != nil {
			return nil, err
		}
	}
	if best == nil && !opts.DisableFallback {
		stages.Enter("fallback")
		fb, err := fallbackSearch(m, instances, opts, degrade)
		if err != nil {
			return nil, err
		}
		best = fb
		res.UsedFallback = best != nil
	}
	if best == nil {
		if res.Degraded {
			return nil, fmt.Errorf("core: %w before any valid candidate was found (%d classes)", budget.ErrBudgetExhausted, len(classes))
		}
		if lastErr != nil {
			return nil, fmt.Errorf("core: no valid March test found for the fault list (%d classes): %w; last pipeline error: %w", len(classes), budget.ErrUnsupportedFault, lastErr)
		}
		return nil, fmt.Errorf("core: no valid March test found for the fault list (%d classes): %w", len(classes), budget.ErrUnsupportedFault)
	}
	stages.Enter("finalize")
	// The sweep is over (possibly degraded): pin the fraction at 1 so
	// late progress readers see completion rather than the last index.
	prog.Selection(int64(res.Selections), int64(res.Selections))
	best = gen.relaxOrders(best)
	if gen.err != nil {
		return nil, gen.err
	}
	cov, err := sim.EvaluateWorkers(ctx, best, instances, workers)
	if err != nil {
		return nil, err
	}
	if !cov.Complete() {
		return nil, fmt.Errorf("core: internal error: final test lost coverage")
	}
	res.Test = best
	res.Complexity = best.Complexity()
	res.Nodes = bestNodes
	res.PathCost = bestCost
	res.Coverage = cov
	if cache != nil && !res.Degraded {
		cache.Put(resKey, &cachedResult{
			test:         best.Clone(),
			complexity:   res.Complexity,
			classes:      res.Classes,
			selections:   res.Selections,
			nodes:        res.Nodes,
			pathCost:     res.PathCost,
			minSelCost:   res.MinSelectionCost,
			candidates:   res.Candidates,
			usedFallback: res.UsedFallback,
			coverage:     cov.Clone(),
		})
	}
	return res, nil
}

// resultKey fingerprints a whole generation problem: the canonical fault
// list plus every option that shapes the output. Workers is deliberately
// excluded — results are byte-identical at any worker count — as is the
// budget, because budgeted runs never reach the cache.
func resultKey(faultKey string, opts Options) string {
	return memo.NewFingerprinter("generate").
		Str(faultKey).
		Bool(opts.Exact).
		Int(opts.SelectionLimit).
		Int(opts.Beam.BeamWidth).
		Int(opts.Beam.MaxCandidates).
		Bool(opts.DisableShrink).
		Bool(opts.DisableEquivalence).
		Bool(opts.DisableFallback).
		Int(opts.FallbackCap).
		Key()
}

// cachedResult snapshots everything a warm Generate call must reproduce.
// The stored test and coverage are deep-copied on both store and load, so
// callers can mutate their Result freely without corrupting the cache.
type cachedResult struct {
	test         *march.Test
	complexity   int
	classes      int
	selections   int
	nodes        int
	pathCost     int
	minSelCost   int
	candidates   int
	usedFallback bool
	coverage     sim.Coverage
}

func (c *cachedResult) result(start time.Time, instances []fault.Instance) *Result {
	cov := c.coverage.Clone()
	// Rehydrate the per-row instances positionally: a result decoded from
	// the persist layer travels with thin rows (verdict + detecting ops
	// only), and the simulator emits rows in instance order, so row i is
	// instance i. For memory-resident entries this overwrites each row
	// with an identical value.
	if len(cov.Results) == len(instances) {
		for i := range cov.Results {
			cov.Results[i].Instance = instances[i]
		}
	}
	return &Result{
		Test:             c.test.Clone(),
		Complexity:       c.complexity,
		Instances:        instances,
		Classes:          c.classes,
		Selections:       c.selections,
		Nodes:            c.nodes,
		PathCost:         c.pathCost,
		MinSelectionCost: c.minSelCost,
		Candidates:       c.candidates,
		UsedFallback:     c.usedFallback,
		FromCache:        true,
		StageElapsed:     map[string]time.Duration{},
		Elapsed:          time.Since(start),
		Coverage:         cov,
	}
}

// fallbackSearch runs the bounded branch-and-bound generator when the
// rewrite grammar cannot realise some pattern of an exotic user-defined
// fault. Retention faults are excluded (the search space has no delay
// elements). The returned error is non-nil only on hard cancellation; a
// fruitless or soft-exhausted search returns (nil, nil) and lets the
// caller report the overall failure.
func fallbackSearch(m *budget.Meter, instances []fault.Instance, opts Options, degrade func(string)) (*march.Test, error) {
	cap := opts.FallbackCap
	if cap <= 0 {
		cap = 12
	}
	for _, inst := range instances {
		for _, b := range inst.BFEs {
			for _, in := range b.Pattern.Excite {
				if in.IsWait() {
					return nil, nil
				}
			}
		}
	}
	t, _, err := baseline.BranchBoundMeter(m, instances, cap)
	if err != nil {
		if budget.IsHard(err) {
			return nil, err
		}
		if errors.Is(err, budget.ErrBudgetExhausted) {
			degrade("fallback")
		}
		return nil, nil
	}
	return t, nil
}

// better orders candidates by complexity, then element count.
func better(cand, best *march.Test) bool {
	if best == nil {
		return true
	}
	if cand.Complexity() != best.Complexity() {
		return cand.Complexity() < best.Complexity()
	}
	return len(cand.Elements) < len(best.Elements)
}

// splitClasses explodes every equivalence class into single-option classes
// (the Section 5 ablation: every BFE must be realised individually).
func splitClasses(classes []tpg.Class) []tpg.Class {
	var out []tpg.Class
	for _, c := range classes {
		for k, opt := range c.Options {
			out = append(out, tpg.Class{
				Label:   fmt.Sprintf("%s#%d", c.Label, k),
				Options: []fsm.Pattern{opt},
			})
		}
	}
	return out
}

// tourFragment is a memoised exact ATSP solve: every optimal open path of
// a TPG weight matrix, reused across Generate calls whose selections
// reduce to the same graph. Treated as immutable once cached.
type tourFragment struct {
	paths [][]int
	cost  int
}

// tpgCostFragment is a memoised cost-only exact solve: the optimal path
// cost of a TPG weight matrix plus one witnessing path. It is the
// bound-state fragment the warm-started solvers feed on — the path primes
// the next solve's incumbent so the assignment-tight root shortcut can
// return without branching. Treated as immutable once cached.
type tpgCostFragment struct {
	cost int
	path []int
}

// nodeSignature fingerprints a reduced TPG node set: selections reducing
// to the same patterns are interchangeable for everything downstream.
func nodeSignature(nodes []tpg.Node) string {
	var sb strings.Builder
	for _, n := range nodes {
		sb.WriteString(n.Pattern.String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// tpgCostKey fingerprints a TPG instance for the tpgcost memo namespace.
func tpgCostKey(g *tpg.Graph, starts []int) string {
	f := memo.NewFingerprinter("tpgcost")
	for _, row := range g.Weight {
		f.Ints(row)
	}
	f.Ints(starts)
	return f.Key()
}

// warmFromPrev lifts the previous selection's ordering onto the current
// instance: patterns both selections share keep their relative order, the
// rest is spliced in by cheapest insertion (adjacent selections differ by
// one class choice, so the patched path is usually optimal or nearly so).
// Returns nil when nothing carries over.
func warmFromPrev(g *tpg.Graph, nodes []tpg.Node, starts []int, prev []fsm.Pattern) []int {
	if len(prev) == 0 {
		return nil
	}
	idx := make(map[string]int, len(nodes))
	for i, nd := range nodes {
		idx[nd.Pattern.String()] = i
	}
	partial := make([]int, 0, len(prev))
	for _, p := range prev {
		if i, ok := idx[p.String()]; ok {
			partial = append(partial, i)
		}
	}
	if len(partial) == 0 {
		return nil
	}
	return atsp.CompletePath(atsp.Matrix(g.Weight), starts, partial)
}

// validWarmPath reports whether a persisted path is a permutation of the
// n TPG nodes — the only shape safe to hand the solver as a warm
// incumbent. Fragments cross process (and version) boundaries, so shape
// is checked here even though the codec already rejects torn envelopes.
func validWarmPath(p []int, n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// visitCost is the full visit objective of a warm path: start cost of its
// first node plus the path's arc costs.
func visitCost(g *tpg.Graph, starts []int, p []int) int {
	return starts[p[0]] + atsp.Matrix(g.Weight).PathCost(p)
}

// orderConfig tunes one orderPatterns call.
type orderConfig struct {
	// exact requests the exact solve (false: layered heuristics).
	exact bool
	// workers is the exact solver's fan-out.
	workers int
	// preferBB routes exact cost solves to the warm-startable assignment
	// branch and bound instead of Held–Karp (the warm and joint modes).
	preferBB bool
	// warm is the previous selection's pattern ordering, threaded through
	// the sweep as the next solve's incumbent seed (preferBB only).
	warm []fsm.Pattern
}

// orderPatterns solves the constrained open-path ATSP over the TPG and
// returns the pattern orderings worth assembling: every optimal visit (the
// rewrite engine folds different optimal orders into March tests of
// different quality) plus each one reversed. In heuristic mode a single
// near-optimal path and its reverse are returned. When the exact solvers
// exhaust the meter's node budget the ordering degrades to the heuristic
// path automatically and degrade("atsp") records the downgrade. The exact
// solve fans its branch-and-bound subtrees over cfg.workers goroutines
// and, with a non-nil cache, is memoised under the weight-matrix
// fingerprint. The third result reports whether the returned cost is an
// exact optimum (false after a heuristic downgrade). Whatever the config,
// the returned orderings and cost are byte-identical — only solver effort
// varies.
func orderPatterns(m *budget.Meter, nodes []tpg.Node, cfg orderConfig, cache *memo.Cache, degrade func(string)) ([][]fsm.Pattern, int, bool, error) {
	g := tpg.New(nodes)
	if len(nodes) == 1 {
		return [][]fsm.Pattern{{nodes[0].Pattern}}, g.StartCost(0) + g.NodeCost(0), true, nil
	}
	starts := make([]int, len(nodes))
	total := 0
	for b := range nodes {
		starts[b] = g.StartCost(b)
		total += g.NodeCost(b)
	}
	var paths [][]int
	var cost int
	exact, exactCost := cfg.exact, false
	if exact {
		var key string
		if cache != nil {
			f := memo.NewFingerprinter("tour")
			for _, row := range g.Weight {
				f.Ints(row)
			}
			f.Ints(starts)
			key = f.Key()
			if v, ok := cache.Get(key); ok {
				obs.From(m.Context()).Counter("memo.tour_hits").Inc()
				frag := v.(*tourFragment)
				paths, cost, exactCost = frag.paths, frag.cost, true
			}
		}
		if paths == nil {
			var warmPath []int
			if cfg.preferBB {
				warmPath = warmFromPrev(g, nodes, starts, cfg.warm)
				if cache != nil {
					// A cost fragment left by an earlier run (or the joint
					// certificate) competes with the sweep neighbour for the
					// warm incumbent: the cheaper path primes harder, and on
					// a restart the fragment is often exactly optimal, so the
					// solve short-circuits at the root. Fragments crossing a
					// process boundary are validated before use, and a tie
					// keeps the sweep neighbour — runs without a disk tier
					// behave exactly as before. Warm paths prime node counts
					// only, never the returned orderings (see PathOptions).
					if v, ok := cache.Get(tpgCostKey(g, starts)); ok {
						obs.From(m.Context()).Counter("memo.tpgcost_hits").Inc()
						if fp := v.(*tpgCostFragment).path; validWarmPath(fp, len(nodes)) {
							if warmPath == nil || visitCost(g, starts, fp) < visitCost(g, starts, warmPath) {
								obs.From(m.Context()).Counter("core.warm.primed").Inc()
								warmPath = fp
							}
						}
					}
				}
			}
			var err error
			paths, cost, err = atsp.OptimalPathsOpt(m, atsp.Matrix(g.Weight), starts, 8, atsp.PathOptions{
				Workers:  cfg.workers,
				PreferBB: cfg.preferBB,
				WarmPath: warmPath,
			})
			switch {
			case err == nil:
				exactCost = true
				if cache != nil {
					cache.Put(key, &tourFragment{paths: paths, cost: cost})
					cache.Put(tpgCostKey(g, starts), &tpgCostFragment{cost: cost, path: paths[0]})
				}
			case errors.Is(err, budget.ErrBudgetExhausted):
				degrade("atsp")
				exact = false
			default:
				return nil, 0, false, err
			}
		}
	}
	if !exact {
		path, c, err := atsp.PathWorkers(m, atsp.Matrix(g.Weight), starts, false, cfg.workers)
		if err != nil {
			return nil, 0, false, err
		}
		paths, cost = [][]int{path}, c
	}
	var orders [][]fsm.Pattern
	for _, path := range paths {
		forward := make([]fsm.Pattern, len(path))
		backward := make([]fsm.Pattern, len(path))
		for k, v := range path {
			forward[k] = nodes[v].Pattern
			backward[len(path)-1-k] = nodes[v].Pattern
		}
		orders = append(orders, forward, backward)
	}
	return orders, cost + total, exactCost, nil
}

// selectionCost is the joint certificate's leaf solve: the exact visit
// cost of one reduced node set, computed cost-only (the warm shortcut may
// return any optimal tour) and memoised under the tpgcost namespace.
func selectionCost(m *budget.Meter, nodes []tpg.Node, workers int, cache *memo.Cache) (int, error) {
	g := tpg.New(nodes)
	if len(nodes) == 1 {
		return g.StartCost(0) + g.NodeCost(0), nil
	}
	starts := make([]int, len(nodes))
	total := 0
	for b := range nodes {
		starts[b] = g.StartCost(b)
		total += g.NodeCost(b)
	}
	var key string
	if cache != nil {
		key = tpgCostKey(g, starts)
		if v, ok := cache.Get(key); ok {
			obs.From(m.Context()).Counter("memo.tpgcost_hits").Inc()
			return v.(*tpgCostFragment).cost + total, nil
		}
	}
	path, cost, err := atsp.PathOpt(m, atsp.Matrix(g.Weight), starts, true, atsp.PathOptions{
		Workers:  workers,
		PreferBB: true,
		CostOnly: true,
	})
	if err != nil {
		return 0, err
	}
	if cache != nil {
		cache.Put(key, &tpgCostFragment{cost: cost, path: path})
	}
	return cost + total, nil
}

// genContext memoises completeness verdicts by test signature: the same
// candidate recurs across orderings, selections and shrink steps. It also
// carries the run's budget meter: a hard cancellation observed during
// validation latches into err (and fails the pending verdict), while the
// soft deadline merely stops the shrink loop early via softStopped.
type genContext struct {
	ctx       context.Context
	instances []fault.Instance
	// faultKey is the canonical fault-list key; shared verdict-cache
	// entries are scoped to it so verdicts for different fault lists can
	// never alias.
	faultKey string
	verdict  map[string]bool
	meter    *budget.Meter
	workers  int
	// cache, when non-nil, shares completeness verdicts across Generate
	// calls (the run-local verdict map still deduplicates within a run).
	cache *memo.Cache
	// verdictHits counts shared-cache verdict hits in the run's metrics
	// (nil when the run is unobserved — the counter is nil-safe).
	verdictHits *obs.Counter
	// err is the first hard-cancellation error observed mid-validation.
	err error
	// softStopped records that shrinking stopped early on the soft
	// deadline (the result is then valid but possibly still redundant).
	softStopped bool
}

func (g *genContext) complete(t *march.Test) bool {
	if g.err != nil {
		return false
	}
	if err := g.meter.Check(); err != nil {
		g.err = err
		return false
	}
	if t == nil || t.Validate() != nil {
		return false
	}
	sig := t.String()
	if v, ok := g.verdict[sig]; ok {
		return v
	}
	var key string
	if g.cache != nil {
		key = memo.NewFingerprinter("verdict").Str(g.faultKey).Str(sig).Key()
		if v, ok := g.cache.Get(key); ok {
			g.verdictHits.Inc()
			g.verdict[sig] = v.(bool)
			return v.(bool)
		}
	}
	cov, err := sim.EvaluateWorkers(g.ctx, t, g.instances, g.workers)
	if err != nil && budget.IsHard(err) {
		g.err = err
		return false
	}
	v := err == nil && cov.Complete()
	g.verdict[sig] = v
	if g.cache != nil && err == nil {
		g.cache.Put(key, v)
	}
	return v
}

// orderSignature fingerprints a pattern ordering for deduplication.
func orderSignature(patterns []fsm.Pattern) string {
	sig := ""
	for _, p := range patterns {
		sig += p.String() + ";"
	}
	return sig
}

// shrink removes redundant operations: any operation (or delay element)
// whose removal keeps the test complete is dropped, repeatedly, so the
// returned test is non-redundant by construction — the property the
// paper's Set Covering check certifies.
func (g *genContext) shrink(t *march.Test) *march.Test {
	cur := t
	for {
		if g.err != nil {
			return cur
		}
		if g.meter.SoftExpired() {
			g.softStopped = true
			return cur
		}
		improved := false
	scan:
		for e := 0; e < len(cur.Elements); e++ {
			if cur.Elements[e].Delay {
				cand := dropDelay(cur, e)
				if g.complete(cand) {
					cur, improved = cand, true
					break scan
				}
				continue
			}
			for o := 0; o < len(cur.Elements[e].Ops); o++ {
				cand := dropOp(cur, e, o)
				if cand != nil && g.complete(cand) {
					cur, improved = cand, true
					break scan
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

// dropOp removes one operation (dropping the element entirely when it was
// the last one); returns nil when the result would be structurally empty.
func dropOp(t *march.Test, e, o int) *march.Test {
	c := t.Clone()
	elem := &c.Elements[e]
	elem.Ops = append(elem.Ops[:o], elem.Ops[o+1:]...)
	if len(elem.Ops) == 0 {
		c.Elements = append(c.Elements[:e], c.Elements[e+1:]...)
	}
	if len(c.Elements) == 0 {
		return nil
	}
	return c
}

func dropDelay(t *march.Test, e int) *march.Test {
	c := t.Clone()
	c.Elements = append(c.Elements[:e], c.Elements[e+1:]...)
	return c
}

// relaxOrders widens ⇑/⇓ constraints to ⇕ where coverage allows, matching
// the conventional presentation of known March tests (Rule 5: elements
// whose order is irrelevant carry the ⇕ symbol).
func (g *genContext) relaxOrders(t *march.Test) *march.Test {
	cur := t.Clone()
	for e := range cur.Elements {
		if cur.Elements[e].Delay || cur.Elements[e].Order == march.Any {
			continue
		}
		saved := cur.Elements[e].Order
		cur.Elements[e].Order = march.Any
		if !g.complete(cur) {
			cur.Elements[e].Order = saved
		}
	}
	return cur
}
