// The joint selection-product search: instead of treating the §5
// enumeration as a flat list of independent exact solves, the sweep is
// viewed as a tree over class choices. Two mechanisms exploit the tree
// shape, both provably output-preserving:
//
//   - prefix deduplication — Reduce is a function of the *multiset* of
//     chosen patterns (subsumption keeps the maximal elements, identical
//     patterns merge), so two prefixes choosing the same patterns root
//     identical subtrees: every leaf under the later prefix reduces to a
//     node set the earlier subtree already produced, and the sweep's
//     nodeSig dedup would skip it anyway. Skipping the whole subtree up
//     front removes the per-leaf Reduce without changing the stream of
//     selections that reach the solver;
//   - the optimality certificate — a branch and bound over the *full*
//     choice product (before any enumeration limit) that confirms no
//     un-enumerated selection beats the cheapest enumerated one. Its
//     admissible bound rests on tpg.OpSig: distinct operation signatures
//     can never merge, so each one forces a node of known cost into any
//     completion's TPG. The certificate reports through observability
//     metrics only — the Result is byte-identical across solver modes.
package core

import (
	"sort"
	"strings"

	"marchgen/fsm"
	"marchgen/internal/budget"
	"marchgen/internal/memo"
	"marchgen/internal/obs"
	"marchgen/internal/tpg"
)

// Solver modes for Options.SolverMode; the generated test is byte-identical
// in every mode, only solver effort differs.
const (
	// SolverEnumerate solves every enumerated selection cold — the
	// historic behaviour, kept selectable for differential testing and
	// baseline measurement.
	SolverEnumerate = "enumerate"
	// SolverWarm — the default (also chosen by the empty mode) — threads
	// each selection's solution into the next solve as a branch-and-bound
	// warm start (adjacent selections differ by one class choice, so the
	// patched previous tour is a near-tight bound), and hydrates warm
	// incumbents from durable cost fragments left by earlier runs.
	SolverWarm = "warm"
	// SolverJoint is SolverWarm plus the selection-tree mechanisms above.
	SolverJoint = "joint"
)

// jointSkips marks the selections whose whole subtree duplicates an
// earlier one: sels must be the untruncated lexicographic product over
// per-class choices, so leaves sharing a prefix are contiguous and every
// completion of an equivalent earlier prefix exists earlier in the list.
// It returns the skip mask plus the number of pruned subtrees and of
// leaves they covered (nil mask when nothing prunes).
func jointSkips(classes []tpg.Class, sels []tpg.Selection) ([]bool, int, int) {
	if len(sels) < 2 || len(classes) == 0 {
		return nil, 0, 0
	}
	depthMax := len(classes)
	prefixSig := func(sel tpg.Selection, d int) string {
		pats := make([]string, d)
		for i := 0; i < d; i++ {
			pats[i] = classes[i].Options[sel[i]].String()
		}
		sort.Strings(pats)
		var sb strings.Builder
		sb.WriteByte(byte(d))
		for _, p := range pats {
			sb.WriteString(p)
			sb.WriteByte(0)
		}
		return sb.String()
	}
	samePrefix := func(a, b tpg.Selection, d int) bool {
		for i := 0; i < d; i++ {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	skip := make([]bool, len(sels))
	seen := map[string]int{}
	pruned, skipped := 0, 0
	t := 0
outer:
	for t < len(sels) {
		for d := 1; d <= depthMax; d++ {
			sig := prefixSig(sels[t], d)
			f, ok := seen[sig]
			if !ok {
				seen[sig] = t
				continue
			}
			if samePrefix(sels[f], sels[t], d) {
				continue // the establishing prefix itself: descend
			}
			// Same chosen-pattern multiset as an earlier, different prefix:
			// every leaf of this contiguous block pairs with an earlier leaf
			// reducing to the same node set.
			end := t
			for end < len(sels) && samePrefix(sels[t], sels[end], d) {
				end++
			}
			for x := t; x < end; x++ {
				skip[x] = true
			}
			pruned++
			skipped += end - t
			t = end
			continue outer
		}
		t++
	}
	if skipped == 0 {
		return nil, 0, 0
	}
	return skip, pruned, skipped
}

// certSearch is the optimality-certificate branch and bound over the full
// per-class choice product. Caps keep it a bounded post-pass: allowances
// start at the base values and grow only while the incumbent keeps
// improving; a search that overruns them reports itself capped instead
// of completing.
type certSearch struct {
	classes []tpg.Class
	choices [][]int
	m       *budget.Meter
	cache   *memo.Cache
	workers int
	// selCost maps node-set signatures to exact visit costs the sweep (or
	// this search) already established, so enumerated selections cost
	// nothing to certify.
	selCost map[string]int
	// best is the incumbent minimum cost (-1: none yet), primed with the
	// sweep's cheapest enumerated selection.
	best                              int
	nodes, leaves, cachedHits, pruned int
	capped                            bool
	err                               error

	// nodeCap/leafCap are the current allowances, started at the base
	// values and doubled — up to the hard ceilings — whenever a cap is
	// hit while the incumbent is still improving (see grow). lastImprove*
	// record the effort counters at the last incumbent improvement;
	// grew counts doublings for the core.joint.cert_grown metric.
	nodeCap, leafCap                    int
	lastImproveNodes, lastImproveLeaves int
	grew                                int
}

const (
	// certNodeCapBase bounds the certificate's tree nodes and
	// certLeafCapBase the fresh cost-only exact solves it may trigger —
	// the starting allowances, identical to the historic fixed caps, so
	// a search that never earns growth behaves exactly as before.
	certNodeCapBase = 20000
	certLeafCapBase = 256
	// certNodeCapMax/certLeafCapMax are the hard ceilings adaptive growth
	// may reach (8× the base): the certificate stays a bounded post-pass.
	certNodeCapMax = 160000
	certLeafCapMax = 2048
)

// grow doubles an allowance when the evidence justifies it: the last
// incumbent improvement fell in the second half of the current allowance,
// i.e. the search was still finding cheaper selections when it ran out.
// A search whose improvements dried up early stays capped — more effort
// would almost surely just re-confirm the incumbent.
func (c *certSearch) grow(cap *int, max, lastImprove int) bool {
	if *cap >= max || lastImprove*2 <= *cap {
		return false
	}
	*cap *= 2
	if *cap > max {
		*cap = max
	}
	c.grew++
	return true
}

// bound is the admissible lower bound of every completion below a partial
// choice: each distinct operation signature among the chosen patterns
// forces a distinct TPG node of fixed cost (Subsumes requires equal
// operations), and a remaining class whose options' signatures avoid both
// the chosen set and every previously counted class must add one more
// node, worth at least its cheapest option. Edge weights and start costs
// are non-negative, so the node costs alone stay below the visit cost.
func (c *certSearch) bound(chosen []fsm.Pattern, from int) int {
	blocked := map[string]bool{}
	sum := 0
	for _, p := range chosen {
		sig := tpg.OpSig(p)
		if !blocked[sig] {
			blocked[sig] = true
			sum += len(p.Excite) + 1
		}
	}
	for i := from; i < len(c.classes); i++ {
		disjoint := true
		minCost := -1
		var sigs []string
		for _, o := range c.choices[i] {
			p := c.classes[i].Options[o]
			sig := tpg.OpSig(p)
			if blocked[sig] {
				disjoint = false
				break
			}
			sigs = append(sigs, sig)
			if nc := len(p.Excite) + 1; minCost < 0 || nc < minCost {
				minCost = nc
			}
		}
		if !disjoint {
			continue
		}
		sum += minCost
		for _, s := range sigs {
			blocked[s] = true
		}
	}
	return sum
}

func (c *certSearch) search(depth int, chosen []fsm.Pattern, sel tpg.Selection) {
	if c.err != nil || c.capped {
		return
	}
	c.nodes++
	if c.nodes > c.nodeCap && !c.grow(&c.nodeCap, certNodeCapMax, c.lastImproveNodes) {
		c.capped = true
		return
	}
	if lb := c.bound(chosen, depth); c.best >= 0 && lb > c.best {
		c.pruned++
		return
	}
	if depth == len(c.classes) {
		c.leaf(sel)
		return
	}
	for _, o := range c.choices[depth] {
		sel[depth] = o
		c.search(depth+1, append(chosen, c.classes[depth].Options[o]), sel)
		if c.err != nil || c.capped {
			return
		}
	}
}

func (c *certSearch) leaf(sel tpg.Selection) {
	nodes := tpg.Reduce(c.classes, sel)
	sig := nodeSignature(nodes)
	if cost, ok := c.selCost[sig]; ok {
		c.cachedHits++
		c.improve(cost)
		return
	}
	if c.leaves >= c.leafCap && !c.grow(&c.leafCap, certLeafCapMax, c.lastImproveLeaves) {
		c.capped = true
		return
	}
	c.leaves++
	cost, err := selectionCost(c.m, nodes, c.workers, c.cache)
	if err != nil {
		c.err = err
		return
	}
	c.selCost[sig] = cost
	c.improve(cost)
}

// improve folds a leaf cost into the incumbent, recording the effort
// counters on improvement — the signal cap growth keys on.
func (c *certSearch) improve(cost int) {
	if c.best < 0 || cost < c.best {
		c.best = cost
		c.lastImproveNodes = c.nodes
		c.lastImproveLeaves = c.leaves
	}
}

// runCertificate runs the certificate search and publishes its outcome to
// the run's metrics: core.joint.cert_nodes / cert_leaves / cert_cached /
// cert_pruned count the effort, cert_grown the adaptive cap doublings, and — only when the search completed
// within its caps — core.joint.cert_min carries the certified minimum
// selection cost (core.joint.cert_capped flags an overrun instead). The
// returned error is non-nil only on hard cancellation.
func runCertificate(m *budget.Meter, classes []tpg.Class, selCost map[string]int, prime, workers int, cache *memo.Cache, run *obs.Run) error {
	c := &certSearch{
		classes: classes,
		choices: tpg.Choices(classes),
		m:       m,
		cache:   cache,
		workers: workers,
		selCost: selCost,
		best:    prime,
		nodeCap: certNodeCapBase,
		leafCap: certLeafCapBase,
	}
	c.search(0, make([]fsm.Pattern, 0, len(classes)), make(tpg.Selection, len(classes)))
	run.Counter("core.joint.cert_nodes").Add(int64(c.nodes))
	run.Counter("core.joint.cert_leaves").Add(int64(c.leaves))
	run.Counter("core.joint.cert_cached").Add(int64(c.cachedHits))
	run.Counter("core.joint.cert_pruned").Add(int64(c.pruned))
	run.Counter("core.joint.cert_grown").Add(int64(c.grew))
	if c.err != nil {
		return c.err
	}
	if c.capped {
		run.Counter("core.joint.cert_capped").Inc()
	} else if c.best >= 0 {
		run.Counter("core.joint.cert_min").Add(int64(c.best))
	}
	return nil
}
