// Durable-checkpoint support: the memo codec that lets the engine's
// intermediate artifacts survive process death. The async job subsystem
// (internal/jobs) attaches a disk tier to the shared memo cache; this
// codec decides which cache values cross to disk and how.
//
// Persisted kinds are exactly the per-subproblem artifacts the pipeline
// checkpoints through at stage boundaries:
//
//   - tour fragments: each §5 selection's solved exact-ATSP incumbent
//     (every optimal open path of one TPG weight matrix plus its cost),
//     keyed by the weight-matrix fingerprint — the expensive part of a
//     run, written the moment each selection's solve completes;
//   - cost fragments: one cost-only exact solve per TPG weight matrix
//     (the optimal path cost plus a witnessing path), the bound state the
//     warm-started solvers prime their incumbent from;
//   - completeness verdicts: one simulator verdict per candidate March
//     test, keyed by fault list and test signature.
//   - whole results: the full cached Result of a completed unbudgeted
//     run — test, statistics and a thin coverage report (per-instance
//     verdicts by position; the instances themselves are re-expanded
//     from the fault list at load time, which is what keeps the
//     encoding small and the key the sole source of truth). This is
//     the kind that makes a replica set's result warmth portable: a
//     peer fetch of one entry answers a whole generate request with
//     FromCache set and zero engine work.
//
// Coverage matrices stay memory-only: they rebuild quickly from the
// bit-parallel kernel. Because memo values are pure functions of their
// content-hash keys, a resumed run that loads these entries recomputes
// nothing it already finished and still produces byte-identical output.
package core

import (
	"encoding/json"

	"marchgen/internal/memo"
	"marchgen/internal/sim"
	"marchgen/march"
)

// persist tags the on-disk encodings; a version byte first so a future
// layout change can't misparse old stores.
const (
	persistVersion     = 1
	persistKindTour    = "tour"
	persistKindBool    = "verdict"
	persistKindTPGCost = "tpgcost"
	persistKindResult  = "result"
)

// persistEnvelope is the JSON wrapper around every persisted memo value.
type persistEnvelope struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// persistTour is the wire form of a tourFragment.
type persistTour struct {
	Paths [][]int `json:"paths"`
	Cost  int     `json:"cost"`
}

// persistTPGCost is the wire form of a tpgCostFragment.
type persistTPGCost struct {
	Cost int   `json:"cost"`
	Path []int `json:"path"`
}

// persistVerdict is one instance's thin coverage row: its verdict and
// detecting operation indices, positional — row i belongs to instance i
// of the fault list re-expanded at load time.
type persistVerdict struct {
	Detected bool  `json:"detected"`
	Ops      []int `json:"ops,omitempty"`
}

// persistResult is the wire form of a cachedResult. Tests travel in
// March notation (Parse/String round-trips are exact for generated,
// unnamed tests); the coverage report travels as positional thin rows.
type persistResult struct {
	Test         string           `json:"test"`
	Complexity   int              `json:"complexity"`
	Classes      int              `json:"classes"`
	Selections   int              `json:"selections"`
	Nodes        int              `json:"nodes"`
	PathCost     int              `json:"path_cost"`
	MinSelCost   int              `json:"min_sel_cost"`
	Candidates   int              `json:"candidates"`
	UsedFallback bool             `json:"used_fallback,omitempty"`
	CovTest      string           `json:"cov_test"`
	Verdicts     []persistVerdict `json:"verdicts"`
}

// memoCodec implements memo.Codec over the engine's persistable values.
type memoCodec struct{}

// Codec returns the memo.Codec covering the generation engine's
// persistable cache values: exact-ATSP tour fragments and completeness
// verdicts. Values outside those kinds are reported non-persistable and
// stay memory-only.
func Codec() memo.Codec { return memoCodec{} }

func (memoCodec) Encode(val any) ([]byte, bool) {
	var env persistEnvelope
	env.V = persistVersion
	switch v := val.(type) {
	case *tourFragment:
		data, err := json.Marshal(persistTour{Paths: v.paths, Cost: v.cost})
		if err != nil {
			return nil, false
		}
		env.Kind, env.Data = persistKindTour, data
	case *tpgCostFragment:
		data, err := json.Marshal(persistTPGCost{Cost: v.cost, Path: v.path})
		if err != nil {
			return nil, false
		}
		env.Kind, env.Data = persistKindTPGCost, data
	case bool:
		data, err := json.Marshal(v)
		if err != nil {
			return nil, false
		}
		env.Kind, env.Data = persistKindBool, data
	case *cachedResult:
		if v.test == nil || v.coverage.Test == nil {
			return nil, false
		}
		p := persistResult{
			Test:         v.test.String(),
			Complexity:   v.complexity,
			Classes:      v.classes,
			Selections:   v.selections,
			Nodes:        v.nodes,
			PathCost:     v.pathCost,
			MinSelCost:   v.minSelCost,
			Candidates:   v.candidates,
			UsedFallback: v.usedFallback,
			CovTest:      v.coverage.Test.String(),
			Verdicts:     make([]persistVerdict, len(v.coverage.Results)),
		}
		for i, r := range v.coverage.Results {
			p.Verdicts[i] = persistVerdict{Detected: r.Detected, Ops: r.DetectingOps}
		}
		data, err := json.Marshal(p)
		if err != nil {
			return nil, false
		}
		env.Kind, env.Data = persistKindResult, data
	default:
		return nil, false
	}
	out, err := json.Marshal(env)
	if err != nil {
		return nil, false
	}
	return out, true
}

func (memoCodec) Decode(data []byte) (any, bool) {
	var env persistEnvelope
	if json.Unmarshal(data, &env) != nil || env.V != persistVersion {
		return nil, false
	}
	switch env.Kind {
	case persistKindTour:
		var t persistTour
		if json.Unmarshal(env.Data, &t) != nil || len(t.Paths) == 0 {
			return nil, false
		}
		return &tourFragment{paths: t.Paths, cost: t.Cost}, true
	case persistKindTPGCost:
		var t persistTPGCost
		if json.Unmarshal(env.Data, &t) != nil {
			return nil, false
		}
		return &tpgCostFragment{cost: t.Cost, path: t.Path}, true
	case persistKindBool:
		var v bool
		if json.Unmarshal(env.Data, &v) != nil {
			return nil, false
		}
		return v, true
	case persistKindResult:
		var p persistResult
		if json.Unmarshal(env.Data, &p) != nil || p.Test == "" || p.CovTest == "" {
			return nil, false
		}
		test, err := march.Parse(p.Test)
		if err != nil {
			return nil, false
		}
		covTest, err := march.Parse(p.CovTest)
		if err != nil {
			return nil, false
		}
		cov := sim.Coverage{Test: covTest, Results: make([]sim.InstanceResult, len(p.Verdicts))}
		for i, v := range p.Verdicts {
			// The Instance field stays zero here: cachedResult.result
			// rehydrates it positionally from the re-expanded fault list.
			cov.Results[i] = sim.InstanceResult{Detected: v.Detected, DetectingOps: v.Ops}
		}
		return &cachedResult{
			test:         test,
			complexity:   p.Complexity,
			classes:      p.Classes,
			selections:   p.Selections,
			nodes:        p.Nodes,
			pathCost:     p.PathCost,
			minSelCost:   p.MinSelCost,
			candidates:   p.Candidates,
			usedFallback: p.UsedFallback,
			coverage:     cov,
		}, true
	default:
		return nil, false
	}
}
