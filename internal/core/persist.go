// Durable-checkpoint support: the memo codec that lets the engine's
// intermediate artifacts survive process death. The async job subsystem
// (internal/jobs) attaches a disk tier to the shared memo cache; this
// codec decides which cache values cross to disk and how.
//
// Persisted kinds are exactly the per-subproblem artifacts the pipeline
// checkpoints through at stage boundaries:
//
//   - tour fragments: each §5 selection's solved exact-ATSP incumbent
//     (every optimal open path of one TPG weight matrix plus its cost),
//     keyed by the weight-matrix fingerprint — the expensive part of a
//     run, written the moment each selection's solve completes;
//   - cost fragments: one cost-only exact solve per TPG weight matrix
//     (the optimal path cost plus a witnessing path), the bound state the
//     warm-started solvers prime their incumbent from;
//   - completeness verdicts: one simulator verdict per candidate March
//     test, keyed by fault list and test signature.
//
// Coverage matrices and whole cached results stay memory-only: the
// former rebuild quickly from the bit-parallel kernel, the latter are
// superseded by the job result store. Because memo values are pure
// functions of their content-hash keys, a resumed run that loads these
// entries recomputes nothing it already finished and still produces
// byte-identical output.
package core

import (
	"encoding/json"

	"marchgen/internal/memo"
)

// persist tags the on-disk encodings; a version byte first so a future
// layout change can't misparse old stores.
const (
	persistVersion     = 1
	persistKindTour    = "tour"
	persistKindBool    = "verdict"
	persistKindTPGCost = "tpgcost"
)

// persistEnvelope is the JSON wrapper around every persisted memo value.
type persistEnvelope struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// persistTour is the wire form of a tourFragment.
type persistTour struct {
	Paths [][]int `json:"paths"`
	Cost  int     `json:"cost"`
}

// persistTPGCost is the wire form of a tpgCostFragment.
type persistTPGCost struct {
	Cost int   `json:"cost"`
	Path []int `json:"path"`
}

// memoCodec implements memo.Codec over the engine's persistable values.
type memoCodec struct{}

// Codec returns the memo.Codec covering the generation engine's
// persistable cache values: exact-ATSP tour fragments and completeness
// verdicts. Values outside those kinds are reported non-persistable and
// stay memory-only.
func Codec() memo.Codec { return memoCodec{} }

func (memoCodec) Encode(val any) ([]byte, bool) {
	var env persistEnvelope
	env.V = persistVersion
	switch v := val.(type) {
	case *tourFragment:
		data, err := json.Marshal(persistTour{Paths: v.paths, Cost: v.cost})
		if err != nil {
			return nil, false
		}
		env.Kind, env.Data = persistKindTour, data
	case *tpgCostFragment:
		data, err := json.Marshal(persistTPGCost{Cost: v.cost, Path: v.path})
		if err != nil {
			return nil, false
		}
		env.Kind, env.Data = persistKindTPGCost, data
	case bool:
		data, err := json.Marshal(v)
		if err != nil {
			return nil, false
		}
		env.Kind, env.Data = persistKindBool, data
	default:
		return nil, false
	}
	out, err := json.Marshal(env)
	if err != nil {
		return nil, false
	}
	return out, true
}

func (memoCodec) Decode(data []byte) (any, bool) {
	var env persistEnvelope
	if json.Unmarshal(data, &env) != nil || env.V != persistVersion {
		return nil, false
	}
	switch env.Kind {
	case persistKindTour:
		var t persistTour
		if json.Unmarshal(env.Data, &t) != nil || len(t.Paths) == 0 {
			return nil, false
		}
		return &tourFragment{paths: t.Paths, cost: t.Cost}, true
	case persistKindTPGCost:
		var t persistTPGCost
		if json.Unmarshal(env.Data, &t) != nil {
			return nil, false
		}
		return &tpgCostFragment{cost: t.Cost, path: t.Path}, true
	case persistKindBool:
		var v bool
		if json.Unmarshal(env.Data, &v) != nil {
			return nil, false
		}
		return v, true
	default:
		return nil, false
	}
}
