package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/budget"
	"marchgen/internal/cover"
	"marchgen/march"
)

// randomDeviation builds a random single-point fault effect.
func randomDeviation(rng *rand.Rand) fsm.Deviation {
	bit := func() march.Bit { return march.Bit(rng.Intn(3)) } // 0, 1 or X
	cell := func() fsm.Cell {
		if rng.Intn(2) == 0 {
			return fsm.CellI
		}
		return fsm.CellJ
	}
	when := fsm.S(bit(), bit())
	var on fsm.Input
	switch rng.Intn(5) {
	case 0:
		on = fsm.Rd(cell())
	case 1:
		on = fsm.Wait
	default:
		on = fsm.Wr(cell(), march.Bit(rng.Intn(2)))
	}
	// Corrupt one cell to a concrete value.
	next := fsm.Unknown.With(cell(), march.Bit(rng.Intn(2)))
	if rng.Intn(4) == 0 && on.IsRead() {
		return fsm.OutputDev(when, on, march.Bit(rng.Intn(2)))
	}
	return fsm.TransitionDev(when, on, next)
}

// TestFuzzRandomUserFaults is the end-to-end fuzz of the paper's
// "unconstrained, user-defined fault list" claim: random single-deviation
// fault models are fed through the whole pipeline and every generated test
// must be complete and operation-minimal. Deviations that are
// unobservable, masked, or outside the rewrite grammar (read-coupling
// excitations) are skipped, mirroring what a user would see as a clear
// error instead of a wrong test.
func TestFuzzRandomUserFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(998877))
	trials := 60
	if testing.Short() {
		trials = 20
	}
	generated := 0
	for trial := 0; trial < trials; trial++ {
		var instances []fault.Instance
		for k := 0; k <= rng.Intn(2); k++ {
			dev := randomDeviation(rng)
			inst, err := fault.FromDeviations("FUZZ", devName(trial, k, dev), false, dev)
			if err != nil {
				continue // unobservable or masked: correctly rejected
			}
			instances = append(instances, inst)
		}
		if len(instances) == 0 {
			continue
		}
		model, err := fault.Custom("FUZZ", "randomised fault model", instances...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := Generate([]fault.Model{model}, DefaultOptions())
		if err != nil {
			if errors.Is(err, budget.ErrUnsupportedFault) {
				continue // outside the rewrite grammar: clearly reported
			}
			t.Fatalf("trial %d: %v", trial, err)
		}
		generated++
		if !res.Coverage.Complete() {
			t.Fatalf("trial %d: incomplete coverage for %s: %v", trial, res.Test, res.Coverage.Missed())
		}
		removable, err := cover.RemovableOps(res.Test, res.Instances)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(removable) != 0 {
			t.Errorf("trial %d: %s has removable ops %v", trial, res.Test, removable)
		}
	}
	if generated < trials/3 {
		t.Errorf("only %d/%d fuzz trials produced a test — generator too restrictive", generated, trials)
	}
}

// TestFuzzShortDeadlineTypedErrors re-runs the random-fault fuzz under
// tight hard deadlines: whatever the pipeline is doing when the context
// expires, the outcome must be either a valid result or one of the typed
// sentinel errors — never a panic (which would crash the test binary)
// and never an untyped error.
func TestFuzzShortDeadlineTypedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(443322))
	trials := 40
	if testing.Short() {
		trials = 15
	}
	// Stagger the deadlines so expiry lands in different pipeline stages.
	deadlines := []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond, 10 * time.Millisecond}
	for trial := 0; trial < trials; trial++ {
		dev := randomDeviation(rng)
		inst, err := fault.FromDeviations("FUZZ", devName(trial, 0, dev), false, dev)
		if err != nil {
			continue // unobservable or masked: correctly rejected
		}
		model, err := fault.Custom("FUZZ", "randomised fault model", inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), deadlines[trial%len(deadlines)])
		res, err := GenerateCtx(ctx, []fault.Model{model}, DefaultOptions())
		cancel()
		if err == nil {
			if res == nil || res.Test == nil {
				t.Fatalf("trial %d: nil result without error", trial)
			}
			continue
		}
		typed := errors.Is(err, budget.ErrCanceled) ||
			errors.Is(err, budget.ErrDeadlineExceeded) ||
			errors.Is(err, budget.ErrBudgetExhausted) ||
			errors.Is(err, budget.ErrUnsupportedFault)
		if !typed {
			t.Fatalf("trial %d: untyped error under deadline %v: %v",
				trial, deadlines[trial%len(deadlines)], err)
		}
	}
}

func devName(trial, k int, dev fsm.Deviation) string {
	return "FUZZ" + string(rune('a'+trial%26)) + string(rune('0'+k)) + " " + dev.String()
}
