package core

import (
	"strings"
	"sync"
	"testing"

	"marchgen/internal/memo"
	"marchgen/internal/obs"
)

// mapTier is an in-memory memo.DiskTier standing in for the durable
// store: the bytes it holds survive "restarts" (fresh memo.Cache
// instances attached over the same map) exactly like a real disk tier.
type mapTier struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapTier() *mapTier { return &mapTier{m: map[string][]byte{}} }

func (t *mapTier) Get(key string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.m[key]
	return b, ok
}

func (t *mapTier) Put(key string, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[key] = append([]byte(nil), data...)
}

// without clones the tier keeping only entries whose persisted kind is
// outside the given set — simulating partial durability (some kinds
// evicted or never persisted) across a restart.
func (t *mapTier) without(kinds ...string) *mapTier {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := newMapTier()
outer:
	for k, v := range t.m {
		for _, kind := range kinds {
			if strings.Contains(string(v), `"kind":"`+kind+`"`) {
				continue outer
			}
		}
		out.m[k] = append([]byte(nil), v...)
	}
	return out
}

// primedRun generates list in warm mode over a fresh cache attached to
// tier, returning the result and the run's metrics snapshot — one
// simulated process lifetime.
func primedRun(t *testing.T, list string, tier memo.DiskTier) (*Result, map[string]int64) {
	t.Helper()
	cache := memo.New(0)
	cache.AttachDisk(tier, Codec())
	run := obs.NewRun()
	opts := warmOptions()
	opts.Cache = cache
	opts.Obs = run
	res := generate(t, list, opts)
	return res, run.Snapshot()
}

func solverTotal(m map[string]int64) int64 {
	return m["atsp.heldkarp.states"] + m["atsp.bb.expanded"] + m["atsp.enum.nodes"]
}

// TestCrossRestartPriming proves the durable warm-priming chain end to
// end: a second process lifetime over the same tier bytes skips
// re-solves (whole-result and per-matrix tour hits), and even when only
// tpgcost fragments survive, they hydrate warm incumbents — with the
// generated test byte-identical in every lifetime.
func TestCrossRestartPriming(t *testing.T) {
	const list = "SAF,TF,ADF"
	tier := newMapTier()
	first, firstM := primedRun(t, list, tier)
	if first.FromCache {
		t.Fatal("first lifetime claims a cache hit on an empty tier")
	}

	// Full restart: the persisted result short-circuits the pipeline.
	second, secondM := primedRun(t, list, tier)
	if !second.FromCache || secondM["memo.result_hits"] != 1 {
		t.Fatalf("second lifetime not served from the tier (FromCache=%v, metrics %v)",
			second.FromCache, secondM)
	}
	if second.Test.String() != first.Test.String() {
		t.Fatalf("restart output %q != original %q", second.Test, first.Test)
	}

	// Result entries gone (evicted, or the run was budgeted): the sweep
	// re-runs, but every exact solve is answered by a persisted tour
	// fragment — node counts collapse.
	third, thirdM := primedRun(t, list, tier.without("result"))
	if third.FromCache || thirdM["memo.tour_hits"] == 0 {
		t.Fatalf("third lifetime: FromCache=%v tour_hits=%d, want sweep with tour hits",
			third.FromCache, thirdM["memo.tour_hits"])
	}
	if third.Test.String() != first.Test.String() {
		t.Fatalf("tour-primed output %q != original %q", third.Test, first.Test)
	}
	if got, base := solverTotal(thirdM), solverTotal(firstM); 2*got > base {
		t.Errorf("tour-primed lifetime spent %d solver nodes, first spent %d — expected at least halved", got, base)
	}

	// Only tpgcost fragments survive: they cannot answer a solve, but
	// they hydrate the warm incumbent of each first-of-chain solve.
	fourth, fourthM := primedRun(t, list, tier.without("result", "tour"))
	if fourth.Test.String() != first.Test.String() {
		t.Fatalf("cost-primed output %q != original %q", fourth.Test, first.Test)
	}
	if fourthM["memo.tpgcost_hits"] == 0 || fourthM["core.warm.primed"] == 0 {
		t.Fatalf("cost fragments did not prime (tpgcost_hits=%d primed=%d)",
			fourthM["memo.tpgcost_hits"], fourthM["core.warm.primed"])
	}
	if fourthM["atsp.bb.warmshort"] == 0 {
		t.Errorf("no warm root shortcut fired in the cost-primed lifetime (metrics %v)", fourthM)
	}
	if got, base := solverTotal(fourthM), solverTotal(firstM); got > base {
		t.Errorf("cost-primed lifetime spent %d solver nodes, first spent %d — priming made it worse", got, base)
	}
}

// TestCrossRestartRejectsBadFragments locks the safety side: corrupted
// bytes, version-skewed envelopes and shape-invalid warm paths are all
// treated as clean misses — the run completes with the byte-identical
// result and never trusts a bad fragment.
func TestCrossRestartRejectsBadFragments(t *testing.T) {
	const list = "SAF,TF,ADF"
	tier := newMapTier()
	first, _ := primedRun(t, list, tier)

	corrupt := newMapTier()
	tier.mu.Lock()
	for k, v := range tier.m {
		switch {
		case strings.Contains(string(v), `"kind":"tpgcost"`):
			// Version skew: a future layout must not parse as today's.
			corrupt.m[k] = []byte(strings.Replace(string(v), `"v":1`, `"v":99`, 1))
		case strings.Contains(string(v), `"kind":"result"`):
			// Torn write: truncated JSON.
			corrupt.m[k] = v[:len(v)/2]
		default:
			// Bit rot: garbage bytes under a valid key.
			corrupt.m[k] = []byte("\x00\xffnot json")
		}
	}
	tier.mu.Unlock()

	res, m := primedRun(t, list, corrupt)
	if res.FromCache {
		t.Fatal("corrupted result entry served from cache")
	}
	if m["memo.tour_hits"] != 0 || m["memo.result_hits"] != 0 || m["core.warm.primed"] != 0 {
		t.Fatalf("corrupted fragments produced hits (metrics %v)", m)
	}
	if res.Test.String() != first.Test.String() {
		t.Fatalf("output over corrupted tier %q != original %q", res.Test, first.Test)
	}
}

// TestDistributedShardsPrimeFromTier locks the cluster leg of cross-run
// priming: shard solves run the same cache-consulting orderPatterns as
// the sequential sweep, so a distributed sweep over a tier holding only
// tpgcost fragments (in production reached through cluster.PeerTier)
// primes its shard-local warm chains — and still emits the byte-identical
// test.
func TestDistributedShardsPrimeFromTier(t *testing.T) {
	const list = "SAF,TF,ADF"
	tier := newMapTier()
	seq, _ := primedRun(t, list, tier)

	cache := memo.New(0)
	cache.AttachDisk(tier.without("result", "tour"), Codec())
	run := obs.NewRun()
	opts := warmOptions()
	opts.Cache = cache
	opts.Obs = run
	opts.Distributor = &localDistributor{n: 3}
	dist := generate(t, list, opts)
	if dist.Test.String() != seq.Test.String() {
		t.Fatalf("primed distributed test %q != sequential %q", dist.Test, seq.Test)
	}
	snap := run.Snapshot()
	if snap["core.sweep.distributed"] != 1 {
		t.Fatalf("sweep did not distribute (metrics %v)", snap)
	}
	if snap["core.warm.primed"] == 0 || snap["memo.tpgcost_hits"] == 0 {
		t.Fatalf("shards did not prime from the tier (tpgcost_hits=%d primed=%d)",
			snap["memo.tpgcost_hits"], snap["core.warm.primed"])
	}
}

// TestWarmPathValidation pins the fragment-shape gate used before a
// persisted path may prime a solve.
func TestWarmPathValidation(t *testing.T) {
	cases := []struct {
		p  []int
		n  int
		ok bool
	}{
		{[]int{0, 1, 2}, 3, true},
		{[]int{2, 0, 1}, 3, true},
		{[]int{0, 1}, 3, false},       // short
		{[]int{0, 1, 2, 3}, 3, false}, // long
		{[]int{0, 1, 1}, 3, false},    // duplicate
		{[]int{0, 1, 3}, 3, false},    // out of range
		{[]int{-1, 1, 2}, 3, false},   // negative
		{nil, 0, true},                // empty instance, empty path
	}
	for _, c := range cases {
		if got := validWarmPath(c.p, c.n); got != c.ok {
			t.Errorf("validWarmPath(%v, %d) = %v, want %v", c.p, c.n, got, c.ok)
		}
	}
}
