package core

import (
	"math/rand"
	"testing"

	"marchgen/fault"
	"marchgen/internal/baseline"
	"marchgen/internal/cover"
	"marchgen/internal/sim"
)

func generate(t *testing.T, list string, opts Options) *Result {
	t.Helper()
	models, err := fault.ParseList(list)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(models, opts)
	if err != nil {
		t.Fatalf("Generate(%s): %v", list, err)
	}
	return res
}

// TestTable3 reproduces the paper's Table 3: for each fault list the
// generated March test has exactly the published complexity, covers every
// fault instance, and is non-redundant under the Set Covering check.
func TestTable3(t *testing.T) {
	rows := []struct {
		list  string
		want  int
		known string
	}{
		{"SAF", 4, "MATS"},
		{"SAF,TF", 5, "MATS+"},
		{"SAF,TF,ADF", 6, "MATS++"},
		{"SAF,TF,ADF,CFin", 6, "MarchX"},
		{"SAF,TF,ADF,CFin,CFid", 10, "MarchC-"},
		{"CFin", 5, ""},
	}
	for _, row := range rows {
		res := generate(t, row.list, DefaultOptions())
		if res.Complexity != row.want {
			t.Errorf("%s: generated %dn (%s), paper reports %dn",
				row.list, res.Complexity, res.Test, row.want)
			continue
		}
		if !res.Coverage.Complete() {
			t.Errorf("%s: coverage incomplete: %v", row.list, res.Coverage.Missed())
		}
		rep, err := cover.Analyze(res.Test, res.Instances)
		if err != nil {
			t.Errorf("%s: %v", row.list, err)
			continue
		}
		if !rep.NonRedundant {
			t.Errorf("%s: test %s is redundant (reads %v, ops %v)",
				row.list, res.Test, rep.RedundantReads, rep.RemovableOps)
		}
	}
}

// TestTable3OptimalityFastRows certifies optimality of the generated
// complexities against the independent branch-and-bound search for the
// rows whose search space is small.
func TestTable3OptimalityFastRows(t *testing.T) {
	for _, row := range []struct {
		list string
		cap  int
	}{
		{"SAF", 5},
		{"SAF,TF", 6},
		{"SAF,TF,ADF", 7},
		{"SAF,TF,ADF,CFin", 7},
		{"CFin", 6},
	} {
		res := generate(t, row.list, DefaultOptions())
		models, _ := fault.ParseList(row.list)
		opt, _, err := baseline.BranchBound(fault.Instances(models), row.cap)
		if err != nil {
			t.Fatalf("%s: %v", row.list, err)
		}
		if res.Complexity != opt.Complexity() {
			t.Errorf("%s: pipeline %dn vs proven optimum %dn (%s)",
				row.list, res.Complexity, opt.Complexity(), opt)
		}
	}
}

// TestTable3OptimalityRow5 certifies the 10n row against the deep search.
func TestTable3OptimalityRow5(t *testing.T) {
	if testing.Short() {
		t.Skip("≈20 s branch-and-bound certification")
	}
	res := generate(t, "SAF,TF,ADF,CFin,CFid", DefaultOptions())
	models, _ := fault.ParseList("SAF,TF,ADF,CFin,CFid")
	opt, _, err := baseline.BranchBound(fault.Instances(models), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complexity != opt.Complexity() {
		t.Errorf("row 5: pipeline %dn vs proven optimum %dn", res.Complexity, opt.Complexity())
	}
}

// TestSection4WorkedExample reproduces the paper's worked example: the
// fault list {⟨↑;1⟩, ⟨↑;0⟩} yields a non-redundant 8n March test.
func TestSection4WorkedExample(t *testing.T) {
	res := generate(t, "CFid<u,1>,CFid<u,0>", DefaultOptions())
	if res.Complexity != 8 {
		t.Fatalf("worked example: %dn (%s), want 8n", res.Complexity, res.Test)
	}
	rep, err := cover.Analyze(res.Test, res.Instances)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.NonRedundant {
		t.Errorf("worked example test %s is redundant", res.Test)
	}
}

// TestFullTaxonomy generates a test for every built-in fault model at
// once, delay elements included.
func TestFullTaxonomy(t *testing.T) {
	res := generate(t, "SAF,TF,WDF,RDF,DRDF,IRF,SOF,DRF,ADF,CFin,CFid,CFst", DefaultOptions())
	if !res.Coverage.Complete() {
		t.Fatalf("full taxonomy: missed %v", res.Coverage.Missed())
	}
	if res.Test.Delays() == 0 {
		t.Error("full taxonomy test must contain delay elements for DRF")
	}
	rep, err := cover.Analyze(res.Test, res.Instances)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RemovableOps) != 0 {
		t.Errorf("full taxonomy test has removable ops %v", rep.RemovableOps)
	}
}

func TestHeuristicModeStaysValid(t *testing.T) {
	opts := DefaultOptions()
	opts.Exact = false
	res := generate(t, "SAF,TF,ADF,CFin", opts)
	if !res.Coverage.Complete() {
		t.Fatalf("heuristic mode incomplete: %v", res.Coverage.Missed())
	}
	exact := generate(t, "SAF,TF,ADF,CFin", DefaultOptions())
	if res.Complexity < exact.Complexity {
		t.Errorf("heuristic %dn beat exact %dn", res.Complexity, exact.Complexity)
	}
}

// TestEquivalenceAblation: disabling the Section 5 equivalence classes
// forces one TPG node per BFE; the result stays valid but the graph grows.
func TestEquivalenceAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableEquivalence = true
	abl := generate(t, "CFin", opts)
	if !abl.Coverage.Complete() {
		t.Fatalf("ablation incomplete: %v", abl.Coverage.Missed())
	}
	base := generate(t, "CFin", DefaultOptions())
	if abl.Classes <= base.Classes {
		t.Errorf("ablation classes %d must exceed %d", abl.Classes, base.Classes)
	}
	if abl.Complexity < base.Complexity {
		t.Errorf("ablation %dn beat equivalence-aware %dn", abl.Complexity, base.Complexity)
	}
}

func TestShrinkAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableShrink = true
	res := generate(t, "SAF,TF", opts)
	if !res.Coverage.Complete() {
		t.Fatal("no-shrink result incomplete")
	}
	if res.Complexity < generate(t, "SAF,TF", DefaultOptions()).Complexity {
		t.Error("shrinking must never lengthen the test")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(nil, DefaultOptions()); err == nil {
		t.Error("empty fault list must fail")
	}
}

// TestRandomSublistsPropertyBased: any random combination of fault models
// yields a complete, operation-minimal (no single removable op) test.
func TestRandomSublistsPropertyBased(t *testing.T) {
	names := []string{"SAF", "TF", "WDF", "RDF", "DRDF", "IRF", "SOF", "ADF", "CFin", "CFid", "CFst"}
	rng := rand.New(rand.NewSource(20260707))
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		var list string
		for _, n := range names {
			if rng.Intn(3) == 0 {
				if list != "" {
					list += ","
				}
				list += n
			}
		}
		if list == "" {
			list = "SAF"
		}
		res := generate(t, list, DefaultOptions())
		if !res.Coverage.Complete() {
			t.Errorf("trial %d (%s): incomplete: %v", trial, list, res.Coverage.Missed())
			continue
		}
		removable, err := cover.RemovableOps(res.Test, res.Instances)
		if err != nil {
			t.Errorf("trial %d (%s): %v", trial, list, err)
			continue
		}
		if len(removable) != 0 {
			t.Errorf("trial %d (%s): %s has removable ops %v", trial, list, res.Test, removable)
		}
		// The two simulation engines agree on the generated test.
		nCell, err := sim.EvaluateN(res.Test, res.Instances, 8)
		if err != nil {
			t.Errorf("trial %d: %v", trial, err)
			continue
		}
		if !nCell.Complete() {
			t.Errorf("trial %d (%s): n-cell engine disagrees: %v", trial, list, nCell.Missed())
		}
	}
}
