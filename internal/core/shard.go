// Cross-process distribution of the §5 selection sweep.
//
// The division of labour is chosen so byte-identity with the sequential
// sweep is structural, not probabilistic. A shard performs only the
// expensive, selection-local work: reducing each selection's TPG,
// solving its exact ATSP (with a shard-local warm chain) and assembling
// the rewrite candidates. What it ships back is the ordered *candidate
// stream* — per selection, the node signature, node count, exact visit
// cost and every assembled candidate in March notation. The coordinator
// then replays the sequential sweep's fold over the concatenated
// streams in ascending selection order: global node-set deduplication,
// candidate counting, the incumbent prune, simulator validation,
// shrinking and the better() comparison all run in one place, on
// exactly the sequence of candidates the sequential loop would have
// seen.
//
// Two facts carry the byte-identity argument:
//
//   - the candidate stream is a pure function of the selection: the
//     exact solver's strict-prune + lexLess offer rule makes its
//     returned tour set warm/cold-invariant (see internal/atsp), so a
//     shard's restarted warm chain changes solver effort, never the
//     patterns — and assembly is deterministic in the patterns;
//   - everything whose outcome depends on *global* sweep state — the
//     incumbent prune (whose threshold tracks the best-so-far across
//     all earlier selections) and the first-seen tie-break in better()
//     — is not distributed at all; the coordinator replays it
//     sequentially over the merged stream. An earlier version let each
//     shard prune and validate against its own local incumbent; that
//     validated a superset of the sequential candidates and could
//     surface equal-complexity tests the sequential prune had dropped.
//
// Distribution is offered only where that argument holds wholesale:
// exact solves, warm mode, unlimited budget, no selection truncation.
// Everything else — and every distribution failure — runs the ordinary
// sequential sweep. The distributor is infrastructure, never a
// correctness dependency.
package core

import (
	"context"
	"fmt"
	"sync"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/budget"
	"marchgen/internal/gts"
	"marchgen/internal/obs"
	"marchgen/internal/tpg"
	"marchgen/march"
)

// SweepShard is one contiguous slice [Lo,Hi) of the §5 selection index
// space.
type SweepShard struct {
	// Lo is the first selection index of the shard (inclusive).
	Lo int `json:"lo"`
	// Hi is the end of the shard (exclusive).
	Hi int `json:"hi"`
}

// ShardSelection is one deduplicated selection's solved output within a
// shard: the inputs the coordinator's replay needs, in selection order.
type ShardSelection struct {
	// Sig is the node-set signature (the sweep's deduplication key).
	Sig string `json:"sig"`
	// Nodes is the TPG node count after reduction.
	Nodes int `json:"nodes"`
	// Cost is the ATSP visit cost of the solved ordering; ExactCost
	// reports whether it is the proven optimum (it feeds
	// MinSelectionCost only when true).
	Cost      int  `json:"cost"`
	ExactCost bool `json:"exact_cost,omitempty"`
	// Candidates is the assembled candidate stream for this selection in
	// March notation, ordering-deduplicated, in assembly order.
	Candidates []string `json:"candidates,omitempty"`
}

// ShardOutcome is one executed sweep shard's report: the candidate
// streams of its selections, shard-locally deduplicated, in ascending
// selection order.
type ShardOutcome struct {
	// Shard echoes the executed index range.
	Shard SweepShard `json:"shard"`
	// Selections holds one entry per first-seen node signature.
	Selections []ShardSelection `json:"selections,omitempty"`
}

// SweepDistributor is the hook through which a serving layer offers the
// selection sweep for cross-process execution. The coordinator calls
// Shards once to partition the sweep, then RunShard once per shard
// (concurrently); implementations run shards wherever they like — the
// usual one ships each shard to a replica and falls back to calling
// RunShardModels in-process when the replica is unreachable. Any error
// from RunShard abandons distribution for the whole run and the
// ordinary sequential sweep takes over.
type SweepDistributor interface {
	// Shards partitions [0,total) into ascending contiguous shards, or
	// returns nil to decline (the sweep then runs sequentially).
	Shards(total int) []SweepShard
	// RunShard executes one shard of the sweep described by models and
	// opts and returns its outcome.
	RunShard(ctx context.Context, models []fault.Model, opts Options, sh SweepShard) (*ShardOutcome, error)
}

// RunShardModels executes one contiguous shard of the §5 selection
// sweep in-process: reduce, exact-solve and assemble every first-seen
// selection in [sh.Lo, sh.Hi), with a shard-local warm chain. No
// validation, pruning or shrinking happens here — those depend on
// global sweep state and run in the coordinator's replay. It is the
// executor behind the replica set's internal sweep endpoint and the
// local fallback for unreachable peers. The shard runs unbudgeted
// (distribution is only offered to unbudgeted runs); ctx cancellation
// still aborts it.
func RunShardModels(ctx context.Context, models []fault.Model, opts Options, sh SweepShard) (_ *ShardOutcome, err error) {
	if opts.SelectionLimit <= 0 {
		opts.SelectionLimit = 64
	}
	workers, err := budget.ParseWorkers(opts.Workers)
	if err != nil {
		return nil, err
	}
	run := opts.Obs
	if run != nil {
		ctx = obs.Into(ctx, run)
	} else {
		run = obs.From(ctx)
	}
	m := budget.NewMeter(ctx, budget.Budget{})
	instances := fault.Instances(models)
	if len(instances) == 0 {
		return nil, fmt.Errorf("core: empty fault list")
	}
	classes := tpg.Classes(instances)
	if opts.DisableEquivalence {
		classes = splitClasses(classes)
	}
	selections := tpg.Selections(classes, opts.SelectionLimit)
	if sh.Lo < 0 || sh.Hi > len(selections) || sh.Lo >= sh.Hi {
		return nil, fmt.Errorf("core: shard [%d,%d) outside the %d-selection sweep: %w", sh.Lo, sh.Hi, len(selections), budget.ErrUsage)
	}
	span := run.Start("shard")
	span.SetInt("lo", int64(sh.Lo)).SetInt("hi", int64(sh.Hi))
	defer span.End()

	out := &ShardOutcome{Shard: sh}
	var prevOrder []fsm.Pattern
	seen := map[string]bool{}
	noDegrade := func(string) {} // unbudgeted: the exact solvers cannot soft-exhaust
	for idx := sh.Lo; idx < sh.Hi; idx++ {
		if err := m.CheckNow(); err != nil {
			return nil, err
		}
		nodes := tpg.Reduce(classes, selections[idx])
		sig := nodeSignature(nodes)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		patterns, cost, exactCost, err := orderPatterns(m, nodes, orderConfig{
			exact:    true,
			workers:  workers,
			preferBB: true,
			warm:     prevOrder,
		}, opts.Cache, noDegrade)
		if err != nil {
			if budget.IsHard(err) {
				return nil, err
			}
			continue // soft solver failure: skip the selection, as the sequential sweep does
		}
		prevOrder = patterns[0]
		sel := ShardSelection{Sig: sig, Nodes: len(nodes), Cost: cost, ExactCost: exactCost}
		seenOrder := map[string]bool{}
		for _, ordered := range patterns {
			if osig := orderSignature(ordered); seenOrder[osig] {
				continue
			} else {
				seenOrder[osig] = true
			}
			cands, err := gts.AssembleMeter(m, ordered, opts.Beam)
			if err != nil {
				if budget.IsHard(err) {
					return nil, err
				}
				continue
			}
			for _, cand := range cands {
				sel.Candidates = append(sel.Candidates, cand.String())
			}
		}
		out.Selections = append(out.Selections, sel)
	}
	run.Counter("core.sweep.shards_run").Inc()
	return out, nil
}

// mergedSweep is the coordinator-side replay of every shard's candidate
// stream back into the sequential sweep's observable state.
type mergedSweep struct {
	best                *march.Test
	bestNodes, bestCost int
	candidates          int
	minSel              int
	shards              int
}

// distributeSweep offers the sweep to the distributor, then replays the
// sequential fold over the merged candidate streams (see the package
// comment). ok is false — and the caller runs the ordinary sequential
// sweep — when the distributor declines, returns a malformed partition,
// any shard fails, a candidate fails to parse, or no candidate
// validated. A non-nil err is a hard engine error from the replay's
// validation (context cancellation, simulator failure) and aborts the
// whole run, exactly as it would mid-loop sequentially.
func distributeSweep(ctx context.Context, d SweepDistributor, models []fault.Model, opts Options, total int, gen *genContext, prog *obs.Progress, run *obs.Run) (_ *mergedSweep, ok bool, err error) {
	shards := d.Shards(total)
	if len(shards) < 2 {
		return nil, false, nil
	}
	want := 0
	for _, sh := range shards {
		if sh.Lo != want || sh.Hi <= sh.Lo {
			run.Counter("core.sweep.bad_partition").Inc()
			return nil, false, nil
		}
		want = sh.Hi
	}
	if want != total {
		run.Counter("core.sweep.bad_partition").Inc()
		return nil, false, nil
	}
	outs := make([]*ShardOutcome, len(shards))
	errs := make([]error, len(shards))
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		completed int
	)
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = d.RunShard(ctx, models, opts, shards[i])
			if errs[i] == nil {
				// Aggregate live progress: the packed selection cell is
				// monotone, so "selections finished so far" is a safe
				// reading even while shards complete out of order.
				mu.Lock()
				completed += shards[i].Hi - shards[i].Lo
				prog.Selection(int64(completed), int64(total))
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for i := range shards {
		if errs[i] != nil || outs[i] == nil {
			run.Counter("core.sweep.shard_errors").Inc()
			return nil, false, nil
		}
	}

	// The replay: the sequential loop body over the concatenated streams,
	// in ascending selection order — global dedup, candidate count, the
	// incumbent prune, validation, shrinking, better().
	merged := &mergedSweep{minSel: -1, shards: len(shards)}
	seenSig := map[string]bool{}
	for _, out := range outs {
		for _, sel := range out.Selections {
			if seenSig[sel.Sig] {
				continue
			}
			seenSig[sel.Sig] = true
			if sel.ExactCost && (merged.minSel < 0 || sel.Cost < merged.minSel) {
				merged.minSel = sel.Cost
			}
			for _, cs := range sel.Candidates {
				merged.candidates++
				cand, perr := march.Parse(cs)
				if perr != nil {
					run.Counter("core.sweep.shard_errors").Inc()
					return nil, false, nil
				}
				if merged.best != nil && cand.Complexity() >= merged.best.Complexity()+2 {
					continue // too long to beat the incumbent even after shrinking
				}
				valid := gen.complete(cand)
				if gen.err != nil {
					return nil, false, gen.err
				}
				if !valid {
					continue
				}
				if !opts.DisableShrink {
					cand = gen.shrink(cand)
					if gen.err != nil {
						return nil, false, gen.err
					}
				}
				if better(cand, merged.best) {
					merged.best = cand
					merged.bestNodes, merged.bestCost = sel.Nodes, sel.Cost
					prog.Best(int64(merged.best.Complexity()))
				}
			}
		}
	}
	if merged.best == nil {
		return nil, false, nil
	}
	return merged, true, nil
}
