package core

import (
	"testing"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/cover"
	"marchgen/internal/tpg"
)

// runCert drives a bare certificate search over classes with explicit
// starting allowances and no incumbent prime, so every cheaper selection
// improves the incumbent — the signal adaptive growth keys on.
func runCert(t *testing.T, classes []tpg.Class, nodeCap, leafCap int) *certSearch {
	t.Helper()
	c := &certSearch{
		classes: classes,
		choices: tpg.Choices(classes),
		workers: 1,
		selCost: map[string]int{},
		best:    -1,
		nodeCap: nodeCap,
		leafCap: leafCap,
	}
	c.search(0, make([]fsm.Pattern, 0, len(classes)), make(tpg.Selection, len(classes)))
	if c.err != nil {
		t.Fatalf("certificate search: %v", c.err)
	}
	return c
}

func classesFor(t *testing.T, list string) []tpg.Class {
	t.Helper()
	models, err := fault.ParseList(list)
	if err != nil {
		t.Fatal(err)
	}
	var instances []fault.Instance
	for _, m := range models {
		instances = append(instances, m.Instances...)
	}
	return tpg.Classes(instances)
}

// TestCertAdaptiveCapsInvariance is the output-invariance contract of the
// adaptive caps: whenever a small-base adaptive search completes (possibly
// after growing), its certified minimum is exactly the one a maxed-cap
// fixed search finds; and at least one configuration must actually
// exercise growth, or the adaptive machinery is dead code.
func TestCertAdaptiveCapsInvariance(t *testing.T) {
	grewSomewhere := false
	for _, list := range []string{"SAF,TF,ADF", "SAF,TF,ADF,CFin", "SAF,TF,ADF,CFin,CFid"} {
		classes := classesFor(t, list)
		ref := runCert(t, classes, certNodeCapMax, certLeafCapMax)
		if ref.capped {
			t.Fatalf("%s: reference search capped at the ceilings", list)
		}
		for _, caps := range []struct{ node, leaf int }{
			{certNodeCapBase, certLeafCapBase},
			{256, 8},
			{64, 4},
			{16, 2},
		} {
			c := runCert(t, classes, caps.node, caps.leaf)
			if c.grew > 0 {
				grewSomewhere = true
			}
			if c.capped {
				continue // honestly reported as incomplete: nothing to compare
			}
			if c.best != ref.best {
				t.Errorf("%s caps=%d/%d: adaptive minimum %d, fixed-cap minimum %d",
					list, caps.node, caps.leaf, c.best, ref.best)
			}
		}
	}
	if !grewSomewhere {
		t.Error("no configuration exercised adaptive cap growth")
	}
}

// TestCertGrow pins the growth rule itself: doubling happens only below
// the ceiling and only when the last improvement fell in the second half
// of the current allowance, and the doubled cap clamps to the ceiling.
func TestCertGrow(t *testing.T) {
	c := &certSearch{}
	cap := 100
	if c.grow(&cap, 1000, 50) {
		t.Error("grew on an improvement at exactly half the allowance")
	}
	if !c.grow(&cap, 1000, 51) || cap != 200 {
		t.Errorf("expected growth to 200, got %d", cap)
	}
	cap = 600
	if !c.grow(&cap, 1000, 301) || cap != 1000 {
		t.Errorf("expected clamp to 1000, got %d", cap)
	}
	if c.grow(&cap, 1000, 999) {
		t.Error("grew past the ceiling")
	}
	if c.grew != 2 {
		t.Errorf("grew counter %d, want 2", c.grew)
	}
}

// TestJointModeAdaptiveByteIdentity re-asserts the cross-mode contract on
// the row whose certificate is the largest in the Table 3 suite: the
// joint-mode result (which runs the adaptive certificate) must be
// byte-identical to enumerate mode.
func TestJointModeAdaptiveByteIdentity(t *testing.T) {
	optsE := DefaultOptions()
	optsE.SolverMode = SolverEnumerate
	optsJ := DefaultOptions()
	optsJ.SolverMode = SolverJoint
	e := generate(t, "SAF,TF,ADF,CFin", optsE)
	j := generate(t, "SAF,TF,ADF,CFin", optsJ)
	if e.Test.String() != j.Test.String() || e.Complexity != j.Complexity {
		t.Fatalf("joint output diverges: %q (%dn) vs enumerate %q (%dn)",
			j.Test, j.Complexity, e.Test, e.Complexity)
	}
	if _, err := cover.Analyze(j.Test, j.Instances); err != nil {
		t.Fatal(err)
	}
}
