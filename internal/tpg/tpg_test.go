package tpg

import (
	"testing"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/atsp"
	"marchgen/march"
)

func section3Patterns(t *testing.T) []Node {
	t.Helper()
	var nodes []Node
	for _, name := range []string{"CFid<u,0>", "CFid<u,1>"} {
		m, err := fault.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, inst := range m.Instances {
			nodes = append(nodes, Node{Pattern: inst.BFEs[0].Pattern, Covers: []string{inst.Name}})
		}
	}
	return nodes
}

// TestFigure4TPG reproduces the paper's Figure 4: the TPG for the fault
// list {⟨↑;1⟩, ⟨↑;0⟩} — four nodes TP1..TP4 with the exact Hamming-weight
// matrix (two 0-weight edges, four 1-weight, six 2-weight).
func TestFigure4TPG(t *testing.T) {
	nodes := section3Patterns(t)
	if len(nodes) != 4 {
		t.Fatalf("%d nodes, want 4", len(nodes))
	}
	g := New(nodes)
	// Node order: TP1=(01,w1i,r1j), TP2=(10,w1j,r1i), TP3=(00,w1i,r0j),
	// TP4=(00,w1j,r0i).
	want := [4][4]int{
		{0, 1, 2, 2},
		{1, 0, 2, 2},
		{2, 0, 0, 1},
		{0, 2, 1, 0},
	}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a == b {
				continue
			}
			if g.Weight[a][b] != want[a][b] {
				t.Errorf("weight(TP%d -> TP%d) = %d, want %d\n%s",
					a+1, b+1, g.Weight[a][b], want[a][b], g)
			}
		}
	}
	// The figure's multiset of edge weights: {0×2, 1×4, 2×6}.
	histo := map[int]int{}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if a != b {
				histo[g.Weight[a][b]]++
			}
		}
	}
	if histo[0] != 2 || histo[1] != 4 || histo[2] != 6 {
		t.Errorf("weight histogram %v, want 0:2 1:4 2:6", histo)
	}
}

// TestFigure4OptimalGTSLength checks the minimum-weight constrained visit
// of the Figure 4 TPG: starting from a uniform-initialisation pattern
// (f.4.4), the optimal Global Test Sequence for {⟨↑;1⟩, ⟨↑;0⟩} spends
// 12 operations before minimisation — matching the 12-symbol GTS of the
// paper's Section 4 worked example.
func TestFigure4OptimalGTSLength(t *testing.T) {
	nodes := section3Patterns(t)
	g := New(nodes)
	starts := make([]int, len(nodes))
	opCount := 0
	for b := range nodes {
		starts[b] = g.StartCost(b)
		opCount += g.NodeCost(b)
	}
	// f.4.4: force a uniform start — TP3/TP4 have init 00 (cost 1 as a
	// single ⇕(w0)); TP1/TP2 would need two writes.
	path, cost, err := atsp.Path(atsp.Matrix(g.Weight), starts, true)
	if err != nil {
		t.Fatal(err)
	}
	if first := nodes[path[0]].Pattern.Init; !first.Uniform() {
		t.Errorf("optimal path starts from non-uniform init %v", first)
	}
	// Total raw GTS operations: start writes + chaining writes + per-node
	// excite+observe. The paper's worked example GTS has 12 operations
	// (w0i,w0j counted as the two writes of the ⇕(w0) initialisation:
	// start cost 1 counts March operations, so add 1 for the second cell).
	total := cost + opCount
	if total != 11 { // 1 (uniform start op) + 2 (chaining) + 8 (4×2)
		t.Errorf("constrained optimal visit costs %d march-ops, want 11", total)
	}
}

func TestStartCost(t *testing.T) {
	mk := func(i, j march.Bit) Node {
		return Node{Pattern: fsm.NewPattern(fsm.S(i, j), []fsm.Input{fsm.Wr(fsm.CellI, march.One)}, fsm.Rd(fsm.CellI))}
	}
	g := New([]Node{
		mk(march.Zero, march.Zero), // uniform: 1
		mk(march.Zero, march.One),  // two writes: 2
		mk(march.Zero, march.X),    // one write: 1
		mk(march.X, march.X),       // free: 0
	})
	want := []int{1, 2, 1, 0}
	for b, w := range want {
		if got := g.StartCost(b); got != w {
			t.Errorf("StartCost(%d) = %d, want %d", b, got, w)
		}
	}
}

func TestNodeCost(t *testing.T) {
	p := fsm.NewPattern(fsm.Unknown, []fsm.Input{fsm.Wr(fsm.CellI, march.One)}, fsm.Rd(fsm.CellI))
	g := New([]Node{{Pattern: p}})
	if g.NodeCost(0) != 2 {
		t.Errorf("NodeCost = %d, want 2", g.NodeCost(0))
	}
	pe := fsm.NewPattern(fsm.S(march.Zero, march.X), nil, fsm.Rd(fsm.CellI))
	g = New([]Node{{Pattern: pe}})
	if g.NodeCost(0) != 1 {
		t.Errorf("NodeCost(ε excite) = %d, want 1", g.NodeCost(0))
	}
}

func TestSubsumes(t *testing.T) {
	w1i := []fsm.Input{fsm.Wr(fsm.CellI, march.One)}
	strict := fsm.NewPattern(fsm.S(march.Zero, march.Zero), w1i, fsm.Rd(fsm.CellJ))
	loose := fsm.NewPattern(fsm.S(march.X, march.Zero), w1i, fsm.Rd(fsm.CellJ))
	if !Subsumes(strict, loose) {
		t.Error("stricter init must subsume looser")
	}
	if Subsumes(loose, strict) {
		t.Error("looser init must not subsume stricter")
	}
	other := fsm.NewPattern(fsm.S(march.Zero, march.Zero), w1i, fsm.Rd(fsm.CellI))
	if Subsumes(strict, other) {
		t.Error("different observation must not subsume")
	}
	if !Subsumes(strict, strict) {
		t.Error("patterns subsume themselves")
	}
}

func TestClassesConjunctive(t *testing.T) {
	sof, err := fault.Parse("SOF")
	if err != nil {
		t.Fatal(err)
	}
	cls := Classes(sof.Instances)
	if len(cls) != 2 {
		t.Fatalf("SOF classes: %d, want 2 (one per conjunctive BFE)", len(cls))
	}
	for _, c := range cls {
		if len(c.Options) != 1 {
			t.Errorf("conjunctive class %s has %d options", c.Label, len(c.Options))
		}
	}
	cfin, err := fault.Parse("CFin<u>")
	if err != nil {
		t.Fatal(err)
	}
	cls = Classes(cfin.Instances)
	if len(cls) != 2 {
		t.Fatalf("CFin<u> classes: %d, want 2", len(cls))
	}
	for _, c := range cls {
		if len(c.Options) != 2 {
			t.Errorf("CFin class %s has %d options, want 2", c.Label, len(c.Options))
		}
	}
}

func TestReduceMergesDuplicatesAndSubsumed(t *testing.T) {
	w1i := []fsm.Input{fsm.Wr(fsm.CellI, march.One)}
	strict := fsm.NewPattern(fsm.S(march.Zero, march.Zero), w1i, fsm.Rd(fsm.CellJ))
	loose := fsm.NewPattern(fsm.S(march.X, march.Zero), w1i, fsm.Rd(fsm.CellJ))
	classes := []Class{
		{Label: "a", Options: []fsm.Pattern{strict}},
		{Label: "b", Options: []fsm.Pattern{loose}},
		{Label: "c", Options: []fsm.Pattern{strict}},
	}
	nodes := Reduce(classes, Selection{0, 0, 0})
	if len(nodes) != 1 {
		t.Fatalf("reduced to %d nodes, want 1", len(nodes))
	}
	if len(nodes[0].Covers) != 3 {
		t.Errorf("node covers %v, want all three classes", nodes[0].Covers)
	}
	if nodes[0].Pattern.String() != strict.String() {
		t.Errorf("kept pattern %s, want the strict one", nodes[0].Pattern)
	}
}

// TestSelectionsCollapsesFreeClasses: the CFin equivalence options coincide
// with CFid patterns, so with CFid in the list CFin adds no enumeration.
func TestSelectionsCollapsesFreeClasses(t *testing.T) {
	list, err := fault.ParseList("CFid,CFin")
	if err != nil {
		t.Fatal(err)
	}
	classes := Classes(fault.Instances(list))
	sels := Selections(classes, 64)
	if len(sels) != 1 {
		t.Errorf("CFid+CFin selections: %d, want 1 (all CFin classes subsumed)", len(sels))
	}
	// CFin alone: 4 instances × 2 options, nothing mandatory: 16 selections.
	cfin, err := fault.Parse("CFin")
	if err != nil {
		t.Fatal(err)
	}
	sels = Selections(Classes(cfin.Instances), 64)
	if len(sels) != 16 {
		t.Errorf("CFin selections: %d, want 16", len(sels))
	}
}

func TestSelectionsLimit(t *testing.T) {
	cfin, err := fault.Parse("CFin")
	if err != nil {
		t.Fatal(err)
	}
	classes := Classes(cfin.Instances)
	sels := Selections(classes, 4)
	if len(sels) > 4 {
		t.Errorf("limit ignored: %d selections", len(sels))
	}
}
