// Package tpg builds the Test Pattern Graph of the paper's Section 4: a
// complete directed graph whose nodes are test patterns and whose edge
// weights are the Hamming distances between the observation state of the
// source pattern and the initialisation state of the target pattern
// (f.4.1) — the number of write operations needed to chain the two
// patterns. Finding a minimum-weight visit of all nodes (an open-path
// asymmetric TSP) yields a minimum-length Global Test Sequence.
//
// The package also implements the BFE-equivalence machinery of Section 5:
// disjunctive BFEs of one fault instance form an equivalence class of
// which exactly one pattern must be realised, and patterns subsumed by
// stricter ones are merged so one TPG node can certify several BFEs.
package tpg

import (
	"fmt"
	"sort"
	"strings"

	"marchgen/fault"
	"marchgen/fsm"
)

// Node is one TPG node: a test pattern plus the labels of every BFE it
// certifies.
type Node struct {
	Pattern fsm.Pattern
	Covers  []string
}

// Graph is the weighted Test Pattern Graph.
type Graph struct {
	Nodes  []Node
	Weight [][]int
}

// New builds the TPG for a pattern set: Weight[a][b] implements f.4.1,
// the number of cells that must be rewritten between observing pattern a
// and initialising pattern b.
func New(nodes []Node) *Graph {
	g := &Graph{Nodes: nodes}
	n := len(nodes)
	g.Weight = make([][]int, n)
	for a := 0; a < n; a++ {
		g.Weight[a] = make([]int, n)
		obs := nodes[a].Pattern.ObserveState()
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			g.Weight[a][b] = obs.HammingTo(nodes[b].Pattern.Init)
		}
	}
	return g
}

// StartCost returns the number of March operations needed to initialise
// the memory for pattern b as the first node of a Global Test Sequence: a
// uniform "00"/"11" initialisation collapses to a single ⇕(w0)/⇕(w1)
// element (the paper's f.4.4 observation), a single constrained cell needs
// one write, opposite values need two, and an unconstrained pattern none.
func (g *Graph) StartCost(b int) int {
	init := g.Nodes[b].Pattern.Init
	switch {
	case !init.I.Known() && !init.J.Known():
		return 0
	case init.Uniform():
		return 1
	case init.I.Known() && init.J.Known():
		return 2
	default:
		return 1
	}
}

// NodeCost returns the number of operations pattern b itself contributes
// to the sequence (its excitation plus its observing read).
func (g *Graph) NodeCost(b int) int {
	return len(g.Nodes[b].Pattern.Excite) + 1
}

// String renders the weight matrix for diagnostics.
func (g *Graph) String() string {
	var sb strings.Builder
	for a := range g.Nodes {
		fmt.Fprintf(&sb, "%-28s", g.Nodes[a].Pattern)
		for b := range g.Nodes {
			if a == b {
				sb.WriteString("  -")
			} else {
				fmt.Fprintf(&sb, " %2d", g.Weight[a][b])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Class is one BFE equivalence class: exactly one of Options must be
// realised by the final test to certify the class.
type Class struct {
	Label   string
	Options []fsm.Pattern
}

// Classes expands fault instances into equivalence classes following the
// paper's Section 5: each disjunctive instance is one class whose options
// are its BFE patterns; each BFE of a conjunctive instance is its own
// single-option class.
func Classes(instances []fault.Instance) []Class {
	var out []Class
	for _, inst := range instances {
		if inst.Conjunctive {
			for _, b := range inst.BFEs {
				out = append(out, Class{
					Label:   inst.Name + "/" + b.Name,
					Options: []fsm.Pattern{b.Pattern},
				})
			}
			continue
		}
		c := Class{Label: inst.Name}
		for _, b := range inst.BFEs {
			c.Options = append(c.Options, b.Pattern)
		}
		out = append(out, c)
	}
	return out
}

// OpSig fingerprints a pattern's operation signature — the excitation
// sequence plus the observing read, ignoring initialisation. Subsumption
// requires equal operations (see Subsumes), so patterns with different
// signatures can never merge: every distinct signature among the chosen
// options of a selection forces at least one distinct node into the
// reduced TPG. The joint selection search builds its admissible
// lower bound on that guarantee.
func OpSig(p fsm.Pattern) string {
	var sb strings.Builder
	for _, in := range p.Excite {
		sb.WriteString(in.String())
		sb.WriteByte(';')
	}
	sb.WriteString(p.Observe.String())
	return sb.String()
}

// equalOps reports whether two patterns share excitation and observation.
func equalOps(a, b fsm.Pattern) bool {
	if len(a.Excite) != len(b.Excite) || a.Observe != b.Observe {
		return false
	}
	for k := range a.Excite {
		if a.Excite[k] != b.Excite[k] {
			return false
		}
	}
	return true
}

// Subsumes reports whether realising pattern a anywhere in a test also
// realises pattern b: identical excitation and observation, and a's
// initialisation state satisfies b's (every concrete requirement of b is
// met by a).
func Subsumes(a, b fsm.Pattern) bool {
	return equalOps(a, b) && a.Init.Matches(b.Init)
}

// Selection is a concrete choice of one option per class.
type Selection []int

// Reduce turns a class selection into the minimal TPG node set: duplicate
// and subsumed patterns are merged, so one node may certify several
// classes. Classes whose chosen option is subsumed by another selected
// pattern simply attach their label to the subsuming node.
func Reduce(classes []Class, sel Selection) []Node {
	type pick struct {
		label   string
		pattern fsm.Pattern
	}
	picks := make([]pick, len(classes))
	for k, c := range classes {
		picks[k] = pick{label: c.Label, pattern: c.Options[sel[k]]}
	}
	// Keep a pattern only if no *other* kept pattern strictly subsumes it.
	// Ties (mutual subsumption, i.e. identical patterns) keep the first.
	var nodes []Node
	for k, p := range picks {
		keep := true
		for k2, q := range picks {
			if k == k2 {
				continue
			}
			if Subsumes(q.pattern, p.pattern) {
				if Subsumes(p.pattern, q.pattern) && k < k2 {
					continue // identical; the first occurrence wins
				}
				keep = false
				break
			}
		}
		if keep {
			nodes = append(nodes, Node{Pattern: p.pattern, Covers: []string{p.label}})
		}
	}
	// Attach every class to the node that certifies it.
	for _, p := range picks {
		for k := range nodes {
			if Subsumes(nodes[k].Pattern, p.pattern) {
				already := false
				for _, l := range nodes[k].Covers {
					if l == p.label {
						already = true
						break
					}
				}
				if !already {
					nodes[k].Covers = append(nodes[k].Covers, p.label)
				}
				break
			}
		}
	}
	sort.Slice(nodes, func(a, b int) bool {
		return nodes[a].Pattern.String() < nodes[b].Pattern.String()
	})
	return nodes
}

// Selections enumerates option choices per class, but collapses the
// combinatorial space with the paper's Section 5 observation: a class with
// an option subsumed by some mandatory pattern (an option of a
// single-option class) is satisfied for free and is not enumerated. The
// remaining free classes are expanded exhaustively up to limit
// combinations; beyond the limit, only the first option of the overflow
// classes is used.
func Selections(classes []Class, limit int) []Selection {
	choices := Choices(classes)
	product := func() int {
		total := 1
		for k := range choices {
			total *= len(choices[k])
			if total > limit {
				return total // saturating: only the comparison matters
			}
		}
		return total
	}
	// Trim the widest classes until the product fits.
	for k := range choices {
		if product() <= limit {
			break
		}
		if len(choices[k]) > 1 {
			choices[k] = choices[k][:1]
		}
	}
	sels := []Selection{make(Selection, len(classes))}
	for k := range choices {
		var next []Selection
		for _, s := range sels {
			for _, o := range choices[k] {
				ns := append(Selection(nil), s...)
				ns[k] = o
				next = append(next, ns)
			}
		}
		sels = next
	}
	return sels
}

// Choices returns, per class, the option indices worth enumerating after
// the Section 5 collapse: single-option classes are pinned, and a class
// with an option subsumed by some mandatory pattern is satisfied for free
// by that option alone. The full selection space is the cartesian product
// of these lists in class order — the E = ∏|Cᵢ| figure before any
// enumeration limit trims it — which the joint selection search explores
// as a tree instead of a flat list.
func Choices(classes []Class) [][]int {
	mandatory := []fsm.Pattern{}
	for _, c := range classes {
		if len(c.Options) == 1 {
			mandatory = append(mandatory, c.Options[0])
		}
	}
	choices := make([][]int, len(classes))
	for k, c := range classes {
		if len(c.Options) == 1 {
			choices[k] = []int{0}
			continue
		}
		subsumed := -1
		for o, opt := range c.Options {
			for _, m := range mandatory {
				if Subsumes(m, opt) {
					subsumed = o
					break
				}
			}
			if subsumed >= 0 {
				break
			}
		}
		if subsumed >= 0 {
			choices[k] = []int{subsumed}
			continue
		}
		all := make([]int, len(c.Options))
		for o := range all {
			all[o] = o
		}
		choices[k] = all
	}
	return choices
}
