// Package gts turns an ordered visit of the Test Pattern Graph — a minimum
// length Global Test Sequence — into a March test, reproducing the three
// rewrite phases of the paper's Section 4: reordering (choosing where each
// pattern's operations land relative to the March-element structure),
// minimisation (never emitting an operation the partial test already
// provides), and March test generation (assigning ⇑/⇓/⇕ addressing orders,
// the paper's Rules 1–5).
//
// The implementation expresses the rewrite system as a small beam search
// over canonical March constructions. The canonical family — an optional
// uniform initialisation element followed by elements that lead with a
// read-and-verify of the previous element's closing value — is exactly the
// family the paper's colored-symbol rules produce: the leading read of each
// element is the "red" observation boundary, the trailing writes are the
// "blue" excitation boundary. Every candidate the assembler returns is
// subsequently validated against the real fault machines by the caller, so
// the rewrite layer cannot silently produce an unsound test.
package gts

import (
	"fmt"

	"marchgen/fsm"
	"marchgen/march"
)

// shapeKind classifies test patterns by the rewrite templates that can
// realise them.
type shapeKind uint8

const (
	// shapeSingle: excitation and observation on the same cell (stuck-at,
	// transition, write/read-destructive, incorrect-read faults, …).
	shapeSingle shapeKind = iota
	// shapePair: a write on the aggressor cell, observation on the other
	// cell (coupling faults and the write-side of address faults).
	shapePair
	// shapeRetention: excitation is the wait symbol T.
	shapeRetention
)

// shape is the normalised form of a test pattern used by the assembler.
type shape struct {
	kind shapeKind
	// excite is the exciting operation translated to a March op (reads
	// carry their expected value). Unset when the pattern is observation-
	// only (hasExcite false).
	excite    march.Op
	hasExcite bool
	// a is the value the excited cell must hold immediately before the
	// excitation (X if unconstrained).
	a march.Bit
	// b is the value the observed cell must hold (and the value the
	// observing read expects).
	b march.Bit
	// aggLow is meaningful for shapePair: true when the aggressor is
	// cell i (the lower address).
	aggLow bool
	// cond constrains the non-excited cell of a single-cell pattern (X
	// when free); condLow says the constrained cell is cell i. Such
	// "conditioned" single-cell faults need the same order discipline as
	// pair faults: the condition cell must hold cond when the excitation
	// runs.
	cond    march.Bit
	condLow bool
	// pattern is the original test pattern.
	pattern fsm.Pattern
}

// normalise classifies a pattern, rejecting shapes the rewrite templates
// cannot realise (such patterns only occur as discarded alternatives of
// equivalence classes; the caller then tries another class selection).
func normalise(p fsm.Pattern) (shape, error) {
	s := shape{pattern: p}
	obs := p.GoodObservation()
	if !obs.Known() {
		return s, fmt.Errorf("gts: pattern %s observes an unknown value", p)
	}
	s.b = obs
	switch len(p.Excite) {
	case 0:
		// Observation-only: realisable when no other cell is constrained;
		// a constrained second cell would need a mid-element mixed state.
		other := p.Observe.Cell.Other()
		if p.Init.Get(other).Known() {
			return s, fmt.Errorf("gts: observation-only pattern %s constrains both cells", p)
		}
		s.kind = shapeSingle
		s.a = p.Init.Get(p.Observe.Cell)
		return s, nil
	case 1:
		e := p.Excite[0]
		if e.IsWait() {
			s.kind = shapeRetention
			s.a = p.Init.Get(p.Observe.Cell)
			if !s.a.Known() {
				return s, fmt.Errorf("gts: retention pattern %s needs a concrete initial value", p)
			}
			return s, nil
		}
		s.hasExcite = true
		s.a = p.Init.Get(e.Cell)
		if e.IsRead() {
			exp := s.a
			if !exp.Known() {
				return s, fmt.Errorf("gts: read excitation of %s needs a concrete value", p)
			}
			s.excite = march.Op{Kind: march.Read, Data: exp}
		} else {
			s.excite = march.Op{Kind: march.Write, Data: e.Data}
		}
		if e.Cell == p.Observe.Cell {
			s.kind = shapeSingle
			other := e.Cell.Other()
			s.cond = p.Init.Get(other)
			s.condLow = other == fsm.CellI
			return s, nil
		}
		s.kind = shapePair
		s.aggLow = e.Cell == fsm.CellI
		return s, nil
	default:
		return s, fmt.Errorf("gts: pattern %s has a multi-operation excitation", p)
	}
}
