package gts

import (
	"testing"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/sim"
	"marchgen/march"
)

// patternsOf flattens the first-BFE patterns of a fault list in instance
// order.
func patternsOf(t *testing.T, list string) ([]fsm.Pattern, []fault.Instance) {
	t.Helper()
	models, err := fault.ParseList(list)
	if err != nil {
		t.Fatal(err)
	}
	insts := fault.Instances(models)
	var pats []fsm.Pattern
	for _, inst := range insts {
		pats = append(pats, inst.BFEs[0].Pattern)
	}
	return pats, insts
}

// bestValid assembles the patterns and returns the cheapest candidate that
// fully covers the instances, or nil.
func bestValid(t *testing.T, pats []fsm.Pattern, insts []fault.Instance) *march.Test {
	t.Helper()
	cands, err := Assemble(pats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var best *march.Test
	for _, c := range cands {
		cov, err := sim.Evaluate(c, insts)
		if err != nil || !cov.Complete() {
			continue
		}
		if best == nil || c.Complexity() < best.Complexity() {
			best = c
		}
	}
	return best
}

func TestAssembleSAF(t *testing.T) {
	pats, insts := patternsOf(t, "SAF")
	best := bestValid(t, pats, insts)
	if best == nil {
		t.Fatal("no valid candidate for SAF")
	}
	if got := best.Complexity(); got != 4 {
		t.Errorf("SAF assembly: %s (%dn), want 4n", best, got)
	}
}

func TestAssembleSAFTF(t *testing.T) {
	// TF patterns subsume the SAF ones; feeding TF alone suffices for both
	// models (the pipeline's subsumption pass arranges this).
	pats, _ := patternsOf(t, "TF")
	_, insts := patternsOf(t, "SAF,TF")
	best := bestValid(t, pats, insts)
	if best == nil {
		t.Fatal("no valid candidate for SAF+TF")
	}
	if got := best.Complexity(); got != 5 {
		t.Errorf("SAF+TF assembly: %s (%dn), want 5n", best, got)
	}
}

// TestAssembleSection4Example reproduces the paper's Section 4 worked
// example: the fault list {⟨↑;1⟩, ⟨↑;0⟩} yields an 8n non-redundant March
// test.
func TestAssembleSection4Example(t *testing.T) {
	pats, insts := patternsOf(t, "CFid<u,1>,CFid<u,0>")
	// Order the four patterns along the optimal TPG path (TP4, TP1 chain
	// with weight 0; TP3, TP2 chain with weight 0).
	ordered := []fsm.Pattern{pats[1], pats[2], pats[0], pats[3]}
	best := bestValid(t, ordered, insts)
	if best == nil {
		t.Fatal("no valid candidate for the Section 4 example")
	}
	if got := best.Complexity(); got != 8 {
		t.Errorf("Section 4 example: %s (%dn), want 8n", best, got)
	}
}

func TestNormaliseShapes(t *testing.T) {
	// Single-cell write pattern.
	p := fsm.NewPattern(fsm.S(march.Zero, march.X), []fsm.Input{fsm.Wr(fsm.CellI, march.One)}, fsm.Rd(fsm.CellI))
	s, err := normalise(p)
	if err != nil || s.kind != shapeSingle || !s.hasExcite || s.a != march.Zero || s.b != march.One {
		t.Errorf("single shape: %+v, %v", s, err)
	}
	// Pair pattern.
	p = fsm.NewPattern(fsm.S(march.Zero, march.One), []fsm.Input{fsm.Wr(fsm.CellI, march.One)}, fsm.Rd(fsm.CellJ))
	s, err = normalise(p)
	if err != nil || s.kind != shapePair || !s.aggLow || s.b != march.One {
		t.Errorf("pair shape: %+v, %v", s, err)
	}
	// Retention pattern.
	p = fsm.NewPattern(fsm.S(march.One, march.X), []fsm.Input{fsm.Wait}, fsm.Rd(fsm.CellI))
	s, err = normalise(p)
	if err != nil || s.kind != shapeRetention || s.a != march.One {
		t.Errorf("retention shape: %+v, %v", s, err)
	}
	// Observation-only pattern.
	p = fsm.NewPattern(fsm.S(march.Zero, march.X), nil, fsm.Rd(fsm.CellI))
	s, err = normalise(p)
	if err != nil || s.kind != shapeSingle || s.hasExcite {
		t.Errorf("observation-only shape: %+v, %v", s, err)
	}
	// Mixed-state observation-only patterns are rejected.
	p = fsm.NewPattern(fsm.S(march.Zero, march.One), nil, fsm.Rd(fsm.CellI))
	if _, err = normalise(p); err == nil {
		t.Error("mixed observation-only pattern must be rejected")
	}
}

func TestCoveredOracle(t *testing.T) {
	// MATS++ covers the up-transition fault pattern...
	o := newOracle()
	matspp, _ := march.Known("MATS++")
	tfUp := fsm.NewPattern(fsm.S(march.Zero, march.X), []fsm.Input{fsm.Wr(fsm.CellI, march.One)}, fsm.Rd(fsm.CellI))
	if !o.covered(matspp.Test, tfUp) {
		t.Error("MATS++ must cover the TF<u> pattern")
	}
	// The verdict is memoised.
	if !o.covered(matspp.Test, tfUp) {
		t.Error("memoised verdict changed")
	}
	// ...and MATS+ does not cover the down-transition one.
	matsp, _ := march.Known("MATS+")
	tfDown := fsm.NewPattern(fsm.S(march.One, march.X), []fsm.Input{fsm.Wr(fsm.CellI, march.Zero)}, fsm.Rd(fsm.CellI))
	if o.covered(matsp.Test, tfDown) {
		t.Error("MATS+ must not cover the TF<d> pattern")
	}
	if o.covered(nil, tfDown) || o.covered(&march.Test{}, tfDown) {
		t.Error("empty tests cover nothing")
	}
}

func TestAssembleRejectsUnsupported(t *testing.T) {
	// A pattern with a two-operation excitation is outside the template
	// grammar.
	p := fsm.Pattern{
		Init:    fsm.S(march.Zero, march.Zero),
		Excite:  []fsm.Input{fsm.Wr(fsm.CellI, march.One), fsm.Wr(fsm.CellJ, march.One)},
		Observe: fsm.Rd(fsm.CellJ),
	}
	if _, err := Assemble([]fsm.Pattern{p}, DefaultOptions()); err == nil {
		t.Error("multi-op excitation must be rejected")
	}
}

func TestAssembleRetention(t *testing.T) {
	pats, insts := patternsOf(t, "DRF")
	best := bestValid(t, pats, insts)
	if best == nil {
		t.Fatal("no valid candidate for DRF")
	}
	if best.Delays() < 2 {
		t.Errorf("DRF test needs two delay elements: %s", best)
	}
	if got := best.Complexity(); got > 5 {
		t.Errorf("DRF assembly too long: %s (%dn)", best, got)
	}
}

func TestStatePrimitives(t *testing.T) {
	st := &state{pre: march.X, end: march.X}
	if st.open(march.Up) {
		t.Error("open must fail on unknown memory")
	}
	if st.appendOp(march.R0) {
		t.Error("leading read append must fail on empty state")
	}
	if !st.appendOp(march.W1) || st.end != march.One {
		t.Error("write append must succeed and set end")
	}
	if !st.open(march.Down) || !st.leadRead || st.pre != march.One {
		t.Error("open after write must lead with r1")
	}
	if !st.forceDir(march.Down) {
		t.Error("forcing the same direction must succeed")
	}
	if st.forceDir(march.Up) {
		t.Error("conflicting direction must fail")
	}
	c := st.clone()
	c.elems[0].Ops[0] = march.W0
	if st.elems[0].Ops[0] != march.W1 {
		t.Error("clone must deep-copy")
	}
}
