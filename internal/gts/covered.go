package gts

import (
	"marchgen/fsm"
	"marchgen/internal/sim"
	"marchgen/march"
)

// syntheticMachine builds the canonical faulty machine whose single Basic
// Fault Effect is exactly the given test pattern: triggered in the
// pattern's initialisation state by its excitation, it corrupts the
// observed cell (or, for observation-only patterns, lies on the observing
// read). A test realises the pattern if and only if it detects this
// machine.
func syntheticMachine(p fsm.Pattern) fsm.Machine {
	flip := p.GoodObservation().Not()
	if len(p.Excite) == 0 {
		return fsm.WithDeviations("synthetic "+p.String(),
			fsm.OutputDev(p.Init, p.Observe, flip))
	}
	next := fsm.Unknown.With(p.Observe.Cell, flip)
	return fsm.WithDeviations("synthetic "+p.String(),
		fsm.TransitionDev(p.Init, p.Excite[0], next))
}

// oracle memoises coverage checks: identical (partial test, pattern)
// queries recur heavily across beam branches.
type oracle struct {
	machines map[string]fsm.Machine
	verdict  map[string]bool
}

func newOracle() *oracle {
	return &oracle{machines: map[string]fsm.Machine{}, verdict: map[string]bool{}}
}

// covered reports whether the (possibly partial) March test already
// realises the pattern, checking the all-ascending and all-descending
// resolutions of its ⇕ elements. The full resolution enumeration is left
// to the caller's final validation; this fast check drives the
// minimisation phase (no operation is emitted for an already-realised
// pattern).
func (o *oracle) covered(t *march.Test, p fsm.Pattern) bool {
	if t == nil || len(t.Elements) == 0 {
		return false
	}
	pKey := p.String()
	key := t.String() + "#" + pKey
	if v, ok := o.verdict[key]; ok {
		return v
	}
	m, ok := o.machines[pKey]
	if !ok {
		m = syntheticMachine(p)
		o.machines[pKey] = m
	}
	v := coveredBy(t, m)
	o.verdict[key] = v
	return v
}

func coveredBy(t *march.Test, m fsm.Machine) bool {
	for _, dir := range []march.Order{march.Up, march.Down} {
		res := make([]march.Order, len(t.Elements))
		for k, e := range t.Elements {
			res[k] = e.Order
			if e.Order == march.Any {
				res[k] = dir
			}
		}
		trace, _ := sim.Trace(t, res)
		if !fsm.Detects(m, trace) {
			return false
		}
	}
	return true
}
