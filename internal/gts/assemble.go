package gts

import (
	"fmt"
	"sort"

	"marchgen/fsm"
	"marchgen/internal/budget"
	"marchgen/march"
)

// Options tunes the assembler.
type Options struct {
	// BeamWidth bounds the number of partial constructions kept per step.
	BeamWidth int
	// MaxCandidates bounds the number of finished tests returned.
	MaxCandidates int
}

// DefaultOptions returns the assembler defaults.
func DefaultOptions() Options { return Options{BeamWidth: 48, MaxCandidates: 12} }

// state is a partial March construction: a list of elements of which the
// last one is still open for appends, plus the uniform memory value before
// (pre) and after (end) the open element's operations.
type state struct {
	elems    []march.Element
	pre, end march.Bit
	leadRead bool // the open element starts with a read-and-verify
	needRead bool // excitations are pending a future leading read
	// locked marks an open element whose closing value is load-bearing (a
	// case-(ii) pair realisation): further appends must first open a new
	// element instead of growing it.
	locked bool
	cost   int
}

func (st *state) clone() *state {
	c := *st
	c.elems = make([]march.Element, len(st.elems))
	for k, e := range st.elems {
		c.elems[k] = march.Element{Order: e.Order, Delay: e.Delay, Ops: append([]march.Op(nil), e.Ops...)}
	}
	return &c
}

// key is the beam deduplication signature: a fixed-width binary packing
// of the construction. Each element contributes a header byte with the
// high bit set (order and delay in the low bits) followed by one byte per
// op (kind and data in the low bits, high bit clear, so headers
// self-delimit); a trailing 0xFF marks a pending observation. This packs
// the same information as the former element-String concatenation at a
// fraction of the bytes and without the formatter in the beam's hot loop.
func (st *state) key() string {
	n := 1 + len(st.elems)
	for _, e := range st.elems {
		n += len(e.Ops)
	}
	buf := make([]byte, 0, n)
	for _, e := range st.elems {
		h := byte(0x80) | byte(e.Order)<<1
		if e.Delay {
			h |= 1
		}
		buf = append(buf, h)
		for _, op := range e.Ops {
			buf = append(buf, byte(op.Kind)<<2|byte(op.Data))
		}
	}
	if st.needRead {
		buf = append(buf, 0xFF)
	}
	return string(buf)
}

// closed finalises the construction: pending excitations get their
// observing read as a trailing ⇕(r) element.
func (st *state) closed() *march.Test {
	c := st.clone()
	if c.needRead && c.end.Known() {
		c.elems = append(c.elems, march.Elem(march.Any, march.Op{Kind: march.Read, Data: c.end}))
	}
	return &march.Test{Elements: c.elems}
}

// appendOp appends an operation to the open element (creating the initial
// element when none exists, and opening a fresh element when the current
// one is locked). Read appends require the chain value to match.
func (st *state) appendOp(op march.Op) bool {
	if st.locked && !st.open(march.Any) {
		return false
	}
	if op.IsRead() && st.end != op.Data {
		return false
	}
	if len(st.elems) == 0 {
		if op.IsRead() {
			return false
		}
		st.elems = append(st.elems, march.Elem(march.Any))
		st.pre, st.end, st.leadRead = march.X, march.X, false
	}
	last := &st.elems[len(st.elems)-1]
	if last.Delay {
		return false
	}
	last.Ops = append(last.Ops, op)
	if op.IsWrite() {
		st.end = op.Data
	}
	st.cost++
	return true
}

// drive makes the open element's chain value equal v (appending a write if
// needed). It reports failure only when v is unknown.
func (st *state) drive(v march.Bit) bool {
	if !v.Known() || st.end == v {
		return true
	}
	return st.appendOp(march.Op{Kind: march.Write, Data: v})
}

// open closes the current element and starts a new one leading with a
// read-and-verify of the memory's uniform value, which observes every
// pending excitation.
func (st *state) open(dir march.Order) bool {
	if !st.end.Known() || len(st.elems) == 0 {
		return false
	}
	st.elems = append(st.elems, march.Elem(dir, march.Op{Kind: march.Read, Data: st.end}))
	st.pre = st.end
	st.leadRead = true
	st.needRead = false
	st.locked = false
	st.cost++
	return true
}

// forceDir constrains the open element's addressing order, failing on
// conflict.
func (st *state) forceDir(dir march.Order) bool {
	if len(st.elems) == 0 {
		return false
	}
	last := &st.elems[len(st.elems)-1]
	if last.Order == march.Any {
		last.Order = dir
		return true
	}
	return last.Order == dir
}

// delay closes the current element with a Del element (the wait symbol T).
func (st *state) delay() bool {
	if len(st.elems) == 0 || !st.end.Known() {
		return false
	}
	st.elems = append(st.elems, march.DelayElement())
	return true
}

// Assemble converts the ordered test patterns of an optimal TPG visit into
// candidate March tests, cheapest first. Every returned test realises all
// patterns structurally; the caller must still validate fault coverage
// against the real fault machines.
func Assemble(patterns []fsm.Pattern, opts Options) ([]*march.Test, error) {
	return AssembleMeter(nil, patterns, opts)
}

// AssembleMeter is Assemble under a budget meter: the beam aborts with a
// typed error when the caller's context is canceled (nil meter: unbounded).
func AssembleMeter(mt *budget.Meter, patterns []fsm.Pattern, opts Options) ([]*march.Test, error) {
	if opts.BeamWidth <= 0 {
		opts = DefaultOptions()
	}
	shapes := make([]shape, len(patterns))
	for k, p := range patterns {
		s, err := normalise(p)
		if err != nil {
			return nil, err
		}
		shapes[k] = s
	}
	beam := []*state{{pre: march.X, end: march.X}}
	oracle := newOracle()
	for _, s := range shapes {
		if err := mt.CheckNow(); err != nil {
			return nil, err
		}
		var next []*state
		for _, st := range beam {
			if err := mt.Check(); err != nil {
				return nil, err
			}
			next = append(next, expand(st, s, oracle)...)
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("gts: no construction realises pattern %s", s.pattern)
		}
		beam = prune(next, opts.BeamWidth)
	}
	var out []*march.Test
	seen := map[string]bool{}
	for _, st := range beam {
		t := st.closed()
		sig := t.String()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, t)
		if len(out) >= opts.MaxCandidates {
			break
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("gts: assembly produced no candidates")
	}
	return out, nil
}

// prune sorts by cost (ties: fewer elements) and deduplicates.
func prune(states []*state, width int) []*state {
	sort.SliceStable(states, func(a, b int) bool {
		if states[a].cost != states[b].cost {
			return states[a].cost < states[b].cost
		}
		return len(states[a].elems) < len(states[b].elems)
	})
	seen := map[string]bool{}
	var out []*state
	for _, st := range states {
		k := st.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, st)
		if len(out) >= width {
			break
		}
	}
	return out
}

// expand applies every rewrite template of the shape to the state.
func expand(st *state, s shape, oracle *oracle) []*state {
	var out []*state
	emit := func(c *state, ok bool) {
		if ok {
			out = append(out, c)
		}
	}
	// Minimisation: skip patterns the partial construction already covers.
	if len(st.elems) > 0 && oracle.covered(st.closed(), s.pattern) {
		emit(st.clone(), true)
	} else if len(st.elems) > 0 && st.end.Known() {
		// Virtual skip: the pattern's excitation is already present and
		// only awaits a future leading read. Locking the element keeps
		// later appends from overwriting the corruption before it is
		// observed.
		virt := st.clone()
		virt.needRead = true
		if oracle.covered(virt.closed(), s.pattern) {
			virt.locked = true
			emit(virt, true)
		}
	}
	switch s.kind {
	case shapeSingle:
		if s.hasExcite && s.cond.Known() {
			// Conditioned single-cell fault: the non-excited cell must
			// hold cond at excitation time, so the element needs the same
			// order discipline as a pair fault. Within an element the
			// condition cell is untouched (= pre) when it is walked after
			// the excited cell, or holds the closing value when walked
			// before it.
			dirWithin, dirAcross := march.Up, march.Down
			if s.condLow {
				dirWithin, dirAcross = march.Down, march.Up
			}
			// Case (i), new element with immediate trailing read.
			c := st.clone()
			emit(c, c.drive(s.cond) && c.open(dirWithin) && c.drive(s.a) &&
				c.appendOp(s.excite) && c.appendOp(march.Op{Kind: march.Read, Data: s.b}))
			// Case (i), new element, observation deferred (the element is
			// locked so the corruption survives to the next leading read —
			// which walks the corrupted cell before re-writing it).
			c = st.clone()
			emit(c, c.drive(s.cond) && c.open(dirWithin) && c.drive(s.a) &&
				c.appendOp(s.excite) &&
				func() bool { c.needRead, c.locked = true, true; return true }())
			// Case (i), extension of a compatible element.
			c = st.clone()
			emit(c, !c.locked && c.leadRead && c.pre == s.cond && (s.a == march.X || c.end == s.a) &&
				c.forceDir(dirWithin) && c.appendOp(s.excite) &&
				c.appendOp(march.Op{Kind: march.Read, Data: s.b}))
			// Case (ii): the condition cell is walked first and holds the
			// element's closing value; needs a write excitation equal to
			// cond and a later leading read.
			if s.excite.IsWrite() && s.excite.Data == s.cond {
				c = st.clone()
				emit(c, !c.locked && c.forceDir(dirAcross) && c.drive(s.a) && c.appendOp(s.excite) &&
					func() bool { c.needRead, c.locked = true, true; return true }())
				c = st.clone()
				emit(c, c.end.Known() && c.open(dirAcross) && c.drive(s.a) && c.appendOp(s.excite) &&
					func() bool { c.needRead, c.locked = true, true; return true }())
			}
			break
		}
		if s.hasExcite {
			// Same-element excitation, observation deferred to the next
			// leading read. The element is locked: a later write would
			// overwrite the pending corruption before it is observed.
			c := st.clone()
			emit(c, c.drive(s.a) && c.appendOp(s.excite) &&
				func() bool { c.needRead, c.locked = true, true; return true }())
			// Same-element excitation with an immediate trailing read.
			c = st.clone()
			emit(c, c.drive(s.a) && c.appendOp(s.excite) &&
				c.appendOp(march.Op{Kind: march.Read, Data: s.b}))
			// Non-transition write excitations (write destructive faults)
			// need the pre-value established by a genuine transition, or
			// the establishing write is itself the excitation and the
			// "exciting" one repairs the corruption.
			if s.excite.IsWrite() && s.excite.Data == s.a {
				c = st.clone()
				emit(c, c.appendOp(march.Op{Kind: march.Write, Data: s.a.Not()}) &&
					c.appendOp(march.Op{Kind: march.Write, Data: s.a}) &&
					c.appendOp(s.excite) &&
					c.appendOp(march.Op{Kind: march.Read, Data: s.b}))
				c = st.clone()
				emit(c, c.appendOp(march.Op{Kind: march.Write, Data: s.a.Not()}) &&
					c.appendOp(march.Op{Kind: march.Write, Data: s.a}) &&
					c.appendOp(s.excite) &&
					func() bool { c.needRead, c.locked = true, true; return true }())
			}
			// Fresh element (its leading read observes prior pending
			// excitations first).
			c = st.clone()
			emit(c, c.end.Known() && c.open(march.Any) && c.drive(s.a) &&
				c.appendOp(s.excite) &&
				func() bool { c.needRead, c.locked = true, true; return true }())
		} else {
			// Observation-only: a read of the cell while it holds a.
			c := st.clone()
			emit(c, c.drive(s.a) && c.appendOp(march.Op{Kind: march.Read, Data: s.b}))
			c = st.clone()
			emit(c, c.drive(s.a) && c.end == s.b && c.open(march.Any))
		}
	case shapePair:
		e := s.excite.Data
		dirWithin, dirAcross := march.Down, march.Up
		if s.aggLow {
			dirWithin, dirAcross = march.Up, march.Down
		}
		// Case (i), new element: ⇑/⇓(r_b, [w_a,] w_e) — the victim is
		// processed after the aggressor and still holds the element's
		// pre-value b; the element's own leading read observes.
		c := st.clone()
		emit(c, c.drive(s.b) && c.open(dirWithin) && c.drive(s.a) && c.appendOp(s.excite))
		// Case (i), extension of the current element.
		c = st.clone()
		emit(c, !c.locked && c.leadRead && c.pre == s.b && (s.a == march.X || c.end == s.a) &&
			c.forceDir(dirWithin) && c.appendOp(s.excite))
		// Case (ii): the victim is processed before the aggressor and
		// already holds the element's closing value; requires a write
		// excitation with b == e and a later leading read. (Read-coupling
		// excitations only realise through case (i): the read leaves the
		// chain value unchanged, so the element close value equals the
		// chain, not a victim-specific value.)
		if s.excite.IsWrite() && s.b == e {
			c = st.clone()
			emit(c, !c.locked && c.forceDir(dirAcross) && c.drive(s.a) && c.appendOp(s.excite) &&
				func() bool { c.needRead, c.locked = true, true; return true }())
			c = st.clone()
			emit(c, c.end.Known() && c.open(dirAcross) && c.drive(s.a) && c.appendOp(s.excite) &&
				func() bool { c.needRead, c.locked = true, true; return true }())
		}
	case shapeRetention:
		c := st.clone()
		emit(c, c.drive(s.a) && c.delay() && c.open(march.Any))
	}
	return out
}
