// Replica-set wiring: the serve-layer face of internal/cluster.
//
// With Config.Peers set, a Server becomes one replica of a set. Three
// mechanisms turn N replicas into one warm engine, all optional-path —
// every peer failure degrades to exactly the single-node behaviour:
//
//   - forward-or-serve: /v1/generate requests are routed to the replica
//     that owns the request's memo content-hash key on the consistent
//     hash ring, so identical requests land on one replica's coalescer
//     and memo cache no matter which replica the client picked. An
//     unreachable owner means the receiving replica serves locally.
//   - the peer memo tier: the shared memo cache's second level becomes
//     local-store-then-peers (cluster.PeerTier), and two internal
//     endpoints expose/accept raw entry bytes. GETs answer strictly
//     from local holdings (store, then in-memory caches) — never from
//     the peer tier, which is what makes peer fetches recursion-free.
//   - the distributed sweep: eligible generate runs offer their §5
//     selection sweep to a core.SweepDistributor that ships contiguous
//     index shards to the replicas over /v1/internal/sweep and merges
//     the outcomes byte-identically (the argument lives in
//     internal/core/shard.go). A dead replica's shard reruns locally.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"marchgen"
	"marchgen/fault"
	"marchgen/internal/cluster"
	"marchgen/internal/core"
	"marchgen/internal/jobs"
	"marchgen/internal/memo"
	"marchgen/internal/obs"
	"marchgen/internal/simd"
)

// ShardRequest is the body of POST /v1/internal/sweep: one contiguous
// shard [Lo,Hi) of the §5 selection sweep for the given fault list.
// The executing replica re-derives classes and selections from the
// fault list, so the payload names the problem, not the data — both
// sides agree on the index space because the enumeration is a pure
// function of (faults, selection_limit).
type ShardRequest struct {
	// Faults is the comma-separated fault list, as on GenerateRequest.
	Faults string `json:"faults"`
	// SelectionLimit caps the selection enumeration (0: engine default).
	SelectionLimit int `json:"selection_limit,omitempty"`
	// Lo and Hi bound the shard's selection index range [Lo,Hi).
	Lo int `json:"lo"`
	// Hi is the end of the range; see Lo.
	Hi int `json:"hi"`
}

// initCluster wires the replica set into a new Server: the peer client,
// the peer memo tier under the shared cache (layered over the durable
// store tier when one is configured) and the peer tier under the
// kernel's LUT cache.
func (s *Server) initCluster() {
	others := 0
	for _, p := range s.cfg.Peers {
		if p != "" && p != s.cfg.Self {
			others++
		}
	}
	if others == 0 {
		return
	}
	cl := cluster.New(cluster.Config{Self: s.cfg.Self, Peers: s.cfg.Peers, Obs: s.run})
	s.cluster = cl
	var local memo.DiskTier
	if s.store != nil {
		local = jobs.MemoTier(s.store)
	}
	memo.Shared().AttachDisk(cluster.NewPeerTier(local, cl), core.Codec())
	simd.AttachLUTTier(cluster.NewPeerTier(nil, cl))
}

// validMemoKey guards the internal memo endpoints' path parameter:
// memo keys are hex SHA-256 fingerprints, exactly 64 lowercase hex
// characters — anything else is rejected before it reaches a store.
func validMemoKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleMemoGet serves GET /v1/internal/memo/{key}: the raw encoded
// bytes of a locally-held memo entry — durable store first, then the
// in-memory result/fragment cache, then the kernel LUT cache. Strictly
// local: the peer tier is never consulted, so peers probing each other
// cannot recurse.
func (s *Server) handleMemoGet(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeErrorNoReq(w, http.StatusServiceUnavailable, "cluster_disabled", "this server is not part of a replica set")
		return
	}
	key := r.PathValue("key")
	if !validMemoKey(key) {
		writeErrorNoReq(w, http.StatusBadRequest, "bad_request", "malformed memo key")
		return
	}
	data, ok := s.localMemoBytes(key)
	if !ok {
		s.run.Counter("serve.cluster.memo_get.misses").Inc()
		writeErrorNoReq(w, http.StatusNotFound, "not_found", "no local entry under that key")
		return
	}
	s.run.Counter("serve.cluster.memo_get.hits").Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// localMemoBytes looks a memo key up in this replica's own holdings.
func (s *Server) localMemoBytes(key string) ([]byte, bool) {
	if s.store != nil {
		if data, ok := jobs.MemoTier(s.store).Get(key); ok {
			return data, true
		}
	}
	if v, ok := memo.Shared().Peek(key); ok {
		if data, ok := core.Codec().Encode(v); ok {
			return data, true
		}
	}
	return simd.PeekEncoded(key)
}

// handleMemoPut serves POST /v1/internal/memo/{key}: a peer offering
// entry bytes for adoption (the replication leg of the peer tier).
// Recognised engine entries are adopted into the in-memory cache and,
// when a store is configured, persisted; LUT entries are adopted into
// the kernel cache. Unrecognised bytes are rejected — a replica never
// stores what it cannot decode.
func (s *Server) handleMemoPut(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeErrorNoReq(w, http.StatusServiceUnavailable, "cluster_disabled", "this server is not part of a replica set")
		return
	}
	key := r.PathValue("key")
	if !validMemoKey(key) {
		writeErrorNoReq(w, http.StatusBadRequest, "bad_request", "malformed memo key")
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes*4))
	if err != nil || len(data) == 0 {
		writeErrorNoReq(w, http.StatusBadRequest, "bad_request", "unreadable entry body")
		return
	}
	switch {
	case s.adoptEngineEntry(key, data):
	case simd.AdoptEncoded(key, data):
	default:
		writeErrorNoReq(w, http.StatusBadRequest, "bad_request", "unrecognised entry encoding")
		return
	}
	s.run.Counter("serve.cluster.memo_put.adopted").Inc()
	w.WriteHeader(http.StatusNoContent)
}

// adoptEngineEntry decodes and adopts one engine memo entry (result,
// tour, tpgcost or verdict kind), persisting the original bytes when a
// durable store is configured.
func (s *Server) adoptEngineEntry(key string, data []byte) bool {
	v, ok := core.Codec().Decode(data)
	if !ok {
		return false
	}
	memo.Shared().Adopt(key, v)
	if s.store != nil {
		jobs.MemoTier(s.store).Put(key, data)
	}
	return true
}

// handleSweepShard serves POST /v1/internal/sweep: execute one shard of
// a coordinator's §5 selection sweep in this process. The shard takes a
// regular engine permit, so shard work and direct requests share the
// same concurrency bound.
func (s *Server) handleSweepShard(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeErrorNoReq(w, http.StatusServiceUnavailable, "cluster_disabled", "this server is not part of a replica set")
		return
	}
	if s.draining.Load() {
		s.shed(w, "server is draining")
		return
	}
	var req ShardRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	models, err := fault.ParseList(req.Faults)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	s.wg.Add(1)
	defer s.wg.Done()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()
	ctx = obs.Into(ctx, s.run)
	// Shards take a shardSem permit, not an engine permit: the
	// coordinating replica already holds an engine permit for the whole
	// logical request, and a shared pool would let two concurrent
	// coordinators deadlock on each other (see Server.shardSem).
	select {
	case s.shardSem <- struct{}{}:
	case <-ctx.Done():
		status, code := httpStatus(mapCtxErr(ctx.Err()))
		writeError(w, r, status, code, "shard expired while queued: "+ctx.Err().Error())
		return
	}
	defer func() { <-s.shardSem }()
	out, err := core.RunShardModels(ctx, models, s.shardOptions(req.SelectionLimit), core.SweepShard{Lo: req.Lo, Hi: req.Hi})
	if err != nil {
		status, code := httpStatus(err)
		s.run.Counter("serve.cluster.shard_errors." + code).Inc()
		writeError(w, r, status, code, err.Error())
		return
	}
	s.run.Counter("serve.cluster.shards_served").Inc()
	writeJSON(w, http.StatusOK, out)
}

// shardOptions builds the engine options a shard executes under. They
// must agree with the coordinator's on everything that shapes the
// selection enumeration and the per-selection results — which is the
// engine defaults plus the request's selection limit; workers and cache
// are free local choices (results are invariant to both).
func (s *Server) shardOptions(selectionLimit int) core.Options {
	opts := core.DefaultOptions()
	if selectionLimit > 0 {
		opts.SelectionLimit = selectionLimit
	}
	opts.Workers = s.cfg.Workers
	opts.Cache = memo.Shared()
	return opts
}

// sweepDistributor implements core.SweepDistributor over the replica
// set: one contiguous shard per replica (coordinator included), remote
// shards over /v1/internal/sweep with in-process fallback when a
// replica is unreachable — the property that lets a sweep survive a
// replica kill.
type sweepDistributor struct {
	s              *Server
	faults         string
	selectionLimit int
	assign         map[core.SweepShard]string
}

// distributorFor returns the sweep distributor for a generate request,
// or nil when the request is not distribution-eligible at the serve
// layer: no replica set, heuristic solve, a budget in play, or a solver
// mode other than warm (the mode whose shard merge is proven
// byte-identical). The engine re-checks its own eligibility (exact,
// unlimited, untruncated) before accepting the offer.
func (s *Server) distributorFor(req *GenerateRequest, mode, budgetSpec string) core.SweepDistributor {
	if mode == "" {
		mode = marchgen.SolverWarm // the engine default: eligible
	}
	if s.cluster == nil || req.Heuristic || budgetSpec != "" || mode != marchgen.SolverWarm {
		return nil
	}
	return &sweepDistributor{s: s, faults: req.Faults, selectionLimit: req.SelectionLimit}
}

// Shards partitions [0,total) evenly across the replica set, one shard
// per member in sorted-address order. Declines sweeps too small to be
// worth a round trip (fewer than two selections per replica).
func (d *sweepDistributor) Shards(total int) []core.SweepShard {
	members := d.s.cluster.Members()
	n := len(members)
	if n < 2 || total < 2*n {
		return nil
	}
	d.assign = make(map[core.SweepShard]string, n)
	shards := make([]core.SweepShard, 0, n)
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + (total-lo)/(n-i)
		sh := core.SweepShard{Lo: lo, Hi: hi}
		shards = append(shards, sh)
		d.assign[sh] = members[i]
		lo = hi
	}
	return shards
}

// RunShard executes one shard: remotely on its assigned replica, or
// in-process when the shard is the coordinator's own or its replica
// cannot be reached.
func (d *sweepDistributor) RunShard(ctx context.Context, models []fault.Model, opts core.Options, sh core.SweepShard) (*core.ShardOutcome, error) {
	addr := d.assign[sh]
	if addr != "" && addr != d.s.cluster.Self() {
		out, err := d.s.remoteShard(ctx, addr, ShardRequest{
			Faults:         d.faults,
			SelectionLimit: d.selectionLimit,
			Lo:             sh.Lo,
			Hi:             sh.Hi,
		})
		if err == nil {
			return out, nil
		}
		d.s.run.Counter("serve.cluster.shard_fallback_local").Inc()
	}
	return core.RunShardModels(ctx, models, opts, sh)
}

// remoteShard ships one shard to a replica and decodes its outcome.
func (s *Server) remoteShard(ctx context.Context, addr string, sr ShardRequest) (*core.ShardOutcome, error) {
	body, err := json.Marshal(sr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+cluster.SweepPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.peerClient.Do(req)
	if err != nil {
		s.run.Counter("serve.cluster.shard_rpc_errors").Inc()
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		s.run.Counter("serve.cluster.shard_rpc_errors").Inc()
		return nil, fmt.Errorf("serve: shard replica %s returned %d", addr, resp.StatusCode)
	}
	var out core.ShardOutcome
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes*4)).Decode(&out); err != nil {
		s.run.Counter("serve.cluster.shard_rpc_errors").Inc()
		return nil, err
	}
	if out.Shard.Lo != sr.Lo || out.Shard.Hi != sr.Hi {
		s.run.Counter("serve.cluster.shard_rpc_errors").Inc()
		return nil, fmt.Errorf("serve: shard replica %s answered range [%d,%d), wanted [%d,%d)", addr, out.Shard.Lo, out.Shard.Hi, sr.Lo, sr.Hi)
	}
	return &out, nil
}

// forwardGenerate relays a generate request to the replica that owns
// its key, streaming the owner's response (whatever its status) back to
// the client. Returns false on transport failure — the caller then
// serves locally, which is always safe: routing is a cache-locality
// optimisation, not a correctness requirement.
func (s *Server) forwardGenerate(w http.ResponseWriter, r *http.Request, owner, id string, body []byte) bool {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "http://"+owner+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardHeader, "1")
	req.Header.Set("X-Request-Id", id)
	resp, err := s.peerClient.Do(req)
	if err != nil {
		s.run.Counter("serve.cluster.forward_failed").Inc()
		return false
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	served := resp.Header.Get(cluster.ServedByHeader)
	if served == "" {
		served = owner
	}
	w.Header().Set(cluster.ServedByHeader, served)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	s.run.Counter("serve.cluster.forwarded").Inc()
	return true
}
