package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"marchgen/internal/obs"
)

// promName mangles a dotted metric name into the Prometheus name
// charset [a-zA-Z0-9_:], mapping every other rune to '_'
// ("serve.generate.ok" → "serve_generate_ok").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeProm renders a typed metrics export (plus extra point-in-time
// gauges) in the Prometheus text exposition format, version 0.0.4:
// one # TYPE line per family, histograms as cumulative _bucket series
// with le labels plus _sum and _count. Families are emitted in sorted
// name order, so two scrapes of the same state are byte-identical.
func writeProm(w io.Writer, ex obs.Export, extraGauges map[string]int64) {
	for _, c := range ex.Counters {
		n := promName(c.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	gauges := append([]obs.MetricPoint(nil), ex.Gauges...)
	for name, v := range extraGauges {
		gauges = append(gauges, obs.MetricPoint{Name: name, Value: v})
	}
	sort.Slice(gauges, func(a, b int) bool { return gauges[a].Name < gauges[b].Name })
	for _, g := range gauges {
		n := promName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range ex.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, bound, cum)
		}
		// Total from the buckets themselves, not the Count field: the
		// cells are read at slightly different instants under concurrent
		// observation, and the bucket sum keeps the series monotone.
		total := cum + h.Buckets[len(h.Bounds)]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, total)
		fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", n, total)
	}
}
