// Package serve turns the generation engine into a long-running HTTP/JSON
// service: march-test synthesis (/v1/generate), verification (/v1/verify)
// and n-cell simulation (/v1/simulate) layered directly on the library's
// GenerateCtx/VerifyCtx entry points, with the operational machinery a
// shared engine needs:
//
//   - request coalescing: concurrent identical /v1/generate requests are
//     deduplicated under a content-addressed key (the same fingerprint
//     discipline as internal/memo) so N callers share one engine run and
//     receive byte-identical tests (coalesce.go);
//   - admission control: a bounded in-flight window plus a bounded queue;
//     past both, requests are shed with 503 and a Retry-After hint, and a
//     request whose deadline expires while queued is shed without ever
//     reaching the engine (admission in server.go, permits in batch.go);
//   - micro-batching: queued generate requests whose fault-model sets
//     overlap are grouped and executed back-to-back on one engine permit,
//     so the memo cache's coverage matrices, tour fragments and verdicts
//     stay warm across the group (batch.go);
//   - typed-error mapping: the error taxonomy of the root package
//     (ErrCanceled, ErrDeadlineExceeded, ErrBudgetExhausted, ErrUsage,
//     ErrUnsupportedFault, ErrInternal) maps onto HTTP statuses exactly as
//     the CLIs map it onto exit codes (proto.go);
//   - observability: every request gets a serve/* span carrying the
//     request id, engine spans and metrics aggregate into the server's
//     obs.Run, and /metrics, /healthz and /readyz expose the snapshot;
//   - graceful drain: BeginDrain flips /readyz, sheds new work and lets
//     the in-flight window finish (Drain waits for it), which is what
//     cmd/marchserve wires to SIGTERM;
//   - replica sets: with Config.Peers, N servers form a consistent-hash
//     replica set — generate requests route to their key's ring owner,
//     memo warmth anywhere becomes warmth everywhere through a
//     peer-fetch tier, and eligible warm-mode sweeps distribute across
//     the set (cluster.go, internal/cluster).
//
// The package is stdlib-only, like everything else in the module. See
// docs/api.md for the wire schemas and cmd/marchserve for the binary.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"marchgen"
	"marchgen/internal/cluster"
	"marchgen/internal/core"
	"marchgen/internal/jobs"
	"marchgen/internal/memo"
	"marchgen/internal/obs"
	"marchgen/internal/simd"
	"marchgen/internal/store"
)

// Config tunes a Server. The zero value of any field selects the
// corresponding default; see DefaultConfig.
type Config struct {
	// MaxInFlight bounds concurrent engine runs (generate, verify and
	// simulate all consume permits). Default: GOMAXPROCS.
	MaxInFlight int
	// QueueDepth bounds requests admitted beyond the in-flight window;
	// past MaxInFlight+QueueDepth new requests are shed with 503.
	// Default: 64.
	QueueDepth int
	// DefaultTimeout is the per-request hard deadline applied when the
	// request does not carry its own timeout_ms. Default: 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps a client-requested timeout_ms. Default: 2m.
	MaxTimeout time.Duration
	// DefaultBudget is the soft-budget spec (marchgen.ParseBudget form)
	// applied to /v1/generate requests that do not carry their own
	// "budget" field. Empty: unlimited.
	DefaultBudget string
	// Workers is the engine worker-pool size used when a request does not
	// set its own (0: GOMAXPROCS). Results are byte-identical at any
	// worker count, so this is purely a throughput/latency knob.
	Workers int
	// BatchWindow is how long a generate request lingers in the
	// micro-batcher waiting for overlapping requests to arrive before it
	// is dispatched. 0 disables batching (every request dispatches
	// immediately on its own permit). Default (via DefaultConfig): 500µs.
	BatchWindow time.Duration
	// RetryAfter is the hint returned in the Retry-After header of shed
	// responses. Default: 1s.
	RetryAfter time.Duration
	// Obs, when non-nil, is the server-lifetime observability run that
	// collects request spans and aggregated engine metrics. New creates
	// one when nil; cmd/marchserve passes the run bound to its -trace /
	// -metrics flags so a drained server leaves a complete trace behind.
	Obs *obs.Run
	// Store, when non-nil, enables the async job API (/v1/jobs): job
	// records and results persist here, the shared memo cache gains a
	// durable tier over it (so checkpointed engine artifacts survive
	// restarts), and New re-adopts any job a previous process left
	// unfinished. Nil disables the job endpoints with 503 jobs_disabled.
	Store *store.Store
	// Self is this replica's own advertised host:port address, required
	// when Peers is set (it anchors this replica's position on the
	// consistent-hash ring and is echoed in X-March-Served-By).
	Self string
	// Peers lists every replica address in the set, Self included (it is
	// added if missing). With at least one address besides Self, the
	// server joins the replica set: /v1/generate requests forward to the
	// ring owner of their key, the shared memo cache gains a peer-fetch
	// tier (layered over the Store tier when both are set), and eligible
	// selection sweeps distribute across the set. Empty: single-node
	// mode, all cluster endpoints answer 503 cluster_disabled.
	Peers []string
	// SolverMode is the default exact-sweep solver mode applied to
	// generate requests that do not carry their own "solver" field:
	// "enumerate", "warm" or "joint". Empty: the engine default (warm).
	// Distributed sweeps require warm mode (the empty default included).
	SolverMode string
}

// DefaultConfig returns the production defaults described on Config.
func DefaultConfig() Config {
	return Config{
		MaxInFlight:    runtime.GOMAXPROCS(0),
		QueueDepth:     64,
		DefaultTimeout: 30 * time.Second,
		MaxTimeout:     2 * time.Minute,
		BatchWindow:    500 * time.Microsecond,
		RetryAfter:     time.Second,
	}
}

// Server is the HTTP generation service. Construct with New, mount
// Handler on an http.Server, and wire BeginDrain/Drain to the process
// signals for graceful shutdown.
type Server struct {
	cfg   Config
	run   *obs.Run
	start time.Time

	// active counts admitted requests (executing or queued); the
	// admission bound is MaxInFlight+QueueDepth.
	active atomic.Int64
	// sem holds the engine permits: at most MaxInFlight engine runs
	// execute concurrently, whatever the admission window holds.
	sem chan struct{}
	// shardSem holds the permits for peer-submitted sweep shards — a
	// pool deliberately disjoint from sem. A coordinator holds its own
	// engine permit while waiting on remote shards; if shards competed
	// for the same pool, two replicas coordinating concurrently would
	// deadlock waiting on each other's held permits. Shard handlers
	// never call back out to peers, so the disjoint pool keeps the
	// cross-replica wait graph acyclic.
	shardSem chan struct{}
	// wg tracks admitted requests for Drain.
	wg sync.WaitGroup

	draining atomic.Bool
	reqSeq   atomic.Uint64

	group   *group
	batcher *batcher

	// store/jobs are the durable job subsystem, nil without Config.Store.
	store     *store.Store
	jobs      *jobs.Manager
	recovered int

	// cluster/peerClient are the replica-set tier, nil without
	// Config.Peers (see cluster.go). The peer client carries no client
	// timeout: forwarded generates run as long as the owner allows, and
	// every peer call is already bound by its request context.
	cluster    *cluster.Cluster
	peerClient *http.Client

	// testLeaderGate, when non-nil, blocks every coalescing leader just
	// before its engine run until the channel is closed — a test-only
	// seam that lets the coalescing tests deterministically pile joiners
	// onto an in-flight call.
	testLeaderGate chan struct{}
}

// New builds a Server from cfg, filling unset fields from DefaultConfig.
// Note the zero-value caveat on Config.BatchWindow: a caller who wants
// batching disabled sets BatchWindow negative, since 0 selects the
// default window.
func New(cfg Config) *Server {
	def := DefaultConfig()
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = def.MaxInFlight
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = def.QueueDepth
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = def.DefaultTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = def.MaxTimeout
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = def.BatchWindow
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = def.RetryAfter
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRun()
	}
	s := &Server{
		cfg:      cfg,
		run:      cfg.Obs,
		start:    time.Now(),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		shardSem: make(chan struct{}, cfg.MaxInFlight),
	}
	s.group = newGroup(s.run)
	s.batcher = newBatcher(s, cfg.BatchWindow)
	if cfg.Store != nil {
		s.store = cfg.Store
		// The durable memo tier makes the engine's checkpointed artifacts
		// (tour fragments, verdicts) survive process death — the substrate
		// resumed jobs rebuild from.
		memo.Shared().AttachDisk(jobs.MemoTier(cfg.Store), core.Codec())
		mgr, err := jobs.NewManager(jobs.Config{
			Store: cfg.Store,
			Exec:  s.executeJob,
			ErrCode: func(err error) string {
				_, code := httpStatus(err)
				return code
			},
			Obs: s.run,
		})
		if err == nil { // only fails on nil Store/Exec, impossible here
			s.jobs = mgr
			n, rerr := mgr.Recover()
			if rerr != nil {
				s.run.Counter("serve.jobs.recover_errors").Inc()
			}
			s.recovered = n
			s.run.Counter("serve.jobs.recovered").Add(int64(n))
		}
	}
	s.peerClient = &http.Client{}
	s.initCluster()
	return s
}

// RecoveredJobs reports how many unfinished jobs New re-adopted from the
// durable store (cmd/marchserve logs it at startup).
func (s *Server) RecoveredJobs() int { return s.recovered }

// Run returns the server-lifetime observability run: request spans,
// aggregated engine metrics, admission counters.
func (s *Server) Run() *obs.Run { return s.run }

// Handler returns the service's HTTP routes. Every API endpoint is
// wrapped in the latency/in-flight instrumentation (instrument); the
// health and metrics probes are left bare so scrapes do not pollute
// the request series.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", s.instrument("generate", s.handleGenerate))
	mux.HandleFunc("POST /v1/verify", s.instrument("verify", s.handleVerify))
	mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/jobs", s.instrument("jobs_submit", s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs_get", s.handleJobGet))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("jobs_events", s.handleJobEvents))
	mux.HandleFunc("GET "+cluster.MemoPathPrefix+"{key}", s.handleMemoGet)
	mux.HandleFunc("POST "+cluster.MemoPathPrefix+"{key}", s.handleMemoPut)
	mux.HandleFunc("POST "+cluster.SweepPath, s.instrument("sweep_shard", s.handleSweepShard))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// instrument wraps an endpoint handler with the per-endpoint
// observability surface: an SLO-bucket latency histogram
// (serve.http.<endpoint>.latency_us), a live in-flight gauge and a
// request counter. The handles are resolved once at route-build time,
// so the per-request cost is two atomic adds and one histogram
// observation.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	latency := s.run.SLOHistogram("serve.http."+endpoint+".latency_us", obs.SLOLatencyBounds)
	inflight := s.run.Gauge("serve.http." + endpoint + ".inflight")
	requests := s.run.Counter("serve.http." + endpoint + ".requests")
	return func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inflight.Add(1)
		t0 := time.Now()
		defer func() {
			inflight.Add(-1)
			latency.Observe(time.Since(t0).Microseconds())
		}()
		h(w, r)
	}
}

// BeginDrain stops admitting work: /readyz flips to 503 and every new
// API request is shed with 503 + Retry-After. In-flight and queued
// requests keep running to completion; call Drain to wait for them.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.run.Counter("serve.drain.begun").Inc()
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain blocks until every admitted request has completed, or until ctx
// expires (returning its error). It does not itself stop admission —
// call BeginDrain first. With a job store configured, Drain then
// suspends running jobs: each persists a checkpointed record and the
// next process resumes it (Recover in New).
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.cluster != nil {
		s.cluster.Close()
	}
	if s.jobs != nil {
		return s.jobs.Close(ctx)
	}
	return nil
}

// requestID returns the client-supplied X-Request-Id or mints a
// sequential one.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		return id
	}
	return "r" + strconv.FormatUint(s.reqSeq.Add(1), 10)
}

// admit applies admission control: draining servers and a full window
// shed with 503 + Retry-After, and a request that arrives already past
// its deadline is shed with 504 without consuming a slot. On success the
// returned release func must be called exactly once when the request
// finishes.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.draining.Load() {
		s.shed(w, "server is draining")
		return nil, false
	}
	if err := r.Context().Err(); err != nil {
		s.run.Counter("serve.shed.dead_on_arrival").Inc()
		writeError(w, r, http.StatusGatewayTimeout, "deadline_exceeded", "request deadline expired before admission")
		return nil, false
	}
	limit := int64(s.cfg.MaxInFlight + s.cfg.QueueDepth)
	if s.active.Add(1) > limit {
		s.active.Add(-1)
		s.shed(w, fmt.Sprintf("admission window full (%d in flight or queued)", limit))
		return nil, false
	}
	s.wg.Add(1)
	s.run.Counter("serve.admitted").Inc()
	s.run.Gauge("serve.active").Max(s.active.Load())
	return func() {
		s.active.Add(-1)
		s.wg.Done()
	}, true
}

// shed rejects a request with 503 + Retry-After and counts it.
func (s *Server) shed(w http.ResponseWriter, msg string) {
	s.run.Counter("serve.shed").Inc()
	w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
	writeErrorNoReq(w, http.StatusServiceUnavailable, "overloaded", msg)
}

// acquire takes one engine permit, waiting at most until ctx is done
// (deadline-aware queueing: an expired request never reaches the engine).
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	s.run.Counter("serve.permit.waited").Inc()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// baseContext is the detached context engine runs execute under: it
// carries the server's observability run (so engine spans and metrics
// aggregate into /metrics) but no request-scoped cancellation — the
// coalescer cancels a run only when every joined request has gone away.
func (s *Server) baseContext() context.Context {
	return obs.Into(context.Background(), s.run)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_us": time.Since(s.start).Microseconds(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// The drain hint matches shed responses: load balancers and
		// marchload back off the same way for both.
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// handleMetrics exposes the server run's metrics, content-negotiated:
// the default is the flat JSON snapshot (the same int64 naming scheme
// as Stats.Metrics), while an Accept header asking for text/plain or
// OpenMetrics — what a Prometheus scraper sends — selects the
// Prometheus text exposition with full histogram buckets. Both views
// add the live admission gauges, the process-wide memo-cache counters
// and the kernel throughput telemetry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	extra := map[string]int64{
		"serve.active.now": s.active.Load(),
		"serve.uptime_us":  time.Since(s.start).Microseconds(),
	}
	if s.draining.Load() {
		extra["serve.draining"] = 1
	}
	if s.cluster != nil {
		extra["serve.cluster.peers"] = int64(len(s.cluster.Members()))
	}
	ci := marchgen.CacheSnapshot()
	extra["memo.shared.hits"] = int64(ci.Hits)
	extra["memo.shared.misses"] = int64(ci.Misses)
	extra["memo.shared.evictions"] = int64(ci.Evictions)
	extra["memo.shared.disk_hits"] = int64(ci.DiskHits)
	extra["memo.shared.entries"] = int64(ci.Entries)
	kt := simd.ReadTelemetry()
	extra["simd.lane_steps"] = int64(kt.LaneSteps)
	extra["simd.trace_runs"] = int64(kt.TraceRuns)
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		writeProm(w, s.run.Export(), extra)
		return
	}
	snap := s.run.Snapshot()
	for name, v := range extra {
		snap[name] = v
	}
	writeJSON(w, http.StatusOK, snap)
}

// writeJSON encodes v with status code; encoding errors past the header
// are unrecoverable and dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
