package serve

import (
	"sync"
	"time"
)

// batchItem is one coalescing-leader engine run waiting to be dispatched,
// tagged with the fault-model names of its request so the batcher can
// group overlapping work.
type batchItem struct {
	models []string
	// exec runs the engine and completes the item's call; it must not
	// panic (the engine's panic boundary converts invariant failures to
	// typed errors) and it observes its own detached context, so a dead
	// request costs one prompt CheckNow, not an engine run.
	exec func()
}

// batcher is the micro-batching dispatcher in front of the engine
// permits. A generate leader lingers here for up to one window; leaders
// that arrive within the same window and share at least one fault model
// are grouped (union-find over model names) and the whole group executes
// back-to-back on a single engine permit. Members of a group pose
// overlapping sub-problems — coverage-matrix rows, ATSP tour fragments
// and completeness verdicts keyed by the same content hashes — so the
// second and later members run substantially warm out of the shared memo
// cache, and a burst of related traffic consumes one permit instead of
// saturating the in-flight window.
//
// A window of 0 (or negative) disables grouping: every item dispatches
// immediately on its own permit.
type batcher struct {
	s      *Server
	window time.Duration

	mu      sync.Mutex
	pending []*batchItem
}

func newBatcher(s *Server, window time.Duration) *batcher {
	return &batcher{s: s, window: window}
}

// submit hands one leader run to the dispatcher. It returns immediately;
// exec runs on a dispatcher goroutine once a permit is available.
func (b *batcher) submit(it *batchItem) {
	if b.window <= 0 {
		go b.s.runBatch([]*batchItem{it})
		return
	}
	b.mu.Lock()
	b.pending = append(b.pending, it)
	first := len(b.pending) == 1
	b.mu.Unlock()
	if first {
		// One flush timer per window, armed by the item that opens it.
		time.AfterFunc(b.window, b.flush)
	}
}

// flush groups the window's pending items by fault-model overlap and
// dispatches each group on its own goroutine (one permit per group).
func (b *batcher) flush() {
	b.mu.Lock()
	items := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(items) == 0 {
		return
	}
	groups := groupByOverlap(items)
	for _, g := range groups {
		go b.s.runBatch(g)
	}
	b.s.run.Counter("serve.batch.windows").Inc()
	for _, g := range groups {
		b.s.run.Histogram("serve.batch.size").Observe(int64(len(g)))
	}
}

// runBatch executes one overlap group on a single engine permit, members
// back-to-back in arrival order.
func (s *Server) runBatch(items []*batchItem) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	if len(items) > 1 {
		s.run.Counter("serve.batch.grouped").Add(int64(len(items)))
	}
	for _, it := range items {
		it.exec()
	}
}

// groupByOverlap partitions items into groups whose fault-model name
// sets are transitively connected: items sharing any model land in the
// same group (union-find keyed by model name), preserving arrival order
// within each group.
func groupByOverlap(items []*batchItem) [][]*batchItem {
	parent := make([]int, len(items))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	owner := map[string]int{} // model name → first item using it
	for i, it := range items {
		for _, m := range it.models {
			if j, ok := owner[m]; ok {
				union(i, j)
			} else {
				owner[m] = i
			}
		}
	}
	order := []int{}
	byRoot := map[int][]*batchItem{}
	for i, it := range items {
		r := find(i)
		if _, ok := byRoot[r]; !ok {
			order = append(order, r)
		}
		byRoot[r] = append(byRoot[r], it)
	}
	out := make([][]*batchItem, 0, len(order))
	for _, r := range order {
		out = append(out, byRoot[r])
	}
	return out
}
