package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"marchgen"
	"marchgen/fault"
	"marchgen/internal/cluster"
	"marchgen/internal/core"
	"marchgen/internal/memo"
	"marchgen/internal/obs"
)

// mapCtxErr converts a raw context error (from a permit wait) to the
// typed taxonomy so httpStatus maps it like an engine-reported one.
func mapCtxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return marchgen.ErrDeadlineExceeded
	}
	return marchgen.ErrCanceled
}

// handleGenerate serves POST /v1/generate: admission → canonical key →
// coalesce → micro-batch → engine → typed-status response.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	id := s.requestID(r)
	sp := s.run.Start("serve/generate").SetStr("id", id)
	defer sp.End()
	s.run.Counter("serve.generate.requests").Inc()

	release, ok := s.admit(w, r)
	if !ok {
		sp.SetStr("outcome", "shed")
		return
	}
	defer release()

	// The body is read raw before decoding so a replica can relay it
	// verbatim when the key's ring owner is another replica.
	body, err := readBody(r)
	if err != nil {
		sp.SetStr("outcome", "bad_request")
		writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	var req GenerateRequest
	if err := decodeBytes(body, &req); err != nil {
		sp.SetStr("outcome", "bad_request")
		writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	models, err := fault.ParseList(req.Faults)
	if err != nil {
		sp.SetStr("outcome", "bad_request")
		writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if req.Workers < 0 || req.SelectionLimit < 0 {
		sp.SetStr("outcome", "usage")
		writeError(w, r, http.StatusBadRequest, "usage", "workers and selection_limit must be non-negative")
		return
	}
	if req.Budget != "" {
		if _, err := marchgen.ParseBudget(req.Budget); err != nil {
			sp.SetStr("outcome", "usage")
			writeError(w, r, http.StatusBadRequest, "usage", err.Error())
			return
		}
	}
	switch req.Solver {
	case "", marchgen.SolverEnumerate, marchgen.SolverWarm, marchgen.SolverJoint:
	default:
		sp.SetStr("outcome", "usage")
		writeError(w, r, http.StatusBadRequest, "usage",
			fmt.Sprintf("unknown solver mode %q (want enumerate, warm or joint)", req.Solver))
		return
	}
	timeout, err := s.resolveTimeout(req.TimeoutMS)
	if err != nil {
		sp.SetStr("outcome", "usage")
		writeError(w, r, http.StatusBadRequest, "usage", err.Error())
		return
	}

	instances := fault.Instances(models)
	key := generateKey(fault.Key(instances), &req)
	sp.SetStr("faults", req.Faults)

	// Forward-or-serve: in a replica set, route the request to the key's
	// ring owner so identical requests share one replica's coalescer and
	// memo warmth. The forward header breaks relay loops; a transport
	// failure falls through to serving locally.
	if s.cluster != nil {
		if owner := s.cluster.Owner(key); owner != s.cluster.Self() &&
			r.Header.Get(cluster.ForwardHeader) == "" {
			sp.SetStr("owner", owner)
			if s.forwardGenerate(w, r, owner, id, body) {
				sp.SetStr("outcome", "forwarded")
				return
			}
		}
		w.Header().Set(cluster.ServedByHeader, s.cluster.Self())
	}

	c, coalesced := s.group.join(key, func() (context.Context, context.CancelFunc) {
		ctx, cancel := context.WithCancel(s.baseContext())
		tctx, tcancel := context.WithTimeout(ctx, timeout)
		return tctx, func() { tcancel(); cancel() }
	})
	if !coalesced {
		modelNames := make([]string, len(models))
		for i, m := range models {
			modelNames[i] = m.Name
		}
		s.batcher.submit(&batchItem{
			models: modelNames,
			exec: func() {
				if s.testLeaderGate != nil {
					<-s.testLeaderGate
				}
				s.group.runs.Inc()
				res, err := s.executeGenerate(c.runCtx, &req)
				s.group.complete(c, res, err)
			},
		})
	}
	sp.SetInt("coalesced", boolInt(coalesced))

	res, err := c.wait(r.Context())
	if err != nil {
		status, code := httpStatus(err)
		sp.SetStr("outcome", code)
		s.run.Counter("serve.generate.errors." + code).Inc()
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, r, status, code, err.Error())
		return
	}
	sp.SetStr("outcome", "ok").SetInt("complexity", int64(res.Complexity))
	s.run.Counter("serve.generate.ok").Inc()
	s.run.Histogram("serve.generate.elapsed_us").Observe(res.Stats.Elapsed.Microseconds())
	writeJSON(w, http.StatusOK, GenerateResponse{
		RequestID:      id,
		Test:           res.Test.String(),
		ASCII:          res.Test.ASCII(),
		Complexity:     res.Complexity,
		Instances:      len(res.Instances),
		Degraded:       res.Stats.Degraded,
		DegradedStages: res.Stats.DegradedStages,
		FromCache:      res.Stats.FromCache,
		Coalesced:      coalesced,
		Stats: GenerateStats{
			Classes:    res.Stats.Classes,
			Selections: res.Stats.Selections,
			TPGNodes:   res.Stats.TPGNodes,
			PathCost:   res.Stats.PathCost,
			Candidates: res.Stats.Candidates,
		},
		ElapsedUS: res.Stats.Elapsed.Microseconds(),
	})
}

// executeGenerate runs the engine for one coalesced call. The soft
// budget is parsed here, not at admission, so a "soft=500ms" deadline is
// relative to the moment the run actually starts rather than to its time
// in the queue.
func (s *Server) executeGenerate(ctx context.Context, req *GenerateRequest) (*marchgen.Result, error) {
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	opts := []marchgen.Option{marchgen.WithWorkers(workers)}
	if req.Heuristic {
		opts = append(opts, marchgen.WithHeuristicATSP())
	}
	if req.SelectionLimit > 0 {
		opts = append(opts, marchgen.WithSelectionLimit(req.SelectionLimit))
	}
	mode := req.Solver
	if mode == "" {
		mode = s.cfg.SolverMode
	}
	if mode != "" {
		opts = append(opts, marchgen.WithSolverMode(mode))
	}
	spec := req.Budget
	if spec == "" {
		spec = s.cfg.DefaultBudget
	}
	if spec != "" {
		b, err := marchgen.ParseBudget(spec)
		if err != nil {
			return nil, err
		}
		opts = append(opts, marchgen.WithBudget(b))
	}
	if d := s.distributorFor(req, mode, spec); d != nil {
		// marchgen.Option is a raw func over core.Options, so the
		// distributor hook needs no public API surface.
		opts = append(opts, marchgen.Option(func(o *core.Options) { o.Distributor = d }))
	}
	return marchgen.GenerateCtx(ctx, req.Faults, opts...)
}

// generateKey fingerprints a generate request's canonical content: the
// expanded fault-instance list plus every request field that shapes the
// result. Workers is deliberately excluded — results are byte-identical
// at any worker count, so requests differing only in workers coalesce.
func generateKey(faultKey string, req *GenerateRequest) string {
	return memo.NewFingerprinter("serve/generate").
		Str(faultKey).
		Bool(req.Heuristic).
		Int(req.SelectionLimit).
		Str(req.Budget).
		Int(req.TimeoutMS).
		Key()
}

// handleVerify serves POST /v1/verify on the two-cell engine with the
// Section 6 non-redundancy analysis.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.handleCoverage(w, r, false)
}

// handleSimulate serves POST /v1/simulate on the n-cell simulator (the
// paper's validation instrument; coverage verdicts only).
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.handleCoverage(w, r, true)
}

func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request, ncell bool) {
	name := "serve/verify"
	if ncell {
		name = "serve/simulate"
	}
	id := s.requestID(r)
	sp := s.run.Start(name).SetStr("id", id)
	defer sp.End()
	s.run.Counter(name[len("serve/"):] + ".requests").Inc()

	release, ok := s.admit(w, r)
	if !ok {
		sp.SetStr("outcome", "shed")
		return
	}
	defer release()

	var req VerifyRequest
	if err := decodeBody(w, r, &req); err != nil {
		sp.SetStr("outcome", "bad_request")
		writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	test, err := parseTest(&req)
	if err != nil {
		sp.SetStr("outcome", "bad_request")
		writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if req.Workers < 0 {
		sp.SetStr("outcome", "usage")
		writeError(w, r, http.StatusBadRequest, "usage", "workers must be non-negative")
		return
	}
	cells := req.Cells
	if ncell {
		if cells == 0 {
			cells = 8
		}
		if cells < 2 || cells > 1024 {
			sp.SetStr("outcome", "usage")
			writeError(w, r, http.StatusBadRequest, "usage", "cells must be in [2, 1024]")
			return
		}
	}
	timeout, err := s.resolveTimeout(req.TimeoutMS)
	if err != nil {
		sp.SetStr("outcome", "usage")
		writeError(w, r, http.StatusBadRequest, "usage", err.Error())
		return
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}

	// Verification runs under the request's own context (no coalescing):
	// client cancellation aborts the simulation directly.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	ctx = obs.Into(ctx, s.run)
	if err := s.acquire(ctx); err != nil {
		status, code := httpStatus(mapCtxErr(err))
		sp.SetStr("outcome", code)
		writeError(w, r, status, code, "request expired while queued: "+err.Error())
		return
	}
	defer s.release()

	start := time.Now()
	var rep *marchgen.CoverageReport
	if ncell {
		rep, err = marchgen.VerifyNWorkersCtx(ctx, test, req.Faults, cells, workers)
	} else {
		rep, err = marchgen.VerifyWorkersCtx(ctx, test, req.Faults, workers)
	}
	if err != nil {
		status, code := httpStatus(err)
		sp.SetStr("outcome", code)
		s.run.Counter(name[len("serve/"):] + ".errors." + code).Inc()
		writeError(w, r, status, code, err.Error())
		return
	}
	sp.SetStr("outcome", "ok").SetInt("complete", boolInt(rep.Complete))
	resp := VerifyResponse{
		RequestID:  id,
		Test:       rep.Test.String(),
		Complexity: rep.Complexity,
		Complete:   rep.Complete,
		Missed:     rep.Missed,
		ElapsedUS:  time.Since(start).Microseconds(),
	}
	if ncell {
		resp.Cells = cells
	} else {
		resp.NonRedundant = rep.NonRedundant
		resp.RedundantReads = rep.RedundantReads
		resp.RemovableOps = rep.RemovableOps
	}
	for _, inst := range rep.Instances {
		resp.Instances = append(resp.Instances, InstanceVerdict{
			Model:        inst.Model,
			Name:         inst.Name,
			Detected:     inst.Detected,
			DetectingOps: inst.DetectingOps,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// boolInt renders a boolean as a span attribute value.
func boolInt(v bool) int64 {
	if v {
		return 1
	}
	return 0
}
