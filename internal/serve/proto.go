package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"marchgen"
	"marchgen/march"
)

// maxBodyBytes bounds a request body; fault lists and March tests are
// tiny, so anything bigger is a client error.
const maxBodyBytes = 1 << 20

// StatusClientClosedRequest is the non-standard 499 status (popularised
// by nginx) the service returns when the caller went away mid-run — the
// HTTP face of ErrCanceled, matching the CLIs' exit code 3.
const StatusClientClosedRequest = 499

// GenerateRequest is the body of POST /v1/generate.
type GenerateRequest struct {
	// Faults is the comma-separated fault list (required), in the same
	// syntax as the library and CLIs: "SAF,TF,ADF" or "CFid<u,0>,CFin".
	Faults string `json:"faults"`
	// Heuristic selects the layered heuristic ATSP solver instead of the
	// exact one (faster, result no longer proven minimal).
	Heuristic bool `json:"heuristic,omitempty"`
	// SelectionLimit caps the BFE class-selection enumeration (0: the
	// engine default of 64).
	SelectionLimit int `json:"selection_limit,omitempty"`
	// Workers sets the engine worker-pool size for this request (0: the
	// server's configured default). The generated test is byte-identical
	// at any worker count.
	Workers int `json:"workers,omitempty"`
	// Budget is a soft-budget spec in marchgen.ParseBudget form, e.g.
	// "nodes=100000,soft=500ms". Exhaustion degrades the result instead
	// of failing; the downgrade is reported in the response. Empty: the
	// server's configured default budget.
	Budget string `json:"budget,omitempty"`
	// Solver selects the exact-sweep solver mode: "enumerate", "warm" or
	// "joint" (empty: the server's configured default, itself defaulting
	// to "warm"). Modes only change effort — the generated test is
	// byte-identical across all three, which is also why Solver does not
	// participate in the coalescing key.
	Solver string `json:"solver,omitempty"`
	// TimeoutMS is the hard per-request deadline in milliseconds (0: the
	// server default; capped at the server maximum). Past it the run is
	// aborted with 504.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// GenerateStats is the pipeline-effort section of a GenerateResponse —
// the wire form of marchgen.Stats.
type GenerateStats struct {
	Classes    int `json:"classes"`
	Selections int `json:"selections"`
	TPGNodes   int `json:"tpg_nodes"`
	PathCost   int `json:"path_cost"`
	Candidates int `json:"candidates"`
}

// GenerateResponse is the body of a successful POST /v1/generate.
type GenerateResponse struct {
	RequestID string `json:"request_id"`
	// Test is the generated March test in conventional notation; ASCII is
	// the same test in 7-bit notation.
	Test  string `json:"test"`
	ASCII string `json:"ascii"`
	// Complexity is the operations-per-cell figure ("kn").
	Complexity int `json:"complexity"`
	// Instances is the number of fault instances the test provably
	// detects.
	Instances int `json:"instances"`
	// Degraded reports that a soft budget ran out mid-run: the test is
	// still simulator-validated complete but no longer proven minimal;
	// DegradedStages names the stages that downgraded.
	Degraded       bool     `json:"degraded,omitempty"`
	DegradedStages []string `json:"degraded_stages,omitempty"`
	// FromCache reports a memo-cache hit: an earlier run already solved
	// this exact problem and the engine was skipped entirely.
	FromCache bool `json:"from_cache,omitempty"`
	// Coalesced reports that this request joined another in-flight
	// identical request and shares its engine run (and its bytes).
	Coalesced bool          `json:"coalesced,omitempty"`
	Stats     GenerateStats `json:"stats"`
	// ElapsedUS is the engine wall-clock time in microseconds (shared by
	// every coalesced caller of the run).
	ElapsedUS int64 `json:"elapsed_us"`
}

// VerifyRequest is the body of POST /v1/verify and POST /v1/simulate.
// Exactly one of Test (conventional or ASCII March notation) and Known
// (a classic test name such as "MarchC-") must be set.
type VerifyRequest struct {
	// Test is a March test body; Known names a library test instead.
	Test  string `json:"test,omitempty"`
	Known string `json:"known,omitempty"`
	// Faults is the comma-separated fault list (required).
	Faults string `json:"faults"`
	// Cells selects the n-cell simulator size for /v1/simulate (default
	// 8; /v1/verify ignores it and uses the two-cell engine).
	Cells int `json:"cells,omitempty"`
	// Workers and TimeoutMS behave as on GenerateRequest.
	Workers   int `json:"workers,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// InstanceVerdict is one fault instance's verdict in a VerifyResponse.
type InstanceVerdict struct {
	Model    string `json:"model"`
	Name     string `json:"name"`
	Detected bool   `json:"detected"`
	// DetectingOps lists flattened operation indices whose reads
	// individually certify detection.
	DetectingOps []int `json:"detecting_ops,omitempty"`
}

// VerifyResponse is the body of a successful POST /v1/verify or
// /v1/simulate — the wire form of marchgen.CoverageReport.
type VerifyResponse struct {
	RequestID  string `json:"request_id"`
	Test       string `json:"test"`
	Complexity int    `json:"complexity"`
	Complete   bool   `json:"complete"`
	// Missed lists undetected instance names when coverage is incomplete.
	Missed []string `json:"missed,omitempty"`
	// NonRedundant and the redundancy fields are only meaningful when
	// Complete is true and are omitted by /v1/simulate (the n-cell engine
	// reports coverage only).
	NonRedundant   bool              `json:"non_redundant,omitempty"`
	RedundantReads []int             `json:"redundant_reads,omitempty"`
	RemovableOps   []int             `json:"removable_ops,omitempty"`
	Instances      []InstanceVerdict `json:"instances"`
	// Cells is the simulator size used (/v1/simulate only).
	Cells     int   `json:"cells,omitempty"`
	ElapsedUS int64 `json:"elapsed_us"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Code is the machine-readable error class; see docs/api.md for the
	// full table ("usage", "unsupported_fault", "canceled",
	// "deadline_exceeded", "budget_exhausted", "overloaded", "internal",
	// "bad_request").
	Code string `json:"code"`
	// RequestID echoes the request id when one was assigned.
	RequestID string `json:"request_id,omitempty"`
}

// httpStatus maps the typed error taxonomy of the root package onto HTTP
// statuses, mirroring the CLI exit-code convention (DESIGN.md §7):
//
//	ErrUsage             → 400 (CLI exit 2)
//	ErrUnsupportedFault  → 422 (CLI exit 1)
//	ErrCanceled          → 499 (CLI exit 3)
//	ErrDeadlineExceeded  → 504 (CLI exit 3)
//	ErrBudgetExhausted   → 503 (CLI exit 1; no result existed yet)
//	ErrInternal          → 500 (CLI exit 1)
//	anything else        → 400 (parse and validation failures)
func httpStatus(err error) (status int, code string) {
	switch {
	case errors.Is(err, marchgen.ErrUsage):
		return http.StatusBadRequest, "usage"
	case errors.Is(err, marchgen.ErrUnsupportedFault):
		return http.StatusUnprocessableEntity, "unsupported_fault"
	case errors.Is(err, marchgen.ErrCanceled):
		return StatusClientClosedRequest, "canceled"
	case errors.Is(err, marchgen.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, marchgen.ErrBudgetExhausted):
		return http.StatusServiceUnavailable, "budget_exhausted"
	case errors.Is(err, marchgen.ErrInternal):
		return http.StatusInternalServerError, "internal"
	default:
		return http.StatusBadRequest, "bad_request"
	}
}

// writeError emits the uniform error body, echoing the request id header
// when present.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	id := ""
	if r != nil {
		id = r.Header.Get("X-Request-Id")
	}
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code, RequestID: id})
}

// writeErrorNoReq is writeError for paths that shed before a request id
// exists.
func writeErrorNoReq(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

// decodeBody decodes a JSON request body strictly (unknown fields are
// client errors, bodies are size-bounded).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// readBody drains a size-bounded request body; handlers that may
// forward the request to a peer read raw bytes first and decode with
// decodeBytes, so the body can be relayed verbatim.
func readBody(r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("unreadable request body: %w", err)
	}
	return data, nil
}

// decodeBytes is decodeBody over already-read bytes, with the same
// strictness.
func decodeBytes(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// resolveTimeout applies the server's default and cap to a request's
// timeout_ms field.
func (s *Server) resolveTimeout(ms int) (time.Duration, error) {
	if ms < 0 {
		return 0, fmt.Errorf("timeout_ms must be non-negative, got %d", ms)
	}
	d := time.Duration(ms) * time.Millisecond
	if d == 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// parseTest resolves the Test/Known pair of a VerifyRequest.
func parseTest(req *VerifyRequest) (*march.Test, error) {
	switch {
	case req.Test != "" && req.Known != "":
		return nil, fmt.Errorf("set exactly one of \"test\" and \"known\"")
	case req.Known != "":
		kt, ok := march.Known(req.Known)
		if !ok {
			return nil, fmt.Errorf("unknown March test %q (known: %v)", req.Known, march.KnownNames())
		}
		return kt.Test, nil
	case req.Test != "":
		t, err := march.Parse(req.Test)
		if err != nil {
			return nil, err
		}
		return t, nil
	default:
		return nil, fmt.Errorf("set one of \"test\" and \"known\"")
	}
}
