package serve

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"marchgen"
	"marchgen/internal/jobs"
	"marchgen/internal/memo"
	"marchgen/internal/store"
)

// newStoreServer builds a Server with a durable job store in a temp
// directory. The shared memo cache gains a disk tier on New, so the
// helper detaches it (and resets the cache) on cleanup to keep tests
// independent.
func newStoreServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = -1
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		// Suspend any job still running so the store directory is quiet
		// before TempDir removal.
		s.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		memo.Shared().DetachDisk()
		marchgen.ResetCache()
	})
	return s, ts, st
}

// waitJobDone polls GET /v1/jobs/{id} until the job is terminal.
func waitJobDone(t *testing.T, base, id string) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var body JobStatusResponse
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status %d: %+v", resp.StatusCode, body)
		}
		if body.State == string(jobs.StateDone) || body.State == string(jobs.StateFailed) {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobsLifecycleEndpoint(t *testing.T) {
	marchgen.ResetCache()
	_, ts, st := newStoreServer(t, Config{})

	resp, raw := post(t, ts.URL+"/v1/jobs", JobSubmitRequest{
		Kind: "generate", Generate: &GenerateRequest{Faults: "SAF"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202: %s", resp.StatusCode, raw)
	}
	var sub JobStatusResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || !strings.HasPrefix(sub.ID, "j-") {
		t.Fatalf("bad job id %q", sub.ID)
	}

	done := waitJobDone(t, ts.URL, sub.ID)
	if done.State != string(jobs.StateDone) || done.Error != nil {
		t.Fatalf("job ended %+v", done)
	}
	// The live in-memory record must carry timestamps, not just the
	// durable copy: updated_at advances past created_at as the job runs.
	if done.CreatedAt.IsZero() || done.UpdatedAt.IsZero() || done.UpdatedAt.Before(done.CreatedAt) {
		t.Fatalf("job timestamps created_at=%v updated_at=%v", done.CreatedAt, done.UpdatedAt)
	}
	if done.Result == nil {
		t.Fatal("done job status missing result document")
	}
	sum := sha256.Sum256(done.Result)
	if done.ResultHash != hex.EncodeToString(sum[:]) {
		t.Fatalf("result_hash %s does not hash the result bytes", done.ResultHash)
	}
	var res JobGenerateResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Complexity != 4 || res.Test == "" {
		t.Fatalf("generate job result %+v, want 4n SAF test", res)
	}

	// Durable engine artifacts landed in the memo namespace.
	memoKeys, err := st.List(jobs.NSMemo)
	if err != nil {
		t.Fatal(err)
	}
	if len(memoKeys) == 0 {
		t.Fatal("no memo entries persisted through the disk tier")
	}

	// Idempotent resubmission: 200 (not 202), same id, served from the
	// durable record.
	resp2, raw2 := post(t, ts.URL+"/v1/jobs", JobSubmitRequest{
		Kind: "generate", Generate: &GenerateRequest{Faults: "SAF"},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status %d, want 200: %s", resp2.StatusCode, raw2)
	}
	var again JobStatusResponse
	if err := json.Unmarshal(raw2, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != sub.ID || again.State != string(jobs.StateDone) {
		t.Fatalf("resubmit got %+v", again)
	}
}

func TestJobsSimulateKind(t *testing.T) {
	_, ts, _ := newStoreServer(t, Config{})
	resp, raw := post(t, ts.URL+"/v1/jobs", JobSubmitRequest{
		Kind: "simulate", Simulate: &VerifyRequest{Known: "MarchC-", Faults: "SAF,TF", Cells: 8},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var sub JobStatusResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	done := waitJobDone(t, ts.URL, sub.ID)
	var res JobVerifyResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Cells != 8 {
		t.Fatalf("simulate job result %+v", res)
	}
}

func TestJobsSSEStream(t *testing.T) {
	marchgen.ResetCache()
	_, ts, _ := newStoreServer(t, Config{})
	resp, raw := post(t, ts.URL+"/v1/jobs", JobSubmitRequest{
		Kind: "generate", Generate: &GenerateRequest{Faults: "SAF,TF"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub JobStatusResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}

	es, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	// The stream ends (EOF) after the summary frame, so reading to EOF
	// terminates. Track event names and the summary payload.
	var events []string
	var summary JobStatusResponse
	var sawRetry bool
	sc := bufio.NewScanner(es.Body)
	current := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "retry:"):
			sawRetry = true
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
			events = append(events, current)
		case strings.HasPrefix(line, "data: ") && current == "summary":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &summary); err != nil {
				t.Fatalf("summary frame: %v", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawRetry {
		t.Fatal("no retry hint in stream")
	}
	var state, progress int
	for _, e := range events {
		switch e {
		case "state":
			state++
		case "progress":
			progress++
		}
	}
	if state == 0 || progress == 0 {
		t.Fatalf("stream missing event kinds: %v", events)
	}
	if events[len(events)-1] != "summary" {
		t.Fatalf("stream did not end with summary: %v", events)
	}
	if summary.State != string(jobs.StateDone) || summary.ResultHash == "" {
		t.Fatalf("summary %+v, want done with hash", summary)
	}
}

func TestJobsDisabledWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, req := range []func() (*http.Response, []byte){
		func() (*http.Response, []byte) {
			return post(t, ts.URL+"/v1/jobs", JobSubmitRequest{Kind: "generate", Generate: &GenerateRequest{Faults: "SAF"}})
		},
		func() (*http.Response, []byte) {
			resp, err := http.Get(ts.URL + "/v1/jobs/j-000000000000000000000000")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return resp, buf.Bytes()
		},
	} {
		resp, raw := req()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503: %s", resp.StatusCode, raw)
		}
		var e ErrorResponse
		if err := json.Unmarshal(raw, &e); err != nil || e.Code != "jobs_disabled" {
			t.Fatalf("code %q, want jobs_disabled: %s", e.Code, raw)
		}
	}
}

func TestJobsNotFoundAndValidation(t *testing.T) {
	_, ts, _ := newStoreServer(t, Config{})
	resp, raw := post(t, ts.URL+"/v1/jobs", JobSubmitRequest{Kind: "generate", Generate: &GenerateRequest{Faults: "SAF"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}

	gr, err := http.Get(ts.URL + "/v1/jobs/j-ffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Body.Close()
	if gr.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job status %d, want 404", gr.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(gr.Body).Decode(&e); err != nil || e.Code != "job_not_found" {
		t.Fatalf("code %q, want job_not_found", e.Code)
	}

	cases := []struct {
		name string
		body any
		code string
	}{
		{"unknown kind", JobSubmitRequest{Kind: "frobnicate", Generate: &GenerateRequest{Faults: "SAF"}}, "bad_request"},
		{"no subrequest", JobSubmitRequest{Kind: "generate"}, "bad_request"},
		{"two subrequests", JobSubmitRequest{Kind: "generate", Generate: &GenerateRequest{Faults: "SAF"}, Verify: &VerifyRequest{Known: "MATS+", Faults: "SAF"}}, "bad_request"},
		{"kind mismatch", JobSubmitRequest{Kind: "verify", Generate: &GenerateRequest{Faults: "SAF"}}, "bad_request"},
		{"bad faults", JobSubmitRequest{Kind: "generate", Generate: &GenerateRequest{Faults: "NOPE"}}, "bad_request"},
		{"bad budget", JobSubmitRequest{Kind: "generate", Generate: &GenerateRequest{Faults: "SAF", Budget: "nodes=0"}}, "usage"},
		{"negative workers", JobSubmitRequest{Kind: "generate", Generate: &GenerateRequest{Faults: "SAF", Workers: -1}}, "usage"},
		{"bad cells", JobSubmitRequest{Kind: "simulate", Simulate: &VerifyRequest{Known: "MATS+", Faults: "SAF", Cells: 1}}, "usage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := post(t, ts.URL+"/v1/jobs", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
			}
			var e ErrorResponse
			if err := json.Unmarshal(raw, &e); err != nil || e.Code != tc.code {
				t.Fatalf("code %q, want %q: %s", e.Code, tc.code, raw)
			}
		})
	}
}

// TestJobsDrainShedsSubmitServesStatus: during drain new submissions are
// shed with Retry-After, but status reads of existing jobs keep working —
// a restarting client never loses sight of its job.
func TestJobsDrainShedsSubmitServesStatus(t *testing.T) {
	s, ts, _ := newStoreServer(t, Config{})
	resp, raw := post(t, ts.URL+"/v1/jobs", JobSubmitRequest{Kind: "generate", Generate: &GenerateRequest{Faults: "SAF"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub JobStatusResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, ts.URL, sub.ID)

	s.BeginDrain()
	shed, shedRaw := post(t, ts.URL+"/v1/jobs", JobSubmitRequest{Kind: "generate", Generate: &GenerateRequest{Faults: "SAF,TF"}})
	if shed.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status %d, want 503: %s", shed.StatusCode, shedRaw)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Fatal("draining submit without Retry-After")
	}
	// Status still served.
	done := waitJobDone(t, ts.URL, sub.ID)
	if done.State != string(jobs.StateDone) {
		t.Fatalf("status during drain: %+v", done)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestReadyzDrainRetryAfter is the drain-endpoint regression: once
// BeginDrain runs, /readyz answers 503 with a Retry-After hint.
func TestReadyzDrainRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready readyz status %d", resp.StatusCode)
	}
	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz without Retry-After")
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["status"] != "draining" {
		t.Fatalf("draining readyz body %v", body)
	}
}

// TestJobsRestartResume is the service-level crash story: a job whose
// process shuts down mid-wait is re-adopted by the next server over the
// same store and completes with the canonical result document.
func TestJobsRestartResume(t *testing.T) {
	marchgen.ResetCache()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sA := New(Config{Store: st, BatchWindow: -1, MaxInFlight: 1})
	tsA := httptest.NewServer(sA.Handler())
	defer tsA.Close()

	// Occupy the only engine permit so the job deterministically blocks
	// before execution, then drain: the manager suspends the job in a
	// resumable state, exactly as SIGTERM mid-queue would.
	sA.sem <- struct{}{}
	resp, raw := post(t, tsA.URL+"/v1/jobs", JobSubmitRequest{Kind: "generate", Generate: &GenerateRequest{Faults: "SAF,TF"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub JobStatusResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	sA.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sA.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	<-sA.sem
	tsA.Close()
	memo.Shared().DetachDisk()
	marchgen.ResetCache()

	// The durable record survived in a non-terminal state.
	rawRec, err := st.Get(jobs.NSJobs, sub.ID)
	if err != nil {
		t.Fatalf("record lost across shutdown: %v", err)
	}
	var rec jobs.Record
	if err := json.Unmarshal(rawRec, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State.Terminal() {
		t.Fatalf("suspended job is terminal: %+v", rec)
	}

	// Restart: a fresh server over the same store re-adopts and finishes.
	sB := New(Config{Store: st, BatchWindow: -1})
	tsB := httptest.NewServer(sB.Handler())
	t.Cleanup(func() {
		tsB.Close()
		memo.Shared().DetachDisk()
		marchgen.ResetCache()
	})
	if sB.RecoveredJobs() != 1 {
		t.Fatalf("RecoveredJobs = %d, want 1", sB.RecoveredJobs())
	}
	done := waitJobDone(t, tsB.URL, sub.ID)
	if done.State != string(jobs.StateDone) || done.Resumes != 1 {
		t.Fatalf("resumed job %+v", done)
	}
	// The committed document matches an uninterrupted local computation
	// of the same canonical result.
	res, err := marchgen.Generate("SAF,TF")
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(JobGenerateResult{
		Test:       res.Test.String(),
		ASCII:      res.Test.ASCII(),
		Complexity: res.Complexity,
		Instances:  len(res.Instances),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(done.Result, want) {
		t.Fatalf("resumed result differs:\n got %s\nwant %s", done.Result, want)
	}
}

// TestLeaderDisconnectFollowersServed: the coalescing leader's client
// disconnects while the run is gated; followers joined on the same key
// must still receive the full result (the run is refcounted, not owned
// by the leader's connection).
func TestLeaderDisconnectFollowersServed(t *testing.T) {
	marchgen.ResetCache()
	s, ts, gate := newGatedServer(t, Config{MaxInFlight: 2}, true)

	lctx, lcancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(GenerateRequest{Faults: fiveFaults})
	leaderErr := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(lctx, "POST", ts.URL+"/v1/generate", bytes.NewReader(body))
		if err != nil {
			leaderErr <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		leaderErr <- err
	}()
	waitMetric(t, s, "serve.admitted", 1)

	const followers = 3
	var wg sync.WaitGroup
	statuses := make([]int, followers)
	tests := make([]string, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: fiveFaults})
			statuses[i] = resp.StatusCode
			var b GenerateResponse
			if err := json.Unmarshal(raw, &b); err != nil {
				t.Errorf("follower %d: %v: %s", i, err, raw)
				return
			}
			tests[i] = b.Test
		}(i)
	}
	waitMetric(t, s, "serve.coalesced", followers)

	// The winning (leader) client walks away mid-run.
	lcancel()
	if err := <-leaderErr; err == nil {
		t.Fatal("canceled leader request returned no error")
	}
	close(gate)
	wg.Wait()

	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("follower %d: status %d", i, st)
		}
		if tests[i] == "" || tests[i] != tests[0] {
			t.Fatalf("follower %d: test %q differs", i, tests[i])
		}
	}
	if runs := s.run.Snapshot()["serve.engine_runs"]; runs != 1 {
		t.Fatalf("engine_runs = %d, want 1", runs)
	}
}
