package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"marchgen"
	"marchgen/fault"
	"marchgen/internal/cluster"
	"marchgen/internal/core"
	"marchgen/internal/memo"
	"marchgen/internal/obs"
	"marchgen/internal/simd"
)

// clusterMemTier is an in-memory memo.DiskTier for the cold-replica
// tests.
type clusterMemTier struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newClusterMemTier() *clusterMemTier { return &clusterMemTier{m: map[string][]byte{}} }

func (t *clusterMemTier) Get(key string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	data, ok := t.m[key]
	return data, ok
}

func (t *clusterMemTier) Put(key string, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[key] = append([]byte(nil), data...)
}

func (t *clusterMemTier) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// listen grabs a loopback listener so a replica's advertised address is
// known before its server exists (the ring needs addresses up front).
func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// deadAddr returns a loopback address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln := listen(t)
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// resetClusterGlobals detaches the process-global tiers a replica's
// initCluster installs and empties the shared memo cache, so replica
// tests cannot leak warm state or live peer clients into each other.
// Register it before starting replicas: cleanups run LIFO, so the
// detach lands after every server has drained.
func resetClusterGlobals(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		memo.Shared().DetachDisk()
		simd.DetachLUTTier()
		marchgen.ResetCache()
	})
	marchgen.ResetCache()
}

// startReplica runs a Server on a pre-allocated listener.
func startReplica(t *testing.T, cfg Config, ln net.Listener) *Server {
	t.Helper()
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = -1
	}
	s := New(cfg)
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		_ = hs.Close()
	})
	return s
}

// TestPeerMemoAdoption is the cold-replica satellite lock: a replica
// whose memo cache is stone cold, fetching a key warm on a peer, must
// serve the byte-identical result with zero engine runs — and, having
// adopted the bytes locally, keep serving it after the peer dies.
func TestPeerMemoAdoption(t *testing.T) {
	resetClusterGlobals(t)
	const list = "SAF,TF,ADF"

	lnA := listen(t)
	addrA := lnA.Addr().String()
	startReplica(t, Config{Self: addrA, Peers: []string{addrA, deadAddr(t)}}, lnA)

	// Warm replica A over HTTP.
	resp, raw := post(t, "http://"+addrA+"/v1/generate", GenerateRequest{Faults: list})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d: %s", resp.StatusCode, raw)
	}
	var warm GenerateResponse
	if err := json.Unmarshal(raw, &warm); err != nil {
		t.Fatal(err)
	}

	// The cold side: its own memo cache (nothing shared with A's
	// process-global one) whose only second tier is the peer fetch.
	runB := obs.NewRun()
	clB := cluster.New(cluster.Config{
		Self:  "127.0.0.1:1", // no server here; A is the only live peer
		Peers: []string{"127.0.0.1:1", addrA},
		Obs:   runB,
	})
	defer clB.Close()
	localB := newClusterMemTier()
	cacheB := memo.New(0)
	cacheB.AttachDisk(cluster.NewPeerTier(localB, clB), core.Codec())

	models, err := fault.ParseList(list)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Cache = cacheB
	opts.Obs = runB
	res, err := core.GenerateCtx(context.Background(), models, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCache {
		t.Fatal("cold replica did not serve from the peer-fetched memo entry")
	}
	if got := res.Test.String(); got != warm.Test {
		t.Fatalf("cold replica produced %q, peer produced %q", got, warm.Test)
	}
	snap := runB.Snapshot()
	if snap["sim.evaluations"] != 0 || snap["atsp.enum.nodes"] != 0 {
		t.Fatalf("cold replica ran the engine: sim.evaluations=%d atsp.enum.nodes=%d",
			snap["sim.evaluations"], snap["atsp.enum.nodes"])
	}
	if snap["memo.result_hits"] != 1 {
		t.Fatalf("memo.result_hits = %d, want 1 (metrics %v)", snap["memo.result_hits"], snap)
	}
	if snap["cluster.fetch.hits"] == 0 || snap["cluster.adopted"] == 0 {
		t.Fatalf("peer fetch not exercised: fetch.hits=%d adopted=%d",
			snap["cluster.fetch.hits"], snap["cluster.adopted"])
	}
	if localB.len() == 0 {
		t.Fatal("peer hit was not adopted into the local tier")
	}

	// Kill the peer. A fresh in-memory cache over the same local tier
	// must still serve the result — the adoption made it durable here.
	lnA.Close()
	runB2 := obs.NewRun()
	cacheB2 := memo.New(0)
	cacheB2.AttachDisk(cluster.NewPeerTier(localB, clB), core.Codec())
	opts2 := core.DefaultOptions()
	opts2.Cache = cacheB2
	opts2.Obs = runB2
	res2, err := core.GenerateCtx(context.Background(), models, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.FromCache || res2.Test.String() != warm.Test {
		t.Fatalf("after peer death: FromCache=%v test=%q, want cached %q",
			res2.FromCache, res2.Test, warm.Test)
	}
	if snap2 := runB2.Snapshot(); snap2["sim.evaluations"] != 0 {
		t.Fatalf("post-death serve ran the engine: %v", snap2)
	}
}

// TestForwardOrServe locks the routing mechanism: the same request sent
// to either replica of a two-replica set succeeds, reports the same
// serving replica (the ring owner), and exactly one of the two entry
// points forwarded.
func TestForwardOrServe(t *testing.T) {
	resetClusterGlobals(t)
	lnA, lnB := listen(t), listen(t)
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()
	peers := []string{addrA, addrB}
	sA := startReplica(t, Config{Self: addrA, Peers: peers}, lnA)
	sB := startReplica(t, Config{Self: addrB, Peers: peers}, lnB)

	req := GenerateRequest{Faults: "SAF,TF"}
	respA, rawA := post(t, "http://"+addrA+"/v1/generate", req)
	respB, rawB := post(t, "http://"+addrB+"/v1/generate", req)
	if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d / %d: %s / %s", respA.StatusCode, respB.StatusCode, rawA, rawB)
	}
	servedA := respA.Header.Get(cluster.ServedByHeader)
	servedB := respB.Header.Get(cluster.ServedByHeader)
	if servedA == "" || servedA != servedB {
		t.Fatalf("served-by %q / %q, want the same owner from both entry points", servedA, servedB)
	}
	if servedA != addrA && servedA != addrB {
		t.Fatalf("served-by %q is not a replica address", servedA)
	}
	var outA, outB GenerateResponse
	if err := json.Unmarshal(rawA, &outA); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawB, &outB); err != nil {
		t.Fatal(err)
	}
	if outA.Test == "" || outA.Test != outB.Test {
		t.Fatalf("tests differ across entry points: %q vs %q", outA.Test, outB.Test)
	}
	forwards := sA.run.Snapshot()["serve.cluster.forwarded"] + sB.run.Snapshot()["serve.cluster.forwarded"]
	if forwards != 1 {
		t.Fatalf("total forwards = %d, want exactly 1 (one entry point owns the key)", forwards)
	}
}

// TestSweepShardEndpoint locks the internal shard executor's contract:
// a valid shard answers 200 with the echoed range and per-selection
// candidate streams; an out-of-range shard is a 400 usage error; a
// server outside any replica set answers 503.
func TestSweepShardEndpoint(t *testing.T) {
	resetClusterGlobals(t)
	_, ts := newTestServer(t, Config{Self: "127.0.0.1:9", Peers: []string{"127.0.0.1:9", deadAddr(t)}})

	resp, raw := post(t, ts.URL+cluster.SweepPath, ShardRequest{Faults: "SAF,TF,ADF", Lo: 0, Hi: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out core.ShardOutcome
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Shard.Lo != 0 || out.Shard.Hi != 4 {
		t.Fatalf("echoed shard [%d,%d), want [0,4)", out.Shard.Lo, out.Shard.Hi)
	}
	if len(out.Selections) == 0 {
		t.Fatalf("no selections in shard outcome: %s", raw)
	}
	for _, sel := range out.Selections {
		if sel.Sig == "" || sel.Nodes == 0 {
			t.Fatalf("malformed selection %+v", sel)
		}
	}

	resp, raw = post(t, ts.URL+cluster.SweepPath, ShardRequest{Faults: "SAF,TF,ADF", Lo: 0, Hi: 100000})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range shard: status %d, want 400: %s", resp.StatusCode, raw)
	}

	_, plain := newTestServer(t, Config{})
	resp, raw = post(t, plain.URL+cluster.SweepPath, ShardRequest{Faults: "SAF", Lo: 0, Hi: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("single-node sweep: status %d, want 503: %s", resp.StatusCode, raw)
	}
}

// TestMemoEndpoints locks the internal memo endpoints: key validation,
// clean 404 misses, rejection of undecodable offers, and a full
// offer-then-fetch round trip through the shared cache.
func TestMemoEndpoints(t *testing.T) {
	resetClusterGlobals(t)
	_, ts := newTestServer(t, Config{Self: "127.0.0.1:9", Peers: []string{"127.0.0.1:9", deadAddr(t)}})
	key := strings.Repeat("ab12", 16) // 64 hex chars

	get := func(k string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + cluster.MemoPathPrefix + k)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}
	put := func(k string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+cluster.MemoPathPrefix+k, "application/octet-stream", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp, _ := get("not-a-key"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key GET: %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(strings.Repeat("A", 64)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("uppercase key GET: %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(key); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key GET: %d, want 404", resp.StatusCode)
	}
	if resp := put(key, []byte("not an encoded entry")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage PUT: %d, want 400", resp.StatusCode)
	}

	entry, ok := core.Codec().Encode(true) // a verdict entry
	if !ok {
		t.Fatal("codec cannot encode a verdict")
	}
	if resp := put(key, entry); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("verdict PUT: %d, want 204", resp.StatusCode)
	}
	resp, body := get(key)
	if resp.StatusCode != http.StatusOK || string(body) != string(entry) {
		t.Fatalf("round trip: status %d body %q, want the offered bytes back", resp.StatusCode, body)
	}
}

// TestSolverField locks the request-level solver selection: invalid
// modes are usage errors, and a warm-mode request returns the same test
// as the default mode (the cross-mode identity the replica tier needs).
func TestSolverField(t *testing.T) {
	marchgen.ResetCache()
	_, ts := newTestServer(t, Config{})
	resp, raw := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: "SAF", Solver: "annealing"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus solver: status %d, want 400: %s", resp.StatusCode, raw)
	}

	_, rawDefault := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: "SAF,TF"})
	resp, rawWarm := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: "SAF,TF", Solver: "warm"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solver: status %d: %s", resp.StatusCode, rawWarm)
	}
	var def, warm GenerateResponse
	if err := json.Unmarshal(rawDefault, &def); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawWarm, &warm); err != nil {
		t.Fatal(err)
	}
	if def.Test == "" || def.Test != warm.Test {
		t.Fatalf("warm mode produced %q, default %q — modes must agree", warm.Test, def.Test)
	}
}

// TestDistributedServeByteIdentical is the serve-layer half of the
// tentpole's acceptance: a 3-replica set answering a warm-mode request
// (whose sweep distributes across the set) returns exactly the test a
// single-process run produces.
func TestDistributedServeByteIdentical(t *testing.T) {
	resetClusterGlobals(t)
	const list = "SAF,TF,ADF,CFin"
	want := func() string {
		models, err := fault.ParseList(list)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.Cache = memo.New(0) // isolated: no help from the replicas' shared cache
		res, err := core.GenerateCtx(context.Background(), models, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Test.String()
	}()

	lns := []net.Listener{listen(t), listen(t), listen(t)}
	peers := make([]string, len(lns))
	for i, ln := range lns {
		peers[i] = ln.Addr().String()
	}
	servers := make([]*Server, len(lns))
	for i, ln := range lns {
		servers[i] = startReplica(t, Config{Self: peers[i], Peers: peers, SolverMode: marchgen.SolverWarm}, ln)
	}

	resp, raw := post(t, "http://"+peers[0]+"/v1/generate", GenerateRequest{Faults: list})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out GenerateResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Test != want {
		t.Fatalf("replica set produced %q, single process %q", out.Test, want)
	}
	var shardsServed, distributed int64
	for _, s := range servers {
		snap := s.run.Snapshot()
		shardsServed += snap["serve.cluster.shards_served"]
		distributed += snap["core.sweep.distributed"]
	}
	if distributed != 1 {
		t.Fatalf("core.sweep.distributed total = %d, want 1", distributed)
	}
	if shardsServed == 0 {
		t.Fatal("no replica served a remote shard — the sweep never left the coordinator")
	}
}
