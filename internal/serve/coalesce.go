package serve

import (
	"context"
	"sync"

	"marchgen"
	"marchgen/internal/budget"
	"marchgen/internal/obs"
)

// call is one in-flight coalesced engine run. The leader (the first
// request to present a key) owns the run; every later identical request
// joins as a follower and shares the result bytes. The run executes
// under a context detached from any single request: it is canceled only
// when the reference count — every request still waiting on the call —
// drops to zero, so one impatient caller can never abort a run that
// others still want.
type call struct {
	key  string
	done chan struct{}

	// res/err are written once, before done is closed.
	res *marchgen.Result
	err error

	mu     sync.Mutex
	refs   int
	cancel context.CancelFunc
	// runCtx is the detached engine context the leader executes under.
	runCtx context.Context
}

// leave drops one waiter; the last one out cancels the engine run (a
// no-op when the run already finished).
func (c *call) leave() {
	c.mu.Lock()
	c.refs--
	last := c.refs == 0
	c.mu.Unlock()
	if last {
		c.cancel()
	}
}

// group coalesces identical generate requests by content-addressed key —
// singleflight with joinable cancellation.
type group struct {
	mu    sync.Mutex
	calls map[string]*call

	coalesced *obs.Counter
	runs      *obs.Counter
}

func newGroup(run *obs.Run) *group {
	return &group{
		calls:     map[string]*call{},
		coalesced: run.Counter("serve.coalesced"),
		runs:      run.Counter("serve.engine_runs"),
	}
}

// join returns the in-flight call for key — creating it, as leader, when
// none exists. The bool reports whether the caller is a follower
// (coalesced). The leader must arrange for run(runCtx) to execute and
// complete the call; followers only wait.
func (g *group) join(key string, newRunCtx func() (context.Context, context.CancelFunc)) (c *call, coalesced bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		c.mu.Lock()
		c.refs++
		c.mu.Unlock()
		g.coalesced.Inc()
		return c, true
	}
	ctx, cancel := newRunCtx()
	c = &call{key: key, done: make(chan struct{}), refs: 1, cancel: cancel, runCtx: ctx}
	g.calls[key] = c
	return c, false
}

// complete publishes the result, removes the call from the group (so the
// next identical request starts fresh — typically a warm memo-cache hit)
// and releases the run's cancel resources.
func (g *group) complete(c *call, res *marchgen.Result, err error) {
	c.res, c.err = res, err
	g.mu.Lock()
	delete(g.calls, c.key)
	g.mu.Unlock()
	close(c.done)
	c.cancel() // release the context's timer; harmless after completion
}

// wait blocks until the call completes or ctx (the waiter's own request
// context) is done; either way the waiter's reference is released. The
// error of an abandoned wait is the request context's, mapped to the
// typed taxonomy.
func (c *call) wait(ctx context.Context) (*marchgen.Result, error) {
	select {
	case <-c.done:
		return c.res, c.err
	case <-ctx.Done():
		c.leave()
		return nil, budget.CtxErr(ctx)
	}
}
