package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"marchgen"
	"marchgen/march"
)

// fiveFaults is the Table 3 headline list — expensive enough cold
// (~100ms+) that concurrent requests reliably overlap in flight.
const fiveFaults = "SAF,TF,ADF,CFin,CFid"

// newTestServer builds a Server (batching disabled unless the test
// enables it) behind an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	s, ts, _ := newGatedServer(t, cfg, false)
	return s, ts
}

// newGatedServer additionally installs the leader gate (before the
// listener exists, so no handler can observe a half-written field) when
// gated is true.
func newGatedServer(t *testing.T, cfg Config, gated bool) (*Server, *httptest.Server, chan struct{}) {
	t.Helper()
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = -1 // deterministic: no batching unless asked
	}
	s := New(cfg)
	var gate chan struct{}
	if gated {
		gate = make(chan struct{})
		s.testLeaderGate = gate
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, gate
}

// post sends a JSON body and returns the response with its raw bytes.
func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// metric polls the server's metric snapshot until name reaches at least
// want, failing the test after a generous deadline.
func waitMetric(t *testing.T, s *Server, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := s.run.Snapshot()[name]; got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never reached %d (snapshot: %v)", name, want, s.run.Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestGenerateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: "SAF"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got GenerateResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Complexity != 4 {
		t.Fatalf("SAF generated %dn, want 4n: %s", got.Complexity, got.Test)
	}
	if got.Test == "" || got.ASCII == "" || got.RequestID == "" {
		t.Fatalf("incomplete response: %s", raw)
	}
	// The wire test must parse back and verify complete, like the CLI path.
	parsed, err := march.Parse(got.Test)
	if err != nil {
		t.Fatalf("served test does not parse: %v", err)
	}
	rep, err := marchgen.Verify(parsed, "SAF")
	if err != nil || !rep.Complete {
		t.Fatalf("served test does not verify complete: %v", err)
	}
}

// TestCoalescing is the acceptance check: 8 concurrent identical
// generate requests perform exactly one engine run and return
// byte-identical March tests. The leader gate holds the engine until
// every follower has joined, so the assertion is deterministic.
func TestCoalescing(t *testing.T) {
	marchgen.ResetCache()
	s, ts, gate := newGatedServer(t, Config{MaxInFlight: 2}, true)

	const n = 8
	var wg sync.WaitGroup
	statuses := make([]int, n)
	tests := make([]string, n)
	bodies := make([]GenerateResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: fiveFaults})
			statuses[i] = resp.StatusCode
			if err := json.Unmarshal(raw, &bodies[i]); err != nil {
				t.Errorf("req %d: %v", i, err)
			}
			tests[i] = bodies[i].Test
		}(i)
	}
	// All 8 present: 1 leader holding the gate + 7 coalesced followers.
	waitMetric(t, s, "serve.coalesced", n-1)
	close(gate)
	wg.Wait()

	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("request %d: status %d", i, st)
		}
		if tests[i] != tests[0] {
			t.Fatalf("request %d returned a different test:\n%s\nvs\n%s", i, tests[i], tests[0])
		}
		if bodies[i].Complexity != 10 {
			t.Fatalf("request %d: complexity %d, want 10", i, bodies[i].Complexity)
		}
	}
	snap := s.run.Snapshot()
	if snap["serve.engine_runs"] != 1 {
		t.Fatalf("engine_runs = %d, want exactly 1", snap["serve.engine_runs"])
	}
	coal := 0
	for _, b := range bodies {
		if b.Coalesced {
			coal++
		}
	}
	if coal != n-1 {
		t.Fatalf("%d responses marked coalesced, want %d", coal, n-1)
	}
}

// TestShedOnOverload fills the admission window and asserts the next
// request is shed with 503 + Retry-After, while the admitted requests
// still complete.
func TestShedOnOverload(t *testing.T) {
	s, ts, gate := newGatedServer(t, Config{MaxInFlight: 1, QueueDepth: 1}, true)

	var wg sync.WaitGroup
	admitted := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct fault lists: two separate leaders occupying the window.
			resp, _ := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: fmt.Sprintf("SAF,TF%s", strings.Repeat(",ADF", i))})
			admitted[i] = resp.StatusCode
		}(i)
	}
	waitMetric(t, s, "serve.admitted", 2)

	resp, raw := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: "CFin"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload status %d, want 503: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Code != "overloaded" {
		t.Fatalf("shed body: %s", raw)
	}

	close(gate)
	wg.Wait()
	for i, st := range admitted {
		if st != http.StatusOK {
			t.Fatalf("admitted request %d: status %d", i, st)
		}
	}
	if s.run.Snapshot()["serve.shed"] < 1 {
		t.Fatal("shed counter not incremented")
	}
}

// TestMidRequestCancellation cancels the only interested client while
// the leader holds the gate; the refcount hits zero, the engine context
// is canceled, and the run aborts with ErrCanceled instead of running.
func TestMidRequestCancellation(t *testing.T) {
	marchgen.ResetCache()
	s, ts, gate := newGatedServer(t, Config{}, true)

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(GenerateRequest{Faults: fiveFaults})
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	waitMetric(t, s, "serve.admitted", 1)
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("canceled request returned without error")
	}
	close(gate)
	// The abandoned engine run must observe its canceled context and
	// complete (the handler's canceled counter is best-effort since the
	// client is gone; the engine-side completion is the invariant).
	waitMetric(t, s, "serve.engine_runs", 1)
	waitMetric(t, s, "serve.generate.errors.canceled", 1)
}

// TestGracefulDrain flips the server to draining with one request in
// flight: readyz and new work return 503, the in-flight request
// completes, and Drain returns.
func TestGracefulDrain(t *testing.T) {
	s, ts, gate := newGatedServer(t, Config{}, true)

	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: "SAF,TF"})
		done <- resp.StatusCode
	}()
	waitMetric(t, s, "serve.admitted", 1)

	s.BeginDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status %d, want 503", resp.StatusCode)
	}
	shedResp, _ := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: "SAF"})
	if shedResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining generate status %d, want 503", shedResp.StatusCode)
	}
	if shedResp.Header.Get("Retry-After") == "" {
		t.Fatal("draining shed without Retry-After")
	}

	close(gate)
	if st := <-done; st != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestBatchOverlap enables a wide batch window and checks that two
// leaders with overlapping fault models are grouped onto one permit.
func TestBatchOverlap(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchWindow: 150 * time.Millisecond})
	var wg sync.WaitGroup
	for _, f := range []string{"SAF,TF", "TF,ADF"} { // overlap: TF
		wg.Add(1)
		go func(f string) {
			defer wg.Done()
			resp, raw := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: f})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d: %s", f, resp.StatusCode, raw)
			}
		}(f)
	}
	wg.Wait()
	snap := s.run.Snapshot()
	if snap["serve.batch.grouped"] != 2 {
		t.Fatalf("batch.grouped = %d, want 2 (snapshot %v)", snap["serve.batch.grouped"], snap)
	}
	if snap["serve.batch.size.max"] != 2 {
		t.Fatalf("batch.size.max = %d, want 2", snap["serve.batch.size.max"])
	}
}

func TestGroupByOverlap(t *testing.T) {
	mk := func(models ...string) *batchItem { return &batchItem{models: models} }
	items := []*batchItem{mk("SAF", "TF"), mk("CFin"), mk("TF", "ADF"), mk("CFid")}
	groups := groupByOverlap(items)
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	if len(groups[0]) != 2 || groups[0][0] != items[0] || groups[0][1] != items[2] {
		t.Fatalf("overlap group wrong: %v", groups[0])
	}
}

// TestDeadlineExceeded asserts the 504 mapping: a cold expensive run
// under a 1ms hard deadline aborts with deadline_exceeded.
func TestDeadlineExceeded(t *testing.T) {
	marchgen.ResetCache()
	_, ts := newTestServer(t, Config{})
	resp, raw := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: fiveFaults, TimeoutMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, raw)
	}
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Code != "deadline_exceeded" {
		t.Fatalf("body: %s", raw)
	}
}

func TestVerifyAndSimulateEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, raw := post(t, ts.URL+"/v1/verify", VerifyRequest{Known: "MATS+", Faults: "SAF,TF"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status %d: %s", resp.StatusCode, raw)
	}
	var rep VerifyResponse
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatal("MATS+ must not cover TF completely")
	}
	if len(rep.Missed) == 0 || len(rep.Instances) == 0 {
		t.Fatalf("verify response incomplete: %s", raw)
	}

	resp, raw = post(t, ts.URL+"/v1/simulate", VerifyRequest{Known: "MarchC-", Faults: "SAF,TF", Cells: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d: %s", resp.StatusCode, raw)
	}
	var sim VerifyResponse
	if err := json.Unmarshal(raw, &sim); err != nil {
		t.Fatal(err)
	}
	if !sim.Complete || sim.Cells != 8 {
		t.Fatalf("MarchC- 8-cell simulate: complete=%v cells=%d: %s", sim.Complete, sim.Cells, raw)
	}
}

func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		path   string
		body   any
		status int
		code   string
	}{
		{"unknown fault", "/v1/generate", GenerateRequest{Faults: "NOPE"}, 400, "bad_request"},
		{"empty faults", "/v1/generate", GenerateRequest{}, 400, "bad_request"},
		{"bad budget", "/v1/generate", GenerateRequest{Faults: "SAF", Budget: "nodes=0"}, 400, "usage"},
		{"negative workers", "/v1/generate", GenerateRequest{Faults: "SAF", Workers: -1}, 400, "usage"},
		{"negative timeout", "/v1/generate", GenerateRequest{Faults: "SAF", TimeoutMS: -5}, 400, "usage"},
		{"unknown field", "/v1/generate", map[string]any{"faults": "SAF", "bogus": 1}, 400, "bad_request"},
		{"unknown known", "/v1/verify", VerifyRequest{Known: "MarchZ", Faults: "SAF"}, 400, "bad_request"},
		{"test and known", "/v1/verify", VerifyRequest{Known: "MATS+", Test: "{ ⇕(w0) }", Faults: "SAF"}, 400, "bad_request"},
		{"bad cells", "/v1/simulate", VerifyRequest{Known: "MATS+", Faults: "SAF", Cells: 1}, 400, "usage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := post(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, raw)
			}
			var e ErrorResponse
			if err := json.Unmarshal(raw, &e); err != nil || e.Code != tc.code {
				t.Fatalf("code %q, want %q: %s", e.Code, tc.code, raw)
			}
		})
	}
}

func TestHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
	post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: "SAF"})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap map[string]int64
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics not a flat int64 map: %v: %s", err, raw)
	}
	for _, key := range []string{"serve.generate.requests", "serve.admitted", "serve.engine_runs", "memo.shared.entries", "serve.uptime_us"} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("metrics missing %q: %s", key, raw)
		}
	}
}

// TestNoGoroutineLeaks exercises the coalescing, cancellation and drain
// machinery and then insists the goroutine count settles back — the
// -race CI job turns any stragglers into failures here.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		marchgen.ResetCache()
		s, ts := newTestServer(t, Config{MaxInFlight: 2})
		var wg sync.WaitGroup
		for i := 0; i < 12; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: "SAF,TF"})
			}(i)
		}
		wg.Wait()
		s.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		ts.Close()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
