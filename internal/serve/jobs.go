package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"marchgen"
	"marchgen/fault"
	"marchgen/internal/jobs"
	"marchgen/internal/memo"
	"marchgen/internal/obs"
)

// JobSubmitRequest is the body of POST /v1/jobs: a kind selector plus the
// matching sub-request (the same schemas as the synchronous endpoints).
// Exactly the field named by Kind must be set.
type JobSubmitRequest struct {
	// Kind is "generate", "verify" or "simulate".
	Kind     string           `json:"kind"`
	Generate *GenerateRequest `json:"generate,omitempty"`
	Verify   *VerifyRequest   `json:"verify,omitempty"`
	Simulate *VerifyRequest   `json:"simulate,omitempty"`
}

// JobStatusResponse is the body of POST /v1/jobs and GET /v1/jobs/{id}:
// the durable job record, plus the committed result document once the job
// is done. Fields mirror jobs.Record; Result is only present on done
// jobs (a JobGenerateResult or JobVerifyResult by Kind).
type JobStatusResponse struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	State       string          `json:"state"`
	Stage       string          `json:"stage,omitempty"`
	Checkpoints int             `json:"checkpoints"`
	Resumes     int             `json:"resumes,omitempty"`
	ResultHash  string          `json:"result_hash,omitempty"`
	Error       *jobs.JobError  `json:"error,omitempty"`
	CreatedAt   time.Time       `json:"created_at"`
	UpdatedAt   time.Time       `json:"updated_at"`
	Result      json.RawMessage `json:"result,omitempty"`
	// Progress is the latest engine progress snapshot, present only
	// while the job is running in this process.
	Progress *obs.ProgressSnapshot `json:"progress,omitempty"`
}

// JobGenerateResult is the canonical durable result document of a
// generate job. It deliberately excludes every volatile field of the
// synchronous GenerateResponse (request id, elapsed time, coalescing and
// cache provenance): the remaining fields are pure functions of the
// request, so an interrupted-and-resumed job commits byte-identical
// result documents — the invariant the chaos harness hashes.
type JobGenerateResult struct {
	Test           string   `json:"test"`
	ASCII          string   `json:"ascii"`
	Complexity     int      `json:"complexity"`
	Instances      int      `json:"instances"`
	Degraded       bool     `json:"degraded,omitempty"`
	DegradedStages []string `json:"degraded_stages,omitempty"`
}

// JobVerifyResult is the canonical durable result document of a verify
// or simulate job (volatile fields excluded, as on JobGenerateResult).
type JobVerifyResult struct {
	Test           string            `json:"test"`
	Complexity     int               `json:"complexity"`
	Complete       bool              `json:"complete"`
	Missed         []string          `json:"missed,omitempty"`
	NonRedundant   bool              `json:"non_redundant,omitempty"`
	RedundantReads []int             `json:"redundant_reads,omitempty"`
	RemovableOps   []int             `json:"removable_ops,omitempty"`
	Cells          int               `json:"cells,omitempty"`
	Instances      []InstanceVerdict `json:"instances"`
}

// jobsDisabled rejects job-API calls on a server started without a
// durable store.
func (s *Server) jobsDisabled(w http.ResponseWriter, r *http.Request) bool {
	if s.jobs != nil {
		return false
	}
	writeError(w, r, http.StatusServiceUnavailable, "jobs_disabled",
		"durable job store not configured (start the server with -store)")
	return true
}

// handleJobSubmit serves POST /v1/jobs: validate → canonical content key
// → idempotent durable submission. 202 marks a newly started job, 200 a
// join of an existing one (including an already-finished cache hit).
// Submissions are shed while draining; status and event reads are not.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	sp := s.run.Start("serve/jobs.submit")
	defer sp.End()
	s.run.Counter("serve.jobs.requests").Inc()
	if s.jobsDisabled(w, r) {
		sp.SetStr("outcome", "disabled")
		return
	}
	if s.draining.Load() {
		sp.SetStr("outcome", "shed")
		s.shed(w, "server is draining")
		return
	}
	var req JobSubmitRequest
	if err := decodeBody(w, r, &req); err != nil {
		sp.SetStr("outcome", "bad_request")
		writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	key, canonical, status, code, msg := s.canonicalJob(&req)
	if code != "" {
		sp.SetStr("outcome", code)
		writeError(w, r, status, code, msg)
		return
	}
	j, created, err := s.jobs.Submit(req.Kind, key, canonical)
	switch {
	case errors.Is(err, jobs.ErrClosed):
		sp.SetStr("outcome", "shed")
		s.shed(w, "server is draining")
		return
	case err != nil:
		sp.SetStr("outcome", "store_io")
		s.run.Counter("serve.jobs.errors.store_io").Inc()
		writeError(w, r, http.StatusInternalServerError, "store_io", err.Error())
		return
	}
	sp.SetStr("id", j.ID()).SetInt("created", boolInt(created))
	st := http.StatusOK
	if created {
		st = http.StatusAccepted
		s.run.Counter("serve.jobs.created").Inc()
	}
	writeJSON(w, st, s.jobBody(j.Snapshot(), false))
}

// handleJobGet serves GET /v1/jobs/{id}: the durable record, with the
// result document embedded once the job is done and the live progress
// snapshot while the job is still running here. Works during drain.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if s.jobsDisabled(w, r) {
		return
	}
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, "job_not_found", fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	body := s.jobBody(j.Snapshot(), true)
	if snap, ok := j.Progress(); ok {
		body.Progress = &snap
	}
	writeJSON(w, http.StatusOK, body)
}

// handleJobEvents serves GET /v1/jobs/{id}/events as Server-Sent Events:
// the job's retained event history replays first (with ids, so
// reconnecting clients see a coherent sequence), then live progress and
// state events stream until the job ends, closing with one "summary"
// frame carrying the final record. A finished job streams its history
// and the summary immediately. A reconnecting client that presents the
// standard Last-Event-ID header skips the replayed events it already
// consumed — the live channel is registered under the same lock that
// copies the ring, so the resumed sequence has no duplicates or gaps
// (within the ring's retention).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if s.jobsDisabled(w, r) {
		return
	}
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, "job_not_found", fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, "internal", "response writer does not support streaming")
		return
	}
	s.run.Counter("serve.jobs.streams").Inc()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// Reconnect hint for EventSource clients, matching the shed hint.
	fmt.Fprintf(w, "retry: %d\n\n", s.cfg.RetryAfter.Milliseconds())

	lastID := -1
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			lastID = n
		}
	}
	past, ch, cancel := j.Subscribe()
	defer cancel()
	send := func(ev jobs.Event) {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	}
	for _, ev := range past {
		if ev.Seq <= lastID {
			continue
		}
		send(ev)
	}
	fl.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// The job ended (or this process stopped running it):
				// finish the stream with the final record.
				if data, err := json.Marshal(s.jobBody(j.Snapshot(), false)); err == nil {
					fmt.Fprintf(w, "event: summary\ndata: %s\n\n", data)
				}
				fl.Flush()
				return
			}
			send(ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// jobBody renders a record as its wire form, embedding the durable
// result document when asked and available.
func (s *Server) jobBody(rec jobs.Record, includeResult bool) JobStatusResponse {
	resp := JobStatusResponse{
		ID:          rec.ID,
		Kind:        rec.Kind,
		State:       string(rec.State),
		Stage:       rec.Stage,
		Checkpoints: rec.Checkpoints,
		Resumes:     rec.Resumes,
		ResultHash:  rec.ResultHash,
		Error:       rec.Error,
		CreatedAt:   rec.CreatedAt,
		UpdatedAt:   rec.UpdatedAt,
	}
	if includeResult && rec.State == jobs.StateDone {
		if data, err := s.store.Get(jobs.NSResults, rec.Key); err == nil {
			resp.Result = data
		}
	}
	return resp
}

// canonicalJob validates a submission and produces its content-addressed
// key plus the canonical request bytes the job record stores. The key
// discipline matches the synchronous endpoints (generate jobs share
// generateKey, so a job and a coalesced sync request address the same
// content); a non-empty code reports a validation failure.
func (s *Server) canonicalJob(req *JobSubmitRequest) (key string, canonical json.RawMessage, status int, code, msg string) {
	fail := func(st int, c, m string) (string, json.RawMessage, int, string, string) {
		return "", nil, st, c, m
	}
	set := 0
	for _, p := range []bool{req.Generate != nil, req.Verify != nil, req.Simulate != nil} {
		if p {
			set++
		}
	}
	if set != 1 {
		return fail(http.StatusBadRequest, "bad_request", `set exactly one of "generate", "verify" and "simulate"`)
	}
	switch req.Kind {
	case "generate":
		g := req.Generate
		if g == nil {
			return fail(http.StatusBadRequest, "bad_request", `kind "generate" requires the "generate" request`)
		}
		models, err := fault.ParseList(g.Faults)
		if err != nil {
			return fail(http.StatusBadRequest, "bad_request", err.Error())
		}
		if g.Workers < 0 || g.SelectionLimit < 0 {
			return fail(http.StatusBadRequest, "usage", "workers and selection_limit must be non-negative")
		}
		if g.TimeoutMS < 0 {
			return fail(http.StatusBadRequest, "usage", "timeout_ms must be non-negative")
		}
		if g.Budget != "" {
			if _, err := marchgen.ParseBudget(g.Budget); err != nil {
				return fail(http.StatusBadRequest, "usage", err.Error())
			}
		}
		key = generateKey(fault.Key(fault.Instances(models)), g)
	case "verify", "simulate":
		v := req.Verify
		ncell := req.Kind == "simulate"
		if ncell {
			v = req.Simulate
		}
		if v == nil {
			return fail(http.StatusBadRequest, "bad_request", fmt.Sprintf("kind %q requires the %q request", req.Kind, req.Kind))
		}
		test, err := parseTest(v)
		if err != nil {
			return fail(http.StatusBadRequest, "bad_request", err.Error())
		}
		if _, err := fault.ParseList(v.Faults); err != nil {
			return fail(http.StatusBadRequest, "bad_request", err.Error())
		}
		if v.Workers < 0 || v.TimeoutMS < 0 {
			return fail(http.StatusBadRequest, "usage", "workers and timeout_ms must be non-negative")
		}
		cells := v.Cells
		if ncell {
			if cells == 0 {
				cells = 8
			}
			if cells < 2 || cells > 1024 {
				return fail(http.StatusBadRequest, "usage", "cells must be in [2, 1024]")
			}
		} else {
			cells = 0
		}
		// Canonicalise the test text so equivalent notations (ASCII vs
		// conventional, or a Known name) address the same job.
		v.Test, v.Known, v.Cells = test.String(), "", cells
		key = memo.NewFingerprinter("serve/jobs/" + req.Kind).
			Str(test.String()).
			Str(v.Faults).
			Int(cells).
			Int(v.TimeoutMS).
			Key()
	default:
		return fail(http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown job kind %q (want generate, verify or simulate)", req.Kind))
	}
	data, err := json.Marshal(req)
	if err != nil {
		return fail(http.StatusInternalServerError, "internal", err.Error())
	}
	return key, data, 0, "", ""
}

// executeJob is the jobs.Executor behind the server's manager: it takes
// an engine permit (async jobs share the synchronous in-flight window)
// and runs the requested operation, returning the canonical result
// document. ctx carries the per-job observability run, so the engine's
// stage spans drive the job's checkpoints and progress stream.
func (s *Server) executeJob(ctx context.Context, kind string, raw json.RawMessage, run *obs.Run) ([]byte, error) {
	var req JobSubmitRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, fmt.Errorf("%w: corrupt job request: %v", marchgen.ErrInternal, err)
	}
	if err := s.acquire(ctx); err != nil {
		return nil, mapCtxErr(err)
	}
	defer s.release()
	switch kind {
	case "generate":
		return s.execJobGenerate(ctx, req.Generate)
	case "verify":
		return s.execJobCoverage(ctx, req.Verify, false)
	case "simulate":
		return s.execJobCoverage(ctx, req.Simulate, true)
	default:
		return nil, fmt.Errorf("%w: unknown job kind %q", marchgen.ErrInternal, kind)
	}
}

// jobTimeout applies a job's optional hard deadline. Unlike the
// synchronous path there is no default: an async job without timeout_ms
// runs as long as it needs (that is what makes it a job), bounded only by
// any soft budget it carries.
func (s *Server) jobTimeout(ctx context.Context, ms int) (context.Context, context.CancelFunc) {
	if ms <= 0 {
		return ctx, func() {}
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(ctx, d)
}

func (s *Server) execJobGenerate(ctx context.Context, req *GenerateRequest) ([]byte, error) {
	if req == nil {
		return nil, fmt.Errorf("%w: job record missing generate request", marchgen.ErrInternal)
	}
	ctx, cancel := s.jobTimeout(ctx, req.TimeoutMS)
	defer cancel()
	res, err := s.executeGenerate(ctx, req)
	if err != nil {
		return nil, err
	}
	return json.Marshal(JobGenerateResult{
		Test:           res.Test.String(),
		ASCII:          res.Test.ASCII(),
		Complexity:     res.Complexity,
		Instances:      len(res.Instances),
		Degraded:       res.Stats.Degraded,
		DegradedStages: res.Stats.DegradedStages,
	})
}

func (s *Server) execJobCoverage(ctx context.Context, req *VerifyRequest, ncell bool) ([]byte, error) {
	if req == nil {
		return nil, fmt.Errorf("%w: job record missing coverage request", marchgen.ErrInternal)
	}
	test, err := parseTest(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", marchgen.ErrUsage, err)
	}
	ctx, cancel := s.jobTimeout(ctx, req.TimeoutMS)
	defer cancel()
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	var rep *marchgen.CoverageReport
	if ncell {
		rep, err = marchgen.VerifyNWorkersCtx(ctx, test, req.Faults, req.Cells, workers)
	} else {
		rep, err = marchgen.VerifyWorkersCtx(ctx, test, req.Faults, workers)
	}
	if err != nil {
		return nil, err
	}
	out := JobVerifyResult{
		Test:       rep.Test.String(),
		Complexity: rep.Complexity,
		Complete:   rep.Complete,
		Missed:     rep.Missed,
	}
	if ncell {
		out.Cells = req.Cells
	} else {
		out.NonRedundant = rep.NonRedundant
		out.RedundantReads = rep.RedundantReads
		out.RemovableOps = rep.RemovableOps
	}
	for _, inst := range rep.Instances {
		out.Instances = append(out.Instances, InstanceVerdict{
			Model:        inst.Model,
			Name:         inst.Name,
			Detected:     inst.Detected,
			DetectingOps: inst.DetectingOps,
		})
	}
	return json.Marshal(out)
}
