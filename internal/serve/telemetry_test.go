package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"marchgen"
	"marchgen/internal/jobs"
)

// promNameRe is the Prometheus metric-name charset (text format 0.0.4).
var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promFamily is one parsed exposition family: declared type plus the
// samples that followed the TYPE line.
type promFamily struct {
	kind    string
	samples []promSample
}

type promSample struct {
	name  string // full sample name including _bucket/_sum/_count suffix
	le    string // the le label on histogram buckets, "" otherwise
	value int64
}

// parseProm is a strict parser for the subset of the Prometheus text
// format writeProm emits: every sample must follow a TYPE declaration
// of its family, names must be legal, values integral.
func parseProm(t *testing.T, body string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	var cur *promFamily
	var curName string
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{le="([^"]+)"\})? (-?\d+)$`)
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			name, kind := parts[2], parts[3]
			if !promNameRe.MatchString(name) {
				t.Fatalf("line %d: illegal family name %q", ln+1, name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown family kind %q", ln+1, kind)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: duplicate family %q", ln+1, name)
			}
			cur = &promFamily{kind: kind}
			curName = name
			families[name] = cur
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: unparsable sample line %q", ln+1, line)
		}
		if cur == nil {
			t.Fatalf("line %d: sample %q before any TYPE line", ln+1, m[1])
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
		if base != curName {
			t.Fatalf("line %d: sample %q outside its family %q", ln+1, m[1], curName)
		}
		v, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			t.Fatalf("line %d: %v", ln+1, err)
		}
		cur.samples = append(cur.samples, promSample{name: m[1], le: m[2], value: v})
	}
	return families
}

// TestMetricsPrometheusExposition drives one generate request, scrapes
// /metrics as a Prometheus client would, and checks the exposition
// parses, the request counters appear, and every histogram is
// le-cumulative with +Inf equal to _count.
func TestMetricsPrometheusExposition(t *testing.T) {
	marchgen.ResetCache()
	_, ts := newTestServer(t, Config{})
	if resp, raw := post(t, ts.URL+"/v1/generate", GenerateRequest{Faults: "SAF,TF"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: %d %s", resp.StatusCode, raw)
	}

	req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", got)
	}

	families := parseProm(t, string(body))
	for _, want := range []struct{ name, kind string }{
		{"serve_generate_ok", "counter"},
		{"serve_http_generate_requests", "counter"},
		{"serve_http_generate_inflight", "gauge"},
		{"serve_http_generate_latency_us", "histogram"},
		{"serve_active_now", "gauge"},
		{"obs_spans", "counter"},
	} {
		fam, ok := families[want.name]
		if !ok {
			t.Fatalf("exposition missing family %s", want.name)
		}
		if fam.kind != want.kind {
			t.Fatalf("%s kind = %s, want %s", want.name, fam.kind, want.kind)
		}
	}
	if v := families["serve_http_generate_requests"].samples[0].value; v != 1 {
		t.Fatalf("serve_http_generate_requests = %d, want 1", v)
	}
	if v := families["serve_http_generate_inflight"].samples[0].value; v != 0 {
		t.Fatalf("serve_http_generate_inflight = %d, want 0 at rest", v)
	}

	for name, fam := range families {
		if fam.kind != "histogram" {
			continue
		}
		var prev int64 = -1
		var inf, count int64 = -1, -1
		var lastLE int64 = -1
		for _, s := range fam.samples {
			switch {
			case strings.HasSuffix(s.name, "_bucket") && s.le == "+Inf":
				inf = s.value
			case strings.HasSuffix(s.name, "_bucket"):
				le, err := strconv.ParseInt(s.le, 10, 64)
				if err != nil {
					t.Fatalf("%s: non-numeric le %q", name, s.le)
				}
				if le <= lastLE {
					t.Fatalf("%s: le bounds not ascending (%d after %d)", name, le, lastLE)
				}
				lastLE = le
				if s.value < prev {
					t.Fatalf("%s: bucket series not cumulative (%d after %d)", name, s.value, prev)
				}
				prev = s.value
			case strings.HasSuffix(s.name, "_count"):
				count = s.value
			}
		}
		if inf < 0 || count < 0 || inf != count {
			t.Fatalf("%s: +Inf bucket %d != count %d", name, inf, count)
		}
		if inf < prev {
			t.Fatalf("%s: +Inf bucket %d below last bound bucket %d", name, inf, prev)
		}
	}

	// The default (no Accept) stays the flat JSON snapshot, with the
	// same key the CI serve-smoke job greps.
	jresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	jraw, _ := io.ReadAll(jresp.Body)
	jresp.Body.Close()
	var snap map[string]int64
	if err := json.Unmarshal(jraw, &snap); err != nil {
		t.Fatalf("default /metrics is not the JSON snapshot: %v", err)
	}
	for _, key := range []string{"serve.generate.ok", "serve.http.generate.requests", "simd.lane_steps"} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("JSON snapshot missing %s", key)
		}
	}
}

// TestJobsSSEProgressPayload is the end-to-end progress contract: a
// complexity-6 generate job must stream at least one progress event
// whose snapshot carries the incumbent tour cost, the AP lower bound
// and a coverage fraction, with the bound admissible and the fractions
// sane.
func TestJobsSSEProgressPayload(t *testing.T) {
	marchgen.ResetCache()
	_, ts, _ := newStoreServer(t, Config{})
	resp, raw := post(t, ts.URL+"/v1/jobs", JobSubmitRequest{
		Kind: "generate", Generate: &GenerateRequest{Faults: "SAF,TF,ADF,CFin"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub JobStatusResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}

	var rich int
	var lastFraction float64
	for _, ev := range readStream(t, ts.URL+"/v1/jobs/"+sub.ID+"/events", "") {
		if ev.event != "progress" {
			continue
		}
		var parsed jobs.Event
		if err := json.Unmarshal([]byte(ev.data), &parsed); err != nil {
			t.Fatalf("progress payload: %v", err)
		}
		p := parsed.Progress
		if p == nil {
			continue
		}
		if p.Fraction < 0 || p.Fraction > 1 {
			t.Fatalf("fraction %v outside [0,1]", p.Fraction)
		}
		if p.Fraction < lastFraction {
			t.Fatalf("fraction regressed %v -> %v", lastFraction, p.Fraction)
		}
		lastFraction = p.Fraction
		if p.Incumbent > 0 && p.Bound > 0 && p.Bound > p.Incumbent {
			t.Fatalf("bound %d exceeds incumbent %d", p.Bound, p.Incumbent)
		}
		if p.Incumbent > 0 && p.Bound > 0 && p.CoverageFraction > 0 {
			rich++
		}
	}
	if rich == 0 {
		t.Fatal("no progress event carried incumbent, bound and coverage fraction")
	}

	// The job is done; the status body of a terminal job carries no
	// live progress snapshot.
	status := waitJobDone(t, ts.URL, sub.ID)
	if status.Progress != nil {
		t.Fatalf("terminal job still reports progress: %+v", status.Progress)
	}
}

// sseFrame is one parsed Server-Sent-Events frame.
type sseFrame struct {
	id    int // -1 when the frame carried no id
	event string
	data  string
}

// readStream consumes an SSE endpoint to EOF (the server closes after
// the summary frame), optionally presenting a Last-Event-ID header.
func readStream(t *testing.T, url, lastEventID string) []sseFrame {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	var frames []sseFrame
	cur := sseFrame{id: -1}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{id: -1}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames
}

// TestJobsSSEReconnect is the replay-coherence contract: a client that
// reconnects with Last-Event-ID sees exactly the events after that id —
// no duplicates, no gaps, and the terminal state event exactly once.
func TestJobsSSEReconnect(t *testing.T) {
	marchgen.ResetCache()
	_, ts, _ := newStoreServer(t, Config{})
	resp, raw := post(t, ts.URL+"/v1/jobs", JobSubmitRequest{
		Kind: "generate", Generate: &GenerateRequest{Faults: "SAF,TF"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub JobStatusResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, ts.URL, sub.ID)

	url := ts.URL + "/v1/jobs/" + sub.ID + "/events"
	full := readStream(t, url, "")
	var ids []int
	for _, f := range full {
		if f.event == "summary" {
			continue
		}
		if f.id < 0 {
			t.Fatalf("frame %+v carries no id", f)
		}
		ids = append(ids, f.id)
	}
	if len(ids) < 3 {
		t.Fatalf("job produced only %d events, need >= 3 for a meaningful reconnect", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("replay ids not strictly ascending: %v", ids)
		}
	}
	if full[len(full)-1].event != "summary" {
		t.Fatalf("stream did not end with summary: %v", full[len(full)-1])
	}

	// Reconnect from the midpoint: the resumed stream must be exactly
	// the suffix, then one summary.
	cut := ids[len(ids)/2]
	resumed := readStream(t, url, fmt.Sprint(cut))
	var want []int
	for _, id := range ids {
		if id > cut {
			want = append(want, id)
		}
	}
	var got []int
	var summaries, terminal int
	for _, f := range resumed {
		if f.event == "summary" {
			summaries++
			continue
		}
		got = append(got, f.id)
		var ev jobs.Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "state" && (ev.State == jobs.StateDone || ev.State == jobs.StateFailed) {
			terminal++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("resumed ids %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed ids %v, want %v", got, want)
		}
	}
	if summaries != 1 {
		t.Fatalf("resumed stream carried %d summary frames, want 1", summaries)
	}
	if terminal != 1 {
		t.Fatalf("resumed stream carried %d terminal state events, want exactly 1", terminal)
	}

	// A reconnect past the end replays nothing but still summarises.
	tail := readStream(t, url, fmt.Sprint(ids[len(ids)-1]))
	for _, f := range tail {
		if f.event != "summary" {
			t.Fatalf("post-terminal reconnect replayed %+v", f)
		}
	}
}
