package simd

import "sync/atomic"

// Process-wide kernel telemetry. The block and LUT caches are already
// process-wide (an entry compiled by any run serves every run), so the
// matching throughput counters live at the same scope: one atomic add
// per RunTrace call — never per word — keeps them off the hot loop.
// The serving layer exposes them on /metrics so replica capacity
// planning can compare kernel throughput across processes.
var (
	// laneSteps counts simulated lane-steps: one unit is one
	// (instance × initial content) lane advanced one trace position.
	laneSteps atomic.Uint64
	// traceRuns counts RunTrace invocations (one block × one resolution).
	traceRuns atomic.Uint64
)

// Telemetry is a snapshot of the process-wide kernel throughput
// counters.
type Telemetry struct {
	// LaneSteps is the cumulative simulated lane-step count.
	LaneSteps uint64
	// TraceRuns is the cumulative RunTrace call count.
	TraceRuns uint64
}

// ReadTelemetry returns the current process-wide kernel throughput
// counters. Safe for concurrent use.
func ReadTelemetry() Telemetry {
	return Telemetry{
		LaneSteps: laneSteps.Load(),
		TraceRuns: traceRuns.Load(),
	}
}
