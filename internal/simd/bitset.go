package simd

import "math/bits"

// Bitset is a dense little-endian bit vector backed by uint64 words —
// the row representation of the Coverage Matrix's set-covering backend,
// where column membership tests and coverage gains reduce to masked
// popcounts.
type Bitset []uint64

// NewBitset returns a zeroed bitset with capacity for n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountNotIn returns the number of bits set in b but not in other — the
// greedy set-covering gain of row b over the already-covered columns.
func (b Bitset) CountNotIn(other Bitset) int {
	n := 0
	for k, w := range b {
		n += bits.OnesCount64(w &^ other[k])
	}
	return n
}

// OrWith folds other into b (b |= other).
func (b Bitset) OrWith(other Bitset) {
	for k, w := range other {
		b[k] |= w
	}
}

// Clone returns an independent copy of the bitset.
func (b Bitset) Clone() Bitset { return append(Bitset(nil), b...) }
