// Persistence hooks for the LUT cache: the codec that carries compiled
// single-instance LUTs across processes, and the attachment points the
// replica set (internal/cluster via internal/serve) uses to share them.
// A Compiled value is a pure function of its content-addressed key
// (fault.Key of the instance), so — exactly like the engine's tour
// fragments — a peer-fetched LUT is byte-for-byte the table a local
// compile would produce.
package simd

import (
	"encoding/json"

	"marchgen/internal/memo"
	"marchgen/march"
)

// lutPersistVersion tags the on-disk LUT encoding.
const lutPersistVersion = 1

// persistLUT is the wire form of a Compiled: both dense tables, with
// the ternary λ outputs carried as their march.Bit byte values.
type persistLUT struct {
	V    int                             `json:"v"`
	Name string                          `json:"name,omitempty"`
	Next [NumStates][NumInputs]uint8     `json:"next"`
	Out  [NumStates][NumInputs]march.Bit `json:"out"`
}

// lutCodec implements memo.Codec for *Compiled values.
type lutCodec struct{}

// LUTCodec returns the memo.Codec covering compiled single-instance
// LUTs, for attaching durable or peer tiers to the LUT cache.
func LUTCodec() memo.Codec { return lutCodec{} }

// Encode marshals a *Compiled into the versioned wire form; false for
// any other value kind.
func (lutCodec) Encode(val any) ([]byte, bool) {
	c, ok := val.(*Compiled)
	if !ok {
		return nil, false
	}
	data, err := json.Marshal(persistLUT{V: lutPersistVersion, Name: c.Name, Next: c.Next, Out: c.Out})
	if err != nil {
		return nil, false
	}
	return data, true
}

// Decode rebuilds a *Compiled from its wire form; false for bytes that
// are not a current-version LUT encoding.
func (lutCodec) Decode(data []byte) (any, bool) {
	var p persistLUT
	if json.Unmarshal(data, &p) != nil || p.V != lutPersistVersion {
		return nil, false
	}
	return &Compiled{Name: p.Name, Next: p.Next, Out: p.Out}, true
}

// AttachLUTTier installs a second tier (durable, peer, or both layered)
// under the process-wide LUT cache; DetachLUTTier removes it. Compiled
// blocks stay process-local either way — they rebuild in microseconds
// from the shared LUTs.
func AttachLUTTier(t memo.DiskTier) { lutCache.AttachDisk(t, lutCodec{}) }

// DetachLUTTier removes the LUT cache's second tier (tests, shutdown).
func DetachLUTTier() { lutCache.DetachDisk() }

// PeekEncoded returns the encoded bytes of a LUT held in the in-memory
// cache under key, without consulting any attached tier — the lookup
// the replica set's internal memo endpoint performs, where recursing
// into the peer tier would ping-pong between cold replicas.
func PeekEncoded(key string) ([]byte, bool) {
	v, ok := lutCache.Peek(key)
	if !ok {
		return nil, false
	}
	return lutCodec{}.Encode(v)
}

// AdoptEncoded decodes peer-offered LUT bytes and inserts them into the
// in-memory cache without writing back through the tier (they are
// durable wherever they came from). Reports whether the bytes were a
// valid LUT encoding.
func AdoptEncoded(key string, data []byte) bool {
	v, ok := lutCodec{}.Decode(data)
	if !ok {
		return false
	}
	lutCache.Adopt(key, v)
	return true
}
