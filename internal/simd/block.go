package simd

import (
	"fmt"

	"marchgen/fault"
	"marchgen/internal/memo"
	"marchgen/march"
)

// nibbleLSB has the least-significant bit of every 4-bit lane nibble set.
const nibbleLSB = 0x1111111111111111

// target is one edge bundle of a block's transfer function: under the
// owning (input, source state), the lanes in mask move to state to.
type target struct {
	to   uint8
	mask uint64
}

// Block is a batch of up to BlockInstances fault instances compiled into
// word-level transfer and mismatch masks, ready for bit-parallel
// evaluation. Blocks are immutable once built and safe for concurrent
// use.
type Block struct {
	n     int
	lanes uint64 // mask of the active lanes (low 4·n bits)
	// trans[in][s] lists the distinct target states of the lanes
	// currently in state s under input in, with the lane set moving to
	// each one. Most instances behave like the good machine at most
	// points, so the list is short (usually one or two entries).
	trans [NumInputs][NumStates][]target
	// mism[in][s][e] masks the lanes whose read output in state s under
	// (read) input in is a concrete value different from the expected
	// bit e — a guaranteed-observable mismatch.
	mism [NumInputs][NumStates][2]uint64
}

// NewBlock compiles up to BlockInstances machines into one block. The
// lane nibble of machine i is bits 4i..4i+3.
func NewBlock(machines []*Compiled) (*Block, error) {
	if len(machines) == 0 || len(machines) > BlockInstances {
		return nil, fmt.Errorf("simd: block needs 1..%d machines, got %d", BlockInstances, len(machines))
	}
	b := &Block{n: len(machines)}
	b.lanes = ^uint64(0) >> (64 - LanesPerInstance*len(machines))
	for in := 0; in < NumInputs; in++ {
		for s := 0; s < NumStates; s++ {
			for i, m := range machines {
				laneMask := uint64(0xF) << (LanesPerInstance * i)
				to := m.Next[s][in]
				found := false
				for k := range b.trans[in][s] {
					if b.trans[in][s][k].to == to {
						b.trans[in][s][k].mask |= laneMask
						found = true
						break
					}
				}
				if !found {
					b.trans[in][s] = append(b.trans[in][s], target{to: to, mask: laneMask})
				}
				if out := m.Out[s][in]; out.Known() {
					// A known output mismatches the opposite expected bit.
					b.mism[in][s][1-int(out)] |= laneMask
				}
			}
		}
	}
	return b, nil
}

// Instances returns the number of fault instances packed in the block.
func (b *Block) Instances() int { return b.n }

// Lanes returns the mask of the block's active lanes.
func (b *Block) Lanes() uint64 { return b.lanes }

// initPlanes returns the one-hot state planes of the start of a run:
// lane 4i+v of instance i begins in the v-th concrete initial content
// (00, 01, 10, 11 — fsm.ConcreteStates order).
func (b *Block) initPlanes() [NumStates]uint64 {
	var planes [NumStates]uint64
	// StateIndex(00)=0, (01)=1, (10)=3, (11)=4.
	planes[0] = (nibbleLSB << 0) & b.lanes
	planes[1] = (nibbleLSB << 1) & b.lanes
	planes[3] = (nibbleLSB << 2) & b.lanes
	planes[4] = (nibbleLSB << 3) & b.lanes
	return planes
}

// RunTrace evaluates the whole block over one input trace and writes the
// per-position mismatch mask into mism (which must have len(inputs)):
// bit l of mism[k] is set when lane l's machine, started from lane l's
// initial content, returns a concrete value different from the
// fault-free expectation expect[k] at position k. Non-read positions and
// positions with an unknown expectation yield zero. The mismatch of a
// position is computed before the position's own state transition, like
// the scalar engine's Mealy semantics.
func (b *Block) RunTrace(inputs []uint8, expect []march.Bit, mism []uint64) {
	// One telemetry add per trace, not per word: the whole trace's
	// lane-step count lands in the process-wide counters up front.
	laneSteps.Add(uint64(len(inputs)) * uint64(b.n) * LanesPerInstance)
	traceRuns.Add(1)
	planes := b.initPlanes()
	var next [NumStates]uint64
	for k, in := range inputs {
		var mm uint64
		if e := expect[k]; e.Known() {
			ms := &b.mism[in]
			for s := 0; s < NumStates; s++ {
				if w := planes[s]; w != 0 {
					mm |= w & ms[s][e]
				}
			}
		}
		mism[k] = mm
		ts := &b.trans[in]
		next = [NumStates]uint64{}
		for s := 0; s < NumStates; s++ {
			w := planes[s]
			if w == 0 {
				continue
			}
			for _, t := range ts[s] {
				next[t.to] |= w & t.mask
			}
		}
		planes = next
	}
}

// NibbleAll reduces a lane word instance-wise: the result has the low
// bit of nibble i set exactly when all four lanes of instance i are set
// in w. This is the "mismatch for every initial memory content"
// reduction of the guaranteed-detection semantics.
func NibbleAll(w uint64) uint64 {
	return w & (w >> 1) & (w >> 2) & (w >> 3) & nibbleLSB
}

// blockCache memoises compiled blocks across evaluations: the generation
// engine re-validates hundreds of candidate tests against the same fault
// list, and the block masks depend only on the instances. Keys are
// content-addressed (fault.Key), so two lists posing the same instances
// share the compilation regardless of which run posed them.
var blockCache = memo.New(1024)

// blockKey fingerprints one block's instance chunk for the cache.
func blockKey(chunk []fault.Instance) string {
	return memo.NewFingerprinter("simd/block").Str(fault.Key(chunk)).Key()
}

// lutCache memoises single-instance LUT compilations, shared by the
// n-cell engine's Memory (which compiles its placed fault) and by block
// assembly. Keys are content-addressed like the block cache's.
var lutCache = memo.New(2048)

// CompileInstance compiles one fault instance's machine into its dense
// LUTs, reusing the process-wide LUT cache.
func CompileInstance(inst fault.Instance) *Compiled {
	key := memo.NewFingerprinter("simd/lut").Str(fault.Key([]fault.Instance{inst})).Key()
	if v, ok := lutCache.Get(key); ok {
		return v.(*Compiled)
	}
	c := Compile(inst.Machine)
	lutCache.Put(key, c)
	return c
}

// CompiledBlocks partitions a fault-instance list into blocks of
// BlockInstances (in order — block b holds instances 16b..16b+15) and
// compiles each one, reusing the process-wide block cache. It returns
// the blocks plus the cache hit and compile counts of this call, so
// callers can surface the traffic in their metrics.
func CompiledBlocks(instances []fault.Instance) (blocks []*Block, hits, compiles int, err error) {
	for lo := 0; lo < len(instances); lo += BlockInstances {
		hi := lo + BlockInstances
		if hi > len(instances) {
			hi = len(instances)
		}
		chunk := instances[lo:hi]
		key := blockKey(chunk)
		if v, ok := blockCache.Get(key); ok {
			blocks = append(blocks, v.(*Block))
			hits++
			continue
		}
		machines := make([]*Compiled, len(chunk))
		for k := range chunk {
			machines[k] = CompileInstance(chunk[k])
		}
		b, err := NewBlock(machines)
		if err != nil {
			return nil, hits, compiles, err
		}
		blockCache.Put(key, b)
		blocks = append(blocks, b)
		compiles++
	}
	return blocks, hits, compiles, nil
}
