// Package simd is the bit-parallel fault-simulation kernel of the memory
// fault simulator — "simd" as in single-instruction multiple-lane over
// uint64 words, in pure stdlib Go. It accelerates the two hot loops of the
// generation engine (candidate validation and Coverage-Matrix
// construction) without changing a single result bit: the scalar engine in
// package sim remains the reference oracle and the differential tests
// prove byte-identical output.
//
// # Machine compilation
//
// A fault instance's two-cell Mealy machine (and the fault-free machine
// M0) is a pure function of (state, input). The state space is tiny —
// each cell holds 0, 1 or X, so there are 3×3 = 9 states — and the input
// alphabet has 7 symbols (w0i, w1i, w0j, w1j, ri, rj, T). Compile lowers
// the machine's closure-based δ and λ into dense 9×7 lookup tables, so a
// simulation step is an array index instead of a dynamic dispatch through
// deviation matching.
//
// # Lane packing
//
// A Block packs up to 16 fault instances × 4 initial memory contents into
// the 64 lanes of a machine word:
//
//	bit  63 .. 60  59 .. 56   ...   7 .. 4    3 .. 0
//	     ┌────────┬────────┬─────┬────────┬─────────┐
//	     │inst 15 │inst 14 │ ... │ inst 1 │ inst 0  │
//	     └────────┴────────┴─────┴────────┴─────────┘
//	      each nibble: lane v = initial content 00,01,10,11
//
// The lane state is kept one-hot across nine uint64 planes: plane s holds
// a set bit for every lane currently in state s (this is the two-plane
// ternary encoding generalised — a cell's 0/1 value and its X-ness are
// both captured by which plane the lane sits on). Applying one trace
// input is then a handful of AND/OR operations: for every source plane,
// the lanes move to their per-instance target plane through precomputed
// transfer masks, and read mismatches fall out as one mask word per trace
// position. One pass over the trace therefore simulates all 64
// (instance × initial content) combinations of the word at once; the ⇕
// resolution axis of the enumeration is the sequence of traces the caller
// feeds in.
//
// # Caching
//
// Compiling a block costs 16 × 9 × 7 closure evaluations, and the
// generation engine evaluates hundreds of candidate tests against the
// same fault list, so compiled blocks are memoised process-wide in an
// internal/memo cache under the "simd/block" fingerprint namespace (the
// canonical fault.Key of the block's instances). Compiled LUTs are pure
// functions of the instance list — caching them can never change a
// result, only its latency, which is why this cache is consulted even by
// budgeted runs that bypass the result-level caches.
package simd
