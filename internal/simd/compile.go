package simd

import (
	"marchgen/fsm"
	"marchgen/march"
)

// Geometry of the compiled machine tables and of the lane packing.
const (
	// NumStates is the size of the two-cell ternary state space: each
	// cell holds 0, 1 or X, giving 3×3 states.
	NumStates = 9
	// NumInputs is the size of the input alphabet
	// {w0i, w1i, w0j, w1j, ri, rj, T}.
	NumInputs = 7
	// BlockInstances is the number of fault instances packed into one
	// 64-bit lane word (4 initial-content lanes per instance).
	BlockInstances = 16
	// LanesPerInstance is the number of lanes one instance occupies: one
	// per concrete initial content of the two model cells (00,01,10,11).
	LanesPerInstance = 4
)

// StateIndex packs a two-cell state into its table index: 3·enc(I)+enc(J)
// with the natural encoding 0→0, 1→1, X→2 (march.Bit's own values).
func StateIndex(s fsm.State) int { return 3*int(s.I) + int(s.J) }

// StateAt is the inverse of StateIndex.
func StateAt(idx int) fsm.State {
	return fsm.S(march.Bit(idx/3), march.Bit(idx%3))
}

// InputIndex packs an input symbol into its table index: w0i=0, w1i=1,
// w0j=2, w1j=3, ri=4, rj=5, T=6.
func InputIndex(in fsm.Input) int {
	switch in.Kind {
	case fsm.OpWrite:
		return 2*int(in.Cell) + int(in.Data)
	case fsm.OpRead:
		return 4 + int(in.Cell)
	default:
		return 6
	}
}

// inputAt is the inverse of InputIndex.
func inputAt(idx int) fsm.Input {
	switch {
	case idx < 4:
		return fsm.Wr(fsm.Cell(idx/2), march.Bit(idx%2))
	case idx < 6:
		return fsm.Rd(fsm.Cell(idx - 4))
	default:
		return fsm.Wait
	}
}

// Compiled is one machine lowered into dense lookup tables indexed by
// (StateIndex, InputIndex): Next is the δ table (packed state indices),
// Out is the λ table (ternary read outputs; X for writes, waits, and
// reads whose value cannot be relied upon).
type Compiled struct {
	// Name echoes the compiled machine's name for diagnostics.
	Name string
	// Next is the dense δ table.
	Next [NumStates][NumInputs]uint8
	// Out is the dense λ table.
	Out [NumStates][NumInputs]march.Bit
}

// Compile lowers a Mealy machine into its dense tables by evaluating δ
// and λ at every (state, input) point. Machines are pure functions of
// (state, input), so the tables reproduce the machine exactly.
func Compile(m fsm.Machine) *Compiled {
	c := &Compiled{Name: m.Name}
	for s := 0; s < NumStates; s++ {
		st := StateAt(s)
		for i := 0; i < NumInputs; i++ {
			in := inputAt(i)
			c.Next[s][i] = uint8(StateIndex(m.Next(st, in)))
			c.Out[s][i] = m.Output(st, in)
		}
	}
	return c
}

// good is the fault-free machine M0, compiled once: the kernel derives
// the expected value of every read from it, exactly as the scalar
// engine's guaranteed-detection semantics do.
var good = Compile(fsm.Good())

// Good returns the compiled fault-free machine M0.
func Good() *Compiled { return good }

// ExpectedOutputs walks the compiled good machine from the fully
// uninitialised state over the (index-encoded) input sequence and
// returns the fault-free output of every position: X for non-reads and
// for reads whose good value cannot be known (read before write). Reads
// with an X expected value never count as observations, mirroring the
// scalar engine.
func ExpectedOutputs(inputs []uint8) []march.Bit {
	out := make([]march.Bit, len(inputs))
	s := uint8(StateIndex(fsm.Unknown))
	for k, in := range inputs {
		out[k] = good.Out[s][in]
		s = good.Next[s][in]
	}
	return out
}

// EncodeTrace converts an fsm input sequence into the kernel's index
// encoding.
func EncodeTrace(trace []fsm.Input) []uint8 {
	out := make([]uint8, len(trace))
	for k, in := range trace {
		out[k] = uint8(InputIndex(in))
	}
	return out
}
