package sim

import (
	"context"
	"math/bits"
	"sort"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/budget"
	"marchgen/internal/obs"
	"marchgen/internal/pool"
	"marchgen/internal/simd"
	"marchgen/march"
)

// Engine selects the simulation implementation backing an evaluation:
// the bit-parallel LUT kernel (the default) or the scalar reference
// engine. Both produce byte-identical results — the differential tests
// prove it — so the choice only affects speed.
type Engine int

// The two engines. Kernel packs (instance × initial content) lanes into
// machine words and steps them with compiled-LUT transfer masks; Scalar
// is the original closure-dispatch engine, kept as the reference oracle.
const (
	Kernel Engine = iota
	Scalar
)

// kernelTrace is one ⇕ resolution of a March test lowered to kernel
// form: the index-encoded input sequence, the fault-free expected output
// of every position, and the flattened-operation position map.
type kernelTrace struct {
	inputs    []uint8
	expect    []march.Bit
	positions []int
}

// kernelTraces lowers every resolution of the test.
func kernelTraces(t *march.Test, resolutions [][]march.Order) []kernelTrace {
	traces := make([]kernelTrace, len(resolutions))
	for k, res := range resolutions {
		trace, positions := Trace(t, res)
		inputs := simd.EncodeTrace(trace)
		traces[k] = kernelTrace{
			inputs:    inputs,
			expect:    simd.ExpectedOutputs(inputs),
			positions: positions,
		}
	}
	return traces
}

// observeKernel records the kernel's per-evaluation counters.
func observeKernel(run *obs.Run, blocks []*simd.Block, hits, compiles, traces, instances int) {
	if run == nil {
		return
	}
	run.Counter(obs.CounterKernelBlockHits).Add(int64(hits))
	run.Counter(obs.CounterKernelBlockCompiles).Add(int64(compiles))
	run.Counter(obs.CounterKernelTraces).Add(int64(len(blocks) * traces))
	run.Counter(obs.CounterKernelLanes).Add(int64(instances * simd.LanesPerInstance * traces))
}

// maxTraceLen returns the longest lowered trace, sizing the per-worker
// mismatch scratch buffer.
func maxTraceLen(traces []kernelTrace) int {
	n := 0
	for _, tr := range traces {
		if len(tr.inputs) > n {
			n = len(tr.inputs)
		}
	}
	return n
}

// evaluateKernel is the bit-parallel implementation behind
// EvaluateEngine: per block of up to 16 instances, one pass over each
// resolution's trace yields the mismatch mask of all 64
// (instance × initial content) lanes at every read position, from which
// the guaranteed-detection verdict and the detecting-operation counters
// fall out with nibble reductions. Results are assembled in instance
// order and replicate the scalar engine bit for bit.
func evaluateKernel(ctx context.Context, t *march.Test, instances []fault.Instance, workers int, traces []kernelTrace, blocks []*simd.Block) (Coverage, error) {
	numOps := len(t.Ops())
	scratch := maxTraceLen(traces)
	oneBlock := func(bi int) ([]InstanceResult, error) {
		if err := budget.CtxErr(ctx); err != nil {
			return nil, err
		}
		b := blocks[bi]
		lo := bi * simd.BlockInstances
		insts := instances[lo : lo+b.Instances()]
		n := b.Instances()
		detected := make([]bool, n)
		for i := range detected {
			detected[i] = true
		}
		// counts[i·numOps+op] is the number of (resolution, trace
		// position) pairs at which instance i's mismatch is guaranteed
		// for every initial content — the scalar engine's detecting map
		// as a flat, reusable counter row.
		counts := make([]int, n*numOps)
		mism := make([]uint64, scratch)
		for _, tr := range traces {
			mm := mism[:len(tr.inputs)]
			b.RunTrace(tr.inputs, tr.expect, mm)
			var anyMismatch uint64
			for _, w := range mm {
				anyMismatch |= w
			}
			full := simd.NibbleAll(anyMismatch)
			for i := 0; i < n; i++ {
				if full&(1<<uint(simd.LanesPerInstance*i)) == 0 {
					detected[i] = false
				}
			}
			for k, w := range mm {
				f := simd.NibbleAll(w)
				if f == 0 {
					continue
				}
				op := tr.positions[k]
				if op < 0 {
					continue
				}
				for f != 0 {
					i := bits.TrailingZeros64(f) >> 2
					f &= f - 1
					counts[i*numOps+op]++
				}
			}
		}
		out := make([]InstanceResult, n)
		for i := range out {
			r := InstanceResult{Instance: insts[i], Detected: detected[i]}
			for op, cnt := range counts[i*numOps : (i+1)*numOps] {
				if cnt == len(traces) {
					r.DetectingOps = append(r.DetectingOps, op)
				}
			}
			out[i] = r
		}
		return out, nil
	}
	cov := Coverage{Test: t}
	if workers = pool.Size(workers); workers > 1 && len(blocks) > 1 {
		perBlock, err := pool.MapCtx(ctx, workers, len(blocks), oneBlock)
		if err != nil {
			return Coverage{}, err
		}
		for _, rs := range perBlock {
			cov.Results = append(cov.Results, rs...)
		}
		return cov, nil
	}
	for bi := range blocks {
		rs, err := oneBlock(bi)
		if err != nil {
			return Coverage{}, err
		}
		cov.Results = append(cov.Results, rs...)
	}
	return cov, nil
}

// runsKernel is the bit-parallel implementation behind RunsBatch: the
// per-run mismatch attribution of every (instance, initial content,
// ⇕ resolution) triple, computed one block-trace pass at a time.
func runsKernel(ctx context.Context, t *march.Test, instances []fault.Instance, workers int, resolutions [][]march.Order, traces []kernelTrace, blocks []*simd.Block) ([][]Run, error) {
	numOps := len(t.Ops())
	scratch := maxTraceLen(traces)
	oneBlock := func(bi int) ([][]Run, error) {
		if err := budget.CtxErr(ctx); err != nil {
			return nil, err
		}
		b := blocks[bi]
		n := b.Instances()
		mism := make([]uint64, scratch)
		laneOps := make([][]int, simd.LanesPerInstance*n)
		out := make([][]Run, n)
		for i := range out {
			out[i] = make([]Run, 0, len(traces)*simd.LanesPerInstance)
		}
		for ri, tr := range traces {
			mm := mism[:len(tr.inputs)]
			b.RunTrace(tr.inputs, tr.expect, mm)
			for l := range laneOps {
				laneOps[l] = laneOps[l][:0]
			}
			for k, w := range mm {
				if w == 0 {
					continue
				}
				op := tr.positions[k]
				if op < 0 {
					continue
				}
				for w != 0 {
					l := bits.TrailingZeros64(w)
					w &= w - 1
					laneOps[l] = append(laneOps[l], op)
				}
			}
			inits := fsm.ConcreteStates()
			for i := 0; i < n; i++ {
				for v := 0; v < simd.LanesPerInstance; v++ {
					run := Run{Init: inits[v], Resolution: resolutions[ri]}
					if ops := laneOps[simd.LanesPerInstance*i+v]; len(ops) > 0 {
						run.MismatchOps = dedupeSortedOps(ops, numOps)
					}
					out[i] = append(out[i], run)
				}
			}
		}
		return out, nil
	}
	var results [][]Run
	if workers = pool.Size(workers); workers > 1 && len(blocks) > 1 {
		perBlock, err := pool.MapCtx(ctx, workers, len(blocks), oneBlock)
		if err != nil {
			return nil, err
		}
		for _, rs := range perBlock {
			results = append(results, rs...)
		}
		return results, nil
	}
	for bi := range blocks {
		rs, err := oneBlock(bi)
		if err != nil {
			return nil, err
		}
		results = append(results, rs...)
	}
	return results, nil
}

// dedupeSortedOps sorts a small op-index list and drops duplicates into
// a fresh slice (a trace visits every operation twice — once per model
// cell — so duplicates are the common case). numOps documents the index
// domain; the list length is what drives the cost.
func dedupeSortedOps(ops []int, numOps int) []int {
	_ = numOps
	sort.Ints(ops)
	out := make([]int, 0, len(ops))
	for k, op := range ops {
		if k > 0 && op == ops[k-1] {
			continue
		}
		out = append(out, op)
	}
	return out
}
