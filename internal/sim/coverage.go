package sim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/budget"
	"marchgen/internal/obs"
	"marchgen/internal/pool"
	"marchgen/internal/simd"
	"marchgen/march"
)

// InstanceResult is the verdict of a March test on one fault instance.
type InstanceResult struct {
	Instance fault.Instance
	// Detected reports guaranteed detection: a mismatch occurs for every
	// initial memory content under every ⇕ resolution.
	Detected bool
	// DetectingOps lists the flattened operation indices of the test
	// whose reads individually guarantee detection (mismatch for every
	// initial content, under every resolution). These are the columns of
	// the Coverage Matrix rows the instance can be charged to.
	DetectingOps []int
}

// Coverage is the result of evaluating a March test against a fault list.
type Coverage struct {
	Test    *march.Test
	Results []InstanceResult
}

// Clone deep-copies the coverage, so cached copies can be handed out
// without aliasing the cache's entry.
func (c Coverage) Clone() Coverage {
	out := Coverage{Results: make([]InstanceResult, len(c.Results))}
	if c.Test != nil {
		out.Test = c.Test.Clone()
	}
	for k, r := range c.Results {
		out.Results[k] = InstanceResult{
			Instance:     r.Instance,
			Detected:     r.Detected,
			DetectingOps: append([]int(nil), r.DetectingOps...),
		}
	}
	return out
}

// Detected counts the instances the test detects.
func (c Coverage) Detected() int {
	n := 0
	for _, r := range c.Results {
		if r.Detected {
			n++
		}
	}
	return n
}

// Complete reports whether every instance is detected.
func (c Coverage) Complete() bool {
	for _, r := range c.Results {
		if !r.Detected {
			return false
		}
	}
	return true
}

// Missed returns the names of undetected instances.
func (c Coverage) Missed() []string {
	var out []string
	for _, r := range c.Results {
		if !r.Detected {
			out = append(out, r.Instance.Name)
		}
	}
	return out
}

// Evaluate runs the two-cell engine: the March test is reduced to the input
// trace it induces on an aggressor/victim pair and each instance's machine
// is checked under the guaranteed-detection semantics. This placement-free
// reduction is exact because a March test applies identical operation
// sequences to every cell pair (see the package tests, which cross-check it
// against the n-cell engine).
func Evaluate(t *march.Test, instances []fault.Instance) (Coverage, error) {
	return EvaluateCtx(context.Background(), t, instances)
}

// EvaluateCtx is Evaluate with cancellation: the per-instance loop checks
// ctx and aborts with a typed error (budget.ErrCanceled or
// budget.ErrDeadlineExceeded).
func EvaluateCtx(ctx context.Context, t *march.Test, instances []fault.Instance) (Coverage, error) {
	return EvaluateWorkers(ctx, t, instances, 1)
}

// parallelThreshold is the instance count below which the per-fault
// fan-out is not worth the goroutine hand-off and the evaluation runs
// inline even with workers > 1.
const parallelThreshold = 16

// EvaluateWorkers is EvaluateCtx with the per-fault simulation fanned out
// over a bounded worker pool (workers <= 0: GOMAXPROCS). It runs on the
// bit-parallel kernel; results are collected in instance order, so the
// Coverage is byte-identical to the sequential evaluation at any worker
// count.
func EvaluateWorkers(ctx context.Context, t *march.Test, instances []fault.Instance, workers int) (Coverage, error) {
	return EvaluateEngine(ctx, t, instances, workers, Kernel)
}

// EvaluateEngine is EvaluateWorkers with an explicit engine choice. The
// scalar engine is the reference oracle the differential tests compare
// the kernel against; production callers use Kernel (and silently fall
// back to Scalar only if block compilation fails, bumping the
// sim.scalar_fallbacks counter).
func EvaluateEngine(ctx context.Context, t *march.Test, instances []fault.Instance, workers int, engine Engine) (Coverage, error) {
	run := obs.From(ctx)
	var sp *obs.Span
	if run != nil {
		sp = run.StartUnder("sim/evaluate").SetInt("instances", int64(len(instances)))
		t0 := time.Now()
		run.Counter("sim.evaluations").Inc()
		run.Counter("sim.instances").Add(int64(len(instances)))
		defer func() {
			run.Histogram("sim.evaluate_ns").Observe(int64(time.Since(t0)))
			sp.End()
		}()
	}
	cov, err := evaluateDispatch(ctx, t, instances, workers, engine, run)
	if err == nil && run != nil {
		// Publish the evaluation as live coverage progress and stamp the
		// detected count on the span: one count per evaluation, far off
		// the per-word kernel path.
		detected := int64(cov.Detected())
		sp.SetInt("detected", detected)
		run.Progress().Coverage(detected, int64(len(cov.Results)))
	}
	return cov, err
}

// evaluateDispatch picks the engine and runs the evaluation; split from
// EvaluateEngine so the observation wrapper sees the Coverage it returns.
func evaluateDispatch(ctx context.Context, t *march.Test, instances []fault.Instance, workers int, engine Engine, run *obs.Run) (Coverage, error) {
	if err := SelfConsistent(t); err != nil {
		return Coverage{}, err
	}
	resolutions, err := Resolutions(t)
	if err != nil {
		return Coverage{}, err
	}
	if engine == Kernel && len(instances) > 0 {
		blocks, hits, compiles, berr := simd.CompiledBlocks(instances)
		if berr != nil {
			if run != nil {
				run.Counter(obs.CounterScalarFallbacks).Inc()
			}
		} else {
			traces := kernelTraces(t, resolutions)
			observeKernel(run, blocks, hits, compiles, len(traces), len(instances))
			return evaluateKernel(ctx, t, instances, workers, traces, blocks)
		}
	}
	return evaluateScalar(ctx, t, instances, workers, resolutions)
}

// evaluateScalar is the reference implementation: per instance, the
// closure-dispatch machine is walked over every resolution's trace with
// fsm.Detects / fsm.DetectingReads. The per-op detection tallies use a
// flat counter row indexed by flattened operation position.
func evaluateScalar(ctx context.Context, t *march.Test, instances []fault.Instance, workers int, resolutions [][]march.Order) (Coverage, error) {
	type traced struct {
		trace     []fsm.Input
		positions []int
	}
	traces := make([]traced, len(resolutions))
	for k, res := range resolutions {
		tr, pos := Trace(t, res)
		traces[k] = traced{tr, pos}
	}
	numOps := len(t.Ops())
	one := func(inst fault.Instance, detecting []int) InstanceResult {
		r := InstanceResult{Instance: inst, Detected: true}
		for i := range detecting {
			detecting[i] = 0
		}
		for _, tr := range traces {
			if !fsm.Detects(inst.Machine, tr.trace) {
				r.Detected = false
			}
			for _, k := range fsm.DetectingReads(inst.Machine, tr.trace) {
				if tr.positions[k] >= 0 {
					detecting[tr.positions[k]]++
				}
			}
		}
		for op, cnt := range detecting {
			if cnt == len(resolutions) && cnt > 0 {
				r.DetectingOps = append(r.DetectingOps, op)
			}
		}
		sort.Ints(r.DetectingOps)
		return r
	}
	cov := Coverage{Test: t}
	if workers = pool.Size(workers); workers > 1 && len(instances) >= parallelThreshold {
		results, err := pool.MapCtx(ctx, workers, len(instances), func(i int) (InstanceResult, error) {
			if err := budget.CtxErr(ctx); err != nil {
				return InstanceResult{}, err
			}
			return one(instances[i], make([]int, numOps)), nil
		})
		if err != nil {
			return Coverage{}, err
		}
		cov.Results = results
		return cov, nil
	}
	detecting := make([]int, numOps)
	for _, inst := range instances {
		if err := budget.CtxErr(ctx); err != nil {
			return Coverage{}, err
		}
		cov.Results = append(cov.Results, one(inst, detecting))
	}
	return cov, nil
}

// Run is one (initial memory content, ⇕ resolution) execution of a March
// test against a fault instance.
type Run struct {
	// Init is the initial content of the instance's two model cells.
	Init fsm.State
	// Resolution is the concrete addressing order of each element.
	Resolution []march.Order
	// MismatchOps lists the flattened operation indices whose reads
	// exposed the fault in this run.
	MismatchOps []int
}

// Runs executes the test against one instance for every initial content
// and every ⇕ resolution, reporting per-run mismatch attribution. The test
// detects the instance exactly when every run has at least one mismatch;
// this is the granularity at which the Coverage Matrix of the paper's
// Section 6 is built. It runs on the bit-parallel kernel.
func Runs(t *march.Test, inst fault.Instance) ([]Run, error) {
	return RunsEngine(t, inst, Kernel)
}

// RunsEngine is Runs with an explicit engine choice (the scalar engine is
// the differential tests' oracle).
func RunsEngine(t *march.Test, inst fault.Instance, engine Engine) ([]Run, error) {
	batch, err := RunsBatch(context.Background(), t, []fault.Instance{inst}, 1, engine)
	if err != nil {
		return nil, err
	}
	return batch[0], nil
}

// RunsBatch computes Runs for every instance of a fault list at once,
// returning the per-instance run lists in instance order. On the kernel
// engine the whole batch shares the lowered traces and the compiled
// blocks, so the marginal cost per instance is a few bit operations per
// trace position; the scalar engine fans the instances out over the
// worker pool. Results are byte-identical across engines and worker
// counts.
func RunsBatch(ctx context.Context, t *march.Test, instances []fault.Instance, workers int, engine Engine) ([][]Run, error) {
	resolutions, err := Resolutions(t)
	if err != nil {
		return nil, err
	}
	if len(instances) == 0 {
		return nil, nil
	}
	run := obs.From(ctx)
	if engine == Kernel {
		blocks, hits, compiles, berr := simd.CompiledBlocks(instances)
		if berr != nil {
			if run != nil {
				run.Counter(obs.CounterScalarFallbacks).Inc()
			}
		} else {
			traces := kernelTraces(t, resolutions)
			observeKernel(run, blocks, hits, compiles, len(traces), len(instances))
			return runsKernel(ctx, t, instances, workers, resolutions, traces, blocks)
		}
	}
	return pool.MapCtx(ctx, pool.Size(workers), len(instances), func(i int) ([]Run, error) {
		if err := budget.CtxErr(ctx); err != nil {
			return nil, err
		}
		return runsScalar(t, instances[i], resolutions)
	})
}

// runsScalar is the reference implementation of Runs: one closure-dispatch
// machine walk per (initial content, ⇕ resolution), with a reusable
// seen-ops scratch row replacing the old per-run map.
func runsScalar(t *march.Test, inst fault.Instance, resolutions [][]march.Order) ([]Run, error) {
	numOps := len(t.Ops())
	seen := make([]bool, numOps)
	var out []Run
	for _, res := range resolutions {
		trace, positions := Trace(t, res)
		for _, init := range fsm.ConcreteStates() {
			run := Run{Init: init, Resolution: res}
			for i := range seen {
				seen[i] = false
			}
			for _, k := range fsm.MismatchingReads(inst.Machine, trace, init) {
				if op := positions[k]; op >= 0 && !seen[op] {
					seen[op] = true
					run.MismatchOps = append(run.MismatchOps, op)
				}
			}
			sort.Ints(run.MismatchOps)
			out = append(out, run)
		}
	}
	return out, nil
}

// EvaluateN runs the n-cell engine on a memory of the given size: each
// instance is placed at representative address pairs, every initial content
// of the involved cells and every ⇕ resolution is enumerated, and detection
// must hold in all of them.
func EvaluateN(t *march.Test, instances []fault.Instance, n int) (Coverage, error) {
	return EvaluateNCtx(context.Background(), t, instances, n)
}

// EvaluateNCtx is EvaluateN with cancellation: the per-instance loop
// checks ctx and aborts with a typed error.
func EvaluateNCtx(ctx context.Context, t *march.Test, instances []fault.Instance, n int) (Coverage, error) {
	return EvaluateNWorkers(ctx, t, instances, n, 1)
}

// EvaluateNWorkers is EvaluateNCtx with the per-instance placement runs
// fanned out over a bounded worker pool (workers <= 0: GOMAXPROCS);
// results are collected in instance order, identical at any worker count.
func EvaluateNWorkers(ctx context.Context, t *march.Test, instances []fault.Instance, n, workers int) (Coverage, error) {
	if run := obs.From(ctx); run != nil {
		sp := run.StartUnder("sim/evaluate_n").
			SetInt("instances", int64(len(instances))).
			SetInt("cells", int64(n))
		t0 := time.Now()
		run.Counter("sim.evaluations_n").Inc()
		run.Counter("sim.instances").Add(int64(len(instances)))
		defer func() {
			run.Histogram("sim.evaluate_ns").Observe(int64(time.Since(t0)))
			sp.End()
		}()
	}
	if err := SelfConsistent(t); err != nil {
		return Coverage{}, err
	}
	resolutions, err := Resolutions(t)
	if err != nil {
		return Coverage{}, err
	}
	one := func(inst fault.Instance) (InstanceResult, error) {
		r := InstanceResult{Instance: inst, Detected: true}
		detecting := map[int]int{}
		runs := 0
		for _, pair := range placements(n) {
			for initMask := 0; initMask < 4; initMask++ {
				for _, res := range resolutions {
					mism, err := runPlaced(t, inst, n, pair, initMask, res)
					if err != nil {
						return InstanceResult{}, err
					}
					runs++
					if len(mism) == 0 {
						r.Detected = false
					}
					for _, op := range mism {
						detecting[op]++
					}
				}
			}
		}
		for op, cnt := range detecting {
			if cnt == runs {
				r.DetectingOps = append(r.DetectingOps, op)
			}
		}
		sort.Ints(r.DetectingOps)
		return r, nil
	}
	cov := Coverage{Test: t}
	if workers = pool.Size(workers); workers > 1 && len(instances) > 1 {
		results, err := pool.MapCtx(ctx, workers, len(instances), func(i int) (InstanceResult, error) {
			if err := budget.CtxErr(ctx); err != nil {
				return InstanceResult{}, err
			}
			return one(instances[i])
		})
		if err != nil {
			return Coverage{}, err
		}
		cov.Results = results
		return cov, nil
	}
	for _, inst := range instances {
		if err := budget.CtxErr(ctx); err != nil {
			return Coverage{}, err
		}
		r, err := one(inst)
		if err != nil {
			return Coverage{}, err
		}
		cov.Results = append(cov.Results, r)
	}
	return cov, nil
}

// placements returns representative (A, B) address pairs with A < B:
// adjacent at the bottom, spanning the array, adjacent at the top.
func placements(n int) [][2]int {
	set := [][2]int{{0, 1}, {0, n - 1}, {n - 2, n - 1}}
	if n > 4 {
		set = append(set, [2]int{n / 2, n/2 + 1})
	}
	// Deduplicate for tiny memories.
	var out [][2]int
	seen := map[[2]int]bool{}
	for _, p := range set {
		if p[0] < p[1] && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// runPlaced executes one simulation run and returns the mismatching
// operation indices.
func runPlaced(t *march.Test, inst fault.Instance, n int, pair [2]int, initMask int, res []march.Order) ([]int, error) {
	mem, err := NewMemory(n, &PlacedFault{Instance: inst, A: pair[0], B: pair[1]})
	if err != nil {
		return nil, err
	}
	mem.SetCell(pair[0], march.BitOf(initMask&1 != 0))
	mem.SetCell(pair[1], march.BitOf(initMask&2 != 0))
	return mem.RunMarch(t, res), nil
}

// statesEqualErr is referenced by tests to document cross-engine agreement
// failures.
func statesEqualErr(name string, a, b Coverage) error {
	if len(a.Results) != len(b.Results) {
		return fmt.Errorf("sim: %s: result count %d vs %d", name, len(a.Results), len(b.Results))
	}
	for k := range a.Results {
		if a.Results[k].Detected != b.Results[k].Detected {
			return fmt.Errorf("sim: %s: instance %s: two-cell says %v, n-cell says %v",
				name, a.Results[k].Instance.Name, a.Results[k].Detected, b.Results[k].Detected)
		}
	}
	return nil
}
