package sim

import (
	"context"
	"reflect"
	"testing"

	"marchgen/fault"
	"marchgen/march"
)

// sameResult compares the observable fields of two InstanceResults.
// (Whole-struct DeepEqual is useless here: fault.Instance carries the
// machine's transition closures, and func values never compare equal.)
func sameResult(a, b InstanceResult) bool {
	return a.Instance.Name == b.Instance.Name &&
		a.Detected == b.Detected &&
		reflect.DeepEqual(a.DetectingOps, b.DetectingOps)
}

// fullLibrary returns every instance of every built-in fault model, in
// the registry's sorted model order — the complete differential-test
// universe.
func fullLibrary(t *testing.T) []fault.Instance {
	t.Helper()
	var instances []fault.Instance
	for _, name := range fault.ModelNames() {
		instances = append(instances, mustModel(t, name).Instances...)
	}
	if len(instances) == 0 {
		t.Fatal("empty fault library")
	}
	return instances
}

// TestKernelMatchesScalarFullLibrary is the kernel's primary differential
// test: for every known March test and the entire fault library, the
// bit-parallel kernel must return exactly the scalar oracle's
// InstanceResult set — same instances, same Detected verdicts, same
// DetectingOps — at several worker counts.
func TestKernelMatchesScalarFullLibrary(t *testing.T) {
	instances := fullLibrary(t)
	ctx := context.Background()
	for _, name := range march.KnownNames() {
		mt := mustKnown(t, name)
		want, err := EvaluateEngine(ctx, mt, instances, 1, Scalar)
		if err != nil {
			t.Fatalf("%s: scalar: %v", name, err)
		}
		for _, workers := range []int{1, 4} {
			got, err := EvaluateEngine(ctx, mt, instances, workers, Kernel)
			if err != nil {
				t.Fatalf("%s: kernel (workers=%d): %v", name, workers, err)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("%s: kernel (workers=%d): %d results, scalar %d",
					name, workers, len(got.Results), len(want.Results))
			}
			for k := range want.Results {
				if !sameResult(got.Results[k], want.Results[k]) {
					t.Errorf("%s (workers=%d): instance %s: kernel detected=%v ops=%v, scalar detected=%v ops=%v",
						name, workers, want.Results[k].Instance.Name,
						got.Results[k].Detected, got.Results[k].DetectingOps,
						want.Results[k].Detected, want.Results[k].DetectingOps)
				}
			}
		}
	}
}

// TestKernelRunsMatchScalarFullLibrary checks the finer-grained per-run
// mismatch attribution (the Coverage Matrix columns) across the whole
// library: RunsBatch on the kernel must equal the scalar oracle run for
// run — same inits, same resolutions, same MismatchOps — at several
// worker counts. MarchG exercises Del elements, MATS multiple free ⇕
// resolutions.
func TestKernelRunsMatchScalarFullLibrary(t *testing.T) {
	instances := fullLibrary(t)
	ctx := context.Background()
	for _, name := range []string{"MATS", "MATS+", "MarchC-", "MarchG"} {
		mt := mustKnown(t, name)
		want, err := RunsBatch(ctx, mt, instances, 1, Scalar)
		if err != nil {
			t.Fatalf("%s: scalar: %v", name, err)
		}
		for _, workers := range []int{1, 4} {
			got, err := RunsBatch(ctx, mt, instances, workers, Kernel)
			if err != nil {
				t.Fatalf("%s: kernel (workers=%d): %v", name, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: kernel (workers=%d): %d instances, scalar %d",
					name, workers, len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("%s (workers=%d): instance %s: kernel runs differ from scalar\nkernel: %+v\nscalar: %+v",
						name, workers, instances[i].Name, got[i], want[i])
				}
			}
		}
	}
}

// TestRunsEngineSingleInstance pins the single-instance convenience
// wrapper to the batch result.
func TestRunsEngineSingleInstance(t *testing.T) {
	mt := mustKnown(t, "MarchC-")
	inst := mustModel(t, "CFid").Instances[0]
	kernel, err := Runs(mt, inst)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := RunsEngine(mt, inst, Scalar)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kernel, scalar) {
		t.Errorf("Runs kernel/scalar mismatch:\nkernel: %+v\nscalar: %+v", kernel, scalar)
	}
}

// TestKernelPartialBlock covers instance counts that do not fill a whole
// 16-instance block, including the 1-instance and 17-instance edges.
func TestKernelPartialBlock(t *testing.T) {
	instances := fullLibrary(t)
	mt := mustKnown(t, "MarchC-")
	ctx := context.Background()
	for _, n := range []int{1, 2, 15, 16, 17, 33} {
		if n > len(instances) {
			t.Fatalf("library smaller than %d instances", n)
		}
		sub := instances[:n]
		want, err := EvaluateEngine(ctx, mt, sub, 1, Scalar)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateEngine(ctx, mt, sub, 1, Kernel)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("n=%d: %d results, want %d", n, len(got.Results), len(want.Results))
		}
		for k := range want.Results {
			if !sameResult(got.Results[k], want.Results[k]) {
				t.Errorf("n=%d: instance %s: kernel results differ from scalar",
					n, want.Results[k].Instance.Name)
			}
		}
	}
}
