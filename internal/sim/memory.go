package sim

import (
	"fmt"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/simd"
	"marchgen/march"
)

// Memory is a simulated n-cell one-bit-per-cell RAM with at most one
// injected fault instance (the customary single-fault assumption of memory
// testing). Cell values are ternary: X models an uninitialised cell.
// Faulty accesses run on the instance's machine compiled into dense LUTs
// (see internal/simd), not on the closure form, so the per-operation cost
// is two table lookups.
type Memory struct {
	cells []march.Bit
	flt   *PlacedFault
	lut   *simd.Compiled
	// pair is the packed state index of the two placed cells, kept in
	// sync with cells so faulty accesses never re-derive it.
	pair uint8
}

// PlacedFault is a fault instance bound to concrete memory addresses: the
// instance's model cell i is placed at address A and cell j at address B.
// Every access to A or B is routed through the instance's faulty two-cell
// machine, so the n-cell behaviour is exactly the instance's behaviour.
type PlacedFault struct {
	Instance fault.Instance
	A, B     int
}

// NewMemory builds an n-cell memory, optionally with a placed fault.
// The initial content of every cell is X (uninitialised).
func NewMemory(n int, flt *PlacedFault) (*Memory, error) {
	if n < 2 {
		return nil, fmt.Errorf("sim: memory needs at least 2 cells, got %d", n)
	}
	if flt != nil {
		if flt.A == flt.B || flt.A < 0 || flt.B < 0 || flt.A >= n || flt.B >= n {
			return nil, fmt.Errorf("sim: fault placement (%d,%d) out of range for %d cells", flt.A, flt.B, n)
		}
	}
	cells := make([]march.Bit, n)
	for k := range cells {
		cells[k] = march.X
	}
	m := &Memory{cells: cells, flt: flt}
	if flt != nil {
		m.lut = simd.CompileInstance(flt.Instance)
		m.pair = uint8(simd.StateIndex(fsm.S(cells[flt.A], cells[flt.B])))
	}
	return m, nil
}

// Size returns the number of cells.
func (m *Memory) Size() int { return len(m.cells) }

// SetCell forces the content of a cell — used to enumerate initial memory
// contents.
func (m *Memory) SetCell(addr int, v march.Bit) {
	m.cells[addr] = v
	if m.flt != nil && (addr == m.flt.A || addr == m.flt.B) {
		m.pair = uint8(simd.StateIndex(fsm.S(m.cells[m.flt.A], m.cells[m.flt.B])))
	}
}

// Cell returns the raw stored content of a cell (bypassing the fault's
// read behaviour).
func (m *Memory) Cell(addr int) march.Bit { return m.cells[addr] }

// storePair writes the packed two-cell state back to the placed cells.
func (m *Memory) storePair(idx uint8) {
	m.pair = idx
	s := simd.StateAt(int(idx))
	m.cells[m.flt.A] = s.I
	m.cells[m.flt.B] = s.J
}

// inputOf maps an access to a faulty address to the LUT input index.
func (m *Memory) inputOf(addr int, write bool, data march.Bit) (int, bool) {
	if m.flt == nil {
		return 0, false
	}
	var cell int
	switch addr {
	case m.flt.A:
		cell = int(fsm.CellI)
	case m.flt.B:
		cell = int(fsm.CellJ)
	default:
		return 0, false
	}
	if write {
		return 2*cell + int(data), true
	}
	return 4 + cell, true
}

// Write stores data at addr, routing through the fault machine's LUT when
// the address is involved in the fault.
func (m *Memory) Write(addr int, data march.Bit) {
	if in, ok := m.inputOf(addr, true, data); ok {
		m.storePair(m.lut.Next[m.pair][in])
		return
	}
	m.cells[addr] = data
}

// Read returns the value sensed at addr, applying the fault machine's read
// output and read side effects (via the compiled LUTs) when the address is
// involved in the fault.
func (m *Memory) Read(addr int) march.Bit {
	if in, ok := m.inputOf(addr, false, march.X); ok {
		out := m.lut.Out[m.pair][in]
		m.storePair(m.lut.Next[m.pair][in])
		return out
	}
	return m.cells[addr]
}

// Delay applies the wait symbol T (a Del March element): only the fault
// machine reacts (e.g. a data-retention leak).
func (m *Memory) Delay() {
	if m.flt == nil {
		return
	}
	m.storePair(m.lut.Next[m.pair][simd.NumInputs-1])
}

// RunMarch executes the March test on the memory under a concrete order
// resolution and returns the indices (into the flattened operation list of
// the test) of the read operations that observed a mismatch on at least one
// address. The memory is mutated.
func (m *Memory) RunMarch(t *march.Test, res []march.Order) []int {
	numOps := len(t.Ops())
	mismatched := make([]bool, numOps)
	opBase := 0
	for k, e := range t.Elements {
		if e.Delay {
			m.Delay()
			continue
		}
		for a := 0; a < m.Size(); a++ {
			addr := a
			if res[k] == march.Down {
				addr = m.Size() - 1 - a
			}
			for o, op := range e.Ops {
				if op.IsWrite() {
					m.Write(addr, op.Data)
					continue
				}
				got := m.Read(addr)
				if got.Known() && got != op.Data {
					mismatched[opBase+o] = true
				}
			}
		}
		opBase += len(e.Ops)
	}
	var out []int
	for op, hit := range mismatched {
		if hit {
			out = append(out, op)
		}
	}
	return out
}
