package sim

import (
	"fmt"
	"sort"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/march"
)

// Memory is a simulated n-cell one-bit-per-cell RAM with at most one
// injected fault instance (the customary single-fault assumption of memory
// testing). Cell values are ternary: X models an uninitialised cell.
type Memory struct {
	cells []march.Bit
	flt   *PlacedFault
}

// PlacedFault is a fault instance bound to concrete memory addresses: the
// instance's model cell i is placed at address A and cell j at address B.
// Every access to A or B is routed through the instance's faulty two-cell
// machine, so the n-cell behaviour is exactly the instance's behaviour.
type PlacedFault struct {
	Instance fault.Instance
	A, B     int
}

// NewMemory builds an n-cell memory, optionally with a placed fault.
// The initial content of every cell is X (uninitialised).
func NewMemory(n int, flt *PlacedFault) (*Memory, error) {
	if n < 2 {
		return nil, fmt.Errorf("sim: memory needs at least 2 cells, got %d", n)
	}
	if flt != nil {
		if flt.A == flt.B || flt.A < 0 || flt.B < 0 || flt.A >= n || flt.B >= n {
			return nil, fmt.Errorf("sim: fault placement (%d,%d) out of range for %d cells", flt.A, flt.B, n)
		}
	}
	cells := make([]march.Bit, n)
	for k := range cells {
		cells[k] = march.X
	}
	return &Memory{cells: cells, flt: flt}, nil
}

// Size returns the number of cells.
func (m *Memory) Size() int { return len(m.cells) }

// SetCell forces the content of a cell — used to enumerate initial memory
// contents.
func (m *Memory) SetCell(addr int, v march.Bit) { m.cells[addr] = v }

// Cell returns the raw stored content of a cell (bypassing the fault's
// read behaviour).
func (m *Memory) Cell(addr int) march.Bit { return m.cells[addr] }

// pairState assembles the two-cell machine state from the placed cells.
func (m *Memory) pairState() fsm.State {
	return fsm.S(m.cells[m.flt.A], m.cells[m.flt.B])
}

// storePair writes the two-cell machine state back to the placed cells.
func (m *Memory) storePair(s fsm.State) {
	m.cells[m.flt.A] = s.I
	m.cells[m.flt.B] = s.J
}

// cellOf maps a faulty address to its model cell.
func (m *Memory) cellOf(addr int) (fsm.Cell, bool) {
	if m.flt == nil {
		return 0, false
	}
	switch addr {
	case m.flt.A:
		return fsm.CellI, true
	case m.flt.B:
		return fsm.CellJ, true
	default:
		return 0, false
	}
}

// Write stores data at addr, routing through the fault machine when the
// address is involved in the fault.
func (m *Memory) Write(addr int, data march.Bit) {
	if c, ok := m.cellOf(addr); ok {
		in := fsm.Wr(c, data)
		m.storePair(m.flt.Instance.Machine.Next(m.pairState(), in))
		return
	}
	m.cells[addr] = data
}

// Read returns the value sensed at addr, applying the fault machine's read
// output and read side effects when the address is involved in the fault.
func (m *Memory) Read(addr int) march.Bit {
	if c, ok := m.cellOf(addr); ok {
		in := fsm.Rd(c)
		s := m.pairState()
		out := m.flt.Instance.Machine.Output(s, in)
		m.storePair(m.flt.Instance.Machine.Next(s, in))
		return out
	}
	return m.cells[addr]
}

// Delay applies the wait symbol T (a Del March element): only the fault
// machine reacts (e.g. a data-retention leak).
func (m *Memory) Delay() {
	if m.flt == nil {
		return
	}
	m.storePair(m.flt.Instance.Machine.Next(m.pairState(), fsm.Wait))
}

// RunMarch executes the March test on the memory under a concrete order
// resolution and returns the indices (into the flattened operation list of
// the test) of the read operations that observed a mismatch on at least one
// address. The memory is mutated.
func (m *Memory) RunMarch(t *march.Test, res []march.Order) []int {
	mismatches := map[int]bool{}
	opBase := 0
	for k, e := range t.Elements {
		if e.Delay {
			m.Delay()
			continue
		}
		addrs := make([]int, m.Size())
		for a := range addrs {
			if res[k] == march.Down {
				addrs[a] = m.Size() - 1 - a
			} else {
				addrs[a] = a
			}
		}
		for _, addr := range addrs {
			for o, op := range e.Ops {
				if op.IsWrite() {
					m.Write(addr, op.Data)
					continue
				}
				got := m.Read(addr)
				if got.Known() && got != op.Data {
					mismatches[opBase+o] = true
				}
			}
		}
		opBase += len(e.Ops)
	}
	out := make([]int, 0, len(mismatches))
	for k := range mismatches {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
