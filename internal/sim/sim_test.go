package sim

import (
	"testing"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/march"
)

func mustKnown(t *testing.T, name string) *march.Test {
	t.Helper()
	kt, ok := march.Known(name)
	if !ok {
		t.Fatalf("unknown test %s", name)
	}
	return kt.Test
}

func mustModel(t *testing.T, name string) fault.Model {
	t.Helper()
	m, err := fault.Parse(name)
	if err != nil {
		t.Fatalf("Parse(%q): %v", name, err)
	}
	return m
}

func TestResolutions(t *testing.T) {
	mt := mustKnown(t, "MATS") // three ⇕ elements
	res, err := Resolutions(mt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("MATS resolutions: %d, want 8", len(res))
	}
	fixed := mustKnown(t, "MATS+") // ⇕ ⇑ ⇓
	res, err = Resolutions(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("MATS+ resolutions: %d, want 2", len(res))
	}
	for _, r := range res {
		if r[1] != march.Up || r[2] != march.Down {
			t.Errorf("fixed orders must be preserved: %v", r)
		}
	}
}

func TestTraceShape(t *testing.T) {
	mt := mustKnown(t, "MATS+")
	res := []march.Order{march.Up, march.Up, march.Down}
	trace, pos := Trace(mt, res)
	want := "w0i, w0j, ri, w1i, rj, w1j, rj, w0j, ri, w0i"
	if got := fsm.Sequence(trace); got != want {
		t.Errorf("trace %q, want %q", got, want)
	}
	wantPos := []int{0, 0, 1, 2, 1, 2, 3, 4, 3, 4}
	for k := range wantPos {
		if pos[k] != wantPos[k] {
			t.Fatalf("positions %v, want %v", pos, wantPos)
		}
	}
}

func TestTraceDelay(t *testing.T) {
	mt := mustKnown(t, "MarchG")
	res, err := Resolutions(mt)
	if err != nil {
		t.Fatal(err)
	}
	trace, pos := Trace(mt, res[0])
	waits := 0
	for k, in := range trace {
		if in.IsWait() {
			waits++
			if pos[k] != -1 {
				t.Errorf("wait at %d must map to position -1", k)
			}
		}
	}
	if waits != 2 {
		t.Errorf("MarchG trace has %d waits, want 2", waits)
	}
}

func TestSelfConsistentLibrary(t *testing.T) {
	for _, name := range march.KnownNames() {
		if err := SelfConsistent(mustKnown(t, name)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSelfConsistentRejects(t *testing.T) {
	bad := march.New(
		march.Elem(march.Any, march.W0),
		march.Elem(march.Up, march.R1), // reads 1 from a zeroed memory
	)
	if err := SelfConsistent(bad); err == nil {
		t.Error("inconsistent test must be rejected")
	}
}

func TestMemoryBasics(t *testing.T) {
	mem, err := NewMemory(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Size() != 4 {
		t.Fatalf("size %d", mem.Size())
	}
	if got := mem.Read(2); got != march.X {
		t.Errorf("uninitialised read: %v", got)
	}
	mem.Write(2, march.One)
	if got := mem.Read(2); got != march.One {
		t.Errorf("read back: %v", got)
	}
	if got := mem.Read(1); got != march.X {
		t.Errorf("neighbour disturbed: %v", got)
	}
}

func TestNewMemoryErrors(t *testing.T) {
	if _, err := NewMemory(1, nil); err == nil {
		t.Error("1-cell memory must fail")
	}
	if _, err := NewMemory(4, &PlacedFault{A: 2, B: 2}); err == nil {
		t.Error("self-pair placement must fail")
	}
	if _, err := NewMemory(4, &PlacedFault{A: 0, B: 7}); err == nil {
		t.Error("out-of-range placement must fail")
	}
}

func TestPlacedStuckAt(t *testing.T) {
	saf := mustModel(t, "SA0")
	mem, err := NewMemory(4, &PlacedFault{Instance: saf.Instances[0], A: 1, B: 3})
	if err != nil {
		t.Fatal(err)
	}
	mem.Write(1, march.One)
	if got := mem.Read(1); got != march.Zero {
		t.Errorf("stuck-at-0 cell read %v after w1", got)
	}
	mem.Write(3, march.One) // cell j of the placement is healthy
	if got := mem.Read(3); got != march.One {
		t.Errorf("healthy cell read %v", got)
	}
}

// TestKnownCoverageFacts checks classic detection facts from the literature
// with the two-cell engine.
func TestKnownCoverageFacts(t *testing.T) {
	cases := []struct {
		test     string
		model    string
		detected bool
	}{
		{"MATS", "SAF", true},
		{"MATS", "TF", false},
		{"ZeroOne", "SAF", true},
		{"ZeroOne", "ADF", false},
		{"MATS+", "SAF", true},
		{"MATS+", "ADF", true},
		{"MATS+", "TF", false},
		{"MATS++", "SAF", true},
		{"MATS++", "TF", true},
		{"MATS++", "ADF", true},
		{"MarchX", "SAF", true},
		{"MarchX", "TF", true},
		{"MarchX", "ADF", true},
		{"MarchX", "CFin", true},
		{"MarchC-", "SAF", true},
		{"MarchC-", "TF", true},
		{"MarchC-", "ADF", true},
		{"MarchC-", "CFin", true},
		{"MarchC-", "CFid", true},
		{"MarchC-", "CFst", true},
		{"MarchC-", "DRF", false},
		{"MarchG", "SOF", true},
		{"MarchG", "DRF", true},
		{"MarchG", "CFid", true},
		{"MATS", "DRF", false},
	}
	for _, c := range cases {
		cov, err := Evaluate(mustKnown(t, c.test), mustModel(t, c.model).Instances)
		if err != nil {
			t.Fatalf("%s vs %s: %v", c.test, c.model, err)
		}
		if cov.Complete() != c.detected {
			t.Errorf("%s vs %s: detected=%v (missed %v), want %v",
				c.test, c.model, cov.Complete(), cov.Missed(), c.detected)
		}
	}
}

// TestEnginesAgree cross-validates the two-cell reduction against the
// n-cell simulator on every known March test and a broad fault list.
func TestEnginesAgree(t *testing.T) {
	models := []string{"SAF", "TF", "ADF", "CFin", "CFid", "CFst", "SOF", "DRF", "RDF", "IRF", "WDF", "DRDF"}
	var instances []fault.Instance
	for _, m := range models {
		instances = append(instances, mustModel(t, m).Instances...)
	}
	for _, name := range []string{"MATS", "MATS+", "MATS++", "MarchX", "MarchY", "MarchC-", "MarchU", "MarchG", "ZeroOne"} {
		mt := mustKnown(t, name)
		twoCell, err := Evaluate(mt, instances)
		if err != nil {
			t.Fatal(err)
		}
		nCell, err := EvaluateN(mt, instances, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := statesEqualErr(name, twoCell, nCell); err != nil {
			t.Error(err)
		}
	}
}

// TestDetectingOpsAgree checks that per-operation detection attribution
// (the Coverage Matrix rows) agrees between the two engines for a
// representative case.
func TestDetectingOpsAgree(t *testing.T) {
	mt := mustKnown(t, "MarchC-")
	instances := mustModel(t, "CFid").Instances
	twoCell, err := Evaluate(mt, instances)
	if err != nil {
		t.Fatal(err)
	}
	nCell, err := EvaluateN(mt, instances, 6)
	if err != nil {
		t.Fatal(err)
	}
	for k := range twoCell.Results {
		a, b := twoCell.Results[k].DetectingOps, nCell.Results[k].DetectingOps
		if len(a) != len(b) {
			t.Errorf("%s: detecting ops %v vs %v", twoCell.Results[k].Instance.Name, a, b)
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: detecting ops %v vs %v", twoCell.Results[k].Instance.Name, a, b)
				break
			}
		}
	}
}

// TestPlacementIndependence verifies the reduction argument: detection of a
// two-cell fault does not depend on where the pair is placed in the array.
func TestPlacementIndependence(t *testing.T) {
	mt := mustKnown(t, "MarchC-")
	inst := mustModel(t, "CFid<u,0>").Instances[0]
	res, err := Resolutions(mt)
	if err != nil {
		t.Fatal(err)
	}
	var first []int
	for _, pair := range [][2]int{{0, 1}, {0, 5}, {2, 3}, {4, 5}} {
		mism, err := runPlaced(mt, inst, 6, pair, 1, res[0])
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = mism
			continue
		}
		if len(mism) != len(first) {
			t.Fatalf("placement %v changes mismatches: %v vs %v", pair, mism, first)
		}
		for k := range mism {
			if mism[k] != first[k] {
				t.Fatalf("placement %v changes mismatches: %v vs %v", pair, mism, first)
			}
		}
	}
}

// TestDataRetentionNeedsDelay: the DRF leak only fires on Del elements.
func TestDataRetentionNeedsDelay(t *testing.T) {
	drf := mustModel(t, "DRF")
	withDelay, err := march.Parse("{ ⇕(w1); Del; ⇕(r1,w0); Del; ⇕(r0) }")
	if err != nil {
		t.Fatal(err)
	}
	cov, err := Evaluate(withDelay, drf.Instances)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Complete() {
		t.Errorf("delay test must detect DRF; missed %v", cov.Missed())
	}
	noDelay, err := march.Parse("{ ⇕(w1); ⇕(r1,w0); ⇕(r0) }")
	if err != nil {
		t.Fatal(err)
	}
	cov, err = Evaluate(noDelay, drf.Instances)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Complete() {
		t.Error("delay-free test must not detect DRF")
	}
}

// TestMarchSSCoversAllStaticFaults: March SS was designed for the complete
// simple static fault space; the simulator confirms it across the entire
// built-in taxonomy except retention (which needs Del elements).
func TestMarchSSCoversAllStaticFaults(t *testing.T) {
	mt := mustKnown(t, "MarchSS")
	for _, model := range []string{"SAF", "TF", "WDF", "RDF", "DRDF", "IRF", "SOF", "ADF", "CFin", "CFid", "CFst", "LCF"} {
		cov, err := Evaluate(mt, mustModel(t, model).Instances)
		if err != nil {
			t.Fatal(err)
		}
		if !cov.Complete() {
			t.Errorf("MarchSS misses %s: %v", model, cov.Missed())
		}
	}
}

// TestDualsPreserveCoverage: the built-in fault models are closed under
// data inversion and under aggressor/victim order exchange, so the
// complement and the reverse of a test cover exactly the same models.
func TestDualsPreserveCoverage(t *testing.T) {
	instances := mustModel(t, "CFid").Instances
	instances = append(instances, mustModel(t, "TF").Instances...)
	instances = append(instances, mustModel(t, "ADF").Instances...)
	for _, name := range []string{"MATS++", "MarchC-", "MarchU"} {
		base := mustKnown(t, name)
		for _, dual := range []*march.Test{march.Complement(base), march.Reverse(base)} {
			covBase, err := Evaluate(base, instances)
			if err != nil {
				t.Fatal(err)
			}
			covDual, err := Evaluate(dual, instances)
			if err != nil {
				t.Fatal(err)
			}
			if covBase.Complete() != covDual.Complete() {
				t.Errorf("%s: dual %s coverage differs (%v vs %v)",
					name, dual, covBase.Complete(), covDual.Complete())
			}
		}
	}
}
