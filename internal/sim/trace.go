// Package sim is the memory fault simulator used to validate generated
// March tests — the reproduction of the "ad hoc memory fault simulator" of
// the paper's Section 6. It provides two independent engines that the test
// suite cross-checks against each other:
//
//   - a two-cell engine that reduces a March test to the input trace it
//     induces on an (aggressor, victim) cell pair and applies the
//     guaranteed-detection semantics of package fsm, and
//   - an n-cell engine that executes the March test operation by operation
//     on a simulated memory array with an injected fault instance.
//
// Detection is always quantified over every possible initial memory content
// of the involved cells and every resolution of ⇕ (order-irrelevant) March
// elements, so a reported detection is a guarantee, not a possibility.
package sim

import (
	"fmt"

	"marchgen/fsm"
	"marchgen/march"
)

// maxAnyElements bounds the 2^k enumeration of ⇕ resolutions.
const maxAnyElements = 16

// Resolutions enumerates every assignment of concrete addressing orders to
// the test's elements: ⇑/⇓ elements keep their order, each ⇕ element is
// expanded to both. The first resolution is the all-ascending one.
func Resolutions(t *march.Test) ([][]march.Order, error) {
	anyIdx := []int{}
	base := make([]march.Order, len(t.Elements))
	for k, e := range t.Elements {
		base[k] = e.Order
		if e.Order == march.Any && !e.Delay {
			anyIdx = append(anyIdx, k)
		}
		if e.Delay {
			base[k] = march.Up // irrelevant for delay elements
		}
	}
	if len(anyIdx) > maxAnyElements {
		return nil, fmt.Errorf("sim: %d ⇕ elements exceed the resolution bound %d", len(anyIdx), maxAnyElements)
	}
	count := 1 << len(anyIdx)
	out := make([][]march.Order, 0, count)
	for mask := 0; mask < count; mask++ {
		res := append([]march.Order(nil), base...)
		for b, k := range anyIdx {
			if mask&(1<<b) == 0 {
				res[k] = march.Up
			} else {
				res[k] = march.Down
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// Trace returns the two-cell input sequence a March test induces on a cell
// pair (i, j) with address(i) < address(j), under the given order
// resolution: an ascending element applies its operations to i first, a
// descending one to j first, and a delay element contributes one wait
// symbol. The returned positions map each trace input back to the index of
// its operation in the flattened test (delay elements yield -1).
func Trace(t *march.Test, res []march.Order) (trace []fsm.Input, positions []int) {
	opBase := 0
	for k, e := range t.Elements {
		if e.Delay {
			trace = append(trace, fsm.Wait)
			positions = append(positions, -1)
			continue
		}
		first, second := fsm.CellI, fsm.CellJ
		if res[k] == march.Down {
			first, second = fsm.CellJ, fsm.CellI
		}
		for _, c := range [2]fsm.Cell{first, second} {
			for o, op := range e.Ops {
				trace = append(trace, toInput(op, c))
				positions = append(positions, opBase+o)
			}
		}
		opBase += len(e.Ops)
	}
	return trace, positions
}

// toInput converts a March operation applied to a model cell into an fsm
// input (the expected value of reads is defined by the good machine, not
// carried by the input).
func toInput(op march.Op, c fsm.Cell) fsm.Input {
	if op.IsRead() {
		return fsm.Rd(c)
	}
	return fsm.Wr(c, op.Data)
}

// SelfConsistent checks that the test's read-and-verify operations expect
// exactly what the fault-free memory returns — e.g. that a ⇑(r0,w1)
// element is not applied to memory holding ones. A test failing this check
// would flag a good memory as faulty.
func SelfConsistent(t *march.Test) error {
	if err := t.Validate(); err != nil {
		return err
	}
	resolutions, err := Resolutions(t)
	if err != nil {
		return err
	}
	good := fsm.Good()
	ops := t.Ops()
	for _, res := range resolutions {
		trace, positions := Trace(t, res)
		s := fsm.Unknown
		for k, in := range trace {
			if in.IsRead() {
				got := good.Output(s, in)
				want := ops[positions[k]].Data
				if got != want {
					return fmt.Errorf("sim: test %s is inconsistent: operation %d (%s) reads %s on a fault-free memory",
						t, positions[k], ops[positions[k]], got)
				}
			}
			s = good.Next(s, in)
		}
	}
	return nil
}
