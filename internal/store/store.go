// Package store is the durable content-addressed store behind the async
// job subsystem: job records, finished results and persistable memo
// entries land here and survive process death. The write discipline is
// the classic crash-safe sequence — write to a temp file in the target
// directory, fsync the data, atomically rename into place, fsync the
// directory — so a reader can never observe a torn value: a key either
// resolves to complete bytes or does not exist. A crash mid-write leaves
// only a temp file behind, which Open sweeps away.
//
// Keys live in flat namespaces ("jobs", "results", "memo"); values are
// immutable byte slices, typically keyed by the content hashes of
// internal/memo, which is what makes a repeated submission a cache hit
// and a resumed job byte-identical.
//
// Every write passes the internal/chaos failpoints (fsync error, torn
// write, rename failure, slow disk), so the fault-injection harness can
// sabotage exactly the syscalls a real disk would fail.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"marchgen/internal/chaos"
)

// ErrNotFound reports a key with no committed value.
var ErrNotFound = errors.New("store: key not found")

// tmpPrefix marks uncommitted temp files; Get ignores them and Open
// removes leftovers from crashed writes.
const tmpPrefix = ".tmp-"

// Store is a durable key/value store rooted at one directory, one
// subdirectory per namespace. Safe for concurrent use; writes to the
// same key serialise on the commit rename (last rename wins, each
// version complete).
type Store struct {
	root string

	mu   sync.Mutex
	seq  int
	dirs map[string]bool // namespaces known to exist and be fsynced
}

// Open prepares the store rooted at dir, creating it when absent and
// sweeping temp files left by crashed writes.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open root: %w", err)
	}
	s := &Store{root: dir, dirs: map[string]bool{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan root: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ns, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range ns {
			if strings.HasPrefix(f.Name(), tmpPrefix) {
				_ = os.Remove(filepath.Join(dir, e.Name(), f.Name()))
			}
		}
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// checkKey rejects keys that would escape the namespace directory. Keys
// are content hashes and job ids, so anything outside the safe set is a
// caller bug.
func checkKey(key string) error {
	if key == "" || strings.ContainsAny(key, "/\\") || strings.HasPrefix(key, ".") {
		return fmt.Errorf("store: invalid key %q", key)
	}
	return nil
}

// dir ensures the namespace directory exists (and is itself durable:
// the first use fsyncs the root so the namespace survives a crash).
func (s *Store) dir(ns string) (string, error) {
	if err := checkKey(ns); err != nil {
		return "", err
	}
	d := filepath.Join(s.root, ns)
	s.mu.Lock()
	known := s.dirs[ns]
	s.mu.Unlock()
	if known {
		return d, nil
	}
	if err := os.MkdirAll(d, 0o755); err != nil {
		return "", fmt.Errorf("store: namespace %s: %w", ns, err)
	}
	if err := syncDir(s.root); err != nil {
		return "", err
	}
	s.mu.Lock()
	s.dirs[ns] = true
	s.mu.Unlock()
	return d, nil
}

// Put durably commits data under ns/key: temp file, data fsync, atomic
// rename, directory fsync. On any failure the committed state is
// untouched — a previous value for the key, or its absence, stays
// intact, and the reader-visible store never holds torn bytes.
func (s *Store) Put(ns, key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	d, err := s.dir(ns)
	if err != nil {
		return err
	}
	pts := chaos.Active()
	pts.Sleep()
	s.mu.Lock()
	s.seq++
	tmp := filepath.Join(d, fmt.Sprintf("%s%d-%s", tmpPrefix, s.seq, key))
	s.mu.Unlock()
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create temp: %w", err)
	}
	// A torn write leaves half the bytes in the temp file and errors out
	// — the same on-disk state a crash mid-write produces. The temp file
	// is deliberately left behind; Open's sweep handles it, and Get must
	// never see it.
	if ierr := pts.Fail(chaos.PointPartial); ierr != nil {
		_, _ = f.Write(data[:len(data)/2])
		_ = f.Close()
		return fmt.Errorf("store: write %s/%s: %w", ns, key, ierr)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("store: write %s/%s: %w", ns, key, err)
	}
	if ierr := pts.Fail(chaos.PointFsync); ierr != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("store: fsync %s/%s: %w", ns, key, ierr)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("store: fsync %s/%s: %w", ns, key, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: close %s/%s: %w", ns, key, err)
	}
	if ierr := pts.Fail(chaos.PointRename); ierr != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: commit %s/%s: %w", ns, key, ierr)
	}
	if err := os.Rename(tmp, filepath.Join(d, key)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: commit %s/%s: %w", ns, key, err)
	}
	return syncDir(d)
}

// Get returns the committed bytes under ns/key, or ErrNotFound.
func (s *Store) Get(ns, key string) ([]byte, error) {
	if err := checkKey(ns); err != nil {
		return nil, err
	}
	if err := checkKey(key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.root, ns, key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %s/%s: %w", ns, key, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: read %s/%s: %w", ns, key, err)
	}
	return data, nil
}

// Has reports whether ns/key holds a committed value.
func (s *Store) Has(ns, key string) bool {
	if checkKey(ns) != nil || checkKey(key) != nil {
		return false
	}
	_, err := os.Stat(filepath.Join(s.root, ns, key))
	return err == nil
}

// Delete removes ns/key; deleting an absent key is not an error.
func (s *Store) Delete(ns, key string) error {
	if err := checkKey(ns); err != nil {
		return err
	}
	if err := checkKey(key); err != nil {
		return err
	}
	err := os.Remove(filepath.Join(s.root, ns, key))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: delete %s/%s: %w", ns, key, err)
	}
	return nil
}

// List returns the committed keys of a namespace in sorted order (an
// absent namespace lists empty).
func (s *Store) List(ns string) ([]string, error) {
	if err := checkKey(ns); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(s.root, ns))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", ns, err)
	}
	var keys []string
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		keys = append(keys, e.Name())
	}
	sort.Strings(keys)
	return keys, nil
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss. Some filesystems reject directory fsync; those errors are
// swallowed (the rename itself is still atomic).
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer f.Close()
	_ = f.Sync()
	return nil
}
