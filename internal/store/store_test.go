package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"marchgen/internal/chaos"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("jobs", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}
	if err := s.Put("jobs", "a", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("jobs", "a")
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Overwrite is atomic replacement.
	if err := s.Put("jobs", "a", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("jobs", "a"); string(got) != "v2" {
		t.Fatalf("overwrite lost: %q", got)
	}
	if !s.Has("jobs", "a") || s.Has("jobs", "b") {
		t.Fatal("Has is wrong")
	}
	if err := s.Delete("jobs", "a"); err != nil || s.Has("jobs", "a") {
		t.Fatal("Delete failed")
	}
	if err := s.Delete("jobs", "a"); err != nil {
		t.Fatalf("deleting an absent key: %v", err)
	}
}

func TestListSortedAndTmpInvisible(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"c", "a", "b"} {
		if err := s.Put("results", k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	// A stray temp file (a crashed write) must be invisible to List/Get.
	tmp := filepath.Join(s.Root(), "results", tmpPrefix+"99-z")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List("results")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(keys, ",") != "a,b,c" {
		t.Fatalf("List = %v", keys)
	}
	if keys, _ := s.List("nothere"); keys != nil {
		t.Fatalf("absent namespace listed %v", keys)
	}
}

func TestOpenSweepsCrashedWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("jobs", "keep", []byte("x")); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "jobs", tmpPrefix+"7-dead")
	if err := os.WriteFile(torn, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("reopen did not sweep the crashed temp file")
	}
	if _, err := s.Get("jobs", "keep"); err != nil {
		t.Fatalf("committed key lost on reopen: %v", err)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "a/b", `a\b`, ".hidden", "../escape"} {
		if err := s.Put("jobs", k, []byte("x")); err == nil {
			t.Fatalf("Put accepted key %q", k)
		}
		if err := s.Put(k, "ok", []byte("x")); err == nil {
			t.Fatalf("Put accepted namespace %q", k)
		}
	}
}

// TestChaosInjection proves the atomicity contract under every injected
// failure: a failed Put leaves the previous committed value (or its
// absence) fully intact, and a torn write is never reader-visible.
func TestChaosInjection(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"fsync error", "fsync=1"},
		{"partial write", "partial=1"},
		{"rename failure", "rename=1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("jobs", "k", []byte("committed")); err != nil {
				t.Fatal(err)
			}
			pts, err := chaos.Parse(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			chaos.Install(pts)
			defer chaos.Disable()
			err = s.Put("jobs", "k", []byte("doomed-update"))
			if !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("sabotaged Put: %v, want injected error", err)
			}
			err = s.Put("jobs", "fresh", []byte("doomed-new"))
			if !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("sabotaged fresh Put: %v", err)
			}
			chaos.Disable()
			if got, err := s.Get("jobs", "k"); err != nil || string(got) != "committed" {
				t.Fatalf("previous value corrupted: %q, %v", got, err)
			}
			if _, err := s.Get("jobs", "fresh"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("failed new write became visible: %v", err)
			}
			keys, _ := s.List("jobs")
			if strings.Join(keys, ",") != "k" {
				t.Fatalf("List sees ghost keys: %v", keys)
			}
		})
	}
}

func TestConcurrentWriters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("k%d", i%10)
				val := fmt.Sprintf("g%d-i%d", g, i)
				if err := s.Put("memo", key, []byte(val)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, err := s.Get("memo", key); err != nil || len(got) == 0 {
					t.Errorf("Get %s: %q, %v", key, got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	keys, err := s.List("memo")
	if err != nil || len(keys) != 10 {
		t.Fatalf("List = %v, %v", keys, err)
	}
}
