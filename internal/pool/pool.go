// Package pool provides the bounded worker pool behind the parallel
// generation engine. Work is always expressed as an indexed map — fn(i)
// for i in [0, n) — and results are collected by index, so the output of a
// parallel run is byte-identical to the sequential one regardless of the
// worker count or goroutine scheduling. Errors are reduced the same way:
// when several workers fail, the error of the smallest index wins, which
// is exactly the error the sequential loop would have returned first.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"marchgen/internal/obs"
)

// Size normalises a worker count: n <= 0 selects runtime.GOMAXPROCS(0)
// (the GOMAXPROCS-aware default), anything else is returned unchanged.
func Size(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order. A failing index cancels the indices
// not yet started; among the failures observed, the one with the smallest
// index is returned (matching what a sequential loop would report). With
// workers <= 1 or n <= 1 no goroutine is spawned and fn runs inline, so
// the sequential engine is literally the workers=1 configuration.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return mapHooked(workers, n, fn, nil)
}

// MapCtx is Map with the fan-out recorded to the observability run
// attached to ctx (see internal/obs): the fan-out count, task total,
// peak outstanding-task depth and per-worker busy time land in the
// run's metrics. Without a run on the context it is exactly Map — the
// instrumentation costs nothing when observation is off.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	run := obs.From(ctx)
	if run == nil {
		return mapHooked(workers, n, fn, nil)
	}
	run.Counter("pool.fanouts").Inc()
	run.Counter("pool.tasks").Add(int64(n))
	run.Histogram("pool.fanout.n").Observe(int64(n))
	run.Gauge("pool.queue.depth").Max(int64(n))
	return mapHooked(workers, n, fn, func(worker int, busy time.Duration) {
		run.Counter(fmt.Sprintf("pool.worker.%d.busy_ns", worker)).Add(int64(busy))
	})
}

// mapHooked is the shared implementation: done, when non-nil, receives
// each worker's total busy time (fn execution, not queue idling) once
// the worker exits. The inline path reports as worker 0.
func mapHooked[T any](workers, n int, fn func(i int) (T, error), done func(worker int, busy time.Duration)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = Size(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		var t0 time.Time
		if done != nil {
			t0 = time.Now()
		}
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		if done != nil {
			done(0, time.Since(t0))
		}
		return out, nil
	}

	var (
		next   atomic.Int64 // next index to claim
		failed atomic.Bool  // latched on first failure: stop claiming
		mu     sync.Mutex   // guards errIdx/errVal
		errIdx = -1
		errVal error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, errVal = i, err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var busy time.Duration
			if done != nil {
				defer func() { done(w, busy) }()
			}
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var t0 time.Time
				if done != nil {
					t0 = time.Now()
				}
				v, err := fn(i)
				if done != nil {
					busy += time.Since(t0)
				}
				if err != nil {
					record(i, err)
					return
				}
				out[i] = v
			}
		}(w)
	}
	wg.Wait()
	if errVal != nil {
		return nil, errVal
	}
	return out, nil
}

// Each is Map for work with no per-index result.
func Each(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
