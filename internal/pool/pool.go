// Package pool provides the bounded worker pool behind the parallel
// generation engine. Work is always expressed as an indexed map — fn(i)
// for i in [0, n) — and results are collected by index, so the output of a
// parallel run is byte-identical to the sequential one regardless of the
// worker count or goroutine scheduling. Errors are reduced the same way:
// when several workers fail, the error of the smallest index wins, which
// is exactly the error the sequential loop would have returned first.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Size normalises a worker count: n <= 0 selects runtime.GOMAXPROCS(0)
// (the GOMAXPROCS-aware default), anything else is returned unchanged.
func Size(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order. A failing index cancels the indices
// not yet started; among the failures observed, the one with the smallest
// index is returned (matching what a sequential loop would report). With
// workers <= 1 or n <= 1 no goroutine is spawned and fn runs inline, so
// the sequential engine is literally the workers=1 configuration.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = Size(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next   atomic.Int64 // next index to claim
		failed atomic.Bool  // latched on first failure: stop claiming
		mu     sync.Mutex   // guards errIdx/errVal
		errIdx = -1
		errVal error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, errVal = i, err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					record(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if errVal != nil {
		return nil, errVal
	}
	return out, nil
}

// Each is Map for work with no per-index result.
func Each(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
