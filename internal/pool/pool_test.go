package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestSize(t *testing.T) {
	if got := Size(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Size(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Size(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Size(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Size(7); got != 7 {
		t.Fatalf("Size(7) = %d", got)
	}
}

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v, %v", got, err)
	}
	got, err = Map(4, 1, func(i int) (int, error) { return 42, nil })
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("single: %v, %v", got, err)
	}
}

// TestMapFirstErrorWins checks the sequential-equivalence contract: when
// several indices fail, the error of the smallest failing index is
// returned, exactly as a sequential loop would report.
func TestMapFirstErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(workers, 40, func(i int) (int, error) {
			if i%3 == 1 { // indices 1, 4, 7, ... fail
				return 0, fmt.Errorf("fail-%02d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail-01" {
			t.Fatalf("workers=%d: err = %v, want fail-01", workers, err)
		}
	}
}

func TestMapErrorStopsEarly(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	_, err := Map(2, 10000, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := calls.Load(); n == 10000 {
		t.Fatalf("error did not short-circuit: all %d indices ran", n)
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(4, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 99*100/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
	boom := errors.New("boom")
	if err := Each(4, 10, func(i int) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestMapConcurrent runs overlapping Map calls to give the race detector
// something to chew on.
func TestMapConcurrent(t *testing.T) {
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for r := 0; r < 20; r++ {
				got, err := Map(3, 30, func(i int) (int, error) { return i + 1, nil })
				if err != nil {
					done <- err
					return
				}
				for i, v := range got {
					if v != i+1 {
						done <- fmt.Errorf("got[%d] = %d", i, v)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
