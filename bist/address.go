// Package bist models the memory built-in self-test machinery that March
// tests are deployed on in silicon: an address generator, a March
// controller sequencing the test's elements over a memory-under-test, and
// a MISR (multiple-input signature register) compacting the read responses
// into a signature compared against a fault-free golden run.
//
// Besides being the natural execution vehicle for the generated tests, the
// package makes a classic engineering trade-off measurable: an LFSR-based
// address generator is cheaper than a counter but does not preserve the
// monotonic address order March semantics rely on, so coupling-fault
// coverage degrades — the package tests demonstrate exactly that with the
// fault simulator.
package bist

import "fmt"

// AddressGenerator yields the address order the BIST controller walks for
// an ascending March element; descending elements use the reverse order.
type AddressGenerator interface {
	// Sequence returns a permutation of 0..n-1.
	Sequence(n int) ([]int, error)
	// Name identifies the generator in reports.
	Name() string
}

// Counter is the standard binary up-counter address generator: addresses
// in natural order, exactly the ⇑ semantics March tests assume.
type Counter struct{}

// Name implements AddressGenerator.
func (Counter) Name() string { return "counter" }

// Sequence implements AddressGenerator.
func (Counter) Sequence(n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bist: invalid memory size %d", n)
	}
	seq := make([]int, n)
	for k := range seq {
		seq[k] = k
	}
	return seq, nil
}

// lfsrTaps holds maximal-length Fibonacci LFSR tap masks per register
// width for the right-shift form used below (feedback = parity of the
// tapped low bits, shifted into the MSB). Each mask is verified to yield
// the full 2^w−1 period by the package tests.
var lfsrTaps = map[int]uint{
	2:  0b11,
	3:  0b11,
	4:  0b11,
	5:  0b101,
	6:  0b11,
	7:  0b11,
	8:  0b11101,
	9:  0b10001,
	10: 0b1001,
}

// LFSR is a maximal-length linear-feedback shift register address
// generator: hardware-cheap, pseudo-random order. The all-zero address is
// appended at the end to cover the full space. Memory size must be a power
// of two with 4 ≤ n ≤ 1024.
type LFSR struct {
	// Seed is the starting state; zero means 1.
	Seed uint
}

// Name implements AddressGenerator.
func (LFSR) Name() string { return "lfsr" }

// Sequence implements AddressGenerator.
func (g LFSR) Sequence(n int) ([]int, error) {
	width := 0
	for 1<<width < n {
		width++
	}
	if 1<<width != n {
		return nil, fmt.Errorf("bist: LFSR addressing needs a power-of-two size, got %d", n)
	}
	taps, ok := lfsrTaps[width]
	if !ok {
		return nil, fmt.Errorf("bist: no primitive polynomial for %d address bits", width)
	}
	state := g.Seed & uint(n-1)
	if state == 0 {
		state = 1
	}
	seq := make([]int, 0, n)
	seen := make([]bool, n)
	for k := 0; k < n-1; k++ {
		if seen[state] {
			return nil, fmt.Errorf("bist: LFSR cycle shorter than expected at state %d", state)
		}
		seen[state] = true
		seq = append(seq, int(state))
		// Fibonacci step: feedback = parity of tapped bits.
		fb := bitParity(state & taps)
		state = (state >> 1) | fb<<(width-1)
	}
	seq = append(seq, 0) // the LFSR never reaches the all-zero state
	return seq, nil
}

func bitParity(v uint) uint {
	p := uint(0)
	for v != 0 {
		p ^= v & 1
		v >>= 1
	}
	return p
}

// AddressComplement walks addresses in the a, ~a, a+1, ~(a+1), … order
// used by some BIST schemes to stress the address decoder.
type AddressComplement struct{}

// Name implements AddressGenerator.
func (AddressComplement) Name() string { return "address-complement" }

// Sequence implements AddressGenerator.
func (AddressComplement) Sequence(n int) ([]int, error) {
	if n <= 0 || n%2 != 0 {
		return nil, fmt.Errorf("bist: address-complement needs an even size, got %d", n)
	}
	mask := n - 1
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("bist: address-complement needs a power-of-two size, got %d", n)
	}
	seq := make([]int, 0, n)
	seen := make([]bool, n)
	for a := 0; len(seq) < n; a++ {
		for _, addr := range [2]int{a, a ^ mask} {
			if !seen[addr] {
				seen[addr] = true
				seq = append(seq, addr)
			}
		}
	}
	return seq, nil
}
