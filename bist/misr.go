package bist

import (
	"fmt"

	"marchgen/march"
)

// MISR is a multiple-input signature register: read responses are folded
// into a w-bit LFSR state, compressing an arbitrarily long response stream
// into one signature word. Aliasing (a faulty stream compacting to the
// golden signature) happens with probability ≈ 2^-w for random error
// streams.
type MISR struct {
	width int
	taps  uint
	state uint
}

// NewMISR builds a MISR of the given register width (2..10 bits, the
// widths with built-in primitive polynomials... widths up to 16 are
// accepted by doubling taps choice below).
func NewMISR(width int) (*MISR, error) {
	taps, ok := misrTaps[width]
	if !ok {
		return nil, fmt.Errorf("bist: no MISR polynomial for width %d", width)
	}
	return &MISR{width: width, taps: taps}, nil
}

// misrTaps extends the LFSR tap table with wider registers used for
// signature compaction (right-shift form; see lfsrTaps).
var misrTaps = map[int]uint{
	4:  0b11,
	8:  0b11101,
	12: 0b1010011,
	16: 0b101101,
}

// Reset clears the register.
func (m *MISR) Reset() { m.state = 0 }

// Shift folds one read response bit into the signature. Unknown values
// (floating reads of a defective memory) enter as 0 — the deterministic
// convention a real comparator-less BIST would also exhibit.
func (m *MISR) Shift(v march.Bit) {
	in := uint(0)
	if v == march.One {
		in = 1
	}
	fb := bitParity(m.state & m.taps)
	m.state = ((m.state >> 1) | (fb^in)<<(m.width-1)) & (1<<m.width - 1)
}

// Signature returns the current register state.
func (m *MISR) Signature() uint { return m.state }
