package bist

import (
	"fmt"
	"sort"

	"marchgen/march"
)

// Target is the memory under test. Package internal/sim's fault-injected
// memory satisfies it, as does any user model of a RAM.
type Target interface {
	Size() int
	Read(addr int) march.Bit
	Write(addr int, data march.Bit)
	Delay()
}

// Result is the outcome of one BIST run.
type Result struct {
	// Pass is the comparator verdict: every read returned its expected
	// value.
	Pass bool
	// Fails lists the flattened operation indices whose reads mismatched
	// (the diagnosis syndrome a tester would log).
	Fails []int
	// Signature is the MISR compaction of the full response stream.
	Signature uint
	// Reads counts the compacted responses.
	Reads int
}

// Controller sequences March tests over a Target.
type Controller struct {
	// Addresses generates the element address orders (Counter by
	// default).
	Addresses AddressGenerator
	// DownGenerator, when set, supplies the ⇓ order directly instead of
	// reversing the ⇑ sequence. March semantics require the exact
	// reverse; a cheaper independent generator (e.g. a re-seeded LFSR)
	// silently breaks coupling-fault coverage — the package tests
	// demonstrate the loss.
	DownGenerator AddressGenerator
	// MISRWidth selects the signature register width (16 by default).
	MISRWidth int
}

// Run executes the test on the target, comparing every read against its
// expected value and folding responses into the signature register. ⇕
// elements are applied ascending, the canonical tester resolution.
func (c Controller) Run(t *march.Test, mem Target) (Result, error) {
	if err := t.Validate(); err != nil {
		return Result{}, err
	}
	gen := c.Addresses
	if gen == nil {
		gen = Counter{}
	}
	width := c.MISRWidth
	if width == 0 {
		width = 16
	}
	misr, err := NewMISR(width)
	if err != nil {
		return Result{}, err
	}
	up, err := gen.Sequence(mem.Size())
	if err != nil {
		return Result{}, err
	}
	var down []int
	if c.DownGenerator != nil {
		down, err = c.DownGenerator.Sequence(mem.Size())
		if err != nil {
			return Result{}, err
		}
	} else {
		down = make([]int, len(up))
		for k, a := range up {
			down[len(up)-1-k] = a
		}
	}

	res := Result{Pass: true}
	opBase := 0
	failed := map[int]bool{}
	for _, e := range t.Elements {
		if e.Delay {
			mem.Delay()
			continue
		}
		addrs := up
		if e.Order == march.Down {
			addrs = down
		}
		for _, addr := range addrs {
			for o, op := range e.Ops {
				if op.IsWrite() {
					mem.Write(addr, op.Data)
					continue
				}
				got := mem.Read(addr)
				misr.Shift(got)
				res.Reads++
				if !got.Known() || got != op.Data {
					res.Pass = false
					failed[opBase+o] = true
				}
			}
		}
		opBase += len(e.Ops)
	}
	for op := range failed {
		res.Fails = append(res.Fails, op)
	}
	sort.Ints(res.Fails)
	res.Signature = misr.Signature()
	return res, nil
}

// goldenMemory is a perfect RAM used to compute reference signatures.
type goldenMemory struct{ cells []march.Bit }

func newGolden(n int) *goldenMemory {
	g := &goldenMemory{cells: make([]march.Bit, n)}
	for k := range g.cells {
		g.cells[k] = march.X
	}
	return g
}

func (g *goldenMemory) Size() int                      { return len(g.cells) }
func (g *goldenMemory) Read(addr int) march.Bit        { return g.cells[addr] }
func (g *goldenMemory) Write(addr int, data march.Bit) { g.cells[addr] = data }
func (g *goldenMemory) Delay()                         {}

// Golden computes the fault-free reference signature of a test for a
// memory size under this controller configuration.
func (c Controller) Golden(t *march.Test, n int) (uint, error) {
	if n < 2 {
		return 0, fmt.Errorf("bist: memory size %d too small", n)
	}
	res, err := c.Run(t, newGolden(n))
	if err != nil {
		return 0, err
	}
	if !res.Pass {
		return 0, fmt.Errorf("bist: test %s fails on a fault-free memory", t)
	}
	return res.Signature, nil
}
