package bist

import (
	"testing"

	"marchgen/fault"
	"marchgen/internal/sim"
	"marchgen/march"
)

func known(t *testing.T, name string) *march.Test {
	t.Helper()
	kt, ok := march.Known(name)
	if !ok {
		t.Fatalf("unknown %s", name)
	}
	return kt.Test
}

func isPermutation(n int, seq []int) bool {
	if len(seq) != n {
		return false
	}
	seen := make([]bool, n)
	for _, a := range seq {
		if a < 0 || a >= n || seen[a] {
			return false
		}
		seen[a] = true
	}
	return true
}

func TestCounterSequence(t *testing.T) {
	seq, err := Counter{}.Sequence(8)
	if err != nil {
		t.Fatal(err)
	}
	for k, a := range seq {
		if a != k {
			t.Fatalf("counter order broken: %v", seq)
		}
	}
	if _, err := (Counter{}).Sequence(0); err == nil {
		t.Error("size 0 must fail")
	}
}

func TestLFSRSequence(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64, 256, 1024} {
		seq, err := LFSR{}.Sequence(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !isPermutation(n, seq) {
			t.Fatalf("n=%d: not a permutation: %v", n, seq)
		}
		// Pseudo-random: must differ from the counter order.
		counterLike := true
		for k, a := range seq {
			if a != k {
				counterLike = false
				break
			}
		}
		if counterLike {
			t.Errorf("n=%d: LFSR degenerated to counter order", n)
		}
	}
	if _, err := (LFSR{}).Sequence(6); err == nil {
		t.Error("non-power-of-two size must fail")
	}
	if _, err := (LFSR{}).Sequence(4096); err == nil {
		t.Error("width without polynomial must fail")
	}
}

func TestLFSRSeedChangesOrder(t *testing.T) {
	a, _ := LFSR{Seed: 1}.Sequence(16)
	b, _ := LFSR{Seed: 5}.Sequence(16)
	same := true
	for k := range a {
		if a[k] != b[k] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds must rotate the sequence")
	}
}

func TestAddressComplementSequence(t *testing.T) {
	seq, err := AddressComplement{}.Sequence(8)
	if err != nil {
		t.Fatal(err)
	}
	if !isPermutation(8, seq) {
		t.Fatalf("not a permutation: %v", seq)
	}
	if seq[0] != 0 || seq[1] != 7 {
		t.Errorf("order %v, want 0,7,...", seq)
	}
	if _, err := (AddressComplement{}).Sequence(6); err == nil {
		t.Error("non-power-of-two must fail")
	}
}

func TestMISRDeterministicAndSensitive(t *testing.T) {
	m, err := NewMISR(16)
	if err != nil {
		t.Fatal(err)
	}
	stream := []march.Bit{march.Zero, march.One, march.One, march.Zero, march.One}
	for _, b := range stream {
		m.Shift(b)
	}
	sig1 := m.Signature()
	m.Reset()
	for _, b := range stream {
		m.Shift(b)
	}
	if m.Signature() != sig1 {
		t.Error("MISR must be deterministic")
	}
	m.Reset()
	stream[2] = march.Zero // single-bit error
	for _, b := range stream {
		m.Shift(b)
	}
	if m.Signature() == sig1 {
		t.Error("single-bit error must change the signature")
	}
	if _, err := NewMISR(5); err == nil {
		t.Error("unsupported width must fail")
	}
}

func TestGoldenRunPasses(t *testing.T) {
	c := Controller{}
	sig, err := c.Golden(known(t, "MarchC-"), 16)
	if err != nil {
		t.Fatal(err)
	}
	// The golden signature is stable across invocations.
	sig2, err := c.Golden(known(t, "MarchC-"), 16)
	if err != nil || sig != sig2 {
		t.Errorf("golden signature unstable: %x vs %x (%v)", sig, sig2, err)
	}
	if _, err := c.Golden(known(t, "MarchC-"), 1); err == nil {
		t.Error("size 1 must fail")
	}
}

// TestComparatorAndSignatureAgree: for every Table-3 fault instance
// injected into the memory, the comparator verdict and the
// signature-vs-golden verdict must both flag the defect (no MISR aliasing
// on this instance population).
func TestComparatorAndSignatureAgree(t *testing.T) {
	c := Controller{}
	test := known(t, "MarchC-")
	const n = 16
	golden, err := c.Golden(test, n)
	if err != nil {
		t.Fatal(err)
	}
	models, err := fault.ParseList("SAF,TF,ADF,CFin,CFid")
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range fault.Instances(models) {
		for initMask := 0; initMask < 4; initMask++ {
			mem, err := sim.NewMemory(n, &sim.PlacedFault{Instance: inst, A: 3, B: 9})
			if err != nil {
				t.Fatal(err)
			}
			mem.SetCell(3, march.BitOf(initMask&1 != 0))
			mem.SetCell(9, march.BitOf(initMask&2 != 0))
			res, err := c.Run(test, mem)
			if err != nil {
				t.Fatal(err)
			}
			if res.Pass {
				t.Fatalf("%s (init %d): comparator missed the defect", inst.Name, initMask)
			}
			if res.Signature == golden {
				t.Errorf("%s (init %d): MISR aliasing — faulty run compacted to the golden signature",
					inst.Name, initMask)
			}
		}
	}
}

// TestLFSRWithReversedDownKeepsCoverage: an LFSR address order is fine as
// long as descending elements walk the exact reverse sequence — March
// semantics only need "some fixed order and its reverse".
func TestLFSRWithReversedDownKeepsCoverage(t *testing.T) {
	c := Controller{Addresses: LFSR{}}
	checkCoverage(t, c, true)
}

// TestReseededDownLFSRLosesCoverage demonstrates the classic BIST design
// error: implementing ⇓ with an independently seeded LFSR instead of the
// reverse walk silently drops coupling-fault coverage.
func TestReseededDownLFSRLosesCoverage(t *testing.T) {
	c := Controller{Addresses: LFSR{}, DownGenerator: LFSR{Seed: 5}}
	checkCoverage(t, c, false)
}

// checkCoverage runs March C- against every CFid instance on a 16-cell
// memory across placements and initial contents and asserts whether
// every run must fail.
func checkCoverage(t *testing.T, c Controller, wantComplete bool) {
	t.Helper()
	test := known(t, "MarchC-")
	const n = 16
	models, err := fault.ParseList("CFid")
	if err != nil {
		t.Fatal(err)
	}
	escapes := 0
	for _, inst := range fault.Instances(models) {
		for _, pair := range [][2]int{{0, 1}, {2, 11}, {7, 8}, {5, 13}} {
			for initMask := 0; initMask < 4; initMask++ {
				mem, err := sim.NewMemory(n, &sim.PlacedFault{Instance: inst, A: pair[0], B: pair[1]})
				if err != nil {
					t.Fatal(err)
				}
				mem.SetCell(pair[0], march.BitOf(initMask&1 != 0))
				mem.SetCell(pair[1], march.BitOf(initMask&2 != 0))
				res, err := c.Run(test, mem)
				if err != nil {
					t.Fatal(err)
				}
				if res.Pass {
					escapes++
				}
			}
		}
	}
	if wantComplete && escapes > 0 {
		t.Errorf("%d escapes with reversed-down addressing; want none", escapes)
	}
	if !wantComplete && escapes == 0 {
		t.Error("re-seeded down LFSR should lose coupling coverage, but nothing escaped")
	}
}

// TestTapMasksAreMaximal verifies every tap mask yields the full 2^w−1
// LFSR period in the right-shift form the package uses.
func TestTapMasksAreMaximal(t *testing.T) {
	check := func(width int, taps uint) {
		t.Helper()
		n := uint(1) << width
		state, count := uint(1), uint(0)
		for {
			fb := bitParity(state & taps)
			state = (state >> 1) | fb<<(width-1)
			count++
			if state == 1 {
				break
			}
			if state == 0 || count > n {
				t.Fatalf("width %d taps %#b: degenerate cycle", width, taps)
			}
		}
		if count != n-1 {
			t.Errorf("width %d taps %#b: period %d, want %d", width, taps, count, n-1)
		}
	}
	for w, taps := range lfsrTaps {
		check(w, taps)
	}
	for w, taps := range misrTaps {
		check(w, taps)
	}
}
