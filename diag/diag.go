// Package diag implements March-test-based fault diagnosis — the
// direction of Niggemeyer, Redeker and Rudnick's output-tracing work
// (reference [6] of the reproduced paper): instead of a pass/fail verdict,
// the full trace of failing read operations (the syndrome) is kept and
// matched against a pre-computed fault dictionary to identify which defect
// is present.
//
// The dictionary is exact with respect to the repository's fault
// machinery: for every fault instance the simulator enumerates the
// possible syndromes (one per unknown initial memory content) of the March
// test under its canonical addressing resolution, and diagnosis returns
// precisely the instances consistent with an observed syndrome. Tests are
// assumed to start from a power-cycled (unknown) memory; a passing run is
// the empty syndrome and is consistent with a fault-free memory plus every
// instance the test does not guarantee to detect.
package diag

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"marchgen/fault"
	"marchgen/internal/budget"
	"marchgen/internal/obs"
	"marchgen/internal/pool"
	"marchgen/internal/sim"
	"marchgen/march"
)

// GoodName is the dictionary entry representing a fault-free memory.
const GoodName = "(fault-free)"

// Syndrome is the observable outcome of applying one March test: the
// flattened operation indices whose read-and-verify failed, in ascending
// order.
type Syndrome []int

// Key returns a canonical string form usable as a map key.
func (s Syndrome) Key() string {
	if len(s) == 0 {
		return "pass"
	}
	parts := make([]string, len(s))
	for k, op := range s {
		parts[k] = strconv.Itoa(op)
	}
	return strings.Join(parts, ",")
}

// Pass reports whether the syndrome is the passing outcome.
func (s Syndrome) Pass() bool { return len(s) == 0 }

// Dictionary maps the syndromes a March test can produce to the fault
// instances consistent with them.
type Dictionary struct {
	Test *march.Test
	// resolution is the canonical addressing resolution used on the
	// tester (⇕ elements applied ascending).
	resolution []march.Order
	// byInstance holds the deduplicated possible syndromes per instance.
	byInstance map[string][]Syndrome
	// bySyndrome holds the instances consistent with each syndrome key.
	bySyndrome map[string][]string
	// order preserves instance ordering for deterministic output.
	order []string
}

// Build computes the fault dictionary of a March test for a fault list.
func Build(t *march.Test, models []fault.Model) (*Dictionary, error) {
	d, _, err := BuildCtx(context.Background(), t, models, time.Time{})
	return d, err
}

// BuildCtx is Build with cancellation and an optional soft deadline.
// Cancelling ctx aborts the per-instance simulation with a typed error
// (budget.ErrCanceled / budget.ErrDeadlineExceeded). Once a non-zero soft
// deadline passes, instances not yet simulated are omitted and
// truncated=true is returned: the partial dictionary still diagnoses the
// instances it covers, it just cannot rule out the omitted ones.
func BuildCtx(ctx context.Context, t *march.Test, models []fault.Model, soft time.Time) (*Dictionary, bool, error) {
	return BuildWorkersCtx(ctx, t, models, soft, 1)
}

// BuildWorkersCtx is BuildCtx with the per-instance simulation fanned out
// over a bounded worker pool (workers <= 0: GOMAXPROCS). Instances are
// processed in batches so the soft deadline is still honoured between
// batches, and a truncated dictionary still omits exactly a suffix of the
// instance list; syndromes are recorded in instance order, so the full
// dictionary is byte-identical at any worker count.
func BuildWorkersCtx(ctx context.Context, t *march.Test, models []fault.Model, soft time.Time, workers int) (*Dictionary, bool, error) {
	if err := sim.SelfConsistent(t); err != nil {
		return nil, false, err
	}
	resolutions, err := sim.Resolutions(t)
	if err != nil {
		return nil, false, err
	}
	d := &Dictionary{
		Test:       t,
		resolution: resolutions[0], // canonical: every ⇕ applied ascending
		byInstance: map[string][]Syndrome{},
		bySyndrome: map[string][]string{},
	}
	d.add(GoodName, Syndrome(nil))
	truncated := false
	insts := fault.Instances(models)
	run := obs.From(ctx)
	sp := run.StartUnder("diag/build").SetInt("instances", int64(len(insts)))
	defer func() {
		if truncated {
			sp.SetInt("truncated", 1)
		}
		sp.SetInt("syndromes", int64(len(d.bySyndrome))).End()
		run.Counter("diag.instances").Add(int64(len(insts)))
		run.Counter("diag.builds").Inc()
	}()
	workers = pool.Size(workers)
	batch := 1
	if workers > 1 {
		batch = workers * 4
	}
	for lo := 0; lo < len(insts) && !truncated; lo += batch {
		if err := budget.CtxErr(ctx); err != nil {
			return nil, false, err
		}
		if !soft.IsZero() && time.Now().After(soft) {
			truncated = true
			break
		}
		hi := min(lo+batch, len(insts))
		perInst, err := pool.MapCtx(ctx, workers, hi-lo, func(i int) ([]sim.Run, error) {
			return sim.Runs(t, insts[lo+i])
		})
		if err != nil {
			return nil, false, err
		}
		for k, runs := range perInst {
			for _, run := range runs {
				if !sameResolution(run.Resolution, d.resolution) {
					continue
				}
				d.add(insts[lo+k].Name, Syndrome(run.MismatchOps))
			}
		}
	}
	return d, truncated, nil
}

func sameResolution(a, b []march.Order) bool {
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// add records a possible syndrome for an instance, deduplicating.
func (d *Dictionary) add(name string, s Syndrome) {
	if _, seen := d.byInstance[name]; !seen {
		d.order = append(d.order, name)
	}
	key := s.Key()
	for _, old := range d.byInstance[name] {
		if old.Key() == key {
			return
		}
	}
	d.byInstance[name] = append(d.byInstance[name], s)
	d.bySyndrome[key] = append(d.bySyndrome[key], name)
}

// Instances lists the dictionary's entries (including GoodName), in
// insertion order.
func (d *Dictionary) Instances() []string {
	return append([]string(nil), d.order...)
}

// Outcomes returns the possible syndromes of an instance (one per initial
// memory content that produces a distinct failure trace).
func (d *Dictionary) Outcomes(instance string) []Syndrome {
	return append([]Syndrome(nil), d.byInstance[instance]...)
}

// Diagnose returns the fault instances consistent with an observed
// syndrome, sorted. An unknown syndrome returns an empty slice — the
// defect is outside the modelled fault list.
func (d *Dictionary) Diagnose(s Syndrome) []string {
	sorted := append(Syndrome(nil), s...)
	sort.Ints(sorted)
	out := append([]string(nil), d.bySyndrome[sorted.Key()]...)
	sort.Strings(out)
	return out
}

// Distinguishes reports whether the test always separates instances a and
// b: no observable syndrome is consistent with both.
func (d *Dictionary) Distinguishes(a, b string) bool {
	sa, oka := d.byInstance[a]
	sb, okb := d.byInstance[b]
	if !oka || !okb {
		return false
	}
	for _, x := range sa {
		for _, y := range sb {
			if x.Key() == y.Key() {
				return false
			}
		}
	}
	return true
}

// AmbiguityClasses partitions the dictionary entries into groups that the
// test cannot always tell apart: two instances share a group when they are
// connected by a chain of shared syndromes. A singleton group means the
// instance is fully diagnosable by this test.
func (d *Dictionary) AmbiguityClasses() [][]string {
	return ambiguity(d.order, func(a, b string) bool { return d.Distinguishes(a, b) })
}

// ambiguity computes connected components of the "not distinguished"
// relation.
func ambiguity(names []string, distinguishes func(a, b string) bool) [][]string {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, n := range names {
		parent[n] = n
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if !distinguishes(names[i], names[j]) {
				parent[find(names[i])] = find(names[j])
			}
		}
	}
	groups := map[string][]string{}
	for _, n := range names {
		root := find(n)
		groups[root] = append(groups[root], n)
	}
	var out [][]string
	for _, g := range groups {
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// String renders the dictionary for human inspection.
func (d *Dictionary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dictionary for %s\n", d.Test)
	for _, name := range d.order {
		keys := make([]string, 0, len(d.byInstance[name]))
		for _, s := range d.byInstance[name] {
			keys = append(keys, "{"+s.Key()+"}")
		}
		fmt.Fprintf(&b, "  %-28s %s\n", name, strings.Join(keys, " "))
	}
	return b.String()
}
