package diag

import (
	"strings"
	"testing"

	"marchgen/fault"
	"marchgen/march"
)

func models(t *testing.T, list string) []fault.Model {
	t.Helper()
	m, err := fault.ParseList(list)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func known(t *testing.T, name string) *march.Test {
	t.Helper()
	kt, ok := march.Known(name)
	if !ok {
		t.Fatalf("unknown %s", name)
	}
	return kt.Test
}

func TestSyndromeKey(t *testing.T) {
	if (Syndrome{}).Key() != "pass" || !(Syndrome{}).Pass() {
		t.Error("empty syndrome must be the pass outcome")
	}
	if (Syndrome{1, 3}).Key() != "1,3" {
		t.Errorf("key %q", Syndrome{1, 3}.Key())
	}
	if (Syndrome{1}).Pass() {
		t.Error("failing syndrome misclassified")
	}
}

func TestDictionarySAF(t *testing.T) {
	d, err := Build(known(t, "MATS"), models(t, "SAF"))
	if err != nil {
		t.Fatal(err)
	}
	// MATS = ⇕(w0); ⇕(r0,w1); ⇕(r1): ops 0..3; reads at 1 and 3.
	// SA0 always fails exactly the r1 (op 3); SA1 always the r0 (op 1).
	sa0 := d.Diagnose(Syndrome{3})
	if len(sa0) != 1 || sa0[0] != "SA0" {
		t.Errorf("syndrome {3} -> %v, want [SA0]", sa0)
	}
	sa1 := d.Diagnose(Syndrome{1})
	if len(sa1) != 1 || sa1[0] != "SA1" {
		t.Errorf("syndrome {1} -> %v, want [SA1]", sa1)
	}
	pass := d.Diagnose(nil)
	if len(pass) != 1 || pass[0] != GoodName {
		t.Errorf("pass -> %v, want fault-free only", pass)
	}
	if got := d.Diagnose(Syndrome{0}); len(got) != 0 {
		t.Errorf("unmodelled syndrome -> %v, want none", got)
	}
	if !d.Distinguishes("SA0", "SA1") {
		t.Error("MATS must distinguish SA0 from SA1")
	}
	classes := d.AmbiguityClasses()
	if len(classes) != 3 { // fault-free, SA0, SA1
		t.Errorf("classes %v", classes)
	}
}

// TestDictionaryUndetectedIsAmbiguousWithGood: a fault the test does not
// guarantee to detect shares the pass outcome with the fault-free memory.
func TestDictionaryUndetectedIsAmbiguousWithGood(t *testing.T) {
	d, err := Build(known(t, "MATS"), models(t, "TF"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Distinguishes("TF<d>", GoodName) {
		t.Error("MATS does not guarantee TF<d> detection; must be ambiguous with pass")
	}
	candidates := d.Diagnose(nil)
	found := false
	for _, c := range candidates {
		if c == "TF<d>" {
			found = true
		}
	}
	if !found {
		t.Errorf("pass outcome candidates %v must include TF<d>", candidates)
	}
}

func TestDictionaryOutcomesPerInit(t *testing.T) {
	d, err := Build(known(t, "MATS"), models(t, "SOF"))
	if err != nil {
		t.Fatal(err)
	}
	// The stuck-open cell is frozen at its unknown power-up value: the
	// syndrome depends on the initial content, so SOF has two outcomes.
	if got := d.Outcomes("SOF"); len(got) != 2 {
		t.Errorf("SOF outcomes %v, want 2 distinct syndromes", got)
	}
}

func TestDictionaryString(t *testing.T) {
	d, err := Build(known(t, "MATS"), models(t, "SAF"))
	if err != nil {
		t.Fatal(err)
	}
	s := d.String()
	if !strings.Contains(s, "SA0") || !strings.Contains(s, "{3}") {
		t.Errorf("rendering:\n%s", s)
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	bad := march.New(march.Elem(march.Up, march.R1))
	if _, err := Build(bad, models(t, "SAF")); err == nil {
		t.Error("invalid test must be rejected")
	}
}

// TestMarchCMinusResolvesCouplingDirections: the syndrome of March C-
// separates idempotent coupling faults by direction and aggressor side.
func TestMarchCMinusResolvesCouplingDirections(t *testing.T) {
	d, err := Build(known(t, "MarchC-"), models(t, "CFid"))
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]string{
		{"CFid<u,0> agg=i", "CFid<u,0> agg=j"},
		{"CFid<u,0> agg=i", "CFid<d,0> agg=i"},
		{"CFid<u,1> agg=i", "CFid<u,0> agg=i"},
	}
	for _, p := range pairs {
		if !d.Distinguishes(p[0], p[1]) {
			t.Errorf("March C- must distinguish %s from %s", p[0], p[1])
		}
	}
}

func TestPlanImprovesResolution(t *testing.T) {
	faultList := models(t, "SAF,TF,CFid")
	pool := []*march.Test{
		known(t, "MATS"),
		known(t, "MATS++"),
		known(t, "MarchC-"),
		known(t, "MarchY"),
	}
	plan, err := BuildPlan(faultList, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tests) == 0 {
		t.Fatal("empty plan")
	}
	single, err := Build(known(t, "MATS"), faultList)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Resolution() < 0.5 {
		t.Errorf("plan resolution %.2f too weak; classes %v", plan.Resolution(), plan.AmbiguityClasses())
	}
	if len(plan.AmbiguityClasses()) < len(single.AmbiguityClasses()) {
		t.Error("plan must not resolve worse than a single test")
	}
}

func TestPlanDiagnose(t *testing.T) {
	faultList := models(t, "SAF")
	pool := []*march.Test{known(t, "MATS")}
	plan, err := BuildPlan(faultList, pool)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Diagnose([]Syndrome{{3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "SA0" {
		t.Errorf("diagnosis %v, want [SA0]", got)
	}
	if _, err := plan.Diagnose(nil); err == nil {
		t.Error("syndrome count mismatch must fail")
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := BuildPlan(models(t, "SAF"), nil); err == nil {
		t.Error("empty pool must fail")
	}
}
