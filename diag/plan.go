package diag

import (
	"fmt"
	"sort"

	"marchgen/fault"
	"marchgen/march"
)

// Plan is a multi-test diagnostic procedure: a sequence of March tests
// applied (each from a power-cycled memory) whose combined syndromes
// maximise fault resolution.
type Plan struct {
	Tests []*march.Test
	dicts []*Dictionary
	names []string
}

// BuildPlan greedily selects tests from the pool until no additional test
// improves resolution: at each step the test splitting the most ambiguity
// is added. The classic March library plus a generated test make a good
// pool.
func BuildPlan(models []fault.Model, pool []*march.Test) (*Plan, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("diag: empty test pool")
	}
	dicts := make([]*Dictionary, len(pool))
	for k, t := range pool {
		d, err := Build(t, models)
		if err != nil {
			return nil, fmt.Errorf("diag: pool test %s: %w", t, err)
		}
		dicts[k] = d
	}
	names := dicts[0].Instances()

	plan := &Plan{}
	chosen := map[int]bool{}
	for {
		bestK, bestScore := -1, plan.classCount(names)
		for k := range pool {
			if chosen[k] {
				continue
			}
			trial := &Plan{
				Tests: append(append([]*march.Test(nil), plan.Tests...), pool[k]),
				dicts: append(append([]*Dictionary(nil), plan.dicts...), dicts[k]),
			}
			if score := trial.classCount(names); score > bestScore {
				bestK, bestScore = k, score
			}
		}
		if bestK < 0 {
			break
		}
		chosen[bestK] = true
		plan.Tests = append(plan.Tests, pool[bestK])
		plan.dicts = append(plan.dicts, dicts[bestK])
	}
	plan.names = names
	if len(plan.Tests) == 0 {
		// No test distinguishes anything beyond a single class; keep the
		// first pool entry so the plan is at least a detector.
		plan.Tests = []*march.Test{pool[0]}
		plan.dicts = []*Dictionary{dicts[0]}
	}
	return plan, nil
}

// Distinguishes reports whether some test of the plan always separates the
// two instances.
func (p *Plan) Distinguishes(a, b string) bool {
	for _, d := range p.dicts {
		if d.Distinguishes(a, b) {
			return true
		}
	}
	return false
}

// classCount scores a plan: the number of ambiguity classes it induces
// (higher is better; equal to len(names) means full resolution).
func (p *Plan) classCount(names []string) int {
	return len(ambiguity(names, p.Distinguishes))
}

// AmbiguityClasses partitions the fault list under the whole plan.
func (p *Plan) AmbiguityClasses() [][]string {
	return ambiguity(p.names, p.Distinguishes)
}

// Resolution returns the fraction of dictionary entries that the plan
// diagnoses down to a singleton class.
func (p *Plan) Resolution() float64 {
	classes := p.AmbiguityClasses()
	singletons := 0
	for _, c := range classes {
		if len(c) == 1 {
			singletons++
		}
	}
	return float64(singletons) / float64(len(p.names))
}

// Diagnose intersects the per-test diagnoses of observed syndromes, one
// syndrome per plan test, in order.
func (p *Plan) Diagnose(observed []Syndrome) ([]string, error) {
	if len(observed) != len(p.Tests) {
		return nil, fmt.Errorf("diag: %d syndromes for a %d-test plan", len(observed), len(p.Tests))
	}
	counts := map[string]int{}
	for k, d := range p.dicts {
		for _, name := range d.Diagnose(observed[k]) {
			counts[name]++
		}
	}
	var out []string
	for name, c := range counts {
		if c == len(p.dicts) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}
