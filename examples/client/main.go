// Client walkthrough for the marchserve HTTP API: generate a March test,
// show that a repeated request is a cache hit, and verify a classic test,
// all over the wire. With no flags it starts an in-process server on an
// ephemeral port so the example is self-contained; point it at a running
// server with -addr.
//
//	go run ./examples/client
//	go run ./examples/client -addr localhost:8080
//
// The wire schemas and the error table are documented in docs/api.md.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"marchgen/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "marchserve address (empty: start an in-process server)")
	flag.Parse()

	base := *addr
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, serve.New(serve.DefaultConfig()).Handler()) //nolint:errcheck
		base = ln.Addr().String()
		fmt.Printf("started in-process server on %s\n\n", base)
	}

	// Generate the Table 3 row 5 fault list — the March C- equivalent.
	var gen struct {
		Test       string `json:"test"`
		Complexity int    `json:"complexity"`
		Instances  int    `json:"instances"`
		FromCache  bool   `json:"from_cache"`
		ElapsedUS  int64  `json:"elapsed_us"`
	}
	post(base, "/v1/generate", map[string]any{
		"faults": "SAF,TF,ADF,CFin,CFid",
	}, &gen)
	fmt.Printf("generated: %s\n", gen.Test)
	fmt.Printf("complexity %dn over %d fault instances in %dµs\n\n",
		gen.Complexity, gen.Instances, gen.ElapsedUS)

	// The identical request again: served from the memo cache, engine
	// skipped. Concurrent identical requests would coalesce instead.
	post(base, "/v1/generate", map[string]any{
		"faults": "SAF,TF,ADF,CFin,CFid",
	}, &gen)
	fmt.Printf("repeat request: from_cache=%v, %dµs\n\n", gen.FromCache, gen.ElapsedUS)

	// Verify a classic test from the library against a fault list it
	// famously misses.
	var ver struct {
		Complete bool     `json:"complete"`
		Missed   []string `json:"missed"`
	}
	post(base, "/v1/verify", map[string]any{
		"known":  "MATS+",
		"faults": "SAF,TF",
	}, &ver)
	fmt.Printf("MATS+ vs SAF,TF: complete=%v, missed=%v\n", ver.Complete, ver.Missed)
}

// post sends one JSON request and decodes the response into out,
// surfacing the API's uniform error body on non-2xx statuses.
func post(base, path string, body, out any) {
	raw, _ := json.Marshal(body)
	resp, err := http.Post("http://"+base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: %d %s: %s", path, resp.StatusCode, e.Code, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
