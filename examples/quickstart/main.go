// Quickstart: generate an optimal March test for a fault list and verify
// it, end to end, in a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"marchgen"
)

func main() {
	// Generate a minimal March test covering stuck-at, transition and
	// address-decoder faults — the fault list of the paper's Table 3 row 3.
	res, err := marchgen.Generate("SAF,TF,ADF")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated: %s\n", res.Test)
	fmt.Printf("complexity: %s (MATS++, the classic hand-made test, is 6n too)\n",
		res.Test.ComplexityLabel())
	fmt.Printf("fault instances covered: %d, generated in %s\n",
		len(res.Instances), res.Stats.Elapsed)

	// Verify independently with the fault simulator, including the
	// Coverage-Matrix / Set-Covering non-redundancy analysis.
	rep, err := marchgen.Verify(res.Test, "SAF,TF,ADF")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complete coverage: %v, non-redundant: %v\n", rep.Complete, rep.NonRedundant)

	// The same verifier works on any March test — here the classic MATS+,
	// which misses transition faults.
	rep, err = marchgen.VerifyKnown("MATS+", "SAF,TF,ADF")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MATS+ covers SAF,TF,ADF: %v (missed: %v)\n", rep.Complete, rep.Missed)
}
