// Baseline comparison: measure the paper's pipeline against the prior-art
// generators it displaces — the exhaustive transition-tree enumeration of
// van de Goor & Smit and the pruned branch-and-bound of Zarrineh et al. —
// on fault lists of growing difficulty. All three return March tests of
// the same (provably optimal) complexity; the running times differ by
// orders of magnitude, which is the paper's point.
//
//	go run ./examples/baselinecompare           # fast subset
//	go run ./examples/baselinecompare -deep     # adds the 10n March C- row
package main

import (
	"flag"
	"fmt"
	"log"

	"marchgen/internal/experiments"
)

func main() {
	deep := flag.Bool("deep", false, "include the ~20 s 10n certification")
	flag.Parse()

	rows, err := experiments.Comparison(*deep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s | %-18s | %-28s | %-22s\n",
		"fault list", "pipeline (paper)", "branch & bound [5]", "exhaustive [2-4]")
	fmt.Println("-----------------------+--------------------+------------------------------+----------------------")
	for _, r := range rows {
		ex := "infeasible, skipped"
		if !r.ExSkipped {
			ex = fmt.Sprintf("%dn in %v (%d tests)", r.ExComplexity, r.ExTime, r.ExTests)
		}
		fmt.Printf("%-22s | %dn in %-12v | %dn in %-12v (%d nodes) | %s\n",
			r.Faults, r.CoreComplexity, r.CoreTime, r.BBComplexity, r.BBTime, r.BBNodes, ex)
	}
	fmt.Println("\nSame optima everywhere; only the pipeline's cost stays flat as the fault list grows.")
}
