// Diagnosis: beyond pass/fail, the trace of failing reads (the syndrome)
// identifies which defect is present. This example builds the fault
// dictionary of March C- for a mixed fault list, shows how an observed
// syndrome maps back to candidate defects, and assembles a multi-test
// diagnostic plan that tells apart what a single test cannot.
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"
	"log"

	"marchgen/diag"
	"marchgen/fault"
	"marchgen/march"
)

func main() {
	models, err := fault.ParseList("SAF,TF,CFid")
	if err != nil {
		log.Fatal(err)
	}
	kt, _ := march.Known("MarchC-")

	dict, err := diag.Build(kt.Test, models)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dict)

	// A tester observed failing reads at operations 3 and 7 — who did it?
	observed := diag.Syndrome{3, 7}
	fmt.Printf("observed syndrome {%s} -> candidates %v\n\n", observed.Key(), dict.Diagnose(observed))

	fmt.Println("ambiguity classes under March C- alone:")
	for _, class := range dict.AmbiguityClasses() {
		fmt.Printf("  %v\n", class)
	}

	// A plan drawing on more tests sharpens the diagnosis.
	pool := []*march.Test{}
	for _, name := range []string{"MarchC-", "MATS++", "MarchY", "MarchA"} {
		k, _ := march.Known(name)
		pool = append(pool, k.Test)
	}
	plan, err := diag.BuildPlan(models, pool)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan uses %d tests, resolution %.0f%%:\n", len(plan.Tests), plan.Resolution()*100)
	for _, t := range plan.Tests {
		fmt.Printf("  %s\n", t)
	}
	fmt.Println("ambiguity classes under the plan:")
	for _, class := range plan.AmbiguityClasses() {
		fmt.Printf("  %v\n", class)
	}
}
