// Coverage audit: run every classic March test of the library against
// every built-in fault model and print the resulting coverage grid — the
// simulator-backed version of the textbook "which test detects which
// fault" tables, and the evidence behind the "equivalent known March test"
// column of the paper's Table 3.
//
//	go run ./examples/coverageaudit
package main

import (
	"fmt"
	"log"

	"marchgen"
	"marchgen/march"
)

func main() {
	models := []string{"SAF", "TF", "WDF", "RDF", "DRDF", "IRF", "SOF", "DRF", "ADF", "CFin", "CFid", "CFst"}

	fmt.Printf("%-9s %4s |", "test", "k")
	for _, m := range models {
		fmt.Printf(" %-4s", m)
	}
	fmt.Println()
	fmt.Println("---------------+-" + dashes(5*len(models)))

	for _, name := range march.KnownNames() {
		kt, _ := march.Known(name)
		fmt.Printf("%-9s %3dn |", name, kt.Complexity)
		for _, m := range models {
			rep, err := marchgen.Verify(kt.Test, m)
			if err != nil {
				log.Fatal(err)
			}
			mark := "  ·"
			if rep.Complete {
				mark = "  ✓"
			}
			fmt.Printf(" %-4s", mark)
		}
		fmt.Println()
	}
	fmt.Println("\n✓ = guaranteed detection of every instance of the model")
	fmt.Println("(every verdict is simulator-proven over all initial contents and ⇕ orders)")
}

func dashes(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '-'
	}
	return string(s)
}
