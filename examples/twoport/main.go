// Two-port memories: the extension the paper names as future work. Weak
// faults — defects sensitised only by simultaneous accesses from both
// ports — are invisible to every single-port March test; this example
// proves it with the two-port fault simulator and then synthesises a
// minimal two-port March test covering the whole weak-fault list.
//
//	go run ./examples/twoport
package main

import (
	"fmt"
	"log"

	"marchgen/march"
	"marchgen/mp"
)

func main() {
	weak := mp.Models()
	fmt.Println("two-port weak fault list:")
	for _, inst := range weak {
		fmt.Printf("  %-10s (two-cell: %v)\n", inst.Name, inst.TwoCell)
	}

	// Even the strongest single-port tests miss every weak fault.
	fmt.Println("\nsingle-port March tests (port A only, port B idle):")
	for _, name := range []string{"MATS++", "MarchC-", "MarchSS"} {
		kt, _ := march.Known(name)
		lifted, err := mp.Single(kt.Test)
		if err != nil {
			log.Fatal(err)
		}
		missed := 0
		for _, inst := range weak {
			ok, err := mp.Detects(lifted, inst, 6)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				missed++
			}
		}
		fmt.Printf("  %-8s misses %d/%d weak faults\n", name, missed, len(weak))
	}

	// A two-port test with simultaneous double reads covers them all.
	test, stats, err := mp.Generate(weak, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated two-port test: %s\n", test)
	fmt.Printf("complexity: %d cycles per cell (found in %v, %d search nodes)\n",
		test.Complexity(), stats.Elapsed, stats.Nodes)
	for _, inst := range weak {
		ok, err := mp.Detects(test, inst, 6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s detected: %v\n", inst.Name, ok)
	}
}
