// Custom fault models: the paper's approach works for "an unconstrained
// set of memory faults", including user-defined ones. This example defines
// a write-bridge defect — writing 1 into a cell also forces its neighbour
// high — directly as deviations of the two-cell memory FSM, generates an
// optimal March test for it (alone and combined with stuck-at faults), and
// verifies which classic tests would have caught it.
//
//	go run ./examples/customfault
package main

import (
	"fmt"
	"log"

	"marchgen"
	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/march"
)

func main() {
	// A "write-1 bridge": w1 on the aggressor also drives the victim to 1
	// when the victim holds 0. Both aggressor orders are separate defect
	// hypotheses, like any coupling fault.
	aggLow, err := fault.FromDeviations("BRIDGE", "BRIDGE<w1> agg=i", false,
		fsm.TransitionDev(
			fsm.S(march.X, march.Zero),   // any aggressor value, victim at 0
			fsm.Wr(fsm.CellI, march.One), // the bridging write
			fsm.S(march.X, march.One)))   // the victim is dragged to 1
	if err != nil {
		log.Fatal(err)
	}
	aggHigh, err := fault.FromDeviations("BRIDGE", "BRIDGE<w1> agg=j", false,
		fsm.TransitionDev(
			fsm.S(march.Zero, march.X),
			fsm.Wr(fsm.CellJ, march.One),
			fsm.S(march.One, march.X)))
	if err != nil {
		log.Fatal(err)
	}
	bridge, err := fault.Custom("BRIDGE", "write-1 bridge between adjacent cells", aggLow, aggHigh)
	if err != nil {
		log.Fatal(err)
	}
	for _, inst := range bridge.Instances {
		fmt.Printf("instance %-18s test pattern %s\n", inst.Name, inst.BFEs[0].Pattern)
	}

	// Generate the optimal March test for the bridge alone...
	res, err := marchgen.GenerateModels([]fault.Model{bridge})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal for BRIDGE alone:    %s (%s)\n", res.Test, res.Test.ComplexityLabel())

	// ...and combined with the stock stuck-at model.
	saf, err := fault.Parse("SAF")
	if err != nil {
		log.Fatal(err)
	}
	res, err = marchgen.GenerateModels([]fault.Model{saf, bridge})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal for SAF + BRIDGE:    %s (%s)\n", res.Test, res.Test.ComplexityLabel())

	// Which classic tests would have caught the bridge anyway?
	fmt.Println("\nclassic March tests vs BRIDGE:")
	for _, name := range march.KnownNames() {
		kt, _ := march.Known(name)
		rep, err := marchgen.VerifyModels(kt.Test, []fault.Model{bridge})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "misses it"
		if rep.Complete {
			verdict = "detects it"
		}
		fmt.Printf("  %-8s (%2dn) %s\n", name, kt.Complexity, verdict)
	}
}
