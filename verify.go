package marchgen

import (
	"context"
	"fmt"

	"marchgen/fault"
	"marchgen/internal/cover"
	"marchgen/internal/memo"
	"marchgen/internal/obs"
	"marchgen/internal/sim"
	"marchgen/march"
)

// boolInt renders a boolean as a span/metric attribute value.
func boolInt(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// InstanceCoverage is the verdict of a March test on one fault instance.
type InstanceCoverage struct {
	// Model and Name identify the instance (e.g. "CFid" / "CFid<u,0> agg=i").
	Model, Name string
	// Detected reports guaranteed detection: a read mismatch occurs for
	// every initial memory content under every ⇕ order resolution.
	Detected bool
	// DetectingOps lists flattened operation indices of the test whose
	// reads individually certify detection.
	DetectingOps []int
}

// CoverageReport is the outcome of verifying a March test against a fault
// list: the coverage verdict per instance plus the paper's Section 6
// non-redundancy analysis (run only when coverage is complete).
type CoverageReport struct {
	// Test is the verified test (parsed form, canonical element order).
	Test *march.Test
	// Complexity is the test's operation count per cell (the paper's
	// kn measure with k = Complexity).
	Complexity int
	// Complete is true when every fault instance is detected.
	Complete bool
	// Missed lists undetected instance names.
	Missed []string
	// Instances holds the per-instance verdicts.
	Instances []InstanceCoverage
	// NonRedundant is true when every elementary block of the test is
	// needed (minimum Set Cover uses all blocks) and no operation is
	// individually removable. Only meaningful when Complete.
	NonRedundant bool
	// RedundantReads lists detecting reads outside the minimum cover.
	RedundantReads []int
	// RemovableOps lists operations whose individual removal keeps the
	// test complete.
	RemovableOps []int
	// MinCoverBlocks is an optimal choice of elementary blocks (flattened
	// operation indices of reads).
	MinCoverBlocks []int
}

// Verify checks a March test against a comma-separated fault list using
// the two-cell engine of the fault simulator, and — when coverage is
// complete — runs the Coverage Matrix / Set Covering non-redundancy
// analysis.
func Verify(t *march.Test, faults string) (*CoverageReport, error) {
	return VerifyCtx(context.Background(), t, faults)
}

// VerifyCtx is Verify under a cancellation context: cancelling ctx aborts
// the per-instance simulation promptly with ErrCanceled or
// ErrDeadlineExceeded.
func VerifyCtx(ctx context.Context, t *march.Test, faults string) (*CoverageReport, error) {
	models, err := fault.ParseList(faults)
	if err != nil {
		return nil, err
	}
	return VerifyModelsCtx(ctx, t, models)
}

// VerifyWorkersCtx is VerifyCtx with a worker count; see
// VerifyModelsWorkersCtx.
func VerifyWorkersCtx(ctx context.Context, t *march.Test, faults string, workers int) (*CoverageReport, error) {
	models, err := fault.ParseList(faults)
	if err != nil {
		return nil, err
	}
	return VerifyModelsWorkersCtx(ctx, t, models, workers)
}

// VerifyModels is Verify for an already-built fault model list.
func VerifyModels(t *march.Test, models []fault.Model) (*CoverageReport, error) {
	return VerifyModelsCtx(context.Background(), t, models)
}

// VerifyModelsCtx is VerifyModels under a cancellation context; see
// VerifyCtx.
func VerifyModelsCtx(ctx context.Context, t *march.Test, models []fault.Model) (*CoverageReport, error) {
	return VerifyModelsWorkersCtx(ctx, t, models, 1)
}

// VerifyModelsWorkersCtx is VerifyModelsCtx on the parallel engine: the
// per-fault simulation and the coverage-matrix construction fan out over a
// bounded worker pool (workers <= 0: GOMAXPROCS), and with workers > 1 the
// coverage matrix is memoised in the process-wide cache across calls. The
// report is byte-identical to the sequential verification at any worker
// count, warm or cold.
func VerifyModelsWorkersCtx(ctx context.Context, t *march.Test, models []fault.Model, workers int) (*CoverageReport, error) {
	if t == nil {
		return nil, fmt.Errorf("marchgen: nil test")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	instances := fault.Instances(models)
	run := obs.From(ctx)
	sp := run.Start("verify").SetInt("instances", int64(len(instances)))
	defer run.WithPhase(sp)()
	defer sp.End()
	cov, err := sim.EvaluateWorkers(ctx, t, instances, workers)
	if err != nil {
		return nil, err
	}
	rep := &CoverageReport{
		Test:       t,
		Complexity: t.Complexity(),
		Complete:   cov.Complete(),
		Missed:     cov.Missed(),
	}
	for _, r := range cov.Results {
		rep.Instances = append(rep.Instances, InstanceCoverage{
			Model:        r.Instance.Model,
			Name:         r.Instance.Name,
			Detected:     r.Detected,
			DetectingOps: append([]int(nil), r.DetectingOps...),
		})
	}
	sp.SetInt("complete", boolInt(rep.Complete))
	if !rep.Complete {
		return rep, nil
	}
	var cache *memo.Cache
	if workers != 1 {
		cache = memo.Shared()
	}
	analysis, err := cover.AnalyzeWorkers(ctx, t, instances, workers, cache)
	if err != nil {
		return nil, err
	}
	rep.NonRedundant = analysis.NonRedundant
	rep.RedundantReads = analysis.RedundantReads
	rep.RemovableOps = analysis.RemovableOps
	rep.MinCoverBlocks = analysis.MinCover
	return rep, nil
}

// VerifyKnown verifies one of the classic March tests from package march
// (e.g. "MATS+", "MarchC-") against a fault list.
func VerifyKnown(name, faults string) (*CoverageReport, error) {
	kt, ok := march.Known(name)
	if !ok {
		return nil, fmt.Errorf("marchgen: unknown March test %q (known: %v)", name, march.KnownNames())
	}
	return Verify(kt.Test, faults)
}

// VerifyN re-validates coverage with the n-cell memory simulator (the
// paper's validation instrument) instead of the two-cell reduction. It is
// slower and exists for independent confirmation; the package tests prove
// both engines agree.
func VerifyN(t *march.Test, faults string, cells int) (*CoverageReport, error) {
	return VerifyNCtx(context.Background(), t, faults, cells)
}

// VerifyNCtx is VerifyN under a cancellation context; see VerifyCtx.
func VerifyNCtx(ctx context.Context, t *march.Test, faults string, cells int) (*CoverageReport, error) {
	return VerifyNWorkersCtx(ctx, t, faults, cells, 1)
}

// VerifyNWorkersCtx is VerifyNCtx with the per-instance placement runs
// fanned out over a bounded worker pool (workers <= 0: GOMAXPROCS); the
// report is byte-identical at any worker count.
func VerifyNWorkersCtx(ctx context.Context, t *march.Test, faults string, cells, workers int) (*CoverageReport, error) {
	models, err := fault.ParseList(faults)
	if err != nil {
		return nil, err
	}
	instances := fault.Instances(models)
	cov, err := sim.EvaluateNWorkers(ctx, t, instances, cells, workers)
	if err != nil {
		return nil, err
	}
	rep := &CoverageReport{
		Test:       t,
		Complexity: t.Complexity(),
		Complete:   cov.Complete(),
		Missed:     cov.Missed(),
	}
	for _, r := range cov.Results {
		rep.Instances = append(rep.Instances, InstanceCoverage{
			Model:        r.Instance.Model,
			Name:         r.Instance.Name,
			Detected:     r.Detected,
			DetectingOps: append([]int(nil), r.DetectingOps...),
		})
	}
	return rep, nil
}
