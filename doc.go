// Package marchgen automatically generates optimal March tests for random
// access memories, reproducing A. Benso, S. Di Carlo, G. Di Natale and
// P. Prinetto, "An Optimal Algorithm for the Automatic Generation of March
// Tests", DATE 2002 (DOI 10.1109/DATE.2002.998412).
//
// A March test is a sequence of March elements — an addressing order plus
// read/write operations applied to every memory cell — and is the dominant
// industrial recipe for RAM testing. Given an unconstrained list of memory
// fault models (stuck-at, transition, coupling, address-decoder, retention,
// read-disturb faults, or user-defined ones), Generate synthesises a March
// test of provably minimal length that detects every fault, without any
// exhaustive search over the space of March tests:
//
//	res, err := marchgen.Generate("SAF,TF,ADF,CFin,CFid")
//	// res.Test: { ⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇕(r1) } — 10n,
//	// the complexity of the hand-crafted March C-.
//
// The pipeline follows the paper: fault models become deviations of a
// two-cell Mealy memory automaton (package fsm); each Basic Fault Effect
// yields a Test Pattern; patterns form a weighted Test Pattern Graph whose
// minimum open visit — an asymmetric travelling-salesman instance solved
// exactly — is a minimal Global Test Sequence; rewrite rules fold the
// sequence into a March test; and a memory fault simulator validates
// completeness and non-redundancy of the result.
//
// Verify runs the other direction: given any March test (yours, or one of
// the classics in package march) and a fault list, it reports guaranteed
// fault coverage and the Set Covering non-redundancy analysis of the
// paper's Section 6.
package marchgen
