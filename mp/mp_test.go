package mp

import (
	"strings"
	"testing"

	"marchgen/march"
)

func TestNotation(t *testing.T) {
	test := &Test{Elements: []Element{
		El(march.Any, C1(march.W0)),
		El(march.Up, CRR(march.Zero), C1(march.W1)),
		El(march.Down, CPrev(march.R1, march.One)),
	}}
	want := "{ ⇕(w0:n); ⇑(r0:r0,w1:n); ⇓(r1:r1-) }"
	if got := test.String(); got != want {
		t.Errorf("notation %q, want %q", got, want)
	}
	if test.Complexity() != 4 {
		t.Errorf("complexity %d, want 4", test.Complexity())
	}
	if err := test.Validate(); err != nil {
		t.Errorf("valid test rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []*Test{
		{},
		{Elements: []Element{{Order: march.Up}}},
		{Elements: []Element{El(march.Up, Cycle{})}},
		// Same-cell write conflict.
		{Elements: []Element{El(march.Up, Cycle{
			A: &PortOp{Op: march.W0}, B: &PortOp{Op: march.W1},
		})}},
		// Read racing a write on the same cell.
		{Elements: []Element{El(march.Up, Cycle{
			A: &PortOp{Op: march.W0}, B: &PortOp{Op: march.R0},
		})}},
		// Port A addressing the previous cell.
		{Elements: []Element{El(march.Up, Cycle{
			A: &PortOp{Op: march.R0, Prev: true},
		})}},
	}
	for k, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d must fail: %s", k, c)
		}
	}
}

func TestSingleLift(t *testing.T) {
	kt, _ := march.Known("MATS+")
	lifted, err := Single(kt.Test)
	if err != nil {
		t.Fatal(err)
	}
	if lifted.Complexity() != 5 {
		t.Errorf("lifted complexity %d", lifted.Complexity())
	}
	if strings.Contains(lifted.String(), "r0:r0") {
		t.Error("single-port lift must not contain double reads")
	}
}

func TestSimulatorSRDFSemantics(t *testing.T) {
	inst := Instance{Name: "sRDF<0>", Kind: SRDF, D: march.Zero}
	mem, err := NewMemory(4, &inst, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	test := &Test{Elements: []Element{
		El(march.Up, C1(march.W0)),
		El(march.Up, CRR(march.Zero)),
	}}
	fails, err := mem.Run(test, []march.Order{march.Up, march.Up})
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) == 0 {
		t.Fatal("simultaneous double read at 0 must fail immediately")
	}
	// A single-port read does not trigger the weak fault.
	mem2, _ := NewMemory(4, &inst, 2, 0)
	single := &Test{Elements: []Element{
		El(march.Up, C1(march.W0)),
		El(march.Up, C1(march.R0), C1(march.R0)),
	}}
	fails, err = mem2.Run(single, []march.Order{march.Up, march.Up})
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 0 {
		t.Errorf("sequential reads must not trigger the weak fault: %v", fails)
	}
}

func TestSimulatorDeceptiveNeedsSecondRead(t *testing.T) {
	inst := Instance{Name: "sDRDF<1>", Kind: SDRDF, D: march.One}
	probe := &Test{Elements: []Element{
		El(march.Up, C1(march.W1)),
		El(march.Up, CRR(march.One)),
	}}
	ok, err := Detects(probe, inst, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("deceptive fault must escape without a follow-up read")
	}
	probe.Elements = append(probe.Elements, El(march.Any, C1(march.R1)))
	ok, err = Detects(probe, inst, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("follow-up read must catch the deceptive fault")
	}
}

// TestSinglePortTestsMissWeakFaults: the headline property of two-port
// faults — no single-port March test detects them.
func TestSinglePortTestsMissWeakFaults(t *testing.T) {
	for _, name := range []string{"MATS++", "MarchC-", "MarchB", "MarchG"} {
		kt, _ := march.Known(name)
		lifted, err := Single(kt.Test)
		if err != nil {
			t.Fatal(err)
		}
		for _, inst := range Models() {
			ok, err := Detects(lifted, inst, 5)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Errorf("single-port %s claims to detect %s", name, inst.Name)
			}
		}
	}
}

// TestGenerateWeakFaultTest synthesises a minimal two-port test for the
// full weak-fault list and cross-checks it against the independent n-cell
// two-port simulator.
func TestGenerateWeakFaultTest(t *testing.T) {
	insts := Models()
	test, stats, err := Generate(insts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(); err != nil {
		t.Fatalf("generated test invalid: %v (%s)", err, test)
	}
	if stats.Nodes == 0 {
		t.Error("stats must count nodes")
	}
	for _, inst := range insts {
		ok, err := Detects(test, inst, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("generated %s misses %s", test, inst.Name)
		}
	}
	t.Logf("two-port weak-fault test: %s (%d cycles, %d nodes, %v)",
		test, test.Complexity(), stats.Nodes, stats.Elapsed)
}

// TestGenerateMinimality: the iterative deepening guarantees no shorter
// test exists within the search grammar; spot-check a single fault.
func TestGenerateMinimality(t *testing.T) {
	inst := Instance{Name: "sRDF<0>", Kind: SRDF, D: march.Zero}
	test, _, err := Generate([]Instance{inst}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if test.Complexity() != 2 { // w0 then r0:r0
		t.Errorf("sRDF<0> optimum %d cycles (%s), want 2", test.Complexity(), test)
	}
}

func TestGenerateInfeasibleCap(t *testing.T) {
	if _, _, err := Generate(Models(), 2); err == nil {
		t.Error("cap 2 cannot cover the full weak-fault list")
	}
}

func TestMemoryErrors(t *testing.T) {
	if _, err := NewMemory(1, nil, 0, 0); err == nil {
		t.Error("1-cell memory must fail")
	}
	inst := Instance{Kind: SCFDS, D: march.Zero, TwoCell: true}
	if _, err := NewMemory(4, &inst, 2, 2); err == nil {
		t.Error("agg == vic must fail")
	}
	if _, err := NewMemory(4, &inst, 9, 1); err == nil {
		t.Error("out-of-range aggressor must fail")
	}
}
