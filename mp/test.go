// Package mp prototypes the extension the reproduced paper names as its
// future work (§7): March tests for multi-port memories. A two-port RAM
// executes one operation per port per clock cycle; defects invisible to
// any single-port sequence — "weak" faults — become observable only under
// simultaneous port activity, e.g. a cell that flips when both ports read
// it in the same cycle.
//
// The package provides two-port March tests (elements of port-operation
// pairs, with the second port addressing the same or the previous cell of
// the walk), a catalogue of two-port fault models, an n-cell two-port
// fault simulator with guaranteed-detection semantics matching the
// single-port machinery, and a small iterative-deepening generator that
// synthesises minimal two-port tests — the substrate a full TPG/ATSP
// treatment of multi-port faults would build on.
package mp

import (
	"fmt"
	"strings"

	"marchgen/march"
)

// PortOp is one port's action in a cycle.
type PortOp struct {
	// Op is the read-and-verify or write performed.
	Op march.Op
	// Prev addresses the previous cell of the element's walk instead of
	// the current one (at the walk's first cell the action is skipped:
	// there is no previous cell yet).
	Prev bool
}

// String renders "r0", "w1", "r0-" (the minus marking the previous-cell
// addressing).
func (p PortOp) String() string {
	s := p.Op.String()
	if p.Prev {
		s += "-"
	}
	return s
}

// Cycle is one clock cycle: an action per port (nil = the port idles).
type Cycle struct {
	A, B *PortOp
}

// String renders "r0:r0", "w1:n", "r1:r0-".
func (c Cycle) String() string {
	side := func(p *PortOp) string {
		if p == nil {
			return "n"
		}
		return p.String()
	}
	return side(c.A) + ":" + side(c.B)
}

// Element is a two-port March element.
type Element struct {
	Order  march.Order
	Cycles []Cycle
}

// String renders "⇑(r0:r0,w1:n)".
func (e Element) String() string {
	parts := make([]string, len(e.Cycles))
	for k, c := range e.Cycles {
		parts[k] = c.String()
	}
	return e.Order.String() + "(" + strings.Join(parts, ",") + ")"
}

// Test is a two-port March test.
type Test struct {
	Name     string
	Elements []Element
}

// Complexity counts the clock cycles per cell.
func (t *Test) Complexity() int {
	n := 0
	for _, e := range t.Elements {
		n += len(e.Cycles)
	}
	return n
}

// String renders the conventional "{ ⇕(w0:n); ⇑(r0:r0,w1:n) }" notation.
func (t *Test) String() string {
	parts := make([]string, len(t.Elements))
	for k, e := range t.Elements {
		parts[k] = e.String()
	}
	return "{ " + strings.Join(parts, "; ") + " }"
}

// Validate rejects structurally illegal tests: empty tests or elements,
// same-cycle port conflicts (two writes, or a write racing a read of the
// same cell), and reads before the first write of the walk.
func (t *Test) Validate() error {
	if t == nil || len(t.Elements) == 0 {
		return fmt.Errorf("mp: empty test")
	}
	for _, e := range t.Elements {
		if len(e.Cycles) == 0 {
			return fmt.Errorf("mp: empty element in %s", t)
		}
		for _, c := range e.Cycles {
			if c.A == nil && c.B == nil {
				return fmt.Errorf("mp: fully idle cycle in %s", t)
			}
			if c.A != nil && c.B != nil && c.A.Prev == c.B.Prev {
				// Same-cell simultaneous access: only read+read is legal.
				if c.A.Op.IsWrite() || c.B.Op.IsWrite() {
					return fmt.Errorf("mp: same-cell port conflict %s in %s", c, t)
				}
			}
			if c.A != nil && c.A.Prev {
				return fmt.Errorf("mp: port A must address the current cell (%s)", c)
			}
		}
	}
	return nil
}

// Single lifts a single-port March test: every operation runs on port A,
// port B idles. Two-port weak faults are invisible to such tests — the
// package tests prove it.
func Single(t *march.Test) (*Test, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	out := &Test{Name: t.Name + " (port A only)"}
	for _, e := range t.Elements {
		if e.Delay {
			continue // retention is a single-port concern
		}
		me := Element{Order: e.Order}
		for _, op := range e.Ops {
			op := op
			me.Cycles = append(me.Cycles, Cycle{A: &PortOp{Op: op}})
		}
		out.Elements = append(out.Elements, me)
	}
	return out, nil
}

// Helpers for building two-port tests tersely.

// C1 builds a single-port cycle on port A.
func C1(op march.Op) Cycle { return Cycle{A: &PortOp{Op: op}} }

// CRR builds the simultaneous same-cell double read expecting d.
func CRR(d march.Bit) Cycle {
	op := march.Op{Kind: march.Read, Data: d}
	return Cycle{A: &PortOp{Op: op}, B: &PortOp{Op: op}}
}

// CPrev builds a cycle with port A acting on the current cell and port B
// reading the previous cell, expecting dPrev there.
func CPrev(a march.Op, dPrev march.Bit) Cycle {
	return Cycle{
		A: &PortOp{Op: a},
		B: &PortOp{Op: march.Op{Kind: march.Read, Data: dPrev}, Prev: true},
	}
}

// El builds an element.
func El(order march.Order, cycles ...Cycle) Element {
	return Element{Order: order, Cycles: cycles}
}
