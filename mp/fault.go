package mp

import (
	"fmt"

	"marchgen/march"
)

// Kind enumerates the two-port weak fault classes: defects that no
// single-port operation sequence can excite, because the extra stress of
// two simultaneous accesses is part of the sensitising condition.
type Kind uint8

const (
	// SRDF is the simultaneous read destructive fault: both ports read
	// the cell holding D in one cycle; the cell flips and both ports
	// return the flipped value.
	SRDF Kind = iota
	// SDRDF is the deceptive variant: the cell flips but the reads still
	// return D, so only a later read observes the corruption.
	SDRDF
	// SIRF is the simultaneous incorrect read fault: both ports return
	// the complement of D; the cell keeps its value.
	SIRF
	// SCFDS is the simultaneous-read disturb coupling fault: a double
	// read of the aggressor holding D flips the victim cell.
	SCFDS
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case SRDF:
		return "sRDF"
	case SDRDF:
		return "sDRDF"
	case SIRF:
		return "sIRF"
	case SCFDS:
		return "sCFds"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Instance is one two-port fault hypothesis.
type Instance struct {
	Name string
	Kind Kind
	// D is the stored value sensitising the fault.
	D march.Bit
	// TwoCell marks aggressor/victim faults (SCFDS).
	TwoCell bool
}

// Models returns the built-in two-port fault list: every kind for both
// sensitising values.
func Models() []Instance {
	var out []Instance
	for _, k := range []Kind{SRDF, SDRDF, SIRF, SCFDS} {
		for _, d := range []march.Bit{march.Zero, march.One} {
			out = append(out, Instance{
				Name:    fmt.Sprintf("%s<%s>", k, d),
				Kind:    k,
				D:       d,
				TwoCell: k == SCFDS,
			})
		}
	}
	return out
}
