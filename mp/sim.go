package mp

import (
	"fmt"

	"marchgen/march"
)

// Memory is an n-cell two-port RAM with at most one placed fault.
type Memory struct {
	cells []march.Bit
	inst  *Instance
	// agg and vic are the placed cells (vic used by two-cell kinds).
	agg, vic int
}

// NewMemory builds the memory; for a nil instance the memory is fault
// free. Two-cell instances need distinct agg/vic addresses.
func NewMemory(n int, inst *Instance, agg, vic int) (*Memory, error) {
	if n < 2 {
		return nil, fmt.Errorf("mp: memory needs at least 2 cells")
	}
	if inst != nil {
		if agg < 0 || agg >= n {
			return nil, fmt.Errorf("mp: aggressor %d out of range", agg)
		}
		if inst.TwoCell && (vic < 0 || vic >= n || vic == agg) {
			return nil, fmt.Errorf("mp: victim %d invalid", vic)
		}
	}
	m := &Memory{cells: make([]march.Bit, n), inst: inst, agg: agg, vic: vic}
	for k := range m.cells {
		m.cells[k] = march.X
	}
	return m, nil
}

// Size returns the cell count.
func (m *Memory) Size() int { return len(m.cells) }

// SetCell forces a cell's content (initial-state enumeration).
func (m *Memory) SetCell(addr int, v march.Bit) { m.cells[addr] = v }

// access is one resolved port action.
type access struct {
	addr int
	op   march.Op
}

// cycle executes one clock cycle and returns the values each resolved
// read sensed (indexed like accs).
func (m *Memory) cycle(accs []access) []march.Bit {
	outs := make([]march.Bit, len(accs))
	// Simultaneous same-cell double read?
	doubleRead := -1
	if len(accs) == 2 && accs[0].op.IsRead() && accs[1].op.IsRead() && accs[0].addr == accs[1].addr {
		doubleRead = accs[0].addr
	}
	triggered := m.inst != nil && doubleRead == m.agg && m.cells[m.agg] == m.inst.D
	// Reads sense the pre-cycle state.
	for k, a := range accs {
		if !a.op.IsRead() {
			continue
		}
		v := m.cells[a.addr]
		if triggered && a.addr == m.agg {
			switch m.inst.Kind {
			case SRDF, SIRF:
				v = m.inst.D.Not()
			}
		}
		outs[k] = v
	}
	// Writes land after the reads.
	for _, a := range accs {
		if a.op.IsWrite() {
			m.cells[a.addr] = a.op.Data
		}
	}
	// Fault state effects.
	if triggered {
		switch m.inst.Kind {
		case SRDF, SDRDF:
			m.cells[m.agg] = m.inst.D.Not()
		case SCFDS:
			if m.cells[m.vic].Known() {
				m.cells[m.vic] = m.cells[m.vic].Not()
			}
		}
	}
	return outs
}

// Run applies the two-port test under a concrete resolution of its ⇕
// elements and returns the flattened cycle indices whose reads mismatched.
func (m *Memory) Run(t *Test, res []march.Order) ([]int, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var fails []int
	failed := map[int]bool{}
	base := 0
	for ek, e := range t.Elements {
		order := e.Order
		if len(res) == len(t.Elements) {
			order = res[ek]
		}
		addrs := make([]int, m.Size())
		for k := range addrs {
			if order == march.Down {
				addrs[k] = m.Size() - 1 - k
			} else {
				addrs[k] = k
			}
		}
		for pos, addr := range addrs {
			for ck, c := range e.Cycles {
				var accs []access
				var expect []march.Bit
				add := func(p *PortOp) {
					if p == nil {
						return
					}
					target := addr
					if p.Prev {
						if pos == 0 {
							return // no previous cell yet
						}
						target = addrs[pos-1]
					}
					accs = append(accs, access{addr: target, op: p.Op})
					expect = append(expect, p.Op.Data)
				}
				add(c.A)
				add(c.B)
				outs := m.cycle(accs)
				for k, a := range accs {
					if a.op.IsRead() && outs[k].Known() && outs[k] != expect[k] {
						failed[base+ck] = true
					}
				}
			}
		}
		base += len(e.Cycles)
	}
	for k := range failed {
		fails = append(fails, k)
	}
	sortedInts(fails)
	return fails, nil
}

func sortedInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Detects reports whether the test guarantees detection of the instance on
// an n-cell memory: a mismatch for every initial content of the involved
// cells, every ⇕ resolution, and every placement tried.
func Detects(t *Test, inst Instance, n int) (bool, error) {
	resolutions, err := resolutions(t)
	if err != nil {
		return false, err
	}
	placements := [][2]int{{1, 2}, {n - 2, n - 3}}
	if !inst.TwoCell {
		placements = [][2]int{{1, 0}, {n - 2, 0}}
	}
	for _, pl := range placements {
		for initMask := 0; initMask < 4; initMask++ {
			for _, res := range resolutions {
				mem, err := NewMemory(n, &inst, pl[0], pl[1])
				if err != nil {
					return false, err
				}
				mem.SetCell(pl[0], march.BitOf(initMask&1 != 0))
				if inst.TwoCell {
					mem.SetCell(pl[1], march.BitOf(initMask&2 != 0))
				}
				fails, err := mem.Run(t, res)
				if err != nil {
					return false, err
				}
				if len(fails) == 0 {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// resolutions expands ⇕ elements to both orders (like the single-port
// simulator).
func resolutions(t *Test) ([][]march.Order, error) {
	var anyIdx []int
	base := make([]march.Order, len(t.Elements))
	for k, e := range t.Elements {
		base[k] = e.Order
		if e.Order == march.Any {
			anyIdx = append(anyIdx, k)
		}
	}
	if len(anyIdx) > 12 {
		return nil, fmt.Errorf("mp: too many ⇕ elements")
	}
	var out [][]march.Order
	for mask := 0; mask < 1<<len(anyIdx); mask++ {
		res := append([]march.Order(nil), base...)
		for b, k := range anyIdx {
			if mask&(1<<b) == 0 {
				res[k] = march.Up
			} else {
				res[k] = march.Down
			}
		}
		out = append(out, res)
	}
	return out, nil
}
