package mp

import (
	"fmt"
	"time"

	"marchgen/march"
)

// Stats reports generator effort.
type Stats struct {
	Nodes   int64
	Elapsed time.Duration
}

// genState tracks one fault instance's incremental detection state: for a
// pair fault two walk orderings (aggressor processed before or after the
// victim) × the initial contents of the involved cells.
type genState struct {
	// agg and vic values per (variant, init); single-cell faults use vic
	// = X and one variant.
	agg, vic [8]march.Bit
	det      uint8
	variants int
}

func initialGenState(inst Instance) genState {
	s := genState{}
	if inst.TwoCell {
		s.variants = 8 // 2 orderings × 4 initial contents
		for v := 0; v < 8; v++ {
			s.agg[v] = march.BitOf(v&1 != 0)
			s.vic[v] = march.BitOf(v&2 != 0)
		}
	} else {
		s.variants = 2
		for v := 0; v < 2; v++ {
			s.agg[v] = march.BitOf(v&1 != 0)
			s.vic[v] = march.X
		}
	}
	return s
}

func (s *genState) allDetected() bool {
	return s.det == 1<<s.variants-1
}

// applyCell walks the element's cycles over one cell of the fault's pair.
// curIsAgg selects whether the walked cell is the aggressor.
func applyCellCycles(inst Instance, cycles []Cycle, entry march.Bit, agg, vic march.Bit, curIsAgg bool) (newAgg, newVic march.Bit, detected bool) {
	chain := entry
	cur := vic
	if curIsAgg {
		cur = agg
	}
	for _, c := range cycles {
		doubleRead := c.A != nil && c.B != nil && c.A.Op.IsRead() && c.B.Op.IsRead()
		trigger := doubleRead && curIsAgg && cur == inst.D
		for _, p := range []*PortOp{c.A, c.B} {
			if p == nil {
				continue
			}
			if p.Op.IsWrite() {
				cur = p.Op.Data
				chain = p.Op.Data
				continue
			}
			out := cur
			if trigger && (inst.Kind == SRDF || inst.Kind == SIRF) {
				out = inst.D.Not()
			}
			if chain.Known() && out.Known() && out != chain {
				detected = true
			}
		}
		if trigger {
			switch inst.Kind {
			case SRDF, SDRDF:
				cur = inst.D.Not()
			case SCFDS:
				if vic.Known() {
					vic = vic.Not()
				}
			}
		}
	}
	if curIsAgg {
		return cur, vic, detected
	}
	return agg, cur, detected
}

// applyElement advances the state by one element. For pair faults the
// variant's placement bit says whether the aggressor sits at the lower
// address; which cell is walked first then follows from the element's
// order.
func applyElement(inst Instance, s genState, entry march.Bit, cycles []Cycle, order march.Order) genState {
	out := s
	for v := 0; v < s.variants; v++ {
		aggFirst := true
		if inst.TwoCell {
			aggLower := v&4 == 0
			aggFirst = aggLower == (order != march.Down)
		}
		agg, vic := s.agg[v], s.vic[v]
		var d1, d2 bool
		if inst.TwoCell {
			// The pair's two cells are walked in variant order; every
			// other cell is healthy and irrelevant.
			if aggFirst {
				agg, vic, d1 = applyCellCycles(inst, cycles, entry, agg, vic, true)
				agg, vic, d2 = applyCellCycles(inst, cycles, entry, agg, vic, false)
			} else {
				agg, vic, d1 = applyCellCycles(inst, cycles, entry, agg, vic, false)
				agg, vic, d2 = applyCellCycles(inst, cycles, entry, agg, vic, true)
			}
		} else {
			agg, vic, d1 = applyCellCycles(inst, cycles, entry, agg, vic, true)
		}
		out.agg[v], out.vic[v] = agg, vic
		if d1 || d2 {
			out.det |= 1 << v
		}
	}
	return out
}

// chainEnd computes the element's closing value.
func chainEnd(entry march.Bit, cycles []Cycle) march.Bit {
	v := entry
	for _, c := range cycles {
		for _, p := range []*PortOp{c.A, c.B} {
			if p != nil && p.Op.IsWrite() {
				v = p.Op.Data
			}
		}
	}
	return v
}

// cycleOptions enumerates the legal cycle sequences of one element for the
// generator's catalogue: single-port writes, single-port reads and
// simultaneous same-cell double reads, all chain-consistent.
func cycleOptions(entry march.Bit, maxLen int) [][]Cycle {
	var out [][]Cycle
	var rec func(chain march.Bit, cycles []Cycle)
	rec = func(chain march.Bit, cycles []Cycle) {
		if len(cycles) > 0 {
			out = append(out, append([]Cycle(nil), cycles...))
		}
		if len(cycles) == maxLen {
			return
		}
		if chain.Known() {
			rec(chain, append(cycles, C1(march.Op{Kind: march.Read, Data: chain})))
			rec(chain, append(cycles, CRR(chain)))
		}
		rec(march.Zero, append(cycles, C1(march.W0)))
		rec(march.One, append(cycles, C1(march.W1)))
	}
	rec(entry, nil)
	return out
}

// Generate synthesises a minimal two-port March test detecting every
// instance, by iterative-deepening search with memoised detection states —
// the two-port counterpart of the single-port baseline generator, and the
// starting point the paper's §7 names for extending the TPG pipeline to
// multi-port memories.
func Generate(instances []Instance, maxCycles int) (*Test, Stats, error) {
	start := time.Now()
	stats := Stats{}
	for k := 1; k <= maxCycles; k++ {
		memo := map[string]int{}
		var path []Element
		states := make([]genState, len(instances))
		for i, inst := range instances {
			states[i] = initialGenState(inst)
		}
		var dfs func(entry march.Bit, sts []genState, remaining int) bool
		key := func(entry march.Bit, sts []genState) string {
			buf := make([]byte, 0, 1+len(sts)*17)
			buf = append(buf, byte(entry))
			for _, s := range sts {
				for v := 0; v < 8; v++ {
					buf = append(buf, byte(s.agg[v])*3+byte(s.vic[v]))
				}
				buf = append(buf, s.det)
			}
			return string(buf)
		}
		dfs = func(entry march.Bit, sts []genState, remaining int) bool {
			stats.Nodes++
			done := true
			for i := range sts {
				if !sts[i].allDetected() {
					done = false
					break
				}
			}
			if done {
				return true
			}
			if remaining <= 0 {
				return false
			}
			skey := key(entry, sts)
			if r, ok := memo[skey]; ok && r >= remaining {
				return false
			}
			for _, cycles := range cycleOptions(entry, remaining) {
				for _, order := range [2]march.Order{march.Up, march.Down} {
					next := make([]genState, len(sts))
					for i, inst := range instances {
						next[i] = applyElement(inst, sts[i], entry, cycles, order)
					}
					path = append(path, Element{Order: order, Cycles: cycles})
					if dfs(chainEnd(entry, cycles), next, remaining-len(cycles)) {
						return true
					}
					path = path[:len(path)-1]
				}
			}
			memo[skey] = remaining
			return false
		}
		if dfs(march.X, states, k) {
			stats.Elapsed = time.Since(start)
			t := &Test{Elements: append([]Element(nil), path...)}
			return t, stats, nil
		}
	}
	stats.Elapsed = time.Since(start)
	return nil, stats, fmt.Errorf("mp: no two-port test of complexity ≤ %d covers the fault list", maxCycles)
}
