package marchgen

import (
	"context"
	"errors"
	"testing"

	"marchgen/fault"
	"marchgen/internal/experiments"
)

// solverModeRows is the differential corpus: every built-in fault model
// alone, the paper's Table 3 rows, and a few mixed lists that exercise wide
// selection products. The three solver modes must generate byte-identical
// tests on all of them.
func solverModeRows(t testing.TB) []string {
	rows := append([]string{}, fault.ModelNames()...)
	for _, spec := range experiments.Table3Spec() {
		rows = append(rows, spec.Faults)
	}
	return append(rows, "SAF,TF,CFst", "TF,CFid,CFin", "SOF,WDF,IRF")
}

type modeRun struct {
	test       string
	complexity int
	selections int
	nodes      int
	pathCost   int
	minSelCost int
}

func runMode(t *testing.T, faults, mode string, workers int) modeRun {
	t.Helper()
	res, err := GenerateCtx(context.Background(), faults,
		WithSolverMode(mode), WithWorkers(workers), WithoutCache())
	if err != nil {
		t.Fatalf("%s [%s, workers=%d]: %v", faults, mode, workers, err)
	}
	return modeRun{
		test:       res.Test.String(),
		complexity: res.Complexity,
		selections: res.Stats.Selections,
		nodes:      res.Stats.TPGNodes,
		pathCost:   res.Stats.PathCost,
		minSelCost: res.Stats.MinSelectionCost,
	}
}

// TestSolverModesDifferential is the cross-mode differential battery: for
// every corpus row, the warm and joint solvers must reproduce the enumerate
// baseline exactly — same test string, complexity, selection statistics,
// path cost and minimum selection cost. The Table 3 rows additionally run
// every mode at four workers, crossing the mode axis with the scheduling
// axis. The modes may only differ in effort, never output.
func TestSolverModesDifferential(t *testing.T) {
	wide := map[string]bool{}
	for _, spec := range experiments.Table3Spec() {
		wide[spec.Faults] = true
	}
	for _, faults := range solverModeRows(t) {
		base := runMode(t, faults, SolverEnumerate, 1)
		for _, mode := range []string{SolverEnumerate, SolverWarm, SolverJoint} {
			workerCounts := []int{1}
			if wide[faults] {
				workerCounts = []int{1, 4}
			}
			for _, workers := range workerCounts {
				if mode == SolverEnumerate && workers == 1 {
					continue // the baseline itself
				}
				got := runMode(t, faults, mode, workers)
				if got != base {
					t.Errorf("%s [%s, workers=%d]:\n got %+v\nwant %+v", faults, mode, workers, got, base)
				}
			}
		}
	}
}

// TestSolverModeUnknown locks the usage error for a bad mode string.
func TestSolverModeUnknown(t *testing.T) {
	_, err := Generate("SAF", WithSolverMode("quantum"))
	if !errors.Is(err, ErrUsage) {
		t.Fatalf("unknown solver mode: got %v, want ErrUsage", err)
	}
}

// FuzzJointSelectionEquivalence fuzzes fault-list composition: any subset of
// the built-in model library must generate the byte-identical test under the
// enumerate and joint solvers. The fuzzer explores selection-product shapes
// (single-class, subsumption-collapsed, budget-trimmed) that the fixed
// differential corpus cannot cover.
func FuzzJointSelectionEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(2))
	f.Add(uint8(9), uint8(9), uint8(9))
	f.Add(uint8(3), uint8(11), uint8(200))
	f.Add(uint8(255), uint8(0), uint8(7))
	names := fault.ModelNames()
	f.Fuzz(func(t *testing.T, a, b, c uint8) {
		picked := map[string]bool{names[int(a)%len(names)]: true}
		if b%2 == 0 {
			picked[names[int(b)%len(names)]] = true
		}
		if c%3 == 0 {
			picked[names[int(c)%len(names)]] = true
		}
		faults := ""
		for _, n := range names { // deterministic order
			if picked[n] {
				if faults != "" {
					faults += ","
				}
				faults += n
			}
		}
		enum := runMode(t, faults, SolverEnumerate, 1)
		joint := runMode(t, faults, SolverJoint, 1)
		if enum != joint {
			t.Errorf("%s: joint diverges from enumerate:\n got %+v\nwant %+v", faults, joint, enum)
		}
	})
}
