package fault

import (
	"strings"
	"testing"

	"marchgen/fsm"
	"marchgen/march"
)

// TestEveryBuiltinInstanceValidates re-validates every instance of every
// built-in model: each disjunctive BFE pattern individually detects its
// machine; conjunctive instances detect via the concatenation.
func TestEveryBuiltinInstanceValidates(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if len(m.Instances) == 0 {
			t.Fatalf("%s: no instances", name)
		}
		for _, inst := range m.Instances {
			if err := inst.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
}

// TestEveryBFEPatternIsMinimalistic checks that patterns derived for
// deviation-modelled faults detect the single-deviation machine of their
// own BFE, not just the full instance machine.
func TestEveryBFEPatternIsMinimalistic(t *testing.T) {
	for _, name := range ModelNames() {
		m, _ := Parse(name)
		for _, inst := range m.Instances {
			if inst.Conjunctive {
				continue
			}
			for _, b := range inst.BFEs {
				if b.Deviation == nil {
					continue
				}
				solo := fsm.WithDeviations(b.Name, *b.Deviation)
				if !fsm.DetectsPattern(solo, b.Pattern) &&
					!fsm.DetectsPatternEstablished(solo, b.Pattern) {
					t.Errorf("%s / %s: pattern %s misses its own deviation", inst.Name, b.Name, b.Pattern)
				}
			}
		}
	}
}

func TestModelInstanceCounts(t *testing.T) {
	want := map[string]int{
		"SAF": 2, "TF": 2, "WDF": 2, "RDF": 2, "DRDF": 2, "IRF": 2,
		"SOF": 1, "DRF": 2, "CFin": 4, "CFid": 8, "CFst": 8, "ADF": 8,
	}
	for name, n := range want {
		m, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if len(m.Instances) != n {
			t.Errorf("%s: %d instances, want %d", name, len(m.Instances), n)
		}
	}
}

// TestSection3TestPatterns reproduces the paper's Section 3 example: the
// ⟨↑;0⟩ idempotent coupling fault is covered by TP1 = (01, w1i, r1j) and
// TP2 = (10, w1j, r1i); ⟨↑;1⟩ by TP3 = (00, w1i, r0j) and TP4 = (00, w1j,
// r0i).
func TestSection3TestPatterns(t *testing.T) {
	up0, err := Parse("CFid<u,0>")
	if err != nil {
		t.Fatal(err)
	}
	up1, err := Parse("CFid<u,1>")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, m := range []Model{up0, up1} {
		for _, inst := range m.Instances {
			if len(inst.BFEs) != 1 {
				t.Fatalf("%s: %d BFEs, want 1", inst.Name, len(inst.BFEs))
			}
			got = append(got, inst.BFEs[0].Pattern.String())
		}
	}
	want := []string{
		"(01, w1i, r1j)",
		"(10, w1j, r1i)",
		"(00, w1i, r0j)",
		"(00, w1j, r0i)",
	}
	if len(got) != len(want) {
		t.Fatalf("patterns %v", got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("TP%d = %s, want %s", k+1, got[k], want[k])
		}
	}
}

// TestFigure3BFESplit reproduces Figure 3: the ⟨↑;0⟩ fault splits into two
// BFEs, one per aggressor order, with deviations 01 --w1i--> 10 and
// 10 --w1j--> 01.
func TestFigure3BFESplit(t *testing.T) {
	m, err := Parse("CFid<u,0>")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Instances) != 2 {
		t.Fatalf("CFid<u,0>: %d instances, want 2", len(m.Instances))
	}
	devs := []string{
		m.Instances[0].BFEs[0].Deviation.String(),
		m.Instances[1].BFEs[0].Deviation.String(),
	}
	want := []string{"(01) --w1i--> (-0)", "(10) --w1j--> (0-)"}
	for k := range want {
		if devs[k] != want[k] {
			t.Errorf("BFE %d deviation %s, want %s", k, devs[k], want[k])
		}
	}
}

func TestSOFIsConjunctive(t *testing.T) {
	m, _ := Parse("SOF")
	inst := m.Instances[0]
	if !inst.Conjunctive {
		t.Fatal("SOF must be conjunctive")
	}
	// Neither single pattern may claim detection on its own.
	for _, b := range inst.BFEs {
		if fsm.DetectsPattern(inst.Machine, b.Pattern) {
			t.Errorf("SOF pattern %s alone must not guarantee detection", b.Pattern)
		}
	}
}

func TestCFinEquivalence(t *testing.T) {
	m, _ := Parse("CFin<u>")
	if len(m.Instances) != 2 {
		t.Fatalf("CFin<u>: %d instances, want 2", len(m.Instances))
	}
	for _, inst := range m.Instances {
		if len(inst.BFEs) != 2 {
			t.Errorf("%s: %d BFEs, want 2 (paper §5)", inst.Name, len(inst.BFEs))
		}
		if inst.Conjunctive {
			t.Errorf("%s: CFin BFEs are equivalent, not conjunctive", inst.Name)
		}
	}
}

func TestParseVariants(t *testing.T) {
	cases := map[string]int{
		"SA0":        1,
		"SA1":        1,
		"TF<u>":      1,
		"TF<d>":      1,
		"CFid<u,0>":  2,
		"CFid<d,1>":  2,
		"CFst<0,0>":  2,
		"cfin<d>":    2,
		"AF":         8,
		" SAF ":      2,
		"DRF<0>":     1,
		"drdf < 1 >": 1,
	}
	for name, n := range cases {
		m, err := Parse(name)
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
			continue
		}
		if len(m.Instances) != n {
			t.Errorf("Parse(%q): %d instances, want %d", name, len(m.Instances), n)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, name := range []string{"", "NOPE", "CFid<q,7>", "CFid<u,0", "SAF<u>"} {
		if _, err := Parse(name); err == nil {
			t.Errorf("Parse(%q): expected error", name)
		}
	}
}

func TestParseList(t *testing.T) {
	models, err := ParseList("SAF, TF, ADF, CFid<u,0>, CFid<u,1>")
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 5 {
		t.Fatalf("%d models", len(models))
	}
	insts := Instances(models)
	// 2 SAF + 2 TF + 8 ADF + 2 + 2 CFid variants.
	if len(insts) != 16 {
		t.Errorf("%d instances, want 16", len(insts))
	}
	if _, err := ParseList(""); err == nil {
		t.Error("empty list must fail")
	}
	if _, err := ParseList("SAF, NOPE"); err == nil {
		t.Error("unknown model in list must fail")
	}
}

func TestInstancesDeduplicate(t *testing.T) {
	a, _ := Parse("SAF")
	b, _ := Parse("SA0")
	insts := Instances([]Model{a, b})
	if len(insts) != 2 {
		t.Errorf("%d instances after dedup, want 2", len(insts))
	}
}

func TestCustomModel(t *testing.T) {
	// A user-defined fault: writing 1 to cell i also sets cell j ("bridge
	// write"), expressed directly as a deviation.
	inst, err := FromDeviations("BRIDGE", "BRIDGE<w1>", false,
		fsm.TransitionDev(fsm.S(march.X, march.Zero), fsm.Wr(fsm.CellI, march.One),
			fsm.S(march.X, march.One)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Custom("BRIDGE", "write-1 bridge from i to j", inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Instances) != 1 || m.Instances[0].Model != "BRIDGE" {
		t.Fatalf("custom model malformed: %+v", m)
	}
	p := m.Instances[0].BFEs[0].Pattern
	if p.String() != "(-0, w1i, r0j)" {
		t.Errorf("derived pattern %s", p)
	}
}

func TestCustomModelErrors(t *testing.T) {
	if _, err := Custom("", "desc"); err == nil {
		t.Error("nameless custom model must fail")
	}
	if _, err := Custom("EMPTY", "desc"); err == nil {
		t.Error("instance-less custom model must fail")
	}
	if _, err := FromDeviations("M", "M", false); err == nil {
		t.Error("deviation-less instance must fail")
	}
}

// TestPatternForDeviationUnobservable exercises the error paths of the
// pattern derivation.
func TestPatternForDeviationUnobservable(t *testing.T) {
	// A "deviation" with no effect.
	if _, err := PatternForDeviation(fsm.Deviation{
		When: fsm.Unknown, On: fsm.Wr(fsm.CellI, march.One),
	}); err == nil {
		t.Error("effect-less deviation must fail")
	}
	// An output deviation triggering on a write is malformed.
	if _, err := PatternForDeviation(fsm.OutputDev(fsm.Unknown, fsm.Wr(fsm.CellI, march.One), march.One)); err == nil {
		t.Error("output deviation on write must fail")
	}
	// A transition deviation whose "faulty" state equals the good one.
	if _, err := PatternForDeviation(fsm.TransitionDev(
		fsm.S(march.Zero, march.X), fsm.Wr(fsm.CellI, march.One), fsm.S(march.One, march.X))); err == nil {
		t.Error("no-op transition deviation must fail")
	}
}

// TestShortestSequencesMatchPatternLengths cross-checks the analytically
// derived patterns against the product-machine search: for single-BFE
// instances the pattern's standalone sequence must be as short as the
// shortest detecting sequence found by BFS.
func TestShortestSequencesMatchPatternLengths(t *testing.T) {
	// WDF is excluded: its minimal detecting sequence needs a transition-
	// established initialisation (w1,w0,w0,r0), one operation longer than
	// the naive pattern flattening.
	for _, name := range []string{"SAF", "TF", "RDF", "DRDF", "IRF", "CFid"} {
		m, _ := Parse(name)
		for _, inst := range m.Instances {
			if len(inst.BFEs) != 1 {
				continue
			}
			best, err := fsm.ShortestDetecting(inst.Machine, 8)
			if err != nil {
				t.Fatalf("%s: %v", inst.Name, err)
			}
			got := len(inst.BFEs[0].Pattern.Sequence())
			if got != len(best) {
				t.Errorf("%s: pattern sequence length %d, BFS found %d (%s)",
					inst.Name, got, len(best), fsm.Sequence(best))
			}
		}
	}
}

func TestModelNamesComplete(t *testing.T) {
	names := ModelNames()
	joined := strings.Join(names, ",")
	for _, want := range []string{"SAF", "TF", "ADF", "CFin", "CFid", "CFst", "SOF", "DRF", "RDF", "DRDF", "IRF", "WDF"} {
		if !strings.Contains(joined, want) {
			t.Errorf("ModelNames missing %s: %v", want, names)
		}
	}
}

func TestLinkedCouplingFaults(t *testing.T) {
	m, err := Parse("LCF")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Instances) != 8 {
		t.Fatalf("LCF: %d instances, want 8", len(m.Instances))
	}
	for _, inst := range m.Instances {
		if err := inst.Validate(); err != nil {
			t.Errorf("%s: %v", inst.Name, err)
		}
		if len(inst.BFEs) == 0 {
			t.Errorf("%s: no usable BFEs", inst.Name)
		}
	}
}

// TestLinkedMaskingIsReal: in the masking pair ⟨↑;1⟩∧⟨↓;0⟩, exciting both
// transitions back to back restores the victim, so a test that would catch
// either unlinked fault can miss the linked one. March X (which covers
// CFin) must miss some LCF instance while March A (designed for linked
// CFids) covers the model.
func TestLinkedMaskingIsReal(t *testing.T) {
	lcfModel, err := Parse("LCF")
	if err != nil {
		t.Fatal(err)
	}
	// A linked machine where the two deviations undo each other: victim
	// forced to 1 on ↑, forced back to 0 on ↓.
	up := fsm.TransitionDev(fsm.S(march.Zero, march.Zero), fsm.Wr(fsm.CellI, march.One), fsm.S(march.X, march.One))
	down := fsm.TransitionDev(fsm.S(march.One, march.One), fsm.Wr(fsm.CellI, march.Zero), fsm.S(march.X, march.Zero))
	linked := fsm.WithDeviations("mask", up, down)
	// Exciting ↑ then ↓ without an intermediate read observes nothing:
	seq := []fsm.Input{
		fsm.Wr(fsm.CellI, march.Zero), fsm.Wr(fsm.CellJ, march.Zero),
		fsm.Wr(fsm.CellI, march.One),  // excite ↑ (victim j -> 1)
		fsm.Wr(fsm.CellI, march.Zero), // excite ↓ (victim j -> 0: masked)
		fsm.Rd(fsm.CellJ),
	}
	if fsm.Detects(linked, seq) {
		t.Error("back-to-back excitation must be masked")
	}
	// With a read between the excitations the fault is caught:
	seq = []fsm.Input{
		fsm.Wr(fsm.CellI, march.Zero), fsm.Wr(fsm.CellJ, march.Zero),
		fsm.Wr(fsm.CellI, march.One),
		fsm.Rd(fsm.CellJ),
		fsm.Wr(fsm.CellI, march.Zero),
	}
	if !fsm.Detects(linked, seq) {
		t.Error("read between excitations must detect")
	}
	_ = lcfModel
}
